// Traffic-light controller with a demand sensor and a safety timer — a
// small self-contained design for the Verilog frontend examples.
//
//   property mutex      — the two greens are never on together (holds)
//   property timer_cap  — the phase timer stays below 12 (holds)
//   property ped_served — a pedestrian request never outlives the cycle
//                         into the all-red phase (violable at bounds ≥ 20:
//                         BMC finds the full phase rotation with a late ped)
module traffic(input clk, input demand, input ped,
               output reg major_green, output reg minor_green);
  reg [1:0] phase = 0;       // 0 major, 1 yellow, 2 minor, 3 all-red
  reg [3:0] timer = 0;
  reg ped_wait = 0;

  wire phase_done = (phase == 2'd0) ? (timer >= 4'd8 && demand) :
                    (phase == 2'd1) ? (timer >= 4'd2) :
                    (phase == 2'd2) ? (timer >= 4'd6) :
                                      (timer >= 4'd1);

  always @(posedge clk) begin
    if (phase_done) begin
      phase <= phase + 1;
      timer <= 0;
    end else begin
      timer <= timer + 1;
    end
    if (ped && phase != 2'd3) ped_wait <= 1'b1;
    else if (phase == 2'd3) ped_wait <= 1'b0;
    major_green <= phase == 2'd0;
    minor_green <= phase == 2'd2;
  end

  property mutex = !(major_green && minor_green);
  property timer_cap = timer < 4'd12;
  property ped_served = !(ped_wait && phase == 2'd3);
endmodule
