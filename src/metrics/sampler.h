// Background telemetry sampler: snapshots a MetricsRegistry at a fixed
// interval into a JSONL time series (docs/observability.md "Time-series
// schema"). Each sample emits one line per metric source (canonical label
// set) plus one "process" line with resident-set memory, e.g.
//
//   {"t_s":0.50,"source":"name=HDPLL+S+P,worker=0","name":"HDPLL+S+P",
//    "worker":"0","solver.decisions":8123,"solver.decisions_per_s":16246.0,
//    ...,"solver.lbd_count":412,"solver.lbd_mean":3.1}
//   {"t_s":0.50,"source":"process","rss_kb":14200,"rss_peak_kb":14800}
//
// Monotone metrics (counters and gauges registered monotone) additionally
// get a `<name>_per_s` rate derived by differencing consecutive samples; a
// value that moves backwards (a handle reused for a new solve) resets the
// baseline and reports no rate for that sample.
//
// Threading: the sampler only ever *reads* the registry (atomic loads and
// per-shard histogram locks), so it never perturbs the search — the
// zero-drift tests in tests/metrics assert exactly that. start()/stop()
// run a background thread; tick() samples synchronously and is what tests
// drive with an injected fake clock.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "metrics/metrics.h"
#include "trace/sink.h"
#include "util/timer.h"

namespace rtlsat::metrics {

struct SamplerOptions {
  trace::JsonlSink* sink = nullptr;  // JSONL destination; may be null
  double interval_seconds = 0.1;
  // Seconds since an arbitrary epoch; null = internal monotonic clock.
  std::function<double()> clock;
  bool include_process = true;       // emit the rss_kb/rss_peak_kb line
  bool collect_in_memory = false;    // keep emitted lines for drain()
};

class Sampler {
 public:
  Sampler(MetricsRegistry* registry, SamplerOptions options);
  ~Sampler();
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  // Spawns the background thread; stop() interrupts the interval sleep,
  // takes one final sample (so even sub-interval runs produce a series),
  // and joins. Both are idempotent.
  void start();
  void stop();

  // Takes one sample synchronously (manual mode; no thread required).
  void tick();

  std::int64_t samples() const;
  // collect_in_memory mode: moves out the emitted JSONL lines.
  std::vector<std::string> drain();

 private:
  void run();
  void sample_once(double now);
  void emit(const std::string& line);

  MetricsRegistry* registry_;
  SamplerOptions options_;
  Timer epoch_;

  mutable std::mutex sample_mu_;  // serializes sample_once vs drain
  // Rate baselines: "name|source" -> (sample time, value).
  std::map<std::string, std::pair<double, std::int64_t>> prev_;
  std::vector<std::string> collected_;
  std::int64_t samples_ = 0;

  std::mutex thread_mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace rtlsat::metrics
