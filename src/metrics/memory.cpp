#include "metrics/memory.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rtlsat::metrics {

ProcMemory read_proc_memory() {
  ProcMemory mem;
#ifdef __linux__
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return mem;
  char line[256];
  bool saw_rss = false;
  bool saw_peak = false;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    // Lines look like "VmRSS:      123456 kB".
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      mem.rss_kb = std::strtoll(line + 6, nullptr, 10);
      saw_rss = true;
    } else if (std::strncmp(line, "VmHWM:", 6) == 0) {
      mem.rss_peak_kb = std::strtoll(line + 6, nullptr, 10);
      saw_peak = true;
    }
    if (saw_rss && saw_peak) break;
  }
  std::fclose(f);
  mem.ok = saw_rss && saw_peak;
#endif
  return mem;
}

}  // namespace rtlsat::metrics
