// Labeled metrics registry (ISSUE 7 / ROADMAP "measure before optimising").
//
// Layering: util/stats.h counters stay the per-worker, single-threaded
// source of truth for end-of-run totals; this registry is the *shared*,
// thread-safe view a background Sampler (sampler.h) and the future
// rtlsat-serve /metrics endpoint scrape while the search is running.
// Solvers publish into registry handles at conflict boundaries with relaxed
// atomic stores, so the hot path never takes a lock and a disabled registry
// costs a single null-pointer branch (bench/micro_metrics.cpp guards this).
//
// Three instrument kinds:
//   Counter   — monotone, incremented from many threads; per-thread sharded
//               cacheline-aligned atomic slots keep increments contention-free,
//               value() sums the shards on scrape.
//   Gauge     — last-value-wins atomic set() from one publisher; a gauge
//               registered `monotone` additionally gets a derived _per_s rate
//               in the sampler output (decisions/sec etc.).
//   HistogramMetric — util/stats Histogram sharded per thread behind one
//               mutex per shard (uncontended in practice), merged on scrape.
//
// expose(std::ostream&) writes Prometheus text exposition format 0.0.4;
// parse_exposition() reads it back for round-trip tests.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "util/stats.h"

namespace rtlsat::metrics {

struct Label {
  std::string key;
  std::string value;
};
using Labels = std::vector<Label>;

// Stable textual identity of a label set: `k1=v1,k2=v2` sorted by key, empty
// string for no labels. The sampler groups metrics into one JSONL line per
// canonical label string ("source").
std::string canonical_labels(const Labels& labels);

enum class MetricKind { kCounter, kGauge, kHistogram };

namespace internal {
// Per-thread shard index in [0, shards): threads are assigned round-robin at
// first use. Two threads may share a shard (atomics keep that correct); the
// sharding only exists to avoid cacheline ping-pong in the common case.
std::size_t shard_index(std::size_t shards);
}  // namespace internal

class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  void add(std::int64_t delta = 1) {
    slots_[internal::shard_index(kShards)].v.fetch_add(
        delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    std::int64_t total = 0;
    for (const Slot& s : slots_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::int64_t> v{0};
  };
  std::array<Slot, kShards> slots_{};
};

class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  // A monotone gauge publishes a cumulative total (decisions, conflicts,
  // exported clauses); the sampler differences consecutive samples into a
  // `<name>_per_s` rate. Plain gauges (trail size, DB bytes) get no rate.
  bool monotone() const { return monotone_; }

 private:
  friend class MetricsRegistry;
  std::atomic<std::int64_t> value_{0};
  bool monotone_ = false;
};

class HistogramMetric {
 public:
  static constexpr std::size_t kShards = 8;

  void observe(std::int64_t value) {
    Shard& s = shards_[internal::shard_index(kShards)];
    std::lock_guard<std::mutex> lock(s.mu);
    s.hist.add(value);
  }
  // Merged view across shards (exact: Histogram::merge is order-independent).
  Histogram snapshot() const {
    Histogram out;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      out.merge(s.hist);
    }
    return out;
  }

 private:
  struct alignas(64) Shard {
    mutable std::mutex mu;
    Histogram hist;
  };
  std::array<Shard, kShards> shards_{};
};

class MetricsRegistry {
 public:
  // Registration is idempotent: the same (name, labels) pair always returns
  // the same handle, so portfolio re-runs can reuse a registry. Registering
  // an existing name+labels under a different kind aborts (programming
  // error). Handles stay valid for the registry's lifetime; registration
  // takes a lock, so resolve handles once at setup (same convention as
  // util/stats counter()).
  Counter* counter(const std::string& name, const Labels& labels = {});
  Gauge* gauge(const std::string& name, const Labels& labels = {},
               bool monotone = false);
  HistogramMetric* histogram(const std::string& name, const Labels& labels = {});

  // One scraped metric instance, value frozen at scrape time.
  struct Sample {
    std::string name;           // registry name, e.g. "solver.decisions"
    Labels labels;              // as registered
    std::string source;         // canonical_labels(labels)
    MetricKind kind = MetricKind::kGauge;
    bool monotone = false;      // counters are always monotone
    std::int64_t value = 0;     // counter/gauge
    Histogram hist;             // histogram
  };
  // Snapshot of every registered metric, sorted by (name, source).
  std::vector<Sample> scrape() const;

  // Prometheus text exposition format 0.0.4: metric names are sanitized
  // (dots -> underscores, "rtlsat_" prefix), each family gets a # TYPE line,
  // histograms expand into cumulative _bucket{le=...}/_sum/_count series
  // over the power-of-two bounds of util/stats Histogram.
  void expose(std::ostream& out) const;

  std::size_t size() const;

 private:
  struct Entry {
    std::string name;
    Labels labels;
    std::string source;
    MetricKind kind = MetricKind::kGauge;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> hist;
  };
  Entry& entry(const std::string& name, const Labels& labels, MetricKind kind);

  mutable std::mutex mu_;
  // Key "<name>|<canonical labels>": map order groups a family's label sets
  // contiguously, which expose() relies on for # TYPE line placement.
  std::map<std::string, Entry> entries_;
};

// "solver.decisions" -> "rtlsat_solver_decisions" (exposition identifier).
std::string exposition_name(const std::string& name);

// Parses text exposition back into {"name{labels}" -> value} (comment lines
// skipped). Returns false with *error set on malformed input. Used by the
// expose/JSONL round-trip test, not by the solver.
bool parse_exposition(const std::string& text,
                      std::map<std::string, double>* out, std::string* error);

}  // namespace rtlsat::metrics
