#include "metrics/sampler.h"

#include <chrono>

#include "metrics/memory.h"
#include "trace/json.h"

namespace rtlsat::metrics {

Sampler::Sampler(MetricsRegistry* registry, SamplerOptions options)
    : registry_(registry), options_(std::move(options)) {
  if (!options_.clock) {
    options_.clock = [this] { return epoch_.seconds(); };
  }
  if (options_.interval_seconds <= 0) options_.interval_seconds = 0.1;
}

Sampler::~Sampler() { stop(); }

void Sampler::start() {
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (running_) return;
  running_ = true;
  stop_requested_ = false;
  thread_ = std::thread([this] { run(); });
}

void Sampler::stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    running_ = false;
  }
  // Final sample: a run shorter than one interval still yields a series.
  tick();
}

void Sampler::run() {
  const auto interval = std::chrono::duration<double>(options_.interval_seconds);
  std::unique_lock<std::mutex> lock(thread_mu_);
  while (!stop_requested_) {
    cv_.wait_for(lock, interval, [this] { return stop_requested_; });
    if (stop_requested_) break;
    lock.unlock();
    tick();
    lock.lock();
  }
}

void Sampler::tick() { sample_once(options_.clock()); }

std::int64_t Sampler::samples() const {
  std::lock_guard<std::mutex> lock(sample_mu_);
  return samples_;
}

std::vector<std::string> Sampler::drain() {
  std::lock_guard<std::mutex> lock(sample_mu_);
  std::vector<std::string> out = std::move(collected_);
  collected_.clear();
  return out;
}

void Sampler::emit(const std::string& line) {
  if (options_.sink != nullptr) options_.sink->write_line(line);
  if (options_.collect_in_memory) collected_.push_back(line);
}

void Sampler::sample_once(double now) {
  const std::vector<MetricsRegistry::Sample> scraped = registry_->scrape();
  std::lock_guard<std::mutex> lock(sample_mu_);
  ++samples_;
  // One line per source; scrape() is sorted by (name, source), so collect
  // the sources first, then emit each group in registration-name order.
  std::vector<std::string> sources;
  for (const auto& s : scraped) {
    bool seen = false;
    for (const std::string& src : sources) seen = seen || src == s.source;
    if (!seen) sources.push_back(s.source);
  }
  for (const std::string& source : sources) {
    trace::JsonWriter w;
    w.begin_object();
    w.key("t_s").value(now);
    w.key("source").value(source.empty() ? "main" : source);
    bool labels_written = false;
    for (const auto& s : scraped) {
      if (s.source != source) continue;
      if (!labels_written) {
        labels_written = true;
        for (const Label& l : s.labels) w.key(l.key).value(l.value);
      }
      if (s.kind == MetricKind::kHistogram) {
        w.key(s.name + "_count").value(s.hist.count());
        w.key(s.name + "_sum").value(s.hist.sum());
        w.key(s.name + "_mean").value(s.hist.mean());
        w.key(s.name + "_max").value(s.hist.max());
        continue;
      }
      w.key(s.name).value(s.value);
      if (s.monotone) {
        const std::string key = s.name + "|" + s.source;
        auto it = prev_.find(key);
        if (it != prev_.end() && s.value >= it->second.second &&
            now > it->second.first) {
          const double rate =
              static_cast<double>(s.value - it->second.second) /
              (now - it->second.first);
          w.key(s.name + "_per_s").value(rate);
        }
        prev_[key] = {now, s.value};
      }
    }
    w.end_object();
    emit(w.str());
  }
  if (options_.include_process) {
    const ProcMemory mem = read_proc_memory();
    if (mem.ok) {
      trace::JsonWriter w;
      w.begin_object();
      w.key("t_s").value(now);
      w.key("source").value("process");
      w.key("rss_kb").value(mem.rss_kb);
      w.key("rss_peak_kb").value(mem.rss_peak_kb);
      w.end_object();
      emit(w.str());
    }
  }
}

}  // namespace rtlsat::metrics
