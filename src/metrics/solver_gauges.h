// The fixed set of live-telemetry handles a solver publishes into, resolved
// once from a MetricsRegistry at setup (make_solver_gauges) and stored as a
// nullable pointer in HdpllOptions/SolverOptions. Publishing happens at
// conflict boundaries with relaxed atomic stores; with a null pointer the
// whole feature is one branch (micro_metrics guards the overhead).
//
// The same struct serves HDPLL and the bit-blasted CDCL solver — labels
// (worker id, configuration name) distinguish instances, e.g.
//   make_solver_gauges(&registry, {{"worker", "0"}, {"name", "HDPLL+S+P"}}).
#pragma once

#include <string>

#include "metrics/metrics.h"

namespace rtlsat::metrics {

// Values published through SolverGauges::phase. kIdle doubles as "solve
// finished" in the sampled series.
enum class SolverPhase : std::int64_t {
  kIdle = 0,
  kPreprocess = 1,
  kPredicateLearning = 2,
  kSearch = 3,
  kArithCheck = 4,
};

struct SolverGauges {
  // Monotone totals -> the sampler derives `_per_s` rates from these.
  Gauge* decisions = nullptr;
  Gauge* conflicts = nullptr;
  Gauge* propagations = nullptr;
  Gauge* restarts = nullptr;
  Gauge* clauses_exported = nullptr;
  Gauge* clauses_imported = nullptr;
  // Instantaneous state.
  Gauge* learnt_clauses = nullptr;
  Gauge* trail = nullptr;
  Gauge* level = nullptr;
  Gauge* phase = nullptr;  // SolverPhase value
  // Instrumented heap bytes (owning-class counters, see memory.h).
  Gauge* clause_db_bytes = nullptr;
  Gauge* implication_graph_bytes = nullptr;
  Gauge* interval_store_bytes = nullptr;
  // Literal block distance of each learned clause. Recorded only here (not
  // in the per-worker Stats) so bench --json output is identical whether or
  // not sampling is enabled.
  HistogramMetric* lbd = nullptr;

  void set_phase(SolverPhase p) {
    if (phase != nullptr) phase->set(static_cast<std::int64_t>(p));
  }
};

SolverGauges make_solver_gauges(MetricsRegistry* registry,
                                const Labels& labels);

}  // namespace rtlsat::metrics
