// Process memory accounting for the sampler and the bench JSON summary:
// current and peak resident set size read from /proc/self/status (VmRSS /
// VmHWM). Linux-only; on other platforms ok == false and callers emit
// nothing. Heap accounting for solver-owned structures (clause DB,
// implication graph, interval store) is done with instrumented byte counters
// on the owning classes instead — see ClauseDb::memory_bytes(),
// Engine::implication_graph_bytes(), Engine::interval_store_bytes() and
// sat::Solver::memory_bytes().
#pragma once

#include <cstdint>

namespace rtlsat::metrics {

struct ProcMemory {
  bool ok = false;
  std::int64_t rss_kb = 0;       // VmRSS
  std::int64_t rss_peak_kb = 0;  // VmHWM (high-water mark)
};

ProcMemory read_proc_memory();

}  // namespace rtlsat::metrics
