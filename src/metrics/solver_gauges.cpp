#include "metrics/solver_gauges.h"

namespace rtlsat::metrics {

SolverGauges make_solver_gauges(MetricsRegistry* registry,
                                const Labels& labels) {
  SolverGauges g;
  g.decisions = registry->gauge("solver.decisions", labels, /*monotone=*/true);
  g.conflicts = registry->gauge("solver.conflicts", labels, /*monotone=*/true);
  g.propagations =
      registry->gauge("solver.propagations", labels, /*monotone=*/true);
  g.restarts = registry->gauge("solver.restarts", labels, /*monotone=*/true);
  g.clauses_exported =
      registry->gauge("solver.clauses_exported", labels, /*monotone=*/true);
  g.clauses_imported =
      registry->gauge("solver.clauses_imported", labels, /*monotone=*/true);
  g.learnt_clauses = registry->gauge("solver.learnt_clauses", labels);
  g.trail = registry->gauge("solver.trail", labels);
  g.level = registry->gauge("solver.level", labels);
  g.phase = registry->gauge("solver.phase", labels);
  g.clause_db_bytes = registry->gauge("solver.clause_db_bytes", labels);
  g.implication_graph_bytes =
      registry->gauge("solver.implication_graph_bytes", labels);
  g.interval_store_bytes =
      registry->gauge("solver.interval_store_bytes", labels);
  g.lbd = registry->histogram("solver.lbd", labels);
  return g;
}

}  // namespace rtlsat::metrics
