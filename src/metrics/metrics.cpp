#include "metrics/metrics.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <sstream>

namespace rtlsat::metrics {

namespace internal {

std::size_t shard_index(std::size_t shards) {
  static std::atomic<std::size_t> next{0};
  thread_local std::size_t mine =
      next.fetch_add(1, std::memory_order_relaxed);
  return mine % shards;
}

}  // namespace internal

std::string canonical_labels(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end(),
            [](const Label& a, const Label& b) { return a.key < b.key; });
  std::string out;
  for (const Label& l : sorted) {
    if (!out.empty()) out += ',';
    out += l.key;
    out += '=';
    out += l.value;
  }
  return out;
}

MetricsRegistry::Entry& MetricsRegistry::entry(const std::string& name,
                                               const Labels& labels,
                                               MetricKind kind) {
  const std::string source = canonical_labels(labels);
  const std::string key = name + "|" + source;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (it->second.kind != kind) {
      // Same metric identity registered under two kinds: programming error.
      std::abort();
    }
    return it->second;
  }
  Entry e;
  e.name = name;
  e.labels = labels;
  e.source = source;
  e.kind = kind;
  switch (kind) {
    case MetricKind::kCounter:
      e.counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      e.gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      e.hist = std::make_unique<HistogramMetric>();
      break;
  }
  return entries_.emplace(key, std::move(e)).first->second;
}

Counter* MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  return entry(name, labels, MetricKind::kCounter).counter.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name, const Labels& labels,
                              bool monotone) {
  Gauge* g = entry(name, labels, MetricKind::kGauge).gauge.get();
  if (monotone) g->monotone_ = true;
  return g;
}

HistogramMetric* MetricsRegistry::histogram(const std::string& name,
                                            const Labels& labels) {
  return entry(name, labels, MetricKind::kHistogram).hist.get();
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::scrape() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> out;
  out.reserve(entries_.size());
  for (const auto& [key, e] : entries_) {
    Sample s;
    s.name = e.name;
    s.labels = e.labels;
    s.source = e.source;
    s.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        s.monotone = true;
        s.value = e.counter->value();
        break;
      case MetricKind::kGauge:
        s.monotone = e.gauge->monotone();
        s.value = e.gauge->value();
        break;
      case MetricKind::kHistogram:
        s.hist = e.hist->snapshot();
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string exposition_name(const std::string& name) {
  std::string out = "rtlsat_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

namespace {

std::string exposition_labels(const Labels& labels) {
  if (labels.empty()) return "";
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end(),
            [](const Label& a, const Label& b) { return a.key < b.key; });
  std::string out = "{";
  bool first = true;
  for (const Label& l : sorted) {
    if (!first) out += ',';
    first = false;
    out += l.key;
    out += "=\"";
    for (char c : l.value) {
      if (c == '\\' || c == '"') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    out += '"';
  }
  out += '}';
  return out;
}

// Label string with one extra `le` label appended (histogram buckets).
std::string bucket_labels(const Labels& labels, const std::string& le) {
  Labels with_le = labels;
  with_le.push_back({"le", le});
  return exposition_labels(with_le);
}

}  // namespace

void MetricsRegistry::expose(std::ostream& out) const {
  const std::vector<Sample> samples = scrape();
  const std::string* prev_name = nullptr;
  for (const Sample& s : samples) {
    const std::string ename = exposition_name(s.name);
    if (prev_name == nullptr || *prev_name != s.name) {
      const char* type = s.kind == MetricKind::kHistogram ? "histogram"
                         : s.kind == MetricKind::kCounter ? "counter"
                                                          : "gauge";
      out << "# TYPE " << ename << ' ' << type << '\n';
    }
    prev_name = &s.name;
    if (s.kind != MetricKind::kHistogram) {
      out << ename << exposition_labels(s.labels) << ' ' << s.value << '\n';
      continue;
    }
    // Cumulative buckets over the power-of-two bounds; only emit bounds up
    // to the first bucket covering the observed max, then +Inf.
    std::int64_t cumulative = 0;
    const int top = Histogram::bucket_index(s.hist.max());
    for (int i = 0; i <= top; ++i) {
      cumulative += s.hist.buckets()[static_cast<std::size_t>(i)];
      out << ename << "_bucket"
          << bucket_labels(s.labels, std::to_string(Histogram::bucket_hi(i)))
          << ' ' << cumulative << '\n';
    }
    out << ename << "_bucket" << bucket_labels(s.labels, "+Inf") << ' '
        << s.hist.count() << '\n';
    out << ename << "_sum" << exposition_labels(s.labels) << ' ' << s.hist.sum()
        << '\n';
    out << ename << "_count" << exposition_labels(s.labels) << ' '
        << s.hist.count() << '\n';
  }
}

bool parse_exposition(const std::string& text,
                      std::map<std::string, double>* out, std::string* error) {
  out->clear();
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    // `name` or `name{labels}`, one space, value.
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0 ||
        space + 1 >= line.size()) {
      if (error != nullptr) {
        *error = "line " + std::to_string(lineno) + ": expected 'name value'";
      }
      return false;
    }
    const std::string key = line.substr(0, space);
    const std::string value_text = line.substr(space + 1);
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(value_text.c_str(), &end);
    if (end == value_text.c_str() || *end != '\0' || errno != 0) {
      if (error != nullptr) {
        *error = "line " + std::to_string(lineno) + ": bad value '" +
                 value_text + "'";
      }
      return false;
    }
    // A name must start with a letter and any '{' must close at the end.
    const char c0 = key[0];
    if (!((c0 >= 'a' && c0 <= 'z') || (c0 >= 'A' && c0 <= 'Z') || c0 == '_')) {
      if (error != nullptr) {
        *error = "line " + std::to_string(lineno) + ": bad metric name";
      }
      return false;
    }
    const std::size_t brace = key.find('{');
    if (brace != std::string::npos && key.back() != '}') {
      if (error != nullptr) {
        *error = "line " + std::to_string(lineno) + ": unterminated labels";
      }
      return false;
    }
    (*out)[key] = value;
  }
  return true;
}

}  // namespace rtlsat::metrics
