#include "metrics/trajectory.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <thread>

#include "trace/json.h"

#ifdef __linux__
#include <unistd.h>
#endif

namespace rtlsat::metrics {

Fingerprint local_fingerprint() {
  Fingerprint fp;
  fp.threads = static_cast<int>(std::thread::hardware_concurrency());
  fp.host = "unknown";
  fp.cpu = "unknown";
#ifdef __linux__
  char host[256] = {};
  if (gethostname(host, sizeof(host) - 1) == 0 && host[0] != '\0') {
    fp.host = host;
  }
  if (std::FILE* f = std::fopen("/proc/cpuinfo", "r")) {
    char line[512];
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      if (std::strncmp(line, "model name", 10) != 0) continue;
      const char* colon = std::strchr(line, ':');
      if (colon == nullptr) break;
      std::string cpu = colon + 1;
      while (!cpu.empty() && (cpu.front() == ' ' || cpu.front() == '\t')) {
        cpu.erase(cpu.begin());
      }
      while (!cpu.empty() && (cpu.back() == '\n' || cpu.back() == ' ')) {
        cpu.pop_back();
      }
      if (!cpu.empty()) fp.cpu = cpu;
      break;
    }
    std::fclose(f);
  }
#endif
  return fp;
}

std::string utc_date_string() {
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
#ifdef __linux__
  gmtime_r(&now, &tm_utc);
#else
  tm_utc = *std::gmtime(&now);
#endif
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%04d%02d%02d", tm_utc.tm_year + 1900,
                tm_utc.tm_mon + 1, tm_utc.tm_mday);
  return buf;
}

std::string git_sha_or_fallback() {
  if (const char* env = std::getenv("RTLSAT_GIT_SHA")) {
    if (*env != '\0') return env;
  }
#ifdef __linux__
  if (std::FILE* p = popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buf[64] = {};
    std::string sha;
    if (std::fgets(buf, sizeof(buf), p) != nullptr) sha = buf;
    const int status = pclose(p);
    while (!sha.empty() && (sha.back() == '\n' || sha.back() == ' ')) {
      sha.pop_back();
    }
    if (status == 0 && !sha.empty()) return sha;
  }
#endif
  return "unknown";
}

std::string default_trajectory_filename(const Trajectory& t) {
  return "BENCH_" + t.utc_date + "_" + t.git_sha + ".json";
}

std::string trajectory_to_json(const Trajectory& t) {
  trace::JsonWriter w;
  w.begin_object();
  w.key("schema").value(t.schema);
  w.key("utc_date").value(t.utc_date);
  w.key("git_sha").value(t.git_sha);
  w.key("fingerprint").begin_object();
  w.key("host").value(t.fingerprint.host);
  w.key("cpu").value(t.fingerprint.cpu);
  w.key("threads").value(t.fingerprint.threads);
  w.end_object();
  w.key("rss_peak_kb").value(t.rss_peak_kb);
  w.key("metrics_samples").value(t.metrics_samples);
  w.key("benches").begin_array();
  for (const BenchResult& b : t.benches) {
    w.begin_object();
    w.key("name").value(b.name);
    w.key("repeats").value(b.repeats);
    w.key("median_s").value(b.median_s);
    w.key("min_s").value(b.min_s);
    w.key("max_s").value(b.max_s);
    w.key("counters").begin_object();
    for (const auto& [name, value] : b.counters) w.key(name).value(value);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

namespace {

bool want_string(const trace::JsonValue& obj, const char* name,
                 std::string* out, std::string* error) {
  const trace::JsonValue* v = obj.find(name);
  if (v == nullptr || !v->is_string()) {
    if (error != nullptr) *error = std::string("missing string field ") + name;
    return false;
  }
  *out = v->string;
  return true;
}

bool want_number(const trace::JsonValue& obj, const char* name, double* out,
                 std::string* error) {
  const trace::JsonValue* v = obj.find(name);
  if (v == nullptr || !v->is_number()) {
    if (error != nullptr) *error = std::string("missing number field ") + name;
    return false;
  }
  *out = v->number;
  return true;
}

}  // namespace

bool trajectory_from_json(const std::string& text, Trajectory* out,
                          std::string* error) {
  trace::JsonValue doc;
  if (!trace::json_parse(text, &doc, error)) return false;
  if (!doc.is_object()) {
    if (error != nullptr) *error = "trajectory: top level is not an object";
    return false;
  }
  Trajectory t;
  if (!want_string(doc, "schema", &t.schema, error)) return false;
  if (t.schema != kTrajectorySchema) {
    if (error != nullptr) *error = "unknown schema '" + t.schema + "'";
    return false;
  }
  if (!want_string(doc, "utc_date", &t.utc_date, error)) return false;
  if (!want_string(doc, "git_sha", &t.git_sha, error)) return false;
  const trace::JsonValue* fp = doc.find("fingerprint");
  if (fp == nullptr || !fp->is_object()) {
    if (error != nullptr) *error = "missing fingerprint object";
    return false;
  }
  if (!want_string(*fp, "host", &t.fingerprint.host, error)) return false;
  if (!want_string(*fp, "cpu", &t.fingerprint.cpu, error)) return false;
  double threads = 0;
  if (!want_number(*fp, "threads", &threads, error)) return false;
  t.fingerprint.threads = static_cast<int>(threads);
  double rss = 0;
  if (!want_number(doc, "rss_peak_kb", &rss, error)) return false;
  t.rss_peak_kb = static_cast<std::int64_t>(rss);
  double samples = 0;
  if (!want_number(doc, "metrics_samples", &samples, error)) return false;
  t.metrics_samples = static_cast<std::int64_t>(samples);
  const trace::JsonValue* benches = doc.find("benches");
  if (benches == nullptr || !benches->is_array()) {
    if (error != nullptr) *error = "missing benches array";
    return false;
  }
  for (const trace::JsonValue& row : benches->array) {
    if (!row.is_object()) {
      if (error != nullptr) *error = "bench row is not an object";
      return false;
    }
    BenchResult b;
    if (!want_string(row, "name", &b.name, error)) return false;
    double repeats = 0;
    if (!want_number(row, "repeats", &repeats, error)) return false;
    b.repeats = static_cast<int>(repeats);
    if (!want_number(row, "median_s", &b.median_s, error)) return false;
    if (!want_number(row, "min_s", &b.min_s, error)) return false;
    if (!want_number(row, "max_s", &b.max_s, error)) return false;
    const trace::JsonValue* counters = row.find("counters");
    if (counters == nullptr || !counters->is_object()) {
      if (error != nullptr) *error = "bench row missing counters object";
      return false;
    }
    for (const auto& [name, value] : counters->object) {
      if (!value.is_number()) {
        if (error != nullptr) *error = "counter " + name + " is not a number";
        return false;
      }
      b.counters[name] = value.exact_integer
                             ? value.integer
                             : static_cast<std::int64_t>(value.number);
    }
    t.benches.push_back(std::move(b));
  }
  *out = std::move(t);
  return true;
}

CompareReport compare_trajectories(const Trajectory& baseline,
                                   const Trajectory& current,
                                   const CompareOptions& options) {
  CompareReport report;
  if (!baseline.fingerprint.compatible(current.fingerprint) && !options.force) {
    report.status = CompareReport::Status::kSkipped;
    report.lines.push_back(
        "fingerprint mismatch (baseline: " + baseline.fingerprint.cpu + " x" +
        std::to_string(baseline.fingerprint.threads) +
        ", current: " + current.fingerprint.cpu + " x" +
        std::to_string(current.fingerprint.threads) +
        ") — cross-machine wall times are not comparable; skipping");
    return report;
  }
  for (const BenchResult& cur : current.benches) {
    const BenchResult* base = nullptr;
    for (const BenchResult& b : baseline.benches) {
      if (b.name == cur.name) {
        base = &b;
        break;
      }
    }
    char line[256];
    if (base == nullptr) {
      std::snprintf(line, sizeof(line), "%-28s %10.4fs (new, no baseline)",
                    cur.name.c_str(), cur.median_s);
      report.lines.push_back(line);
      continue;
    }
    const double floor =
        base->median_s > options.min_seconds ? base->median_s
                                             : options.min_seconds;
    const double ratio = cur.median_s / floor;
    const bool regressed = cur.median_s > options.max_ratio * floor;
    std::snprintf(line, sizeof(line), "%-28s %10.4fs vs %10.4fs  x%.2f%s",
                  cur.name.c_str(), cur.median_s, base->median_s, ratio,
                  regressed ? "  REGRESSION" : "");
    report.lines.push_back(line);
    if (regressed) report.regressions.push_back(line);
  }
  for (const BenchResult& base : baseline.benches) {
    bool found = false;
    for (const BenchResult& cur : current.benches) {
      found = found || cur.name == base.name;
    }
    if (!found) {
      report.lines.push_back(base.name + ": present in baseline only");
    }
  }
  if (!report.regressions.empty()) {
    report.status = CompareReport::Status::kRegression;
  }
  return report;
}

}  // namespace rtlsat::metrics
