// Bench trajectory format + regression comparison (the CI perf gate the
// ROADMAP asks for: "emit a BENCH_*.json perf trajectory from CI so the
// next re-anchor can see the curve").
//
// A trajectory file (schema "rtlsat_trajectory_v1") captures one run of the
// standard bench suite: machine fingerprint, git sha, UTC date, peak RSS,
// and per-bench median/min/max wall time over N repeats plus key solver
// counters. bench/trajectory_runner.cpp produces them; bench/bench_compare.cpp
// diffs two of them with compare_trajectories() and exits nonzero on a
// regression, which is what gates CI (docs/observability.md "Bench
// trajectory & regression gating").
//
// Comparisons across different machines are meaningless, so a fingerprint
// mismatch yields kSkipped (exit 0 in bench_compare) unless forced.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rtlsat::metrics {

inline constexpr const char* kTrajectorySchema = "rtlsat_trajectory_v1";

struct Fingerprint {
  std::string host;
  std::string cpu;      // /proc/cpuinfo "model name" ("unknown" elsewhere)
  int threads = 0;      // std::thread::hardware_concurrency

  bool compatible(const Fingerprint& other) const {
    return cpu == other.cpu && threads == other.threads;
  }
};
Fingerprint local_fingerprint();

struct BenchResult {
  std::string name;
  int repeats = 0;
  double median_s = 0;
  double min_s = 0;
  double max_s = 0;
  // Key solver counters from the first repeat, time.* stripped (wall time
  // lives in median_s; the counters are there to tell a "got slower" from a
  // "does more work" regression).
  std::map<std::string, std::int64_t> counters;
};

struct Trajectory {
  std::string schema = kTrajectorySchema;
  std::string utc_date;  // YYYYMMDD
  std::string git_sha;
  Fingerprint fingerprint;
  std::int64_t rss_peak_kb = 0;      // VmHWM at end of run
  std::int64_t metrics_samples = 0;  // sampler lines behind this run (0 = unsampled)
  std::vector<BenchResult> benches;
};

std::string trajectory_to_json(const Trajectory& t);
bool trajectory_from_json(const std::string& text, Trajectory* out,
                          std::string* error);

// "BENCH_<utc_date>_<git_sha>.json"
std::string default_trajectory_filename(const Trajectory& t);

std::string utc_date_string();
// RTLSAT_GIT_SHA env override, else `git rev-parse --short HEAD`, else
// "unknown" (the override is what CI and tests pin).
std::string git_sha_or_fallback();

struct CompareOptions {
  // Regression when current_median > max_ratio * max(baseline_median,
  // min_seconds); the floor keeps microsecond-scale benches from flapping
  // on scheduler noise.
  double max_ratio = 1.5;
  double min_seconds = 0.005;
  bool force = false;  // compare even across differing fingerprints
};

struct CompareReport {
  enum class Status { kOk, kSkipped, kRegression };
  Status status = Status::kOk;
  std::vector<std::string> lines;        // one human-readable line per bench
  std::vector<std::string> regressions;  // subset that crossed the threshold
};

CompareReport compare_trajectories(const Trajectory& baseline,
                                   const Trajectory& current,
                                   const CompareOptions& options);

}  // namespace rtlsat::metrics
