// A synthesizable-Verilog-subset frontend producing ir::SeqCircuit.
//
// Supported constructs — enough for the control/data-path RTL the paper's
// benchmarks are written in:
//
//   module m(input clk, input [7:0] a, output [7:0] y, ...);
//     wire [7:0] sum = a + b;            // or: assign sum = a + b;
//     reg  [3:0] state = 0;              // initializer = reset value
//     always @(posedge clk) begin
//       if (cond) state <= state + 1;    // if / else if / else chains
//       else      state <= 0;            // unassigned path holds
//     end
//     property p1 = state <= 4'd9;       // extension: named safety property
//   endmodule
//
// Expressions: ?:, ||, &&, |, ^, & (1-bit logic; & | ^ also bitwise on
// equal-width words), == != < <= > >=, + -, << >> (constant shift), ! ~,
// {a, b} concatenation, bit/part selects a[3], a[5:2], sized literals
// (4'd12, 8'hFF, 1'b0) and unsized decimals (width inferred from context).
// Operands of different widths are zero-extended to the wider side, as in
// unsigned Verilog.
//
// One implicit clock: every `always @(posedge <id>)` belongs to it and the
// clock port drives no logic. `<=` targets must be declared `reg`; each
// reg's next-state is built from the statement walk with hold semantics
// for unassigned paths.
#pragma once

#include <stdexcept>
#include <string>

#include "ir/seq.h"

namespace rtlsat::verilog {

class VerilogError : public std::runtime_error {
 public:
  VerilogError(const std::string& message, int line)
      : std::runtime_error(message + " (line " + std::to_string(line) + ")"),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

ir::SeqCircuit parse(std::string_view source);
ir::SeqCircuit load_file(const std::string& path);

}  // namespace rtlsat::verilog
