#include "verilog/verilog.h"

#include <cctype>
#include <charconv>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <unordered_map>

#include "util/assert.h"

namespace rtlsat::verilog {

using ir::Circuit;
using ir::NetId;

namespace {

// ------------------------------------------------------------------ lexer

enum class Tok {
  kEnd, kIdent, kNumber, kSizedNumber,
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kSemi, kComma, kColon, kQuestion, kAt, kDot,
  kAssignEq,    // =
  kNonBlock,    // <=  (context-dependent vs less-equal; lexed as kLe)
  kPlus, kMinus, kXor, kAnd, kOr, kAndAnd, kOrOr, kNot, kTilde,
  kEq, kNe, kLt, kLe, kGt, kGe, kShl, kShr,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  std::int64_t value = 0;   // numeric value
  int width = 0;            // sized literals; 0 = unsized
  int line = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view source) : source_(source) { advance(); }

  const Token& peek() const { return current_; }
  Token take() {
    Token t = current_;
    advance();
    return t;
  }
  int line() const { return current_.line; }

 private:
  void advance() {
    skip_space_and_comments();
    current_ = Token{};
    current_.line = line_;
    if (pos_ >= source_.size()) return;  // kEnd
    const char ch = source_[pos_];
    if (std::isalpha(static_cast<unsigned char>(ch)) || ch == '_' ||
        ch == '$') {
      const std::size_t start = pos_;
      while (pos_ < source_.size() &&
             (std::isalnum(static_cast<unsigned char>(source_[pos_])) ||
              source_[pos_] == '_' || source_[pos_] == '$')) {
        ++pos_;
      }
      current_.kind = Tok::kIdent;
      current_.text = std::string(source_.substr(start, pos_ - start));
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(ch))) {
      lex_number();
      return;
    }
    ++pos_;
    auto two = [&](char next, Tok with, Tok without) {
      if (pos_ < source_.size() && source_[pos_] == next) {
        ++pos_;
        current_.kind = with;
      } else {
        current_.kind = without;
      }
    };
    switch (ch) {
      case '(': current_.kind = Tok::kLParen; return;
      case ')': current_.kind = Tok::kRParen; return;
      case '{': current_.kind = Tok::kLBrace; return;
      case '}': current_.kind = Tok::kRBrace; return;
      case '[': current_.kind = Tok::kLBracket; return;
      case ']': current_.kind = Tok::kRBracket; return;
      case ';': current_.kind = Tok::kSemi; return;
      case ',': current_.kind = Tok::kComma; return;
      case ':': current_.kind = Tok::kColon; return;
      case '?': current_.kind = Tok::kQuestion; return;
      case '@': current_.kind = Tok::kAt; return;
      case '.': current_.kind = Tok::kDot; return;
      case '+': current_.kind = Tok::kPlus; return;
      case '-': current_.kind = Tok::kMinus; return;
      case '^': current_.kind = Tok::kXor; return;
      case '~': current_.kind = Tok::kTilde; return;
      case '&': two('&', Tok::kAndAnd, Tok::kAnd); return;
      case '|': two('|', Tok::kOrOr, Tok::kOr); return;
      case '=': two('=', Tok::kEq, Tok::kAssignEq); return;
      case '!': two('=', Tok::kNe, Tok::kNot); return;
      case '<':
        if (pos_ < source_.size() && source_[pos_] == '<') {
          ++pos_;
          current_.kind = Tok::kShl;
        } else {
          two('=', Tok::kLe, Tok::kLt);
        }
        return;
      case '>':
        if (pos_ < source_.size() && source_[pos_] == '>') {
          ++pos_;
          current_.kind = Tok::kShr;
        } else {
          two('=', Tok::kGe, Tok::kGt);
        }
        return;
      default:
        throw VerilogError(std::string("unexpected character '") + ch + "'",
                           line_);
    }
  }

  void lex_number() {
    // <digits> or <digits>'<base><digits>.
    std::int64_t first = 0;
    const std::size_t start = pos_;
    while (pos_ < source_.size() &&
           (std::isdigit(static_cast<unsigned char>(source_[pos_])) ||
            source_[pos_] == '_')) {
      if (source_[pos_] != '_') first = first * 10 + (source_[pos_] - '0');
      ++pos_;
    }
    (void)start;
    if (pos_ < source_.size() && source_[pos_] == '\'') {
      ++pos_;
      if (pos_ >= source_.size()) throw VerilogError("bad literal", line_);
      const char base_ch =
          static_cast<char>(std::tolower(static_cast<unsigned char>(source_[pos_++])));
      int base = 10;
      switch (base_ch) {
        case 'd': base = 10; break;
        case 'h': base = 16; break;
        case 'b': base = 2; break;
        case 'o': base = 8; break;
        default: throw VerilogError("unknown literal base", line_);
      }
      std::int64_t value = 0;
      bool any = false;
      while (pos_ < source_.size()) {
        const char d = static_cast<char>(std::tolower(static_cast<unsigned char>(source_[pos_])));
        int digit;
        if (d >= '0' && d <= '9') {
          digit = d - '0';
        } else if (d >= 'a' && d <= 'f') {
          digit = d - 'a' + 10;
        } else if (d == '_') {
          ++pos_;
          continue;
        } else {
          break;
        }
        if (digit >= base) break;
        value = value * base + digit;
        any = true;
        ++pos_;
      }
      if (!any) throw VerilogError("empty literal digits", line_);
      current_.kind = Tok::kSizedNumber;
      current_.value = value;
      current_.width = static_cast<int>(first);
      if (current_.width < 1 || current_.width > ir::kMaxWidth)
        throw VerilogError("literal width out of range", line_);
      return;
    }
    current_.kind = Tok::kNumber;  // unsized decimal
    current_.value = first;
  }

  void skip_space_and_comments() {
    while (pos_ < source_.size()) {
      const char ch = source_[pos_];
      if (ch == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(ch))) {
        ++pos_;
      } else if (ch == '/' && pos_ + 1 < source_.size() &&
                 source_[pos_ + 1] == '/') {
        while (pos_ < source_.size() && source_[pos_] != '\n') ++pos_;
      } else if (ch == '/' && pos_ + 1 < source_.size() &&
                 source_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < source_.size() &&
               !(source_[pos_] == '*' && source_[pos_ + 1] == '/')) {
          if (source_[pos_] == '\n') ++line_;
          ++pos_;
        }
        pos_ += 2;
      } else {
        break;
      }
    }
  }

  std::string_view source_;
  std::size_t pos_ = 0;
  int line_ = 1;
  Token current_;
};

// ----------------------------------------------------------------- values

// An expression value: either a built net or an unsized constant whose
// width is fixed by context (Verilog's self-determined-width rules,
// simplified to the unsigned cases we need).
struct Value {
  NetId net = ir::kNoNet;
  bool is_const = false;
  std::int64_t const_value = 0;
};

// ----------------------------------------------------------------- parser

class Parser {
 public:
  explicit Parser(std::string_view source)
      : lex_(source), seq_("module") {}

  ir::SeqCircuit run() {
    expect_ident("module");
    seq_.comb().set_name(expect_any_ident());
    parse_port_list();
    expect(Tok::kSemi);
    while (!at_ident("endmodule")) parse_item();
    take();  // endmodule
    finalize_registers();
    seq_.validate();
    return std::move(seq_);
  }

 private:
  // ---------------------------------------------------------- module items

  void parse_port_list() {
    expect(Tok::kLParen);
    if (lex_.peek().kind == Tok::kRParen) {
      take();
      return;
    }
    while (true) {
      parse_port();
      if (lex_.peek().kind == Tok::kComma) {
        take();
        continue;
      }
      expect(Tok::kRParen);
      return;
    }
  }

  void parse_port() {
    const int line = lex_.line();
    bool is_input;
    if (at_ident("input")) {
      is_input = true;
    } else if (at_ident("output")) {
      is_input = false;
    } else {
      throw VerilogError("expected input/output", line);
    }
    take();
    bool is_reg = false;
    if (at_ident("wire")) take();
    if (at_ident("reg")) {
      is_reg = true;
      take();
    }
    const int width = parse_optional_range();
    const std::string name = expect_any_ident();
    if (is_input) {
      // Clock ports carry no logic in the one-implicit-clock model.
      if (name == "clk" || name == "clock") {
        clock_name_ = name;
        return;
      }
      define(name, seq_.comb().add_input(name, width), width);
    } else if (is_reg) {
      // `output reg [w:0] q` declares a register (reset value 0).
      define(name, seq_.add_register(name, width, 0), width);
      regs_.insert(name);
    } else {
      outputs_.push_back({name, width});
      widths_[name] = width;
    }
  }

  void parse_item() {
    const int line = lex_.line();
    if (at_ident("wire")) {
      take();
      parse_wire_decl();
    } else if (at_ident("reg")) {
      take();
      parse_reg_decl();
    } else if (at_ident("assign")) {
      take();
      parse_assign();
    } else if (at_ident("always")) {
      take();
      parse_always();
    } else if (at_ident("property")) {
      take();
      parse_property();
    } else {
      throw VerilogError("unexpected item '" + lex_.peek().text + "'", line);
    }
  }

  void parse_wire_decl() {
    const int width = parse_optional_range();
    while (true) {
      const int line = lex_.line();
      const std::string name = expect_any_ident();
      if (lex_.peek().kind == Tok::kAssignEq) {
        take();
        const NetId net = materialize(parse_expr(), width, line);
        define(name, net, width);
      } else {
        // Forward declaration; must be assigned later.
        widths_[name] = width;
      }
      if (lex_.peek().kind == Tok::kComma) {
        take();
        continue;
      }
      expect(Tok::kSemi);
      return;
    }
  }

  void parse_reg_decl() {
    const int width = parse_optional_range();
    while (true) {
      const int line = lex_.line();
      const std::string name = expect_any_ident();
      std::int64_t init = 0;
      if (lex_.peek().kind == Tok::kAssignEq) {
        take();
        const Value v = parse_expr();
        if (!v.is_const)
          throw VerilogError("reg initializer must be constant", line);
        init = v.const_value;
      }
      const NetId q = seq_.add_register(name, width, init);
      define(name, q, width);
      regs_.insert(name);
      if (lex_.peek().kind == Tok::kComma) {
        take();
        continue;
      }
      expect(Tok::kSemi);
      return;
    }
  }

  void parse_assign() {
    const int line = lex_.line();
    const std::string name = expect_any_ident();
    expect(Tok::kAssignEq);
    auto it = widths_.find(name);
    if (it == widths_.end())
      throw VerilogError("assign to undeclared '" + name + "'", line);
    if (nets_.contains(name))
      throw VerilogError("'" + name + "' assigned twice", line);
    const NetId net = materialize(parse_expr(), it->second, line);
    define(name, net, it->second);
    expect(Tok::kSemi);
  }

  void parse_property() {
    const int line = lex_.line();
    const std::string name = expect_any_ident();
    expect(Tok::kAssignEq);
    const NetId net = materialize(parse_expr(), 1, line);
    seq_.add_property(name, net);
    expect(Tok::kSemi);
  }

  // ------------------------------------------------------------ always

  using Env = std::unordered_map<std::string, NetId>;

  void parse_always() {
    const int line = lex_.line();
    expect(Tok::kAt);
    expect(Tok::kLParen);
    expect_ident("posedge");
    const std::string clk = expect_any_ident();
    if (!clock_name_.empty() && clk != clock_name_)
      throw VerilogError("multiple clocks are not supported", line);
    expect(Tok::kRParen);
    Env env;  // reg name → next-state net for this block
    parse_statement(env);
    for (auto& [name, net] : env) {
      if (next_state_.contains(name))
        throw VerilogError("'" + name + "' driven by two always blocks", line);
      next_state_[name] = net;
    }
  }

  void parse_statement(Env& env) {
    const int line = lex_.line();
    if (at_ident("begin")) {
      take();
      while (!at_ident("end")) parse_statement(env);
      take();
      return;
    }
    if (at_ident("if")) {
      take();
      expect(Tok::kLParen);
      const NetId cond = materialize(parse_expr(), 1, line);
      expect(Tok::kRParen);
      Env then_env = env;
      parse_statement(then_env);
      Env else_env = env;
      if (at_ident("else")) {
        take();
        parse_statement(else_env);
      }
      merge_branches(cond, then_env, else_env, env);
      return;
    }
    // Nonblocking assignment: <reg> <= expr ;
    const std::string name = expect_any_ident();
    if (!regs_.contains(name))
      throw VerilogError("'" + name + "' is not a reg", line);
    if (lex_.peek().kind != Tok::kLe)
      throw VerilogError("expected '<=' in always block", line);
    take();
    env[name] = materialize(parse_expr(), widths_.at(name), line);
    expect(Tok::kSemi);
  }

  void merge_branches(NetId cond, const Env& then_env, const Env& else_env,
                      Env& out) {
    Env merged = out;
    auto current = [&](const std::string& name) {
      auto it = out.find(name);
      if (it != out.end()) return it->second;
      return nets_.at(name);  // hold the register's current value
    };
    for (const auto& [name, net] : then_env) {
      const NetId other =
          else_env.contains(name) ? else_env.at(name) : current(name);
      merged[name] = seq_.comb().add_mux(cond, net, other);
    }
    for (const auto& [name, net] : else_env) {
      if (then_env.contains(name)) continue;
      merged[name] = seq_.comb().add_mux(cond, current(name), net);
    }
    out = std::move(merged);
  }

  void finalize_registers() {
    for (const auto& reg : seq_.registers()) {
      auto it = next_state_.find(reg.name);
      // An undriven register holds its value forever.
      seq_.bind_next(reg.q, it == next_state_.end() ? reg.q : it->second);
    }
    for (const auto& [name, width] : outputs_) {
      if (!nets_.contains(name))
        throw VerilogError("output '" + name + "' never assigned", 0);
    }
  }

  // ------------------------------------------------------- expressions
  //
  // Precedence (low → high): ?: , ||, &&, |, ^, &, equality, relational,
  // shift, additive, unary, primary.

  Value parse_expr() { return parse_ternary(); }

  Value parse_ternary() {
    const int line = lex_.line();
    Value cond = parse_or();
    if (lex_.peek().kind != Tok::kQuestion) return cond;
    take();
    const Value t = parse_ternary();
    expect(Tok::kColon);
    const Value e = parse_ternary();
    const NetId cnet = materialize(cond, 1, line);
    auto [tn, en] = harmonize(t, e, line);
    return wrap(seq_.comb().add_mux(cnet, tn, en));
  }

  Value parse_or() {
    Value lhs = parse_and_bool();
    while (lex_.peek().kind == Tok::kOrOr) {
      const int line = lex_.line();
      take();
      const Value rhs = parse_and_bool();
      lhs = wrap(seq_.comb().add_or(materialize(lhs, 1, line),
                                    materialize(rhs, 1, line)));
    }
    return lhs;
  }

  Value parse_and_bool() {
    Value lhs = parse_bitor();
    while (lex_.peek().kind == Tok::kAndAnd) {
      const int line = lex_.line();
      take();
      const Value rhs = parse_bitor();
      lhs = wrap(seq_.comb().add_and(materialize(lhs, 1, line),
                                     materialize(rhs, 1, line)));
    }
    return lhs;
  }

  Value parse_bitor() {
    Value lhs = parse_bitxor();
    while (lex_.peek().kind == Tok::kOr) {
      const int line = lex_.line();
      take();
      lhs = bitwise(lhs, parse_bitxor(), 'o', line);
    }
    return lhs;
  }

  Value parse_bitxor() {
    Value lhs = parse_bitand();
    while (lex_.peek().kind == Tok::kXor) {
      const int line = lex_.line();
      take();
      lhs = bitwise(lhs, parse_bitand(), 'x', line);
    }
    return lhs;
  }

  Value parse_bitand() {
    Value lhs = parse_equality();
    while (lex_.peek().kind == Tok::kAnd) {
      const int line = lex_.line();
      take();
      lhs = bitwise(lhs, parse_equality(), 'a', line);
    }
    return lhs;
  }

  Value parse_equality() {
    Value lhs = parse_relational();
    while (lex_.peek().kind == Tok::kEq || lex_.peek().kind == Tok::kNe) {
      const int line = lex_.line();
      const Tok op = take().kind;
      const Value rhs = parse_relational();
      auto [a, b] = harmonize(lhs, rhs, line);
      lhs = wrap(op == Tok::kEq ? seq_.comb().add_eq(a, b)
                                : seq_.comb().add_ne(a, b));
    }
    return lhs;
  }

  Value parse_relational() {
    Value lhs = parse_shift();
    while (lex_.peek().kind == Tok::kLt || lex_.peek().kind == Tok::kLe ||
           lex_.peek().kind == Tok::kGt || lex_.peek().kind == Tok::kGe) {
      const int line = lex_.line();
      const Tok op = take().kind;
      const Value rhs = parse_shift();
      auto [a, b] = harmonize(lhs, rhs, line);
      Circuit& c = seq_.comb();
      switch (op) {
        case Tok::kLt: lhs = wrap(c.add_lt(a, b)); break;
        case Tok::kLe: lhs = wrap(c.add_le(a, b)); break;
        case Tok::kGt: lhs = wrap(c.add_gt(a, b)); break;
        default: lhs = wrap(c.add_ge(a, b)); break;
      }
    }
    return lhs;
  }

  Value parse_shift() {
    Value lhs = parse_additive();
    while (lex_.peek().kind == Tok::kShl || lex_.peek().kind == Tok::kShr) {
      const int line = lex_.line();
      const Tok op = take().kind;
      const Value rhs = parse_additive();
      if (!rhs.is_const)
        throw VerilogError("shift amount must be constant", line);
      const NetId a = require_net(lhs, line);
      lhs = wrap(op == Tok::kShl
                     ? seq_.comb().add_shl(a, static_cast<int>(rhs.const_value))
                     : seq_.comb().add_shr(a, static_cast<int>(rhs.const_value)));
    }
    return lhs;
  }

  Value parse_additive() {
    Value lhs = parse_unary();
    while (lex_.peek().kind == Tok::kPlus || lex_.peek().kind == Tok::kMinus) {
      const int line = lex_.line();
      const Tok op = take().kind;
      const Value rhs = parse_unary();
      auto [a, b] = harmonize(lhs, rhs, line);
      lhs = wrap(op == Tok::kPlus ? seq_.comb().add_add(a, b)
                                  : seq_.comb().add_sub(a, b));
    }
    return lhs;
  }

  Value parse_unary() {
    const int line = lex_.line();
    if (lex_.peek().kind == Tok::kNot) {
      take();
      return wrap(seq_.comb().add_not(materialize(parse_unary(), 1, line)));
    }
    if (lex_.peek().kind == Tok::kTilde) {
      take();
      const NetId a = require_net(parse_unary(), line);
      return wrap(seq_.comb().width(a) == 1 ? seq_.comb().add_not(a)
                                            : seq_.comb().add_notw(a));
    }
    return parse_primary();
  }

  Value parse_primary() {
    const int line = lex_.line();
    const Token t = lex_.peek();
    switch (t.kind) {
      case Tok::kNumber: {
        take();
        Value v;
        v.is_const = true;
        v.const_value = t.value;
        return v;
      }
      case Tok::kSizedNumber:
        take();
        return wrap(seq_.comb().add_const(t.value, t.width));
      case Tok::kLParen: {
        take();
        const Value v = parse_expr();
        expect(Tok::kRParen);
        return v;
      }
      case Tok::kLBrace: {
        // Concatenation {a, b, c} — left part is the high end.
        take();
        NetId acc = require_net(parse_expr(), line);
        while (lex_.peek().kind == Tok::kComma) {
          take();
          const NetId next = require_net(parse_expr(), line);
          acc = seq_.comb().add_concat(acc, next);
        }
        expect(Tok::kRBrace);
        return wrap(acc);
      }
      case Tok::kIdent: {
        take();
        auto it = nets_.find(t.text);
        if (it == nets_.end())
          throw VerilogError("unknown identifier '" + t.text + "'", line);
        NetId net = it->second;
        if (lex_.peek().kind == Tok::kLBracket) {
          take();
          const Value hi = parse_expr();
          if (!hi.is_const)
            throw VerilogError("bit index must be constant", line);
          std::int64_t lo = hi.const_value;
          if (lex_.peek().kind == Tok::kColon) {
            take();
            const Value lov = parse_expr();
            if (!lov.is_const)
              throw VerilogError("part-select bound must be constant", line);
            lo = lov.const_value;
          }
          expect(Tok::kRBracket);
          net = seq_.comb().add_extract(net, static_cast<int>(hi.const_value),
                                        static_cast<int>(lo));
        }
        return wrap(net);
      }
      default:
        throw VerilogError("expected expression", line);
    }
  }

  // ------------------------------------------------------------- helpers

  Value wrap(NetId net) {
    Value v;
    v.net = net;
    return v;
  }

  NetId require_net(const Value& v, int line) {
    if (v.is_const)
      throw VerilogError("unsized constant needs width context", line);
    return v.net;
  }

  // Builds the value as a net of exactly `width` bits (zero-extending
  // narrower nets, sizing unsized constants).
  NetId materialize(const Value& v, int width, int line) {
    Circuit& c = seq_.comb();
    if (v.is_const) {
      if (!Interval::full_width(width).contains(v.const_value))
        throw VerilogError("constant does not fit in width", line);
      return c.add_const(v.const_value, width);
    }
    const int have = c.width(v.net);
    if (have == width) return v.net;
    if (have < width) return c.add_zext(v.net, width);
    throw VerilogError("width mismatch (have " + std::to_string(have) +
                           ", need " + std::to_string(width) + ")",
                       line);
  }

  // Harmonizes two operands to a common width (Verilog's unsigned
  // extension of the narrower side).
  std::pair<NetId, NetId> harmonize(const Value& a, const Value& b, int line) {
    Circuit& c = seq_.comb();
    if (a.is_const && b.is_const)
      throw VerilogError("constant expression needs width context", line);
    if (a.is_const) {
      const NetId bn = b.net;
      return {materialize(a, c.width(bn), line), bn};
    }
    if (b.is_const) {
      const NetId an = a.net;
      return {an, materialize(b, c.width(an), line)};
    }
    const int w = std::max(c.width(a.net), c.width(b.net));
    return {c.add_zext(a.net, w), c.add_zext(b.net, w)};
  }

  // Bitwise & | ^: Boolean gates at width 1; per-bit expansion otherwise.
  Value bitwise(const Value& lhs, const Value& rhs, char op, int line) {
    auto [a, b] = harmonize(lhs, rhs, line);
    Circuit& c = seq_.comb();
    const int w = c.width(a);
    if (w == 1) {
      switch (op) {
        case 'a': return wrap(c.add_and(a, b));
        case 'o': return wrap(c.add_or(a, b));
        default: return wrap(c.add_xor(a, b));
      }
    }
    // Per-bit expansion, recombined with concat (MSB first).
    NetId acc = ir::kNoNet;
    for (int k = w - 1; k >= 0; --k) {
      const NetId ab = c.add_bit(a, k);
      const NetId bb = c.add_bit(b, k);
      NetId bit;
      switch (op) {
        case 'a': bit = c.add_and(ab, bb); break;
        case 'o': bit = c.add_or(ab, bb); break;
        default: bit = c.add_xor(ab, bb); break;
      }
      acc = acc == ir::kNoNet ? bit : c.add_concat(acc, bit);
    }
    return wrap(acc);
  }

  void define(const std::string& name, NetId net, int width) {
    if (nets_.contains(name))
      throw VerilogError("duplicate declaration of '" + name + "'",
                         lex_.line());
    nets_[name] = net;
    widths_[name] = width;
    if (seq_.comb().node(net).name.empty()) {
      seq_.comb().set_net_name(net, name);
    } else {
      seq_.comb().add_name_alias(name, net);  // hash-consed alias
    }
  }

  int parse_optional_range() {
    if (lex_.peek().kind != Tok::kLBracket) return 1;
    take();
    const Token msb = take();
    if (msb.kind != Tok::kNumber)
      throw VerilogError("expected constant msb", msb.line);
    expect(Tok::kColon);
    const Token lsb = take();
    if (lsb.kind != Tok::kNumber || lsb.value != 0)
      throw VerilogError("ranges must be [msb:0]", lsb.line);
    expect(Tok::kRBracket);
    const int width = static_cast<int>(msb.value) + 1;
    if (width < 1 || width > ir::kMaxWidth)
      throw VerilogError("width out of range", msb.line);
    return width;
  }

  bool at_ident(std::string_view word) const {
    return lex_.peek().kind == Tok::kIdent && lex_.peek().text == word;
  }
  Token take() { return lex_.take(); }
  void expect(Tok kind) {
    const Token t = take();
    if (t.kind != kind)
      throw VerilogError("unexpected token '" + t.text + "'", t.line);
  }
  void expect_ident(std::string_view word) {
    const Token t = take();
    if (t.kind != Tok::kIdent || t.text != word)
      throw VerilogError("expected '" + std::string(word) + "'", t.line);
  }
  std::string expect_any_ident() {
    const Token t = take();
    if (t.kind != Tok::kIdent)
      throw VerilogError("expected identifier", t.line);
    return t.text;
  }

  Lexer lex_;
  ir::SeqCircuit seq_;
  std::string clock_name_;
  std::unordered_map<std::string, NetId> nets_;
  std::unordered_map<std::string, int> widths_;
  std::set<std::string> regs_;
  std::unordered_map<std::string, NetId> next_state_;
  std::vector<std::pair<std::string, int>> outputs_;
};

}  // namespace

ir::SeqCircuit parse(std::string_view source) { return Parser(source).run(); }

ir::SeqCircuit load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

}  // namespace rtlsat::verilog
