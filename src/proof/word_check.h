// Verifier for word-level (HDPLL) certificates.
//
// word_check parses a JSONL certificate (word_writer.h) and re-derives
// every claim with its own machinery: interval narrowings through the
// independent rule mirror (check_rules.h), clause propagations against its
// own clause registry, learned clauses by replaying their implication-graph
// antecedent cut from the level-0 state, FME refutations step by step in
// exact __int128 arithmetic, and predicate-learning probes by re-checking
// the two-case recursive-learning split covers every semantically possible
// way. An "unsat" verdict is accepted only when some record established a
// verified refutation of the instance.
//
// The trust base is deliberately small: src/interval arithmetic, the
// linear-combination checker below, and the JSON parser. Nothing from
// src/core, src/prop, or src/sat is linked.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace rtlsat::proof {

struct WordCheckOptions {
  // Accept "import" records (portfolio clauses proved by a peer) without
  // justification. Off, an import is a hole in the proof and is rejected.
  bool trust_imports = false;
};

struct WordCheckResult {
  bool ok = false;
  // A refutation of the instance was verified (independent of the
  // verdict; "unsat" is accepted iff this holds).
  bool refuted = false;
  std::string verdict;        // from the end record
  std::int64_t records = 0;   // lines processed
  std::string error;          // "line N: …" for the first rejected step
};

WordCheckResult word_check(std::string_view certificate,
                           const WordCheckOptions& options = {});

}  // namespace rtlsat::proof
