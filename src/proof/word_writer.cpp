#include "proof/word_writer.h"

#include <cstdio>

#include "trace/json.h"

namespace rtlsat::proof {

namespace {

using trace::JsonWriter;

void write_lit(JsonWriter& w, const WordLit& lit) {
  w.begin_object();
  w.key("net").value(static_cast<std::int64_t>(lit.net));
  w.key("b").value(lit.is_bool);
  w.key("p").value(lit.positive);
  w.key("lo").value(lit.lo);
  w.key("hi").value(lit.hi);
  w.end_object();
}

void write_lits(JsonWriter& w, const std::vector<WordLit>& lits) {
  w.begin_array();
  for (const WordLit& lit : lits) write_lit(w, lit);
  w.end_array();
}

void write_step(JsonWriter& w, const WordStep& step) {
  w.begin_object();
  w.key("net").value(static_cast<std::int64_t>(step.net));
  w.key("k").value(std::string_view(&step.kind, 1));
  w.key("id").value(static_cast<std::int64_t>(step.id));
  w.key("lo").value(step.lo);
  w.key("hi").value(step.hi);
  w.end_object();
}

void write_steps(JsonWriter& w, const std::vector<WordStep>& steps) {
  w.begin_array();
  for (const WordStep& s : steps) write_step(w, s);
  w.end_array();
}

void write_conflict(JsonWriter& w, const WordConflict& conflict) {
  if (conflict.kind == 0) {
    w.null();
    return;
  }
  w.begin_object();
  w.key("k").value(std::string_view(&conflict.kind, 1));
  w.key("id").value(static_cast<std::int64_t>(conflict.id));
  w.end_object();
}

std::string ref_string(const fme::ProofRef& ref) {
  switch (ref.kind) {
    case fme::ProofRef::Kind::kConstraint:
      return "c" + std::to_string(ref.index);
    case fme::ProofRef::Kind::kUpper:
      return "u" + std::to_string(ref.index);
    case fme::ProofRef::Kind::kLower:
      return "l" + std::to_string(ref.index);
    case fme::ProofRef::Kind::kStep:
      return "s" + std::to_string(ref.index);
  }
  return "?";
}

void write_fme(JsonWriter& w, const FmeCert& fme) {
  w.begin_object();
  w.key("vars").begin_array();
  for (const FmeCertVar& v : fme.vars) {
    w.begin_object();
    w.key(v.is_net ? "net" : "node").value(static_cast<std::int64_t>(v.id));
    w.key("lo").value(v.lo);
    w.key("hi").value(v.hi);
    w.end_object();
  }
  w.end_array();
  w.key("cons").begin_array();
  for (const FmeCertCon& c : fme.cons) {
    w.begin_object();
    w.key("node").value(static_cast<std::int64_t>(c.node));
    w.key("terms").begin_array();
    for (const auto& [var, coeff] : c.terms) {
      w.begin_array();
      w.value(static_cast<std::int64_t>(var));
      w.value(coeff);
      w.end_array();
    }
    w.end_array();
    w.key("bnd").value(i128_to_string(c.bound));
    w.end_object();
  }
  w.end_array();
  w.key("steps").begin_array();
  for (const fme::CertStep& s : fme.refutation.steps) {
    w.begin_object();
    switch (s.kind) {
      case fme::CertStep::Kind::kComb:
        w.key("s").value("comb");
        w.key("of").begin_array();
        for (const auto& [ref, lambda] : s.combo) {
          w.begin_array();
          w.value(ref_string(ref));
          w.value(i128_to_string(lambda));
          w.end_array();
        }
        w.end_array();
        break;
      case fme::CertStep::Kind::kDiv:
        w.key("s").value("div");
        w.key("of").value(ref_string(s.div_of));
        w.key("d").value(i128_to_string(s.divisor));
        break;
      case fme::CertStep::Kind::kSplit:
        w.key("s").value("split");
        w.key("v").value(static_cast<std::int64_t>(s.split_var));
        w.key("at").value(i128_to_string(s.split_at));
        break;
      case fme::CertStep::Kind::kCase:
        w.key("s").value("case");
        break;
      case fme::CertStep::Kind::kQed:
        w.key("s").value("qed");
        break;
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

void WordCertWriter::line(std::string text) {
  out_ += text;
  out_ += '\n';
  ++records_;
}

void WordCertWriter::header() {
  JsonWriter w;
  w.begin_object();
  w.key("t").value("rtlsat_cert");
  w.key("version").value(1);
  w.end_object();
  line(w.take());
}

void WordCertWriter::net(std::uint32_t id, int width, const std::string& op,
                         const std::vector<std::uint32_t>& args,
                         std::int64_t imm, std::int64_t imm2) {
  JsonWriter w;
  w.begin_object();
  w.key("t").value("net");
  w.key("id").value(static_cast<std::int64_t>(id));
  w.key("w").value(width);
  w.key("op").value(op);
  w.key("args").begin_array();
  for (const std::uint32_t a : args) w.value(static_cast<std::int64_t>(a));
  w.end_array();
  w.key("imm").value(imm);
  w.key("imm2").value(imm2);
  w.end_object();
  line(w.take());
}

void WordCertWriter::assume(std::uint32_t net, std::int64_t lo,
                            std::int64_t hi) {
  JsonWriter w;
  w.begin_object();
  w.key("t").value("assume");
  w.key("net").value(static_cast<std::int64_t>(net));
  w.key("lo").value(lo);
  w.key("hi").value(hi);
  w.end_object();
  line(w.take());
}

void WordCertWriter::narrow0(const WordStep& step) {
  JsonWriter w;
  w.begin_object();
  w.key("t").value("n0");
  w.key("net").value(static_cast<std::int64_t>(step.net));
  w.key("k").value(std::string_view(&step.kind, 1));
  w.key("id").value(static_cast<std::int64_t>(step.id));
  w.key("lo").value(step.lo);
  w.key("hi").value(step.hi);
  w.end_object();
  line(w.take());
}

void WordCertWriter::conflict0(char kind, std::uint32_t id) {
  JsonWriter w;
  w.begin_object();
  w.key("t").value("conflict0");
  w.key("k").value(std::string_view(&kind, 1));
  w.key("id").value(static_cast<std::int64_t>(id));
  w.end_object();
  line(w.take());
}

void WordCertWriter::learn(std::int64_t clause_id,
                           const std::vector<WordLit>& lits,
                           const std::vector<WordStep>& steps,
                           const WordConflict& conflict) {
  JsonWriter w;
  w.begin_object();
  w.key("t").value("learn");
  w.key("id").value(clause_id);
  w.key("lits");
  write_lits(w, lits);
  w.key("steps");
  write_steps(w, steps);
  w.key("conf");
  write_conflict(w, conflict);
  w.end_object();
  line(w.take());
}

void WordCertWriter::cut(std::int64_t clause_id,
                         const std::vector<WordLit>& lits,
                         const std::vector<WordStep>& steps,
                         const FmeCert& fme) {
  JsonWriter w;
  w.begin_object();
  w.key("t").value("cut");
  w.key("id").value(clause_id);
  w.key("lits");
  write_lits(w, lits);
  w.key("steps");
  write_steps(w, steps);
  w.key("fme");
  write_fme(w, fme);
  w.end_object();
  line(w.take());
}

void WordCertWriter::fme0(const FmeCert& fme) {
  JsonWriter w;
  w.begin_object();
  w.key("t").value("fme0");
  w.key("fme");
  write_fme(w, fme);
  w.end_object();
  line(w.take());
}

void WordCertWriter::probe(std::uint32_t net, std::int64_t val,
                           const std::vector<WordStep>& steps,
                           const WordConflict& conflict,
                           const std::vector<ProbeWay>& ways,
                           const std::vector<std::vector<WordLit>>& clauses) {
  JsonWriter w;
  w.begin_object();
  w.key("t").value("probe");
  w.key("net").value(static_cast<std::int64_t>(net));
  w.key("val").value(val);
  w.key("steps");
  write_steps(w, steps);
  w.key("conf");
  write_conflict(w, conflict);
  w.key("ways").begin_array();
  for (const ProbeWay& way : ways) {
    w.begin_object();
    w.key("assign").begin_array();
    for (const auto& [n, v] : way.assign) {
      w.begin_array();
      w.value(static_cast<std::int64_t>(n));
      w.value(v);
      w.end_array();
    }
    w.end_array();
    w.key("steps");
    write_steps(w, way.steps);
    w.key("conf");
    write_conflict(w, way.conflict);
    w.end_object();
  }
  w.end_array();
  w.key("clauses").begin_array();
  for (const auto& clause : clauses) write_lits(w, clause);
  w.end_array();
  w.end_object();
  line(w.take());
}

void WordCertWriter::wprobe(std::uint32_t net,
                            const std::vector<ProbeCase>& cases,
                            const std::vector<std::vector<WordLit>>& clauses) {
  JsonWriter w;
  w.begin_object();
  w.key("t").value("wprobe");
  w.key("net").value(static_cast<std::int64_t>(net));
  w.key("cases").begin_array();
  for (const ProbeCase& c : cases) {
    w.begin_object();
    w.key("lo").value(c.lo);
    w.key("hi").value(c.hi);
    w.key("steps");
    write_steps(w, c.steps);
    w.key("conf");
    write_conflict(w, c.conflict);
    w.end_object();
  }
  w.end_array();
  w.key("clauses").begin_array();
  for (const auto& clause : clauses) write_lits(w, clause);
  w.end_array();
  w.end_object();
  line(w.take());
}

void WordCertWriter::add_clause(std::int64_t id,
                                const std::vector<WordLit>& lits) {
  JsonWriter w;
  w.begin_object();
  w.key("t").value("addc");
  w.key("id").value(id);
  w.key("lits");
  write_lits(w, lits);
  w.end_object();
  line(w.take());
}

void WordCertWriter::import_clause(std::int64_t id, int worker,
                                   std::int64_t seq,
                                   const std::vector<WordLit>& lits) {
  JsonWriter w;
  w.begin_object();
  w.key("t").value("import");
  w.key("id").value(id);
  w.key("worker").value(worker);
  w.key("seq").value(seq);
  w.key("lits");
  write_lits(w, lits);
  w.end_object();
  line(w.take());
}

void WordCertWriter::delete_clause(std::int64_t id) {
  JsonWriter w;
  w.begin_object();
  w.key("t").value("delc");
  w.key("id").value(id);
  w.end_object();
  line(w.take());
}

void WordCertWriter::finish(const std::string& verdict) {
  if (finished_) return;
  finished_ = true;
  JsonWriter w;
  w.begin_object();
  w.key("t").value("end");
  w.key("verdict").value(verdict);
  w.end_object();
  line(w.take());
}

bool WordCertWriter::save(const std::string& path, std::string* error) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  const std::size_t written =
      out_.empty() ? 0 : std::fwrite(out_.data(), 1, out_.size(), f);
  const bool ok = std::fclose(f) == 0 && written == out_.size();
  if (!ok && error != nullptr) *error = "short write to " + path;
  return ok;
}

}  // namespace rtlsat::proof
