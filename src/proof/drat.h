// DRAT proof writer for the Boolean CDCL core.
//
// sat::Solver calls original()/learned()/deleted() as it adds problem
// clauses, learns 1UIP clauses (post-minimization, so deletions later
// match the stored form), and reduces its learnt DB. The writer captures
// the problem in DIMACS form and the derivation in DRAT, either the
// standard text format or the binary encoding ('a'/'d' tagged,
// ULEB128-compressed literals) used by drat-trim.
//
// Literals are signed DIMACS integers (variable ≥ 1, negative = negated);
// the solver maps its internal 0-based codes before calling, keeping
// src/proof independent of src/sat (sat links against proof, not the
// other way round).
//
// Zero-overhead-when-off contract: the solver holds a nullable pointer to
// this class and tests it once per cold event (clause added, clause
// learned, DB reduced) — nothing on the propagation hot path changes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rtlsat::proof {

class DratWriter {
 public:
  struct Options {
    bool binary = false;   // binary DRAT instead of text
    bool discard = false;  // count steps/bytes but keep no content
                           // (bench/micro_proof measures hook cost with it)
  };

  DratWriter() = default;
  explicit DratWriter(Options options) : options_(options) {}

  // Problem clause, exactly as handed to Solver::add_clause (before the
  // solver's duplicate/tautology simplification — the checker's unit
  // propagation re-derives anything the simplifier concluded).
  void original(const std::vector<int>& clause);
  // Learned clause in its stored (post-minimization) form. An empty
  // clause concludes the proof.
  void learned(const std::vector<int>& clause);
  void empty_clause() { learned({}); }
  // Learnt clause dropped by DB reduction ⟹ DRAT 'd' line.
  void deleted(const std::vector<int>& clause);

  // Complete DIMACS document ("p cnf <vars> <clauses>" + captured
  // problem clauses).
  std::string dimacs() const;
  const std::string& proof() const { return proof_; }
  bool binary() const { return options_.binary; }

  std::int64_t original_clauses() const { return num_original_; }
  std::int64_t proof_steps() const { return num_steps_; }
  std::int64_t proof_deletions() const { return num_deletions_; }
  std::int64_t proof_bytes() const { return proof_bytes_; }
  bool concluded() const { return concluded_; }

  // Writes dimacs() and proof() to files. Returns false (with a message
  // in *error when non-null) on I/O failure or in discard mode.
  bool save(const std::string& dimacs_path, const std::string& proof_path,
            std::string* error) const;

 private:
  void emit(char tag, const std::vector<int>& clause);

  Options options_;
  std::string formula_;  // problem clauses, one DIMACS line each
  std::string proof_;
  std::int64_t num_original_ = 0;
  std::int64_t num_steps_ = 0;
  std::int64_t num_deletions_ = 0;
  std::int64_t proof_bytes_ = 0;
  int max_var_ = 0;
  bool concluded_ = false;
};

}  // namespace rtlsat::proof
