#include "proof/drat_check.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <unordered_map>
#include <vector>

namespace rtlsat::proof {

namespace {

// Literal code: 2·(var−1) + (negated ? 1 : 0), vars are 1-based DIMACS.
std::uint32_t code_of(int lit) {
  const auto var = static_cast<std::uint32_t>(lit < 0 ? -lit : lit);
  return 2 * (var - 1) + (lit < 0 ? 1 : 0);
}

struct ProofStep {
  bool deletion = false;
  std::vector<int> lits;
};

bool parse_dimacs(std::string_view text, std::vector<std::vector<int>>* out,
                  std::string* error) {
  std::vector<int> current;
  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (c == 'c' || c == 'p') {  // comment / problem line: skip to newline
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    bool negative = false;
    if (c == '-') {
      negative = true;
      ++i;
    }
    if (i >= text.size() ||
        std::isdigit(static_cast<unsigned char>(text[i])) == 0) {
      *error = "dimacs: unexpected character at byte " + std::to_string(i);
      return false;
    }
    long value = 0;
    while (i < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[i])) != 0) {
      value = value * 10 + (text[i] - '0');
      if (value > 1 << 30) {
        *error = "dimacs: literal out of range";
        return false;
      }
      ++i;
    }
    if (value == 0) {
      out->push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(negative ? -static_cast<int>(value)
                                 : static_cast<int>(value));
    }
  }
  if (!current.empty()) {
    *error = "dimacs: last clause not 0-terminated";
    return false;
  }
  return true;
}

bool parse_text_proof(std::string_view text, std::vector<ProofStep>* out,
                      std::string* error) {
  ProofStep current;
  bool in_clause = false;  // saw 'd' or at least one literal
  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (c == 'c') {
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (c == 'd' && !in_clause) {
      current.deletion = true;
      in_clause = true;
      ++i;
      continue;
    }
    bool negative = false;
    if (c == '-') {
      negative = true;
      ++i;
    }
    if (i >= text.size() ||
        std::isdigit(static_cast<unsigned char>(text[i])) == 0) {
      *error = "proof: unexpected character at byte " + std::to_string(i);
      return false;
    }
    long value = 0;
    while (i < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[i])) != 0) {
      value = value * 10 + (text[i] - '0');
      if (value > 1 << 30) {
        *error = "proof: literal out of range";
        return false;
      }
      ++i;
    }
    in_clause = true;
    if (value == 0) {
      out->push_back(std::move(current));
      current = ProofStep{};
      in_clause = false;
    } else {
      current.lits.push_back(negative ? -static_cast<int>(value)
                                      : static_cast<int>(value));
    }
  }
  if (in_clause) {
    *error = "proof: truncated final step (missing 0 terminator)";
    return false;
  }
  return true;
}

bool parse_binary_proof(std::string_view bytes, std::vector<ProofStep>* out,
                        std::string* error) {
  std::size_t i = 0;
  while (i < bytes.size()) {
    const auto tag = static_cast<unsigned char>(bytes[i++]);
    ProofStep step;
    if (tag == 'd') {
      step.deletion = true;
    } else if (tag != 'a') {
      *error = "proof: bad step tag 0x" + std::to_string(tag) + " at byte " +
               std::to_string(i - 1);
      return false;
    }
    while (true) {
      if (i >= bytes.size()) {
        *error = "proof: truncated final step (unterminated clause)";
        return false;
      }
      std::uint64_t mapped = 0;
      int shift = 0;
      while (true) {
        if (i >= bytes.size() || shift > 63) {
          *error = "proof: malformed varint at byte " + std::to_string(i);
          return false;
        }
        const auto byte = static_cast<unsigned char>(bytes[i++]);
        mapped |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0) break;
        shift += 7;
      }
      if (mapped == 0) break;  // clause terminator
      if (mapped < 2 || mapped > (1u << 31)) {
        *error = "proof: literal out of range at byte " + std::to_string(i);
        return false;
      }
      const auto var = static_cast<int>(mapped >> 1);
      step.lits.push_back((mapped & 1) != 0 ? -var : var);
    }
    out->push_back(std::move(step));
  }
  return true;
}

// Hash of a clause as a multiset of literals (order-independent), used to
// resolve deletion lines by content.
std::size_t clause_hash(std::vector<int> lits) {
  std::sort(lits.begin(), lits.end());
  std::size_t h = 0x9e3779b97f4a7c15ull;
  for (const int l : lits) {
    h ^= static_cast<std::size_t>(static_cast<long long>(l)) +
         0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

bool same_clause(std::vector<int> a, std::vector<int> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

class RupChecker {
 public:
  void ensure_var(int lit) {
    const auto var = static_cast<std::size_t>(lit < 0 ? -lit : lit);
    if (var > value_.size()) {
      value_.resize(var, 0);
      watches_.resize(2 * var);
    }
  }

  // Adds a clause to the store and maintains root propagation. Returns
  // false only on a root conflict — which means the formula is refuted.
  bool attach(std::vector<int> lits) {
    for (const int l : lits) ensure_var(l);
    const std::uint32_t id = static_cast<std::uint32_t>(clauses_.size());
    by_hash_.emplace(clause_hash(lits), id);
    clauses_.push_back({std::move(lits), false});
    std::vector<int>& c = clauses_.back().lits;
    if (c.empty()) return false;
    // Prefer non-false watches; a clause attached at root with ≤1
    // non-false literal is unit (enqueue) or conflicting.
    std::size_t non_false = 0;
    for (std::size_t k = 0; k < c.size(); ++k) {
      if (value_of(c[k]) != -1) {
        std::swap(c[k], c[non_false]);
        ++non_false;
        if (non_false == 2) break;
      }
    }
    if (non_false == 0) return false;
    if (c.size() == 1 || non_false == 1) {
      watch(c[0], id);
      if (c.size() > 1) watch(c[1], id);
      if (value_of(c[0]) == 0) enqueue(c[0]);
      return propagate();
    }
    watch(c[0], id);
    watch(c[1], id);
    return true;
  }

  // RUP test: assume the negation of `lits`, propagate, require conflict.
  // Restores the pre-call trail before returning.
  bool clause_is_rup(const std::vector<int>& lits) {
    for (const int l : lits) ensure_var(l);
    const std::size_t mark = trail_.size();
    const std::size_t qmark = qhead_;
    bool conflict = false;
    for (const int l : lits) {
      const int v = value_of(l);
      if (v == 1) {  // clause already satisfied at root ⟹ ¬l conflicts
        conflict = true;
        break;
      }
      if (v == 0) enqueue(-l);
    }
    if (!conflict) conflict = !propagate();
    // Undo the assumptions and everything they propagated.
    while (trail_.size() > mark) {
      value_[static_cast<std::size_t>(std::abs(trail_.back())) - 1] = 0;
      trail_.pop_back();
    }
    qhead_ = qmark;
    return conflict;
  }

  // Marks one clause matching `lits` (by content) deleted. Returns false
  // if none matched.
  bool remove(const std::vector<int>& lits) {
    auto [lo, hi] = by_hash_.equal_range(clause_hash(lits));
    for (auto it = lo; it != hi; ++it) {
      Clause& c = clauses_[it->second];
      if (!c.deleted && same_clause(c.lits, lits)) {
        c.deleted = true;
        by_hash_.erase(it);
        return true;
      }
    }
    return false;
  }

 private:
  struct Clause {
    std::vector<int> lits;
    bool deleted = false;
  };

  int value_of(int lit) const {
    const int v = value_[static_cast<std::size_t>(std::abs(lit)) - 1];
    return lit < 0 ? -v : v;
  }

  void enqueue(int lit) {
    value_[static_cast<std::size_t>(std::abs(lit)) - 1] = lit < 0 ? -1 : 1;
    trail_.push_back(lit);
  }

  void watch(int lit, std::uint32_t id) {
    watches_[code_of(lit)].push_back(id);
  }

  // Two-watched-literal propagation from qhead_. Returns false on
  // conflict; whether that conflict is at root (formula refuted) or under
  // RUP assumptions is the caller's context.
  bool propagate() {
    while (qhead_ < trail_.size()) {
      const int lit = trail_[qhead_++];
      std::vector<std::uint32_t>& wl = watches_[code_of(-lit)];
      std::size_t keep = 0;
      for (std::size_t i = 0; i < wl.size(); ++i) {
        const std::uint32_t id = wl[i];
        Clause& c = clauses_[id];
        if (c.deleted) continue;  // lazily dropped from the watch list
        std::vector<int>& lits = c.lits;
        if (lits.size() == 1) {
          // Unit clause watched once; falsified ⟹ conflict.
          if (value_of(lits[0]) == -1) {
            for (; i < wl.size(); ++i) wl[keep++] = wl[i];
            wl.resize(keep);
            return false;
          }
          wl[keep++] = id;
          continue;
        }
        if (lits[0] == -lit) std::swap(lits[0], lits[1]);
        if (value_of(lits[0]) == 1) {
          wl[keep++] = id;
          continue;
        }
        bool moved = false;
        for (std::size_t k = 2; k < lits.size(); ++k) {
          if (value_of(lits[k]) != -1) {
            std::swap(lits[1], lits[k]);
            watch(lits[1], id);
            moved = true;
            break;
          }
        }
        if (moved) continue;
        wl[keep++] = id;
        if (value_of(lits[0]) == -1) {
          for (++i; i < wl.size(); ++i) wl[keep++] = wl[i];
          wl.resize(keep);
          return false;
        }
        enqueue(lits[0]);
      }
      wl.resize(keep);
    }
    return true;
  }

  std::vector<Clause> clauses_;
  std::vector<std::vector<std::uint32_t>> watches_;  // by literal code
  std::vector<int> value_;                           // 1/-1/0 per var
  std::vector<int> trail_;
  std::size_t qhead_ = 0;
  std::unordered_multimap<std::size_t, std::uint32_t> by_hash_;
};

}  // namespace

DratCheckResult drat_check(std::string_view dimacs, std::string_view proof,
                           bool binary) {
  DratCheckResult result;
  std::vector<std::vector<int>> problem;
  if (!parse_dimacs(dimacs, &problem, &result.error)) return result;
  std::vector<ProofStep> steps;
  const bool parsed = binary
                          ? parse_binary_proof(proof, &steps, &result.error)
                          : parse_text_proof(proof, &steps, &result.error);
  if (!parsed) return result;

  RupChecker checker;
  bool refuted = false;
  for (auto& clause : problem) {
    if (!checker.attach(std::move(clause))) {
      refuted = true;  // the formula propagates to conflict on its own
      break;
    }
  }
  for (std::size_t i = 0; i < steps.size() && !refuted; ++i) {
    ProofStep& step = steps[i];
    ++result.steps_checked;
    if (step.deletion) {
      if (!checker.remove(step.lits)) ++result.deletions_ignored;
      continue;
    }
    if (!checker.clause_is_rup(step.lits)) {
      result.error = "step " + std::to_string(i + 1) +
                     ": clause is not RUP (no conflict from its negation)";
      return result;
    }
    if (!checker.attach(std::move(step.lits))) refuted = true;
  }
  if (!refuted) {
    result.error = "proof ends without deriving the empty clause";
    return result;
  }
  result.ok = true;
  return result;
}

}  // namespace rtlsat::proof
