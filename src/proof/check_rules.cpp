#include "proof/check_rules.h"

#include "interval/interval_ops.h"

namespace rtlsat::proof {

namespace io = iops;

namespace {

constexpr Interval kTrue = Interval(1, 1);
constexpr Interval kFalse = Interval(0, 0);
constexpr std::uint32_t kNoNet = 0xffffffffu;
constexpr int kMaxWidth = 60;

enum class Tri { kFalse, kTrue, kUnknown };

Tri tri(const Interval& iv) {
  if (iv == kTrue) return Tri::kTrue;
  if (iv == kFalse) return Tri::kFalse;
  return Tri::kUnknown;
}

// Collects narrowings against the checker's state, mirroring the solver's
// emit-on-change behaviour.
class Emitter {
 public:
  Emitter(const std::vector<Interval>& state,
          std::vector<std::pair<std::uint32_t, Interval>>* out)
      : state_(state), out_(out) {}

  void narrow(std::uint32_t net, const Interval& to) {
    const Interval next = state_[net].intersect(to);
    if (next != state_[net]) out_->push_back({net, next});
  }

  const Interval& dom(std::uint32_t net) const { return state_[net]; }

 private:
  const std::vector<Interval>& state_;
  std::vector<std::pair<std::uint32_t, Interval>>* out_;
};

using Net = CertCircuit::Net;

void rule_and(const Net& n, std::uint32_t id, Emitter& em) {
  const Tri out = tri(em.dom(id));
  int unknown = 0;
  std::uint32_t last_unknown = kNoNet;
  bool any_false = false;
  for (const std::uint32_t o : n.args) {
    switch (tri(em.dom(o))) {
      case Tri::kFalse: any_false = true; break;
      case Tri::kUnknown: ++unknown; last_unknown = o; break;
      case Tri::kTrue: break;
    }
  }
  if (any_false) {
    em.narrow(id, kFalse);
    return;
  }
  if (unknown == 0) {
    em.narrow(id, kTrue);
    return;
  }
  if (out == Tri::kTrue) {
    for (const std::uint32_t o : n.args) em.narrow(o, kTrue);
  } else if (out == Tri::kFalse && unknown == 1) {
    em.narrow(last_unknown, kFalse);
  }
}

void rule_or(const Net& n, std::uint32_t id, Emitter& em) {
  const Tri out = tri(em.dom(id));
  int unknown = 0;
  std::uint32_t last_unknown = kNoNet;
  bool any_true = false;
  for (const std::uint32_t o : n.args) {
    switch (tri(em.dom(o))) {
      case Tri::kTrue: any_true = true; break;
      case Tri::kUnknown: ++unknown; last_unknown = o; break;
      case Tri::kFalse: break;
    }
  }
  if (any_true) {
    em.narrow(id, kTrue);
    return;
  }
  if (unknown == 0) {
    em.narrow(id, kFalse);
    return;
  }
  if (out == Tri::kFalse) {
    for (const std::uint32_t o : n.args) em.narrow(o, kFalse);
  } else if (out == Tri::kTrue && unknown == 1) {
    em.narrow(last_unknown, kTrue);
  }
}

void rule_not(const Net& n, std::uint32_t id, Emitter& em) {
  const std::uint32_t a = n.args[0];
  em.narrow(id, io::fwd_not(em.dom(a), 1));
  em.narrow(a, io::back_not(em.dom(id), 1));
}

void rule_xor(const Net& n, std::uint32_t id, Emitter& em) {
  const Tri a = tri(em.dom(n.args[0]));
  const Tri b = tri(em.dom(n.args[1]));
  const Tri z = tri(em.dom(id));
  auto as_iv = [](bool v) { return v ? kTrue : kFalse; };
  auto known = [](Tri t) { return t != Tri::kUnknown; };
  auto val = [](Tri t) { return t == Tri::kTrue; };
  if (known(a) && known(b)) em.narrow(id, as_iv(val(a) != val(b)));
  if (known(z) && known(a)) em.narrow(n.args[1], as_iv(val(z) != val(a)));
  if (known(z) && known(b)) em.narrow(n.args[0], as_iv(val(z) != val(b)));
}

void rule_mux(const Net& n, std::uint32_t id, Emitter& em) {
  const std::uint32_t sel = n.args[0];
  const std::uint32_t t = n.args[1];
  const std::uint32_t e = n.args[2];
  switch (tri(em.dom(sel))) {
    case Tri::kTrue:
      em.narrow(id, em.dom(t));
      em.narrow(t, em.dom(id));
      return;
    case Tri::kFalse:
      em.narrow(id, em.dom(e));
      em.narrow(e, em.dom(id));
      return;
    case Tri::kUnknown:
      break;
  }
  em.narrow(id, em.dom(t).hull(em.dom(e)));
  const bool t_possible = em.dom(t).intersects(em.dom(id));
  const bool e_possible = em.dom(e).intersects(em.dom(id));
  if (!t_possible && !e_possible) {
    em.narrow(id, Interval::empty());
  } else if (!t_possible) {
    em.narrow(sel, kFalse);
  } else if (!e_possible) {
    em.narrow(sel, kTrue);
  }
}

void rule_add(const Net& n, std::uint32_t id, Emitter& em) {
  const std::uint32_t a = n.args[0];
  const std::uint32_t b = n.args[1];
  const int w = n.width;
  em.narrow(id, io::fwd_add_wrap(em.dom(a), em.dom(b), w));
  em.narrow(a, io::back_add_wrap_x(em.dom(id), em.dom(b), em.dom(a), w));
  em.narrow(b, io::back_add_wrap_x(em.dom(id), em.dom(a), em.dom(b), w));
}

void rule_sub(const Net& n, std::uint32_t id, Emitter& em) {
  const std::uint32_t a = n.args[0];
  const std::uint32_t b = n.args[1];
  const int w = n.width;
  em.narrow(id, io::fwd_sub_wrap(em.dom(a), em.dom(b), w));
  em.narrow(a, io::back_sub_wrap_x(em.dom(id), em.dom(b), em.dom(a), w));
  em.narrow(b, io::back_sub_wrap_y(em.dom(id), em.dom(a), em.dom(b), w));
}

void rule_mulc(const Net& n, std::uint32_t id, Emitter& em) {
  const std::uint32_t a = n.args[0];
  const Interval::Value m = Interval::Value{1} << n.width;
  const Interval product = io::fwd_mul_const(em.dom(a), n.imm);
  em.narrow(id, io::fwd_mod(product, m));
  if (product.hi() < m) em.narrow(a, io::back_mul_const(em.dom(id), n.imm));
}

void rule_shl(const Net& n, std::uint32_t id, Emitter& em) {
  const std::uint32_t a = n.args[0];
  const int k = static_cast<int>(n.imm);
  em.narrow(id, io::fwd_shl(em.dom(a), k, n.width));
  const Interval product =
      io::fwd_mul_const(em.dom(a), Interval::Value{1} << k);
  if (product.hi() < (Interval::Value{1} << n.width))
    em.narrow(a, io::back_mul_const(em.dom(id), Interval::Value{1} << k));
}

void rule_shr(const Net& n, std::uint32_t id, Emitter& em) {
  const std::uint32_t a = n.args[0];
  const int k = static_cast<int>(n.imm);
  em.narrow(id, io::fwd_lshr(em.dom(a), k));
  em.narrow(a, io::back_lshr(em.dom(id), k));
}

void rule_notw(const Net& n, std::uint32_t id, Emitter& em) {
  const std::uint32_t a = n.args[0];
  em.narrow(id, io::fwd_not(em.dom(a), n.width));
  em.narrow(a, io::back_not(em.dom(id), n.width));
}

void rule_concat(const CertCircuit& c, const Net& n, std::uint32_t id,
                 Emitter& em) {
  const std::uint32_t hi = n.args[0];
  const std::uint32_t lo = n.args[1];
  const int lw = c.nets[lo].width;
  em.narrow(id, io::fwd_concat(em.dom(hi), em.dom(lo), lw));
  em.narrow(hi, io::back_concat_hi(em.dom(id), lw));
  em.narrow(lo, io::back_concat_lo(em.dom(id), em.dom(hi), em.dom(lo), lw));
}

void rule_extract(const Net& n, std::uint32_t id, Emitter& em) {
  const std::uint32_t a = n.args[0];
  const int hi_bit = static_cast<int>(n.imm);
  const int lo_bit = static_cast<int>(n.imm2);
  em.narrow(id, io::fwd_extract(em.dom(a), hi_bit, lo_bit));
  em.narrow(a, io::back_extract(em.dom(id), em.dom(a), hi_bit, lo_bit));
}

void rule_zext(const Net& n, std::uint32_t id, Emitter& em) {
  const std::uint32_t a = n.args[0];
  em.narrow(id, em.dom(a));
  em.narrow(a, em.dom(id));
}

void rule_min(const Net& n, std::uint32_t id, Emitter& em) {
  const std::uint32_t a = n.args[0];
  const std::uint32_t b = n.args[1];
  em.narrow(id, io::fwd_min(em.dom(a), em.dom(b)));
  em.narrow(a, io::back_min_x(em.dom(id), em.dom(b), em.dom(a)));
  em.narrow(b, io::back_min_x(em.dom(id), em.dom(a), em.dom(b)));
}

void rule_max(const Net& n, std::uint32_t id, Emitter& em) {
  const std::uint32_t a = n.args[0];
  const std::uint32_t b = n.args[1];
  em.narrow(id, io::fwd_max(em.dom(a), em.dom(b)));
  em.narrow(a, io::back_max_x(em.dom(id), em.dom(b), em.dom(a)));
  em.narrow(b, io::back_max_x(em.dom(id), em.dom(a), em.dom(b)));
}

void rule_cmp(const Net& n, std::uint32_t id, Emitter& em) {
  const std::uint32_t x = n.args[0];
  const std::uint32_t y = n.args[1];
  const Interval dx = em.dom(x);
  const Interval dy = em.dom(y);

  switch (n.op) {
    case CheckOp::kEq: em.narrow(id, io::fwd_eq(dx, dy)); break;
    case CheckOp::kNe: em.narrow(id, io::fwd_not(io::fwd_eq(dx, dy), 1)); break;
    case CheckOp::kLt: em.narrow(id, io::fwd_lt(dx, dy)); break;
    case CheckOp::kLe: em.narrow(id, io::fwd_le(dx, dy)); break;
    default: return;
  }

  const Tri out = tri(em.dom(id));
  if (out == Tri::kUnknown) return;
  const bool v = out == Tri::kTrue;
  io::Pair p;
  switch (n.op) {
    case CheckOp::kEq:
      p = v ? io::narrow_eq(dx, dy) : io::narrow_ne(dx, dy);
      break;
    case CheckOp::kNe:
      p = v ? io::narrow_ne(dx, dy) : io::narrow_eq(dx, dy);
      break;
    case CheckOp::kLt:
      if (v) {
        p = io::narrow_lt(dx, dy);
      } else {
        auto q = io::narrow_le(dy, dx);
        p = {q.y, q.x};
      }
      break;
    case CheckOp::kLe:
      if (v) {
        p = io::narrow_le(dx, dy);
      } else {
        auto q = io::narrow_lt(dy, dx);
        p = {q.y, q.x};
      }
      break;
    default: return;
  }
  em.narrow(x, p.x);
  em.narrow(y, p.y);
}

}  // namespace

CheckOp check_op_from_name(std::string_view name) {
  if (name == "input") return CheckOp::kInput;
  if (name == "const") return CheckOp::kConst;
  if (name == "and") return CheckOp::kAnd;
  if (name == "or") return CheckOp::kOr;
  if (name == "not") return CheckOp::kNot;
  if (name == "xor") return CheckOp::kXor;
  if (name == "mux") return CheckOp::kMux;
  if (name == "add") return CheckOp::kAdd;
  if (name == "sub") return CheckOp::kSub;
  if (name == "mulc") return CheckOp::kMulC;
  if (name == "shl") return CheckOp::kShlC;
  if (name == "shr") return CheckOp::kShrC;
  if (name == "notw") return CheckOp::kNotW;
  if (name == "concat") return CheckOp::kConcat;
  if (name == "extract") return CheckOp::kExtract;
  if (name == "zext") return CheckOp::kZext;
  if (name == "min") return CheckOp::kMin;
  if (name == "max") return CheckOp::kMax;
  if (name == "eq") return CheckOp::kEq;
  if (name == "ne") return CheckOp::kNe;
  if (name == "lt") return CheckOp::kLt;
  if (name == "le") return CheckOp::kLe;
  return CheckOp::kUnknown;
}

Interval CertCircuit::initial(std::uint32_t id) const {
  const Net& n = nets[id];
  if (n.op == CheckOp::kConst) return Interval::point(n.imm);
  return Interval::full_width(n.width);
}

std::string validate_net(const CertCircuit& c, std::uint32_t id) {
  const Net& n = c.nets[id];
  const auto arity = [&n](std::size_t want) {
    return n.args.size() == want;
  };
  if (n.width < 1 || n.width > kMaxWidth) return "width out of range";
  for (const std::uint32_t a : n.args) {
    // Append-only DAG: operands precede their node.
    if (a >= id) return "operand does not precede node";
  }
  const auto arg_width = [&c, &n](std::size_t i) {
    return c.nets[n.args[i]].width;
  };
  switch (n.op) {
    case CheckOp::kInput:
      return arity(0) ? "" : "input with operands";
    case CheckOp::kConst:
      if (!arity(0)) return "const with operands";
      if (n.imm < 0 || n.imm > Interval::full_width(n.width).hi())
        return "const value out of width";
      return "";
    case CheckOp::kAnd:
    case CheckOp::kOr: {
      if (n.args.empty()) return "gate without operands";
      if (n.width != 1) return "gate must be 1-bit";
      for (std::size_t i = 0; i < n.args.size(); ++i)
        if (arg_width(i) != 1) return "gate operand must be 1-bit";
      return "";
    }
    case CheckOp::kNot:
      if (!arity(1) || n.width != 1 || arg_width(0) != 1) return "bad not";
      return "";
    case CheckOp::kXor:
      if (!arity(2) || n.width != 1 || arg_width(0) != 1 || arg_width(1) != 1)
        return "bad xor";
      return "";
    case CheckOp::kMux:
      if (!arity(3) || arg_width(0) != 1 || arg_width(1) != n.width ||
          arg_width(2) != n.width)
        return "bad mux";
      return "";
    case CheckOp::kAdd:
    case CheckOp::kSub:
    case CheckOp::kMin:
    case CheckOp::kMax:
      if (!arity(2) || arg_width(0) != n.width || arg_width(1) != n.width)
        return "bad binary word op";
      return "";
    case CheckOp::kMulC:
      if (!arity(1) || arg_width(0) != n.width) return "bad mulc";
      if (n.imm < 0) return "negative mulc factor";
      return "";
    case CheckOp::kShlC:
    case CheckOp::kShrC:
      if (!arity(1) || arg_width(0) != n.width) return "bad shift";
      if (n.imm < 0 || n.imm > kMaxWidth) return "shift amount out of range";
      return "";
    case CheckOp::kNotW:
      if (!arity(1) || arg_width(0) != n.width) return "bad notw";
      return "";
    case CheckOp::kConcat:
      if (!arity(2) || arg_width(0) + arg_width(1) != n.width)
        return "bad concat";
      return "";
    case CheckOp::kExtract:
      if (!arity(1)) return "bad extract";
      if (n.imm2 < 0 || n.imm < n.imm2 || n.imm >= arg_width(0))
        return "extract bits out of range";
      if (n.width != static_cast<int>(n.imm - n.imm2) + 1)
        return "extract width mismatch";
      return "";
    case CheckOp::kZext:
      if (!arity(1) || arg_width(0) > n.width) return "bad zext";
      return "";
    case CheckOp::kEq:
    case CheckOp::kNe:
    case CheckOp::kLt:
    case CheckOp::kLe:
      if (!arity(2) || n.width != 1 || arg_width(0) != arg_width(1))
        return "bad comparator";
      return "";
    case CheckOp::kUnknown:
      return "unknown operator";
  }
  return "unknown operator";
}

void check_node_rules(const CertCircuit& c, std::uint32_t id,
                      const std::vector<Interval>& state,
                      std::vector<std::pair<std::uint32_t, Interval>>* out) {
  Emitter em(state, out);
  const Net& n = c.nets[id];
  switch (n.op) {
    case CheckOp::kInput: return;
    case CheckOp::kConst: return;
    case CheckOp::kAnd: return rule_and(n, id, em);
    case CheckOp::kOr: return rule_or(n, id, em);
    case CheckOp::kNot: return rule_not(n, id, em);
    case CheckOp::kXor: return rule_xor(n, id, em);
    case CheckOp::kMux: return rule_mux(n, id, em);
    case CheckOp::kAdd: return rule_add(n, id, em);
    case CheckOp::kSub: return rule_sub(n, id, em);
    case CheckOp::kMulC: return rule_mulc(n, id, em);
    case CheckOp::kShlC: return rule_shl(n, id, em);
    case CheckOp::kShrC: return rule_shr(n, id, em);
    case CheckOp::kNotW: return rule_notw(n, id, em);
    case CheckOp::kConcat: return rule_concat(c, n, id, em);
    case CheckOp::kExtract: return rule_extract(n, id, em);
    case CheckOp::kZext: return rule_zext(n, id, em);
    case CheckOp::kMin: return rule_min(n, id, em);
    case CheckOp::kMax: return rule_max(n, id, em);
    case CheckOp::kEq:
    case CheckOp::kNe:
    case CheckOp::kLt:
    case CheckOp::kLe: return rule_cmp(n, id, em);
    case CheckOp::kUnknown: return;
  }
}

}  // namespace rtlsat::proof
