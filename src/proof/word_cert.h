// Shared vocabulary of the word-level (HDPLL) certificate format.
//
// A certificate is JSONL: one JSON object per line, discriminated by its
// "t" member. The writer (word_writer.h, fed by core/proof_log) and the
// checker (word_check.h) both speak in terms of these structs; the JSON
// grammar itself is documented in docs/proofs.md.
//
// Everything here is primitive — net ids, intervals as int64 pairs,
// clause ids — so src/proof stays independent of src/core and src/ir.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fme/certify.h"
#include "proof/int128.h"

namespace rtlsat::proof {

// A hybrid clause literal. Boolean literal: "net == lo" with lo==hi∈{0,1}
// and positive==true (Boolean negation flips the value, not the flag).
// Word literal: "net ∈ [lo,hi]" when positive, "net ∉ [lo,hi]" otherwise.
struct WordLit {
  std::uint32_t net = 0;
  bool is_bool = false;
  bool positive = true;
  std::int64_t lo = 0;
  std::int64_t hi = 0;
};

// One replayed deduction: after this step, `net`'s interval is [lo,hi].
// kind: 'a' assumption, 'd' decision, 'n' node rule (id = node net id),
// 'c' clause propagation (id = clause id).
struct WordStep {
  std::uint32_t net = 0;
  char kind = 'n';
  std::uint32_t id = 0;
  std::int64_t lo = 0;
  std::int64_t hi = 0;
};

// Terminal conflict of a replay: which rule ('n', id = node) or clause
// ('c', id = clause) fired on an empty/falsified state. kind 0 = none.
struct WordConflict {
  char kind = 0;
  std::uint32_t id = 0;
};

// FME sub-certificate: the linear system as extracted (variables are
// either solver nets or per-node auxiliaries; constraints are tagged with
// the node that encodes them) plus the fme::certify_unsat refutation.
struct FmeCertVar {
  bool is_net = false;
  std::uint32_t id = 0;  // net id, or the node the auxiliary belongs to
  std::int64_t lo = 0;
  std::int64_t hi = 0;
};

struct FmeCertCon {
  std::uint32_t node = 0;  // node whose encoding contributed this row
  std::vector<std::pair<std::uint32_t, std::int64_t>> terms;  // (var, coeff)
  Int128 bound = 0;
};

struct FmeCert {
  std::vector<FmeCertVar> vars;
  std::vector<FmeCertCon> cons;
  fme::Certificate refutation;
};

// One two-case (or n-way) probe branch of predicate learning.
struct ProbeWay {
  std::vector<std::pair<std::uint32_t, std::int64_t>> assign;  // (net, value)
  std::vector<WordStep> steps;
  WordConflict conflict;
};

// One half of a word-interval probe.
struct ProbeCase {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  std::vector<WordStep> steps;
  WordConflict conflict;
};

}  // namespace rtlsat::proof
