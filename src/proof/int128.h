// Decimal serialization for __int128. Farkas combination coefficients in
// FME certificates are products of int64 constraint coefficients and can
// exceed 64 bits; JSON numbers cannot carry them exactly, so certificates
// store them as decimal strings and both the writer and the checker go
// through these two helpers.
#pragma once

#include <string>
#include <string_view>

namespace rtlsat::proof {

using Int128 = __int128;

std::string i128_to_string(Int128 value);

// Parses an optionally-negated decimal string. Returns false on empty
// input, non-digit characters, or overflow past the __int128 range.
bool i128_from_string(std::string_view text, Int128* out);

}  // namespace rtlsat::proof
