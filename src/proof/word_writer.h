// JSONL writer for word-level (HDPLL) certificates.
//
// core/proof_log.cpp translates solver objects (events, hybrid clauses,
// circuit nodes) into the primitive structs of word_cert.h and calls the
// record methods here; each call appends one line. The writer is
// append-only and holds the document in memory until save()/str().
//
// Record order contract (enforced by the checker): header first, then all
// net declarations in id order, then assumptions, then the derivation
// records in solver chronology, then exactly one end record.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "proof/word_cert.h"

namespace rtlsat::proof {

class WordCertWriter {
 public:
  void header();
  void net(std::uint32_t id, int width, const std::string& op,
           const std::vector<std::uint32_t>& args, std::int64_t imm,
           std::int64_t imm2);
  void assume(std::uint32_t net, std::int64_t lo, std::int64_t hi);
  // Level-0 narrowing (kind 'n' or 'c').
  void narrow0(const WordStep& step);
  // Level-0 conflict: kind 'a' (assumption application), 'n', or 'c'.
  void conflict0(char kind, std::uint32_t id);
  // Learned clause with its replayable antecedent cut. clause_id < 0 ⟹
  // the empty clause (not stored in the DB).
  void learn(std::int64_t clause_id, const std::vector<WordLit>& lits,
             const std::vector<WordStep>& steps, const WordConflict& conflict);
  // Arithmetic-endgame cut clause: decision negations justified by an FME
  // refutation of the trail state.
  void cut(std::int64_t clause_id, const std::vector<WordLit>& lits,
           const std::vector<WordStep>& steps, const FmeCert& fme);
  // Level-0 FME refutation (whole instance UNSAT by arithmetic).
  void fme0(const FmeCert& fme);
  // Predicate-learning Boolean probe record with its recursive-learning
  // case split; `clauses` are justified here, added later via add_clause.
  void probe(std::uint32_t net, std::int64_t val,
             const std::vector<WordStep>& steps, const WordConflict& conflict,
             const std::vector<ProbeWay>& ways,
             const std::vector<std::vector<WordLit>>& clauses);
  // Word-interval probe (domain bisection) record.
  void wprobe(std::uint32_t net, const std::vector<ProbeCase>& cases,
              const std::vector<std::vector<WordLit>>& clauses);
  // Clause-DB addition of a previously justified clause content.
  void add_clause(std::int64_t id, const std::vector<WordLit>& lits);
  // Portfolio import with exporter provenance.
  void import_clause(std::int64_t id, int worker, std::int64_t seq,
                     const std::vector<WordLit>& lits);
  void delete_clause(std::int64_t id);
  // verdict: "unsat", "sat", "timeout", "cancelled".
  void finish(const std::string& verdict);

  std::int64_t records() const { return records_; }
  std::int64_t bytes() const { return static_cast<std::int64_t>(out_.size()); }
  bool finished() const { return finished_; }

  const std::string& str() const { return out_; }
  bool save(const std::string& path, std::string* error) const;

 private:
  void line(std::string text);

  std::string out_;
  std::int64_t records_ = 0;
  bool finished_ = false;
};

}  // namespace rtlsat::proof
