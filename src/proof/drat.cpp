#include "proof/drat.h"

#include <cstdio>
#include <cstdlib>

namespace rtlsat::proof {

namespace {

void append_text_clause(std::string* out, const std::vector<int>& clause) {
  for (const int lit : clause) {
    *out += std::to_string(lit);
    *out += ' ';
  }
  *out += "0\n";
}

// Binary DRAT maps signed lit l to the unsigned 2·|l| + (l < 0), emitted
// as ULEB128, with a 0 byte terminating the clause.
void append_binary_clause(std::string* out, const std::vector<int>& clause) {
  for (const int lit : clause) {
    auto mapped = static_cast<std::uint64_t>(
        2 * static_cast<std::uint64_t>(lit < 0 ? -static_cast<std::int64_t>(lit)
                                               : lit) +
        (lit < 0 ? 1 : 0));
    do {
      const auto byte = static_cast<unsigned char>(mapped & 0x7f);
      mapped >>= 7;
      out->push_back(static_cast<char>(mapped != 0 ? byte | 0x80 : byte));
    } while (mapped != 0);
  }
  out->push_back('\0');
}

}  // namespace

void DratWriter::original(const std::vector<int>& clause) {
  ++num_original_;
  for (const int lit : clause) {
    const int var = lit < 0 ? -lit : lit;
    if (var > max_var_) max_var_ = var;
  }
  if (options_.discard) return;
  append_text_clause(&formula_, clause);
}

void DratWriter::emit(char tag, const std::vector<int>& clause) {
  for (const int lit : clause) {
    const int var = lit < 0 ? -lit : lit;
    if (var > max_var_) max_var_ = var;
  }
  const std::size_t before = proof_.size();
  if (options_.discard) {
    // Approximate the byte cost without retaining content.
    proof_bytes_ += static_cast<std::int64_t>(clause.size()) * 3 + 2;
    return;
  }
  if (options_.binary) {
    proof_.push_back(tag == 'd' ? 'd' : 'a');
    append_binary_clause(&proof_, clause);
  } else {
    if (tag == 'd') proof_ += "d ";
    append_text_clause(&proof_, clause);
  }
  proof_bytes_ += static_cast<std::int64_t>(proof_.size() - before);
}

void DratWriter::learned(const std::vector<int>& clause) {
  ++num_steps_;
  if (clause.empty()) concluded_ = true;
  emit('a', clause);
}

void DratWriter::deleted(const std::vector<int>& clause) {
  ++num_steps_;
  ++num_deletions_;
  emit('d', clause);
}

std::string DratWriter::dimacs() const {
  std::string out = "p cnf " + std::to_string(max_var_) + ' ' +
                    std::to_string(num_original_) + '\n';
  out += formula_;
  return out;
}

bool DratWriter::save(const std::string& dimacs_path,
                      const std::string& proof_path,
                      std::string* error) const {
  if (options_.discard) {
    if (error != nullptr) *error = "writer is in discard mode";
    return false;
  }
  const auto write_file = [error](const std::string& path,
                                  const std::string& content) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      if (error != nullptr) *error = "cannot open " + path;
      return false;
    }
    const std::size_t written =
        content.empty() ? 0 : std::fwrite(content.data(), 1, content.size(), f);
    const bool ok = std::fclose(f) == 0 && written == content.size();
    if (!ok && error != nullptr) *error = "short write to " + path;
    return ok;
  };
  return write_file(dimacs_path, dimacs()) &&
         write_file(proof_path, proof_);
}

}  // namespace rtlsat::proof
