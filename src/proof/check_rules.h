// The checker's own interval-propagation rule table.
//
// word_check re-derives every claimed level-0 narrowing and every replayed
// antecedent step by running these rules over its own interval state and
// demanding that the certificate's claim is implied (a superset of what
// the rules conclude). The implementation is written directly against
// iops:: (src/interval is part of the checker's declared trust base, see
// docs/proofs.md) and deliberately does NOT link src/prop — the solver's
// rule table cannot vouch for itself.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "interval/interval.h"

namespace rtlsat::proof {

enum class CheckOp : std::uint8_t {
  kInput,
  kConst,
  kAnd,
  kOr,
  kNot,
  kXor,
  kMux,
  kAdd,
  kSub,
  kMulC,
  kShlC,
  kShrC,
  kNotW,
  kConcat,
  kExtract,
  kZext,
  kMin,
  kMax,
  kEq,
  kNe,
  kLt,
  kLe,
  kUnknown,
};

// Maps the op strings emitted in "net" records ("add", "mux", …) back to
// the checker's vocabulary; kUnknown for anything unrecognized.
CheckOp check_op_from_name(std::string_view name);

// The certificate's view of the circuit, rebuilt from "net" records.
struct CertCircuit {
  struct Net {
    CheckOp op = CheckOp::kUnknown;
    int width = 1;
    std::vector<std::uint32_t> args;
    std::int64_t imm = 0;
    std::int64_t imm2 = 0;
  };
  std::vector<Net> nets;

  bool valid(std::uint32_t id) const { return id < nets.size(); }
  // Interval a net starts from before any deduction: constants are pinned
  // to their value, everything else covers its full width.
  Interval initial(std::uint32_t id) const;
};

// Structural sanity of one declared net (operand counts/widths, immediate
// ranges). Returns an empty string when fine, else a description.
std::string validate_net(const CertCircuit& c, std::uint32_t id);

// Re-derives every narrowing node `id` justifies under `state` (one
// interval per net, indexed by id) and appends (net, narrowed interval)
// pairs — the mirror of the solver's propagation rule for that node. Only
// genuine shrinkage (or emptiness) is emitted.
void check_node_rules(const CertCircuit& c, std::uint32_t id,
                      const std::vector<Interval>& state,
                      std::vector<std::pair<std::uint32_t, Interval>>* out);

}  // namespace rtlsat::proof
