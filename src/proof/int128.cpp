#include "proof/int128.h"

namespace rtlsat::proof {

std::string i128_to_string(Int128 value) {
  if (value == 0) return "0";
  const bool negative = value < 0;
  // Peel digits from the magnitude as unsigned so INT128_MIN is handled.
  unsigned __int128 mag =
      negative ? -static_cast<unsigned __int128>(value)
               : static_cast<unsigned __int128>(value);
  std::string digits;
  while (mag != 0) {
    digits += static_cast<char>('0' + static_cast<int>(mag % 10));
    mag /= 10;
  }
  if (negative) digits += '-';
  return {digits.rbegin(), digits.rend()};
}

bool i128_from_string(std::string_view text, Int128* out) {
  bool negative = false;
  if (!text.empty() && (text[0] == '-' || text[0] == '+')) {
    negative = text[0] == '-';
    text.remove_prefix(1);
  }
  if (text.empty()) return false;
  unsigned __int128 mag = 0;
  constexpr unsigned __int128 kMax = ~static_cast<unsigned __int128>(0);
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    const auto digit = static_cast<unsigned>(c - '0');
    if (mag > (kMax - digit) / 10) return false;
    mag = mag * 10 + digit;
  }
  constexpr unsigned __int128 kSignedMax =
      ~static_cast<unsigned __int128>(0) >> 1;
  if (negative) {
    if (mag > kSignedMax + 1) return false;
    *out = mag == kSignedMax + 1 ? -static_cast<Int128>(kSignedMax) - 1
                                 : -static_cast<Int128>(mag);
  } else {
    if (mag > kSignedMax) return false;
    *out = static_cast<Int128>(mag);
  }
  return true;
}

}  // namespace rtlsat::proof
