// Independent DRAT proof checker (the Boolean half of rtlsat_check).
//
// Verifies each proof clause by reverse unit propagation (RUP): assume the
// clause's negation, propagate with two-watched literals over the problem
// clauses plus previously accepted proof clauses, and demand a conflict.
// Deletion lines detach clauses by content; deletions that match nothing
// are counted and ignored (drat-trim convention). The proof is accepted
// iff the empty clause is derived — either an explicit empty step or a
// root-level propagation conflict.
//
// Shares no code with sat::Solver: the propagation loop here is written
// against its own clause store, so a solver bug cannot vouch for itself.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace rtlsat::proof {

struct DratCheckResult {
  bool ok = false;  // proof accepted (empty clause derived via RUP)
  std::int64_t steps_checked = 0;
  std::int64_t deletions_ignored = 0;
  // On failure: "step N: ..." with N the 1-based proof step index, or a
  // parse diagnostic.
  std::string error;
};

// `binary` selects the binary DRAT encoding for `proof`; the DIMACS text
// is always plain.
DratCheckResult drat_check(std::string_view dimacs, std::string_view proof,
                           bool binary);

}  // namespace rtlsat::proof
