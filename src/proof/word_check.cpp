#include "proof/word_check.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "interval/interval.h"
#include "interval/interval_ops.h"
#include "proof/check_rules.h"
#include "proof/int128.h"
#include "proof/word_cert.h"
#include "trace/json.h"

namespace rtlsat::proof {

namespace {

using trace::JsonValue;

// ---------------------------------------------------------------------------
// Literal semantics. A literal's satisfying set is an interval box on its
// net: boolean(net, v) ↦ {v}; word_in ↦ [lo,hi]; word_not_in ↦ the
// complement. Truth/falsity under an interval domain follows set-wise.

Interval lit_box(const WordLit& l) {
  return l.is_bool ? Interval::point(l.lo) : Interval(l.lo, l.hi);
}

bool lit_positive(const WordLit& l) { return l.is_bool || l.positive; }

bool lit_false(const WordLit& l, const Interval& d) {
  if (d.is_empty()) return true;
  const Interval box = lit_box(l);
  return lit_positive(l) ? !d.intersects(box) : box.contains(d);
}

bool lit_true(const WordLit& l, const Interval& d) {
  if (d.is_empty()) return false;
  const Interval box = lit_box(l);
  return lit_positive(l) ? box.contains(d) : !d.intersects(box);
}

// The narrowing a unit literal imposes on its net. For a negative word
// literal whose complement splits the domain, minus() returns the domain
// unchanged — the same sound laziness the solver's clause DB uses.
Interval lit_implied(const WordLit& l, const Interval& d) {
  const Interval box = lit_box(l);
  return lit_positive(l) ? d.intersect(box) : d.minus(box);
}

// Pins the *negation* of a literal into a domain (assuming a clause false).
Interval lit_assume_false(const WordLit& l, const Interval& d) {
  if (l.is_bool) return d.intersect(Interval::point(l.lo == 0 ? 1 : 0));
  if (l.positive) return d.minus(Interval(l.lo, l.hi));
  return d.intersect(Interval(l.lo, l.hi));
}

std::string clause_key(const std::vector<WordLit>& lits) {
  std::vector<std::string> parts;
  parts.reserve(lits.size());
  for (const WordLit& l : lits) {
    parts.push_back(std::to_string(l.net) + (l.is_bool ? "b" : "w") +
                    (lit_positive(l) ? "+" : "-") + std::to_string(l.lo) + ":" +
                    std::to_string(l.hi));
  }
  std::sort(parts.begin(), parts.end());
  std::string key;
  for (const std::string& p : parts) {
    key += p;
    key += '|';
  }
  return key;
}

// ---------------------------------------------------------------------------
// Parsed FME sub-certificate.

struct FmeRef {
  char kind = 'c';  // 'c' constraint, 'u' upper bound, 'l' lower bound, 's' step
  std::uint32_t index = 0;
};

struct FmeStep {
  enum Kind { kComb, kDiv, kSplit, kCase, kQed };
  Kind kind = kComb;
  std::vector<std::pair<FmeRef, Int128>> combo;
  FmeRef of;
  Int128 divisor = 1;
  std::uint32_t var = 0;
  Int128 at = 0;
};

struct FmeData {
  std::vector<FmeCertVar> vars;
  std::vector<FmeCertCon> cons;
  std::vector<FmeStep> steps;
};

bool i128_mul(Int128 a, Int128 b, Int128* out) {
  return !__builtin_mul_overflow(a, b, out);
}
bool i128_add(Int128 a, Int128 b, Int128* out) {
  return !__builtin_add_overflow(a, b, out);
}

Int128 floor_div_i128(Int128 a, Int128 b) {  // b > 0
  Int128 q = a / b;
  if (a % b != 0 && a < 0) --q;
  return q;
}

// ---------------------------------------------------------------------------

class Checker {
 public:
  explicit Checker(const WordCheckOptions& options) : options_(options) {}

  WordCheckResult run(std::string_view text);

 private:
  enum class Stage { kHeader, kNets, kBody, kDone };

  bool fail(std::string message) {
    error_ = "line " + std::to_string(line_) + ": " + std::move(message);
    return false;
  }

  // --- JSON field access -------------------------------------------------
  bool get_int(const JsonValue& v, const char* key, std::int64_t* out) {
    const JsonValue* f = v.find(key);
    if (f == nullptr || !f->is_int())
      return fail(std::string("missing integer field \"") + key + "\"");
    *out = f->integer;
    return true;
  }
  bool get_u32(const JsonValue& v, const char* key, std::uint32_t* out) {
    std::int64_t raw = 0;
    if (!get_int(v, key, &raw)) return false;
    if (raw < 0 || raw > 0xffffffffLL)
      return fail(std::string("field \"") + key + "\" out of range");
    *out = static_cast<std::uint32_t>(raw);
    return true;
  }
  bool get_bool(const JsonValue& v, const char* key, bool* out) {
    const JsonValue* f = v.find(key);
    if (f == nullptr || f->kind != JsonValue::Kind::kBool)
      return fail(std::string("missing boolean field \"") + key + "\"");
    *out = f->boolean;
    return true;
  }
  bool get_string(const JsonValue& v, const char* key, std::string* out) {
    const JsonValue* f = v.find(key);
    if (f == nullptr || !f->is_string())
      return fail(std::string("missing string field \"") + key + "\"");
    *out = f->string;
    return true;
  }
  bool get_array(const JsonValue& v, const char* key, const JsonValue** out) {
    const JsonValue* f = v.find(key);
    if (f == nullptr || !f->is_array())
      return fail(std::string("missing array field \"") + key + "\"");
    *out = f;
    return true;
  }
  bool get_i128(const JsonValue& v, const char* key, Int128* out) {
    const JsonValue* f = v.find(key);
    if (f == nullptr || !f->is_string() || !i128_from_string(f->string, out))
      return fail(std::string("field \"") + key +
                  "\" is not a decimal __int128 string");
    return true;
  }

  // --- record payload parsing --------------------------------------------
  bool parse_lit(const JsonValue& v, WordLit* out);
  bool parse_lits(const JsonValue& arr, std::vector<WordLit>* out);
  bool parse_step(const JsonValue& v, WordStep* out);
  bool parse_steps(const JsonValue& arr, std::vector<WordStep>* out);
  bool parse_conflict(const JsonValue& v, WordConflict* out);
  bool parse_fme_ref(const std::string& text, FmeRef* out);
  bool parse_fme(const JsonValue& v, FmeData* out);

  // --- verification core -------------------------------------------------
  bool freeze_circuit();
  // Applies one replayed derivation step to `s`, checking the claimed
  // interval is implied. Sets *contradiction when the state empties.
  bool apply_step(const WordStep& st, std::vector<Interval>& s,
                  bool* contradiction);
  bool verify_conflict(const WordConflict& c, const std::vector<Interval>& s,
                       const char* context);
  // Replays a step list. On return *contradiction says whether the state
  // emptied (remaining steps are skipped once it does). When
  // `need_contradiction` is set, a replay that ends without one and without
  // a verified terminal conflict is an error.
  bool replay(std::vector<Interval>& s, const std::vector<WordStep>& steps,
              const WordConflict& conf, bool need_contradiction,
              bool* contradiction);
  bool verify_fme(const FmeData& f, const std::vector<Interval>& s);
  bool lookup_clause(std::int64_t id, const std::vector<WordLit>** out);
  bool register_clause(std::int64_t id, std::vector<WordLit> lits);

  // --- record handlers ----------------------------------------------------
  bool on_net(const JsonValue& v);
  bool on_assume(const JsonValue& v);
  bool on_narrow0(const JsonValue& v);
  bool on_conflict0(const JsonValue& v);
  bool on_learn(const JsonValue& v);
  bool on_cut(const JsonValue& v);
  bool on_fme0(const JsonValue& v);
  bool on_probe(const JsonValue& v);
  bool on_wprobe(const JsonValue& v);
  bool on_addc(const JsonValue& v);
  bool on_import(const JsonValue& v);
  bool on_delc(const JsonValue& v);
  bool on_end(const JsonValue& v);

  WordCheckOptions options_;
  Stage stage_ = Stage::kHeader;
  std::int64_t line_ = 0;
  std::string error_;
  std::string verdict_;
  bool refuted_ = false;

  CertCircuit circuit_;
  std::vector<Interval> state_;  // level-0 state
  std::unordered_map<std::int64_t, std::vector<WordLit>> clauses_;
  std::set<std::int64_t> deleted_;
  std::set<std::string> justified_;  // probe/wprobe-proved clause contents
};

bool Checker::parse_lit(const JsonValue& v, WordLit* out) {
  if (!v.is_object()) return fail("literal is not an object");
  if (!get_u32(v, "net", &out->net) || !get_bool(v, "b", &out->is_bool) ||
      !get_bool(v, "p", &out->positive) || !get_int(v, "lo", &out->lo) ||
      !get_int(v, "hi", &out->hi))
    return false;
  if (!circuit_.valid(out->net)) return fail("literal on undeclared net");
  if (out->is_bool) {
    if (circuit_.nets[out->net].width != 1)
      return fail("boolean literal on a word net");
    if (out->lo != out->hi || (out->lo != 0 && out->lo != 1))
      return fail("boolean literal value is not 0/1");
  } else if (out->lo > out->hi) {
    return fail("word literal with an empty interval");
  }
  return true;
}

bool Checker::parse_lits(const JsonValue& arr, std::vector<WordLit>* out) {
  for (const JsonValue& e : arr.array) {
    WordLit lit;
    if (!parse_lit(e, &lit)) return false;
    out->push_back(lit);
  }
  return true;
}

bool Checker::parse_step(const JsonValue& v, WordStep* out) {
  if (!v.is_object()) return fail("step is not an object");
  std::string kind;
  if (!get_u32(v, "net", &out->net) || !get_string(v, "k", &kind) ||
      !get_u32(v, "id", &out->id) || !get_int(v, "lo", &out->lo) ||
      !get_int(v, "hi", &out->hi))
    return false;
  if (kind.size() != 1 || (kind[0] != 'a' && kind[0] != 'd' &&
                           kind[0] != 'n' && kind[0] != 'c'))
    return fail("step kind must be one of a/d/n/c");
  out->kind = kind[0];
  if (!circuit_.valid(out->net)) return fail("step on undeclared net");
  return true;
}

bool Checker::parse_steps(const JsonValue& arr, std::vector<WordStep>* out) {
  for (const JsonValue& e : arr.array) {
    WordStep step;
    if (!parse_step(e, &step)) return false;
    out->push_back(step);
  }
  return true;
}

bool Checker::parse_conflict(const JsonValue& v, WordConflict* out) {
  if (v.kind == JsonValue::Kind::kNull) {
    out->kind = 0;
    return true;
  }
  if (!v.is_object()) return fail("conflict is not an object or null");
  std::string kind;
  if (!get_string(v, "k", &kind) || !get_u32(v, "id", &out->id)) return false;
  if (kind.size() != 1 || (kind[0] != 'n' && kind[0] != 'c'))
    return fail("conflict kind must be n or c");
  out->kind = kind[0];
  return true;
}

bool Checker::parse_fme_ref(const std::string& text, FmeRef* out) {
  if (text.size() < 2) return fail("malformed proof reference");
  const char k = text[0];
  if (k != 'c' && k != 'u' && k != 'l' && k != 's')
    return fail("proof reference kind must be c/u/l/s");
  std::uint64_t idx = 0;
  for (std::size_t i = 1; i < text.size(); ++i) {
    if (text[i] < '0' || text[i] > '9')
      return fail("malformed proof reference");
    idx = idx * 10 + static_cast<std::uint64_t>(text[i] - '0');
    if (idx > 0xffffffffULL) return fail("proof reference out of range");
  }
  out->kind = k;
  out->index = static_cast<std::uint32_t>(idx);
  return true;
}

bool Checker::parse_fme(const JsonValue& v, FmeData* out) {
  if (!v.is_object()) return fail("fme certificate is not an object");
  const JsonValue* vars = nullptr;
  const JsonValue* cons = nullptr;
  const JsonValue* steps = nullptr;
  if (!get_array(v, "vars", &vars) || !get_array(v, "cons", &cons) ||
      !get_array(v, "steps", &steps))
    return false;
  for (const JsonValue& e : vars->array) {
    if (!e.is_object()) return fail("fme var is not an object");
    FmeCertVar var;
    var.is_net = e.find("net") != nullptr;
    if (!get_u32(e, var.is_net ? "net" : "node", &var.id) ||
        !get_int(e, "lo", &var.lo) || !get_int(e, "hi", &var.hi))
      return false;
    out->vars.push_back(var);
  }
  for (const JsonValue& e : cons->array) {
    if (!e.is_object()) return fail("fme constraint is not an object");
    FmeCertCon con;
    const JsonValue* terms = nullptr;
    if (!get_u32(e, "node", &con.node) || !get_array(e, "terms", &terms) ||
        !get_i128(e, "bnd", &con.bound))
      return false;
    for (const JsonValue& t : terms->array) {
      if (!t.is_array() || t.array.size() != 2 || !t.array[0].is_int() ||
          !t.array[1].is_int())
        return fail("fme term is not a [var, coeff] pair");
      const std::int64_t var = t.array[0].integer;
      if (var < 0 || static_cast<std::size_t>(var) >= out->vars.size())
        return fail("fme term references an undeclared variable");
      con.terms.push_back({static_cast<std::uint32_t>(var),
                           t.array[1].integer});
    }
    out->cons.push_back(std::move(con));
  }
  for (const JsonValue& e : steps->array) {
    if (!e.is_object()) return fail("fme step is not an object");
    std::string kind;
    if (!get_string(e, "s", &kind)) return false;
    FmeStep step;
    if (kind == "comb") {
      step.kind = FmeStep::kComb;
      const JsonValue* of = nullptr;
      if (!get_array(e, "of", &of)) return false;
      for (const JsonValue& c : of->array) {
        if (!c.is_array() || c.array.size() != 2 || !c.array[0].is_string() ||
            !c.array[1].is_string())
          return fail("comb entry is not a [ref, coeff] pair");
        FmeRef ref;
        Int128 lambda = 0;
        if (!parse_fme_ref(c.array[0].string, &ref)) return false;
        if (!i128_from_string(c.array[1].string, &lambda))
          return fail("comb coefficient is not a decimal __int128 string");
        step.combo.push_back({ref, lambda});
      }
    } else if (kind == "div") {
      step.kind = FmeStep::kDiv;
      std::string of;
      if (!get_string(e, "of", &of) || !parse_fme_ref(of, &step.of) ||
          !get_i128(e, "d", &step.divisor))
        return false;
    } else if (kind == "split") {
      step.kind = FmeStep::kSplit;
      if (!get_u32(e, "v", &step.var) || !get_i128(e, "at", &step.at))
        return false;
    } else if (kind == "case") {
      step.kind = FmeStep::kCase;
    } else if (kind == "qed") {
      step.kind = FmeStep::kQed;
    } else {
      return fail("unknown fme step kind \"" + kind + "\"");
    }
    out->steps.push_back(std::move(step));
  }
  return true;
}

// ---------------------------------------------------------------------------

bool Checker::freeze_circuit() {
  for (std::uint32_t id = 0; id < circuit_.nets.size(); ++id) {
    const std::string problem = validate_net(circuit_, id);
    if (!problem.empty())
      return fail("net " + std::to_string(id) + ": " + problem);
  }
  state_.reserve(circuit_.nets.size());
  for (std::uint32_t id = 0; id < circuit_.nets.size(); ++id)
    state_.push_back(circuit_.initial(id));
  stage_ = Stage::kBody;
  return true;
}

bool Checker::lookup_clause(std::int64_t id,
                            const std::vector<WordLit>** out) {
  if (deleted_.contains(id))
    return fail("clause " + std::to_string(id) +
                " referenced after its deletion");
  const auto it = clauses_.find(id);
  if (it == clauses_.end())
    return fail("reference to unknown clause " + std::to_string(id));
  *out = &it->second;
  return true;
}

bool Checker::register_clause(std::int64_t id, std::vector<WordLit> lits) {
  if (id < 0) return true;  // the empty clause is never stored
  if (clauses_.contains(id) || deleted_.contains(id))
    return fail("duplicate clause id " + std::to_string(id));
  clauses_.emplace(id, std::move(lits));
  return true;
}

bool Checker::apply_step(const WordStep& st, std::vector<Interval>& s,
                         bool* contradiction) {
  const Interval claimed(st.lo, st.hi);
  Interval derived = s[st.net];
  switch (st.kind) {
    case 'a':
    case 'd': {
      // Pinned facts (decisions re-pinned by the assumed-false clause
      // literals, probe/way assignments). The claim may not tighten beyond
      // what is already pinned.
      if (!claimed.contains(s[st.net]))
        return fail("decision step claims more than the pinned value on net " +
                    std::to_string(st.net));
      break;
    }
    case 'n': {
      if (!circuit_.valid(st.id))
        return fail("node step references undeclared net " +
                    std::to_string(st.id));
      std::vector<std::pair<std::uint32_t, Interval>> narrows;
      check_node_rules(circuit_, st.id, s, &narrows);
      for (const auto& [net, iv] : narrows) {
        if (iv.is_empty()) *contradiction = true;
        if (net == st.net) derived = derived.intersect(iv);
      }
      if (!derived.is_empty() && !claimed.contains(derived))
        return fail("node " + std::to_string(st.id) +
                    " does not justify the claimed narrowing on net " +
                    std::to_string(st.net));
      break;
    }
    case 'c': {
      const std::vector<WordLit>* lits = nullptr;
      if (!lookup_clause(static_cast<std::int64_t>(st.id), &lits))
        return false;
      Interval implied = Interval::empty();
      bool informative = true;
      for (const WordLit& l : *lits) {
        if (lit_false(l, s[l.net])) continue;
        if (l.net != st.net) {
          informative = false;  // ≥2 free nets: no unit implication here
          break;
        }
        implied = implied.hull(lit_implied(l, s[st.net]));
      }
      derived = informative ? implied : s[st.net];
      if (!derived.is_empty() && !claimed.contains(derived))
        return fail("clause " + std::to_string(st.id) +
                    " does not justify the claimed narrowing on net " +
                    std::to_string(st.net));
      break;
    }
    default:
      return fail("unsupported step kind in this context");
  }
  s[st.net] = s[st.net].intersect(claimed);
  if (s[st.net].is_empty()) *contradiction = true;
  return true;
}

bool Checker::verify_conflict(const WordConflict& c,
                              const std::vector<Interval>& s,
                              const char* context) {
  if (c.kind == 'n') {
    if (!circuit_.valid(c.id))
      return fail(std::string(context) + ": conflict on undeclared net");
    std::vector<std::pair<std::uint32_t, Interval>> narrows;
    check_node_rules(circuit_, c.id, s, &narrows);
    for (const auto& [net, iv] : narrows) {
      if (iv.is_empty()) return true;
    }
    return fail(std::string(context) + ": node " + std::to_string(c.id) +
                " does not conflict under the replayed state");
  }
  if (c.kind == 'c') {
    const std::vector<WordLit>* lits = nullptr;
    if (!lookup_clause(static_cast<std::int64_t>(c.id), &lits)) return false;
    for (const WordLit& l : *lits) {
      if (!lit_false(l, s[l.net]))
        return fail(std::string(context) + ": clause " + std::to_string(c.id) +
                    " is not falsified under the replayed state");
    }
    return true;
  }
  return fail(std::string(context) + ": malformed conflict record");
}

bool Checker::replay(std::vector<Interval>& s,
                     const std::vector<WordStep>& steps,
                     const WordConflict& conf, bool need_contradiction,
                     bool* contradiction) {
  for (const WordStep& st : steps) {
    if (*contradiction) break;  // already refuted; remaining steps moot
    if (!apply_step(st, s, contradiction)) return false;
  }
  if (!need_contradiction) {
    // Caller decides what feasibility means; a recorded terminal conflict
    // still has to check out.
    if (!*contradiction && conf.kind != 0) {
      if (!verify_conflict(conf, s, "replay")) return false;
      *contradiction = true;
    }
    return true;
  }
  if (*contradiction) return true;
  if (conf.kind == 0)
    return fail("replay reaches no contradiction and records no conflict");
  if (!verify_conflict(conf, s, "replay")) return false;
  *contradiction = true;
  return true;
}

// ---------------------------------------------------------------------------
// FME sub-certificate verification.

namespace fme_check {

// One aux-variable slot of a node's encoding template: its coefficient in
// the row and the value range of the witness function (carry/borrow bits,
// remainders …).
struct Slot {
  Int128 coeff = 0;
  std::int64_t lo = 0;
  std::int64_t hi = 0;
};

struct Templ {
  std::map<std::uint32_t, Int128> nets;  // net id → coefficient
  std::vector<Slot> aux;
  Int128 bound = 0;
  bool eq = false;  // equality rows may be matched with either sign
};

void add_net(Templ* t, std::uint32_t net, Int128 coeff) {
  auto [it, fresh] = t->nets.emplace(net, coeff);
  if (!fresh) it->second += coeff;  // repeated operand nets fold together
  if (it->second == 0) t->nets.erase(it);
}

}  // namespace fme_check

bool Checker::verify_fme(const FmeData& f, const std::vector<Interval>& s) {
  using fme_check::Slot;
  using fme_check::Templ;

  // 1. Variable table: net bounds must cover the replayed state; aux
  // bounds are validated against the encoding templates during row
  // matching. An already-empty state is a refutation by itself.
  std::unordered_map<std::uint32_t, std::uint32_t> net_var;
  for (std::uint32_t i = 0; i < f.vars.size(); ++i) {
    const FmeCertVar& v = f.vars[i];
    if (v.is_net) {
      if (!circuit_.valid(v.id))
        return fail("fme variable on undeclared net " + std::to_string(v.id));
      if (s[v.id].is_empty()) return true;  // state already contradictory
      if (!Interval(v.lo, v.hi).contains(s[v.id]))
        return fail("fme bounds on net " + std::to_string(v.id) +
                    " exclude the derived interval");
      if (!net_var.emplace(v.id, i).second)
        return fail("net " + std::to_string(v.id) +
                    " declared as two fme variables");
    } else if (v.lo > v.hi) {
      return fail("fme auxiliary variable with empty bounds");
    }
  }

  // 2. Constraint rows: each must match its tagged node's encoding
  // template (possibly sign-flipped for equality rows, possibly with a
  // weakened bound). Auxiliary variables are bound to one (node, slot)
  // witness for the whole system.
  std::unordered_map<std::uint32_t, std::pair<std::uint32_t, int>> aux_use;
  for (std::size_t ci = 0; ci < f.cons.size(); ++ci) {
    const FmeCertCon& con = f.cons[ci];
    const auto row_fail = [&](const std::string& why) {
      return fail("fme constraint " + std::to_string(ci) + " (node " +
                  std::to_string(con.node) + "): " + why);
    };
    if (!circuit_.valid(con.node)) return row_fail("undeclared node");
    const CertCircuit::Net& n = circuit_.nets[con.node];
    const std::int64_t m = std::int64_t{1} << n.width;

    // Build the expected encoding of this node under the replayed state.
    std::vector<Templ> templates;
    {
      Templ t;
      t.eq = true;
      const auto op_net = [&](int i) { return n.args[static_cast<std::size_t>(i)]; };
      switch (n.op) {
        case CheckOp::kMux: {
          if (n.width != 1) {
            const Interval& sel = s[op_net(0)];
            if (sel.is_empty()) return true;
            if (!sel.is_point())
              return row_fail("mux select not decided in the replayed state");
            const std::uint32_t branch = sel.lo() == 1 ? op_net(1) : op_net(2);
            fme_check::add_net(&t, con.node, 1);
            fme_check::add_net(&t, branch, -1);
            templates.push_back(t);
          }
          break;
        }
        case CheckOp::kAdd:
          fme_check::add_net(&t, op_net(0), 1);
          fme_check::add_net(&t, op_net(1), 1);
          fme_check::add_net(&t, con.node, -1);
          t.aux.push_back({-Int128{m}, 0, 1});
          templates.push_back(t);
          break;
        case CheckOp::kSub:
          fme_check::add_net(&t, op_net(0), 1);
          fme_check::add_net(&t, op_net(1), -1);
          fme_check::add_net(&t, con.node, -1);
          t.aux.push_back({Int128{m}, 0, 1});
          templates.push_back(t);
          break;
        case CheckOp::kMulC:
          fme_check::add_net(&t, op_net(0), Int128{n.imm});
          fme_check::add_net(&t, con.node, -1);
          t.aux.push_back({-Int128{m}, 0, n.imm > 0 ? n.imm - 1 : 0});
          templates.push_back(t);
          break;
        case CheckOp::kShlC: {
          const std::int64_t k = std::int64_t{1} << n.imm;
          fme_check::add_net(&t, op_net(0), Int128{k});
          fme_check::add_net(&t, con.node, -1);
          t.aux.push_back({-Int128{m}, 0, k - 1});
          templates.push_back(t);
          break;
        }
        case CheckOp::kShrC: {
          const std::int64_t k = std::int64_t{1} << n.imm;
          fme_check::add_net(&t, op_net(0), 1);
          fme_check::add_net(&t, con.node, -Int128{k});
          t.aux.push_back({-1, 0, k - 1});
          templates.push_back(t);
          break;
        }
        case CheckOp::kNotW:
          fme_check::add_net(&t, con.node, 1);
          fme_check::add_net(&t, op_net(0), 1);
          t.bound = m - 1;
          templates.push_back(t);
          break;
        case CheckOp::kConcat: {
          const std::int64_t shift =
              std::int64_t{1} << circuit_.nets[op_net(1)].width;
          fme_check::add_net(&t, con.node, 1);
          fme_check::add_net(&t, op_net(0), -Int128{shift});
          fme_check::add_net(&t, op_net(1), -1);
          templates.push_back(t);
          break;
        }
        case CheckOp::kExtract: {
          const int xw = circuit_.nets[op_net(0)].width;
          const std::int64_t hi_bit = n.imm;
          const std::int64_t lo_bit = n.imm2;
          const std::int64_t hi_span = std::int64_t{1}
                                       << (xw - hi_bit - 1);
          const std::int64_t lo_span = std::int64_t{1} << lo_bit;
          fme_check::add_net(&t, op_net(0), 1);
          fme_check::add_net(&t, con.node, -Int128{lo_span});
          t.aux.push_back({-(Int128{1} << (hi_bit + 1)), 0, hi_span - 1});
          t.aux.push_back({-1, 0, lo_span - 1});
          templates.push_back(t);
          break;
        }
        case CheckOp::kZext:
          fme_check::add_net(&t, con.node, 1);
          fme_check::add_net(&t, op_net(0), -1);
          templates.push_back(t);
          break;
        case CheckOp::kLt:
        case CheckOp::kLe: {
          const Interval& d = s[con.node];
          if (d.is_empty()) return true;
          if (!d.is_point())
            return row_fail("comparator not decided in the replayed state");
          const Int128 strict = n.op == CheckOp::kLt ? 1 : 0;
          t.eq = false;
          if (d.lo() == 1) {
            fme_check::add_net(&t, op_net(0), 1);
            fme_check::add_net(&t, op_net(1), -1);
            t.bound = -strict;
          } else {
            fme_check::add_net(&t, op_net(1), 1);
            fme_check::add_net(&t, op_net(0), -1);
            t.bound = strict - 1;
          }
          templates.push_back(t);
          break;
        }
        case CheckOp::kEq:
        case CheckOp::kNe: {
          const Interval& d = s[con.node];
          if (d.is_empty()) return true;
          if (!d.is_point())
            return row_fail("comparator not decided in the replayed state");
          const bool want_eq = (d.lo() == 1) == (n.op == CheckOp::kEq);
          if (want_eq) {
            fme_check::add_net(&t, op_net(0), 1);
            fme_check::add_net(&t, op_net(1), -1);
            templates.push_back(t);
          }
          // want_ne contributes no rows (the extractor relies on disjoint
          // operand intervals instead); a row tagged here cannot match.
          break;
        }
        case CheckOp::kMin:
        case CheckOp::kMax: {
          const Interval lt = iops::fwd_lt(s[op_net(0)], s[op_net(1)]);
          if (lt.is_empty()) return true;
          if (!lt.is_point())
            return row_fail("min/max order not decided in the replayed state");
          const bool x_lt_y = lt.lo() == 1;
          const std::uint32_t chosen = (n.op == CheckOp::kMin) == x_lt_y
                                           ? op_net(0)
                                           : op_net(1);
          fme_check::add_net(&t, con.node, 1);
          fme_check::add_net(&t, chosen, -1);
          templates.push_back(t);
          break;
        }
        default:
          break;  // Boolean gates and sources never contribute rows
      }
    }
    if (templates.empty())
      return row_fail("node's encoding admits no constraint rows here");

    // Canonicalize the row: net part keyed by net id, aux terms by var.
    std::map<std::uint32_t, Int128> row_nets;
    std::map<std::uint32_t, Int128> row_aux;
    for (const auto& [var, coeff] : con.terms) {
      const FmeCertVar& vd = f.vars[var];
      auto& bucket = vd.is_net ? row_nets : row_aux;
      const std::uint32_t key = vd.is_net ? vd.id : var;
      bucket[key] += Int128{coeff};
      if (bucket[key] == 0) bucket.erase(key);
    }
    // Net terms must come in through declared net variables.
    for (const auto& [net, coeff] : row_nets) {
      (void)coeff;
      if (!net_var.contains(net))
        return row_fail("row uses an undeclared net variable");
    }

    bool matched = false;
    for (const Templ& t : templates) {
      for (const int sign : {1, -1}) {
        if (sign < 0 && !t.eq) continue;
        if (row_nets.size() != t.nets.size() ||
            row_aux.size() != t.aux.size())
          continue;
        bool nets_match = true;
        for (const auto& [net, coeff] : t.nets) {
          const auto it = row_nets.find(net);
          if (it == row_nets.end() || it->second != Int128{sign} * coeff) {
            nets_match = false;
            break;
          }
        }
        if (!nets_match) continue;
        // Bind each aux term to a distinct template slot by coefficient.
        std::vector<bool> used(t.aux.size(), false);
        std::vector<std::pair<std::uint32_t, int>> binding;
        bool aux_match = true;
        for (const auto& [var, coeff] : row_aux) {
          bool found = false;
          for (std::size_t si = 0; si < t.aux.size(); ++si) {
            if (used[si] || Int128{sign} * t.aux[si].coeff != coeff) continue;
            const FmeCertVar& vd = f.vars[var];
            if (vd.lo > t.aux[si].lo || vd.hi < t.aux[si].hi) continue;
            used[si] = true;
            binding.push_back({var, static_cast<int>(si)});
            found = true;
            break;
          }
          if (!found) {
            aux_match = false;
            break;
          }
        }
        if (!aux_match) continue;
        if (con.bound < Int128{sign} * t.bound) continue;
        // Commit the aux-variable witnesses: one (node, slot) per aux var
        // across the whole system, so every row shares a single value.
        bool witness_ok = true;
        for (const auto& [var, slot] : binding) {
          const auto [it, fresh] =
              aux_use.emplace(var, std::make_pair(con.node, slot));
          if (!fresh && (it->second.first != con.node ||
                         it->second.second != slot)) {
            witness_ok = false;
            break;
          }
        }
        if (!witness_ok)
          return row_fail("auxiliary variable shared across encodings");
        matched = true;
        break;
      }
      if (matched) break;
    }
    if (!matched) return row_fail("row does not match the node's encoding");
  }

  // 3. Replay the refutation steps with exact arithmetic.
  struct DCon {
    std::map<std::uint32_t, Int128> terms;  // keyed by fme variable index
    Int128 bound = 0;
  };
  std::vector<DCon> derived;
  std::vector<bool> alive;
  struct Frame {
    std::uint32_t split_id = 0;
    std::uint32_t var = 0;
    Int128 at = 0;
    bool in_right = false;
  };
  std::vector<Frame> frames;
  std::vector<bool> closed{false};

  const auto resolve = [&](const FmeRef& ref, DCon* out,
                           std::string* why) -> bool {
    out->terms.clear();
    out->bound = 0;
    switch (ref.kind) {
      case 'c': {
        if (ref.index >= f.cons.size()) {
          *why = "constraint reference out of range";
          return false;
        }
        const FmeCertCon& con = f.cons[ref.index];
        for (const auto& [var, coeff] : con.terms) {
          out->terms[var] += Int128{coeff};
          if (out->terms[var] == 0) out->terms.erase(var);
        }
        out->bound = con.bound;
        return true;
      }
      case 'u':
      case 'l': {
        if (ref.index >= f.vars.size()) {
          *why = "bound reference out of range";
          return false;
        }
        const FmeCertVar& v = f.vars[ref.index];
        if (ref.kind == 'u') {
          out->terms[ref.index] = 1;
          out->bound = Int128{v.hi};
        } else {
          out->terms[ref.index] = -1;
          out->bound = -Int128{v.lo};
        }
        return true;
      }
      case 's':
        if (ref.index >= derived.size() || !alive[ref.index]) {
          *why = "step reference out of scope";
          return false;
        }
        *out = derived[ref.index];
        return true;
    }
    *why = "malformed reference";
    return false;
  };
  const auto push_derived = [&](DCon con) {
    derived.push_back(std::move(con));
    alive.push_back(true);
    const DCon& back = derived.back();
    if (back.terms.empty() && back.bound < 0) closed.back() = true;
  };
  const auto kill_from = [&](std::uint32_t first) {
    for (std::size_t i = first; i < alive.size(); ++i) alive[i] = false;
  };

  for (std::size_t si = 0; si < f.steps.size(); ++si) {
    const FmeStep& st = f.steps[si];
    const auto step_fail = [&](const std::string& why) {
      return fail("fme step " + std::to_string(si) + ": " + why);
    };
    std::string why;
    switch (st.kind) {
      case FmeStep::kComb: {
        if (st.combo.empty()) return step_fail("empty combination");
        DCon acc;
        for (const auto& [ref, lambda] : st.combo) {
          if (lambda <= 0)
            return step_fail("combination coefficient must be positive");
          DCon part;
          if (!resolve(ref, &part, &why)) return step_fail(why);
          for (const auto& [var, coeff] : part.terms) {
            Int128 scaled = 0;
            if (!i128_mul(lambda, coeff, &scaled) ||
                !i128_add(acc.terms[var], scaled, &acc.terms[var]))
              return step_fail("coefficient overflow");
            if (acc.terms[var] == 0) acc.terms.erase(var);
          }
          Int128 scaled_bound = 0;
          if (!i128_mul(lambda, part.bound, &scaled_bound) ||
              !i128_add(acc.bound, scaled_bound, &acc.bound))
            return step_fail("bound overflow");
        }
        push_derived(std::move(acc));
        break;
      }
      case FmeStep::kDiv: {
        if (st.divisor <= 0) return step_fail("divisor must be positive");
        DCon part;
        if (!resolve(st.of, &part, &why)) return step_fail(why);
        DCon out;
        for (const auto& [var, coeff] : part.terms) {
          if (coeff % st.divisor != 0)
            return step_fail("divisor does not divide a coefficient");
          out.terms[var] = coeff / st.divisor;
        }
        out.bound = floor_div_i128(part.bound, st.divisor);
        push_derived(std::move(out));
        break;
      }
      case FmeStep::kSplit: {
        if (st.var >= f.vars.size())
          return step_fail("split variable out of range");
        Frame frame;
        frame.var = st.var;
        frame.at = st.at;
        frame.split_id = static_cast<std::uint32_t>(derived.size());
        frames.push_back(frame);
        closed.push_back(false);
        DCon hyp;  // left hypothesis: var ≤ at
        hyp.terms[st.var] = 1;
        hyp.bound = st.at;
        push_derived(std::move(hyp));
        break;
      }
      case FmeStep::kCase: {
        if (frames.empty() || frames.back().in_right)
          return step_fail("case without an open left branch");
        if (!closed.back())
          return step_fail("left branch is not contradicted");
        kill_from(frames.back().split_id);
        frames.back().in_right = true;
        closed.back() = false;
        Int128 neg_bound = 0;
        if (!i128_add(frames.back().at, 1, &neg_bound))
          return step_fail("split point overflow");
        DCon hyp;  // right hypothesis: var ≥ at+1  ⟺  −var ≤ −(at+1)
        hyp.terms[frames.back().var] = -1;
        hyp.bound = -neg_bound;
        push_derived(std::move(hyp));
        break;
      }
      case FmeStep::kQed: {
        if (frames.empty() || !frames.back().in_right)
          return step_fail("qed without an open right branch");
        if (!closed.back())
          return step_fail("right branch is not contradicted");
        kill_from(frames.back().split_id);
        frames.pop_back();
        closed.pop_back();
        closed.back() = true;
        break;
      }
    }
  }
  if (!frames.empty()) return fail("fme refutation leaves an open case split");
  if (!closed.back())
    return fail("fme refutation does not derive a contradiction");
  return true;
}

// ---------------------------------------------------------------------------
// Record handlers.

bool Checker::on_net(const JsonValue& v) {
  std::uint32_t id = 0;
  std::int64_t width = 0;
  std::string op;
  const JsonValue* args = nullptr;
  CertCircuit::Net net;
  if (!get_u32(v, "id", &id) || !get_int(v, "w", &width) ||
      !get_string(v, "op", &op) || !get_array(v, "args", &args) ||
      !get_int(v, "imm", &net.imm) || !get_int(v, "imm2", &net.imm2))
    return false;
  if (id != circuit_.nets.size())
    return fail("net records must be consecutive from 0");
  net.op = check_op_from_name(op);
  if (net.op == CheckOp::kUnknown)
    return fail("unknown net op \"" + op + "\"");
  net.width = static_cast<int>(width);
  for (const JsonValue& a : args->array) {
    if (!a.is_int() || a.integer < 0)
      return fail("net operand is not a nonnegative integer");
    net.args.push_back(static_cast<std::uint32_t>(a.integer));
  }
  circuit_.nets.push_back(std::move(net));
  return true;
}

bool Checker::on_assume(const JsonValue& v) {
  std::uint32_t net = 0;
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  if (!get_u32(v, "net", &net) || !get_int(v, "lo", &lo) ||
      !get_int(v, "hi", &hi))
    return false;
  if (!circuit_.valid(net)) return fail("assumption on undeclared net");
  if (lo > hi) return fail("assumption with an empty interval");
  state_[net] = state_[net].intersect(Interval(lo, hi));
  if (state_[net].is_empty()) refuted_ = true;
  return true;
}

bool Checker::on_narrow0(const JsonValue& v) {
  WordStep step;
  if (!parse_step(v, &step)) return false;
  if (step.kind != 'n' && step.kind != 'c')
    return fail("level-0 narrowing must be a node or clause step");
  bool contradiction = false;
  if (!apply_step(step, state_, &contradiction)) return false;
  if (contradiction) refuted_ = true;
  return true;
}

bool Checker::on_conflict0(const JsonValue& v) {
  std::string kind;
  std::uint32_t id = 0;
  if (!get_string(v, "k", &kind) || !get_u32(v, "id", &id)) return false;
  if (kind == "a") {
    // An assumption emptied the state; the assume record already showed it.
    if (!refuted_)
      return fail("assumption conflict claimed but assumptions are "
                  "consistent");
    return true;
  }
  if (kind != "n" && kind != "c")
    return fail("level-0 conflict kind must be a/n/c");
  WordConflict conf;
  conf.kind = kind[0];
  conf.id = id;
  if (!verify_conflict(conf, state_, "level-0 conflict")) return false;
  refuted_ = true;
  return true;
}

bool Checker::on_learn(const JsonValue& v) {
  std::int64_t id = 0;
  const JsonValue* lits_json = nullptr;
  const JsonValue* steps_json = nullptr;
  const JsonValue* conf_json = v.find("conf");
  std::vector<WordLit> lits;
  std::vector<WordStep> steps;
  WordConflict conf;
  if (!get_int(v, "id", &id) || !get_array(v, "lits", &lits_json) ||
      !get_array(v, "steps", &steps_json) || conf_json == nullptr)
    return fail("malformed learn record");
  if (!parse_lits(*lits_json, &lits) || !parse_steps(*steps_json, &steps) ||
      !parse_conflict(*conf_json, &conf))
    return false;

  // Assume the clause false on top of the level-0 state, replay the
  // antecedent cut, and demand a contradiction.
  std::vector<Interval> s = state_;
  bool contradiction = false;
  for (const WordLit& l : lits) {
    s[l.net] = lit_assume_false(l, s[l.net]);
    if (s[l.net].is_empty()) contradiction = true;
  }
  if (!replay(s, steps, conf, /*need_contradiction=*/true, &contradiction))
    return false;
  if (lits.empty()) refuted_ = true;  // the empty clause
  return register_clause(id, std::move(lits));
}

bool Checker::on_cut(const JsonValue& v) {
  std::int64_t id = 0;
  const JsonValue* lits_json = nullptr;
  const JsonValue* steps_json = nullptr;
  const JsonValue* fme_json = v.find("fme");
  std::vector<WordLit> lits;
  std::vector<WordStep> steps;
  FmeData fme;
  if (!get_int(v, "id", &id) || !get_array(v, "lits", &lits_json) ||
      !get_array(v, "steps", &steps_json) || fme_json == nullptr)
    return fail("malformed cut record");
  if (!parse_lits(*lits_json, &lits) || !parse_steps(*steps_json, &steps) ||
      !parse_fme(*fme_json, &fme))
    return false;

  std::vector<Interval> s = state_;
  bool contradiction = false;
  for (const WordLit& l : lits) {
    s[l.net] = lit_assume_false(l, s[l.net]);
    if (s[l.net].is_empty()) contradiction = true;
  }
  if (!replay(s, steps, WordConflict{}, /*need_contradiction=*/false,
              &contradiction))
    return false;
  // The FME refutation closes the branch (unless propagation already did).
  if (!contradiction && !verify_fme(fme, s)) return false;
  if (lits.empty()) refuted_ = true;
  return register_clause(id, std::move(lits));
}

bool Checker::on_fme0(const JsonValue& v) {
  const JsonValue* fme_json = v.find("fme");
  FmeData fme;
  if (fme_json == nullptr) return fail("malformed fme0 record");
  if (!parse_fme(*fme_json, &fme)) return false;
  if (!verify_fme(fme, state_)) return false;
  refuted_ = true;
  return true;
}

bool Checker::on_probe(const JsonValue& v) {
  std::uint32_t pnet = 0;
  std::int64_t val = 0;
  const JsonValue* steps_json = nullptr;
  const JsonValue* conf_json = v.find("conf");
  const JsonValue* ways_json = nullptr;
  const JsonValue* clauses_json = nullptr;
  if (!get_u32(v, "net", &pnet) || !get_int(v, "val", &val) ||
      !get_array(v, "steps", &steps_json) || conf_json == nullptr ||
      !get_array(v, "ways", &ways_json) ||
      !get_array(v, "clauses", &clauses_json))
    return fail("malformed probe record");
  if (!circuit_.valid(pnet) || circuit_.nets[pnet].width != 1 ||
      (val != 0 && val != 1))
    return fail("probe target must be a Boolean net with value 0/1");
  std::vector<WordStep> steps;
  WordConflict conf;
  if (!parse_steps(*steps_json, &steps) || !parse_conflict(*conf_json, &conf))
    return false;

  // Replay the probe one level up.
  std::vector<Interval> s = state_;
  bool probe_dead = false;
  s[pnet] = s[pnet].intersect(Interval::point(val));
  if (s[pnet].is_empty()) probe_dead = true;
  if (!replay(s, steps, conf, /*need_contradiction=*/false, &probe_dead))
    return false;
  if (conf.kind != 0 && !probe_dead)
    return fail("probe records a conflict that did not verify");

  struct WayState {
    std::vector<std::pair<std::uint32_t, std::int64_t>> assign;
    bool feasible = false;
    std::vector<Interval> end;
  };
  std::vector<WayState> ways;
  int feasible = 0;
  if (!probe_dead) {
    for (const JsonValue& wv : ways_json->array) {
      if (!wv.is_object()) return fail("probe way is not an object");
      const JsonValue* assign_json = nullptr;
      const JsonValue* wsteps_json = nullptr;
      const JsonValue* wconf_json = wv.find("conf");
      if (!get_array(wv, "assign", &assign_json) ||
          !get_array(wv, "steps", &wsteps_json) || wconf_json == nullptr)
        return fail("malformed probe way");
      WayState way;
      for (const JsonValue& a : assign_json->array) {
        if (!a.is_array() || a.array.size() != 2 || !a.array[0].is_int() ||
            !a.array[1].is_int())
          return fail("way assignment is not a [net, value] pair");
        const std::int64_t anet = a.array[0].integer;
        if (anet < 0 || !circuit_.valid(static_cast<std::uint32_t>(anet)))
          return fail("way assignment on undeclared net");
        way.assign.push_back({static_cast<std::uint32_t>(anet),
                              a.array[1].integer});
      }
      std::vector<WordStep> wsteps;
      WordConflict wconf;
      if (!parse_steps(*wsteps_json, &wsteps) ||
          !parse_conflict(*wconf_json, &wconf))
        return false;
      std::vector<Interval> ws = s;
      bool dead = false;
      for (const auto& [anet, aval] : way.assign) {
        ws[anet] = ws[anet].intersect(Interval::point(aval));
        if (ws[anet].is_empty()) dead = true;
      }
      if (!replay(ws, wsteps, wconf, /*need_contradiction=*/false, &dead))
        return false;
      if (wconf.kind != 0 && !dead)
        return fail("probe way records a conflict that did not verify");
      way.feasible = !dead;
      if (way.feasible) {
        ++feasible;
        way.end = std::move(ws);
      }
      ways.push_back(std::move(way));
    }

    // Coverage: the recorded ways must include every way the driver gate
    // can still produce `val` under the replayed probe state. Each
    // expected case is a full assignment set; a recorded way may omit a
    // pin the state already holds.
    std::vector<std::vector<std::pair<std::uint32_t, std::int64_t>>> cases;
    const CertCircuit::Net& n = circuit_.nets[pnet];
    switch (n.op) {
      case CheckOp::kAnd:
      case CheckOp::kOr: {
        const std::int64_t controlling = n.op == CheckOp::kOr ? 1 : 0;
        if (val != controlling)
          return fail("probe ways on a gate/value without branching");
        for (const std::uint32_t o : n.args) {
          if (s[o].contains(controlling)) cases.push_back({{o, controlling}});
        }
        break;
      }
      case CheckOp::kXor: {
        const std::uint32_t a = n.args[0];
        const std::uint32_t c = n.args[1];
        for (const std::int64_t pa : {std::int64_t{0}, std::int64_t{1}}) {
          const std::int64_t pc = (pa == 1) == (val == 1) ? 0 : 1;
          if (s[a].contains(pa) && s[c].contains(pc))
            cases.push_back({{a, pa}, {c, pc}});
        }
        break;
      }
      case CheckOp::kMux: {
        if (n.width != 1)
          return fail("probe ways on a gate/value without branching");
        const std::uint32_t sel = n.args[0];
        for (const int arm : {1, 0}) {
          const std::uint32_t branch = arm == 1 ? n.args[1] : n.args[2];
          if (s[sel].contains(arm) && s[branch].contains(val))
            cases.push_back({{sel, arm}, {branch, val}});
        }
        break;
      }
      default:
        return fail("probe ways on a gate/value without branching");
    }
    for (const auto& expected : cases) {
      bool covered = false;
      for (const WayState& way : ways) {
        // way.assign ⊆ expected, and every expected pin is either in the
        // way or already held by the probe state.
        bool match = true;
        for (const auto& wa : way.assign) {
          if (std::find(expected.begin(), expected.end(), wa) ==
              expected.end()) {
            match = false;
            break;
          }
        }
        if (!match) continue;
        for (const auto& ea : expected) {
          const bool pinned = s[ea.first] == Interval::point(ea.second);
          if (!pinned && std::find(way.assign.begin(), way.assign.end(),
                                   ea) == way.assign.end()) {
            match = false;
            break;
          }
        }
        if (match) {
          covered = true;
          break;
        }
      }
      if (!covered)
        return fail("probe ways do not cover a possible case of net " +
                    std::to_string(pnet));
    }
    if (feasible == 0) probe_dead = true;  // every way contradicted
  }

  // Justify the record's clauses. Each must carry the probe antecedent
  // ¬(net = val); when the probe survived, every other literal must hold
  // at the end of every feasible way.
  for (const JsonValue& cv : clauses_json->array) {
    if (!cv.is_array()) return fail("probe clause is not an array");
    std::vector<WordLit> lits;
    if (!parse_lits(cv, &lits)) return false;
    const bool has_antecedent =
        std::any_of(lits.begin(), lits.end(), [&](const WordLit& l) {
          return l.is_bool && l.net == pnet && l.lo == 1 - val;
        });
    if (!has_antecedent)
      return fail("probe clause lacks the antecedent literal");
    if (!probe_dead) {
      for (const WayState& way : ways) {
        if (!way.feasible) continue;
        const bool satisfied =
            std::any_of(lits.begin(), lits.end(), [&](const WordLit& l) {
              return lit_true(l, way.end[l.net]);
            });
        if (!satisfied)
          return fail("probe clause is not implied by every feasible way");
      }
    }
    justified_.insert(clause_key(lits));
  }
  return true;
}

bool Checker::on_wprobe(const JsonValue& v) {
  std::uint32_t wnet = 0;
  const JsonValue* cases_json = nullptr;
  const JsonValue* clauses_json = nullptr;
  if (!get_u32(v, "net", &wnet) || !get_array(v, "cases", &cases_json) ||
      !get_array(v, "clauses", &clauses_json))
    return fail("malformed wprobe record");
  if (!circuit_.valid(wnet)) return fail("wprobe on undeclared net");

  struct CaseState {
    Interval box;
    bool feasible = false;
    std::vector<Interval> end;
  };
  std::vector<CaseState> cases;
  int feasible = 0;
  for (const JsonValue& cv : cases_json->array) {
    if (!cv.is_object()) return fail("wprobe case is not an object");
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    const JsonValue* steps_json = nullptr;
    const JsonValue* conf_json = cv.find("conf");
    if (!get_int(cv, "lo", &lo) || !get_int(cv, "hi", &hi) ||
        !get_array(cv, "steps", &steps_json) || conf_json == nullptr)
      return fail("malformed wprobe case");
    std::vector<WordStep> steps;
    WordConflict conf;
    if (!parse_steps(*steps_json, &steps) ||
        !parse_conflict(*conf_json, &conf))
      return false;
    CaseState cs;
    cs.box = Interval(lo, hi);
    std::vector<Interval> s = state_;
    bool dead = false;
    s[wnet] = s[wnet].intersect(cs.box);
    if (s[wnet].is_empty()) dead = true;
    if (!replay(s, steps, conf, /*need_contradiction=*/false, &dead))
      return false;
    if (conf.kind != 0 && !dead)
      return fail("wprobe case records a conflict that did not verify");
    cs.feasible = !dead;
    if (cs.feasible) {
      ++feasible;
      cs.end = std::move(s);
    }
    cases.push_back(std::move(cs));
  }

  // The cases must cover the net's whole level-0 domain.
  Interval rest = state_[wnet];
  bool progress = true;
  while (!rest.is_empty() && progress) {
    progress = false;
    for (const CaseState& cs : cases) {
      if (cs.box.contains(rest.lo())) {
        if (cs.box.hi() >= rest.hi()) {
          rest = Interval::empty();
        } else {
          rest = Interval(cs.box.hi() + 1, rest.hi());
        }
        progress = true;
        break;
      }
    }
  }
  if (!rest.is_empty())
    return fail("wprobe cases do not cover the domain of net " +
                std::to_string(wnet));

  if (feasible == 0) {
    refuted_ = true;  // a full domain with every case contradicted
    return true;
  }
  for (const JsonValue& cv : clauses_json->array) {
    if (!cv.is_array()) return fail("wprobe clause is not an array");
    std::vector<WordLit> lits;
    if (!parse_lits(cv, &lits)) return false;
    for (const CaseState& cs : cases) {
      if (!cs.feasible) continue;
      const bool satisfied =
          std::any_of(lits.begin(), lits.end(), [&](const WordLit& l) {
            return lit_true(l, cs.end[l.net]);
          });
      if (!satisfied)
        return fail("wprobe clause is not implied by every feasible case");
    }
    justified_.insert(clause_key(lits));
  }
  return true;
}

bool Checker::on_addc(const JsonValue& v) {
  std::int64_t id = 0;
  const JsonValue* lits_json = nullptr;
  std::vector<WordLit> lits;
  if (!get_int(v, "id", &id) || !get_array(v, "lits", &lits_json))
    return fail("malformed addc record");
  if (!parse_lits(*lits_json, &lits)) return false;
  if (!justified_.contains(clause_key(lits)))
    return fail("added clause " + std::to_string(id) +
                " was never justified");
  return register_clause(id, std::move(lits));
}

bool Checker::on_import(const JsonValue& v) {
  std::int64_t id = 0;
  std::int64_t worker = 0;
  std::int64_t seq = 0;
  const JsonValue* lits_json = nullptr;
  std::vector<WordLit> lits;
  if (!get_int(v, "id", &id) || !get_int(v, "worker", &worker) ||
      !get_int(v, "seq", &seq) || !get_array(v, "lits", &lits_json))
    return fail("malformed import record");
  if (!parse_lits(*lits_json, &lits)) return false;
  if (!options_.trust_imports)
    return fail("clause " + std::to_string(id) + " imported from worker " +
                std::to_string(worker) +
                " is unjustified (rerun with --trust-imports to accept)");
  return register_clause(id, std::move(lits));
}

bool Checker::on_delc(const JsonValue& v) {
  std::int64_t id = 0;
  if (!get_int(v, "id", &id)) return fail("malformed delc record");
  if (!clauses_.contains(id) || deleted_.contains(id))
    return fail("deletion of unknown clause " + std::to_string(id));
  deleted_.insert(id);
  return true;
}

bool Checker::on_end(const JsonValue& v) {
  if (!get_string(v, "verdict", &verdict_)) return false;
  if (verdict_ != "unsat" && verdict_ != "sat" && verdict_ != "timeout" &&
      verdict_ != "cancelled")
    return fail("unknown verdict \"" + verdict_ + "\"");
  if (verdict_ == "unsat" && !refuted_)
    return fail("verdict is unsat but no refutation was established");
  stage_ = Stage::kDone;
  return true;
}

WordCheckResult Checker::run(std::string_view text) {
  WordCheckResult result;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view raw = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (raw.find_first_not_of(" \t\r") == std::string_view::npos) continue;
    ++line_;
    ++result.records;

    JsonValue v;
    std::string parse_error;
    if (!trace::json_parse(raw, &v, &parse_error)) {
      fail("malformed JSON (truncated final step?): " + parse_error);
      break;
    }
    std::string type;
    if (!v.is_object() || !get_string(v, "t", &type)) {
      fail("record without a \"t\" discriminator");
      break;
    }

    bool ok = true;
    if (stage_ == Stage::kDone) {
      ok = fail("record after the end record");
    } else if (stage_ == Stage::kHeader) {
      std::int64_t version = 0;
      if (type != "rtlsat_cert") {
        ok = fail("certificate must start with a rtlsat_cert header");
      } else if (!get_int(v, "version", &version) || version != 1) {
        ok = fail("unsupported certificate version");
      } else {
        stage_ = Stage::kNets;
      }
    } else if (type == "net") {
      ok = stage_ == Stage::kNets ? on_net(v)
                                  : fail("net record after derivations began");
    } else {
      if (stage_ == Stage::kNets && !(ok = freeze_circuit())) {
        // fall through with the error set
      } else if (type == "assume") {
        ok = on_assume(v);
      } else if (type == "n0") {
        ok = on_narrow0(v);
      } else if (type == "conflict0") {
        ok = on_conflict0(v);
      } else if (type == "learn") {
        ok = on_learn(v);
      } else if (type == "cut") {
        ok = on_cut(v);
      } else if (type == "fme0") {
        ok = on_fme0(v);
      } else if (type == "probe") {
        ok = on_probe(v);
      } else if (type == "wprobe") {
        ok = on_wprobe(v);
      } else if (type == "addc") {
        ok = on_addc(v);
      } else if (type == "import") {
        ok = on_import(v);
      } else if (type == "delc") {
        ok = on_delc(v);
      } else if (type == "end") {
        ok = on_end(v);
      } else {
        ok = fail("unknown record type \"" + type + "\"");
      }
    }
    if (!ok) break;
  }

  result.refuted = refuted_;
  result.verdict = verdict_;
  if (!error_.empty()) {
    result.error = error_;
    return result;
  }
  if (stage_ != Stage::kDone) {
    result.error =
        "certificate ends without an end record (truncated file?)";
    return result;
  }
  result.ok = true;
  return result;
}

}  // namespace

WordCheckResult word_check(std::string_view certificate,
                           const WordCheckOptions& options) {
  Checker checker(options);
  return checker.run(certificate);
}

}  // namespace rtlsat::proof
