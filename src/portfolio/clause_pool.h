// Shared clause pool for the parallel portfolio (the clause-sharing half
// of src/portfolio, after the portfolio-SAT literature in PAPERS.md).
//
// HDPLL workers racing the same BMC instance prove clauses that are
// consequences of the formula alone — learned conflict clauses and the §3
// predicate relations — so any worker may adopt any other worker's clauses
// without a soundness argument beyond "same formula". The pool is the
// meeting point: an append-only vector of (worker, clause) entries behind
// one mutex, with an atomic size counter so the common case — "anything
// new since my cursor?" — answers without taking the lock at all.
//
// Policy lives here, not in the solvers: a length cap (long clauses are
// rarely worth a peer's propagation cost), duplicate suppression by
// canonical clause hash, and a capacity cap that turns the pool read-only
// instead of evicting (eviction would break the monotone cursors).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "core/clause_exchange.h"
#include "core/hybrid_clause.h"

namespace rtlsat::portfolio {

struct ClausePoolOptions {
  // Clauses with more literals than this are refused at publish time.
  std::size_t max_clause_len = 8;
  // Entries the pool will hold before refusing further publishes.
  std::size_t capacity = 1 << 16;
};

class ClausePool {
 public:
  explicit ClausePool(ClausePoolOptions options = {}) : options_(options) {}
  ClausePool(const ClausePool&) = delete;
  ClausePool& operator=(const ClausePool&) = delete;

  const ClausePoolOptions& options() const { return options_; }

  // Publishes a batch from `worker`. Returns how many entries were
  // accepted (length cap, duplicate hash, and capacity all filter).
  // Thread-safe.
  std::size_t publish(int worker, std::vector<core::HybridClause> batch);

  // Appends every entry at index ≥ *cursor that was published by a
  // *different* worker, and advances *cursor* past everything examined.
  // Returns the number appended. Lock-free when the cursor is current —
  // the per-restart cost of an idle pool is one atomic load. Thread-safe;
  // each worker owns its own cursor.
  std::size_t fetch(int worker, std::size_t* cursor,
                    std::vector<core::HybridClause>* out);

  // Entries published so far (monotone; approximate between lock regions).
  std::size_t size() const { return size_.load(std::memory_order_acquire); }

 private:
  struct Entry {
    int worker;
    core::HybridClause clause;
  };

  ClausePoolOptions options_;
  mutable std::mutex mu_;
  std::vector<Entry> entries_;                // guarded by mu_
  std::unordered_set<std::uint64_t> hashes_;  // guarded by mu_
  // Published count, written under mu_ with release ordering; fetch()'s
  // fast path reads it with acquire so a seen increment implies the
  // entries behind it are visible once the lock is taken.
  std::atomic<std::size_t> size_{0};
};

// A worker's private endpoint onto the pool (core::ClauseExchange). The
// solver calls it single-threaded; the endpoint batches offers locally and
// only touches the (mutex-guarded) pool on flush and on collect, keeping
// the solver's learning hot path lock-free.
class PoolExchange : public core::ClauseExchange {
 public:
  PoolExchange(ClausePool* pool, int worker) : pool_(pool), worker_(worker) {}

  // Queues a clause for publication; flushes every kBatch offers. Returns
  // false for clauses the pool's length cap would refuse, for empty or
  // problem clauses, and for clauses that were themselves imported
  // (re-exporting a kShared clause would just bounce it around the pool).
  bool offer(const core::HybridClause& clause) override;

  // Flushes the outbox, then pulls every peer clause published since the
  // previous collect.
  void collect(std::vector<core::HybridClause>* out) override;

  // Publishes the partial batch still in the outbox (the solver calls this
  // once at the end of a solve).
  void flush() override;

  // Offers accepted into the pool so far (post-dedup), for reporting.
  std::size_t published() const { return published_; }

 private:
  static constexpr std::size_t kBatch = 16;

  ClausePool* pool_;
  int worker_;
  std::size_t cursor_ = 0;
  std::size_t published_ = 0;
  std::vector<core::HybridClause> outbox_;
};

}  // namespace rtlsat::portfolio
