#include "portfolio/clause_pool.h"

#include <algorithm>

namespace rtlsat::portfolio {

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  // splitmix64 finalizer as the combiner — cheap and well-distributed.
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  return h;
}

// Canonical clause hash: literal order must not matter (the same relation
// learned by two workers can carry its literals in different orders), so
// hash each literal independently and combine with an order-insensitive
// fold before the final mix.
std::uint64_t clause_hash(const core::HybridClause& clause) {
  std::uint64_t folded = 0;
  for (const core::HybridLit& l : clause.lits) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    h = mix(h, static_cast<std::uint64_t>(l.net));
    h = mix(h, static_cast<std::uint64_t>(l.interval.lo()));
    h = mix(h, static_cast<std::uint64_t>(l.interval.hi()));
    h = mix(h, (l.positive ? 2u : 0u) | (l.is_bool ? 1u : 0u));
    folded += h;  // commutative fold: order-insensitive
  }
  return mix(folded, clause.lits.size());
}

}  // namespace

std::size_t ClausePool::publish(int worker,
                                std::vector<core::HybridClause> batch) {
  if (batch.empty()) return 0;
  std::size_t accepted = 0;
  const std::lock_guard<std::mutex> lock(mu_);
  for (core::HybridClause& c : batch) {
    if (c.lits.empty() || c.lits.size() > options_.max_clause_len) continue;
    if (entries_.size() >= options_.capacity) break;
    if (!hashes_.insert(clause_hash(c)).second) continue;
    c.shared_from = worker;
    c.shared_seq = static_cast<std::int64_t>(entries_.size());
    entries_.push_back(Entry{worker, std::move(c)});
    ++accepted;
  }
  size_.store(entries_.size(), std::memory_order_release);
  return accepted;
}

std::size_t ClausePool::fetch(int worker, std::size_t* cursor,
                              std::vector<core::HybridClause>* out) {
  // Fast path: nothing published since this worker's cursor. The acquire
  // load pairs with publish()'s release store, so a stale answer here can
  // only be "no news yet" — the clauses are picked up next time.
  if (size_.load(std::memory_order_acquire) <= *cursor) return 0;
  std::size_t appended = 0;
  const std::lock_guard<std::mutex> lock(mu_);
  for (; *cursor < entries_.size(); ++*cursor) {
    const Entry& e = entries_[*cursor];
    if (e.worker == worker) continue;
    out->push_back(e.clause);
    ++appended;
  }
  return appended;
}

bool PoolExchange::offer(const core::HybridClause& clause) {
  if (clause.lits.empty() ||
      clause.lits.size() > pool_->options().max_clause_len)
    return false;
  if (clause.origin == core::HybridClause::Origin::kShared ||
      clause.origin == core::HybridClause::Origin::kProblem)
    return false;
  outbox_.push_back(clause);
  if (outbox_.size() >= kBatch) flush();
  return true;
}

void PoolExchange::flush() {
  if (outbox_.empty()) return;
  published_ += pool_->publish(worker_, std::move(outbox_));
  outbox_.clear();  // moved-from: restore a known state
}

void PoolExchange::collect(std::vector<core::HybridClause>* out) {
  flush();
  pool_->fetch(worker_, &cursor_, out);
}

}  // namespace rtlsat::portfolio
