// Parallel portfolio front-end: race N solver configurations on one
// instance, return the first verdict, cooperatively cancel the rest.
//
// The portfolio idea (see PAPERS.md on portfolio SAT solving) transplants
// cleanly onto the paper's Table 2 experiment: the three HDPLL
// configurations and the bit-blast CDCL baseline have wildly different —
// and instance-dependent — runtimes, so racing them buys min-of-N latency
// for one machine's worth of cores. Two mechanisms make the race more than
// N independent solves:
//
//  * cooperative cancellation — every worker polls one StopToken
//    (util/stop_token.h) deep in its loops, so the losers stop within
//    milliseconds of the winner's verdict instead of running to their own
//    timeouts;
//  * predicate-clause sharing — HDPLL workers export learned conflict
//    clauses and §3 predicate relations through a shared ClausePool and
//    import peers' clauses at restart boundaries, so one worker's proof
//    work shortens the others' searches.
//
// Determinism: `deterministic = true` trades the race for reproducibility —
// workers run sequentially in index order (sharing still on, cancellation
// off), imports land at the same restart boundaries every run, and the
// winner is the lowest-index worker with a verdict. Two runs of the same
// deterministic portfolio produce identical verdicts, models, and solver
// counters, provided no worker hits the wall-clock budget.
//
// docs/portfolio.md covers the architecture and the sharing policy.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/hdpll.h"
#include "ir/circuit.h"
#include "portfolio/clause_pool.h"
#include "util/stats.h"

namespace rtlsat::metrics {
class MetricsRegistry;
}  // namespace rtlsat::metrics

namespace rtlsat::trace {
class JsonlSink;
}  // namespace rtlsat::trace

namespace rtlsat::portfolio {

// One racer: either an HdpllSolver with the given options or the bit-blast
// CDCL baseline. `name` labels reports and bench JSON rows.
struct WorkerConfig {
  std::string name;
  bool bitblast = false;
  core::HdpllOptions hdpll;
};

struct PortfolioOptions {
  int jobs = 4;                 // worker count (≥ 1)
  bool share_clauses = true;    // predicate-clause sharing via ClausePool
  std::size_t share_max_len = 8;
  double budget_seconds = 0;    // wall-clock budget for the race; 0 = none
  bool deterministic = false;   // sequential mode (see file comment)
  // External cancellation (serve job cancel, CLI interrupt): combined with
  // the internal first-verdict-wins source, so a fired token stops every
  // worker within milliseconds and the race returns without a verdict.
  // Default-constructed = never fires.
  StopToken stop;
  // Cross-job clause exchange (rtlsat-serve): when set, workers publish to
  // and import from this pool instead of a race-local one, so a later job
  // on the *same instance* (same circuit object layout, same goal — the
  // caller owns that equivalence, see serve/bank.h) starts with the
  // earlier jobs' learned clauses. Sharing is enabled even for a 1-worker
  // portfolio in this mode, since the peers are in other jobs. Borrowed;
  // must outlive solve(). Null = race-local pool.
  ClausePool* pool = nullptr;
  // Pool worker-id namespace offset. Worker i publishes as id `base + i`;
  // concurrent jobs sharing one pool must use disjoint ranges or same-index
  // workers would skip each other's clauses on fetch.
  int worker_id_base = 0;
  // Cross-check the winner's verdict against the losers after the race:
  // decisive verdicts must agree, a SAT model must satisfy the goal under
  // circuit evaluation, and every HDPLL loser's level-0 interval store
  // must admit the model (core/selfcheck.h's soundness audit).
  bool crosscheck = true;
  // Run the interval presolver (src/presolve) before the race: a
  // presolve-decided instance returns immediately with winner_name
  // "presolve" (and, on SAT, a model over the original inputs); an
  // undecided one races the simplified circuit and maps the winner's model
  // back through the input names. Applies to solve() only — an assumption
  // race (solve(assumptions)) names nets of the original circuit, which a
  // rewrite may have erased, so it ignores this flag.
  bool presolve = false;
  // Forwarded to every HDPLL worker.
  int learn_threshold = 2000;
  bool self_check = kSelfCheckBuild;
  // Shared by all workers (trace::Tracer is internally synchronized); null
  // ⟹ trace::global(). Borrowed.
  trace::Tracer* tracer = nullptr;
  // Live telemetry (src/metrics): when set, every worker registers its own
  // gauge family in this registry, labeled {worker=<index>, name=<config>},
  // and publishes counters/memory/LBD at conflict boundaries — a Sampler
  // scraping the same registry turns the race into per-worker time series.
  // Borrowed; must outlive solve(). Null = off.
  metrics::MetricsRegistry* metrics = nullptr;
  // Per-worker progress heartbeats: when set, each worker drives a
  // ProgressReporter (no banner) writing "worker"-tagged JSONL lines into
  // this shared sink. Borrowed; must outlive solve(). Null = off.
  trace::JsonlSink* progress_sink = nullptr;
  double progress_interval_seconds = 0.5;
};

struct WorkerReport {
  std::string name;
  char verdict = '?';  // 'S', 'U', 'T', 'C' (cancelled), '?' (skipped)
  double seconds = 0;
  std::int64_t clauses_exported = 0;
  std::int64_t clauses_imported = 0;
  // Seconds between the winner's stop request and this worker's return;
  // < 0 when the worker was not cancelled. The acceptance bar is < 50 ms.
  double cancel_latency = -1;
  Stats stats;
};

struct PortfolioResult {
  core::SolveStatus status = core::SolveStatus::kTimeout;
  // On kSat: the winner's model for every primary input.
  std::unordered_map<ir::NetId, std::int64_t> input_model;
  int winner = -1;  // index into workers; -1 = no verdict
  std::string winner_name;
  double seconds = 0;  // wall clock for the whole race
  std::vector<WorkerReport> workers;
  // Every worker's counters/histograms merged (util/stats.h merge()), plus
  // portfolio.* counters (workers, shared clause totals).
  Stats stats;
  // Non-empty ⟹ the winner and a loser disagreed (see crosscheck option).
  std::vector<std::string> crosscheck_violations;
};

// The default lineup for `jobs` workers, in tie-break order: HDPLL+S+P,
// bit-blast CDCL, HDPLL+S, HDPLL, then seed/parameter-perturbed HDPLL+S+P
// duplicates for any remaining slots.
std::vector<WorkerConfig> default_lineup(int jobs, int learn_threshold);

class Portfolio {
 public:
  // Solves "goal = goal_value" over `circuit` (borrowed; must outlive the
  // portfolio). An empty lineup uses default_lineup(options.jobs).
  Portfolio(const ir::Circuit& circuit, ir::NetId goal, bool goal_value,
            PortfolioOptions options = {},
            std::vector<WorkerConfig> lineup = {});

  PortfolioResult solve();

  // Race under per-call retractable (net, interval) assumptions, layered
  // above the goal exactly as in core::HdpllSolver::solve(assumptions)
  // (docs/incremental.md). Bit-blast workers cannot take word-level
  // assumptions, so a non-empty set sidelines them for this race (verdict
  // '?'); the HDPLL workers all solve the same strengthened instance, so
  // the verdict cross-check stays meaningful.
  PortfolioResult solve(
      const std::vector<std::pair<ir::NetId, Interval>>& assumptions);

 private:
  const ir::Circuit& circuit_;
  ir::NetId goal_;
  bool goal_value_;
  PortfolioOptions options_;
  std::vector<WorkerConfig> lineup_;
};

}  // namespace rtlsat::portfolio
