#include "portfolio/portfolio.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "bitblast/bitblast.h"
#include "metrics/solver_gauges.h"
#include "presolve/simplify.h"
#include "trace/progress.h"
#include "trace/sink.h"
#include "util/stop_token.h"
#include "util/timer.h"

namespace rtlsat::portfolio {

using Clock = std::chrono::steady_clock;
using ir::NetId;

std::vector<WorkerConfig> default_lineup(int jobs, int learn_threshold) {
  const auto hdpll_config = [&](const char* name, bool structural,
                                bool predicates) {
    WorkerConfig w;
    w.name = name;
    w.hdpll.structural_decisions = structural;
    w.hdpll.predicate_learning = predicates;
    w.hdpll.learning.max_relations = learn_threshold;
    return w;
  };

  std::vector<WorkerConfig> lineup;
  const int n = std::max(jobs, 1);
  for (int i = 0; i < n; ++i) {
    switch (i) {
      case 0:
        // The paper's strongest configuration leads, and wins index
        // tie-breaks in deterministic mode.
        lineup.push_back(hdpll_config("HDPLL+S+P", true, true));
        break;
      case 1: {
        // The structure-blind baseline is the best complement: it wins on
        // exactly the instances the word-level engines lose.
        WorkerConfig w;
        w.name = "bitblast";
        w.bitblast = true;
        lineup.push_back(std::move(w));
        break;
      }
      case 2:
        lineup.push_back(hdpll_config("HDPLL+S", true, false));
        break;
      case 3:
        lineup.push_back(hdpll_config("HDPLL", false, false));
        break;
      default: {
        // Extra slots: seed/parameter-perturbed copies of the strongest
        // configuration — diversity through restart cadence and decay.
        const int k = i - 3;
        WorkerConfig w = hdpll_config("", true, true);
        w.name = "HDPLL+S+P#" + std::to_string(k);
        w.hdpll.random_seed = static_cast<std::uint64_t>(k) * 2654435761u + 1;
        w.hdpll.restart_interval = 64 << (k % 4);
        w.hdpll.activity_decay = (k % 2) == 0 ? 0.92 : 0.97;
        lineup.push_back(std::move(w));
        break;
      }
    }
  }
  return lineup;
}

Portfolio::Portfolio(const ir::Circuit& circuit, NetId goal, bool goal_value,
                     PortfolioOptions options, std::vector<WorkerConfig> lineup)
    : circuit_(circuit),
      goal_(goal),
      goal_value_(goal_value),
      options_(options),
      lineup_(std::move(lineup)) {
  if (lineup_.empty())
    lineup_ = default_lineup(options_.jobs, options_.learn_threshold);
}

namespace {

// Everything one racer owns. The HdpllSolver outlives the race so the
// cross-check can replay the winner's model against the loser's level-0
// interval store.
struct WorkerSlot {
  WorkerConfig config;
  std::unique_ptr<PoolExchange> exchange;
  std::unique_ptr<core::HdpllSolver> solver;  // HDPLL workers only
  // Per-worker telemetry, registered before the race so the sampler sees
  // every worker from its first scrape (and lifetime safely spans the
  // post-race cross-check, which still publishes final counters).
  metrics::SolverGauges gauges;
  std::unique_ptr<trace::ProgressReporter> progress;
  char verdict = '?';
  double seconds = 0;
  std::unordered_map<NetId, std::int64_t> model;
  Stats stats;
  Clock::time_point end_time{};
  bool ran = false;
};

char hdpll_verdict(core::SolveStatus status) {
  switch (status) {
    case core::SolveStatus::kSat: return 'S';
    case core::SolveStatus::kUnsat: return 'U';
    case core::SolveStatus::kTimeout: return 'T';
    case core::SolveStatus::kCancelled: return 'C';
  }
  return '?';
}

char sat_verdict(sat::Result result) {
  switch (result) {
    case sat::Result::kSat: return 'S';
    case sat::Result::kUnsat: return 'U';
    case sat::Result::kTimeout: return 'T';
    case sat::Result::kCancelled: return 'C';
  }
  return '?';
}

}  // namespace

PortfolioResult Portfolio::solve() {
  if (!options_.presolve) return solve({});
  Timer timer;
  presolve::GoalPresolve pre =
      presolve::presolve_goal(circuit_, goal_, goal_value_);
  if (pre.decided) {
    // Decided without a single solver call: no race, no workers.
    PortfolioResult result;
    result.status =
        pre.sat ? core::SolveStatus::kSat : core::SolveStatus::kUnsat;
    result.winner_name = "presolve";
    if (pre.sat) result.input_model = std::move(pre.model);
    pre.stats.add_to(result.stats);
    result.stats.add("presolve.decided", 1);
    if (options_.crosscheck && result.status == core::SolveStatus::kSat) {
      const auto values = circuit_.evaluate(result.input_model);
      if ((values[goal_] != 0) != goal_value_) {
        result.crosscheck_violations.push_back(
            "presolve model does not satisfy the goal under circuit "
            "evaluation");
      }
    }
    result.seconds = timer.seconds();
    return result;
  }
  // Undecided: race the simplified instance (presolve off — one level of
  // rewriting is all there is) and translate the verdict back.
  PortfolioOptions inner_options = options_;
  inner_options.presolve = false;
  Portfolio inner(pre.circuit, pre.goal, goal_value_, inner_options, lineup_);
  PortfolioResult result = inner.solve();
  pre.stats.add_to(result.stats);
  if (result.status == core::SolveStatus::kSat) {
    // Model transfer by input name: every simplified input is the image of
    // a same-named original input; an input the rewrite erased is
    // unconstrained, so any value — 0 — completes the witness.
    std::unordered_map<NetId, std::int64_t> model;
    for (const NetId in : circuit_.inputs()) {
      const NetId mapped = pre.circuit.find_net(circuit_.net_name(in));
      const auto it = mapped == ir::kNoNet ? result.input_model.end()
                                           : result.input_model.find(mapped);
      model[in] = it == result.input_model.end() ? 0 : it->second;
    }
    result.input_model = std::move(model);
    if (options_.crosscheck) {
      // The inner race already cross-checked the simplified instance; this
      // pass catches net-map bugs in the rewrite itself.
      const auto values = circuit_.evaluate(result.input_model);
      if ((values[goal_] != 0) != goal_value_) {
        result.crosscheck_violations.push_back(
            "presolve-mapped model does not satisfy the original goal");
      }
    }
  }
  result.seconds = timer.seconds();
  return result;
}

PortfolioResult Portfolio::solve(
    const std::vector<std::pair<ir::NetId, Interval>>& assumptions) {
  Timer timer;
  PortfolioResult result;
  const int n = static_cast<int>(lineup_.size());

  ClausePool local_pool(
      ClausePoolOptions{.max_clause_len = options_.share_max_len});
  ClausePool* pool = options_.pool != nullptr ? options_.pool : &local_pool;
  // With a race-local pool, sharing needs at least two HDPLL workers;
  // otherwise skip the endpoints entirely so a 1-worker portfolio matches a
  // direct solve (the bench/micro_portfolio overhead guard). An external
  // cross-job pool shares regardless — the peers are other jobs.
  const int hdpll_workers = static_cast<int>(
      std::count_if(lineup_.begin(), lineup_.end(),
                    [](const WorkerConfig& w) { return !w.bitblast; }));
  const bool share = options_.share_clauses &&
                     (options_.pool != nullptr || hdpll_workers >= 2);
  std::vector<WorkerSlot> slots(lineup_.size());
  for (int i = 0; i < n; ++i) {
    slots[i].config = lineup_[i];
    if (share && !lineup_[i].bitblast) {
      slots[i].exchange =
          std::make_unique<PoolExchange>(pool, options_.worker_id_base + i);
    }
    if (options_.metrics != nullptr) {
      slots[i].gauges = metrics::make_solver_gauges(
          options_.metrics,
          {{"worker", std::to_string(i)}, {"name", lineup_[i].name}});
    }
    if (options_.progress_sink != nullptr) {
      trace::ProgressOptions progress_options;
      progress_options.banner = false;
      progress_options.interval_seconds = options_.progress_interval_seconds;
      progress_options.sink = options_.progress_sink;
      progress_options.label = std::to_string(i) + ":" + lineup_[i].name;
      slots[i].progress =
          std::make_unique<trace::ProgressReporter>(progress_options);
    }
  }

  StopSource source;
  // First decisive worker; parallel mode resolves races with one CAS, so
  // exactly one thread fires the stop and records the stop time.
  std::atomic<int> winner{-1};
  Clock::time_point stop_time{};

  const auto run_worker = [&](int index, const StopToken& token) {
    WorkerSlot& slot = slots[index];
    slot.ran = true;
    Timer worker_timer;
    if (slot.config.bitblast) {
      if (!assumptions.empty()) {
        // No word-level assumption channel into the bit-blast baseline;
        // racing it on the unstrengthened instance would produce verdicts
        // for a different question. Sit this one out.
        slot.verdict = '?';
        slot.seconds = worker_timer.seconds();
        slot.end_time = Clock::now();
        return;
      }
      sat::SolverOptions sat_options;
      sat_options.stop = token;
      sat_options.self_check = options_.self_check;
      sat_options.tracer = options_.tracer;
      if (options_.metrics != nullptr) sat_options.gauges = &slot.gauges;
      sat_options.progress = slot.progress.get();
      const bitblast::CheckResult check =
          bitblast::check_sat(circuit_, goal_, goal_value_, sat_options);
      slot.verdict = sat_verdict(check.result);
      if (check.result == sat::Result::kSat) slot.model = check.input_model;
    } else {
      core::HdpllOptions hdpll_options = slot.config.hdpll;
      hdpll_options.stop = token;
      hdpll_options.self_check = options_.self_check;
      hdpll_options.tracer = options_.tracer;
      hdpll_options.exchange = slot.exchange.get();
      if (options_.metrics != nullptr) hdpll_options.gauges = &slot.gauges;
      hdpll_options.progress = slot.progress.get();
      slot.solver =
          std::make_unique<core::HdpllSolver>(circuit_, hdpll_options);
      slot.solver->assume_bool(goal_, goal_value_);
      const core::SolveResult solved = slot.solver->solve(assumptions);
      slot.verdict = hdpll_verdict(solved.status);
      if (solved.status == core::SolveStatus::kSat)
        slot.model = solved.input_model;
      slot.stats = slot.solver->stats();
    }
    slot.seconds = worker_timer.seconds();
    slot.end_time = Clock::now();
    if (slot.verdict == 'S' || slot.verdict == 'U') {
      int expected = -1;
      if (winner.compare_exchange_strong(expected, index)) {
        // Order matters: a loser observing the flag must find stop_time
        // already written. The threads' join gives the main thread its
        // own happens-before edge for both.
        stop_time = Clock::now();
        source.request_stop();
      }
    }
  };

  if (options_.deterministic) {
    // Sequential, in index order, no cancellation: the pool's content at
    // every import point is a pure function of the lineup, so verdicts,
    // models, and counters reproduce run to run (see header). Every
    // worker runs — later workers still import the earlier ones' clauses
    // and feed the cross-check.
    for (int i = 0; i < n; ++i) {
      const double remaining =
          options_.budget_seconds <= 0
              ? 0
              : std::max(options_.budget_seconds - timer.seconds(), 1e-3);
      run_worker(i, options_.stop.with_deadline(remaining));
    }
  } else {
    const StopToken token = source.token()
                                .combined(options_.stop)
                                .with_deadline(options_.budget_seconds);
    std::vector<std::thread> threads;
    threads.reserve(lineup_.size());
    for (int i = 0; i < n; ++i)
      threads.emplace_back([&run_worker, &token, i] { run_worker(i, token); });
    for (std::thread& t : threads) t.join();
  }

  // ---- merge reports (single-threaded from here on).
  int winner_index = winner.load();
  if (options_.deterministic) {
    // Lowest-index decisive worker wins the tie-break by construction of
    // the sequential loop order.
    winner_index = -1;
    for (int i = 0; i < n && winner_index < 0; ++i) {
      if (slots[i].verdict == 'S' || slots[i].verdict == 'U') winner_index = i;
    }
  }

  for (int i = 0; i < n; ++i) {
    WorkerSlot& slot = slots[i];
    WorkerReport report;
    report.name = slot.config.name;
    report.verdict = slot.verdict;
    report.seconds = slot.seconds;
    report.clauses_exported = slot.stats.get("hdpll.clauses_exported");
    report.clauses_imported = slot.stats.get("hdpll.clauses_imported");
    if (slot.verdict == 'C') {
      report.cancel_latency =
          std::chrono::duration<double>(slot.end_time - stop_time).count();
    }
    result.stats.merge(slot.stats);
    report.stats = std::move(slot.stats);
    result.workers.push_back(std::move(report));
  }
  result.stats.add("portfolio.workers", n);
  result.stats.add("portfolio.pool_clauses",
                   static_cast<std::int64_t>(pool->size()));

  result.winner = winner_index;
  if (winner_index >= 0) {
    WorkerSlot& win = slots[winner_index];
    result.winner_name = win.config.name;
    result.status = win.verdict == 'S' ? core::SolveStatus::kSat
                                       : core::SolveStatus::kUnsat;
    result.input_model = std::move(win.model);
  } else {
    // No decisive worker: if the *caller's* token fired (serve cancel,
    // shutdown) the race was cancelled; otherwise the budget ran out. The
    // internal first-verdict-wins source never trips this — it only fires
    // alongside a winner.
    result.status = options_.stop.stop_requested()
                        ? core::SolveStatus::kCancelled
                        : core::SolveStatus::kTimeout;
  }

  if (options_.crosscheck && winner_index >= 0) {
    for (int i = 0; i < n; ++i) {
      if (i == winner_index) continue;
      const char v = slots[i].verdict;
      if ((v == 'S' || v == 'U') && v != slots[winner_index].verdict) {
        result.crosscheck_violations.push_back(
            "verdict disagreement: " + result.winner_name + " says " +
            slots[winner_index].verdict + std::string(" but ") +
            slots[i].config.name + " says " + v);
      }
    }
    if (result.status == core::SolveStatus::kSat) {
      const auto values = circuit_.evaluate(result.input_model);
      if ((values[goal_] != 0) != goal_value_) {
        result.crosscheck_violations.push_back(
            "winner model does not satisfy the goal under circuit "
            "evaluation");
      }
      for (const auto& [net, interval] : assumptions) {
        if (!interval.contains(values[net])) {
          result.crosscheck_violations.push_back(
              "winner model violates assumption on " + circuit_.net_name(net));
        }
      }
      for (int i = 0; i < n; ++i) {
        if (i == winner_index || slots[i].solver == nullptr) continue;
        for (const std::string& v :
             slots[i].solver->crosscheck_model(result.input_model)) {
          result.crosscheck_violations.push_back(slots[i].config.name + ": " +
                                                 v);
        }
      }
    }
  }

  result.seconds = timer.seconds();
  return result;
}

}  // namespace rtlsat::portfolio
