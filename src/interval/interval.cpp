#include "interval/interval.h"

#include <sstream>

namespace rtlsat {

Interval Interval::minus(const Interval& other) const {
  if (is_empty() || other.is_empty() || !intersects(other)) return *this;
  const bool cuts_low = other.lo_ <= lo_;
  const bool cuts_high = other.hi_ >= hi_;
  if (cuts_low && cuts_high) return empty();
  if (cuts_low) return Interval(other.hi_ + 1, hi_);
  if (cuts_high) return Interval(lo_, other.lo_ - 1);
  return *this;  // hole strictly inside: not representable, keep as-is
}

std::string Interval::to_string() const {
  if (is_empty()) return "<empty>";
  std::ostringstream os;
  if (is_point()) {
    os << '<' << lo_ << '>';
  } else {
    os << '<' << lo_ << ',' << hi_ << '>';
  }
  return os.str();
}

namespace {
using V = Interval::Value;

V clamp128(__int128 x) {
  if (x < static_cast<__int128>(kSatMin)) return kSatMin;
  if (x > static_cast<__int128>(kSatMax)) return kSatMax;
  return static_cast<V>(x);
}
}  // namespace

Interval::Value sat_add(Interval::Value a, Interval::Value b) {
  return clamp128(static_cast<__int128>(a) + b);
}

Interval::Value sat_sub(Interval::Value a, Interval::Value b) {
  return clamp128(static_cast<__int128>(a) - b);
}

Interval::Value sat_mul(Interval::Value a, Interval::Value b) {
  return clamp128(static_cast<__int128>(a) * b);
}

}  // namespace rtlsat
