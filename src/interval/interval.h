// Closed integer intervals ⟨lo,hi⟩ (paper §2.1/§2.2).
//
// A domain D(v) maps a variable to a finite set of integers represented as
// one closed interval. A Boolean variable has domain ⟨0,1⟩; a word variable
// of bit-width w has domain ⟨0, 2^w − 1⟩. The empty interval is the
// canonical ⟨1,0⟩ so that equality comparison is structural.
//
// All arithmetic saturates at the int64 representable range via __int128
// intermediates; circuit widths are capped (ir::kMaxWidth = 60) well below
// that, so saturation never occurs for in-range circuit values — it only
// keeps intermediate expressions defined.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "util/assert.h"

namespace rtlsat {

class Interval {
 public:
  using Value = std::int64_t;

  // Default: the empty interval.
  constexpr Interval() : lo_(1), hi_(0) {}
  constexpr Interval(Value lo, Value hi) : lo_(lo), hi_(hi) {
    if (lo_ > hi_) {  // canonicalize every empty form to ⟨1,0⟩
      lo_ = 1;
      hi_ = 0;
    }
  }

  static constexpr Interval empty() { return Interval(); }
  static constexpr Interval point(Value v) { return Interval(v, v); }
  static constexpr Interval booleans() { return Interval(0, 1); }

  // Full domain of an unsigned bit-width w (w in [1,60]).
  static Interval full_width(int width) {
    RTLSAT_ASSERT(width >= 1 && width <= 60);
    return Interval(0, (Value{1} << width) - 1);
  }

  constexpr Value lo() const { return lo_; }
  constexpr Value hi() const { return hi_; }

  constexpr bool is_empty() const { return lo_ > hi_; }
  constexpr bool is_point() const { return lo_ == hi_; }
  // Number of integers contained; 0 for empty.
  constexpr std::uint64_t count() const {
    return is_empty() ? 0
                      : static_cast<std::uint64_t>(hi_) -
                            static_cast<std::uint64_t>(lo_) + 1;
  }

  constexpr bool contains(Value v) const { return lo_ <= v && v <= hi_; }
  constexpr bool contains(const Interval& other) const {
    return other.is_empty() || (lo_ <= other.lo_ && other.hi_ <= hi_);
  }
  constexpr bool intersects(const Interval& other) const {
    return !is_empty() && !other.is_empty() && lo_ <= other.hi_ &&
           other.lo_ <= hi_;
  }

  constexpr Interval intersect(const Interval& other) const {
    if (is_empty() || other.is_empty()) return empty();
    return Interval(lo_ > other.lo_ ? lo_ : other.lo_,
                    hi_ < other.hi_ ? hi_ : other.hi_);
  }

  // Smallest interval containing both (interval union hull).
  constexpr Interval hull(const Interval& other) const {
    if (is_empty()) return other;
    if (other.is_empty()) return *this;
    return Interval(lo_ < other.lo_ ? lo_ : other.lo_,
                    hi_ > other.hi_ ? hi_ : other.hi_);
  }

  // The part of *this strictly below/above v (used by comparator rules).
  constexpr Interval below(Value v) const {  // ∩ (−∞, v)
    if (is_empty() || lo_ >= v) return empty();
    return Interval(lo_, hi_ < v - 1 ? hi_ : v - 1);
  }
  constexpr Interval above(Value v) const {  // ∩ (v, ∞)
    if (is_empty() || hi_ <= v) return empty();
    return Interval(lo_ > v + 1 ? lo_ : v + 1, hi_);
  }
  // Direct forms, not below(v+1)/above(v−1): v can sit on a saturation
  // rail (INT64_MIN/MAX), where the ±1 would be signed overflow.
  constexpr Interval at_most(Value v) const {  // ∩ (−∞, v]
    if (is_empty() || lo_ > v) return empty();
    return Interval(lo_, hi_ < v ? hi_ : v);
  }
  constexpr Interval at_least(Value v) const {  // ∩ [v, ∞)
    if (is_empty() || hi_ < v) return empty();
    return Interval(lo_ > v ? lo_ : v, hi_);
  }

  // Set difference *this \ other when the result is a single interval.
  // If `other` splits *this in the middle, returns *this unchanged (a sound
  // over-approximation; the standard treatment for interval domains).
  Interval minus(const Interval& other) const;

  friend constexpr bool operator==(const Interval& a, const Interval& b) {
    return a.lo_ == b.lo_ && a.hi_ == b.hi_;
  }
  friend constexpr bool operator!=(const Interval& a, const Interval& b) {
    return !(a == b);
  }

  // "⟨lo,hi⟩", "⟨v⟩" for points, "∅" for empty — matching the paper's style.
  std::string to_string() const;

 private:
  Value lo_;
  Value hi_;
};

// Saturating int64 helpers shared by interval_ops.
Interval::Value sat_add(Interval::Value a, Interval::Value b);
Interval::Value sat_sub(Interval::Value a, Interval::Value b);
Interval::Value sat_mul(Interval::Value a, Interval::Value b);

// The saturation rails of the helpers above. An endpoint sitting on a rail
// means "the true value did not fit in int64": the interval's *length* can
// no longer be trusted (two distinct true values may have collapsed onto
// the same rail), so range-arithmetic fast paths that reason from
// hi − lo — e.g. fwd_mod's same-residue-block test — must treat such
// intervals conservatively. A genuine value equal to the rail is
// indistinguishable from a saturated one; treating it as saturated only
// costs precision, never soundness.
inline constexpr Interval::Value kSatMin =
    std::numeric_limits<Interval::Value>::min();
inline constexpr Interval::Value kSatMax =
    std::numeric_limits<Interval::Value>::max();
constexpr bool endpoint_saturated(Interval::Value v) {
  return v == kSatMin || v == kSatMax;
}

}  // namespace rtlsat
