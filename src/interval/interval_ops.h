// Forward evaluation and backward (inverse) narrowing rules for interval
// constraint propagation (paper §2.2, Eq. (1)–(3)).
//
// Forward rules compute the tightest interval for an operator's result from
// its operand intervals. Backward rules narrow an operand given the result
// interval — e.g. Eq. (3): from x − z < 0, x ∈ ⟨x̲, min(x̄, z̄−1)⟩ and
// z ∈ ⟨max(z̲, x̲+1), z̄⟩. All rules are sound over-approximations and
// monotonic (they only ever shrink intervals), which is what guarantees the
// propagation fixpoint terminates on finite domains.
//
// Wrapping (modular) variants model RTL adders/subtractors of width w,
// where the mathematical sum is reduced mod m = 2^w.
#pragma once

#include "interval/interval.h"

namespace rtlsat::iops {

using V = Interval::Value;

// ---------------------------------------------------------------- forward

Interval fwd_add(const Interval& x, const Interval& y);
Interval fwd_sub(const Interval& x, const Interval& y);
Interval fwd_neg(const Interval& x);
Interval fwd_mul_const(const Interval& x, V k);
// Bitwise complement of an unsigned w-bit value: 2^w − 1 − x.
Interval fwd_not(const Interval& x, int width);
// z = x mod m for m ≥ 1 (x may be any interval; handles negatives). An x
// endpoint on a saturation rail (see endpoint_saturated) yields the full
// ⟨0, m−1⟩: a saturated interval's length is unreliable, so the exact
// same-residue fast path must not fire.
Interval fwd_mod(const Interval& x, V m);
// z = floor(x / 2^k) for x ≥ 0.
Interval fwd_lshr(const Interval& x, int k);
// z = (x · 2^k) mod 2^width — a left shift that drops overflowing bits.
Interval fwd_shl(const Interval& x, int k, int width);
// z = hi-part · 2^low_width + lo-part.
Interval fwd_concat(const Interval& hi_part, const Interval& lo_part,
                    int low_width);
// z = bits [hi_bit : lo_bit] of x (x ≥ 0).
Interval fwd_extract(const Interval& x, int hi_bit, int lo_bit);
Interval fwd_min(const Interval& x, const Interval& y);
Interval fwd_max(const Interval& x, const Interval& y);
// Wrapping add/sub of unsigned w-bit operands.
Interval fwd_add_wrap(const Interval& x, const Interval& y, int width);
Interval fwd_sub_wrap(const Interval& x, const Interval& y, int width);

// Three-valued result of comparing two intervals: ⟨1,1⟩ definitely true,
// ⟨0,0⟩ definitely false, ⟨0,1⟩ unknown.
Interval fwd_eq(const Interval& x, const Interval& y);
Interval fwd_lt(const Interval& x, const Interval& y);
Interval fwd_le(const Interval& x, const Interval& y);

// --------------------------------------------------------------- backward
//
// Each back_* narrows the named operand given the result interval z and the
// other operand's current interval; the return value must be intersected
// with the operand's current interval by the caller (the rules already do
// that where it is free). An empty result signals a conflict.

// z = x + y (exact).
Interval back_add_x(const Interval& z, const Interval& y);  // x ⊇ z − y
// z = x − y (exact).
Interval back_sub_x(const Interval& z, const Interval& y);  // x ⊇ z + y
Interval back_sub_y(const Interval& z, const Interval& x);  // y ⊇ x − z
// z = −x.
Interval back_neg(const Interval& z);
// z = k·x, k ≠ 0: x ⊇ { v : k·v ∈ z }.
Interval back_mul_const(const Interval& z, V k);
// z = 2^w − 1 − x.
Interval back_not(const Interval& z, int width);
// z = floor(x / 2^k): x ⊇ [z̲·2^k, z̄·2^k + 2^k − 1].
Interval back_lshr(const Interval& z, int k);
// z = (x + y) mod 2^width with x, y in-width: narrows x.
Interval back_add_wrap_x(const Interval& z, const Interval& y,
                         const Interval& x_cur, int width);
// z = (x − y) mod 2^width: narrows x (x ⊇ z + y possibly − 2^w).
Interval back_sub_wrap_x(const Interval& z, const Interval& y,
                         const Interval& x_cur, int width);
// z = (x − y) mod 2^width: narrows y (y ⊇ x − z possibly + 2^w).
Interval back_sub_wrap_y(const Interval& z, const Interval& x,
                         const Interval& y_cur, int width);
// z = concat(hi, lo): narrow the parts.
Interval back_concat_hi(const Interval& z, int low_width);
Interval back_concat_lo(const Interval& z, const Interval& hi_cur,
                        const Interval& lo_cur, int low_width);
// z = extract(x, hi_bit, lo_bit): narrows x only when the untouched bits of
// x are already fixed; otherwise returns x_cur (sound no-op). Well-defined
// for any lo_bit ≤ 60 and field width ≤ 60 even when lo_bit + field width
// exceeds 62 (the window arithmetic saturates instead of overflowing).
Interval back_extract(const Interval& z, const Interval& x_cur, int hi_bit,
                      int lo_bit);
// z = min(x,y) / max(x,y): narrows x.
Interval back_min_x(const Interval& z, const Interval& y,
                    const Interval& x_cur);
Interval back_max_x(const Interval& z, const Interval& y,
                    const Interval& x_cur);

// ------------------------------------------------- comparator narrowings
//
// Apply a now-known comparison outcome to both operands (Eq. (3) family).
// Results are the narrowed (x, y) pair.

struct Pair {
  Interval x, y;
};

Pair narrow_lt(const Interval& x, const Interval& y);  // assert x <  y
Pair narrow_le(const Interval& x, const Interval& y);  // assert x ≤ y
Pair narrow_eq(const Interval& x, const Interval& y);  // assert x = y
Pair narrow_ne(const Interval& x, const Interval& y);  // assert x ≠ y

}  // namespace rtlsat::iops
