#include "interval/interval_ops.h"

#include <algorithm>

namespace rtlsat::iops {

namespace {

V pow2(int k) {
  RTLSAT_ASSERT(k >= 0 && k <= 60);
  return V{1} << k;
}

// Floor/ceil division for signed operands, divisor > 0.
V div_floor(V a, V b) {
  RTLSAT_ASSERT(b > 0);
  V q = a / b;
  if (a % b != 0 && a < 0) --q;
  return q;
}
V div_ceil(V a, V b) {
  RTLSAT_ASSERT(b > 0);
  V q = a / b;
  if (a % b != 0 && a > 0) ++q;
  return q;
}

V mod_floor(V a, V m) {
  RTLSAT_ASSERT(m > 0);
  V r = a % m;
  if (r < 0) r += m;
  return r;
}

}  // namespace

// ---------------------------------------------------------------- forward

Interval fwd_add(const Interval& x, const Interval& y) {
  if (x.is_empty() || y.is_empty()) return Interval::empty();
  return Interval(sat_add(x.lo(), y.lo()), sat_add(x.hi(), y.hi()));
}

Interval fwd_sub(const Interval& x, const Interval& y) {
  if (x.is_empty() || y.is_empty()) return Interval::empty();
  return Interval(sat_sub(x.lo(), y.hi()), sat_sub(x.hi(), y.lo()));
}

Interval fwd_neg(const Interval& x) {
  if (x.is_empty()) return Interval::empty();
  return Interval(sat_sub(0, x.hi()), sat_sub(0, x.lo()));
}

Interval fwd_mul_const(const Interval& x, V k) {
  if (x.is_empty()) return Interval::empty();
  if (k == 0) return Interval::point(0);
  const V a = sat_mul(x.lo(), k);
  const V b = sat_mul(x.hi(), k);
  return k > 0 ? Interval(a, b) : Interval(b, a);
}

Interval fwd_not(const Interval& x, int width) {
  if (x.is_empty()) return Interval::empty();
  const V top = pow2(width) - 1;
  return Interval(top - x.hi(), top - x.lo());
}

Interval fwd_mod(const Interval& x, V m) {
  RTLSAT_ASSERT(m >= 1);
  if (x.is_empty()) return Interval::empty();
  // A saturated endpoint (from sat_mul/sat_add upstream, e.g. fwd_shl or
  // fwd_mul_const at wide widths) means the interval's length is a lie:
  // distinct true values collapsed onto the rail can make x look like a
  // point and trick the same-residue-block test below into an "exact"
  // answer that excludes real residues. Conservatively return the full
  // range.
  if (endpoint_saturated(x.lo()) || endpoint_saturated(x.hi()))
    return Interval(0, m - 1);
  if (x.count() >= static_cast<std::uint64_t>(m)) return Interval(0, m - 1);
  const V rlo = mod_floor(x.lo(), m);
  const V rhi = mod_floor(x.hi(), m);
  // Same residue block and no wrap → exact; otherwise the value set wraps
  // past m−1 and the tightest single interval is the full range.
  if (rlo <= rhi && rhi - rlo == x.hi() - x.lo()) return Interval(rlo, rhi);
  return Interval(0, m - 1);
}

Interval fwd_lshr(const Interval& x, int k) {
  if (x.is_empty()) return Interval::empty();
  RTLSAT_ASSERT(x.lo() >= 0);
  const V m = pow2(k);
  return Interval(div_floor(x.lo(), m), div_floor(x.hi(), m));
}

Interval fwd_shl(const Interval& x, int k, int width) {
  return fwd_mod(fwd_mul_const(x, pow2(k)), pow2(width));
}

Interval fwd_concat(const Interval& hi_part, const Interval& lo_part,
                    int low_width) {
  const Interval sum = fwd_add(fwd_mul_const(hi_part, pow2(low_width)), lo_part);
  // If the shift-and-add saturated, the lower endpoint may have been pushed
  // *up* onto the rail — an unsound lower bound. Give up on precision and
  // return the whole representable range (callers intersect with the net's
  // domain anyway). Unreachable for in-width circuit operands
  // (hi·2^lw + lo < 2^60); this guards direct API use.
  if (!sum.is_empty() &&
      (endpoint_saturated(sum.lo()) || endpoint_saturated(sum.hi())))
    return Interval(kSatMin, kSatMax);
  return sum;
}

Interval fwd_extract(const Interval& x, int hi_bit, int lo_bit) {
  RTLSAT_ASSERT(hi_bit >= lo_bit && lo_bit >= 0);
  return fwd_mod(fwd_lshr(x, lo_bit), pow2(hi_bit - lo_bit + 1));
}

Interval fwd_min(const Interval& x, const Interval& y) {
  if (x.is_empty() || y.is_empty()) return Interval::empty();
  return Interval(std::min(x.lo(), y.lo()), std::min(x.hi(), y.hi()));
}

Interval fwd_max(const Interval& x, const Interval& y) {
  if (x.is_empty() || y.is_empty()) return Interval::empty();
  return Interval(std::max(x.lo(), y.lo()), std::max(x.hi(), y.hi()));
}

Interval fwd_add_wrap(const Interval& x, const Interval& y, int width) {
  return fwd_mod(fwd_add(x, y), pow2(width));
}

Interval fwd_sub_wrap(const Interval& x, const Interval& y, int width) {
  return fwd_mod(fwd_sub(x, y), pow2(width));
}

Interval fwd_eq(const Interval& x, const Interval& y) {
  if (x.is_empty() || y.is_empty()) return Interval::empty();
  if (!x.intersects(y)) return Interval::point(0);
  if (x.is_point() && x == y) return Interval::point(1);
  return Interval::booleans();
}

Interval fwd_lt(const Interval& x, const Interval& y) {
  if (x.is_empty() || y.is_empty()) return Interval::empty();
  if (x.hi() < y.lo()) return Interval::point(1);
  if (x.lo() >= y.hi()) return Interval::point(0);
  return Interval::booleans();
}

Interval fwd_le(const Interval& x, const Interval& y) {
  if (x.is_empty() || y.is_empty()) return Interval::empty();
  if (x.hi() <= y.lo()) return Interval::point(1);
  if (x.lo() > y.hi()) return Interval::point(0);
  return Interval::booleans();
}

// --------------------------------------------------------------- backward

Interval back_add_x(const Interval& z, const Interval& y) {
  return fwd_sub(z, y);
}

Interval back_sub_x(const Interval& z, const Interval& y) {
  return fwd_add(z, y);
}

Interval back_sub_y(const Interval& z, const Interval& x) {
  return fwd_sub(x, z);
}

Interval back_neg(const Interval& z) { return fwd_neg(z); }

Interval back_mul_const(const Interval& z, V k) {
  RTLSAT_ASSERT(k != 0);
  if (z.is_empty()) return Interval::empty();
  if (k > 0) return Interval(div_ceil(z.lo(), k), div_floor(z.hi(), k));
  // k < 0: k·x ∈ z ⟺ (−k)·(−x) ∈ z ⟺ −x ∈ back_mul_const(z, −k).
  return fwd_neg(back_mul_const(z, -k));
}

Interval back_not(const Interval& z, int width) { return fwd_not(z, width); }

Interval back_lshr(const Interval& z, int k) {
  if (z.is_empty()) return Interval::empty();
  const V m = pow2(k);
  return Interval(sat_mul(z.lo(), m), sat_add(sat_mul(z.hi(), m), m - 1));
}

namespace {
// x ⊇ (base ∪ base±m) ∩ x_cur, as a hull of the candidate branches — the
// standard sound treatment for modular arithmetic over a single interval.
Interval wrap_candidates(const Interval& base, const Interval& x_cur, V m) {
  const Interval c0 = base.intersect(x_cur);
  const Interval c1 = fwd_add(base, Interval::point(m)).intersect(x_cur);
  const Interval c2 = fwd_sub(base, Interval::point(m)).intersect(x_cur);
  return c0.hull(c1).hull(c2);
}
}  // namespace

Interval back_add_wrap_x(const Interval& z, const Interval& y,
                         const Interval& x_cur, int width) {
  // x + y = z or z + 2^w (operands in-width make larger multiples impossible).
  return wrap_candidates(fwd_sub(z, y), x_cur, pow2(width));
}

Interval back_sub_wrap_x(const Interval& z, const Interval& y,
                         const Interval& x_cur, int width) {
  // x − y = z or z − 2^w.
  return wrap_candidates(fwd_add(z, y), x_cur, pow2(width));
}

Interval back_sub_wrap_y(const Interval& z, const Interval& x,
                         const Interval& y_cur, int width) {
  // y = x − z or x − z + 2^w.
  return wrap_candidates(fwd_sub(x, z), y_cur, pow2(width));
}

Interval back_concat_hi(const Interval& z, int low_width) {
  return fwd_lshr(z, low_width);
}

Interval back_concat_lo(const Interval& z, const Interval& hi_cur,
                        const Interval& lo_cur, int low_width) {
  // lo = z − hi·2^lw; exact when hi is a point, else bound by the extremes.
  const Interval shifted = fwd_mul_const(hi_cur, pow2(low_width));
  return fwd_sub(z, shifted).intersect(lo_cur);
}

Interval back_extract(const Interval& z, const Interval& x_cur, int hi_bit,
                      int lo_bit) {
  if (z.is_empty() || x_cur.is_empty()) return Interval::empty();
  const V block = pow2(lo_bit);
  const V span = pow2(hi_bit - lo_bit + 1);
  // window = 2^(hi_bit+1) overflows a raw signed multiply once
  // lo_bit + field_width > 62; saturate instead. A saturated window exceeds
  // every representable x, so the whole axis is one base-0 window and the
  // divisions below still answer 0 — the recomposition just must not
  // multiply or add through the rail unguarded.
  const V window = sat_mul(block, span);
  // Exact inversion when the field is the low end of the word (lo_bit = 0)
  // and x_cur stays inside one aligned window (fixed high bits): then
  // x = base + field, contiguous in the field value.
  if (lo_bit == 0 && div_floor(x_cur.lo(), window) ==
                         div_floor(x_cur.hi(), window)) {
    const V base = sat_mul(div_floor(x_cur.lo(), window), window);
    return Interval(sat_add(base, z.lo()), sat_add(base, z.hi()))
        .intersect(x_cur);
  }
  // General sound bound: x must contain *some* value whose field is in z.
  // If even the loosest containment fails, conflict; else keep x_cur.
  const Interval field = fwd_extract(x_cur, hi_bit, lo_bit);
  if (!field.intersects(z)) return Interval::empty();
  return x_cur;
}

Interval back_min_x(const Interval& z, const Interval& y,
                    const Interval& x_cur) {
  if (z.is_empty()) return Interval::empty();
  // min(x,y) = z ⟹ x ≥ z̲ always; and if y cannot reach down to z̄ then x
  // must itself produce the minimum, so x ≤ z̄.
  Interval x = x_cur.at_least(z.lo());
  if (y.lo() > z.hi()) x = x.at_most(z.hi());
  return x;
}

Interval back_max_x(const Interval& z, const Interval& y,
                    const Interval& x_cur) {
  if (z.is_empty()) return Interval::empty();
  Interval x = x_cur.at_most(z.hi());
  if (y.hi() < z.lo()) x = x.at_least(z.lo());
  return x;
}

// ------------------------------------------------- comparator narrowings

Pair narrow_lt(const Interval& x, const Interval& y) {
  // Eq. (3): x ∈ ⟨x̲, min(x̄, ȳ−1)⟩, y ∈ ⟨max(y̲, x̲+1), ȳ⟩.
  if (x.is_empty() || y.is_empty()) return {Interval::empty(), Interval::empty()};
  return {x.at_most(sat_sub(y.hi(), 1)), y.at_least(sat_add(x.lo(), 1))};
}

Pair narrow_le(const Interval& x, const Interval& y) {
  return {x.at_most(y.hi()), y.at_least(x.lo())};
}

Pair narrow_eq(const Interval& x, const Interval& y) {
  const Interval both = x.intersect(y);
  return {both, both};
}

Pair narrow_ne(const Interval& x, const Interval& y) {
  Interval nx = x, ny = y;
  // Only a point on the other side can trim an interval end.
  if (y.is_point()) nx = nx.minus(y);
  if (x.is_point()) ny = ny.minus(x);
  return {nx, ny};
}

}  // namespace rtlsat::iops
