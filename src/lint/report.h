// Rendering of LintReports: a compiler-style text listing and a JSON
// document (schema documented in docs/lint.md) for tooling/CI consumption.
#pragma once

#include <string>

#include "lint/diagnostic.h"

namespace rtlsat::lint {

// One line per diagnostic:
//   <source>: <severity>[<rule-id>] net n<id> '<name>': <message>
// followed by a "N errors, M warnings" trailer. `source` labels the
// netlist (file path or model name).
std::string to_text(const LintReport& report, const ir::Circuit& circuit,
                    std::string_view source);

// {"source": ..., "errors": N, "warnings": M, "diagnostics": [
//    {"rule": ..., "severity": ..., "net": id|null, "net_name": ...,
//     "message": ...}, ...]}
std::string to_json(const LintReport& report, const ir::Circuit& circuit,
                    std::string_view source);

}  // namespace rtlsat::lint
