#include "lint/lint.h"

#include <algorithm>
#include <unordered_map>

#include "ir/structure_check.h"
#include "presolve/analyze.h"
#include "presolve/findings.h"
#include "util/strings.h"

namespace rtlsat::lint {

using ir::Circuit;
using ir::NetId;
using ir::Node;
using ir::Op;
using ir::SeqCircuit;

std::string_view severity_name(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> catalog = {
      // Structural rules, shared with Circuit::validate().
      {"operand-count", Severity::kError,
       "node has the wrong number of operands for its operator"},
      {"operand-width", Severity::kError,
       "operand widths are inconsistent with the operator and result width"},
      {"boolean-width", Severity::kError,
       "boolean gate or predicate involves a non-1-bit net"},
      {"mux-select", Severity::kError, "mux select net is not 1-bit"},
      {"extract-bounds", Severity::kError,
       "extract bit range lies outside the operand's width"},
      {"imm-range", Severity::kError,
       "constant-operand immediate (mulc factor, shift amount) out of range"},
      {"max-width", Severity::kError,
       "net width outside [1, ir::kMaxWidth]"},
      {"const-range", Severity::kError,
       "constant value does not fit its declared width"},
      {"comb-cycle", Severity::kError,
       "operand does not precede its node — a combinational cycle"},
      {"undriven-net", Severity::kError,
       "operand references a net that no node drives"},
      {"unnamed-input", Severity::kWarning, "primary input has no name"},
      // Lint-only circuit rules.
      {"dead-net", Severity::kWarning,
       "net is read by nothing reachable from a root, register, or property"},
      {"missed-const-fold", Severity::kWarning,
       "node the builder would have constant-folded survived (netlist was "
       "built outside the canonicalizing builder)"},
      // Analyzer-backed rules (presolve/findings.h): interval facts proved
      // to hold for every input assignment.
      {"constant-net", Severity::kWarning,
       "non-source net provably computes a single constant value"},
      {"constant-comparator", Severity::kWarning,
       "comparator's verdict is provable from its operand ranges alone"},
      {"dead-mux-arm", Severity::kWarning,
       "mux select is provably constant, so one arm can never be taken"},
      {"oversized-net", Severity::kInfo,
       "net is wider than its proven value range ever needs"},
      // Sequential rules.
      {"unbound-register", Severity::kError,
       "register has no bound next-state net", /*seq_only=*/true},
      {"register-width", Severity::kError,
       "register state/next-state nets are missing or width-mismatched",
       /*seq_only=*/true},
      {"register-init-range", Severity::kError,
       "register reset value does not fit the register's width",
       /*seq_only=*/true},
      {"property-bool", Severity::kError,
       "safety property net is missing or not 1-bit", /*seq_only=*/true},
      {"constant-register", Severity::kWarning,
       "register's next state is its own output — it can never change",
       /*seq_only=*/true},
      {"duplicate-register", Severity::kWarning,
       "two registers share the same state net", /*seq_only=*/true},
      {"invariant-constant-register", Severity::kWarning,
       "register's reachable values collapse to one constant despite "
       "non-trivial next-state logic", /*seq_only=*/true},
  };
  return catalog;
}

const RuleInfo* find_rule(std::string_view id) {
  for (const RuleInfo& rule : rule_catalog()) {
    if (rule.id == id) return &rule;
  }
  return nullptr;
}

namespace {

// Collects raw findings during a run; ordering and filtering happen once at
// the end so rules can emit in whatever order is natural to compute.
class Collector {
 public:
  explicit Collector(const LintOptions& options) : options_(options) {}

  void emit(std::string_view rule_id, NetId net, std::string message) {
    const RuleInfo* rule = find_rule(rule_id);
    RTLSAT_ASSERT_MSG(rule != nullptr, "lint rule not in catalog");
    if (rule->severity != Severity::kError && !options_.warnings) return;
    for (const std::string& disabled : options_.disabled_rules) {
      if (disabled == rule_id) return;
    }
    diagnostics_.push_back(
        {std::string(rule_id), rule->severity, net, std::move(message)});
  }

  bool has_errors() const {
    for (const Diagnostic& d : diagnostics_) {
      if (d.severity == Severity::kError) return true;
    }
    return false;
  }

  LintReport finish() && {
    std::stable_sort(diagnostics_.begin(), diagnostics_.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                       const auto rank = [](const Diagnostic& d) {
                         const auto& catalog = rule_catalog();
                         for (std::size_t i = 0; i < catalog.size(); ++i) {
                           if (catalog[i].id == d.rule_id) return i;
                         }
                         return catalog.size();
                       };
                       const std::size_t ra = rank(a), rb = rank(b);
                       if (ra != rb) return ra < rb;
                       return a.net < b.net;
                     });
    return LintReport{std::move(diagnostics_)};
  }

 private:
  const LintOptions& options_;
  std::vector<Diagnostic> diagnostics_;
};

// Returns true when any error-severity structural defect was found —
// regardless of whether options filtered it out of the report, because the
// semantic rules below walk operand edges and must not trust a broken
// netlist just because its defects were silenced.
bool run_structural_rules(const Circuit& circuit, Collector& out) {
  bool broken = false;
  ir::check_structure(circuit, [&](const ir::StructuralDefect& defect) {
    const std::string_view id = ir::structure_defect_id(defect.kind);
    const RuleInfo* rule = find_rule(id);
    broken = broken || (rule != nullptr && rule->severity == Severity::kError);
    out.emit(id, defect.net, defect.message);
  });
  return broken;
}

// Reverse reachability from the sink set; anything else is dead. Only safe
// on structurally sound circuits (operand ids must be valid).
void run_dead_net_rule(const Circuit& circuit, const std::vector<NetId>& sinks,
                       Collector& out) {
  if (sinks.empty()) return;
  std::vector<bool> live(circuit.num_nets(), false);
  std::vector<NetId> stack;
  for (const NetId s : sinks) {
    if (s < circuit.num_nets() && !live[s]) {
      live[s] = true;
      stack.push_back(s);
    }
  }
  while (!stack.empty()) {
    const NetId id = stack.back();
    stack.pop_back();
    for (const NetId o : circuit.node(id).operands) {
      if (!live[o]) {
        live[o] = true;
        stack.push_back(o);
      }
    }
  }
  for (NetId id = 0; id < circuit.num_nets(); ++id) {
    if (live[id]) continue;
    const Node& node = circuit.node(id);
    // Interned constants are shared artifacts of builder folds; an unused
    // one carries no signal.
    if (node.op == Op::kConst) continue;
    out.emit("dead-net", id,
             str_format("%s '%s' drives nothing reachable from a sink",
                        node.op == Op::kInput ? "input" : "net",
                        circuit.net_name(id).c_str()));
  }
}

// Flags nodes the canonicalizing builder is guaranteed to have folded away:
// their presence means the netlist bypassed the builder (deserializer bug,
// hand assembly) and downstream passes will see non-canonical structure.
void run_const_fold_rule(const Circuit& circuit, Collector& out) {
  for (NetId id = 0; id < circuit.num_nets(); ++id) {
    const Node& node = circuit.node(id);
    const auto is_const = [&](std::size_t i) {
      return circuit.node(node.operands[i]).op == Op::kConst;
    };
    const char* why = nullptr;
    switch (node.op) {
      case Op::kAnd:
      case Op::kOr:
        for (const NetId o : node.operands) {
          if (circuit.node(o).op == Op::kConst) why = "constant gate operand";
        }
        break;
      case Op::kNot:
        if (is_const(0)) why = "constant operand";
        if (circuit.node(node.operands[0]).op == Op::kNot)
          why = "double negation";
        break;
      case Op::kXor:
        if (is_const(0) || is_const(1)) why = "constant operand";
        if (node.operands[0] == node.operands[1]) why = "x xor x";
        break;
      case Op::kMux:
        if (is_const(0)) why = "constant select";
        if (node.operands[1] == node.operands[2]) why = "identical branches";
        break;
      case Op::kAdd:
        if (is_const(0) && is_const(1)) why = "constant operands";
        for (int i = 0; i < 2; ++i) {
          if (is_const(i) && circuit.node(node.operands[i]).imm == 0)
            why = "addition of zero";
        }
        break;
      case Op::kSub:
        if (is_const(0) && is_const(1)) why = "constant operands";
        if (is_const(1) && circuit.node(node.operands[1]).imm == 0)
          why = "subtraction of zero";
        if (node.operands[0] == node.operands[1]) why = "x - x";
        break;
      case Op::kMulC:
        if (node.imm == 0 || node.imm == 1) why = "multiply by 0 or 1";
        break;
      case Op::kShlC:
      case Op::kShrC:
        if (node.imm == 0) why = "shift by zero";
        break;
      case Op::kExtract:
        if (node.operands.size() == 1 && node.imm2 == 0 &&
            node.imm == circuit.node(node.operands[0]).width - 1)
          why = "full-width extract";
        break;
      case Op::kZext:
        if (node.operands.size() == 1 &&
            node.width == circuit.node(node.operands[0]).width)
          why = "zero-extension to the same width";
        break;
      case Op::kEq:
      case Op::kNe:
      case Op::kLt:
      case Op::kLe:
        if (is_const(0) && is_const(1)) why = "constant comparison";
        if (node.operands[0] == node.operands[1])
          why = "comparison of a net with itself";
        break;
      case Op::kMin:
      case Op::kMax:
        if (node.operands[0] == node.operands[1]) why = "min/max of one net";
        break;
      default:
        break;
    }
    if (why != nullptr) {
      out.emit("missed-const-fold", id,
               str_format("%s node should have been folded (%s)",
                          std::string(ir::op_name(node.op)).c_str(), why));
    }
  }
}

// Re-emits the interval analyzer's structured findings as lint
// diagnostics; the finding kind names double as the rule ids.
void run_presolve_rules(const Circuit& circuit, Collector& out) {
  const presolve::FactTable facts = presolve::analyze(circuit);
  if (facts.conflict) return;  // over-narrowing bug; nothing to report on
  for (const presolve::Finding& f : presolve::findings(circuit, facts)) {
    out.emit(presolve::kind_name(f.kind), f.net, f.message);
  }
}

// A register whose reach invariant is a single point never leaves its
// reset value even though its next-state cone looks like real logic (the
// d == q case is the plain constant-register rule's).
void run_reach_invariant_rule(const SeqCircuit& seq, Collector& out) {
  const std::vector<Interval> invariants = presolve::reach_invariants(seq);
  for (std::size_t i = 0; i < seq.registers().size(); ++i) {
    const ir::Register& r = seq.registers()[i];
    if (r.d == ir::kNoNet || r.d == r.q) continue;
    if (!invariants[i].is_point()) continue;
    out.emit("invariant-constant-register", r.q,
             str_format("register '%s' provably holds %lld in every "
                        "reachable state",
                        r.name.empty() ? "<unnamed>" : r.name.c_str(),
                        static_cast<long long>(invariants[i].lo())));
  }
}

void run_seq_rules(const SeqCircuit& seq, Collector& out) {
  const Circuit& comb = seq.comb();
  std::unordered_map<NetId, std::size_t> q_seen;
  for (std::size_t i = 0; i < seq.registers().size(); ++i) {
    const ir::Register& r = seq.registers()[i];
    const char* label = r.name.empty() ? "<unnamed>" : r.name.c_str();
    const bool q_ok = r.q != ir::kNoNet && r.q < comb.num_nets();
    if (!q_ok || comb.node(r.q).op != Op::kInput) {
      out.emit("register-width", q_ok ? r.q : ir::kNoNet,
               str_format("register '%s': state net is not a primary input "
                          "of the combinational core",
                          label));
    }
    if (r.d == ir::kNoNet) {
      out.emit("unbound-register", r.q,
               str_format("register '%s' has no next-state binding", label));
    } else if (r.d >= comb.num_nets()) {
      out.emit("register-width", r.q,
               str_format("register '%s': next-state net n%u does not exist",
                          label, r.d));
    } else if (q_ok && comb.width(r.d) != comb.width(r.q)) {
      out.emit("register-width", r.q,
               str_format("register '%s': next-state width %d does not match "
                          "state width %d",
                          label, comb.width(r.d), comb.width(r.q)));
    } else if (q_ok && r.d == r.q) {
      out.emit("constant-register", r.q,
               str_format("register '%s' feeds back its own output and "
                          "stays at %lld forever",
                          label, static_cast<long long>(r.init)));
    }
    if (q_ok && !Interval::full_width(comb.width(r.q)).contains(r.init)) {
      out.emit("register-init-range", r.q,
               str_format("register '%s': reset value %lld does not fit %d "
                          "bit%s",
                          label, static_cast<long long>(r.init),
                          comb.width(r.q), comb.width(r.q) == 1 ? "" : "s"));
    }
    if (q_ok) {
      const auto [it, inserted] = q_seen.emplace(r.q, i);
      if (!inserted) {
        out.emit("duplicate-register", r.q,
                 str_format("register '%s' shares state net n%u with "
                            "register '%s'",
                            label, r.q,
                            seq.registers()[it->second].name.c_str()));
      }
    }
  }
  for (const ir::Property& p : seq.properties()) {
    const char* label = p.name.empty() ? "<unnamed>" : p.name.c_str();
    if (p.net == ir::kNoNet || p.net >= comb.num_nets()) {
      out.emit("property-bool", ir::kNoNet,
               str_format("property '%s' references no net", label));
    } else if (comb.width(p.net) != 1) {
      out.emit("property-bool", p.net,
               str_format("property '%s' is %d bits wide, expected 1", label,
                          comb.width(p.net)));
    }
  }
}

LintReport run(const Circuit& circuit, const SeqCircuit* seq,
               const LintOptions& options) {
  Collector out(options);
  const bool broken = run_structural_rules(circuit, out);
  if (seq != nullptr) run_seq_rules(*seq, out);
  // Semantic rules walk operand edges and assume a sound structure; on a
  // structurally broken netlist they would chase dangling ids.
  if (!broken) {
    std::vector<NetId> sinks = options.roots;
    if (seq != nullptr) {
      for (const ir::Register& r : seq->registers()) {
        if (r.d != ir::kNoNet) sinks.push_back(r.d);
      }
      for (const ir::Property& p : seq->properties()) {
        if (p.net != ir::kNoNet) sinks.push_back(p.net);
      }
    }
    run_dead_net_rule(circuit, sinks, out);
    run_const_fold_rule(circuit, out);
    run_presolve_rules(circuit, out);
    // The reach walk follows register bindings, so it additionally needs
    // the sequential error rules to have stayed silent.
    if (seq != nullptr && !out.has_errors()) run_reach_invariant_rule(*seq, out);
  }
  return std::move(out).finish();
}

}  // namespace

LintReport lint_circuit(const Circuit& circuit, const LintOptions& options) {
  return run(circuit, nullptr, options);
}

LintReport lint_seq_circuit(const SeqCircuit& seq, const LintOptions& options) {
  return run(seq.comb(), &seq, options);
}

}  // namespace rtlsat::lint
