// Netlist static analysis: a rule registry over ir::Circuit and
// ir::SeqCircuit.
//
// Structural rules (operand counts/widths, extract bounds, width caps,
// DAG-ness, …) share their implementation with Circuit::validate() via
// ir::check_structure — one source of truth for well-formedness, two
// consumers: validate() aborts, lint diagnoses. On top of those, lint-only
// rules catch netlists that are well-formed but wrong-looking: dead nets,
// missed constant folds, unbound or constant registers, non-Boolean
// properties.
//
// Reporters for the resulting LintReport live in lint/report.h; the
// command-line front-end is examples/rtlsat_lint.cpp.
#pragma once

#include <string>
#include <vector>

#include "ir/seq.h"
#include "lint/diagnostic.h"

namespace rtlsat::lint {

struct LintOptions {
  // Sink nets for the reachability-based dead-net rule on plain circuits
  // (e.g. the BMC goal). Without roots a plain Circuit has no notion of
  // outputs and dead-net is skipped; SeqCircuit lints add every register
  // next-state net and property net automatically.
  std::vector<ir::NetId> roots;
  // Emit warning-severity diagnostics (errors are always emitted).
  bool warnings = true;
  // Rule ids to skip.
  std::vector<std::string> disabled_rules;
};

struct RuleInfo {
  std::string_view id;
  Severity severity = Severity::kError;
  std::string_view description;
  bool seq_only = false;  // fires only when linting a SeqCircuit
};

// The full rule catalog, in documentation order (docs/lint.md mirrors it).
const std::vector<RuleInfo>& rule_catalog();
// nullptr when no rule carries `id`.
const RuleInfo* find_rule(std::string_view id);

// Lints a combinational netlist / a sequential design. Diagnostics arrive
// in rule-catalog order, then net order within a rule.
LintReport lint_circuit(const ir::Circuit& circuit,
                        const LintOptions& options = {});
LintReport lint_seq_circuit(const ir::SeqCircuit& seq,
                            const LintOptions& options = {});

}  // namespace rtlsat::lint
