#include "lint/report.h"

#include <cstdio>
#include <sstream>

namespace rtlsat::lint {

namespace {

void append_json_string(std::ostringstream& os, std::string_view s) {
  os << '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          os << buf;
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string to_text(const LintReport& report, const ir::Circuit& circuit,
                    std::string_view source) {
  std::ostringstream os;
  for (const Diagnostic& d : report.diagnostics) {
    os << source << ": " << severity_name(d.severity) << '[' << d.rule_id
       << ']';
    if (d.net != ir::kNoNet && d.net < circuit.num_nets()) {
      os << " net n" << d.net << " '" << circuit.net_name(d.net) << '\'';
    }
    os << ": " << d.message << '\n';
  }
  os << source << ": " << report.error_count() << " error"
     << (report.error_count() == 1 ? "" : "s") << ", "
     << report.warning_count() << " warning"
     << (report.warning_count() == 1 ? "" : "s") << '\n';
  return os.str();
}

std::string to_json(const LintReport& report, const ir::Circuit& circuit,
                    std::string_view source) {
  std::ostringstream os;
  os << "{\"source\": ";
  append_json_string(os, source);
  os << ", \"errors\": " << report.error_count()
     << ", \"warnings\": " << report.warning_count()
     << ", \"diagnostics\": [";
  bool first = true;
  for (const Diagnostic& d : report.diagnostics) {
    if (!first) os << ", ";
    first = false;
    os << "{\"rule\": ";
    append_json_string(os, d.rule_id);
    os << ", \"severity\": ";
    append_json_string(os, severity_name(d.severity));
    if (d.net != ir::kNoNet && d.net < circuit.num_nets()) {
      os << ", \"net\": " << d.net << ", \"net_name\": ";
      append_json_string(os, circuit.net_name(d.net));
    } else {
      os << ", \"net\": null, \"net_name\": null";
    }
    os << ", \"message\": ";
    append_json_string(os, d.message);
    os << '}';
  }
  os << "]}\n";
  return os.str();
}

}  // namespace rtlsat::lint
