// Structured lint findings.
//
// Every rule in the registry (lint.h) emits Diagnostic records; a
// LintReport is the ordered batch produced by one run over one netlist.
// Severities follow the usual compiler convention: errors mean the netlist
// violates a contract some consumer relies on (solving it risks a silent
// wrong answer), warnings mean the netlist is suspicious but well-formed,
// infos are observations.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ir/circuit.h"

namespace rtlsat::lint {

enum class Severity { kInfo, kWarning, kError };

std::string_view severity_name(Severity severity);  // "info"/"warning"/"error"

struct Diagnostic {
  std::string rule_id;
  Severity severity = Severity::kError;
  // The offending net; ir::kNoNet for netlist-level findings (e.g. a
  // register whose next-state was never bound has no net to point at).
  ir::NetId net = ir::kNoNet;
  std::string message;
};

struct LintReport {
  std::vector<Diagnostic> diagnostics;

  std::size_t count(Severity severity) const {
    std::size_t n = 0;
    for (const Diagnostic& d : diagnostics) n += d.severity == severity;
    return n;
  }
  std::size_t error_count() const { return count(Severity::kError); }
  std::size_t warning_count() const { return count(Severity::kWarning); }
  bool has_errors() const {
    for (const Diagnostic& d : diagnostics) {
      if (d.severity == Severity::kError) return true;
    }
    return false;
  }
  // All diagnostics emitted by one rule (unit tests key off this).
  std::vector<Diagnostic> by_rule(std::string_view rule_id) const {
    std::vector<Diagnostic> out;
    for (const Diagnostic& d : diagnostics) {
      if (d.rule_id == rule_id) out.push_back(d);
    }
    return out;
  }
};

}  // namespace rtlsat::lint
