// The hybrid DPLL solver (paper Algorithm 1) with the DAC'05 additions:
// structural decision-making (Algorithm 2, option structural_decisions) and
// predicate-based static learning (§3, option predicate_learning).
//
// Search skeleton:
//   while Decide() has work:
//     Ddeduce() — hybrid Boolean/interval propagation + clause propagation
//     on conflict: analyze the hybrid implication graph, learn, backtrack
//   when every Boolean variable is assigned and the box is bounds
//   consistent: certify a point solution with Fourier–Motzkin, or learn
//   from its refutation.
//
// The three solver configurations of the paper's Table 2 map to options:
//   HDPLL      — defaults
//   HDPLL+S    — structural_decisions = true
//   HDPLL+S+P  — structural_decisions = predicate_learning = true
// and the structure-blind "naive CDP" stand-in used in the benches is
// conflict_learning = false (chronological DPLL).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/analyze.h"
#include "core/arith_check.h"
#include "core/clause_db.h"
#include "core/clause_exchange.h"
#include "core/decision.h"
#include "core/justify.h"
#include "core/predicate_learning.h"
#include "core/proof_log.h"
#include "prop/engine.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/stop_token.h"
#include "util/timer.h"

namespace rtlsat::trace {
class Tracer;
class ProgressReporter;
}  // namespace rtlsat::trace

namespace rtlsat::metrics {
struct SolverGauges;
}  // namespace rtlsat::metrics

namespace rtlsat::core {

struct HdpllOptions {
  bool structural_decisions = false;  // +S (paper §4)
  bool predicate_learning = false;    // +P (paper §3)
  PredicateLearningOptions learning;

  // Conflict-based learning over the combined decision procedure ([9]).
  // Off ⟹ plain chronological DPLL — the structure-blind baseline.
  bool conflict_learning = true;
  AnalyzeOptions analyze;

  double timeout_seconds = 0;  // 0 = no limit (paper used 1200 s)
  // Cooperative cancellation (portfolio racing, external budgets). The
  // token is merged with timeout_seconds into one deadline-carrying token
  // when solve() starts, and that merged token is polled at decision
  // boundaries, inside interval propagation, inside FME, and before every
  // predicate-learning probe — so a fired token (or an expired deadline)
  // stops the solver within milliseconds even on propagation-heavy
  // instances where the old between-conflicts poll lagged. Default-
  // constructed = never fires.
  StopToken stop;
  // Portfolio clause sharing: when set, learned conflict clauses and
  // predicate relations (length-capped by the exchange) are offered after
  // each learning step, and peers' clauses are imported at restart
  // boundaries. Borrowed; must outlive the solver. Null = no sharing.
  ClauseExchange* exchange = nullptr;
  double activity_decay = 0.95;
  double learned_weight_bonus = 4.0;  // activity seed per clause occurrence
  bool random_decisions = false;      // ablation: ignore activities
  std::uint64_t random_seed = 1;

  // Learnt-clause database management (an engineering extension over the
  // paper, which keeps every learned clause): periodically drop the least
  // recently useful long clauses.
  bool clause_reduction = true;
  std::size_t reduction_base = 4000;   // learnt clauses before first sweep
  double reduction_grow = 1.3;
  double clause_activity_decay = 0.999;
  // Luby restarts in units of conflicts; 0 disables. On by default as an
  // engineering extension (the paper does not mention restarts): with
  // phase saving they flatten the heavy-tailed runtimes on the larger BMC
  // instances. Ignored in chronological mode.
  int restart_interval = 128;

  // Evaluate the circuit on every SAT model and assert the assumptions
  // hold — cheap insurance that a bug can never report a false SAT.
  bool verify_models = true;

  // Run the invariant verifier (core/selfcheck.h) during search: asserting-
  // clause checks on every learned clause, full trail/implication-graph and
  // clause-database audits every `self_check_interval` conflicts and at
  // every SAT answer (including interval soundness against the model).
  // Defaults on in -DRTLSAT_SELFCHECK=ON builds; any violation aborts.
  bool self_check = kSelfCheckBuild;
  int self_check_interval = 64;

  // Observability (src/trace). `tracer` records structured search events
  // (decisions, conflicts, learned clauses, arith checks, phases …); null
  // ⟹ trace::global(), which stays disabled unless RTLSAT_TRACE is set, so
  // the default cost is one predicted branch per event. `progress` gets a
  // tick() per conflict for rate-limited MiniSat-style reporting; null ⟹
  // no reporting. Both are borrowed and must outlive the solver.
  trace::Tracer* tracer = nullptr;
  trace::ProgressReporter* progress = nullptr;

  // Live telemetry (src/metrics): when set, the solver publishes its
  // counters, clause-DB/implication-graph/interval-store bytes, phase, and
  // per-learned-clause LBD into these registry handles at conflict
  // boundaries (relaxed atomic stores — a background Sampler turns them
  // into a JSONL time series). Borrowed; must outlive the solver. Null
  // (the default) costs one predicted branch per conflict
  // (bench/micro_metrics.cpp guards this).
  metrics::SolverGauges* gauges = nullptr;

  // Proof logging: when set, every derivation — level-0 narrowings,
  // learned clauses with their implication-graph cut, predicate-learning
  // probes, FME refutations, portfolio imports, reductions — is appended
  // to this writer as a word-level certificate (docs/proofs.md), checkable
  // by the independent rtlsat_check binary. Borrowed; must outlive the
  // solver. Null (the default) costs one predicted branch per hook.
  // Certification requires conflict learning: in chronological mode
  // (conflict_learning = false) the writer is ignored.
  proof::WordCertWriter* proof = nullptr;
};

// kTimeout: the solver's own deadline expired. kCancelled: an external
// StopToken fired (portfolio loser, user interrupt) — no verdict either
// way, but the distinction matters for reporting and for the portfolio's
// cancellation-latency accounting.
enum class SolveStatus { kSat, kUnsat, kTimeout, kCancelled };

struct SolveResult {
  SolveStatus status = SolveStatus::kTimeout;
  // On kSat: a satisfying value for every primary input.
  std::unordered_map<ir::NetId, std::int64_t> input_model;
  PredicateLearningReport learning;
  double seconds = 0;
};

class HdpllSolver {
 public:
  explicit HdpllSolver(const ir::Circuit& circuit, HdpllOptions options = {});

  // Instance constraints, applied at level 0 when solve() starts. The
  // proposition under test is an assumption (e.g. goal net = 1). These are
  // *persistent*: once applied they hold for every later call, and level-0
  // facts deduced from them are never undone. Callable between solve()
  // calls to strengthen the instance.
  void assume(ir::NetId net, const Interval& interval);
  void assume_bool(ir::NetId net, bool value) {
    assume(net, Interval::point(value ? 1 : 0));
  }

  SolveResult solve();
  // Incremental interface: solve under per-call (net, interval)
  // assumptions layered *above* the persistent assume() constraints. Each
  // assumption occupies one trail level (1..m, a dummy level when already
  // entailed), strictly below every real decision, and is retracted when
  // the call returns — while learned hybrid clauses, predicate relations,
  // activities, saved phases, and the level-0 interval store all persist.
  // Retraction is sound because anything learned while an assumption was
  // live carries that assumption's negation as a literal: conflict
  // analysis emits assumption events below the conflict level as literals,
  // FME decision cuts explicitly include the assumption levels, and
  // conflicts *at* an assumption level learn nothing at all (the call just
  // reports kUnsat). A kUnsat answer therefore only condemns the
  // assumption set unless root_unsat() also flipped; the solver stays
  // reusable either way. Word-certificate proof logging is incompatible
  // with retractable assumptions and is disarmed for calls that pass any
  // (a multi-call certificate would cite underivable prior-call clauses).
  SolveResult solve(
      const std::vector<std::pair<ir::NetId, Interval>>& assumptions);

  // True once the instance itself (circuit + persistent assumptions) was
  // refuted at level 0; every later solve() answers kUnsat immediately.
  bool root_unsat() const { return root_unsat_; }

  // Re-arm the budget between solve() calls: the next call derives its
  // effective token from these (0 seconds = no deadline, default token =
  // never cancelled). Lets one incremental solver serve a sequence of
  // differently-budgeted queries (the serve layer's warm BMC sessions).
  void set_budget(double timeout_seconds, StopToken stop = {}) {
    options_.timeout_seconds = timeout_seconds;
    options_.stop = stop;
  }

  // Adopts nets appended to the circuit since construction (the circuit
  // reference handed to the constructor must still be alive and must only
  // have grown). Extends the engine/clause-db/heap tables, seeds the new
  // Boolean nets' decision activities, and rebuilds the structural
  // justifier. The level-0 trail and all learned clauses survive — they
  // remain valid because the circuit is append-only. The incremental BMC
  // unroller calls this once per new time-frame.
  void sync_circuit();

  // Portfolio cross-check: replays `input_model` (a winner's SAT model)
  // against this solver's circuit view at level 0 — evaluate the circuit on
  // the model, then run the selfcheck interval-soundness audit so a loser
  // whose level-0 intervals exclude the winner's model is caught. Returns
  // human-readable violation strings (empty = consistent). Backtracks this
  // solver to level 0 as a side effect; only call once its race is over.
  std::vector<std::string> crosscheck_model(
      const std::unordered_map<ir::NetId, std::int64_t>& input_model);

  const Stats& stats() const { return stats_; }
  const ClauseDb& clauses() const { return db_; }
  const prop::Engine& engine() const { return engine_; }
  const ir::Circuit& circuit() const { return circuit_; }

 private:
  struct Decision {
    ir::NetId net = ir::kNoNet;
    bool value = false;
  };

  bool apply_assumptions();
  SolveResult solve_impl();
  // Number of per-call assumption levels in the current call (m): trail
  // levels 1..m are assumption levels, real decisions live above.
  std::uint32_t assumption_levels() const {
    return static_cast<std::uint32_t>(call_assumptions_.size());
  }
  // The no-verdict status for a fired stop token: kCancelled for an
  // external request, kTimeout when (only) the deadline expired.
  SolveStatus stopped_status() const;
  // Clause sharing (no-ops without options_.exchange): export the database
  // clauses in [first, db_.size()) / import peers' clauses at a restart
  // boundary (engine at level 0).
  void export_clauses(std::size_t first);
  void import_shared_clauses();
  // Per-conflict progress hook; `final` forces the closing report.
  void progress_tick(bool final);
  // Publishes the live counters into options_.gauges (no-op when null).
  void publish_metrics();
  // LBD (literal block distance) of a freshly learned clause: the number
  // of distinct decision levels among its literals, read off the trail
  // before the backtrack invalidates it. Only computed when gauges are
  // attached; recorded only into the registry histogram so bench output
  // stays byte-identical with and without sampling.
  void record_lbd(const HybridClause& clause);
  // Returns the next decision, or nullopt when every Boolean net is
  // assigned (Decide() == done).
  std::optional<Decision> pick_decision();
  bool pick_phase(ir::NetId net);
  // Handles a recorded conflict: learn + backjump (or chronological flip).
  // Returns false when the instance is UNSAT.
  bool handle_conflict();
  void backtrack_to(std::uint32_t level);
  void on_clause_learned(const HybridClause& clause);
  SolveResult finish_sat(const ArithCheckResult& arith, const Timer& timer);

  const ir::Circuit& circuit_;
  HdpllOptions options_;
  prop::Engine engine_;
  ClauseDb db_;
  std::size_t clause_cursor_ = 0;
  ActivityHeap heap_;
  std::unique_ptr<Justifier> justifier_;
  fme::Solver fme_;
  // The effective stop token: options_.stop merged with timeout_seconds
  // when solve() starts. Installed into the engine and FME at
  // construction so sub-components poll the same token.
  StopToken stop_;
  Rng rng_;
  std::vector<std::pair<ir::NetId, Interval>> assumptions_;
  // The current call's retractable assumptions (level i+1 holds entry i).
  std::vector<std::pair<ir::NetId, Interval>> call_assumptions_;
  std::vector<bool> phase_;
  // Per-level bookkeeping: the decision taken at each level and whether
  // its complement was already explored (chronological mode), or — for
  // per-call assumption levels — the asserted interval, so FME decision
  // cuts can negate the assumption into the learned clause. A dummy
  // assumption level (already-entailed assumption) has has_event = false
  // and contributes nothing to a cut.
  struct LevelInfo {
    ir::NetId net = ir::kNoNet;
    bool value = false;
    bool flipped = false;
    bool is_assumption = false;
    bool has_event = false;
    Interval interval{};
  };
  std::vector<LevelInfo> decision_stack_;
  // Set by a level-0 refutation: the instance itself is UNSAT, not merely
  // the current assumption set.
  bool root_unsat_ = false;
  // False while the previous call exited on a fired stop token: the
  // engine's propagation queue was discarded mid-flight, so the next call
  // re-seeds it with every node before trusting bounds consistency.
  bool clean_exit_ = true;
  // Predicate learning (§3) runs once, on the first solve() call — its
  // relations are consequences of the formula alone and persist. The
  // report is replayed into every later call's result.
  bool predicates_learned_ = false;
  PredicateLearningReport learning_report_;
  // One certificate stream per solver: set once a proof has been emitted
  // (or once a call passed retractable assumptions) — later calls would
  // cite clauses the certificate cannot re-derive, so they are not logged.
  bool proof_disarmed_ = false;
  std::unique_ptr<WordProofLogger> proof_log_;  // null unless options_.proof
  double activity_bump_ = 1.0;
  std::size_t reduction_budget_ = 0;
  std::int64_t selfcheck_countdown_ = 0;
  std::int64_t conflicts_until_restart_ = 0;
  std::int64_t restart_count_ = 0;
  Stats stats_;
  // Hot-path counters and histograms, resolved once against stats_ (which
  // must be declared above them — initialization order) so the search loop
  // never pays a map lookup per event. Cold counters (restarts, reductions,
  // self-checks) still go through stats_.add().
  std::int64_t& n_decisions_;
  std::int64_t& n_conflicts_;
  std::int64_t& n_learned_clauses_;
  std::int64_t& n_learned_literals_;
  std::int64_t& n_structural_decisions_;
  std::int64_t& n_justify_scanned_;
  std::int64_t& n_arith_checks_;
  std::int64_t& n_arith_conflicts_;
  std::int64_t& n_clauses_exported_;
  std::int64_t& n_clauses_imported_;
  Histogram& h_learned_len_;
  Histogram& h_backjump_;
  Histogram& h_resolutions_;
  Histogram& h_interval_width_;
  trace::Tracer* tracer_;              // never null after construction
  trace::ProgressReporter* progress_;  // may be null
  metrics::SolverGauges* gauges_;      // may be null
  std::vector<std::uint32_t> lbd_scratch_;
};

}  // namespace rtlsat::core
