// End-game arithmetic check (paper §2.4): once constraint propagation is
// bounds-consistent and every Boolean variable is assigned, the remaining
// data-path operators are all linear relations over the solution box P.
// This module extracts those relations as an fme::System and asks the
// Fourier–Motzkin solver for an integer point.
//
// Only nodes with at least one non-point incident net are extracted:
// fully-point nodes were already checked exactly by propagation.
#pragma once

#include <unordered_map>

#include "fme/fme.h"
#include "prop/engine.h"

namespace rtlsat::core {

// Proof-logging side channel: the extracted system plus the metadata a
// certificate needs to re-derive it — which solver net each FME variable
// stands for (auxiliaries carry the node that introduced them instead) and
// which node's encoding produced each constraint row. Filled only on an
// UNSAT verdict.
struct ArithCertCapture {
  fme::System system;
  struct VarInfo {
    bool is_net = false;
    std::uint32_t id = 0;  // net id, or the owning node for an auxiliary
  };
  std::vector<VarInfo> vars;           // parallel to system variables
  std::vector<std::uint32_t> row_node; // parallel to system constraints
};

struct ArithCheckResult {
  bool sat = false;
  // The FME solver's stop token fired mid-check: `sat == false` then means
  // "abandoned", not "refuted". Callers must bail out (timeout/cancel)
  // instead of learning a conflict from it.
  bool stopped = false;
  // On sat: a concrete value for every net (points taken from the engine,
  // the rest from the FME model / interval minima).
  std::vector<std::int64_t> values;
};

// Precondition: engine not in conflict and all 1-bit nets assigned.
// `capture` (optional) receives the extracted system on an UNSAT verdict.
ArithCheckResult arith_check(const prop::Engine& engine, fme::Solver& solver,
                             ArithCertCapture* capture = nullptr);

}  // namespace rtlsat::core
