// End-game arithmetic check (paper §2.4): once constraint propagation is
// bounds-consistent and every Boolean variable is assigned, the remaining
// data-path operators are all linear relations over the solution box P.
// This module extracts those relations as an fme::System and asks the
// Fourier–Motzkin solver for an integer point.
//
// Only nodes with at least one non-point incident net are extracted:
// fully-point nodes were already checked exactly by propagation.
#pragma once

#include <unordered_map>

#include "fme/fme.h"
#include "prop/engine.h"

namespace rtlsat::core {

struct ArithCheckResult {
  bool sat = false;
  // The FME solver's stop token fired mid-check: `sat == false` then means
  // "abandoned", not "refuted". Callers must bail out (timeout/cancel)
  // instead of learning a conflict from it.
  bool stopped = false;
  // On sat: a concrete value for every net (points taken from the engine,
  // the rest from the FME model / interval minima).
  std::vector<std::int64_t> values;
};

// Precondition: engine not in conflict and all 1-bit nets assigned.
ArithCheckResult arith_check(const prop::Engine& engine, fme::Solver& solver);

}  // namespace rtlsat::core
