#include "core/selfcheck.h"

#include <cstdio>
#include <cstdlib>

#include "util/strings.h"

namespace rtlsat::core::selfcheck {

using ir::NetId;

namespace {

// The domain a net holds before any trail event touches it.
Interval initial_domain(const ir::Circuit& circuit, NetId net) {
  const ir::Node& node = circuit.node(net);
  return node.op == ir::Op::kConst ? Interval::point(node.imm)
                                   : circuit.domain(net);
}

}  // namespace

std::vector<std::string> check_engine(const prop::Engine& engine) {
  std::vector<std::string> violations;
  const auto bad = [&](std::string message) {
    violations.push_back(std::move(message));
  };
  const ir::Circuit& circuit = engine.circuit();
  const auto& trail = engine.trail();

  std::vector<std::int32_t> last_on_net(circuit.num_nets(), -1);
  std::uint32_t prev_level = 0;
  for (std::size_t i = 0; i < trail.size(); ++i) {
    const prop::Event& ev = trail[i];
    if (ev.net >= circuit.num_nets()) {
      bad(str_format("event %zu references net n%u past the circuit", i,
                     ev.net));
      continue;
    }
    if (ev.cur.is_empty())
      bad(str_format("event %zu on n%u has an empty interval", i, ev.net));
    if (!ev.prev.contains(ev.cur) || ev.cur == ev.prev) {
      bad(str_format("event %zu on n%u is not a strict narrowing: %s -> %s",
                     i, ev.net, ev.prev.to_string().c_str(),
                     ev.cur.to_string().c_str()));
    }
    if (ev.level < prev_level) {
      bad(str_format("event %zu at level %u follows level %u — trail levels "
                     "must be nondecreasing",
                     i, ev.level, prev_level));
    }
    prev_level = ev.level;
    if (ev.level > engine.level()) {
      bad(str_format("event %zu at level %u exceeds the engine level %u", i,
                     ev.level, engine.level()));
    }
    for (const std::int32_t a : ev.antecedents) {
      if (a < 0 || static_cast<std::size_t>(a) >= i) {
        bad(str_format("event %zu has antecedent %d that does not strictly "
                       "precede it — the implication graph has a cycle",
                       i, a));
      }
    }
    if (ev.kind == prop::ReasonKind::kNode &&
        ev.reason_id >= circuit.num_nets()) {
      bad(str_format("event %zu blames node n%u past the circuit", i,
                     ev.reason_id));
    }
    if (ev.prev_on_net != last_on_net[ev.net]) {
      bad(str_format("event %zu on n%u chains to event %d, but the previous "
                     "event on that net is %d",
                     i, ev.net, ev.prev_on_net, last_on_net[ev.net]));
    } else if (ev.prev_on_net >= 0) {
      if (trail[ev.prev_on_net].cur != ev.prev) {
        bad(str_format("event %zu on n%u starts from %s but its predecessor "
                       "left %s",
                       i, ev.net, ev.prev.to_string().c_str(),
                       trail[ev.prev_on_net].cur.to_string().c_str()));
      }
    } else if (ev.prev != initial_domain(circuit, ev.net)) {
      bad(str_format("first event on n%u starts from %s, not the initial "
                     "domain %s",
                     ev.net, ev.prev.to_string().c_str(),
                     initial_domain(circuit, ev.net).to_string().c_str()));
    }
    last_on_net[ev.net] = static_cast<std::int32_t>(i);
  }

  for (NetId net = 0; net < circuit.num_nets(); ++net) {
    if (engine.latest_event(net) != last_on_net[net]) {
      bad(str_format("latest_event(n%u) is %d, trail says %d", net,
                     engine.latest_event(net), last_on_net[net]));
      continue;
    }
    const Interval expected =
        last_on_net[net] >= 0 ? trail[last_on_net[net]].cur
                              : initial_domain(circuit, net);
    if (engine.interval(net) != expected) {
      bad(str_format("domain of n%u is %s, trail implies %s", net,
                     engine.interval(net).to_string().c_str(),
                     expected.to_string().c_str()));
    }
  }

  if (engine.in_conflict()) {
    for (const std::int32_t a : engine.conflict().antecedents) {
      if (a < 0 || static_cast<std::size_t>(a) >= trail.size())
        bad(str_format("conflict antecedent %d is not on the trail", a));
    }
  }
  return violations;
}

std::vector<std::string> check_clause_db(const ClauseDb& db,
                                         const prop::Engine& engine) {
  std::vector<std::string> violations;
  const auto bad = [&](std::string message) {
    violations.push_back(std::move(message));
  };
  const std::size_t num_nets = engine.circuit().num_nets();

  std::vector<int> expected_weight(num_nets, 0);
  std::vector<std::array<int, 2>> expected_lit_weight(num_nets, {0, 0});
  std::size_t expected_learnt = 0;

  for (std::uint32_t id = 0; id < db.size(); ++id) {
    const HybridClause& c = db.clause(id);
    if (c.deleted) continue;
    if (c.lits.empty()) {
      bad(str_format("live clause %u has no literals", id));
      continue;
    }
    if (c.learnt) ++expected_learnt;
    for (const HybridLit& l : c.lits) {
      if (l.net >= num_nets) {
        bad(str_format("clause %u literal references net n%u past the "
                       "circuit",
                       id, l.net));
        continue;
      }
      ++expected_weight[l.net];
      if (c.learnt && l.is_bool)
        ++expected_lit_weight[l.net][l.interval.lo() == 1 ? 1 : 0];
    }

    const auto& w = db.watch_pair(id);
    for (const std::uint32_t wi : w) {
      if (wi >= c.lits.size()) {
        bad(str_format("clause %u watches literal index %u of %zu", id, wi,
                       c.lits.size()));
        continue;
      }
      const NetId net = c.lits[wi].net;
      const auto& list = db.watch_list(net);
      bool found = false;
      for (const std::uint32_t entry : list) found = found || entry == id;
      if (!found) {
        bad(str_format("clause %u watches n%u but is missing from that "
                       "net's watcher list",
                       id, net));
      }
    }

    // Semantic checks only make sense at a propagation fixpoint.
    if (db.fresh_pending() || engine.in_conflict()) continue;
    std::size_t false_count = 0;
    std::size_t unknown_index = c.lits.size();
    bool any_true = false;
    for (std::size_t i = 0; i < c.lits.size(); ++i) {
      switch (c.lits[i].value(engine.interval(c.lits[i].net))) {
        case LitValue::kTrue: any_true = true; break;
        case LitValue::kFalse: ++false_count; break;
        case LitValue::kUnknown: unknown_index = i; break;
      }
    }
    if (!any_true && false_count == c.lits.size()) {
      bad(str_format("clause %u is all-false at a propagation fixpoint — a "
                     "conflict was missed",
                     id));
    } else if (!any_true && false_count + 1 == c.lits.size() &&
               c.lits[unknown_index].is_bool) {
      bad(str_format("clause %u is unit on unassigned Boolean n%u at a "
                     "propagation fixpoint — an implication was missed",
                     id, c.lits[unknown_index].net));
    }
  }

  for (NetId net = 0; net < num_nets; ++net) {
    if (db.net_weight(net) != expected_weight[net]) {
      bad(str_format("net_weight(n%u) is %d, live clauses say %d", net,
                     db.net_weight(net), expected_weight[net]));
    }
    for (int v = 0; v <= 1; ++v) {
      if (db.bool_literal_weight(net, v != 0) != expected_lit_weight[net][v]) {
        bad(str_format("bool_literal_weight(n%u, %d) is %d, live learnt "
                       "clauses say %d",
                       net, v, db.bool_literal_weight(net, v != 0),
                       expected_lit_weight[net][v]));
      }
    }
  }
  if (db.learnt_count() != expected_learnt) {
    bad(str_format("learnt_count() is %zu, live clauses say %zu",
                   db.learnt_count(), expected_learnt));
  }
  return violations;
}

std::vector<std::string> check_asserting_clause(const HybridClause& clause,
                                                const prop::Engine& engine) {
  std::vector<std::string> violations;
  if (clause.lits.empty()) {
    violations.push_back("learned clause is empty");
    return violations;
  }
  for (std::size_t i = 0; i < clause.lits.size(); ++i) {
    const HybridLit& l = clause.lits[i];
    const LitValue v = l.value(engine.interval(l.net));
    if (i == 0) {
      if (v != LitValue::kUnknown) {
        violations.push_back(str_format(
            "asserting literal %s is %s after backtracking, expected "
            "unknown",
            l.to_string(engine.circuit()).c_str(),
            v == LitValue::kTrue ? "already true" : "still false"));
      }
      continue;
    }
    if (v == LitValue::kTrue) {
      violations.push_back(
          str_format("learned clause is satisfied by literal %s after "
                     "backtracking — it asserts nothing",
                     l.to_string(engine.circuit()).c_str()));
    } else if (l.is_bool && v != LitValue::kFalse) {
      // Word literals may relax to unknown when the backtrack undoes part
      // of a narrowing; Boolean assignments at levels ≤ the backtrack
      // level must still be intact.
      violations.push_back(
          str_format("non-asserting Boolean literal %s is unassigned after "
                     "backtracking — the clause is not asserting",
                     l.to_string(engine.circuit()).c_str()));
    }
  }
  return violations;
}

std::vector<std::string> check_interval_soundness(
    const prop::Engine& engine,
    const std::unordered_map<ir::NetId, std::int64_t>& input_values) {
  std::vector<std::string> violations;
  const ir::Circuit& circuit = engine.circuit();
  const std::vector<std::int64_t> values = circuit.evaluate(input_values);
  for (NetId net = 0; net < circuit.num_nets(); ++net) {
    if (!engine.interval(net).contains(values[net])) {
      violations.push_back(str_format(
          "interval %s of n%u '%s' excludes the concrete value %lld",
          engine.interval(net).to_string().c_str(), net,
          circuit.net_name(net).c_str(),
          static_cast<long long>(values[net])));
    }
  }
  return violations;
}

void enforce(const std::vector<std::string>& violations, const char* where) {
  if (violations.empty()) return;
  std::fprintf(stderr, "rtlsat: self-check failed at %s (%zu violation%s):\n",
               where, violations.size(), violations.size() == 1 ? "" : "s");
  for (const std::string& v : violations)
    std::fprintf(stderr, "  - %s\n", v.c_str());
  std::abort();
}

}  // namespace rtlsat::core::selfcheck
