#include "core/hdpll.h"

#include <algorithm>

#include "core/deduce.h"
#include "core/selfcheck.h"
#include "ir/analysis.h"
#include "metrics/solver_gauges.h"
#include "trace/progress.h"
#include "trace/trace.h"
#include "util/log.h"

namespace rtlsat::core {

using ir::NetId;

namespace {
// Luby restart scaling (1 1 2 1 1 2 4 …).
std::int64_t luby_like(std::int64_t i) {
  std::int64_t k = 1;
  while ((std::int64_t{1} << k) - 1 < i + 1) ++k;
  while ((std::int64_t{1} << (k - 1)) - 1 != i) {
    i -= (std::int64_t{1} << (k - 1)) - 1;
    k = 1;
    while ((std::int64_t{1} << k) - 1 < i + 1) ++k;
  }
  return std::int64_t{1} << (k - 1);
}
}  // namespace

HdpllSolver::HdpllSolver(const ir::Circuit& circuit, HdpllOptions options)
    : circuit_(circuit),
      options_(options),
      engine_(circuit),
      db_(circuit),
      heap_(circuit.num_nets()),
      // &stop_ is stable (member address); its value is filled in by
      // solve() when the timeout is merged in.
      fme_(fme::SolveOptions{.tracer = options.tracer, .stop = &stop_}),
      stop_(options.stop),
      rng_(options.random_seed),
      phase_(circuit.num_nets(), false),
      n_decisions_(stats_.counter("hdpll.decisions")),
      n_conflicts_(stats_.counter("hdpll.conflicts")),
      n_learned_clauses_(stats_.counter("hdpll.learned_clauses")),
      n_learned_literals_(stats_.counter("hdpll.learned_literals")),
      n_structural_decisions_(stats_.counter("hdpll.structural_decisions")),
      n_justify_scanned_(stats_.counter("justify.candidates_scanned")),
      n_arith_checks_(stats_.counter("hdpll.arith_checks")),
      n_arith_conflicts_(stats_.counter("hdpll.arith_conflicts")),
      n_clauses_exported_(stats_.counter("hdpll.clauses_exported")),
      n_clauses_imported_(stats_.counter("hdpll.clauses_imported")),
      h_learned_len_(stats_.histogram("hdpll.learned_clause_len")),
      h_backjump_(stats_.histogram("hdpll.backjump_distance")),
      h_resolutions_(stats_.histogram("hdpll.analyze_resolutions")),
      h_interval_width_(stats_.histogram("hdpll.arith_interval_width")),
      tracer_(options.tracer != nullptr ? options.tracer : &trace::global()),
      progress_(options.progress),
      gauges_(options.gauges) {
  engine_.set_tracer(tracer_);
  engine_.set_stop(&stop_);
  if (options_.structural_decisions)
    justifier_ = std::make_unique<Justifier>(circuit);
  // Seed activities with original fanout counts (§2.4).
  const auto fanout = ir::fanout_counts(circuit);
  for (NetId id = 0; id < circuit.num_nets(); ++id) {
    if (!circuit.is_bool(id)) continue;
    if (circuit.node(id).op == ir::Op::kConst) continue;
    heap_.set_activity(id, static_cast<double>(fanout[id]));
    heap_.insert(id);
  }
}

void HdpllSolver::assume(NetId net, const Interval& interval) {
  RTLSAT_ASSERT(!interval.is_empty());
  assumptions_.push_back({net, interval});
}

bool HdpllSolver::apply_assumptions() {
  for (const auto& [net, interval] : assumptions_) {
    if (!engine_.narrow(net, interval, prop::ReasonKind::kAssumption))
      return false;
  }
  return deduce(engine_, db_, &clause_cursor_);
}

bool HdpllSolver::pick_phase(NetId net) {
  if (options_.random_decisions) return rng_.flip();
  if (options_.predicate_learning && options_.structural_decisions) {
    // §4.4: prefer the value satisfying more learned relations. The paper
    // ties this value choice to the structural strategy ("if we have a
    // choice of values on a predicate signal, like a select to a mux");
    // applied to plain activity decisions it biases the search towards
    // satisfying learned clauses, which *delays* refutations.
    const int w1 = relation_satisfaction(db_, net, true);
    const int w0 = relation_satisfaction(db_, net, false);
    if (w1 != w0) return w1 > w0;
  }
  return phase_[net];
}

std::optional<HdpllSolver::Decision> HdpllSolver::pick_decision() {
  if (options_.structural_decisions) {
    if (tracer_->verbose()) {
      tracer_->record(trace::EventKind::kJustifyFrontier, engine_.level(),
                      static_cast<std::int64_t>(
                          justifier_->frontier_size(engine_)));
    }
    if (auto jd = justifier_->pick(engine_,
                                   options_.predicate_learning ? &db_ : nullptr,
                                   &n_justify_scanned_)) {
      ++n_structural_decisions_;
      tracer_->record(trace::EventKind::kStructuralDecision, engine_.level(),
                      jd->net, jd->value ? 1 : 0);
      return Decision{jd->net, jd->value};
    }
  }
  if (options_.random_decisions) {
    // Reservoir-sample a free Boolean net (randomized ablation).
    NetId chosen = ir::kNoNet;
    std::uint64_t seen = 0;
    for (NetId id = 0; id < circuit_.num_nets(); ++id) {
      if (!circuit_.is_bool(id) || engine_.bool_value(id) >= 0) continue;
      if (circuit_.node(id).op == ir::Op::kConst) continue;
      ++seen;
      if (rng_.below(seen) == 0) chosen = id;
    }
    if (chosen == ir::kNoNet) return std::nullopt;
    return Decision{chosen, pick_phase(chosen)};
  }
  while (!heap_.empty()) {
    const NetId net = heap_.pop();
    if (engine_.bool_value(net) >= 0) continue;  // stale entry
    return Decision{net, pick_phase(net)};
  }
  return std::nullopt;
}

void HdpllSolver::backtrack_to(std::uint32_t level) {
  // Save phases and refill the decision heap for the undone assignments.
  const auto& trail = engine_.trail();
  for (std::size_t i = trail.size(); i > 0; --i) {
    const prop::Event& ev = trail[i - 1];
    if (ev.level <= level) break;
    if (circuit_.is_bool(ev.net) && ev.cur.is_point()) {
      phase_[ev.net] = ev.cur.lo() == 1;
      heap_.insert(ev.net);
    }
  }
  engine_.backtrack_to_level(level);
  decision_stack_.resize(level);
}

void HdpllSolver::on_clause_learned(const HybridClause& clause) {
  for (const HybridLit& l : clause.lits) {
    heap_.bump(l.net, activity_bump_);
  }
  activity_bump_ /= options_.activity_decay;
  if (activity_bump_ > 1e100) {
    // ActivityHeap::bump rescales stored activities; rescale our increment
    // in lockstep.
    activity_bump_ = 1.0;
  }
}

void HdpllSolver::progress_tick(bool final) {
  if (progress_ == nullptr) return;
  trace::ProgressSnapshot s;
  s.conflicts = n_conflicts_;
  s.decisions = n_decisions_;
  s.propagations = engine_.num_propagations();
  s.learnt = static_cast<std::int64_t>(db_.learnt_count());
  s.restarts = restart_count_;
  s.trail = static_cast<std::int64_t>(engine_.trail().size());
  s.level = engine_.level();
  if (final) {
    progress_->finish(s);
  } else {
    progress_->tick(s);
  }
}

void HdpllSolver::publish_metrics() {
  metrics::SolverGauges* g = gauges_;
  if (g == nullptr) return;
  g->decisions->set(n_decisions_);
  g->conflicts->set(n_conflicts_);
  g->propagations->set(engine_.num_propagations());
  g->restarts->set(restart_count_);
  g->clauses_exported->set(n_clauses_exported_);
  g->clauses_imported->set(n_clauses_imported_);
  g->learnt_clauses->set(static_cast<std::int64_t>(db_.learnt_count()));
  g->trail->set(static_cast<std::int64_t>(engine_.trail().size()));
  g->level->set(engine_.level());
  g->clause_db_bytes->set(db_.memory_bytes());
  g->implication_graph_bytes->set(engine_.implication_graph_bytes());
  g->interval_store_bytes->set(engine_.interval_store_bytes());
}

void HdpllSolver::record_lbd(const HybridClause& clause) {
  if (gauges_ == nullptr) return;
  lbd_scratch_.clear();
  for (const HybridLit& l : clause.lits) {
    const std::int32_t ev = engine_.latest_event(l.net);
    lbd_scratch_.push_back(
        ev >= 0 ? engine_.trail()[static_cast<std::size_t>(ev)].level : 0);
  }
  std::sort(lbd_scratch_.begin(), lbd_scratch_.end());
  const auto last = std::unique(lbd_scratch_.begin(), lbd_scratch_.end());
  gauges_->lbd->observe(
      static_cast<std::int64_t>(last - lbd_scratch_.begin()));
}

SolveStatus HdpllSolver::stopped_status() const {
  // An explicit cancel wins over a simultaneously expired deadline: the
  // caller that fired the token wants kCancelled for its latency books.
  return stop_.cancelled() ? SolveStatus::kCancelled : SolveStatus::kTimeout;
}

void HdpllSolver::export_clauses(std::size_t first) {
  if (options_.exchange == nullptr) return;
  for (std::size_t id = first; id < db_.size(); ++id) {
    if (options_.exchange->offer(db_.clause(static_cast<std::uint32_t>(id))))
      ++n_clauses_exported_;
  }
}

void HdpllSolver::import_shared_clauses() {
  if (options_.exchange == nullptr) return;
  RTLSAT_ASSERT(engine_.level() == 0);
  std::vector<HybridClause> incoming;
  options_.exchange->collect(&incoming);
  for (HybridClause& c : incoming) {
    c.learnt = true;
    c.origin = HybridClause::Origin::kShared;
    // add() defers the clause's first examination to the next deduce(),
    // which the search loop runs before deciding — so a unit or falsified
    // import takes effect immediately and the watch invariants hold.
    const int exporter = c.shared_from;
    const std::int64_t seq = c.shared_seq;
    const std::uint32_t id = db_.add(std::move(c));
    if (proof_log_ != nullptr) {
      proof_log_->log_import(id, exporter, seq, db_.clause(id).lits);
    }
    if (exporter >= 0) {
      stats_.add("hdpll.imported_from." + std::to_string(exporter), 1);
    }
    ++n_clauses_imported_;
  }
}

bool HdpllSolver::handle_conflict() {
  ++n_conflicts_;
  tracer_->record(trace::EventKind::kConflict, engine_.level());
  progress_tick(/*final=*/false);
  publish_metrics();
  if (engine_.level() == 0) {
    if (proof_log_ != nullptr) proof_log_->log_conflict0();
    root_unsat_ = true;
    return false;
  }
  if (engine_.level() <= assumption_levels()) {
    // The conflict is at (or below) a per-call assumption level: it refutes
    // the assumption set, not the instance — report per-call kUnsat and
    // learn nothing. Learning here would be unsound: analysis would expand
    // the current level's assumption event (an antecedent-free pseudo-
    // decision) instead of emitting its negation as a literal, producing a
    // clause that over-claims once the assumption is retracted.
    return false;
  }

  if (!options_.conflict_learning) {
    // Chronological DPLL: flip the deepest unflipped decision. Assumption
    // pseudo-decisions are never flipped — the search exhausting every real
    // decision under the assumptions refutes the assumption set.
    while (!decision_stack_.empty() && decision_stack_.back().flipped) {
      backtrack_to(static_cast<std::uint32_t>(decision_stack_.size() - 1));
    }
    if (decision_stack_.empty()) {
      root_unsat_ = true;
      return false;
    }
    if (decision_stack_.back().is_assumption) return false;
    LevelInfo info = decision_stack_.back();
    backtrack_to(static_cast<std::uint32_t>(decision_stack_.size() - 1));
    engine_.push_level();
    decision_stack_.push_back(
        {.net = info.net, .value = !info.value, .flipped = true});
    const bool ok =
        engine_.narrow(info.net, Interval::point(info.value ? 0 : 1),
                       prop::ReasonKind::kDecision);
    if (!ok) return handle_conflict();
    return true;
  }

  const AnalysisResult analysis = analyze_conflict(engine_, options_.analyze);
  // Stage the certificate replay now: the premise events and the engine's
  // conflict record do not survive the backtrack below.
  if (proof_log_ != nullptr) proof_log_->capture_learn(analysis);
  if (analysis.empty_clause) {
    if (proof_log_ != nullptr) proof_log_->commit_learn(-1);
    root_unsat_ = true;
    return false;
  }
  const auto clause_len =
      static_cast<std::int64_t>(analysis.clause.lits.size());
  ++n_learned_clauses_;
  n_learned_literals_ += clause_len;
  h_learned_len_.add(clause_len);
  h_backjump_.add(engine_.level() - analysis.backtrack_level);
  h_resolutions_.add(analysis.resolutions);
  record_lbd(analysis.clause);
  tracer_->record(trace::EventKind::kAnalyze, engine_.level(),
                  analysis.resolutions, clause_len);
  tracer_->record(trace::EventKind::kLearnedClause, engine_.level(),
                  clause_len, analysis.backtrack_level);
  tracer_->record(trace::EventKind::kBacktrack, engine_.level(),
                  engine_.level(), analysis.backtrack_level);
  backtrack_to(analysis.backtrack_level);
  if (options_.self_check) {
    selfcheck::enforce(
        selfcheck::check_asserting_clause(analysis.clause, engine_),
        "hdpll learned clause");
    if (--selfcheck_countdown_ <= 0) {
      selfcheck_countdown_ = options_.self_check_interval;
      stats_.add("hdpll.self_checks", 1);
      selfcheck::enforce(selfcheck::check_engine(engine_),
                         "hdpll implication graph");
      selfcheck::enforce(selfcheck::check_clause_db(db_, engine_),
                         "hdpll clause database");
    }
  }
  on_clause_learned(analysis.clause);
  db_.add(analysis.clause);  // asserts via clause propagation in deduce()
  if (proof_log_ != nullptr) {
    proof_log_->commit_learn(static_cast<std::int64_t>(db_.size() - 1));
  }
  export_clauses(db_.size() - 1);
  db_.decay_clause_activity(options_.clause_activity_decay);

  // Periodic learnt-database housekeeping.
  if (options_.clause_reduction && db_.learnt_count() > reduction_budget_) {
    stats_.add("hdpll.reductions", 1);
    stats_.add("hdpll.clauses_deleted",
               static_cast<std::int64_t>(db_.reduce(engine_)));
    if (proof_log_ != nullptr) proof_log_->log_deletions(db_);
    reduction_budget_ = static_cast<std::size_t>(
        static_cast<double>(reduction_budget_) * options_.reduction_grow);
  }
  if (options_.restart_interval > 0 && --conflicts_until_restart_ <= 0) {
    stats_.add("hdpll.restarts", 1);
    ++restart_count_;
    conflicts_until_restart_ =
        options_.restart_interval * luby_like(restart_count_);
    tracer_->record(trace::EventKind::kRestart, engine_.level(),
                    restart_count_);
    backtrack_to(0);
    // Restart boundary = the trail is empty; the only safe and — in the
    // portfolio's deterministic mode — the only *predictable* point to
    // splice in peers' clauses.
    import_shared_clauses();
  }
  return true;
}

SolveResult HdpllSolver::finish_sat(const ArithCheckResult& arith,
                                    const Timer& timer) {
  SolveResult result;
  result.status = SolveStatus::kSat;
  result.seconds = timer.seconds();
  for (NetId input : circuit_.inputs())
    result.input_model.emplace(input, arith.values[input]);
  if (options_.verify_models) {
    const auto values = circuit_.evaluate(result.input_model);
    for (const auto& [net, interval] : assumptions_) {
      RTLSAT_ASSERT_MSG(interval.contains(values[net]),
                        "model verification failed: assumption violated");
    }
    for (const auto& [net, interval] : call_assumptions_) {
      RTLSAT_ASSERT_MSG(
          interval.contains(values[net]),
          "model verification failed: per-call assumption violated");
    }
  }
  if (options_.self_check) {
    stats_.add("hdpll.self_checks", 1);
    selfcheck::enforce(selfcheck::check_engine(engine_),
                       "hdpll SAT implication graph");
    selfcheck::enforce(selfcheck::check_clause_db(db_, engine_),
                       "hdpll SAT clause database");
    selfcheck::enforce(
        selfcheck::check_interval_soundness(engine_, result.input_model),
        "hdpll SAT interval soundness");
  }
  return result;
}

SolveResult HdpllSolver::solve() { return solve({}); }

void HdpllSolver::sync_circuit() {
  // Lazy cleanup of the previous call's branch state first; growth is only
  // legal at root level. (Guarded like solve_impl's: a no-op backtrack
  // would still discard the engine's pending propagation queue.)
  if (engine_.level() > 0 || engine_.in_conflict()) backtrack_to(0);
  const auto old_nets = static_cast<NetId>(phase_.size());
  if (old_nets == circuit_.num_nets()) return;
  engine_.sync_circuit();
  db_.sync_circuit(circuit_);
  heap_.grow(circuit_.num_nets());
  phase_.resize(circuit_.num_nets(), false);
  // Seed the appended Boolean nets exactly as the constructor seeds the
  // originals. Recomputing fanouts also reflects new readers of old nets,
  // but re-seeding old activities would erase learned bumps — skip them.
  const auto fanout = ir::fanout_counts(circuit_);
  for (NetId id = old_nets; id < circuit_.num_nets(); ++id) {
    if (!circuit_.is_bool(id)) continue;
    if (circuit_.node(id).op == ir::Op::kConst) continue;
    heap_.set_activity(id, static_cast<double>(fanout[id]));
    heap_.insert(id);
  }
  // The justifier's candidate order is computed from the whole circuit.
  if (options_.structural_decisions)
    justifier_ = std::make_unique<Justifier>(circuit_);
}

SolveResult HdpllSolver::solve(
    const std::vector<std::pair<ir::NetId, Interval>>& assumptions) {
  for ([[maybe_unused]] const auto& [net, interval] : assumptions)
    RTLSAT_ASSERT(!interval.is_empty());
  call_assumptions_ = assumptions;
  SolveResult result = solve_impl();
  if (proof_log_ != nullptr) {
    switch (result.status) {
      case SolveStatus::kSat: proof_log_->finish("sat"); break;
      case SolveStatus::kUnsat: proof_log_->finish("unsat"); break;
      case SolveStatus::kTimeout: proof_log_->finish("timeout"); break;
      case SolveStatus::kCancelled: proof_log_->finish("cancelled"); break;
    }
    stats_.add("proof.records", options_.proof->records());
    stats_.add("proof.bytes", options_.proof->bytes());
    stats_.add("proof.fme_certify_failures",
               proof_log_->fme_certify_failures());
  }
  // Publish the tail of the export batch — without this a worker that
  // never restarts would strand its last few clauses in the endpoint.
  if (options_.exchange != nullptr) options_.exchange->flush();
  progress_tick(/*final=*/true);
  publish_metrics();
  if (gauges_ != nullptr) gauges_->set_phase(metrics::SolverPhase::kIdle);
  tracer_->flush();
  return result;
}

std::vector<std::string> HdpllSolver::crosscheck_model(
    const std::unordered_map<NetId, std::int64_t>& input_model) {
  // Level 0 holds only assumption-forced facts, valid on every branch —
  // the correct frame to judge a peer's model against. (A cancelled loser
  // parks mid-branch; its branch-local intervals may legitimately exclude
  // the model.)
  backtrack_to(0);
  std::vector<std::string> violations;
  const auto values = circuit_.evaluate(input_model);
  for (const auto& [net, interval] : assumptions_) {
    if (!interval.contains(values[net])) {
      violations.push_back("crosscheck: assumption on net " +
                           std::to_string(net) + " violated by peer model");
    }
  }
  for (const std::string& v :
       selfcheck::check_interval_soundness(engine_, input_model)) {
    violations.push_back("crosscheck: " + v);
  }
  return violations;
}

SolveResult HdpllSolver::solve_impl() {
  Timer timer;
  // One token carries both the external cancel flag and the solver's own
  // deadline; the engine and FME hold &stop_, so this assignment arms them
  // too. (The old code polled a Deadline only between conflicts — a long
  // propagation or FME call could overshoot the timeout by seconds.)
  stop_ = options_.stop.with_deadline(options_.timeout_seconds);
  SolveResult result;
  result.learning = learning_report_;
  if (root_unsat_) {
    // The instance itself was refuted on an earlier call; no assumption
    // set can revive it.
    result.status = SolveStatus::kUnsat;
    result.seconds = timer.seconds();
    return result;
  }
  // Lazily retract the previous call's branch (a kSat return parks at the
  // satisfying leaf so the caller could have inspected it; a per-call
  // kUnsat return parks at the conflict). Guarded: an unconditional
  // backtrack would discard the engine's seeded propagation queue on the
  // first call, losing initial bounds consistency.
  if (engine_.level() > 0 || engine_.in_conflict()) backtrack_to(0);
  if (!clean_exit_) {
    // The previous call exited on a fired token mid-propagation; the
    // engine's queue was discarded, so bounds consistency cannot be
    // trusted. Re-seed every node — the next deduce() restores the
    // fixpoint.
    engine_.enqueue_all_nodes();
    clean_exit_ = true;
  }
  // First call only: later calls continue the grown schedule.
  if (reduction_budget_ == 0) reduction_budget_ = options_.reduction_base;
  selfcheck_countdown_ = options_.self_check_interval;
  conflicts_until_restart_ = options_.restart_interval;

  // Chronological mode is not certified: its flip "derivations" have no
  // clausal justification, so the logger only arms with conflict learning.
  // A repeat call (or one with retractable assumptions) is not certified
  // either: its derivations cite clauses the certificate cannot re-derive.
  proof_log_.reset();
  if (!call_assumptions_.empty()) proof_disarmed_ = true;
  if (options_.proof != nullptr && options_.conflict_learning &&
      !proof_disarmed_) {
    proof_log_ = std::make_unique<WordProofLogger>(engine_, options_.proof);
    proof_log_->begin(assumptions_);
    // The learn records replay the interior of the analysis cut; premise
    // recording is off by default to keep analysis allocation-lean.
    options_.analyze.record_premises = true;
    proof_disarmed_ = true;  // one certificate stream per solver
  }

  if (gauges_ != nullptr) gauges_->set_phase(metrics::SolverPhase::kPreprocess);
  {
    trace::ScopedPhase phase(tracer_, &stats_, "preprocess");
    if (!apply_assumptions()) {
      if (proof_log_ != nullptr) proof_log_->log_conflict0();
      root_unsat_ = true;  // persistent assumptions, level-0 conflict
      result.status = SolveStatus::kUnsat;
      result.seconds = timer.seconds();
      return result;
    }
  }

  if (options_.predicate_learning && !predicates_learned_) {
    if (gauges_ != nullptr) {
      gauges_->set_phase(metrics::SolverPhase::kPredicateLearning);
    }
    trace::ScopedPhase phase(tracer_, &stats_, "predicate_learning");
    PredicateLearningOptions learn_options = options_.learning;
    if (learn_options.tracer == nullptr) learn_options.tracer = tracer_;
    if (learn_options.stop == nullptr) learn_options.stop = &stop_;
    learn_options.proof = proof_log_.get();
    const std::size_t first_learned = db_.size();
    result.learning = run_predicate_learning(engine_, db_, &clause_cursor_,
                                             learn_options);
    // Run once: §3 relations are consequences of the formula alone, live in
    // the clause database, and persist across calls. The report is kept so
    // every later call's result can replay it.
    predicates_learned_ = true;
    learning_report_ = result.learning;
    if (result.learning.proven_unsat) {
      root_unsat_ = true;
      result.status = SolveStatus::kUnsat;
      result.seconds = timer.seconds();
      return result;
    }
    // §3 relations are consequences of the formula alone — share them all.
    export_clauses(first_learned);
    if (stop_.stop_requested()) {
      clean_exit_ = false;
      result.status = stopped_status();
      result.seconds = timer.seconds();
      return result;
    }
    // §3 step 5: bias decisions towards nets in learned relations.
    for (NetId id = 0; id < circuit_.num_nets(); ++id) {
      if (circuit_.is_bool(id) && db_.net_weight(id) > 0) {
        heap_.bump(id, options_.learned_weight_bonus * db_.net_weight(id));
      }
    }
  }

  // Adopt whatever peers have already published before the first decision —
  // without this a worker that never restarts (easy instances, or a late
  // deterministic-mode slot) would not import at all.
  import_shared_clauses();

  if (gauges_ != nullptr) gauges_->set_phase(metrics::SolverPhase::kSearch);
  trace::ScopedPhase search_phase(tracer_, &stats_, "search");
  while (true) {
    if (!deduce(engine_, db_, &clause_cursor_)) {
      if (!handle_conflict()) {
        result.status = SolveStatus::kUnsat;
        result.seconds = timer.seconds();
        return result;
      }
      continue;
    }

    // Full poll (flag + clock) every decision step. This must run before
    // pick_decision(): a deduce() that the engine cut short on a fired
    // token returns true *without* reaching a fixpoint, and only this
    // check keeps the incomplete propagation from feeding a decision or
    // an arith_check. Unarmed tokens make both reads trivially cheap.
    if (stop_.stop_requested()) {
      clean_exit_ = false;
      result.status = stopped_status();
      result.seconds = timer.seconds();
      return result;
    }

    // Plant the next pending per-call assumption as a pseudo-decision:
    // level i+1 asserts call_assumptions_[i], so every assumption sits
    // strictly below every real decision (re-established after backjumps
    // and restarts carry the search below level m). A level is pushed even
    // when the assumption is already entailed — a dummy level, marked
    // has_event = false — so the level↔assumption correspondence stays
    // exact for handle_conflict's soundness test and the FME cut.
    if (engine_.level() < assumption_levels()) {
      const auto& [net, interval] = call_assumptions_[engine_.level()];
      engine_.push_level();
      LevelInfo info;
      info.net = net;
      info.is_assumption = true;
      info.interval = interval;
      tracer_->record(trace::EventKind::kDecision, engine_.level(), net, 2);
      if (!engine_.narrow(net, interval, prop::ReasonKind::kAssumption)) {
        decision_stack_.push_back(info);
        if (!handle_conflict()) {
          result.status = SolveStatus::kUnsat;
          result.seconds = timer.seconds();
          return result;
        }
        continue;
      }
      const std::int32_t ev = engine_.latest_event(net);
      info.has_event =
          ev >= 0 &&
          engine_.trail()[static_cast<std::size_t>(ev)].level ==
              engine_.level();
      decision_stack_.push_back(info);
      continue;  // deduce to a fixpoint before the next assumption
    }

    const auto decision = pick_decision();
    if (!decision) {
      // Decide() == done: every Boolean net assigned, box bounds
      // consistent — ask FME for a point solution (§2.4).
      RTLSAT_DASSERT(engine_.all_booleans_assigned());
      ++n_arith_checks_;
      if (tracer_->enabled()) {
        // Interval widths of the word-level solution box handed to FME —
        // only worth the O(nets) sweep when someone is watching.
        for (NetId id = 0; id < circuit_.num_nets(); ++id) {
          if (circuit_.is_bool(id)) continue;
          h_interval_width_.add(
              static_cast<std::int64_t>(engine_.interval(id).count()));
        }
      }
      ArithCheckResult arith;
      ArithCertCapture arith_capture;
      {
        if (gauges_ != nullptr) {
          gauges_->set_phase(metrics::SolverPhase::kArithCheck);
        }
        trace::ScopedPhase arith_phase(tracer_, &stats_, "arith_check");
        arith = arith_check(engine_, fme_,
                            proof_log_ != nullptr ? &arith_capture : nullptr);
        if (gauges_ != nullptr) {
          gauges_->set_phase(metrics::SolverPhase::kSearch);
        }
      }
      if (arith.stopped) {
        // FME abandoned the check on a fired token — neither a model nor a
        // refutation; learning a decision cut here would be unsound.
        clean_exit_ = false;
        result.status = stopped_status();
        result.seconds = timer.seconds();
        return result;
      }
      tracer_->record(trace::EventKind::kArithCheck, engine_.level(),
                      arith.sat ? 1 : 0);
      if (arith.sat) {
        const PredicateLearningReport learning = result.learning;
        result = finish_sat(arith, timer);
        result.learning = learning;
        return result;
      }
      ++n_arith_conflicts_;
      if (engine_.level() == 0) {
        if (proof_log_ != nullptr) proof_log_->log_fme0(arith_capture);
        root_unsat_ = true;
        result.status = SolveStatus::kUnsat;
        result.seconds = timer.seconds();
        return result;
      }
      if (engine_.level() <= assumption_levels()) {
        // Every level on the trail is an assumption pseudo-decision (all
        // real decisions were entailed), so the refutation condemns the
        // assumption set — report per-call kUnsat without learning. If no
        // assumption actually narrowed anything (all dummy levels), the
        // refuted box is the level-0 box and the instance itself is UNSAT.
        bool any_event = false;
        for (const LevelInfo& info : decision_stack_)
          any_event = any_event || info.has_event;
        if (!any_event) root_unsat_ = true;
        result.status = SolveStatus::kUnsat;
        result.seconds = timer.seconds();
        return result;
      }
      if (options_.conflict_learning) {
        // Learn the decision cut: ¬(d₁ ∧ … ∧ d_k). The asserting literal
        // is the deepest decision's negation. Assumption levels join the
        // cut as their interval's negation — the clause must stay valid
        // after the assumptions are retracted; dummy levels asserted
        // nothing and contribute nothing.
        HybridClause cut;
        cut.learnt = true;
        cut.origin = HybridClause::Origin::kConflict;
        for (auto it = decision_stack_.rbegin(); it != decision_stack_.rend();
             ++it) {
          if (it->is_assumption) {
            if (!it->has_event) continue;
            if (circuit_.is_bool(it->net) && it->interval.is_point()) {
              cut.lits.push_back(
                  HybridLit::boolean(it->net, it->interval.lo() == 0));
            } else {
              cut.lits.push_back(HybridLit::word_not_in(it->net, it->interval));
            }
            continue;
          }
          cut.lits.push_back(HybridLit::boolean(it->net, !it->value));
        }
        // The cut record replays the decision levels; the trail is gone
        // after the backtrack, so stage it (and the FME refutation) now.
        if (proof_log_ != nullptr) proof_log_->capture_cut(arith_capture);
        backtrack_to(engine_.level() - 1);
        on_clause_learned(cut);
        const std::uint32_t cut_id = db_.add(std::move(cut));
        if (proof_log_ != nullptr) {
          proof_log_->commit_cut(cut_id, db_.clause(cut_id).lits);
        }
      } else {
        // Reuse the chronological flip path (it does not consult the
        // engine's conflict record).
        if (!handle_conflict()) {
          result.status = SolveStatus::kUnsat;
          result.seconds = timer.seconds();
          return result;
        }
      }
      continue;
    }

    ++n_decisions_;
    engine_.push_level();
    tracer_->record(trace::EventKind::kDecision, engine_.level(),
                    decision->net, decision->value ? 1 : 0);
    decision_stack_.push_back({.net = decision->net, .value = decision->value});
    if (!engine_.narrow(decision->net,
                        Interval::point(decision->value ? 1 : 0),
                        prop::ReasonKind::kDecision)) {
      if (!handle_conflict()) {
        result.status = SolveStatus::kUnsat;
        result.seconds = timer.seconds();
        return result;
      }
    }
  }
}

}  // namespace rtlsat::core
