// Ddeduce()'s propagation half (paper §2.4): runs circuit interval/Boolean
// propagation and hybrid-clause unit propagation to a mutual fixpoint.
// Shared by the HDPLL search loop and the static learner's probes.
#pragma once

#include <algorithm>

#include "core/clause_db.h"
#include "prop/engine.h"

namespace rtlsat::core {

// `cursor` is the clause DB's position in the engine trail; rollback
// rewinding is handled inside ClauseDb::propagate via the engine's trail
// low-water mark, so callers may freely roll the engine back between
// calls. Returns false on conflict (recorded in the engine).
inline bool deduce(prop::Engine& engine, ClauseDb& db, std::size_t* cursor) {
  while (true) {
    if (!engine.propagate()) return false;
    const std::size_t before = engine.trail().size();
    if (!db.propagate(engine, cursor)) return false;
    if (engine.trail().size() == before) return true;
  }
}

}  // namespace rtlsat::core
