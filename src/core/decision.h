// Activity-ordered decision heap over Boolean nets (paper §2.4: "a decision
// variable is picked based on an exponentially decaying function based on
// its original fanout and the number of learned clauses that it appears
// in"). Implemented as the usual lazy max-heap: popped entries are
// re-inserted on backtrack; stale (assigned) entries are skipped by the
// caller.
#pragma once

#include <vector>

#include "ir/circuit.h"

namespace rtlsat::core {

class ActivityHeap {
 public:
  explicit ActivityHeap(std::size_t num_nets)
      : activity_(num_nets, 0.0), pos_(num_nets, -1) {}

  // Extends the per-net tables for nets appended to the circuit. New nets
  // start at activity 0 and outside the heap; the owner seeds and inserts
  // them as the constructor path does.
  void grow(std::size_t num_nets) {
    if (num_nets <= activity_.size()) return;
    activity_.resize(num_nets, 0.0);
    pos_.resize(num_nets, -1);
  }

  void set_activity(ir::NetId net, double a) {
    activity_[net] = a;
    if (pos_[net] >= 0) sift_up(pos_[net]);
  }
  double activity(ir::NetId net) const { return activity_[net]; }

  void bump(ir::NetId net, double amount) {
    activity_[net] += amount;
    if (activity_[net] > 1e100) rescale();
    if (pos_[net] >= 0) sift_up(pos_[net]);
  }

  bool contains(ir::NetId net) const { return pos_[net] >= 0; }
  bool empty() const { return heap_.empty(); }

  void insert(ir::NetId net) {
    if (pos_[net] >= 0) return;
    pos_[net] = static_cast<int>(heap_.size());
    heap_.push_back(net);
    sift_up(pos_[net]);
  }

  ir::NetId pop() {
    const ir::NetId top = heap_[0];
    pos_[top] = -1;
    if (heap_.size() > 1) {
      heap_[0] = heap_.back();
      pos_[heap_[0]] = 0;
      heap_.pop_back();
      sift_down(0);
    } else {
      heap_.pop_back();
    }
    return top;
  }

 private:
  bool less(ir::NetId a, ir::NetId b) const {
    return activity_[a] > activity_[b];
  }
  void rescale() {
    for (double& a : activity_) a *= 1e-100;
  }
  void sift_up(int i) {
    const ir::NetId v = heap_[static_cast<std::size_t>(i)];
    while (i > 0) {
      const int parent = (i - 1) / 2;
      if (!less(v, heap_[static_cast<std::size_t>(parent)])) break;
      heap_[static_cast<std::size_t>(i)] = heap_[static_cast<std::size_t>(parent)];
      pos_[heap_[static_cast<std::size_t>(i)]] = i;
      i = parent;
    }
    heap_[static_cast<std::size_t>(i)] = v;
    pos_[v] = i;
  }
  void sift_down(int i) {
    const ir::NetId v = heap_[static_cast<std::size_t>(i)];
    const int n = static_cast<int>(heap_.size());
    while (true) {
      int child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && less(heap_[static_cast<std::size_t>(child + 1)],
                                heap_[static_cast<std::size_t>(child)]))
        ++child;
      if (!less(heap_[static_cast<std::size_t>(child)], v)) break;
      heap_[static_cast<std::size_t>(i)] = heap_[static_cast<std::size_t>(child)];
      pos_[heap_[static_cast<std::size_t>(i)]] = i;
      i = child;
    }
    heap_[static_cast<std::size_t>(i)] = v;
    pos_[v] = i;
  }

  std::vector<double> activity_;
  std::vector<int> pos_;
  std::vector<ir::NetId> heap_;
};

}  // namespace rtlsat::core
