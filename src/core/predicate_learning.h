// Predicate-based static learning (paper §3): recursive learning of level 1
// restricted to the RTL's predicate logic, with implications carried across
// the data-path by interval constraint propagation.
//
// For each candidate signal b (predicates and the Boolean logic in their
// cone, probed in level order) and each probe value v:
//   1. assume b = v and propagate (hybrid: Boolean + interval).
//   2. Enumerate the ways W the driver gate of b can produce v (OR at 1 —
//      one way per input; AND at 0; XOR both input patterns; 1-bit mux both
//      select arms). Satisfy each way in isolation one level deeper.
//   3. Implications common to all feasible ways also follow from b = v:
//      learn (¬(b=v) ∨ impl) as a clause. Word-interval implications yield
//      hybrid clauses with a positive word literal.
//   4. A probe or all of its ways conflicting learns the unit fact b = ¬v.
// Learned clauses feed later probes (they propagate like any clause) and
// the search itself; the relation count is capped (paper: 2500 for Table 1,
// min(#predicate gates, 2000) for Table 2) because complete learning can
// cost up to 10× the solve time.
#pragma once

#include "core/clause_db.h"
#include "prop/engine.h"
#include "util/stats.h"
#include "util/stop_token.h"

namespace rtlsat::trace {
class Tracer;
}  // namespace rtlsat::trace

namespace rtlsat::core {

class WordProofLogger;

struct PredicateLearningOptions {
  // Maximum binary relations to learn; ≤ 0 disables learning entirely.
  int max_relations = 2000;
  // Also learn hybrid relations (¬b ∨ {w ∈ ⟨l,m⟩}) from common data-path
  // narrowings, not just Boolean–Boolean ones.
  bool learn_word_relations = true;
  // Extension along the paper's §6 future-work direction: probe word
  // variables by domain bisection. Implications common to both halves hold
  // unconditionally and are committed as unit facts (Boolean units or
  // {w ∈ ⟨l,m⟩} interval units) — probing-based bound shaving on the
  // data-path. Off by default; the ablation bench exercises it.
  bool word_probing = false;
  int max_word_probes = 256;
  // Observability: learned relations/units are recorded as trace events.
  // Null ⟹ trace::global() (a no-op unless RTLSAT_TRACE is set).
  trace::Tracer* tracer = nullptr;
  // Cooperative cancellation / deadline, polled before every probe (the
  // engine is at level 0 there, so stopping keeps the committed clauses —
  // all sound — and returns the partial report). Learning used to run to
  // completion regardless of HdpllOptions::timeout_seconds; routing the
  // deadline through here fixes that. Null = never stop.
  const StopToken* stop = nullptr;
  // Proof logging (core/proof_log.h): every probe that justifies clauses —
  // or refutes the instance — is recorded with its case split, and every
  // committed clause gets an add record. Null = no logging.
  WordProofLogger* proof = nullptr;
};

struct PredicateLearningReport {
  int relations_learned = 0;  // binary (and hybrid) clauses added
  int units_learned = 0;      // probe values proven impossible
  int probes = 0;
  double seconds = 0;
  // The preprocessing itself refuted the instance (level-0 conflict).
  bool proven_unsat = false;
};

// Runs on an engine that is at decision level 0 with the instance's
// assumptions already propagated. Learned clauses are added to `db`;
// `clause_cursor` is the caller's clause-propagation cursor into the
// engine trail (kept consistent across the probe rollbacks).
PredicateLearningReport run_predicate_learning(
    prop::Engine& engine, ClauseDb& db, std::size_t* clause_cursor,
    const PredicateLearningOptions& options);

}  // namespace rtlsat::core
