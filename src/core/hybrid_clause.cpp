#include "core/hybrid_clause.h"

#include <sstream>

namespace rtlsat::core {

LitValue HybridLit::value(const Interval& current) const {
  if (positive) {
    if (interval.contains(current)) return LitValue::kTrue;
    if (!interval.intersects(current)) return LitValue::kFalse;
    return LitValue::kUnknown;
  }
  if (!interval.intersects(current)) return LitValue::kTrue;
  if (interval.contains(current)) return LitValue::kFalse;
  return LitValue::kUnknown;
}

Interval HybridLit::implied_interval(const Interval& current) const {
  if (positive) return current.intersect(interval);
  return current.minus(interval);
}

std::string HybridLit::to_string(const ir::Circuit& circuit) const {
  std::ostringstream os;
  if (is_bool) {
    if (interval.lo() == 0) os << '!';
    os << circuit.net_name(net);
  } else {
    os << '{' << (positive ? "" : "!") << circuit.net_name(net) << " in "
       << interval.to_string() << '}';
  }
  return os.str();
}

std::string HybridClause::to_string(const ir::Circuit& circuit) const {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < lits.size(); ++i) {
    if (i > 0) os << " | ";
    os << lits[i].to_string(circuit);
  }
  os << ')';
  return os.str();
}

}  // namespace rtlsat::core
