#include "core/justify.h"

#include <algorithm>

#include "ir/analysis.h"

namespace rtlsat::core {

using ir::NetId;
using ir::Node;
using ir::Op;

Justifier::Justifier(const ir::Circuit& circuit)
    : circuit_(circuit),
      fanout_count_(ir::fanout_counts(circuit)),
      level_(ir::levelize(circuit)) {
  for (NetId id = 0; id < circuit.num_nets(); ++id) {
    const Node& n = circuit.node(id);
    if (ir::is_boolean_gate(n.op) || (n.op == Op::kMux && n.width > 1))
      candidates_.push_back(id);
  }
  std::sort(candidates_.begin(), candidates_.end(), [this](NetId a, NetId b) {
    return level_[a] != level_[b] ? level_[a] > level_[b] : a > b;
  });
}

bool Justifier::unjustified(const prop::Engine& engine, NetId id) const {
  const Node& n = circuit_.node(id);
  switch (n.op) {
    case Op::kAnd:
    case Op::kOr: {
      // Unjustified at the controlled value when no input currently
      // explains it (the implied value is handled by propagation).
      const int controlled = n.op == Op::kAnd ? 0 : 1;
      if (engine.bool_value(id) != controlled) return false;
      for (NetId o : n.operands) {
        if (engine.bool_value(o) == controlled) return false;
      }
      return true;
    }
    case Op::kXor:
      // Two free inputs leave a genuine binary choice.
      return engine.bool_value(id) >= 0 &&
             engine.bool_value(n.operands[0]) < 0 &&
             engine.bool_value(n.operands[1]) < 0;
    case Op::kNot:
      return false;  // always resolved by implication
    case Op::kMux: {
      // Def. 4.1 rule 2: Boolean input free and the output interval not
      // uniquely determined by the input intervals.
      if (engine.bool_value(n.operands[0]) >= 0) return false;
      const Interval& out = engine.interval(id);
      const Interval hull =
          engine.interval(n.operands[1]).hull(engine.interval(n.operands[2]));
      return !out.contains(hull);
    }
    default:
      return false;
  }
}

std::optional<JustifyDecision> Justifier::justify_gate(
    const prop::Engine& engine, NetId id, const ClauseDb* db) const {
  const Node& n = circuit_.node(id);
  auto weighted_value = [&](NetId net, bool fallback) {
    if (db == nullptr) return fallback;
    const int w1 = relation_satisfaction(*db, net, true);
    const int w0 = relation_satisfaction(*db, net, false);
    if (w1 == w0) return fallback;
    return w1 > w0;
  };

  switch (n.op) {
    case Op::kAnd:
    case Op::kOr: {
      const bool controlled = n.op == Op::kOr;
      // Choose the free input with the highest fanout, breaking ties
      // towards the inputs (lowest level), per §4.2's heuristics.
      NetId best = ir::kNoNet;
      for (NetId o : n.operands) {
        if (engine.bool_value(o) >= 0) continue;
        if (best == ir::kNoNet || fanout_count_[o] > fanout_count_[best] ||
            (fanout_count_[o] == fanout_count_[best] &&
             level_[o] < level_[best])) {
          best = o;
        }
      }
      if (best == ir::kNoNet) return std::nullopt;
      return JustifyDecision{best, controlled};
    }
    case Op::kXor: {
      const NetId a = n.operands[0];
      const NetId b = n.operands[1];
      const NetId pick = fanout_count_[a] >= fanout_count_[b] ? a : b;
      return JustifyDecision{pick, weighted_value(pick, false)};
    }
    case Op::kMux: {
      const NetId sel = n.operands[0];
      const Interval& out = engine.interval(id);
      const bool then_ok = engine.interval(n.operands[1]).intersects(out);
      const bool else_ok = engine.interval(n.operands[2]).intersects(out);
      // Both branches dead would be a propagation conflict, and one-dead
      // would have forced the select; reaching here with neither forced
      // means both are live — a free choice, weighted per §4.4.
      if (then_ok && else_ok) return JustifyDecision{sel, weighted_value(sel, true)};
      if (then_ok) return JustifyDecision{sel, true};
      if (else_ok) return JustifyDecision{sel, false};
      RTLSAT_UNREACHABLE("mux with both branches dead survived propagation");
    }
    default:
      return std::nullopt;
  }
}

std::optional<JustifyDecision> Justifier::pick(const prop::Engine& engine,
                                               const ClauseDb* db,
                                               std::int64_t* scanned) const {
  std::int64_t examined = 0;
  for (NetId id : candidates_) {
    ++examined;
    if (!unjustified(engine, id)) continue;
    if (auto decision = justify_gate(engine, id, db)) {
      if (scanned != nullptr) *scanned += examined;
      return decision;
    }
  }
  if (scanned != nullptr) *scanned += examined;
  return std::nullopt;
}

std::size_t Justifier::frontier_size(const prop::Engine& engine) const {
  std::size_t n = 0;
  for (NetId id : candidates_) {
    if (unjustified(engine, id)) ++n;
  }
  return n;
}

int relation_satisfaction(const ClauseDb& db, ir::NetId net, bool value) {
  return db.bool_literal_weight(net, value);
}

}  // namespace rtlsat::core
