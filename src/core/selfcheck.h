// Solver-invariant verification: machine checks for the contracts
// docs/architecture.md promises between the engine, the clause database,
// and HDPLL (trail/implication-graph consistency, watched-literal
// integrity, asserting learned clauses, interval soundness against a
// concrete witness).
//
// Each checker returns a list of human-readable violation descriptions —
// empty means the invariant holds — so tests can assert on content and the
// in-solver hooks can abort with a full diagnosis. The checkers are always
// compiled (they are cold code); HdpllOptions::self_check (default ON in
// -DRTLSAT_SELFCHECK=ON builds via rtlsat::kSelfCheckBuild) controls
// whether HDPLL invokes them during search.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "core/analyze.h"
#include "core/clause_db.h"
#include "prop/engine.h"

namespace rtlsat::core::selfcheck {

// Implication-graph / trail consistency:
//  * every event narrows (cur ⊂ prev, non-empty);
//  * levels are nondecreasing along the trail and never exceed the
//    engine's current level;
//  * antecedents strictly precede their consequence (the graph is acyclic
//    by construction — this checks the construction);
//  * per-net event chains (prev_on_net) are correctly linked and the
//    latest event's interval equals the engine's current domain;
//  * node reasons reference real circuit nodes.
std::vector<std::string> check_engine(const prop::Engine& engine);

// Watched-literal and clause-database integrity:
//  * watch indices are in range and watched nets' watcher lists contain
//    the clause;
//  * per-net occurrence counts and learned-literal weights match the live
//    clauses; learnt_count matches;
//  * at a propagation fixpoint (no fresh clauses pending, no conflict), no
//    live clause is all-false, and no clause is unit on an unassigned
//    Boolean literal (word-literal units may legitimately stay pending
//    when their complement is not interval-representable).
std::vector<std::string> check_clause_db(const ClauseDb& db,
                                         const prop::Engine& engine);

// Checks that a just-learned clause is asserting after backtracking: no
// literal true, the asserting literal lits[0] unknown, and every other
// Boolean literal still false. Call between backtrack_to(analysis.
// backtrack_level) and ClauseDb::add.
std::vector<std::string> check_asserting_clause(const HybridClause& clause,
                                                const prop::Engine& engine);

// Interval-store soundness against a concrete witness: for an input
// valuation consistent with everything on the trail (e.g. the model of a
// SAT answer, or any valuation at level 0), every net's current interval
// must contain the net's simulated value. `input_values` is keyed by input
// net id, as Circuit::evaluate expects.
std::vector<std::string> check_interval_soundness(
    const prop::Engine& engine,
    const std::unordered_map<ir::NetId, std::int64_t>& input_values);

// Aborts with every violation listed when `violations` is non-empty.
// `where` names the call site in the abort message.
void enforce(const std::vector<std::string>& violations, const char* where);

}  // namespace rtlsat::core::selfcheck
