// Structural decision-making by RTL justification (paper §4, Algorithm 2).
//
// The J-frontier is the set of operators whose required output cannot yet
// be produced by implication alone:
//   * Boolean gates with an assigned output that no current input value
//     explains (AND at 0 with no 0-input, OR at 1 with no 1-input, XOR with
//     both inputs free),
//   * word-level muxes whose select is free and whose required output
//     interval genuinely constrains the branch choice (Def. 4.1 rule 2).
// Pure arithmetic operators (+, −, shifts, …) are never justified — their
// consistency is the propagation engine's and FME's job.
//
// justify() returns the next Boolean decision (net, value) that satisfies
// some frontier gate, preferring — per §4.4 — the value that satisfies the
// most learned predicate relations when static learning ran.
#pragma once

#include <optional>

#include "core/clause_db.h"
#include "prop/engine.h"

namespace rtlsat::core {

struct JustifyDecision {
  ir::NetId net = ir::kNoNet;
  bool value = false;
};

class Justifier {
 public:
  explicit Justifier(const ir::Circuit& circuit);

  // Scans the implicit J-frontier (highest level first — justification
  // flows from the constrained outputs back towards the inputs) and
  // returns a decision for the first unjustified gate, or nullopt when the
  // frontier is empty. `db` may be null; when present, free value choices
  // are weighted by learned-relation satisfaction. `scanned`, when non-null,
  // accumulates the number of candidate gates examined (observability).
  std::optional<JustifyDecision> pick(const prop::Engine& engine,
                                      const ClauseDb* db,
                                      std::int64_t* scanned = nullptr) const;

  // Diagnostic: the frontier size under the current assignment.
  std::size_t frontier_size(const prop::Engine& engine) const;

 private:
  bool unjustified(const prop::Engine& engine, ir::NetId id) const;
  std::optional<JustifyDecision> justify_gate(const prop::Engine& engine,
                                              ir::NetId id,
                                              const ClauseDb* db) const;

  const ir::Circuit& circuit_;
  // Candidate gates sorted by level, deepest first.
  std::vector<ir::NetId> candidates_;
  std::vector<int> fanout_count_;
  std::vector<int> level_;
};

// §4.4 helper, shared with the base heuristic under +P: how many learned
// clauses contain the literal (net = value)?
int relation_satisfaction(const ClauseDb& db, ir::NetId net, bool value);

}  // namespace rtlsat::core
