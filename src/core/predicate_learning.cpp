#include "core/predicate_learning.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "core/deduce.h"
#include "core/proof_log.h"
#include "ir/analysis.h"
#include "trace/trace.h"
#include "util/log.h"
#include "util/timer.h"

namespace rtlsat::core {

namespace {

using ir::NetId;
using ir::Node;
using ir::Op;

// One way of satisfying a probed gate value: a small conjunction of Boolean
// assignments applied one recursion level deeper (paper §2.3, Fig. 1).
struct Way {
  std::vector<std::pair<NetId, bool>> assignments;
};

// Enumerates the complete set of ways the driver gate of `b` can produce
// value `v`, given the current (post-probe) assignment. Fewer than two ways
// means there is no branching to learn from.
std::vector<Way> enumerate_ways(const ir::Circuit& circuit,
                                const prop::Engine& engine, NetId b, bool v) {
  const Node& n = circuit.node(b);
  std::vector<Way> ways;
  switch (n.op) {
    case Op::kOr:
    case Op::kAnd: {
      // OR at 1 / AND at 0: each free input set to the controlling value is
      // one way. An input already at the controlling value would make the
      // probe a direct implication — no branching left.
      const bool controlling = n.op == Op::kOr;
      if (v != controlling) return ways;
      for (NetId o : n.operands) {
        if (engine.bool_value(o) == (controlling ? 1 : 0)) return {};
      }
      for (NetId o : n.operands) {
        if (engine.bool_value(o) < 0) ways.push_back({{{o, controlling}}});
      }
      return ways;
    }
    case Op::kXor: {
      const NetId a = n.operands[0];
      const NetId c = n.operands[1];
      if (engine.bool_value(a) >= 0 || engine.bool_value(c) >= 0) return {};
      ways.push_back({{{a, false}, {c, v}}});
      ways.push_back({{{a, true}, {c, !v}}});
      return ways;
    }
    case Op::kMux: {
      if (n.width != 1) return {};
      const NetId sel = n.operands[0];
      if (engine.bool_value(sel) >= 0) return {};
      for (int arm = 0; arm < 2; ++arm) {
        const NetId branch = arm == 1 ? n.operands[1] : n.operands[2];
        const int cur = engine.bool_value(branch);
        if (cur >= 0 && cur != (v ? 1 : 0)) continue;  // statically dead arm
        Way way;
        way.assignments.push_back({sel, arm == 1});
        if (cur < 0) way.assignments.push_back({branch, v});
        ways.push_back(std::move(way));
      }
      return ways;
    }
    default:
      return ways;  // comparators/sources: no finite branching ways
  }
}

// Implications observed one level deep: Boolean assignments and data-path
// narrowings.
struct Implications {
  std::unordered_map<NetId, int> booleans;
  std::unordered_map<NetId, Interval> words;
};

Implications collect_level_implications(const prop::Engine& engine,
                                        std::uint32_t level) {
  Implications impl;
  const auto& trail = engine.trail();
  for (std::size_t i = trail.size(); i > 0; --i) {
    const prop::Event& ev = trail[i - 1];
    if (ev.level < level) break;  // levels are monotone along the trail
    if (engine.circuit().is_bool(ev.net)) {
      if (ev.cur.is_point())
        impl.booleans[ev.net] = static_cast<int>(ev.cur.lo());
    } else if (!impl.words.contains(ev.net)) {
      impl.words.emplace(ev.net, ev.cur);  // latest (tightest) wins
    }
  }
  return impl;
}

void intersect(Implications& common, const Implications& next) {
  std::erase_if(common.booleans, [&](const auto& kv) {
    auto it = next.booleans.find(kv.first);
    return it == next.booleans.end() || it->second != kv.second;
  });
  for (auto it = common.words.begin(); it != common.words.end();) {
    auto jt = next.words.find(it->first);
    if (jt == next.words.end()) {
      it = common.words.erase(it);
    } else {
      it->second = it->second.hull(jt->second);
      ++it;
    }
  }
}

// Canonical key for duplicate suppression across contrapositive probes.
std::string clause_key(const HybridClause& c) {
  std::vector<std::string> parts;
  for (const HybridLit& l : c.lits) {
    parts.push_back(std::to_string(l.net) + (l.is_bool ? "b" : "w") +
                    (l.positive ? "+" : "-") + std::to_string(l.interval.lo()) +
                    ":" + std::to_string(l.interval.hi()));
  }
  std::sort(parts.begin(), parts.end());
  std::string key;
  for (const auto& p : parts) key += p + "|";
  return key;
}

}  // namespace

PredicateLearningReport run_predicate_learning(
    prop::Engine& engine, ClauseDb& db, std::size_t* clause_cursor,
    const PredicateLearningOptions& options) {
  PredicateLearningReport report;
  Timer timer;
  if (options.max_relations <= 0) return report;
  RTLSAT_ASSERT(engine.level() == 0 && !engine.in_conflict());
  trace::Tracer* tracer =
      options.tracer != nullptr ? options.tracer : &trace::global();

  const ir::Circuit& circuit = engine.circuit();
  std::vector<NetId> candidates = ir::predicate_logic_cone(circuit);
  const auto level = ir::levelize(circuit);
  std::sort(candidates.begin(), candidates.end(), [&](NetId a, NetId b) {
    return level[a] != level[b] ? level[a] < level[b] : a < b;
  });

  std::set<std::string> seen_clauses;
  std::vector<HybridClause> pending;
  WordProofLogger* proof = options.proof;

  // Commits the clauses gathered during a probe once the engine is back at
  // level 0. Returns false when the instance is refuted outright.
  auto commit_pending = [&]() -> bool {
    RTLSAT_ASSERT(engine.level() == 0);
    for (HybridClause& c : pending) {
      const std::string key = clause_key(c);
      if (!seen_clauses.insert(key).second) continue;
      if (c.lits.size() == 1) {
        ++report.units_learned;
        tracer->record(trace::EventKind::kLearnedUnit, 0, c.lits[0].net,
                       c.lits[0].is_bool ? c.lits[0].interval.lo() : -1);
      } else {
        ++report.relations_learned;
        tracer->record(trace::EventKind::kLearnedRelation, 0,
                       static_cast<std::int64_t>(c.lits.size()),
                       c.lits[0].net);
      }
      const std::uint32_t id = db.add(std::move(c));
      if (proof != nullptr) proof->log_add_clause(id, db.clause(id).lits);
    }
    pending.clear();
    if (!deduce(engine, db, clause_cursor)) {
      if (proof != nullptr) proof->log_conflict0();
      report.proven_unsat = true;
      return false;
    }
    return true;
  };

  const auto stopped = [&options] {
    return options.stop != nullptr && options.stop->stop_requested();
  };

  for (NetId b : candidates) {
    if (report.relations_learned >= options.max_relations) break;
    if (stopped()) return report;  // partial report; committed clauses stand
    for (int v = 0; v <= 1; ++v) {
      if (report.relations_learned >= options.max_relations) break;
      if (engine.bool_value(b) >= 0) break;  // already fixed at level 0
      ++report.probes;

      // ---- probe: b = v, one level up.
      engine.push_level();
      const bool probe_ok =
          engine.narrow(b, Interval::point(v), prop::ReasonKind::kDecision) &&
          deduce(engine, db, clause_cursor);
      // Capture the probe replay (and, for a dead probe, its conflict)
      // while the level-1 trail is still live.
      if (proof != nullptr) proof->probe_begin(b, v != 0);
      if (!probe_ok) {
        engine.backtrack_to_level(0);
        pending.push_back(HybridClause{
            {HybridLit::boolean(b, v == 0)}, true,
            HybridClause::Origin::kPredicateLearning});
        if (proof != nullptr) proof->probe_commit(pending);
        if (!commit_pending()) return report;
        continue;
      }

      const std::vector<Way> ways = enumerate_ways(circuit, engine, b, v != 0);
      if (ways.size() >= 2) {
        Implications common;
        bool first = true;
        int feasible = 0;
        for (const Way& way : ways) {
          engine.push_level();
          bool ok = true;
          for (const auto& [net, val] : way.assignments) {
            if (!engine.narrow(net, Interval::point(val ? 1 : 0),
                               prop::ReasonKind::kDecision)) {
              ok = false;
              break;
            }
          }
          if (ok) ok = deduce(engine, db, clause_cursor);
          if (ok) {
            ++feasible;
            Implications impl = collect_level_implications(engine, 2);
            if (first) {
              common = std::move(impl);
              first = false;
            } else {
              intersect(common, impl);
            }
          }
          if (proof != nullptr) proof->probe_way(way.assignments);
          engine.backtrack_to_level(1);
        }

        if (feasible == 0) {
          // Every way conflicts ⟹ b = v is impossible.
          engine.backtrack_to_level(0);
          *clause_cursor = std::min(*clause_cursor, engine.trail().size());
          pending.push_back(HybridClause{
              {HybridLit::boolean(b, v == 0)}, true,
              HybridClause::Origin::kPredicateLearning});
          if (proof != nullptr) proof->probe_commit(pending);
          if (!commit_pending()) return report;
          continue;
        }

        const HybridLit antecedent = HybridLit::boolean(b, v == 0);  // ¬(b=v)
        for (const auto& [net, val] : common.booleans) {
          if (net == b) continue;
          if (engine.bool_value(net) >= 0) continue;  // direct implication
          HybridClause c;
          c.learnt = true;
          c.origin = HybridClause::Origin::kPredicateLearning;
          c.lits = {antecedent, HybridLit::boolean(net, val != 0)};
          pending.push_back(std::move(c));
        }
        if (options.learn_word_relations) {
          for (const auto& [net, hull] : common.words) {
            if (engine.interval(net).contains(hull) &&
                hull.contains(engine.interval(net)))
              continue;  // equal to the probe-state interval: no news
            if (hull.contains(engine.interval(net))) continue;  // weaker
            HybridClause c;
            c.learnt = true;
            c.origin = HybridClause::Origin::kPredicateLearning;
            c.lits = {antecedent, HybridLit::word_in(net, hull)};
            pending.push_back(std::move(c));
          }
        }
      }

      engine.backtrack_to_level(0);
      if (proof != nullptr) proof->probe_commit(pending);
      if (!commit_pending()) return report;
    }
  }

  if (options.word_probing) {
    // §6-style extension: bisect word domains and keep what both halves
    // agree on. Candidates are the word nets feeding the predicates
    // (comparator operands and mux branches in the predicate cone).
    std::vector<NetId> word_candidates;
    for (const auto& p : ir::extract_predicates(circuit)) {
      for (const NetId o : circuit.node(p.net).operands) {
        if (!circuit.is_bool(o) && !ir::is_source(circuit.node(o).op))
          word_candidates.push_back(o);
      }
    }
    std::sort(word_candidates.begin(), word_candidates.end());
    word_candidates.erase(
        std::unique(word_candidates.begin(), word_candidates.end()),
        word_candidates.end());
    int probes_left = options.max_word_probes;

    for (const NetId w : word_candidates) {
      if (probes_left-- <= 0) break;
      if (stopped()) return report;  // partial report; committed clauses stand
      const Interval dom = engine.interval(w);
      if (dom.count() < 2) continue;
      ++report.probes;
      const Interval::Value mid =
          dom.lo() + static_cast<Interval::Value>(dom.count() / 2) - 1;

      if (proof != nullptr) proof->wprobe_begin(w);
      Implications common;
      int feasible = 0;
      bool first = true;
      for (const Interval half :
           {Interval(dom.lo(), mid), Interval(mid + 1, dom.hi())}) {
        engine.push_level();
        bool ok = engine.narrow(w, half, prop::ReasonKind::kDecision) &&
                  deduce(engine, db, clause_cursor);
        if (ok) {
          ++feasible;
          Implications impl = collect_level_implications(engine, 1);
          if (first) {
            common = std::move(impl);
            first = false;
          } else {
            intersect(common, impl);
          }
        }
        if (proof != nullptr) proof->wprobe_case(half);
        engine.backtrack_to_level(0);
      }
      if (feasible == 0) {
        // Both halves of a full domain conflict: the record itself is the
        // refutation (no engine conflict survives the rollbacks).
        if (proof != nullptr) proof->wprobe_commit({}, /*refuted=*/true);
        report.proven_unsat = true;
        return report;
      }
      if (feasible < 2) continue;  // one half dead: conservatively skip

      for (const auto& [net, val] : common.booleans) {
        if (engine.bool_value(net) >= 0) continue;
        pending.push_back(HybridClause{{HybridLit::boolean(net, val != 0)},
                                       true,
                                       HybridClause::Origin::kPredicateLearning});
      }
      for (const auto& [net, hull] : common.words) {
        if (net == w) continue;
        if (hull.contains(engine.interval(net))) continue;  // no news
        pending.push_back(HybridClause{{HybridLit::word_in(net, hull)},
                                       true,
                                       HybridClause::Origin::kPredicateLearning});
      }
      if (proof != nullptr) proof->wprobe_commit(pending, /*refuted=*/false);
      if (!commit_pending()) return report;
    }
  }

  report.seconds = timer.seconds();
  RTLSAT_DEBUG("predicate learning: %d relations, %d units, %d probes, %.3fs",
               report.relations_learned, report.units_learned, report.probes,
               report.seconds);
  return report;
}

}  // namespace rtlsat::core
