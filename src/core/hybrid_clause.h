// Hybrid clauses (paper §2.1): disjunctions of Boolean literals and word
// literals.
//
// A Boolean literal (net, polarity) is true when the 1-bit net is assigned
// `polarity`. A word literal pairs a word net with an interval b:
//   positive {w, b}:  true when w's values all lie in b,
//   negative {w, b}̄:  true when w's values all lie in D(w)\b.
// Under a partial assignment (the net's current interval I) a literal can
// also be *unknown*; the clause propagation rules in clause_db.cpp exploit
// the usual watched/unit structure over this three-valued evaluation.
#pragma once

#include <string>
#include <vector>

#include "interval/interval.h"
#include "ir/circuit.h"
#include "prop/engine.h"

namespace rtlsat::core {

enum class LitValue { kTrue, kFalse, kUnknown };

struct HybridLit {
  ir::NetId net = ir::kNoNet;
  // For a Boolean literal `interval` is the satisfying point ⟨v,v⟩ with
  // positive == true; word literals use the paper's positive/negative pair
  // semantics.
  Interval interval;
  bool positive = true;
  bool is_bool = false;

  static HybridLit boolean(ir::NetId net, bool value) {
    HybridLit l;
    l.net = net;
    l.interval = Interval::point(value ? 1 : 0);
    l.positive = true;
    l.is_bool = true;
    return l;
  }
  static HybridLit word_in(ir::NetId net, const Interval& b) {
    HybridLit l;
    l.net = net;
    l.interval = b;
    l.positive = true;
    return l;
  }
  static HybridLit word_not_in(ir::NetId net, const Interval& b) {
    HybridLit l = word_in(net, b);
    l.positive = false;
    return l;
  }

  // Evaluate against the net's current interval.
  LitValue value(const Interval& current) const;

  // The interval to impose on the net when this literal is implied by unit
  // propagation (intersection target for positive; subtraction for
  // negative — Interval::minus handles the representable cases).
  Interval implied_interval(const Interval& current) const;

  std::string to_string(const ir::Circuit& circuit) const;
};

struct HybridClause {
  std::vector<HybridLit> lits;
  bool learnt = false;
  // Where the clause came from — for the experiment reporting. kShared
  // marks clauses imported from a portfolio peer's export stream.
  enum class Origin {
    kProblem,
    kConflict,
    kPredicateLearning,
    kJustification,
    kShared
  };
  Origin origin = Origin::kProblem;
  // Portfolio provenance, stamped by the clause pool at publish time: the
  // exporting worker's id and its position in the pool's publication order.
  // −1 until the clause passes through the pool. Certificates and the
  // portfolio report use these to attribute kShared imports to their
  // exporter.
  int shared_from = -1;
  std::int64_t shared_seq = -1;
  // Database-management state (learnt clauses only).
  double activity = 0;
  bool deleted = false;

  std::string to_string(const ir::Circuit& circuit) const;
};

}  // namespace rtlsat::core
