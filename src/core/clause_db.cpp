#include "core/clause_db.h"

#include <algorithm>

namespace rtlsat::core {

namespace {

LitValue lit_value(const HybridLit& l, const prop::Engine& engine) {
  return l.value(engine.interval(l.net));
}

}  // namespace

std::uint32_t ClauseDb::add(HybridClause clause) {
  RTLSAT_ASSERT(!clause.lits.empty());
  for (const HybridLit& l : clause.lits) {
    RTLSAT_ASSERT_MSG(l.net < watchers_.size(),
                      "clause references a net created after this ClauseDb; "
                      "the circuit must be frozen first");
  }
  const std::uint32_t id = static_cast<std::uint32_t>(clauses_.size());
  for (const HybridLit& l : clause.lits) {
    occurrences_[l.net].push_back(id);
    ++net_weight_[l.net];
    if (clause.learnt && l.is_bool)
      ++literal_weight_[l.net][l.interval.lo() == 1 ? 1 : 0];
  }
  if (clause.learnt) ++learnt_count_;
  clauses_.push_back(std::move(clause));
  lits_heap_bytes_ += static_cast<std::int64_t>(
      clauses_.back().lits.capacity() * sizeof(HybridLit));
  watch_idx_.push_back({0, 0});
  fresh_.push_back(id);
  return id;
}

void ClauseDb::watch(std::uint32_t id, std::size_t lit_index) {
  watchers_[clauses_[id].lits[lit_index].net].push_back(id);
}

// Full examination for a clause entering the database: records watches and
// performs the initial implication/conflict if the clause is already unit
// or false under the current domains.
bool ClauseDb::apply_clause_full(std::uint32_t id, prop::Engine& engine) {
  const HybridClause& c = clauses_[id];
  RTLSAT_ASSERT_MSG(!c.deleted && !c.lits.empty(),
                    "propagating a deleted clause");
  if (c.lits.size() == 1) {
    watch_idx_[id] = {0, 0};
    watch(id, 0);
    switch (lit_value(c.lits[0], engine)) {
      case LitValue::kTrue: return true;
      case LitValue::kFalse: return imply_or_conflict(id, 0, true, engine);
      case LitValue::kUnknown: return imply_or_conflict(id, 0, false, engine);
    }
  }

  // Pick watches: prefer non-false literals; among false ones prefer the
  // latest-falsified (their events are undone first on backtrack, which is
  // what keeps the watch invariant alive for clauses added while false).
  std::size_t non_false[2] = {SIZE_MAX, SIZE_MAX};
  std::size_t true_lit = SIZE_MAX;
  std::size_t latest_false[2] = {SIZE_MAX, SIZE_MAX};
  std::int32_t latest_events[2] = {-1, -1};
  for (std::size_t i = 0; i < c.lits.size(); ++i) {
    switch (lit_value(c.lits[i], engine)) {
      case LitValue::kTrue:
        if (true_lit == SIZE_MAX) true_lit = i;
        [[fallthrough]];
      case LitValue::kUnknown:
        if (non_false[0] == SIZE_MAX) {
          non_false[0] = i;
        } else if (non_false[1] == SIZE_MAX) {
          non_false[1] = i;
        }
        break;
      case LitValue::kFalse: {
        const std::int32_t ev = engine.latest_event(c.lits[i].net);
        if (ev > latest_events[0]) {
          latest_events[1] = latest_events[0];
          latest_false[1] = latest_false[0];
          latest_events[0] = ev;
          latest_false[0] = i;
        } else if (ev > latest_events[1]) {
          latest_events[1] = ev;
          latest_false[1] = i;
        }
        break;
      }
    }
  }

  auto pick = [&](std::size_t preferred, std::size_t fallback) {
    return preferred != SIZE_MAX ? preferred : fallback;
  };
  std::size_t w0, w1;
  if (non_false[1] != SIZE_MAX) {  // ≥ 2 non-false: plain watch pair
    w0 = non_false[0];
    w1 = non_false[1];
  } else if (non_false[0] != SIZE_MAX) {  // unit
    w0 = non_false[0];
    w1 = pick(latest_false[0], w0);
  } else {  // conflicting
    w0 = latest_false[0];
    w1 = pick(latest_false[1], w0);
  }
  watch_idx_[id] = {static_cast<std::uint32_t>(w0),
                    static_cast<std::uint32_t>(w1)};
  watch(id, w0);
  if (w1 != w0) watch(id, w1);

  if (non_false[1] != SIZE_MAX || true_lit != SIZE_MAX) return true;
  if (non_false[0] != SIZE_MAX)
    return imply_or_conflict(id, non_false[0], false, engine);
  return imply_or_conflict(id, 0, true, engine);
}

bool ClauseDb::imply_or_conflict(std::uint32_t id, std::size_t unit_index,
                                 bool conflicting, prop::Engine& engine) {
  HybridClause& c = clauses_[id];
  if (c.learnt) {
    c.activity += activity_increment_;
    if (c.activity > 1e20) {
      for (HybridClause& cl : clauses_) {
        if (cl.learnt) cl.activity *= 1e-20;
      }
      activity_increment_ *= 1e-20;
    }
  }
  std::vector<std::int32_t> antecedents;
  for (std::size_t i = 0; i < c.lits.size(); ++i) {
    if (!conflicting && i == unit_index) continue;
    const std::int32_t e = engine.latest_event(c.lits[i].net);
    if (e >= 0) antecedents.push_back(e);
  }
  if (conflicting) {
    prop::Conflict conflict;
    conflict.kind = prop::ReasonKind::kClause;
    conflict.reason_id = id;
    conflict.antecedents = std::move(antecedents);
    engine.fail(std::move(conflict));
    return false;
  }
  const HybridLit& unit = c.lits[unit_index];
  const Interval target = unit.implied_interval(engine.interval(unit.net));
  // A negative word literal whose complement is not interval-representable
  // cannot be imposed; the clause stays pending (sound, merely lazier).
  if (target == engine.interval(unit.net)) return true;
  return engine.narrow(unit.net, target, prop::ReasonKind::kClause, id,
                       std::move(antecedents));
}

bool ClauseDb::on_watched_event(std::uint32_t id, ir::NetId net,
                                prop::Engine& engine, bool* keep_watch) {
  HybridClause& c = clauses_[id];
  auto& w = watch_idx_[id];
  *keep_watch = true;
  if (c.deleted) {
    *keep_watch = false;  // lazily unhook reduced clauses
    return true;
  }
  if (c.lits[w[0]].net != net && c.lits[w[1]].net != net) {
    *keep_watch = false;  // stale entry left behind by a moved watch
    return true;
  }
  // Satisfied through a watched literal: nothing to do.
  if (lit_value(c.lits[w[0]], engine) == LitValue::kTrue ||
      lit_value(c.lits[w[1]], engine) == LitValue::kTrue) {
    return true;
  }

  for (int s = 0; s < 2; ++s) {
    const std::uint32_t wi = w[s];
    if (c.lits[wi].net != net) continue;
    if (lit_value(c.lits[wi], engine) != LitValue::kFalse) continue;
    // Try to move this watch to a non-false, unwatched literal.
    std::size_t replacement = SIZE_MAX;
    for (std::size_t i = 0; i < c.lits.size(); ++i) {
      if (i == w[0] || i == w[1]) continue;
      if (lit_value(c.lits[i], engine) != LitValue::kFalse) {
        replacement = i;
        break;
      }
    }
    if (replacement != SIZE_MAX) {
      w[s] = static_cast<std::uint32_t>(replacement);
      watch(id, replacement);
      continue;
    }
    // No replacement: unit on the other watch, or conflicting.
    const std::uint32_t other = w[1 - s];
    const LitValue v = other == wi ? LitValue::kFalse
                                   : lit_value(c.lits[other], engine);
    if (v == LitValue::kFalse)
      return imply_or_conflict(id, 0, /*conflicting=*/true, engine);
    if (!imply_or_conflict(id, other, /*conflicting=*/false, engine))
      return false;
  }
  *keep_watch = c.lits[w[0]].net == net || c.lits[w[1]].net == net;
  return true;
}

std::size_t ClauseDb::reduce(const prop::Engine& engine) {
  // Clauses currently acting as implication reasons must survive: conflict
  // analysis dereferences them through the trail. Clauses still awaiting
  // their first propagation (fresh — typically the clause just learned
  // from the current conflict) must survive too: deleting them would lose
  // the asserting implication and leave dangling watch setup.
  std::vector<bool> locked(clauses_.size(), false);
  for (const prop::Event& ev : engine.trail()) {
    if (ev.kind == prop::ReasonKind::kClause) locked[ev.reason_id] = true;
  }
  for (const std::uint32_t id : fresh_) locked[id] = true;
  std::vector<std::uint32_t> candidates;
  for (std::uint32_t id = 0; id < clauses_.size(); ++id) {
    const HybridClause& c = clauses_[id];
    if (c.learnt && !c.deleted && !locked[id] && c.lits.size() > 2)
      candidates.push_back(id);
  }
  std::sort(candidates.begin(), candidates.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return clauses_[a].activity < clauses_[b].activity;
            });
  std::size_t deleted = 0;
  for (std::size_t i = 0; i < candidates.size() / 2; ++i) {
    HybridClause& c = clauses_[candidates[i]];
    for (const HybridLit& l : c.lits) {
      --net_weight_[l.net];
      if (l.is_bool) --literal_weight_[l.net][l.interval.lo() == 1 ? 1 : 0];
    }
    lits_heap_bytes_ -=
        static_cast<std::int64_t>(c.lits.capacity() * sizeof(HybridLit));
    c.deleted = true;
    c.lits.clear();
    c.lits.shrink_to_fit();
    --learnt_count_;
    ++deleted;
  }
  return deleted;
}

bool ClauseDb::propagate(prop::Engine& engine, std::size_t* cursor) {
  // Rewind past any events undone by engine rollbacks since the last call.
  *cursor = std::min(*cursor, engine.consume_trail_low_water());

  // Clauses added since the last call get their watches and initial check.
  while (!fresh_.empty()) {
    const std::uint32_t id = fresh_.back();
    fresh_.pop_back();
    if (!apply_clause_full(id, engine)) return false;
  }

  const auto& trail = engine.trail();
  while (*cursor < trail.size()) {
    const ir::NetId net = trail[*cursor].net;
    ++*cursor;
    auto& wlist = watchers_[net];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < wlist.size(); ++i) {
      const std::uint32_t id = wlist[i];
      bool keep_watch = true;
      const bool ok = on_watched_event(id, net, engine, &keep_watch);
      if (keep_watch) wlist[keep++] = id;
      if (!ok) {
        for (std::size_t j = i + 1; j < wlist.size(); ++j)
          wlist[keep++] = wlist[j];
        wlist.resize(keep);
        return false;
      }
    }
    wlist.resize(keep);
  }
  return true;
}

}  // namespace rtlsat::core
