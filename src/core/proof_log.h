// Word-level proof logger: the bridge between the HDPLL solver's internal
// objects (trail events, hybrid clauses, the arithmetic end-game capture)
// and the primitive JSONL certificate records of src/proof.
//
// The logger is pull-free: the solver calls a hook at each proof-relevant
// moment, always *before* backtracking destroys the trail the record needs.
// Level-0 narrowings are scraped lazily — every record emission first syncs
// the engine's level-0 trail prefix into narrow0 records, so the checker's
// root state tracks the solver's without per-event instrumentation. When no
// logger is installed the solver's hooks are single null-pointer tests.
//
// Records that need a clause id before it exists (a learned clause is
// justified by a trail that backtracking erases, but its id is assigned by
// ClauseDb::add after the backtrack) are staged: capture_*() while the
// trail is live, commit_*() once the id is known.
#pragma once

#include <cstdint>
#include <vector>

#include "core/analyze.h"
#include "core/arith_check.h"
#include "core/clause_db.h"
#include "proof/word_writer.h"
#include "prop/engine.h"

namespace rtlsat::core {

class WordProofLogger {
 public:
  WordProofLogger(const prop::Engine& engine, proof::WordCertWriter* writer);

  // Header, net declarations (in id order), and assumption records. Call
  // before the solver narrows anything.
  void begin(const std::vector<std::pair<ir::NetId, Interval>>& assumptions);
  // Final level-0 sync plus the end record. verdict: "sat", "unsat",
  // "timeout", "cancelled".
  void finish(const char* verdict);

  // Level-0 refutation from the engine's current conflict (assumption
  // application, a root deduce() failure, or a root conflict in search).
  void log_conflict0();

  // Conflict-clause learning: capture the premise replay and terminal
  // conflict while the trail still holds them; commit with the database id
  // (or −1 for the empty clause) after ClauseDb::add.
  void capture_learn(const AnalysisResult& analysis);
  void commit_learn(std::int64_t clause_id);

  // Arithmetic end-game refutation at level ≥ 1: capture the decision-level
  // trail replay and the FME sub-certificate before the backtrack, commit
  // with the cut clause once added.
  void capture_cut(const ArithCertCapture& capture);
  void commit_cut(std::int64_t clause_id, const std::vector<HybridLit>& lits);
  // Level-0 arithmetic refutation: the whole instance is UNSAT.
  void log_fme0(const ArithCertCapture& capture);

  // Predicate-learning probes (§3 recursive learning). probe_begin captures
  // the probe-level replay (and its conflict, for dead probes) with the
  // engine still at probe level; each probe_way captures one recursion
  // branch before its rollback; probe_commit emits the record justifying
  // `clauses` (no record when there is nothing to justify).
  void probe_begin(ir::NetId net, bool value);
  void probe_way(const std::vector<std::pair<ir::NetId, bool>>& assignments);
  void probe_commit(const std::vector<HybridClause>& clauses);
  // Word-interval probe (domain bisection): analogous, one case per half.
  void wprobe_begin(ir::NetId net);
  void wprobe_case(const Interval& half);
  // `refuted`: both halves conflicted — the record itself proves UNSAT and
  // is emitted even with no clauses.
  void wprobe_commit(const std::vector<HybridClause>& clauses, bool refuted);

  // Database additions of previously justified clauses (predicate
  // learning), portfolio imports, and reduction deletions (scan: every
  // clause newly marked deleted since the last call gets a delc record).
  void log_add_clause(std::int64_t id, const std::vector<HybridLit>& lits);
  void log_import(std::int64_t id, int worker, std::int64_t seq,
                  const std::vector<HybridLit>& lits);
  void log_deletions(const ClauseDb& db);

  // FME refutations the certifier could not reconstruct (caps exceeded);
  // the record is still emitted and the checker will reject it, so this is
  // the producer-side observability for incomplete certificates.
  std::int64_t fme_certify_failures() const { return fme_certify_failures_; }

 private:
  void sync_level0();
  // Trail events at `level` or deeper, in trail order, as replay steps.
  std::vector<proof::WordStep> steps_at_or_above(std::uint32_t level) const;
  proof::WordConflict engine_conflict() const;
  proof::FmeCert build_fme_cert(const ArithCertCapture& capture);

  const prop::Engine& engine_;
  proof::WordCertWriter* writer_;
  std::size_t level0_cursor_ = 0;
  std::vector<bool> deletion_logged_;

  std::vector<proof::WordLit> learn_lits_;
  std::vector<proof::WordStep> learn_steps_;
  proof::WordConflict learn_conf_;

  std::vector<proof::WordStep> cut_steps_;
  proof::FmeCert cut_fme_;

  std::uint32_t probe_net_ = 0;
  std::int64_t probe_val_ = 0;
  std::vector<proof::WordStep> probe_steps_;
  proof::WordConflict probe_conf_;
  std::vector<proof::ProbeWay> probe_ways_;
  std::uint32_t wprobe_net_ = 0;
  std::vector<proof::ProbeCase> wprobe_cases_;

  std::int64_t fme_certify_failures_ = 0;
};

}  // namespace rtlsat::core
