// Clause-sharing hook between cooperating solver instances.
//
// A portfolio (src/portfolio) hands each HdpllSolver an exchange endpoint.
// The solver *offers* clauses it proved — learned conflict clauses and the
// §3 predicate relations, both consequences of the problem formula alone,
// so they are sound in every peer working on the same formula — and
// *collects* peers' clauses at restart boundaries, where the trail is back
// at level 0 and new clauses can be attached without disturbing watched
// invariants mid-branch.
//
// Threading contract: offer() and collect() are called only from the thread
// that owns the solver. An implementation shared between workers (the
// portfolio's clause pool) must synchronise internally; the solver itself
// stays single-threaded.
#pragma once

#include <vector>

#include "core/hybrid_clause.h"

namespace rtlsat::core {

class ClauseExchange {
 public:
  virtual ~ClauseExchange() = default;

  // Offers a clause proved by this solver. Returns true when the exchange
  // accepted it (length/duplicate/capacity policy is the implementation's);
  // the solver uses the result only for its export counter.
  virtual bool offer(const HybridClause& clause) = 0;

  // Appends clauses proved by peers since the previous collect(). The
  // caller imports them with origin kShared; an implementation must never
  // hand a solver back its own offers.
  virtual void collect(std::vector<HybridClause>* out) = 0;

  // Publishes any offers the implementation is still batching locally. The
  // solver calls this once when a solve finishes, so a worker that never
  // restarted (or ended mid-batch) still contributes its tail of clauses.
  virtual void flush() {}
};

}  // namespace rtlsat::core
