// GraphViz rendering of the hybrid implication graph (paper §2.4): each
// trail event is a node labelled with its narrowing and decision level;
// edges run from antecedent events to their consequences. Decision and
// assumption events are highlighted; a recorded conflict is drawn as a
// terminal node. A debugging aid for solver development and teaching.
#pragma once

#include <string>

#include "prop/engine.h"

namespace rtlsat::core {

std::string implication_graph_dot(const prop::Engine& engine);

}  // namespace rtlsat::core
