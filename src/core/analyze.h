// Conflict analysis on the hybrid implication graph (paper §2.4).
//
// Given the engine's recorded conflict, walks the trail backwards from the
// conflicting antecedents, resolving implication events into their own
// antecedents until a cut of the implication graph remains: Boolean
// assignments and (optionally) word narrowings whose conjunction was
// sufficient for the conflict. The negation of that cut is the learned
// hybrid clause (Σ of Boolean literals and negative word literals), plus
// the non-chronological backtrack level that makes the clause asserting.
//
// The cut construction is first-UIP: events at the conflicting decision
// level are resolved until a single one remains, which becomes the
// asserting literal.
#pragma once

#include "core/hybrid_clause.h"
#include "prop/engine.h"

namespace rtlsat::core {

struct AnalyzeOptions {
  // Emit negative word literals for data-path narrowings below the current
  // decision level instead of resolving them away into Boolean causes —
  // the hybrid-clause learning of [9]. Off ⟹ learned clauses are purely
  // Boolean (ablation).
  bool hybrid_word_literals = true;
  // Record the trail indices of every event resolved into its antecedents
  // (AnalysisResult::premises) — the interior of the implication-graph cut.
  // Proof logging replays exactly these events, in trail order, to justify
  // the learned clause; off by default so analysis stays allocation-lean.
  bool record_premises = false;
};

struct AnalysisResult {
  // True when the conflict does not depend on any decision: the instance
  // is UNSAT.
  bool empty_clause = false;
  // lits[0] is the asserting literal.
  HybridClause clause;
  std::uint32_t backtrack_level = 0;
  // Implication-graph events resolved into their antecedents while building
  // the cut — a proxy for analysis effort, fed to the observability layer.
  int resolutions = 0;
  // When AnalyzeOptions::record_premises: the resolved events' trail
  // indices in ascending (replay) order. Assuming the learned clause false
  // and re-deriving these events bottom-up reproduces the conflict.
  std::vector<std::int32_t> premises;
};

AnalysisResult analyze_conflict(const prop::Engine& engine,
                                const AnalyzeOptions& options = {});

}  // namespace rtlsat::core
