// Database of hybrid clauses with two-watched-literal unit propagation
// over interval domains.
//
// Each clause watches two of its literals; a clause is re-examined only
// when an engine event narrows the net under a watch. The classic watch
// invariant carries over to interval literals because literal truth is
// monotone along the trail (narrowing can only move a literal
// unknown→false or unknown→true; backtracking only reverses that), so —
// exactly as in a Boolean CDCL solver — a clause can never *become* unit
// or conflicting without an event on a watched net, provided events are
// processed in trail order.
//
// A clause whose literals are all false raises a conflict; a clause with
// one non-false literal left implies it (for word literals, by narrowing
// the net to the literal's implied interval — a negative literal whose
// complement is not interval-representable stays pending, which is sound,
// merely lazier). Implications are pushed into the prop::Engine with
// ReasonKind::kClause so they participate in the hybrid implication graph
// like any circuit implication (paper §2.4).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/hybrid_clause.h"
#include "prop/engine.h"

namespace rtlsat::core {

class ClauseDb {
 public:
  explicit ClauseDb(const ir::Circuit& circuit)
      : watchers_(circuit.num_nets()),
        occurrences_(circuit.num_nets()),
        net_weight_(circuit.num_nets(), 0),
        literal_weight_(circuit.num_nets(), {0, 0}) {}

  std::uint32_t add(HybridClause clause);

  // Adopts nets appended to the circuit since construction: extends the
  // per-net watch/occurrence/weight tables. Existing clauses and watches
  // are untouched (the circuit is append-only, so old ids keep meaning).
  void sync_circuit(const ir::Circuit& circuit) {
    watchers_.resize(circuit.num_nets());
    occurrences_.resize(circuit.num_nets());
    net_weight_.resize(circuit.num_nets(), 0);
    literal_weight_.resize(circuit.num_nets(), {0, 0});
  }

  const HybridClause& clause(std::uint32_t id) const { return clauses_[id]; }
  std::size_t size() const { return clauses_.size(); }
  std::size_t learnt_count() const { return learnt_count_; }

  // Runs clause unit propagation against the engine's current domains.
  // `cursor` tracks how much of the engine trail this db has already
  // processed; rollbacks are rewound via the engine's trail low-water
  // mark. Newly added clauses are checked on their first propagate().
  // Returns false when a conflict was raised.
  bool propagate(prop::Engine& engine, std::size_t* cursor);

  // Number of clauses each net occurs in — the decision heuristic's
  // learned-clause weight (§2.4, §3 step 5).
  int net_weight(ir::NetId net) const { return net_weight_[net]; }

  // Number of learnt clauses containing the Boolean literal (net = value) —
  // the §4.4 value-choice weight. Maintained incrementally so the decision
  // loop reads it in O(1).
  int bool_literal_weight(ir::NetId net, bool value) const {
    return literal_weight_[net][value ? 1 : 0];
  }

  // Ids of the clauses mentioning a net.
  const std::vector<std::uint32_t>& occurrences(ir::NetId net) const {
    return occurrences_[net];
  }

  const std::vector<HybridClause>& all() const { return clauses_; }

  // Introspection for the invariant verifier (core/selfcheck.h): the two
  // watched literal indices of a clause, the (lazily pruned, so possibly
  // stale-containing) watcher list of a net, and whether clauses are still
  // awaiting their first propagate().
  const std::array<std::uint32_t, 2>& watch_pair(std::uint32_t id) const {
    return watch_idx_[id];
  }
  const std::vector<std::uint32_t>& watch_list(ir::NetId net) const {
    return watchers_[net];
  }
  bool fresh_pending() const { return !fresh_.empty(); }

  // Learnt-clause database reduction: deletes the least-active half of the
  // long (> 2 literal) learnt clauses, keeping any clause that is the
  // reason of a current trail implication. Deleted clauses are dropped
  // lazily from the watch lists. Returns the number deleted.
  std::size_t reduce(const prop::Engine& engine);

  // Age-based activity: bumped whenever a clause implies or conflicts;
  // the solver decays the increment once per conflict (EVSIDS-style).
  void decay_clause_activity(double factor) { activity_increment_ /= factor; }

  // Instrumented heap accounting for the metrics sampler (O(1) read): the
  // clause vector plus the literal arrays, maintained incrementally by
  // add() and reduce(). Watch/occurrence lists are deliberately excluded —
  // they are index vectors proportional to the same literal count and
  // would double-count the trend without changing its shape.
  std::int64_t memory_bytes() const {
    return static_cast<std::int64_t>(clauses_.capacity() *
                                     sizeof(HybridClause)) +
           lits_heap_bytes_;
  }

 private:
  // Full (non-watched) examination used for fresh clauses and as the slow
  // path: finds a satisfied literal or implies/conflicts. Returns false on
  // conflict.
  bool apply_clause_full(std::uint32_t id, prop::Engine& engine);
  // Watched-path handler for one clause triggered by an event on `net`.
  // Returns false on conflict. Sets *keep_watch when the clause should stay
  // in net's watcher list.
  bool on_watched_event(std::uint32_t id, ir::NetId net, prop::Engine& engine,
                        bool* keep_watch);
  bool imply_or_conflict(std::uint32_t id, std::size_t unit_index,
                         bool conflicting, prop::Engine& engine);
  void watch(std::uint32_t id, std::size_t lit_index);
  void set_initial_watches(std::uint32_t id, const prop::Engine& engine);

  std::vector<HybridClause> clauses_;
  // Two watched literal indices per clause (equal for unit clauses).
  std::vector<std::array<std::uint32_t, 2>> watch_idx_;
  std::vector<std::vector<std::uint32_t>> watchers_;  // by net
  std::vector<std::vector<std::uint32_t>> occurrences_;
  std::vector<int> net_weight_;
  std::vector<std::array<int, 2>> literal_weight_;
  std::vector<std::uint32_t> fresh_;  // added but not yet propagated
  std::size_t learnt_count_ = 0;
  std::int64_t lits_heap_bytes_ = 0;
  double activity_increment_ = 1.0;
};

}  // namespace rtlsat::core
