#include "core/analyze.h"

#include <algorithm>
#include <queue>

#include "util/assert.h"

namespace rtlsat::core {

namespace {

// A literal pending inclusion, tagged with the level of the event that
// produced it so the backtrack level can be computed.
struct TaggedLit {
  HybridLit lit;
  std::uint32_t level = 0;
};

HybridLit negate_event(const prop::Event& ev, bool is_bool_net) {
  if (is_bool_net && ev.cur.is_point()) {
    return HybridLit::boolean(ev.net, ev.cur.lo() == 0);  // ¬(net = v)
  }
  // The event asserted net ∈ cur; its negation is the negative word
  // literal {net, cur}̄ of §2.1.
  return HybridLit::word_not_in(ev.net, ev.cur);
}

}  // namespace

AnalysisResult analyze_conflict(const prop::Engine& engine,
                                const AnalyzeOptions& options) {
  RTLSAT_ASSERT(engine.in_conflict());
  const auto& trail = engine.trail();
  const std::uint32_t current = engine.level();
  const ir::Circuit& circuit = engine.circuit();

  std::priority_queue<std::int32_t> pending;
  std::vector<bool> enqueued(trail.size(), false);
  auto push = [&](std::int32_t e) {
    if (e >= 0 && !enqueued[static_cast<std::size_t>(e)]) {
      enqueued[static_cast<std::size_t>(e)] = true;
      pending.push(e);
    }
  };
  int resolutions = 0;
  std::vector<std::int32_t> premises;
  auto expand = [&](std::int32_t e) {
    ++resolutions;
    if (options.record_premises) premises.push_back(e);
    for (std::int32_t a : engine.all_antecedents(e)) push(a);
  };

  for (std::int32_t e : engine.conflict().antecedents) push(e);

  std::vector<TaggedLit> collected;
  // Per-net dedup: events on one net are nested along the trail, so the
  // first literal emitted for a net (highest trail index ⟹ tightest
  // interval) subsumes the rest of that net's chain.
  std::vector<bool> net_done(circuit.num_nets(), false);
  auto emit = [&](const prop::Event& ev) {
    if (net_done[ev.net]) return;
    net_done[ev.net] = true;
    collected.push_back({negate_event(ev, circuit.is_bool(ev.net)), ev.level});
  };

  bool asserting_found = false;
  while (!pending.empty()) {
    const std::int32_t e = pending.top();
    pending.pop();
    const prop::Event& ev = trail[static_cast<std::size_t>(e)];
    if (ev.level == 0) continue;  // universal facts drop out of the cut

    if (ev.level == current && !asserting_found) {
      const bool more_at_current =
          !pending.empty() &&
          trail[static_cast<std::size_t>(pending.top())].level == current;
      const bool bool_point = circuit.is_bool(ev.net) && ev.cur.is_point();
      if (more_at_current || !bool_point) {
        // Resolve towards the unique implication point. Data-path events
        // are always resolved here: the asserting literal must be Boolean
        // so the learned clause is guaranteed to flip something after
        // backtracking (a negative word literal may have an
        // unrepresentable complement). Resolution terminates at the
        // decision event, which is Boolean.
        expand(e);
      } else {
        emit(ev);  // first UIP: the lone remaining current-level event
        asserting_found = true;
      }
      continue;
    }

    // Below the current level (or trailing current-level events reached
    // after the UIP, which can only happen for redundant chains): keep
    // Boolean assignments as literals; data-path narrowings become word
    // literals when hybrid learning is on, else resolve them away.
    const bool is_bool = circuit.is_bool(ev.net);
    if (is_bool && ev.cur.is_point()) {
      emit(ev);
    } else if (options.hybrid_word_literals) {
      emit(ev);
    } else if (ev.kind == prop::ReasonKind::kDecision ||
               ev.kind == prop::ReasonKind::kAssumption) {
      emit(ev);  // nothing upstream to resolve into
    } else {
      expand(e);
    }
  }

  AnalysisResult result;
  result.resolutions = resolutions;
  if (options.record_premises) {
    // The max-heap pops descending; replay wants trail order.
    std::sort(premises.begin(), premises.end());
    result.premises = std::move(premises);
  }
  if (collected.empty()) {
    result.empty_clause = true;
    return result;
  }

  // Asserting literal = the one from the highest level; backtrack level =
  // the highest level among the rest.
  std::size_t top = 0;
  for (std::size_t i = 1; i < collected.size(); ++i) {
    if (collected[i].level > collected[top].level) top = i;
  }
  std::swap(collected[0], collected[top]);
  std::uint32_t bt = 0;
  for (std::size_t i = 1; i < collected.size(); ++i)
    bt = std::max(bt, collected[i].level);

  result.clause.learnt = true;
  result.clause.origin = HybridClause::Origin::kConflict;
  for (const TaggedLit& tl : collected) result.clause.lits.push_back(tl.lit);
  result.backtrack_level = bt;
  return result;
}

}  // namespace rtlsat::core
