#include "core/ig_dump.h"

#include <sstream>

namespace rtlsat::core {

namespace {

const char* event_color(const prop::Event& ev) {
  switch (ev.kind) {
    case prop::ReasonKind::kDecision: return "lightblue";
    case prop::ReasonKind::kAssumption: return "palegreen";
    case prop::ReasonKind::kClause: return "khaki";
    case prop::ReasonKind::kNode: return "white";
  }
  return "white";
}

}  // namespace

std::string implication_graph_dot(const prop::Engine& engine) {
  const ir::Circuit& circuit = engine.circuit();
  const auto& trail = engine.trail();
  std::ostringstream os;
  os << "digraph IG {\n  rankdir=LR;\n  node [shape=box, style=filled];\n";
  for (std::size_t i = 0; i < trail.size(); ++i) {
    const prop::Event& ev = trail[i];
    os << "  e" << i << " [label=\"" << circuit.net_name(ev.net) << " = "
       << ev.cur.to_string() << "\\n@" << ev.level;
    if (ev.kind == prop::ReasonKind::kNode) {
      os << " by " << circuit.net_name(ev.reason_id);
    } else if (ev.kind == prop::ReasonKind::kClause) {
      os << " by clause " << ev.reason_id;
    }
    os << "\", fillcolor=" << event_color(ev) << "];\n";
    for (const std::int32_t a : ev.antecedents)
      os << "  e" << a << " -> e" << i << ";\n";
    if (ev.prev_on_net >= 0)
      os << "  e" << ev.prev_on_net << " -> e" << i << " [style=dotted];\n";
  }
  if (engine.in_conflict()) {
    os << "  conflict [label=\"conflict on "
       << circuit.net_name(engine.conflict().net)
       << "\", fillcolor=salmon, shape=octagon];\n";
    for (const std::int32_t a : engine.conflict().antecedents)
      os << "  e" << a << " -> conflict;\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace rtlsat::core
