#include "core/arith_check.h"

#include "interval/interval_ops.h"
#include "util/assert.h"

namespace rtlsat::core {

namespace {

using fme::Coeff;
using fme::Term;
using ir::NetId;
using ir::Node;
using ir::Op;

class Extractor {
 public:
  explicit Extractor(const prop::Engine& engine) : engine_(engine) {}

  fme::System&& take_system() && { return std::move(system_); }

  fme::Var var_of(NetId net) {
    auto it = var_map_.find(net);
    if (it != var_map_.end()) return it->second;
    const fme::Var v = system_.add_var(engine_.interval(net));
    var_map_.emplace(net, v);
    return v;
  }
  bool has_var(NetId net) const { return var_map_.contains(net); }
  const std::unordered_map<NetId, fme::Var>& var_map() const {
    return var_map_;
  }

  void extract_node(NetId id) {
    const ir::Circuit& circuit = engine_.circuit();
    const Node& n = circuit.node(id);
    // Propagation already verified nodes whose incident nets are all
    // points, and Boolean gates never have interval slack here.
    if (ir::is_boolean_gate(n.op) || ir::is_source(n.op)) return;
    bool any_wide = !engine_.interval(id).is_point();
    for (NetId o : n.operands)
      any_wide = any_wide || !engine_.interval(o).is_point();
    if (!any_wide) return;

    auto term = [&](NetId net, Coeff c) { return Term{var_of(net), c}; };
    const Coeff m = Coeff{1} << n.width;

    switch (n.op) {
      case Op::kMux: {
        const int sel = engine_.bool_value(n.operands[0]);
        RTLSAT_ASSERT_MSG(sel >= 0, "mux select unassigned at end-game");
        const NetId branch = sel == 1 ? n.operands[1] : n.operands[2];
        system_.add_eq({term(id, 1), term(branch, -1)}, 0);
        return;
      }
      case Op::kAdd: {
        // z = x + y − 2^w·o, o ∈ {0,1}.
        const fme::Var o = system_.add_var(Interval(0, 1));
        system_.add_eq({term(n.operands[0], 1), term(n.operands[1], 1),
                        term(id, -1), Term{o, -m}},
                       0);
        return;
      }
      case Op::kSub: {
        // z = x − y + 2^w·o, o ∈ {0,1}.
        const fme::Var o = system_.add_var(Interval(0, 1));
        system_.add_eq({term(n.operands[0], 1), term(n.operands[1], -1),
                        term(id, -1), Term{o, m}},
                       0);
        return;
      }
      case Op::kMulC: {
        // z = k·x − 2^w·o, o ∈ [0, k−1].
        const fme::Var o = system_.add_var(Interval(0, std::max<Coeff>(n.imm - 1, 0)));
        system_.add_eq({term(n.operands[0], n.imm), term(id, -1), Term{o, -m}},
                       0);
        return;
      }
      case Op::kShlC: {
        const Coeff k = Coeff{1} << n.imm;
        const fme::Var o = system_.add_var(Interval(0, std::max<Coeff>(k - 1, 0)));
        system_.add_eq({term(n.operands[0], k), term(id, -1), Term{o, -m}}, 0);
        return;
      }
      case Op::kShrC: {
        // x = 2^k·z + r, r ∈ [0, 2^k−1].
        const Coeff k = Coeff{1} << n.imm;
        const fme::Var r = system_.add_var(Interval(0, k - 1));
        system_.add_eq({term(n.operands[0], 1), term(id, -k), Term{r, -1}}, 0);
        return;
      }
      case Op::kNotW:
        system_.add_eq({term(id, 1), term(n.operands[0], 1)}, m - 1);
        return;
      case Op::kConcat: {
        const Coeff shift = Coeff{1}
                            << engine_.circuit().width(n.operands[1]);
        system_.add_eq({term(id, 1), term(n.operands[0], -shift),
                        term(n.operands[1], -1)},
                       0);
        return;
      }
      case Op::kExtract: {
        // x = a·2^(hi+1) + z·2^lo + b, a and b spanning the outer bits.
        const int hi_bit = static_cast<int>(n.imm);
        const int lo_bit = static_cast<int>(n.imm2);
        const int xw = circuit.width(n.operands[0]);
        const Coeff hi_span = Coeff{1} << (xw - hi_bit - 1);
        const Coeff lo_span = Coeff{1} << lo_bit;
        const fme::Var a = system_.add_var(Interval(0, hi_span - 1));
        const fme::Var b = system_.add_var(Interval(0, lo_span - 1));
        system_.add_eq({term(n.operands[0], 1),
                        Term{a, -(Coeff{1} << (hi_bit + 1))},
                        term(id, -lo_span), Term{b, -1}},
                       0);
        return;
      }
      case Op::kZext:
        system_.add_eq({term(id, 1), term(n.operands[0], -1)}, 0);
        return;
      case Op::kLt:
      case Op::kLe: {
        const int v = engine_.bool_value(id);
        RTLSAT_ASSERT_MSG(v >= 0, "comparator unassigned at end-game");
        const Coeff strict = n.op == Op::kLt ? 1 : 0;
        if (v == 1) {
          // x − y ≤ −strict.
          system_.add_le({term(n.operands[0], 1), term(n.operands[1], -1)},
                         -strict);
        } else {
          // ¬(x < y) ⟺ y − x ≤ 0; ¬(x ≤ y) ⟺ y − x ≤ −1.
          system_.add_le({term(n.operands[1], 1), term(n.operands[0], -1)},
                         strict - 1);
        }
        return;
      }
      case Op::kEq:
      case Op::kNe:
      case Op::kMin:
      case Op::kMax: {
        // Raw comparison/minmax nodes are only linear once the operand
        // order is decided; builder-lowered circuits never contain them.
        const Interval dx = engine_.interval(n.operands[0]);
        const Interval dy = engine_.interval(n.operands[1]);
        if (n.op == Op::kEq || n.op == Op::kNe) {
          const bool want_eq =
              (engine_.bool_value(id) == 1) == (n.op == Op::kEq);
          if (want_eq) {
            system_.add_eq({term(n.operands[0], 1), term(n.operands[1], -1)},
                           0);
            return;
          }
          if (!dx.intersects(dy)) return;  // already separated
          RTLSAT_UNREACHABLE(
              "undecided disequality at end-game; lower eq via Circuit::add_eq");
        }
        const Interval lt = iops::fwd_lt(dx, dy);
        RTLSAT_ASSERT_MSG(lt.is_point(),
                          "undecided min/max at end-game; use lowered form");
        const bool x_lt_y = lt.lo() == 1;
        const NetId chosen = (n.op == Op::kMin) == x_lt_y ? n.operands[0]
                                                          : n.operands[1];
        system_.add_eq({term(id, 1), term(chosen, -1)}, 0);
        return;
      }
      default:
        RTLSAT_UNREACHABLE("unhandled op in arith_check");
    }
  }

  const fme::System& system() const { return system_; }

 private:
  const prop::Engine& engine_;
  fme::System system_;
  std::unordered_map<NetId, fme::Var> var_map_;
};

}  // namespace

ArithCheckResult arith_check(const prop::Engine& engine, fme::Solver& solver,
                             ArithCertCapture* capture) {
  RTLSAT_ASSERT(!engine.in_conflict());
  const ir::Circuit& circuit = engine.circuit();

  Extractor extractor(engine);
  // Tag every row and auxiliary variable with the node whose encoding
  // produced it (resize-with-value fills only the entries each
  // extract_node appended). Net variables get relabelled afterwards.
  std::vector<std::uint32_t> row_node;
  std::vector<std::uint32_t> var_owner;
  for (NetId id = 0; id < circuit.num_nets(); ++id) {
    extractor.extract_node(id);
    if (capture != nullptr) {
      row_node.resize(extractor.system().constraints().size(), id);
      var_owner.resize(extractor.system().num_vars(), id);
    }
  }

  ArithCheckResult result;
  std::vector<std::int64_t> model;
  const fme::Result fme_result = solver.solve(extractor.system(), &model);
  if (fme_result == fme::Result::kUnsat) {
    if (capture != nullptr) {
      capture->row_node = std::move(row_node);
      capture->vars.resize(var_owner.size());
      for (std::size_t v = 0; v < var_owner.size(); ++v)
        capture->vars[v] = {false, var_owner[v]};
      for (const auto& [net, v] : extractor.var_map())
        capture->vars[v] = {true, net};
      capture->system = std::move(extractor).take_system();
    }
    return result;  // sat = false
  }
  if (fme_result == fme::Result::kUnknown) {
    result.stopped = true;  // stop token fired: no verdict, caller bails
    return result;
  }

  result.sat = true;
  result.values.resize(circuit.num_nets());
  for (NetId id = 0; id < circuit.num_nets(); ++id) {
    const Interval& iv = engine.interval(id);
    if (iv.is_point()) {
      result.values[id] = iv.lo();
    } else if (extractor.has_var(id)) {
      result.values[id] = model[extractor.var_map().at(id)];
    } else {
      result.values[id] = iv.lo();  // unconstrained: any in-box value
    }
  }
  return result;
}

}  // namespace rtlsat::core
