#include "core/proof_log.h"

#include <string>

#include "fme/certify.h"
#include "ir/circuit.h"
#include "util/assert.h"

namespace rtlsat::core {

namespace {

char reason_char(prop::ReasonKind kind) {
  switch (kind) {
    case prop::ReasonKind::kAssumption: return 'a';
    case prop::ReasonKind::kDecision: return 'd';
    case prop::ReasonKind::kNode: return 'n';
    case prop::ReasonKind::kClause: return 'c';
  }
  return '?';
}

proof::WordStep to_step(const prop::Event& ev) {
  proof::WordStep s;
  s.net = ev.net;
  s.kind = reason_char(ev.kind);
  s.id = ev.reason_id;
  s.lo = ev.cur.lo();
  s.hi = ev.cur.hi();
  return s;
}

proof::WordLit to_lit(const HybridLit& l) {
  proof::WordLit out;
  out.net = l.net;
  out.is_bool = l.is_bool;
  out.positive = l.positive;
  out.lo = l.interval.lo();
  out.hi = l.interval.hi();
  return out;
}

std::vector<proof::WordLit> to_lits(const std::vector<HybridLit>& lits) {
  std::vector<proof::WordLit> out;
  out.reserve(lits.size());
  for (const HybridLit& l : lits) out.push_back(to_lit(l));
  return out;
}

}  // namespace

WordProofLogger::WordProofLogger(const prop::Engine& engine,
                                 proof::WordCertWriter* writer)
    : engine_(engine), writer_(writer) {
  RTLSAT_ASSERT(writer_ != nullptr);
}

void WordProofLogger::begin(
    const std::vector<std::pair<ir::NetId, Interval>>& assumptions) {
  const ir::Circuit& circuit = engine_.circuit();
  writer_->header();
  for (ir::NetId id = 0; id < circuit.num_nets(); ++id) {
    const ir::Node& n = circuit.node(id);
    writer_->net(id, n.width, std::string(ir::op_name(n.op)), n.operands,
                 n.imm, n.imm2);
  }
  for (const auto& [net, interval] : assumptions) {
    writer_->assume(net, interval.lo(), interval.hi());
  }
}

void WordProofLogger::sync_level0() {
  const auto& trail = engine_.trail();
  // Level-0 events are a monotone trail prefix: backtracking never removes
  // them, so a plain cursor never re-emits or skips one. Assumption events
  // were already declared by the assume records.
  while (level0_cursor_ < trail.size() &&
         trail[level0_cursor_].level == 0) {
    const prop::Event& ev = trail[level0_cursor_++];
    if (ev.kind == prop::ReasonKind::kAssumption) continue;
    writer_->narrow0(to_step(ev));
  }
}

std::vector<proof::WordStep> WordProofLogger::steps_at_or_above(
    std::uint32_t level) const {
  const auto& trail = engine_.trail();
  // Levels are monotone along the trail: scan back to the boundary, then
  // emit forward in replay order.
  std::size_t first = trail.size();
  while (first > 0 && trail[first - 1].level >= level) --first;
  std::vector<proof::WordStep> steps;
  steps.reserve(trail.size() - first);
  for (std::size_t i = first; i < trail.size(); ++i)
    steps.push_back(to_step(trail[i]));
  return steps;
}

proof::WordConflict WordProofLogger::engine_conflict() const {
  proof::WordConflict conf;
  if (!engine_.in_conflict()) return conf;
  const prop::Conflict& c = engine_.conflict();
  conf.kind = reason_char(c.kind);
  conf.id = c.reason_id;
  return conf;
}

void WordProofLogger::log_conflict0() {
  RTLSAT_ASSERT(engine_.in_conflict());
  sync_level0();
  const prop::Conflict& c = engine_.conflict();
  writer_->conflict0(reason_char(c.kind), c.reason_id);
}

void WordProofLogger::capture_learn(const AnalysisResult& analysis) {
  learn_lits_.clear();
  for (const HybridLit& l : analysis.clause.lits)
    learn_lits_.push_back(to_lit(l));
  const auto& trail = engine_.trail();
  learn_steps_.clear();
  learn_steps_.reserve(analysis.premises.size());
  for (std::int32_t e : analysis.premises)
    learn_steps_.push_back(to_step(trail[static_cast<std::size_t>(e)]));
  learn_conf_ = engine_conflict();
}

void WordProofLogger::commit_learn(std::int64_t clause_id) {
  sync_level0();
  writer_->learn(clause_id, learn_lits_, learn_steps_, learn_conf_);
}

proof::FmeCert WordProofLogger::build_fme_cert(
    const ArithCertCapture& capture) {
  proof::FmeCert cert;
  const fme::System& sys = capture.system;
  RTLSAT_ASSERT(capture.vars.size() == sys.num_vars());
  RTLSAT_ASSERT(capture.row_node.size() == sys.constraints().size());
  cert.vars.reserve(sys.num_vars());
  for (fme::Var v = 0; v < sys.num_vars(); ++v) {
    const Interval& b = sys.bounds(v);
    cert.vars.push_back(
        {capture.vars[v].is_net, capture.vars[v].id, b.lo(), b.hi()});
  }
  cert.cons.reserve(sys.constraints().size());
  for (std::size_t i = 0; i < sys.constraints().size(); ++i) {
    const fme::LinearConstraint& c = sys.constraints()[i];
    proof::FmeCertCon con;
    con.node = capture.row_node[i];
    for (const fme::Term& t : c.terms) con.terms.push_back({t.var, t.coeff});
    con.bound = c.bound;
    cert.cons.push_back(std::move(con));
  }
  cert.refutation = fme::certify_unsat(sys);
  if (!cert.refutation.ok) ++fme_certify_failures_;
  return cert;
}

void WordProofLogger::capture_cut(const ArithCertCapture& capture) {
  cut_steps_ = steps_at_or_above(1);
  cut_fme_ = build_fme_cert(capture);
}

void WordProofLogger::commit_cut(std::int64_t clause_id,
                                 const std::vector<HybridLit>& lits) {
  sync_level0();
  writer_->cut(clause_id, to_lits(lits), cut_steps_, cut_fme_);
  cut_steps_.clear();
  cut_fme_ = proof::FmeCert{};
}

void WordProofLogger::log_fme0(const ArithCertCapture& capture) {
  sync_level0();
  writer_->fme0(build_fme_cert(capture));
}

void WordProofLogger::probe_begin(ir::NetId net, bool value) {
  probe_net_ = net;
  probe_val_ = value ? 1 : 0;
  probe_steps_ = steps_at_or_above(1);
  probe_conf_ = engine_conflict();
  probe_ways_.clear();
}

void WordProofLogger::probe_way(
    const std::vector<std::pair<ir::NetId, bool>>& assignments) {
  proof::ProbeWay way;
  for (const auto& [net, val] : assignments)
    way.assign.push_back({net, val ? 1 : 0});
  way.steps = steps_at_or_above(2);
  way.conflict = engine_conflict();
  probe_ways_.push_back(std::move(way));
}

void WordProofLogger::probe_commit(const std::vector<HybridClause>& clauses) {
  if (clauses.empty()) return;  // nothing justified: keep the cert lean
  sync_level0();
  std::vector<std::vector<proof::WordLit>> lits;
  lits.reserve(clauses.size());
  for (const HybridClause& c : clauses) lits.push_back(to_lits(c.lits));
  writer_->probe(probe_net_, probe_val_, probe_steps_, probe_conf_,
                 probe_ways_, lits);
}

void WordProofLogger::wprobe_begin(ir::NetId net) {
  wprobe_net_ = net;
  wprobe_cases_.clear();
}

void WordProofLogger::wprobe_case(const Interval& half) {
  proof::ProbeCase c;
  c.lo = half.lo();
  c.hi = half.hi();
  c.steps = steps_at_or_above(1);
  c.conflict = engine_conflict();
  wprobe_cases_.push_back(std::move(c));
}

void WordProofLogger::wprobe_commit(const std::vector<HybridClause>& clauses,
                                    bool refuted) {
  if (clauses.empty() && !refuted) return;
  sync_level0();
  std::vector<std::vector<proof::WordLit>> lits;
  lits.reserve(clauses.size());
  for (const HybridClause& c : clauses) lits.push_back(to_lits(c.lits));
  writer_->wprobe(wprobe_net_, wprobe_cases_, lits);
}

void WordProofLogger::log_add_clause(std::int64_t id,
                                     const std::vector<HybridLit>& lits) {
  sync_level0();
  writer_->add_clause(id, to_lits(lits));
}

void WordProofLogger::log_import(std::int64_t id, int worker, std::int64_t seq,
                                 const std::vector<HybridLit>& lits) {
  sync_level0();
  writer_->import_clause(id, worker, seq, to_lits(lits));
}

void WordProofLogger::log_deletions(const ClauseDb& db) {
  if (deletion_logged_.size() < db.size()) deletion_logged_.resize(db.size());
  for (std::size_t id = 0; id < db.size(); ++id) {
    if (!db.clause(static_cast<std::uint32_t>(id)).deleted) continue;
    if (deletion_logged_[id]) continue;
    deletion_logged_[id] = true;
    sync_level0();
    writer_->delete_clause(static_cast<std::int64_t>(id));
  }
}

void WordProofLogger::finish(const char* verdict) {
  sync_level0();
  writer_->finish(verdict);
}

}  // namespace rtlsat::core
