#include "parser/rtl_format.h"

#include <charconv>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <variant>

namespace rtlsat::parser {

using ir::Circuit;
using ir::NetId;
using ir::Node;
using ir::Op;

namespace {

// ------------------------------------------------------------------ lexer

struct Token {
  enum class Kind { kLParen, kRParen, kSymbol, kNumber, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;
  std::int64_t number = 0;
  int line = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  const Token& peek() {
    if (!buffered_) {
      next_ = scan();
      buffered_ = true;
    }
    return next_;
  }

  Token take() {
    const Token t = peek();
    buffered_ = false;
    return t;
  }

  int line() const { return line_; }

 private:
  Token scan() {
    while (pos_ < text_.size()) {
      const char ch = text_[pos_];
      if (ch == '\n') {
        ++line_;
        ++pos_;
      } else if (ch == ' ' || ch == '\t' || ch == '\r') {
        ++pos_;
      } else if (ch == ';') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
    Token t;
    t.line = line_;
    if (pos_ >= text_.size()) return t;
    const char ch = text_[pos_];
    if (ch == '(') {
      ++pos_;
      t.kind = Token::Kind::kLParen;
      return t;
    }
    if (ch == ')') {
      ++pos_;
      t.kind = Token::Kind::kRParen;
      return t;
    }
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '(' && text_[pos_] != ')' &&
           text_[pos_] != ';' && !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    t.text = std::string(text_.substr(start, pos_ - start));
    const char first = t.text[0];
    if (std::isdigit(static_cast<unsigned char>(first)) ||
        (first == '-' && t.text.size() > 1)) {
      auto [ptr, ec] = std::from_chars(t.text.data(),
                                       t.text.data() + t.text.size(), t.number);
      if (ec != std::errc() || ptr != t.text.data() + t.text.size())
        throw ParseError("malformed number '" + t.text + "'", t.line);
      t.kind = Token::Kind::kNumber;
    } else {
      t.kind = Token::Kind::kSymbol;
    }
    return t;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  Token next_;
  bool buffered_ = false;
};

// ----------------------------------------------------------------- parser

class Parser {
 public:
  explicit Parser(std::string_view text) : lex_(text) {}

  Circuit parse_circuit() {
    expect_lparen();
    expect_symbol("circuit");
    Circuit c(expect_name());
    parse_items(c, nullptr);
    return c;
  }

  ir::SeqCircuit parse_seq() {
    expect_lparen();
    expect_symbol("seq-circuit");
    ir::SeqCircuit seq(expect_name());
    parse_items(seq.comb(), &seq);
    for (const auto& r : seq.registers()) {
      if (r.d == ir::kNoNet)
        throw ParseError("register '" + r.name + "' has no next binding",
                         lex_.peek().line);
    }
    seq.validate();
    return seq;
  }

 private:
  void parse_items(Circuit& c, ir::SeqCircuit* seq) {
    while (lex_.peek().kind == Token::Kind::kLParen) {
      lex_.take();
      const Token head = lex_.take();
      if (head.kind != Token::Kind::kSymbol)
        throw ParseError("expected item keyword", head.line);
      if (head.text == "input") {
        const std::string name = expect_name();
        const std::int64_t width = expect_number();
        check_width(width, head.line);
        check_fresh(name, head.line);
        names_.emplace(name, c.add_input(name, static_cast<int>(width)));
      } else if (head.text == "register") {
        if (seq == nullptr)
          throw ParseError("register in combinational circuit", head.line);
        const std::string name = expect_name();
        const std::int64_t width = expect_number();
        check_width(width, head.line);
        const std::int64_t init = expect_number();
        check_fits(init, width, "register init", head.line);
        check_fresh(name, head.line);
        names_.emplace(name,
                       seq->add_register(name, static_cast<int>(width), init));
      } else if (head.text == "net") {
        const std::string name = expect_name();
        const NetId id = parse_expr(c);
        check_fresh(name, head.line);
        names_.emplace(name, id);
        // Builder folding may alias this line to an already-named node;
        // keep the first name (references resolve through names_ anyway).
        if (c.node(id).name.empty()) c.set_net_name(id, name);
      } else if (head.text == "next") {
        if (seq == nullptr)
          throw ParseError("next in combinational circuit", head.line);
        const NetId q = lookup(expect_name(), head.line);
        bool is_reg = false;
        for (const auto& r : seq->registers()) is_reg = is_reg || r.q == q;
        if (!is_reg)
          throw ParseError("next target is not a register", head.line);
        const NetId d = parse_expr(c);
        check_same_width(c, q, d, "next", head.line);
        seq->bind_next(q, d);
      } else if (head.text == "property") {
        if (seq == nullptr)
          throw ParseError("property in combinational circuit", head.line);
        const std::string name = expect_name();
        const NetId p = parse_expr(c);
        check_bool_net(c, p, "property", head.line);
        seq->add_property(name, p);
      } else if (head.text == "output") {
        lookup(expect_name(), head.line);  // must reference a known net
      } else {
        throw ParseError("unknown item '" + head.text + "'", head.line);
      }
      expect_rparen();
    }
    expect_rparen();
  }

  NetId parse_expr(Circuit& c) {
    const Token t = lex_.take();
    if (t.kind == Token::Kind::kSymbol) return lookup(t.text, t.line);
    if (t.kind != Token::Kind::kLParen)
      throw ParseError("expected expression", t.line);
    const Token op = lex_.take();
    if (op.kind != Token::Kind::kSymbol)
      throw ParseError("expected operator", op.line);
    const NetId id = parse_op(c, op);
    expect_rparen();
    return id;
  }

  NetId parse_op(Circuit& c, const Token& op) {
    const std::string& name = op.text;
    auto args = [&](std::size_t n) {
      std::vector<NetId> v;
      for (std::size_t i = 0; i < n; ++i) v.push_back(parse_expr(c));
      return v;
    };
    // Two-operand forms whose builder requires equal widths.
    auto same2 = [&]() {
      auto a = args(2);
      check_same_width(c, a[0], a[1], name, op.line);
      return a;
    };
    if (name == "and" || name == "or") {
      std::vector<NetId> ops;
      while (lex_.peek().kind != Token::Kind::kRParen)
        ops.push_back(parse_expr(c));
      if (ops.size() < 2) throw ParseError(name + " needs >=2 operands", op.line);
      for (NetId id : ops) check_bool_net(c, id, name, op.line);
      return name == "and" ? c.add_and(std::move(ops))
                           : c.add_or(std::move(ops));
    }
    if (name == "not") {
      const NetId x = args(1)[0];
      check_bool_net(c, x, name, op.line);
      return c.add_not(x);
    }
    if (name == "xor") {
      auto a = args(2);
      check_bool_net(c, a[0], name, op.line);
      check_bool_net(c, a[1], name, op.line);
      return c.add_xor(a[0], a[1]);
    }
    if (name == "mux") {
      auto a = args(3);
      check_bool_net(c, a[0], "mux select", op.line);
      check_same_width(c, a[1], a[2], name, op.line);
      return c.add_mux(a[0], a[1], a[2]);
    }
    if (name == "add") { auto a = same2(); return c.add_add(a[0], a[1]); }
    if (name == "sub") { auto a = same2(); return c.add_sub(a[0], a[1]); }
    if (name == "notw") return c.add_notw(args(1)[0]);
    if (name == "concat") {
      auto a = args(2);
      if (c.width(a[0]) + c.width(a[1]) > ir::kMaxWidth)
        throw ParseError("concat result exceeds max width", op.line);
      return c.add_concat(a[0], a[1]);
    }
    if (name == "min") { auto a = same2(); return c.add_min(a[0], a[1]); }
    if (name == "max") { auto a = same2(); return c.add_max(a[0], a[1]); }
    if (name == "eq") { auto a = same2(); return c.add_eq(a[0], a[1]); }
    if (name == "ne") { auto a = same2(); return c.add_ne(a[0], a[1]); }
    if (name == "lt") { auto a = same2(); return c.add_lt(a[0], a[1]); }
    if (name == "le") { auto a = same2(); return c.add_le(a[0], a[1]); }
    if (name == "gt") { auto a = same2(); return c.add_gt(a[0], a[1]); }
    if (name == "ge") { auto a = same2(); return c.add_ge(a[0], a[1]); }
    if (name == "const") {
      const std::int64_t v = expect_number();
      const std::int64_t w = expect_number();
      check_width(w, op.line);
      check_fits(v, w, "constant", op.line);
      return c.add_const(v, static_cast<int>(w));
    }
    if (name == "mulc") {
      const NetId x = parse_expr(c);
      const std::int64_t k = expect_number();
      if (k < 0) throw ParseError("mulc factor must be nonnegative", op.line);
      return c.add_mulc(x, k);
    }
    if (name == "shl" || name == "shr") {
      const NetId x = parse_expr(c);
      const std::int64_t k = expect_number();
      if (k < 0 || k >= c.width(x))
        throw ParseError("shift amount out of range", op.line);
      return name == "shl" ? c.add_shl(x, static_cast<int>(k))
                           : c.add_shr(x, static_cast<int>(k));
    }
    if (name == "extract") {
      const NetId x = parse_expr(c);
      const std::int64_t hi = expect_number();
      const std::int64_t lo = expect_number();
      if (lo < 0 || lo > hi || hi >= c.width(x))
        throw ParseError("extract bounds out of range", op.line);
      return c.add_extract(x, static_cast<int>(hi), static_cast<int>(lo));
    }
    if (name == "zext") {
      const NetId x = parse_expr(c);
      const std::int64_t w = expect_number();
      check_width(w, op.line);
      if (w < c.width(x))
        throw ParseError("zext narrower than operand", op.line);
      return c.add_zext(x, static_cast<int>(w));
    }
    throw ParseError("unknown operator '" + name + "'", op.line);
  }

  NetId lookup(const std::string& name, int line) const {
    auto it = names_.find(name);
    if (it == names_.end())
      throw ParseError("unknown net '" + name + "'", line);
    return it->second;
  }

  static void check_width(std::int64_t w, int line) {
    if (w < 1 || w > ir::kMaxWidth)
      throw ParseError("width out of range", line);
  }

  // File input must fail with ParseError, never a builder assert: every
  // width/range contract the builder enforces on parser-reachable paths
  // is checked here first.
  static void check_bool_net(const Circuit& c, NetId a, const std::string& what,
                             int line) {
    if (c.width(a) != 1)
      throw ParseError(what + " requires 1-bit operands", line);
  }
  static void check_same_width(const Circuit& c, NetId a, NetId b,
                               const std::string& what, int line) {
    if (c.width(a) != c.width(b))
      throw ParseError(what + " operand widths differ", line);
  }
  static void check_fits(std::int64_t v, std::int64_t w, const char* what,
                         int line) {
    if (v < 0 || v > (std::int64_t{1} << w) - 1)
      throw ParseError(std::string(what) + " does not fit width", line);
  }

  void check_fresh(const std::string& name, int line) const {
    if (names_.contains(name))
      throw ParseError("duplicate name '" + name + "'", line);
  }

  void expect_lparen() {
    const Token t = lex_.take();
    if (t.kind != Token::Kind::kLParen) throw ParseError("expected '('", t.line);
  }
  void expect_rparen() {
    const Token t = lex_.take();
    if (t.kind != Token::Kind::kRParen) throw ParseError("expected ')'", t.line);
  }
  void expect_symbol(std::string_view sym) {
    const Token t = lex_.take();
    if (t.kind != Token::Kind::kSymbol || t.text != sym)
      throw ParseError("expected '" + std::string(sym) + "'", t.line);
  }
  std::string expect_name() {
    // Names are usually symbols, but purely numeric names occur too — the
    // ITC'99 property names are "1", "40", etc.
    const Token t = lex_.take();
    if (t.kind == Token::Kind::kSymbol) return t.text;
    if (t.kind == Token::Kind::kNumber) return t.text;
    throw ParseError("expected name", t.line);
  }
  std::int64_t expect_number() {
    const Token t = lex_.take();
    if (t.kind != Token::Kind::kNumber)
      throw ParseError("expected number", t.line);
    return t.number;
  }

  Lexer lex_;
  std::unordered_map<std::string, NetId> names_;
};

// ----------------------------------------------------------------- writer

class Writer {
 public:
  explicit Writer(const Circuit& c) : c_(c) {}

  void emit_body(std::ostream& os, const ir::SeqCircuit* seq) {
    std::vector<bool> is_reg(c_.num_nets(), false);
    if (seq != nullptr) {
      for (const auto& r : seq->registers()) is_reg[r.q] = true;
    }
    for (NetId id = 0; id < c_.num_nets(); ++id) {
      const Node& n = c_.node(id);
      if (n.op == Op::kInput) {
        if (is_reg[id]) continue;  // emitted as (register …) by caller
        os << "  (input " << c_.net_name(id) << ' ' << n.width << ")\n";
      } else if (n.op != Op::kConst) {
        os << "  (net " << ref(id) << ' ';
        emit_expr(os, id);
        os << ")\n";
      }
    }
  }

  // Flat reference: the net's name (every non-const node gets one line).
  std::string ref(NetId id) const {
    const Node& n = c_.node(id);
    if (n.op == Op::kConst)
      return "(const " + std::to_string(n.imm) + ' ' + std::to_string(n.width) + ')';
    return c_.net_name(id);
  }

 private:
  void emit_expr(std::ostream& os, NetId id) {
    const Node& n = c_.node(id);
    auto operands = [&] {
      for (NetId o : n.operands) os << ' ' << ref(o);
    };
    switch (n.op) {
      case Op::kAnd: os << "(and"; operands(); os << ')'; return;
      case Op::kOr: os << "(or"; operands(); os << ')'; return;
      case Op::kNot: os << "(not"; operands(); os << ')'; return;
      case Op::kXor: os << "(xor"; operands(); os << ')'; return;
      case Op::kMux: os << "(mux"; operands(); os << ')'; return;
      case Op::kAdd: os << "(add"; operands(); os << ')'; return;
      case Op::kSub: os << "(sub"; operands(); os << ')'; return;
      case Op::kNotW: os << "(notw"; operands(); os << ')'; return;
      case Op::kConcat: os << "(concat"; operands(); os << ')'; return;
      case Op::kMin: os << "(min"; operands(); os << ')'; return;
      case Op::kMax: os << "(max"; operands(); os << ')'; return;
      case Op::kEq: os << "(eq"; operands(); os << ')'; return;
      case Op::kNe: os << "(ne"; operands(); os << ')'; return;
      case Op::kLt: os << "(lt"; operands(); os << ')'; return;
      case Op::kLe: os << "(le"; operands(); os << ')'; return;
      case Op::kMulC:
        os << "(mulc"; operands(); os << ' ' << n.imm << ')'; return;
      case Op::kShlC:
        os << "(shl"; operands(); os << ' ' << n.imm << ')'; return;
      case Op::kShrC:
        os << "(shr"; operands(); os << ' ' << n.imm << ')'; return;
      case Op::kExtract:
        os << "(extract"; operands();
        os << ' ' << n.imm << ' ' << n.imm2 << ')';
        return;
      case Op::kZext:
        os << "(zext"; operands(); os << ' ' << n.width << ')'; return;
      case Op::kInput:
      case Op::kConst:
        RTLSAT_UNREACHABLE("sources are not expressions");
    }
  }

  const Circuit& c_;
};

}  // namespace

Circuit parse_circuit(std::string_view text) {
  return Parser(text).parse_circuit();
}

ir::SeqCircuit parse_seq_circuit(std::string_view text) {
  return Parser(text).parse_seq();
}

std::string write_circuit(const Circuit& circuit) {
  std::ostringstream os;
  os << "(circuit " << circuit.name() << '\n';
  Writer writer(circuit);
  writer.emit_body(os, nullptr);
  os << ")\n";
  return os.str();
}

std::string write_seq_circuit(const ir::SeqCircuit& seq) {
  std::ostringstream os;
  const Circuit& c = seq.comb();
  os << "(seq-circuit " << c.name() << '\n';
  for (const auto& r : seq.registers()) {
    os << "  (register " << r.name << ' ' << c.width(r.q) << ' ' << r.init
       << ")\n";
  }
  Writer writer(c);
  writer.emit_body(os, &seq);
  for (const auto& r : seq.registers()) {
    os << "  (next " << r.name << ' ' << writer.ref(r.d) << ")\n";
  }
  for (const auto& p : seq.properties()) {
    os << "  (property " << p.name << ' ' << writer.ref(p.net) << ")\n";
  }
  os << ")\n";
  return os.str();
}

ir::Circuit load_circuit(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_circuit(buffer.str());
}

void save_circuit(const ir::Circuit& circuit, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << write_circuit(circuit);
}

ir::SeqCircuit load_seq_circuit(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_seq_circuit(buffer.str());
}

void save_seq_circuit(const ir::SeqCircuit& seq, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << write_seq_circuit(seq);
}

}  // namespace rtlsat::parser
