// A small S-expression netlist format (.rtl) for storing and exchanging
// word-level circuits — combinational and sequential — so benchmark models
// and BMC instances can live outside C++ builders.
//
// Grammar sketch:
//   file      := circuit | seq
//   circuit   := "(" "circuit" name item* ")"
//   seq       := "(" "seq-circuit" name item* ")"
//   item      := "(" "input" name width ")"
//              | "(" "register" name width init ")"          (seq only)
//              | "(" "net" name expr ")"
//              | "(" "next" regname expr ")"                 (seq only)
//              | "(" "property" name expr ")"                (seq only)
//              | "(" "output" name ")"                       (marker)
//   expr      := name | "(" op expr* imm* ")"
//   op        := and|or|not|xor|mux|add|sub|notw|concat|min|max
//              | eq|ne|lt|le|gt|ge                   (builder-lowered)
//              | const v w | mulc x k | shl x k | shr x k
//              | extract x hi lo | zext x w
//
// Line comments start with ';'. Parse failures throw ParseError with a
// 1-based line number.
#pragma once

#include <stdexcept>
#include <string>

#include "ir/circuit.h"
#include "ir/seq.h"

namespace rtlsat::parser {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, int line)
      : std::runtime_error(message + " (line " + std::to_string(line) + ")"),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

ir::Circuit parse_circuit(std::string_view text);
ir::SeqCircuit parse_seq_circuit(std::string_view text);

std::string write_circuit(const ir::Circuit& circuit);
std::string write_seq_circuit(const ir::SeqCircuit& seq);

// File helpers (throw std::runtime_error on I/O failure).
ir::Circuit load_circuit(const std::string& path);
void save_circuit(const ir::Circuit& circuit, const std::string& path);
ir::SeqCircuit load_seq_circuit(const std::string& path);
void save_seq_circuit(const ir::SeqCircuit& seq, const std::string& path);

}  // namespace rtlsat::parser
