// Behavioural re-implementations of the ITC'99 benchmark circuits used in
// the paper's experiments (§3.1, §5), as word-level sequential netlists.
//
// The original VHDL (distributed with VIS) is not available here, so these
// are reconstructions from the public circuit descriptions — b01/b02 serial
// FSMs, b03 resource arbiter, b04 min/max register file, b13 weather-
// station interface — with control/data-path structure, operator mix, and
// bit-widths (3–10) matching what the paper's tables report per frame.
// The safety properties (b01_1, b02_1, b04_1, b13_{1,2,3,5,8,40}) are
// likewise reconstructions chosen to reproduce each instance family's
// SAT/UNSAT pattern across bounds; see DESIGN.md §2 for the substitution
// rationale.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ir/seq.h"

namespace rtlsat::itc99 {

ir::SeqCircuit build_b01();
ir::SeqCircuit build_b02();
ir::SeqCircuit build_b03();
ir::SeqCircuit build_b04();
ir::SeqCircuit build_b06();
ir::SeqCircuit build_b10();
ir::SeqCircuit build_b13();

// Lookup by name ("b01"…); asserts on unknown names.
ir::SeqCircuit build(std::string_view name);
std::vector<std::string> available();

}  // namespace rtlsat::itc99
