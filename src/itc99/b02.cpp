// b02 — serial BCD recognizer (1 input, 7-state controller).
//
// The original recognizes BCD digits arriving serially on `linea` and
// flags them on `u`. The reconstruction pairs the 7-state controller with
// the digit accumulator the recognizer implies (a 4-bit shift/increment
// path), so the control/data-path mix per frame is comparable to the
// paper's operator counts. Property 1 is the classic unreachable-state
// invariant, whose proof needs the state-equality predicates to be
// correlated with the accumulator updates.
#include "itc99/itc99.h"

namespace rtlsat::itc99 {

using ir::Circuit;
using ir::NetId;

ir::SeqCircuit build_b02() {
  ir::SeqCircuit seq("b02");
  Circuit& c = seq.comb();

  const NetId linea = c.add_input("linea", 1);

  enum : std::int64_t { A = 0, B = 1, C = 2, D = 3, E = 4, F = 5, G = 6 };
  const NetId state = seq.add_register("state", 3, A);
  const NetId u = seq.add_register("u", 1, 0);
  // Digit accumulator: shifts the serial bit in while recognizing.
  const NetId digit = seq.add_register("digit", 4, 0);

  auto k3 = [&](std::int64_t v) { return c.add_const(v, 3); };
  auto in_state = [&](std::int64_t v) { return c.add_eq(state, k3(v)); };

  // Original transition skeleton: a → b → c → (d|f) → e/g → a.
  NetId next = k3(A);
  auto from = [&](std::int64_t s, NetId target) {
    next = c.add_mux(in_state(s), target, next);
  };
  from(A, k3(B));
  from(B, c.add_mux(linea, k3(C), k3(F)));
  from(C, c.add_mux(linea, k3(D), k3(F)));
  from(D, c.add_mux(linea, k3(G), k3(E)));
  from(E, k3(A));
  from(F, c.add_mux(linea, k3(G), k3(E)));
  from(G, c.add_mux(linea, k3(A), k3(E)));
  seq.bind_next(state, next);

  seq.bind_next(u, in_state(E));

  // Accumulator: shift in the bit while scanning, clear on accept. The
  // shift is concat(extract) — the wiring operators of §2.1.
  const NetId shifted =
      c.add_concat(c.add_extract(digit, 2, 0), linea);
  const NetId acc_next = c.add_mux(in_state(E), c.add_const(0, 4), shifted);
  seq.bind_next(digit, acc_next);

  // Property 1: the one-hot-coded controller never enters the unused
  // code point 7 (UNSAT at every bound — an invariant).
  seq.add_property("1", c.add_not(c.add_eqc(state, 7)));

  // Property 2: the accept flag only rises with a BCD-range digit once the
  // controller passed the D/F stages — reconstructed as: u implies the
  // accumulated digit is at most 9 after clearing. (Holds: digit is
  // cleared in E, and u is only set entering E.)
  const NetId clear_path = c.add_eqc(digit, 0);
  seq.add_property("2", c.add_implies(c.add_and(u, in_state(A)),
                                      c.add_or(clear_path, c.add_not(u))));

  // Property 3: reachability probe — the controller can sit in G with a
  // high digit (SAT at moderate bounds; exercised by tests).
  seq.add_property(
      "3", c.add_not(c.add_and(in_state(G),
                               c.add_ge(digit, c.add_const(12, 4)))));

  seq.validate();
  return seq;
}

}  // namespace rtlsat::itc99
