// b06 — interrupt handler (control-dominated FSM with an acknowledge
// counter). Not in the paper's tables; part of the extended benchmark set
// used by the tests and ablation benches.
#include "itc99/itc99.h"

namespace rtlsat::itc99 {

using ir::Circuit;
using ir::NetId;

ir::SeqCircuit build_b06() {
  ir::SeqCircuit seq("b06");
  Circuit& c = seq.comb();

  const NetId eql = c.add_input("eql", 1);
  const NetId cont_eql = c.add_input("cont_eql", 1);

  enum : std::int64_t { INIT = 0, WAIT = 1, INTR = 2, ACK1 = 3, ACK2 = 4, RETI = 5 };
  const NetId s = seq.add_register("s", 3, INIT);
  const NetId ackout = seq.add_register("ackout", 1, 0);
  const NetId enable_count = seq.add_register("enable_count", 1, 0);
  const NetId cnt = seq.add_register("cnt", 3, 0);

  auto k3 = [&](std::int64_t v) { return c.add_const(v, 3); };
  auto in_s = [&](std::int64_t v) { return c.add_eq(s, k3(v)); };

  NetId next = k3(INIT);
  auto from = [&](std::int64_t state, NetId target) {
    next = c.add_mux(in_s(state), target, next);
  };
  from(INIT, k3(WAIT));
  from(WAIT, c.add_mux(eql, k3(INTR), k3(WAIT)));
  from(INTR, c.add_mux(cont_eql, k3(ACK1), k3(ACK2)));
  from(ACK1, k3(RETI));
  from(ACK2, c.add_mux(cont_eql, k3(ACK2), k3(RETI)));
  from(RETI, k3(WAIT));
  seq.bind_next(s, next);

  seq.bind_next(ackout, c.add_or(in_s(ACK1), in_s(ACK2)));
  seq.bind_next(enable_count, in_s(INTR));

  // Acknowledge counter: counts served interrupts, saturating at 5.
  const NetId served = c.add_and(ackout, in_s(RETI));
  const NetId cnt_next = c.add_mux(c.add_lt(cnt, k3(5)), c.add_inc(cnt), cnt);
  seq.bind_next(cnt, c.add_mux(served, cnt_next, cnt));

  // 1: the FSM never reaches the unused code points (UNSAT).
  seq.add_property("1", c.add_le(s, k3(5)));
  // 2: the saturating counter respects its cap (UNSAT).
  seq.add_property("2", c.add_le(cnt, k3(5)));
  // 3: an acknowledged interrupt with a saturated counter is reachable
  //    (SAT probe at moderate bounds).
  seq.add_property("3", c.add_not(c.add_and(ackout, c.add_eqc(cnt, 5))));

  seq.validate();
  return seq;
}

}  // namespace rtlsat::itc99
