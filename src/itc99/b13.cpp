// b13 — weather-station interface (the largest circuit in the paper's
// tables: two interacting FSMs, sample counters, a serial transmitter and
// a timeout path).
//
// Reconstruction: a 6-state main controller sequences sampling (eoc
// handshake), channel selection, and hand-off to a 4-state serial
// transmitter that shifts a start-bit-framed 9-bit word out while counting
// bits; a timeout counter guards the dsr handshake. Properties 1/2/3/5/8
// are UNSAT (invariant) families of graded difficulty and property 40 is a
// reachability (SAT) probe, mirroring each family's role in Tables 1–2.
#include "itc99/itc99.h"

namespace rtlsat::itc99 {

using ir::Circuit;
using ir::NetId;

ir::SeqCircuit build_b13() {
  ir::SeqCircuit seq("b13");
  Circuit& c = seq.comb();

  const NetId eoc = c.add_input("eoc", 1);
  const NetId data_in = c.add_input("data_in", 8);
  const NetId dsr = c.add_input("dsr", 1);

  // Main controller.
  enum : std::int64_t { IDLE = 0, SAMPLE = 1, LOAD = 2, WAIT_TX = 3, SEND = 4, DONE = 5 };
  // Serial transmitter.
  enum : std::int64_t { TIDLE = 0, TSTART = 1, TBITS = 2, TSTOP = 3 };

  const NetId fsm = seq.add_register("fsm", 3, IDLE);
  const NetId txs = seq.add_register("txs", 2, TIDLE);
  const NetId conta_tmp = seq.add_register("conta_tmp", 4, 0);
  const NetId canale = seq.add_register("canale", 2, 0);
  const NetId data_reg = seq.add_register("data_reg", 8, 0);
  const NetId shift_reg = seq.add_register("shift_reg", 9, 0);
  const NetId bit_cnt = seq.add_register("bit_cnt", 5, 0);
  const NetId timeout = seq.add_register("timeout", 8, 0);
  const NetId error = seq.add_register("error", 1, 0);
  const NetId load_dato = seq.add_register("load_dato", 1, 0);
  const NetId send_data = seq.add_register("send_data", 1, 0);
  const NetId mux_backplane = seq.add_register("mux_backplane", 1, 0);

  auto k = [&](std::int64_t v, int w) { return c.add_const(v, w); };
  auto in_fsm = [&](std::int64_t s) { return c.add_eq(fsm, k(s, 3)); };
  auto in_txs = [&](std::int64_t s) { return c.add_eq(txs, k(s, 2)); };

  const NetId tx_done = in_txs(TSTOP);
  const NetId timed_out = c.add_ge(timeout, k(250, 8));

  // ------------------------------------------------------- main controller
  NetId fsm_next = k(IDLE, 3);
  auto fsm_from = [&](std::int64_t s, NetId target) {
    fsm_next = c.add_mux(in_fsm(s), target, fsm_next);
  };
  fsm_from(IDLE, c.add_mux(eoc, k(SAMPLE, 3), k(IDLE, 3)));
  // The linear SAMPLE→LOAD→WAIT_TX advance is computed arithmetically
  // (state+1), as the original's synthesized next-state logic does. This
  // widens the forward interval of `fsm` past the legal codes, so property
  // 3 genuinely requires search over the state predicates rather than
  // falling to forward propagation.
  fsm_from(SAMPLE, c.add_inc(fsm));
  fsm_from(LOAD, c.add_inc(fsm));
  fsm_from(WAIT_TX,
           c.add_mux(timed_out, k(IDLE, 3),
                     c.add_mux(dsr, k(SEND, 3), k(WAIT_TX, 3))));
  fsm_from(SEND, c.add_mux(tx_done, k(DONE, 3), k(SEND, 3)));
  // DONE holds until the peer drops dsr — the non-constant branch keeps
  // property 3's proof from collapsing to pure forward propagation.
  fsm_from(DONE, c.add_mux(dsr, fsm, k(IDLE, 3)));
  seq.bind_next(fsm, fsm_next);

  // ----------------------------------------------------------- sample path
  const NetId sampling = in_fsm(SAMPLE);
  const NetId conta_wrap = c.add_eqc(conta_tmp, 11);
  const NetId conta_step =
      c.add_mux(conta_wrap, k(0, 4), c.add_inc(conta_tmp));
  seq.bind_next(conta_tmp, c.add_mux(sampling, conta_step, conta_tmp));
  seq.bind_next(canale, c.add_mux(sampling, c.add_inc(canale), canale));
  seq.bind_next(data_reg, c.add_mux(sampling, data_in, data_reg));
  seq.bind_next(mux_backplane,
                c.add_mux(sampling, c.add_bit(canale, 0), mux_backplane));

  // ------------------------------------------------------------ handshakes
  seq.bind_next(load_dato, in_fsm(LOAD));
  const NetId start_tx = c.add_and(in_fsm(WAIT_TX), dsr);
  seq.bind_next(send_data, start_tx);

  const NetId timeout_run = c.add_mux(in_fsm(WAIT_TX), c.add_inc(timeout),
                                      k(0, 8));
  seq.bind_next(timeout, timeout_run);
  seq.bind_next(error, c.add_or(error,
                                c.add_and(in_fsm(WAIT_TX), timed_out)));

  // ------------------------------------------------------- serial transmit
  NetId txs_next = k(TIDLE, 2);
  auto txs_from = [&](std::int64_t s, NetId target) {
    txs_next = c.add_mux(in_txs(s), target, txs_next);
  };
  const NetId last_bit = c.add_eqc(bit_cnt, 9);
  txs_from(TIDLE, c.add_mux(send_data, k(TSTART, 2), k(TIDLE, 2)));
  txs_from(TSTART, k(TBITS, 2));
  txs_from(TBITS, c.add_mux(last_bit, k(TSTOP, 2), k(TBITS, 2)));
  txs_from(TSTOP, k(TIDLE, 2));
  seq.bind_next(txs, txs_next);

  const NetId framed = c.add_concat(data_reg, k(1, 1));  // start bit
  const NetId shifting = in_txs(TBITS);
  seq.bind_next(shift_reg,
                c.add_mux(in_txs(TSTART), framed,
                          c.add_mux(shifting, c.add_shr(shift_reg, 1),
                                    shift_reg)));
  seq.bind_next(bit_cnt,
                c.add_mux(in_txs(TSTART), k(0, 5),
                          c.add_mux(shifting, c.add_inc(bit_cnt), bit_cnt)));

  c.set_net_name(c.add_bit(shift_reg, 0), "tx_line");

  // ------------------------------------------------------------ properties
  // 1: the transmit bit counter never exceeds 10 (it only counts in
  //    TBITS, which it leaves at 9 → peak value 10; the bound is tight).
  //    Hard UNSAT family: the proof correlates the txs state predicates
  //    with the counter value in every frame.
  seq.add_property("1", c.add_le(bit_cnt, k(10, 5)));

  // 2: the load and send handshake strobes are mutually exclusive (UNSAT;
  //    control-dominated with one data-path comparator in the cone).
  seq.add_property("2", c.add_not(c.add_and(load_dato, send_data)));

  // 3: the main controller never reaches the unused code points 6/7
  //    (UNSAT; provable in the control logic alone — the family where the
  //    paper's randomized baseline beats pure structural search).
  seq.add_property("3", c.add_le(fsm, k(5, 3)));

  // 5: the sample counter respects its modulus (≤ 11; UNSAT — the family
  //    with the paper's largest predicate-learning speedups: the wrap
  //    predicate eq(conta_tmp,11) must be correlated with the mux selects).
  seq.add_property("5", c.add_le(conta_tmp, k(11, 4)));

  // 8: leaving the transmitter (TSTOP) implies the full word was counted
  //    out (UNSAT; a one-frame correlation — easy for every configuration).
  seq.add_property("8", c.add_implies(in_txs(TSTOP),
                                      c.add_ge(bit_cnt, k(9, 5))));

  // 40: a mid-transmission snapshot is reachable (SAT probe at moderate
  //     bounds, e.g. bound 13 as in Table 2's b13_40(13) row).
  seq.add_property("40", c.add_not(c.add_and(in_fsm(SEND),
                                             c.add_eqc(bit_cnt, 3))));

  seq.validate();
  return seq;
}

}  // namespace rtlsat::itc99
