#include "itc99/itc99.h"

#include "util/assert.h"

namespace rtlsat::itc99 {

ir::SeqCircuit build(std::string_view name) {
  if (name == "b01") return build_b01();
  if (name == "b02") return build_b02();
  if (name == "b03") return build_b03();
  if (name == "b04") return build_b04();
  if (name == "b06") return build_b06();
  if (name == "b10") return build_b10();
  if (name == "b13") return build_b13();
  RTLSAT_UNREACHABLE("unknown ITC'99 circuit");
}

std::vector<std::string> available() {
  return {"b01", "b02", "b03", "b04", "b06", "b10", "b13"};
}

}  // namespace rtlsat::itc99
