// b04 — min/max register file (8-bit data path).
//
// The original tracks the running minimum and maximum of an input stream
// with a restart. Its comparator-plus-mux data path is the circuit
// fragment the paper's Fig. 2 uses to demonstrate predicate learning; the
// reconstruction keeps exactly that structure (comparators driving the
// selects of the RMAX/RMIN update muxes).
#include "itc99/itc99.h"

namespace rtlsat::itc99 {

using ir::Circuit;
using ir::NetId;

ir::SeqCircuit build_b04() {
  ir::SeqCircuit seq("b04");
  Circuit& c = seq.comb();

  const NetId data_in = c.add_input("data_in", 8);
  const NetId restart = c.add_input("restart", 1);
  const NetId enable = c.add_input("enable", 1);

  const NetId rmax = seq.add_register("rmax", 8, 0);
  const NetId rmin = seq.add_register("rmin", 8, 255);
  const NetId rlast = seq.add_register("rlast", 8, 0);
  const NetId armed = seq.add_register("armed", 1, 0);

  // Comparators feeding mux selects — the Fig. 2 predicate structure.
  const NetId gt_max = c.add_gt(data_in, rmax);
  const NetId lt_min = c.add_lt(data_in, rmin);

  const NetId max_upd = c.add_mux(gt_max, data_in, rmax);
  const NetId min_upd = c.add_mux(lt_min, data_in, rmin);

  const NetId take = c.add_and(enable, c.add_not(restart));
  seq.bind_next(rmax, c.add_mux(restart, data_in,
                                c.add_mux(take, max_upd, rmax)));
  seq.bind_next(rmin, c.add_mux(restart, data_in,
                                c.add_mux(take, min_upd, rmin)));
  seq.bind_next(rlast, c.add_mux(take, data_in, rlast));
  seq.bind_next(armed, c.add_or(restart, armed));

  // The original's averaged output: (rmax + rmin) with the running values.
  const NetId data_out = c.add_shr(c.add_add(rmax, rmin), 1);
  c.set_net_name(data_out, "data_out");

  // Property 1: the running maximum stays below 200 — violable by feeding
  // a large sample, so the family is SAT at every bound ≥ 2 (matches the
  // all-S b04_1 rows). The violation search rewards structural
  // justification: the goal comparator pins rmax, whose mux cone leads
  // straight to the deciding selects.
  seq.add_property("1", c.add_lt(rmax, c.add_const(200, 8)));

  // Property 2: after a restart was ever taken, min ≤ max (UNSAT family:
  // the invariant holds, and its proof needs the gt/lt predicate
  // correlation that static learning extracts — Fig. 2's relations).
  seq.add_property("2", c.add_implies(armed, c.add_le(rmin, rmax)));

  // Property 3: the averaged output is bounded by the maximum once armed
  // (holds; data-path heavy proof).
  seq.add_property("3", c.add_implies(armed, c.add_le(data_out, rmax)));

  seq.validate();
  return seq;
}

}  // namespace rtlsat::itc99
