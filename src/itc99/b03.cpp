// b03 — resource arbiter (4 request lines, registered grants).
//
// Not part of the paper's tables; included as an extra benchmark family
// for the test suite and the ablation benches. The reconstruction keeps
// the arbiter shape: request latching, a round-robin pointer, one-hot
// grant generation, and an 8-bit occupancy timer per slot.
#include "itc99/itc99.h"

namespace rtlsat::itc99 {

using ir::Circuit;
using ir::NetId;

ir::SeqCircuit build_b03() {
  ir::SeqCircuit seq("b03");
  Circuit& c = seq.comb();

  const NetId req0 = c.add_input("req0", 1);
  const NetId req1 = c.add_input("req1", 1);
  const NetId req2 = c.add_input("req2", 1);
  const NetId req3 = c.add_input("req3", 1);

  const NetId rr = seq.add_register("rr", 2, 0);        // round-robin pointer
  const NetId busy = seq.add_register("busy", 1, 0);    // resource held
  const NetId owner = seq.add_register("owner", 2, 0);  // holder id
  const NetId timer = seq.add_register("timer", 8, 0);  // hold duration

  auto k2 = [&](std::int64_t v) { return c.add_const(v, 2); };

  // Request vector indexed by the round-robin pointer.
  const NetId rr_is0 = c.add_eq(rr, k2(0));
  const NetId rr_is1 = c.add_eq(rr, k2(1));
  const NetId rr_is2 = c.add_eq(rr, k2(2));
  const NetId picked_req = c.add_mux(
      rr_is0, req0,
      c.add_mux(rr_is1, req1, c.add_mux(rr_is2, req2, req3)));

  // Grant when free and the pointed requester asks.
  const NetId grant = c.add_and(c.add_not(busy), picked_req);
  // Release after 8 cycles of holding.
  const NetId expired = c.add_ge(timer, c.add_const(8, 8));
  const NetId release = c.add_and(busy, expired);

  seq.bind_next(busy, c.add_or(grant, c.add_and(busy, c.add_not(release))));
  seq.bind_next(owner, c.add_mux(grant, rr, owner));

  const NetId timer_run = c.add_mux(release, c.add_const(0, 8),
                                    c.add_inc(timer));
  seq.bind_next(timer, c.add_mux(c.add_or(grant, busy),
                                 c.add_mux(grant, c.add_const(0, 8), timer_run),
                                 c.add_const(0, 8)));

  // Pointer advances whenever no grant fires (fairness scan).
  seq.bind_next(rr, c.add_mux(grant, rr, c.add_inc(rr)));

  // Property 1: the hold timer never exceeds its release threshold by more
  // than one step (invariant; needs the busy/expired correlation).
  seq.add_property("1", c.add_le(timer, c.add_const(9, 8)));

  // Property 2: an idle resource keeps a zeroed timer (invariant).
  seq.add_property("2", c.add_implies(c.add_not(busy), c.add_eqc(timer, 0)));

  // Property 3: owner 3 with an expired timer is reachable (SAT probe).
  seq.add_property("3", c.add_not(c.add_and(c.add_eq(owner, k2(3)), expired)));

  seq.validate();
  return seq;
}

}  // namespace rtlsat::itc99
