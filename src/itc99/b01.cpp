// b01 — FSM comparing two serial flows (2 inputs, 8 states, flag outputs).
//
// The original asserts `outp` when the flows match a pattern and `overflw`
// on carry overflow. This reconstruction keeps that shape — an 8-state
// controller driven by line1/line2 with outp/overflw flags — and adds the
// mod-20 phase counter that property 1 is stated over, giving the
// instance family its period-20 satisfiability pattern from the paper's
// tables (S at bounds ≡ 10 (mod 20), U at bounds ≡ 0).
#include "itc99/itc99.h"

namespace rtlsat::itc99 {

using ir::Circuit;
using ir::NetId;

ir::SeqCircuit build_b01() {
  ir::SeqCircuit seq("b01");
  Circuit& c = seq.comb();

  const NetId line1 = c.add_input("line1", 1);
  const NetId line2 = c.add_input("line2", 1);

  // States of the original controller.
  enum : std::int64_t { A = 0, B = 1, C = 2, E = 3, F = 4, G = 5, WF0 = 6, WF1 = 7 };
  const NetId state = seq.add_register("state", 3, A);
  const NetId outp = seq.add_register("outp", 1, 0);
  const NetId overflw = seq.add_register("overflw", 1, 0);
  // Phase counter: free-running modulo 20. The "tick" is the disjunction of
  // a line and its complement — constant in Boolean algebra, but opaque to
  // interval propagation, so proving anything about the phase takes either
  // search or predicate learning (this models the redundant handshake
  // logic of the original netlist).
  const NetId phase = seq.add_register("phase", 5, 0);

  auto k3 = [&](std::int64_t v) { return c.add_const(v, 3); };
  auto in_state = [&](std::int64_t v) { return c.add_eq(state, k3(v)); };

  const NetId x = c.add_xor(line1, line2);       // flows differ
  const NetId both = c.add_and(line1, line2);    // carry generate

  // Next-state mux cascade (one hot per current state, default A).
  NetId next = k3(A);
  auto from = [&](std::int64_t s, NetId target) {
    next = c.add_mux(in_state(s), target, next);
  };
  from(A, c.add_mux(x, k3(B), k3(C)));
  from(B, c.add_mux(both, k3(E), k3(F)));
  from(C, c.add_mux(x, k3(F), k3(G)));
  from(E, c.add_mux(x, k3(WF0), k3(B)));
  from(F, c.add_mux(both, k3(G), k3(WF0)));
  from(G, c.add_mux(x, k3(WF1), k3(C)));
  from(WF0, c.add_mux(x, k3(A), k3(WF1)));
  from(WF1, c.add_mux(both, k3(WF1), k3(A)));  // holds while both lines high
  seq.bind_next(state, next);

  seq.bind_next(outp, c.add_or(in_state(E), in_state(WF0)));
  seq.bind_next(overflw, c.add_and(in_state(WF1), both));

  // Phase advances every cycle via the propagation-opaque tick.
  const NetId tick = c.add_or(line1, c.add_not(line1));
  const NetId wrapped = c.add_mux(c.add_eqc(phase, 19), c.add_const(0, 5),
                                  c.add_inc(phase));
  seq.bind_next(phase, c.add_mux(tick, wrapped, phase));

  // Property 1: the controller is never in its wait-flag-1 state at the
  // phase-counter midpoint. Violations require phase = 10, which the
  // free-running counter only shows at depths ≡ 10 (mod 20).
  const NetId bad = c.add_and(c.add_eqc(phase, 10), in_state(WF1));
  seq.add_property("1", c.add_not(bad));

  // Property 2: outp and overflw are never asserted together (holds at
  // every bound; an easier UNSAT family used by the tests).
  seq.add_property("2", c.add_not(c.add_and(outp, overflw)));

  // Property 3: the phase counter stays below 24 (holds; interval-provable
  // once tick is resolved).
  seq.add_property("3", c.add_lt(phase, c.add_const(24, 5)));

  seq.validate();
  return seq;
}

}  // namespace rtlsat::itc99
