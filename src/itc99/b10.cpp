// b10 — voting machine (4-bit data path, transmit/receive FSM).
// Reconstruction for the extended benchmark set: two 4-bit sample inputs
// compared and accumulated under a small controller.
#include "itc99/itc99.h"

namespace rtlsat::itc99 {

using ir::Circuit;
using ir::NetId;

ir::SeqCircuit build_b10() {
  ir::SeqCircuit seq("b10");
  Circuit& c = seq.comb();

  const NetId rx_a = c.add_input("rx_a", 4);
  const NetId rx_b = c.add_input("rx_b", 4);
  const NetId start = c.add_input("start", 1);

  enum : std::int64_t { IDLE = 0, LOAD = 1, COMPARE = 2, EMIT = 3 };
  const NetId st = seq.add_register("st", 2, IDLE);
  const NetId va = seq.add_register("va", 4, 0);
  const NetId vb = seq.add_register("vb", 4, 0);
  const NetId votes = seq.add_register("votes", 4, 0);
  const NetId winner = seq.add_register("winner", 1, 0);

  auto k2 = [&](std::int64_t v) { return c.add_const(v, 2); };
  auto in_st = [&](std::int64_t v) { return c.add_eq(st, k2(v)); };

  NetId next = k2(IDLE);
  auto from = [&](std::int64_t state, NetId target) {
    next = c.add_mux(in_st(state), target, next);
  };
  from(IDLE, c.add_mux(start, k2(LOAD), k2(IDLE)));
  from(LOAD, k2(COMPARE));
  from(COMPARE, k2(EMIT));
  from(EMIT, k2(IDLE));
  seq.bind_next(st, next);

  const NetId loading = in_st(LOAD);
  seq.bind_next(va, c.add_mux(loading, rx_a, va));
  seq.bind_next(vb, c.add_mux(loading, rx_b, vb));

  const NetId a_wins = c.add_gt(va, vb);
  const NetId comparing = in_st(COMPARE);
  seq.bind_next(winner, c.add_mux(comparing, a_wins, winner));
  // Count rounds won by channel a, saturating at 15.
  const NetId bump = c.add_and(comparing, a_wins);
  const NetId votes_next =
      c.add_mux(c.add_lt(votes, c.add_const(15, 4)), c.add_inc(votes), votes);
  seq.bind_next(votes, c.add_mux(bump, votes_next, votes));

  // 1: the vote counter never wraps (UNSAT; needs the saturation mux /
  //    comparator correlation).
  seq.add_property("1", c.add_le(votes, c.add_const(15, 4)));
  // 2: the winner flag only changes in COMPARE — reconstructed as: in EMIT,
  //    winner agrees with the latched samples' order (UNSAT).
  seq.add_property(
      "2", c.add_implies(in_st(EMIT), c.add_eq(winner, c.add_gt(va, vb))));
  // 3: channel a can take five rounds (SAT probe; needs ≥ 5 full cycles).
  seq.add_property("3",
                   c.add_not(c.add_ge(votes, c.add_const(5, 4))));

  seq.validate();
  return seq;
}

}  // namespace rtlsat::itc99
