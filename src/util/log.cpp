#include "util/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <thread>

namespace rtlsat {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::atomic<LogSink> g_sink{nullptr};
std::atomic<void*> g_sink_user{nullptr};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "E";
    case LogLevel::kWarn: return "W";
    case LogLevel::kInfo: return "I";
    case LogLevel::kDebug: return "D";
    case LogLevel::kTrace: return "T";
  }
  return "?";
}

double seconds_since_start() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::uint64_t this_thread_id() {
  return static_cast<std::uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= g_level.load(std::memory_order_relaxed);
}

void set_log_sink(LogSink sink, void* user) {
  g_sink_user.store(user);
  g_sink.store(sink);
}

void log_msg(LogLevel level, const char* fmt, ...) {
  if (!log_enabled(level)) return;
  const LogSink sink = g_sink.load(std::memory_order_acquire);
  if (sink == nullptr) {
    // Historical stderr path — byte-identical to the pre-sink format.
    std::fprintf(stderr, "[rtlsat:%s] ", level_tag(level));
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
    return;
  }
  char buffer[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buffer, sizeof buffer, fmt, args);  // truncates long lines
  va_end(args);
  LogRecord record;
  record.level = level;
  record.t_seconds = seconds_since_start();
  record.thread_id = this_thread_id();
  record.message = buffer;
  sink(g_sink_user.load(), record);
}

}  // namespace rtlsat
