#include "util/log.h"

#include <atomic>
#include <cstdio>

namespace rtlsat {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "E";
    case LogLevel::kWarn: return "W";
    case LogLevel::kInfo: return "I";
    case LogLevel::kDebug: return "D";
    case LogLevel::kTrace: return "T";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= g_level.load(std::memory_order_relaxed);
}

void log_msg(LogLevel level, const char* fmt, ...) {
  if (!log_enabled(level)) return;
  std::fprintf(stderr, "[rtlsat:%s] ", level_tag(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace rtlsat
