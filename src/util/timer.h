// Wall-clock timing helpers used by the benches and the solver's
// per-instance timeout (the paper ran with a 1200 s CPU timeout; we expose
// the same knob via Deadline).
#pragma once

#include <chrono>
#include <cstdint>

namespace rtlsat {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  std::int64_t micros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// A deadline that solver loops poll occasionally. A default-constructed
// Deadline never expires.
class Deadline {
 public:
  Deadline() = default;
  explicit Deadline(double seconds_from_now)
      : armed_(seconds_from_now > 0),
        end_(Clock::now() +
             std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double>(seconds_from_now))) {}

  bool expired() const { return armed_ && Clock::now() >= end_; }
  bool armed() const { return armed_; }

 private:
  using Clock = std::chrono::steady_clock;
  bool armed_ = false;
  Clock::time_point end_{};
};

}  // namespace rtlsat
