// Cooperative cancellation for the solver loops (the portfolio subsystem's
// cancellation hook, src/portfolio).
//
// A StopSource owns a shared cancellation flag; StopTokens are cheap value
// copies that observe it and may additionally carry a wall-clock deadline.
// Solver loops poll token.stop_requested() at decision/restart boundaries
// (and, counter-gated, inside the propagation fixpoint and FME recursion),
// so a request_stop() lands within milliseconds of search work — unlike the
// old timeout poll, which only fired between conflicts.
//
// The deadline half subsumes the solvers' `timeout_seconds` options: each
// solve() derives an effective token via with_deadline(timeout), so one
// mechanism serves both "the instance budget ran out" (deadline_expired)
// and "another portfolio worker already won" (cancelled). Callers that need
// to distinguish the two — e.g. to report kTimeout vs kCancelled — ask the
// token which half fired.
//
// Thread-safety: request_stop() may be called from any thread; token reads
// are a relaxed atomic load (no ordering is needed — the flag is the only
// communication, and "stop soon" is the whole contract). A default token is
// inert: armed() is false and hot loops skip the poll entirely.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>

#include "util/assert.h"

namespace rtlsat {

class StopToken {
 public:
  // Inert token: never cancelled, no deadline.
  StopToken() = default;

  // Deadline-only token expiring `seconds` from now (<= 0 ⟹ inert).
  static StopToken after(double seconds) {
    return StopToken{}.with_deadline(seconds);
  }

  // A copy of this token whose deadline is the sooner of the existing one
  // and now + `seconds` (<= 0 leaves the token unchanged — the solvers'
  // "0 = no limit" convention).
  StopToken with_deadline(double seconds) const {
    StopToken t = *this;
    if (seconds <= 0) return t;
    const Clock::time_point end =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(seconds));
    t.end_ = t.deadline_armed_ ? std::min(t.end_, end) : end;
    t.deadline_armed_ = true;
    return t;
  }

  // A token observing both this token's and `other`'s cancellation flags,
  // with the sooner of the two deadlines. A token holds at most two flag
  // slots — enough for the one real nesting in the tree (an external
  // owner's token, e.g. a serve job, combined with the portfolio's internal
  // first-verdict-wins source); combining two already-combined tokens is a
  // programming error and asserts.
  StopToken combined(const StopToken& other) const {
    StopToken t = *this;
    for (const auto& flag : {other.flag_, other.flag2_}) {
      if (flag == nullptr || flag == t.flag_ || flag == t.flag2_) continue;
      if (t.flag_ == nullptr) {
        t.flag_ = flag;
      } else {
        RTLSAT_ASSERT_MSG(t.flag2_ == nullptr,
                          "StopToken::combined: more than two stop flags");
        t.flag2_ = flag;
      }
    }
    if (other.deadline_armed_) {
      t.end_ = t.deadline_armed_ ? std::min(t.end_, other.end_) : other.end_;
      t.deadline_armed_ = true;
    }
    return t;
  }

  // True once the owning StopSource called request_stop().
  bool cancelled() const {
    return (flag_ != nullptr && flag_->load(std::memory_order_relaxed)) ||
           (flag2_ != nullptr && flag2_->load(std::memory_order_relaxed));
  }
  bool deadline_armed() const { return deadline_armed_; }
  bool deadline_expired() const {
    return deadline_armed_ && Clock::now() >= end_;
  }
  // The poll the solver loops use: cancellation or deadline, whichever
  // fires first. The flag load is branch-predictable and the clock read
  // only happens when a deadline is armed.
  bool stop_requested() const { return cancelled() || deadline_expired(); }

  // False for an inert token — lets hot loops skip polling altogether.
  bool armed() const { return flag_ != nullptr || deadline_armed_; }

 private:
  friend class StopSource;
  using Clock = std::chrono::steady_clock;

  std::shared_ptr<const std::atomic<bool>> flag_;   // null = never cancelled
  std::shared_ptr<const std::atomic<bool>> flag2_;  // second combined() slot
  bool deadline_armed_ = false;
  Clock::time_point end_{};
};

class StopSource {
 public:
  StopSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  // Tokens remain valid past the source's lifetime (shared ownership).
  StopToken token() const {
    StopToken t;
    t.flag_ = flag_;
    return t;
  }

  void request_stop() { flag_->store(true, std::memory_order_relaxed); }
  bool stop_requested() const {
    return flag_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace rtlsat
