// Small string helpers shared by the parser, table printers, and dumps.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rtlsat {

// printf-style formatting into a std::string.
std::string str_format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

// Splits on any character in `seps`, dropping empty fields.
std::vector<std::string_view> split(std::string_view text,
                                    std::string_view seps = " \t\r\n");

bool starts_with(std::string_view text, std::string_view prefix);

// Fixed-width left/right alignment for the bench table printers.
std::string pad_left(std::string_view text, std::size_t width);
std::string pad_right(std::string_view text, std::size_t width);

// Formats seconds the way the paper's tables do: two decimals, "-to-" for
// timeouts, "-A-" for aborts.
std::string format_runtime(double seconds, bool timed_out, bool aborted);

}  // namespace rtlsat
