// Deterministic PRNG (xoshiro256**) for randomized decision strategies and
// property-test workload generation. std::mt19937 is avoided in solver code
// because its 5 KB state thrashes the cache next to the trail.
#pragma once

#include <cstdint>

namespace rtlsat {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // splitmix64 seeding so that nearby seeds yield unrelated streams.
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be nonzero.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  // Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  bool flip() { return (next() & 1) != 0; }

  // True with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) {
    return below(den) < num;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace rtlsat
