#include "util/stats.h"

#include <sstream>

namespace rtlsat {

std::string Stats::to_string() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters_) {
    os << name << " = " << value << '\n';
  }
  return os.str();
}

}  // namespace rtlsat
