#include "util/stats.h"

#include <sstream>

namespace rtlsat {

std::string Histogram::to_string() const {
  std::ostringstream os;
  os << "count=" << count_ << " sum=" << sum_ << " min=" << min()
     << " max=" << max() << " mean=" << mean();
  return os.str();
}

std::string Stats::to_string() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters_) {
    os << name << " = " << value << '\n';
  }
  for (const auto& [name, histogram] : histograms_) {
    os << name << " : " << histogram.to_string() << '\n';
  }
  return os.str();
}

}  // namespace rtlsat
