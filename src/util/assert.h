// Internal invariant checking for rtlsat.
//
// RTLSAT_ASSERT is active in all build types: solver bugs (a wrong UNSAT
// answer, a corrupted trail) are far more expensive than the check, and the
// hot paths have been benchmarked with the checks in place. Use
// RTLSAT_DASSERT for checks that are too hot to keep in release builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace rtlsat {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "rtlsat: assertion failed: %s\n  at %s:%d\n  %s\n",
               expr, file, line, msg ? msg : "");
  std::abort();
}

// Whether this build was configured with -DRTLSAT_SELFCHECK=ON. The
// invariant verifiers (core/selfcheck.h, sat::Solver::self_check) are
// always compiled and callable; this constant only drives the *default* of
// the runtime flags that invoke them inside the solvers' search loops, so
// a self-check build exercises them everywhere at zero configuration cost.
#ifdef RTLSAT_SELFCHECK
inline constexpr bool kSelfCheckBuild = true;
#else
inline constexpr bool kSelfCheckBuild = false;
#endif

}  // namespace rtlsat

#define RTLSAT_ASSERT(expr)                                            \
  do {                                                                 \
    if (!(expr)) ::rtlsat::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define RTLSAT_ASSERT_MSG(expr, msg)                                      \
  do {                                                                    \
    if (!(expr)) ::rtlsat::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifndef NDEBUG
#define RTLSAT_DASSERT(expr) RTLSAT_ASSERT(expr)
#else
#define RTLSAT_DASSERT(expr) \
  do {                       \
  } while (0)
#endif

#define RTLSAT_UNREACHABLE(msg) \
  ::rtlsat::assert_fail("unreachable", __FILE__, __LINE__, (msg))
