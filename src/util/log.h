// Minimal leveled logging.
//
// The solver is a library; by default it is silent (kWarn). Examples and
// benches raise the level with set_log_level(). Messages are printf-style
// because the hot call sites predate std::format being cheap to compile.
//
// Embedders (and the trace subsystem) can capture log output instead of
// losing it to stderr by installing a sink with set_log_sink(); the sink
// receives a LogRecord carrying the level, a monotonic timestamp, the
// emitting thread's id, and the formatted message. With no sink installed
// the stderr output format is byte-identical to the historical one.
#pragma once

#include <cstdarg>
#include <cstdint>

namespace rtlsat {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3, kTrace = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

// True if a message at `level` would be emitted; guards expensive argument
// construction at call sites.
bool log_enabled(LogLevel level);

void log_msg(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

// A captured log message. `message` is only valid for the duration of the
// sink call; copy it if you keep it.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  double t_seconds = 0;       // monotonic, since the first log call
  std::uint64_t thread_id = 0;
  const char* message = nullptr;  // formatted, no trailing newline
};

// Redirects log output to `sink` (with `user` passed through). Passing a
// null sink restores the default stderr behavior. The sink is called with
// the logging thread's context; it must be thread-safe if the embedder
// logs from several threads.
using LogSink = void (*)(void* user, const LogRecord& record);
void set_log_sink(LogSink sink, void* user);

}  // namespace rtlsat

#define RTLSAT_LOG(level, ...)                                  \
  do {                                                          \
    if (::rtlsat::log_enabled(level))                           \
      ::rtlsat::log_msg(level, __VA_ARGS__);                    \
  } while (0)

#define RTLSAT_INFO(...) RTLSAT_LOG(::rtlsat::LogLevel::kInfo, __VA_ARGS__)
#define RTLSAT_WARN(...) RTLSAT_LOG(::rtlsat::LogLevel::kWarn, __VA_ARGS__)
#define RTLSAT_DEBUG(...) RTLSAT_LOG(::rtlsat::LogLevel::kDebug, __VA_ARGS__)
#define RTLSAT_TRACE(...) RTLSAT_LOG(::rtlsat::LogLevel::kTrace, __VA_ARGS__)
