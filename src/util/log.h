// Minimal leveled logging.
//
// The solver is a library; by default it is silent (kWarn). Examples and
// benches raise the level with set_log_level(). Messages are printf-style
// because the hot call sites predate std::format being cheap to compile.
#pragma once

#include <cstdarg>

namespace rtlsat {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3, kTrace = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

// True if a message at `level` would be emitted; guards expensive argument
// construction at call sites.
bool log_enabled(LogLevel level);

void log_msg(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace rtlsat

#define RTLSAT_LOG(level, ...)                                  \
  do {                                                          \
    if (::rtlsat::log_enabled(level))                           \
      ::rtlsat::log_msg(level, __VA_ARGS__);                    \
  } while (0)

#define RTLSAT_INFO(...) RTLSAT_LOG(::rtlsat::LogLevel::kInfo, __VA_ARGS__)
#define RTLSAT_WARN(...) RTLSAT_LOG(::rtlsat::LogLevel::kWarn, __VA_ARGS__)
#define RTLSAT_DEBUG(...) RTLSAT_LOG(::rtlsat::LogLevel::kDebug, __VA_ARGS__)
#define RTLSAT_TRACE(...) RTLSAT_LOG(::rtlsat::LogLevel::kTrace, __VA_ARGS__)
