// Named counters the solver exports so experiments can report, e.g., the
// number of data-path implications (the paper's §5.1 explanation of the
// b13_3 anomaly rests on that counter).
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace rtlsat {

class Stats {
 public:
  std::int64_t& counter(const std::string& name) { return counters_[name]; }

  std::int64_t get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  void add(const std::string& name, std::int64_t delta) {
    counters_[name] += delta;
  }

  void clear() { counters_.clear(); }

  const std::map<std::string, std::int64_t>& all() const { return counters_; }

  // Multi-line "name = value" dump, sorted by name.
  std::string to_string() const;

 private:
  std::map<std::string, std::int64_t> counters_;
};

}  // namespace rtlsat
