// Named counters and value-distribution histograms the solver exports so
// experiments can report, e.g., the number of data-path implications (the
// paper's §5.1 explanation of the b13_3 anomaly rests on that counter) or
// the learned-clause length distribution.
//
// Hot-path convention: counter(name) returns a stable std::int64_t& (and
// histogram(name) a stable Histogram&) — resolve the handle ONCE at
// construction time and increment through the reference. Calling
// add(name, 1) per event costs a string hash + map walk and is reserved
// for cold paths. bench/micro_stats.cpp measures the difference.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <string>

namespace rtlsat {

// A power-of-two-bucketed distribution: bucket 0 counts values ≤ 0 and
// bucket i ≥ 1 counts values in [2^(i−1), 2^i − 1]. Adding a sample is a
// handful of instructions (bit_width + array increment), cheap enough for
// per-conflict recording.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void add(std::int64_t value) {
    if (count_ == 0 || value < min_) min_ = value;
    if (count_ == 0 || value > max_) max_ = value;
    ++count_;
    sum_ += value;
    ++buckets_[static_cast<std::size_t>(bucket_index(value))];
  }

  std::int64_t count() const { return count_; }
  std::int64_t sum() const { return sum_; }
  std::int64_t min() const { return count_ == 0 ? 0 : min_; }
  std::int64_t max() const { return count_ == 0 ? 0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  const std::array<std::int64_t, kBuckets>& buckets() const { return buckets_; }

  static int bucket_index(std::int64_t value) {
    if (value <= 0) return 0;
    const int width =
        static_cast<int>(std::bit_width(static_cast<std::uint64_t>(value)));
    return width < kBuckets ? width : kBuckets - 1;
  }
  // Inclusive range covered by bucket i (bucket 0 is (−∞, 0]).
  static std::int64_t bucket_lo(int i) {
    if (i <= 0) return INT64_MIN;
    return std::int64_t{1} << (i - 1);
  }
  static std::int64_t bucket_hi(int i) {
    if (i <= 0) return 0;
    if (i >= kBuckets - 1) return INT64_MAX;
    return (std::int64_t{1} << i) - 1;
  }

  // Accumulates another histogram into this one (bucket-wise addition;
  // min/max/sum/count combine exactly). The portfolio merges per-worker
  // histograms this way — merge(a, b) equals recording a's and b's samples
  // into one histogram in any order.
  void merge(const Histogram& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ += other.count_;
    sum_ += other.sum_;
    for (int i = 0; i < kBuckets; ++i) {
      buckets_[static_cast<std::size_t>(i)] +=
          other.buckets_[static_cast<std::size_t>(i)];
    }
  }

  // "count=N sum=S min=m max=M mean=x.x" one-line summary.
  std::string to_string() const;

 private:
  std::int64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  std::array<std::int64_t, kBuckets> buckets_{};
};

class Stats {
 public:
  // Stable reference: std::map nodes never move, so handles resolved at
  // construction stay valid for the Stats object's lifetime.
  std::int64_t& counter(const std::string& name) { return counters_[name]; }

  std::int64_t get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  void add(const std::string& name, std::int64_t delta) {
    counters_[name] += delta;
  }

  // Stable reference, same contract as counter().
  Histogram& histogram(const std::string& name) { return histograms_[name]; }
  // nullptr when no sample was ever recorded under `name`.
  const Histogram* find_histogram(const std::string& name) const {
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
  }

  // Accumulates another registry into this one: counters with the same
  // name add, histograms merge bucket-wise, names unique to `other` are
  // copied. This is how the portfolio folds its per-worker registries into
  // one report. Stats itself is NOT thread-safe — the concurrency model is
  // one instance per worker, merged after the workers join; handles
  // resolved via counter()/histogram() stay valid across merges (std::map
  // nodes never move).
  void merge(const Stats& other) {
    for (const auto& [name, value] : other.counters_) counters_[name] += value;
    for (const auto& [name, h] : other.histograms_) histograms_[name].merge(h);
  }

  void clear() {
    counters_.clear();
    histograms_.clear();
  }

  const std::map<std::string, std::int64_t>& all() const { return counters_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  // Multi-line "name = value" dump, sorted by name; histograms follow the
  // counters as "name : count=… sum=… min=… max=… mean=…" lines.
  std::string to_string() const;

 private:
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace rtlsat
