#include "util/strings.h"

#include <cstdarg>
#include <cstdio>

namespace rtlsat {

std::string str_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string_view> split(std::string_view text,
                                    std::string_view seps) {
  std::vector<std::string_view> fields;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t start = text.find_first_not_of(seps, pos);
    if (start == std::string_view::npos) break;
    std::size_t end = text.find_first_of(seps, start);
    if (end == std::string_view::npos) end = text.size();
    fields.push_back(text.substr(start, end - start));
    pos = end;
  }
  return fields;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string pad_left(std::string_view text, std::size_t width) {
  std::string out(text);
  if (out.size() < width) out.insert(0, width - out.size(), ' ');
  return out;
}

std::string pad_right(std::string_view text, std::size_t width) {
  std::string out(text);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string format_runtime(double seconds, bool timed_out, bool aborted) {
  if (aborted) return "-A-";
  if (timed_out) return "-to-";
  return str_format("%.2f", seconds);
}

}  // namespace rtlsat
