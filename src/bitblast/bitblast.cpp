#include "bitblast/bitblast.h"

#include <algorithm>

#include "trace/trace.h"

namespace rtlsat::bitblast {

using ir::NetId;
using ir::Node;
using ir::Op;
using sat::Lit;

BitBlaster::BitBlaster(const ir::Circuit& circuit, sat::Solver& solver)
    : circuit_(circuit), solver_(solver) {
  trace::ScopedPhase phase(&trace::global(), nullptr, "bitblast_encode");
  true_var_ = solver_.new_var();
  solver_.add_clause({true_lit()});
  bits_.resize(circuit_.num_nets());
  for (NetId id = 0; id < circuit_.num_nets(); ++id) encode_node(id);
  trace::global().record(trace::EventKind::kBitblast, 0,
                         static_cast<std::int64_t>(solver_.num_vars()),
                         static_cast<std::int64_t>(circuit_.num_nets()));
}

Lit BitBlaster::fresh() { return Lit(solver_.new_var(), true); }

Lit BitBlaster::enc_and(const std::vector<Lit>& ins) {
  if (ins.empty()) return true_lit();
  if (ins.size() == 1) return ins[0];
  const Lit z = fresh();
  std::vector<Lit> big{z};
  for (const Lit a : ins) {
    solver_.add_clause({~z, a});  // z → a
    big.push_back(~a);
  }
  solver_.add_clause(std::move(big));  // ∧a → z
  return z;
}

Lit BitBlaster::enc_or(const std::vector<Lit>& ins) {
  if (ins.empty()) return false_lit();
  if (ins.size() == 1) return ins[0];
  std::vector<Lit> negated;
  negated.reserve(ins.size());
  for (const Lit a : ins) negated.push_back(~a);
  return ~enc_and(negated);
}

Lit BitBlaster::enc_xor(Lit a, Lit b) {
  const Lit z = fresh();
  solver_.add_clause({~z, a, b});
  solver_.add_clause({~z, ~a, ~b});
  solver_.add_clause({z, ~a, b});
  solver_.add_clause({z, a, ~b});
  return z;
}

Lit BitBlaster::enc_mux(Lit s, Lit t, Lit e) {
  const Lit z = fresh();
  solver_.add_clause({~s, ~t, z});
  solver_.add_clause({~s, t, ~z});
  solver_.add_clause({s, ~e, z});
  solver_.add_clause({s, e, ~z});
  // Redundant but arc-consistency-improving: equal branches force z.
  solver_.add_clause({~t, ~e, z});
  solver_.add_clause({t, e, ~z});
  return z;
}

std::pair<Lit, Lit> BitBlaster::enc_full_adder(Lit a, Lit b, Lit cin) {
  const Lit sum = enc_xor(enc_xor(a, b), cin);
  const Lit cout = fresh();
  solver_.add_clause({~a, ~b, cout});
  solver_.add_clause({~a, ~cin, cout});
  solver_.add_clause({~b, ~cin, cout});
  solver_.add_clause({a, b, ~cout});
  solver_.add_clause({a, cin, ~cout});
  solver_.add_clause({b, cin, ~cout});
  return {sum, cout};
}

std::vector<Lit> BitBlaster::enc_adder(const std::vector<Lit>& a,
                                       const std::vector<Lit>& b, Lit cin) {
  RTLSAT_ASSERT(a.size() == b.size());
  std::vector<Lit> sum(a.size(), false_lit());
  Lit carry = cin;
  for (std::size_t i = 0; i < a.size(); ++i) {
    auto [s, c] = enc_full_adder(a[i], b[i], carry);
    sum[i] = s;
    carry = c;  // final carry drops: wrapping arithmetic
  }
  return sum;
}

Lit BitBlaster::enc_eq_words(const std::vector<Lit>& a,
                             const std::vector<Lit>& b) {
  RTLSAT_ASSERT(a.size() == b.size());
  std::vector<Lit> bit_eqs;
  bit_eqs.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    bit_eqs.push_back(~enc_xor(a[i], b[i]));
  return enc_and(bit_eqs);
}

Lit BitBlaster::enc_cmp_words(const std::vector<Lit>& a,
                              const std::vector<Lit>& b, bool strict) {
  RTLSAT_ASSERT(a.size() == b.size());
  // LSB→MSB chain: res_i = (¬a_i ∧ b_i) ∨ ((a_i ↔ b_i) ∧ res_{i−1}),
  // seeded with res_{−1} = (strict ? 0 : 1).
  Lit res = constant(!strict);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Lit lt_here = enc_and({~a[i], b[i]});
    const Lit eq_here = ~enc_xor(a[i], b[i]);
    res = enc_or({lt_here, enc_and({eq_here, res})});
  }
  return res;
}

void BitBlaster::encode_node(NetId id) {
  const Node& n = circuit_.node(id);
  const int w = n.width;
  std::vector<Lit>& out = bits_[id];
  auto in = [&](std::size_t i) -> const std::vector<Lit>& {
    return bits_[n.operands[i]];
  };

  switch (n.op) {
    case Op::kInput:
      out.reserve(w);
      for (int k = 0; k < w; ++k) out.push_back(fresh());
      return;
    case Op::kConst:
      out.reserve(w);
      for (int k = 0; k < w; ++k) out.push_back(constant((n.imm >> k) & 1));
      return;
    case Op::kAnd: {
      std::vector<Lit> ins;
      for (NetId o : n.operands) ins.push_back(bits_[o][0]);
      out = {enc_and(ins)};
      return;
    }
    case Op::kOr: {
      std::vector<Lit> ins;
      for (NetId o : n.operands) ins.push_back(bits_[o][0]);
      out = {enc_or(ins)};
      return;
    }
    case Op::kNot:
      out = {~in(0)[0]};
      return;
    case Op::kXor:
      out = {enc_xor(in(0)[0], in(1)[0])};
      return;
    case Op::kMux: {
      const Lit s = in(0)[0];
      out.reserve(w);
      for (int k = 0; k < w; ++k)
        out.push_back(enc_mux(s, in(1)[static_cast<std::size_t>(k)],
                              in(2)[static_cast<std::size_t>(k)]));
      return;
    }
    case Op::kAdd:
      out = enc_adder(in(0), in(1), false_lit());
      return;
    case Op::kSub: {
      // a − b = a + ~b + 1.
      std::vector<Lit> nb;
      nb.reserve(w);
      for (const Lit l : in(1)) nb.push_back(~l);
      out = enc_adder(in(0), nb, true_lit());
      return;
    }
    case Op::kMulC: {
      // Σ over set bits j of k: (a << j), accumulated with wrapping adders.
      std::vector<Lit> acc(static_cast<std::size_t>(w), false_lit());
      for (int j = 0; j < w; ++j) {
        if (((n.imm >> j) & 1) == 0) continue;
        std::vector<Lit> shifted(static_cast<std::size_t>(w), false_lit());
        for (int k = j; k < w; ++k)
          shifted[static_cast<std::size_t>(k)] =
              in(0)[static_cast<std::size_t>(k - j)];
        acc = enc_adder(acc, shifted, false_lit());
      }
      out = std::move(acc);
      return;
    }
    case Op::kShlC: {
      const int k = static_cast<int>(n.imm);
      out.assign(static_cast<std::size_t>(w), false_lit());
      for (int i = k; i < w; ++i)
        out[static_cast<std::size_t>(i)] = in(0)[static_cast<std::size_t>(i - k)];
      return;
    }
    case Op::kShrC: {
      const int k = static_cast<int>(n.imm);
      out.assign(static_cast<std::size_t>(w), false_lit());
      for (int i = 0; i + k < w; ++i)
        out[static_cast<std::size_t>(i)] = in(0)[static_cast<std::size_t>(i + k)];
      return;
    }
    case Op::kNotW:
      out.reserve(w);
      for (const Lit l : in(0)) out.push_back(~l);
      return;
    case Op::kConcat: {
      const std::vector<Lit>& hi = in(0);
      const std::vector<Lit>& lo = in(1);
      out = lo;
      out.insert(out.end(), hi.begin(), hi.end());
      return;
    }
    case Op::kExtract: {
      const int lo_bit = static_cast<int>(n.imm2);
      out.reserve(w);
      for (int k = 0; k < w; ++k)
        out.push_back(in(0)[static_cast<std::size_t>(lo_bit + k)]);
      return;
    }
    case Op::kZext:
      out = in(0);
      out.resize(static_cast<std::size_t>(w), false_lit());
      return;
    case Op::kMin:
    case Op::kMax: {
      const Lit a_lt_b = enc_cmp_words(in(0), in(1), /*strict=*/true);
      const Lit pick_a = n.op == Op::kMin ? a_lt_b : ~a_lt_b;
      out.reserve(w);
      for (int k = 0; k < w; ++k)
        out.push_back(enc_mux(pick_a, in(0)[static_cast<std::size_t>(k)],
                              in(1)[static_cast<std::size_t>(k)]));
      return;
    }
    case Op::kEq:
      out = {enc_eq_words(in(0), in(1))};
      return;
    case Op::kNe:
      out = {~enc_eq_words(in(0), in(1))};
      return;
    case Op::kLt:
      out = {enc_cmp_words(in(0), in(1), /*strict=*/true)};
      return;
    case Op::kLe:
      out = {enc_cmp_words(in(0), in(1), /*strict=*/false)};
      return;
  }
  RTLSAT_UNREACHABLE("unhandled op in bitblast");
}

void BitBlaster::assert_equals(NetId net, std::int64_t value) {
  RTLSAT_ASSERT(circuit_.domain(net).contains(value));
  const int w = circuit_.width(net);
  for (int k = 0; k < w; ++k) {
    const Lit b = bit(net, k);
    solver_.add_clause({((value >> k) & 1) ? b : ~b});
  }
}

std::int64_t BitBlaster::model_value(NetId net) const {
  std::int64_t v = 0;
  const int w = circuit_.width(net);
  for (int k = 0; k < w; ++k) {
    const Lit b = bit(net, k);
    const bool bit_set = solver_.model_value(b.var()) == b.positive();
    if (bit_set) v |= std::int64_t{1} << k;
  }
  return v;
}

CheckResult check_sat(const ir::Circuit& circuit, ir::NetId goal,
                      bool goal_value, sat::SolverOptions options) {
  sat::Solver solver(options);
  BitBlaster blaster(circuit, solver);
  blaster.assert_bool(goal, goal_value);
  CheckResult result;
  result.result = solver.solve();
  if (result.result == sat::Result::kSat) {
    for (NetId input : circuit.inputs())
      result.input_model.emplace(input, blaster.model_value(input));
  }
  return result;
}

}  // namespace rtlsat::bitblast
