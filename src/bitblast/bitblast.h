// Tseitin bit-blasting of the word-level netlist into CNF.
//
// This implements the approach the paper's introduction motivates against
// ("the most popular method of solving a satisfiability problem on RTL is
// to use a Boolean SAT solver on its Boolean translation") — it serves as
// the structure-blind baseline column in the Table 2 bench, and as the
// correctness oracle the property tests compare HDPLL's answers to.
//
// Encoding notes: wiring operators (concat/extract/zext/shifts) are free —
// a net's bits may alias other nets' literals or constants. Adders are
// ripple-carry with arc-consistent full-adder clauses; comparators are
// LSB-to-MSB chains; multiplication by constant decomposes into shifted
// adds.
#pragma once

#include <unordered_map>
#include <vector>

#include "ir/circuit.h"
#include "sat/solver.h"

namespace rtlsat::bitblast {

class BitBlaster {
 public:
  // Encodes the whole circuit into `solver` immediately.
  BitBlaster(const ir::Circuit& circuit, sat::Solver& solver);

  // The SAT literal carrying bit k of a net.
  sat::Lit bit(ir::NetId net, int k) const {
    RTLSAT_ASSERT(k >= 0 && k < circuit_.width(net));
    return bits_[net][static_cast<std::size_t>(k)];
  }

  // Pins a net to a concrete value / a Boolean net to a truth value.
  void assert_equals(ir::NetId net, std::int64_t value);
  void assert_bool(ir::NetId net, bool value) {
    assert_equals(net, value ? 1 : 0);
  }

  // Reads a net's value out of the solver model (after kSat).
  std::int64_t model_value(ir::NetId net) const;

 private:
  sat::Lit true_lit() const { return sat::Lit(true_var_, true); }
  sat::Lit false_lit() const { return sat::Lit(true_var_, false); }
  sat::Lit constant(bool v) const { return v ? true_lit() : false_lit(); }
  sat::Lit fresh();

  // Gate encoders; each returns the output literal.
  sat::Lit enc_and(const std::vector<sat::Lit>& ins);
  sat::Lit enc_or(const std::vector<sat::Lit>& ins);
  sat::Lit enc_xor(sat::Lit a, sat::Lit b);
  sat::Lit enc_mux(sat::Lit s, sat::Lit t, sat::Lit e);
  // sum/carry of a full adder.
  std::pair<sat::Lit, sat::Lit> enc_full_adder(sat::Lit a, sat::Lit b,
                                               sat::Lit cin);
  std::vector<sat::Lit> enc_adder(const std::vector<sat::Lit>& a,
                                  const std::vector<sat::Lit>& b,
                                  sat::Lit cin);
  sat::Lit enc_eq_words(const std::vector<sat::Lit>& a,
                        const std::vector<sat::Lit>& b);
  // a < b (strict) or a ≤ b, unsigned.
  sat::Lit enc_cmp_words(const std::vector<sat::Lit>& a,
                         const std::vector<sat::Lit>& b, bool strict);

  void encode_node(ir::NetId id);

  const ir::Circuit& circuit_;
  sat::Solver& solver_;
  sat::Var true_var_;
  std::vector<std::vector<sat::Lit>> bits_;
};

// One-call satisfiability check of `goal = goal_value`. On kSat,
// `input_model` (if non-null) receives values for every primary input.
struct CheckResult {
  sat::Result result = sat::Result::kTimeout;
  std::unordered_map<ir::NetId, std::int64_t> input_model;
};
CheckResult check_sat(const ir::Circuit& circuit, ir::NetId goal,
                      bool goal_value = true, sat::SolverOptions options = {});

}  // namespace rtlsat::bitblast
