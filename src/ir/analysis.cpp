#include "ir/analysis.h"

#include <algorithm>

namespace rtlsat::ir {

std::vector<int> levelize(const Circuit& circuit) {
  std::vector<int> level(circuit.num_nets(), 0);
  for (NetId id = 0; id < circuit.num_nets(); ++id) {
    const Node& n = circuit.node(id);
    int max_in = -1;
    for (NetId o : n.operands) max_in = std::max(max_in, level[o]);
    level[id] = is_source(n.op) ? 0 : max_in + 1;
  }
  return level;
}

std::vector<std::vector<NetId>> fanouts(const Circuit& circuit) {
  std::vector<std::vector<NetId>> fo(circuit.num_nets());
  for (NetId id = 0; id < circuit.num_nets(); ++id) {
    for (NetId o : circuit.node(id).operands) fo[o].push_back(id);
  }
  return fo;
}

std::vector<int> fanout_counts(const Circuit& circuit) {
  std::vector<int> count(circuit.num_nets(), 0);
  for (NetId id = 0; id < circuit.num_nets(); ++id) {
    for (NetId o : circuit.node(id).operands) ++count[o];
  }
  return count;
}

FaninCone fanin_cone(const Circuit& circuit, NetId root) {
  return fanin_cone(circuit, std::vector<NetId>{root});
}

FaninCone fanin_cone(const Circuit& circuit, const std::vector<NetId>& roots) {
  FaninCone cone;
  cone.mask.assign(circuit.num_nets(), false);
  std::vector<NetId> stack(roots);
  while (!stack.empty()) {
    const NetId id = stack.back();
    stack.pop_back();
    if (cone.mask[id]) continue;
    cone.mask[id] = true;
    for (NetId o : circuit.node(id).operands) {
      if (!cone.mask[o]) stack.push_back(o);
    }
  }
  cone.members.reserve(circuit.num_nets());
  for (NetId id = 0; id < circuit.num_nets(); ++id) {
    if (cone.mask[id]) cone.members.push_back(id);
  }
  return cone;
}

std::vector<PredicateInfo> extract_predicates(const Circuit& circuit) {
  const auto level = levelize(circuit);
  std::vector<PredicateInfo> preds;
  std::vector<std::size_t> index_of(circuit.num_nets(), SIZE_MAX);

  auto ensure = [&](NetId id) -> PredicateInfo& {
    if (index_of[id] == SIZE_MAX) {
      index_of[id] = preds.size();
      preds.push_back(PredicateInfo{id, level[id], false, false});
    }
    return preds[index_of[id]];
  };

  for (NetId id = 0; id < circuit.num_nets(); ++id) {
    const Node& n = circuit.node(id);
    if (is_comparator(n.op)) {
      // Only word comparisons bridge control and data-path; 1-bit
      // comparisons are plain control logic.
      if (circuit.width(n.operands[0]) > 1)
        ensure(id).is_comparator_output = true;
    }
    // Constant selects were folded by the builder, so any remaining select
    // is genuine control. Word muxes only — a 1-bit mux is Boolean logic.
    if (n.op == Op::kMux && n.width > 1) ensure(n.operands[0]).is_mux_select = true;
  }
  std::sort(preds.begin(), preds.end(),
            [](const PredicateInfo& a, const PredicateInfo& b) {
              return a.level != b.level ? a.level < b.level : a.net < b.net;
            });
  return preds;
}

std::vector<NetId> predicate_logic_cone(const Circuit& circuit) {
  const auto preds = extract_predicates(circuit);
  std::vector<NetId> bool_roots;
  for (const auto& p : preds) bool_roots.push_back(p.net);
  // Everything Boolean reachable upstream of a predicate, plus all Boolean
  // gates (control logic proper).
  const auto cone = fanin_cone(circuit, bool_roots);
  std::vector<NetId> result;
  for (NetId id = 0; id < circuit.num_nets(); ++id) {
    if (!circuit.is_bool(id)) continue;
    if (cone.mask[id] || is_boolean_gate(circuit.node(id).op))
      result.push_back(id);
  }
  return result;
}

}  // namespace rtlsat::ir
