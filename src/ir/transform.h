// Circuit-to-circuit transformations: cone-of-influence extraction and a
// peephole-rewriting rebuild. Standard BMC preprocessing — the unrolled
// instances carry logic (unobserved outputs, shift tails) that no property
// depends on, and wiring chains (extract-of-concat from serial registers)
// that collapse once rebuilt.
//
// Both transforms rebuild through the Circuit builder, so all of its
// canonicalizations (constant folding, hash-consing, operand ordering)
// re-apply to the surviving logic.
#pragma once

#include <vector>

#include "ir/circuit.h"

namespace rtlsat::ir {

struct TransformResult {
  Circuit circuit;
  // old net id → new net id (kNoNet for dropped logic).
  std::vector<NetId> net_map;
};

// Rebuilds only the transitive fan-in cone of `roots`.
TransformResult extract_cone(const Circuit& circuit,
                             const std::vector<NetId>& roots);

// extract_cone plus local rewrites during the rebuild:
//   extract entirely inside one side of a concat  → extract of that side
//   extract of zext inside the original width     → extract of the operand
//   shr of concat dropping the whole low part     → zext of the high part
//   concat with a zero-width... (handled by builder folds)
TransformResult simplify(const Circuit& circuit,
                         const std::vector<NetId>& roots);

}  // namespace rtlsat::ir
