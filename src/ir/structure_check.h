// Structural well-formedness checking over a Circuit's raw node vector —
// the single source of truth shared by Circuit::validate() (which aborts on
// the first defect) and the lint rule registry in src/lint/ (which turns
// every defect into a Diagnostic).
//
// The builder API cannot produce most of these defects (it asserts at
// construction time); they arise from hand-assembled node vectors,
// deserializers, and future frontends — exactly the inputs the lint CLI is
// for. Circuit::add_unchecked() exists so such netlists can be represented
// at all.
#pragma once

#include <functional>
#include <string>

#include "ir/circuit.h"

namespace rtlsat::ir {

// One structural defect. `kind` maps 1:1 onto a lint rule id (see
// structure_defect_id); `net` is the offending node.
struct StructuralDefect {
  enum class Kind {
    kOperandCount,   // wrong number of operands for the op
    kOperandWidth,   // operand/result width inconsistency
    kBooleanWidth,   // boolean gate or predicate with non-1-bit net
    kMuxSelect,      // mux select is not 1-bit
    kExtractBounds,  // kExtract bit range out of the operand's width
    kImmRange,       // kMulC/kShlC/kShrC immediate out of range
    kMaxWidth,       // net width outside [1, kMaxWidth]
    kConstRange,     // kConst value outside the width's domain
    kCombCycle,      // operand does not precede the node (not a DAG)
    kUndrivenNet,    // operand id is kNoNet or past the node vector
    kUnnamedInput,   // primary input without a name
  };
  Kind kind = Kind::kOperandCount;
  NetId net = kNoNet;
  std::string message;
};

// The stable kebab-case identifier of a defect kind ("operand-count", …).
std::string_view structure_defect_id(StructuralDefect::Kind kind);

// Runs every structural check over every node, invoking `emit` once per
// defect found. Checks are ordered so that a defect that would make later
// checks read out of bounds (undriven/cyclic operands, zero widths)
// suppresses those later checks for that node.
void check_structure(const Circuit& circuit,
                     const std::function<void(StructuralDefect)>& emit);

}  // namespace rtlsat::ir
