#include "ir/structure_check.h"

#include "util/strings.h"

namespace rtlsat::ir {

std::string_view structure_defect_id(StructuralDefect::Kind kind) {
  using Kind = StructuralDefect::Kind;
  switch (kind) {
    case Kind::kOperandCount: return "operand-count";
    case Kind::kOperandWidth: return "operand-width";
    case Kind::kBooleanWidth: return "boolean-width";
    case Kind::kMuxSelect: return "mux-select";
    case Kind::kExtractBounds: return "extract-bounds";
    case Kind::kImmRange: return "imm-range";
    case Kind::kMaxWidth: return "max-width";
    case Kind::kConstRange: return "const-range";
    case Kind::kCombCycle: return "comb-cycle";
    case Kind::kUndrivenNet: return "undriven-net";
    case Kind::kUnnamedInput: return "unnamed-input";
  }
  return "?";
}

namespace {

// Expected operand count per op; −1 for the n-ary gates (≥ 2).
int expected_operands(Op op) {
  switch (op) {
    case Op::kInput:
    case Op::kConst:
      return 0;
    case Op::kNot:
    case Op::kMulC:
    case Op::kShlC:
    case Op::kShrC:
    case Op::kNotW:
    case Op::kExtract:
    case Op::kZext:
      return 1;
    case Op::kXor:
    case Op::kAdd:
    case Op::kSub:
    case Op::kConcat:
    case Op::kMin:
    case Op::kMax:
    case Op::kEq:
    case Op::kNe:
    case Op::kLt:
    case Op::kLe:
      return 2;
    case Op::kMux:
      return 3;
    case Op::kAnd:
    case Op::kOr:
      return -1;
  }
  return -1;
}

}  // namespace

void check_structure(const Circuit& circuit,
                     const std::function<void(StructuralDefect)>& emit) {
  using Kind = StructuralDefect::Kind;
  const std::size_t n = circuit.num_nets();
  for (NetId id = 0; id < n; ++id) {
    const Node& node = circuit.node(id);
    auto defect = [&](Kind kind, std::string message) {
      emit({kind, id, std::move(message)});
    };

    // Width bounds first: an out-of-range width poisons every width
    // comparison and the domain computation below.
    const bool width_ok = node.width >= 1 && node.width <= kMaxWidth;
    if (!width_ok) {
      defect(Kind::kMaxWidth,
             str_format("%s node has width %d, outside [1, %d]",
                        std::string(op_name(node.op)).c_str(), node.width,
                        kMaxWidth));
    }

    // Operand references: dangling ids poison everything downstream;
    // forward references break the DAG order every consumer relies on
    // (evaluate(), the propagation engine's fixpoint, conflict analysis).
    bool operands_ok = true;
    for (const NetId o : node.operands) {
      if (o == kNoNet || o >= n) {
        operands_ok = false;
        defect(Kind::kUndrivenNet,
               str_format("operand net %u of %s node is not driven", o,
                          std::string(op_name(node.op)).c_str()));
      } else if (o >= id) {
        operands_ok = false;
        defect(Kind::kCombCycle,
               str_format("operand n%u does not precede %s node n%u — the "
                          "netlist has a combinational cycle",
                          o, std::string(op_name(node.op)).c_str(), id));
      }
    }

    const int arity = expected_operands(node.op);
    const auto count = static_cast<int>(node.operands.size());
    if (arity >= 0 ? count != arity : count < 2) {
      defect(Kind::kOperandCount,
             str_format("%s node has %d operand%s, expected %s",
                        std::string(op_name(node.op)).c_str(), count,
                        count == 1 ? "" : "s",
                        arity >= 0 ? std::to_string(arity).c_str() : "≥ 2"));
      operands_ok = false;
    }

    if (node.op == Op::kInput && node.name.empty()) {
      defect(Kind::kUnnamedInput, "primary input has no name");
    }
    if (node.op == Op::kConst && width_ok &&
        !Interval::full_width(node.width).contains(node.imm)) {
      defect(Kind::kConstRange,
             str_format("constant %lld does not fit in %d bit%s",
                        static_cast<long long>(node.imm), node.width,
                        node.width == 1 ? "" : "s"));
    }

    if (!width_ok || !operands_ok) continue;
    const auto w = [&](std::size_t i) {
      return circuit.node(node.operands[i]).width;
    };

    if (is_boolean_gate(node.op)) {
      if (node.width != 1) {
        defect(Kind::kBooleanWidth,
               str_format("boolean %s gate has width %d, expected 1",
                          std::string(op_name(node.op)).c_str(), node.width));
      }
      for (std::size_t i = 0; i < node.operands.size(); ++i) {
        if (w(i) != 1) {
          defect(Kind::kBooleanWidth,
                 str_format("operand n%u of boolean %s gate has width %d, "
                            "expected 1",
                            node.operands[i],
                            std::string(op_name(node.op)).c_str(), w(i)));
        }
      }
      continue;
    }
    if (is_comparator(node.op)) {
      if (node.width != 1) {
        defect(Kind::kBooleanWidth,
               str_format("%s predicate has width %d, expected 1",
                          std::string(op_name(node.op)).c_str(), node.width));
      }
      if (w(0) != w(1)) {
        defect(Kind::kOperandWidth,
               str_format("%s predicate compares widths %d and %d",
                          std::string(op_name(node.op)).c_str(), w(0), w(1)));
      }
      continue;
    }

    switch (node.op) {
      case Op::kMux:
        if (w(0) != 1) {
          defect(Kind::kMuxSelect,
                 str_format("mux select n%u has width %d, expected 1",
                            node.operands[0], w(0)));
        }
        if (w(1) != node.width || w(2) != node.width) {
          defect(Kind::kOperandWidth,
                 str_format("mux branches have widths %d and %d, result has "
                            "width %d",
                            w(1), w(2), node.width));
        }
        break;
      case Op::kAdd:
      case Op::kSub:
      case Op::kMin:
      case Op::kMax:
        if (w(0) != node.width || w(1) != node.width) {
          defect(Kind::kOperandWidth,
                 str_format("%s operand widths %d, %d do not match result "
                            "width %d",
                            std::string(op_name(node.op)).c_str(), w(0), w(1),
                            node.width));
        }
        break;
      case Op::kMulC:
        if (w(0) != node.width) {
          defect(Kind::kOperandWidth,
                 str_format("mulc operand width %d does not match result "
                            "width %d",
                            w(0), node.width));
        }
        if (node.imm < 0) {
          defect(Kind::kImmRange,
                 str_format("mulc multiplier %lld is negative",
                            static_cast<long long>(node.imm)));
        }
        break;
      case Op::kShlC:
      case Op::kShrC:
        if (w(0) != node.width) {
          defect(Kind::kOperandWidth,
                 str_format("%s operand width %d does not match result "
                            "width %d",
                            std::string(op_name(node.op)).c_str(), w(0),
                            node.width));
        }
        if (node.imm < 0 || node.imm >= node.width) {
          defect(Kind::kImmRange,
                 str_format("shift amount %lld outside [0, %d)",
                            static_cast<long long>(node.imm), node.width));
        }
        break;
      case Op::kNotW:
        if (w(0) != node.width) {
          defect(Kind::kOperandWidth,
                 str_format("notw operand width %d does not match result "
                            "width %d",
                            w(0), node.width));
        }
        break;
      case Op::kConcat:
        if (w(0) + w(1) != node.width) {
          defect(Kind::kOperandWidth,
                 str_format("concat of widths %d and %d has result width %d, "
                            "expected %d",
                            w(0), w(1), node.width, w(0) + w(1)));
        }
        break;
      case Op::kExtract:
        if (node.imm2 < 0 || node.imm2 > node.imm || node.imm >= w(0)) {
          defect(Kind::kExtractBounds,
                 str_format("extract [%lld:%lld] out of bounds for a %d-bit "
                            "operand",
                            static_cast<long long>(node.imm),
                            static_cast<long long>(node.imm2), w(0)));
        } else if (node.imm - node.imm2 + 1 != node.width) {
          defect(Kind::kOperandWidth,
                 str_format("extract [%lld:%lld] has result width %d, "
                            "expected %lld",
                            static_cast<long long>(node.imm),
                            static_cast<long long>(node.imm2), node.width,
                            static_cast<long long>(node.imm - node.imm2 + 1)));
        }
        break;
      case Op::kZext:
        if (node.width < w(0)) {
          defect(Kind::kOperandWidth,
                 str_format("zext narrows a %d-bit operand to %d bits", w(0),
                            node.width));
        }
        break;
      default:
        break;
    }
  }
}

}  // namespace rtlsat::ir
