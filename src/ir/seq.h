// Sequential circuits: a combinational core plus registers and safety
// properties. The experiments' instances (paper §3.1, §5) are bounded model
// checking problems: a SeqCircuit unrolled for k time-frames by bmc::unroll
// into a plain Circuit whose goal net asserts a property violation.
#pragma once

#include <string>
#include <vector>

#include "ir/circuit.h"

namespace rtlsat::ir {

struct Register {
  NetId q = kNoNet;         // current-state net: must be a comb input
  NetId d = kNoNet;         // next-state net computed by the comb core
  std::int64_t init = 0;    // reset value
  std::string name;
};

struct Property {
  std::string name;
  NetId net = kNoNet;  // 1-bit net expected to hold (=1) in every state
};

class SeqCircuit {
 public:
  explicit SeqCircuit(std::string name) : comb_(std::move(name)) {}

  Circuit& comb() { return comb_; }
  const Circuit& comb() const { return comb_; }

  // Declares a state register of `width` bits; returns the q (current
  // state) net to build logic with. The next-state net is bound later.
  NetId add_register(std::string name, int width, std::int64_t init) {
    RTLSAT_ASSERT(Interval::full_width(width).contains(init));
    Register r;
    r.q = comb_.add_input(name, width);
    r.init = init;
    r.name = std::move(name);
    registers_.push_back(r);
    return r.q;
  }
  void bind_next(NetId q, NetId d) {
    for (Register& r : registers_) {
      if (r.q == q) {
        RTLSAT_ASSERT(comb_.width(q) == comb_.width(d));
        r.d = d;
        return;
      }
    }
    RTLSAT_UNREACHABLE("bind_next: not a register");
  }

  void add_property(std::string name, NetId net) {
    RTLSAT_ASSERT(comb_.is_bool(net));
    properties_.push_back({std::move(name), net});
  }

  // Unchecked appends for deserializers and for the lint tests'
  // deliberately broken sequential netlists — no width/init/binding
  // assertions. Circuits built this way must be linted before use.
  void add_register_unchecked(Register r) { registers_.push_back(std::move(r)); }
  void add_property_unchecked(Property p) { properties_.push_back(std::move(p)); }

  const std::vector<Register>& registers() const { return registers_; }
  const std::vector<Property>& properties() const { return properties_; }
  NetId property(std::string_view name) const {
    for (const Property& p : properties_) {
      if (p.name == name) return p.net;
    }
    return kNoNet;
  }

  // Primary inputs = comb inputs that are not register outputs.
  std::vector<NetId> free_inputs() const {
    std::vector<NetId> result;
    for (NetId in : comb_.inputs()) {
      bool is_state = false;
      for (const Register& r : registers_) is_state = is_state || r.q == in;
      if (!is_state) result.push_back(in);
    }
    return result;
  }

  // All registers must have a bound next-state net.
  void validate() const {
    comb_.validate();
    for (const Register& r : registers_)
      RTLSAT_ASSERT_MSG(r.d != kNoNet, "register without next-state binding");
  }

 private:
  Circuit comb_;
  std::vector<Register> registers_;
  std::vector<Property> properties_;
};

}  // namespace rtlsat::ir
