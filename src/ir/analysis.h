// Structural analyses over a Circuit used by both learning (§3 step 1:
// level-ordering, predicate extraction by cone-of-influence) and the
// structural decision strategy (§4: fanout counts, control cones).
#pragma once

#include <vector>

#include "ir/circuit.h"

namespace rtlsat::ir {

// Level-orders the circuit by distance from the primary inputs: sources are
// level 0, every other node is 1 + max over operand levels.
std::vector<int> levelize(const Circuit& circuit);

// fanout[i] lists the nodes that read net i.
std::vector<std::vector<NetId>> fanouts(const Circuit& circuit);

// fanout_count[i] = number of readers of net i (the decision heuristic's
// seed weight per §2.4).
std::vector<int> fanout_counts(const Circuit& circuit);

// Transitive fan-in cone of one or more roots (including the roots) — the
// single dependency-tracking primitive shared by the rebuilder
// (ir/transform), canonical hashing (ir/cone), the presolve analyzer, and
// the fuzz reducer. `mask[i]` answers membership in O(1); `members` lists
// the cone in ascending net-id order, which — the builder being append-only
// — is a topological order (operands before readers).
struct FaninCone {
  std::vector<bool> mask;
  std::vector<NetId> members;
};
FaninCone fanin_cone(const Circuit& circuit, NetId root);
FaninCone fanin_cone(const Circuit& circuit, const std::vector<NetId>& roots);

// Predicate extraction (§3 step 1): the 1-bit nets where control meets
// data-path — comparator outputs, and Boolean nets steering word-level
// operators (mux selects). Sorted by level, lowest first, which is the
// order the static learner probes them in.
struct PredicateInfo {
  NetId net = kNoNet;
  int level = 0;
  bool is_comparator_output = false;
  bool is_mux_select = false;
};
std::vector<PredicateInfo> extract_predicates(const Circuit& circuit);

// All 1-bit nets that feed, directly or transitively, any predicate or any
// Boolean gate — the "predicate logic" cone the learner probes.
std::vector<NetId> predicate_logic_cone(const Circuit& circuit);

}  // namespace rtlsat::ir
