#include "ir/circuit.h"

#include <algorithm>
#include <sstream>

#include "interval/interval_ops.h"
#include "ir/cone.h"
#include "ir/structure_check.h"

namespace rtlsat::ir {

std::string_view op_name(Op op) {
  switch (op) {
    case Op::kInput: return "input";
    case Op::kConst: return "const";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kNot: return "not";
    case Op::kXor: return "xor";
    case Op::kMux: return "mux";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMulC: return "mulc";
    case Op::kShlC: return "shl";
    case Op::kShrC: return "shr";
    case Op::kNotW: return "notw";
    case Op::kConcat: return "concat";
    case Op::kExtract: return "extract";
    case Op::kZext: return "zext";
    case Op::kMin: return "min";
    case Op::kMax: return "max";
    case Op::kEq: return "eq";
    case Op::kNe: return "ne";
    case Op::kLt: return "lt";
    case Op::kLe: return "le";
  }
  return "?";
}

namespace {

std::uint64_t hash_node(const Node& n) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(static_cast<std::uint64_t>(n.op));
  mix(static_cast<std::uint64_t>(n.width));
  mix(static_cast<std::uint64_t>(n.imm));
  mix(static_cast<std::uint64_t>(n.imm2));
  for (NetId id : n.operands) mix(id);
  return h;
}

bool same_structure(const Node& a, const Node& b) {
  return a.op == b.op && a.width == b.width && a.imm == b.imm &&
         a.imm2 == b.imm2 && a.operands == b.operands;
}

}  // namespace

NetId Circuit::push(Node node) {
  RTLSAT_ASSERT(node.width >= 1 && node.width <= kMaxWidth);
  // Inputs are never shared; everything else is hash-consed.
  if (node.op != Op::kInput) {
    if (NetId existing = find_existing(node); existing != kNoNet)
      return existing;
  }
  const NetId id = static_cast<NetId>(nodes_.size());
  structural_hash_[hash_node(node)].push_back(id);
  if (node.op == Op::kInput) inputs_.push_back(id);
  if (!node.name.empty()) names_.emplace(node.name, id);
  nodes_.push_back(std::move(node));
  return id;
}

NetId Circuit::find_existing(const Node& node) const {
  auto it = structural_hash_.find(hash_node(node));
  if (it == structural_hash_.end()) return kNoNet;
  for (NetId cand : it->second) {
    if (same_structure(nodes_[cand], node)) return cand;
  }
  return kNoNet;
}

NetId Circuit::add_input(std::string name, int width) {
  RTLSAT_ASSERT_MSG(!name.empty(), "inputs must be named");
  Node n;
  n.op = Op::kInput;
  n.width = width;
  n.name = std::move(name);
  return push(std::move(n));
}

NetId Circuit::add_const(std::int64_t value, int width) {
  RTLSAT_ASSERT(Interval::full_width(width).contains(value));
  Node n;
  n.op = Op::kConst;
  n.width = width;
  n.imm = value;
  return push(std::move(n));
}

NetId Circuit::add_and(std::vector<NetId> ops) {
  RTLSAT_ASSERT(ops.size() >= 1);
  if (ops.size() == 1) return ops[0];
  for (NetId id : ops) check_bool(id);
  // Fold constants and duplicates; sort for canonical form.
  std::vector<NetId> kept;
  for (NetId id : ops) {
    const Node& d = node(id);
    if (d.op == Op::kConst) {
      if (d.imm == 0) return add_const(0, 1);
      continue;  // AND with 1 is identity
    }
    kept.push_back(id);
  }
  std::sort(kept.begin(), kept.end());
  kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
  if (kept.empty()) return add_const(1, 1);
  if (kept.size() == 1) return kept[0];
  Node n;
  n.op = Op::kAnd;
  n.width = 1;
  n.operands = std::move(kept);
  return push(std::move(n));
}

NetId Circuit::add_or(std::vector<NetId> ops) {
  RTLSAT_ASSERT(ops.size() >= 1);
  if (ops.size() == 1) return ops[0];
  for (NetId id : ops) check_bool(id);
  std::vector<NetId> kept;
  for (NetId id : ops) {
    const Node& d = node(id);
    if (d.op == Op::kConst) {
      if (d.imm == 1) return add_const(1, 1);
      continue;  // OR with 0 is identity
    }
    kept.push_back(id);
  }
  std::sort(kept.begin(), kept.end());
  kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
  if (kept.empty()) return add_const(0, 1);
  if (kept.size() == 1) return kept[0];
  Node n;
  n.op = Op::kOr;
  n.width = 1;
  n.operands = std::move(kept);
  return push(std::move(n));
}

NetId Circuit::add_not(NetId a) {
  check_bool(a);
  const Node& d = node(a);
  if (d.op == Op::kConst) return add_const(1 - d.imm, 1);
  if (d.op == Op::kNot) return d.operands[0];  // ¬¬x = x
  Node n;
  n.op = Op::kNot;
  n.width = 1;
  n.operands = {a};
  return push(std::move(n));
}

NetId Circuit::add_xor(NetId a, NetId b) {
  check_bool(a);
  check_bool(b);
  if (a == b) return add_const(0, 1);
  const Node& da = node(a);
  const Node& db = node(b);
  if (da.op == Op::kConst) return da.imm ? add_not(b) : b;
  if (db.op == Op::kConst) return db.imm ? add_not(a) : a;
  if (a > b) std::swap(a, b);
  Node n;
  n.op = Op::kXor;
  n.width = 1;
  n.operands = {a, b};
  return push(std::move(n));
}

NetId Circuit::add_mux(NetId sel, NetId then_net, NetId else_net) {
  check_bool(sel);
  RTLSAT_ASSERT(width(then_net) == width(else_net));
  if (then_net == else_net) return then_net;
  const Node& ds = node(sel);
  if (ds.op == Op::kConst) return ds.imm ? then_net : else_net;
  Node n;
  n.op = Op::kMux;
  n.width = width(then_net);
  n.operands = {sel, then_net, else_net};
  return push(std::move(n));
}

NetId Circuit::add_add(NetId a, NetId b) {
  RTLSAT_ASSERT(width(a) == width(b));
  const Node& da = node(a);
  const Node& db = node(b);
  if (da.op == Op::kConst && db.op == Op::kConst) {
    const std::int64_t m = std::int64_t{1} << width(a);
    return add_const((da.imm + db.imm) % m, width(a));
  }
  if (da.op == Op::kConst && da.imm == 0) return b;
  if (db.op == Op::kConst && db.imm == 0) return a;
  if (a > b) std::swap(a, b);
  Node n;
  n.op = Op::kAdd;
  n.width = width(a);
  n.operands = {a, b};
  return push(std::move(n));
}

NetId Circuit::add_sub(NetId a, NetId b) {
  RTLSAT_ASSERT(width(a) == width(b));
  const Node& da = node(a);
  const Node& db = node(b);
  if (da.op == Op::kConst && db.op == Op::kConst) {
    const std::int64_t m = std::int64_t{1} << width(a);
    return add_const(((da.imm - db.imm) % m + m) % m, width(a));
  }
  if (db.op == Op::kConst && db.imm == 0) return a;
  if (a == b) return add_const(0, width(a));
  Node n;
  n.op = Op::kSub;
  n.width = width(a);
  n.operands = {a, b};
  return push(std::move(n));
}

NetId Circuit::add_mulc(NetId a, std::int64_t k) {
  RTLSAT_ASSERT(k >= 0);
  if (k == 0) return add_const(0, width(a));
  if (k == 1) return a;
  Node n;
  n.op = Op::kMulC;
  n.width = width(a);
  n.imm = k;
  n.operands = {a};
  return push(std::move(n));
}

NetId Circuit::add_shl(NetId a, int k) {
  RTLSAT_ASSERT(k >= 0 && k < width(a));
  if (k == 0) return a;
  Node n;
  n.op = Op::kShlC;
  n.width = width(a);
  n.imm = k;
  n.operands = {a};
  return push(std::move(n));
}

NetId Circuit::add_shr(NetId a, int k) {
  RTLSAT_ASSERT(k >= 0 && k < width(a));
  if (k == 0) return a;
  Node n;
  n.op = Op::kShrC;
  n.width = width(a);
  n.imm = k;
  n.operands = {a};
  return push(std::move(n));
}

NetId Circuit::add_notw(NetId a) {
  Node n;
  n.op = Op::kNotW;
  n.width = width(a);
  n.operands = {a};
  return push(std::move(n));
}

NetId Circuit::add_concat(NetId hi, NetId lo) {
  const int w = width(hi) + width(lo);
  RTLSAT_ASSERT(w <= kMaxWidth);
  Node n;
  n.op = Op::kConcat;
  n.width = w;
  n.operands = {hi, lo};
  return push(std::move(n));
}

NetId Circuit::add_extract(NetId a, int hi_bit, int lo_bit) {
  RTLSAT_ASSERT(0 <= lo_bit && lo_bit <= hi_bit && hi_bit < width(a));
  if (lo_bit == 0 && hi_bit == width(a) - 1) return a;
  Node n;
  n.op = Op::kExtract;
  n.width = hi_bit - lo_bit + 1;
  n.imm = hi_bit;
  n.imm2 = lo_bit;
  n.operands = {a};
  return push(std::move(n));
}

NetId Circuit::add_zext(NetId a, int w) {
  RTLSAT_ASSERT(w >= width(a));
  if (w == width(a)) return a;
  Node n;
  n.op = Op::kZext;
  n.width = w;
  n.operands = {a};
  return push(std::move(n));
}

NetId Circuit::add_min_raw(NetId a, NetId b) {
  RTLSAT_ASSERT(width(a) == width(b));
  if (a == b) return a;
  if (a > b) std::swap(a, b);
  Node n;
  n.op = Op::kMin;
  n.width = width(a);
  n.operands = {a, b};
  return push(std::move(n));
}

NetId Circuit::add_max_raw(NetId a, NetId b) {
  RTLSAT_ASSERT(width(a) == width(b));
  if (a == b) return a;
  if (a > b) std::swap(a, b);
  Node n;
  n.op = Op::kMax;
  n.width = width(a);
  n.operands = {a, b};
  return push(std::move(n));
}

NetId Circuit::add_eq(NetId a, NetId b) {
  RTLSAT_ASSERT(width(a) == width(b));
  if (width(a) == 1) return add_xnor(a, b);
  return add_and(add_le(a, b), add_le(b, a));
}

NetId Circuit::add_eq_raw(NetId a, NetId b) {
  RTLSAT_ASSERT(width(a) == width(b));
  if (a == b) return add_const(1, 1);
  const Node& da = node(a);
  const Node& db = node(b);
  if (da.op == Op::kConst && db.op == Op::kConst)
    return add_const(da.imm == db.imm ? 1 : 0, 1);
  if (a > b) std::swap(a, b);
  Node n;
  n.op = Op::kEq;
  n.width = 1;
  n.operands = {a, b};
  return push(std::move(n));
}

NetId Circuit::add_ne(NetId a, NetId b) { return add_not(add_eq(a, b)); }

NetId Circuit::add_lt(NetId a, NetId b) {
  RTLSAT_ASSERT(width(a) == width(b));
  if (a == b) return add_const(0, 1);
  const Node& da = node(a);
  const Node& db = node(b);
  if (da.op == Op::kConst && db.op == Op::kConst)
    return add_const(da.imm < db.imm ? 1 : 0, 1);
  Node n;
  n.op = Op::kLt;
  n.width = 1;
  n.operands = {a, b};
  return push(std::move(n));
}

NetId Circuit::add_le(NetId a, NetId b) {
  RTLSAT_ASSERT(width(a) == width(b));
  if (a == b) return add_const(1, 1);
  const Node& da = node(a);
  const Node& db = node(b);
  if (da.op == Op::kConst && db.op == Op::kConst)
    return add_const(da.imm <= db.imm ? 1 : 0, 1);
  Node n;
  n.op = Op::kLe;
  n.width = 1;
  n.operands = {a, b};
  return push(std::move(n));
}

NetId Circuit::add_unchecked(Node node) {
  const NetId id = static_cast<NetId>(nodes_.size());
  if (node.op == Op::kInput) inputs_.push_back(id);
  if (!node.name.empty()) names_.emplace(node.name, id);
  nodes_.push_back(std::move(node));
  return id;
}

void Circuit::set_net_name(NetId id, std::string name) {
  RTLSAT_ASSERT(id < nodes_.size());
  if (!nodes_[id].name.empty()) names_.erase(nodes_[id].name);
  nodes_[id].name = name;
  if (!name.empty()) names_.emplace(std::move(name), id);
}

std::string Circuit::net_name(NetId id) const {
  const Node& n = node(id);
  if (!n.name.empty()) return n.name;
  return "n" + std::to_string(id);
}

NetId Circuit::find_net(std::string_view name) const {
  auto it = names_.find(std::string(name));
  return it == names_.end() ? kNoNet : it->second;
}

std::vector<std::int64_t> Circuit::evaluate(
    const std::unordered_map<NetId, std::int64_t>& input_values) const {
  std::vector<std::int64_t> value(nodes_.size(), 0);
  for (NetId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    auto v = [&](std::size_t i) { return value[n.operands[i]]; };
    const std::int64_t m = std::int64_t{1} << n.width;
    switch (n.op) {
      case Op::kInput: {
        auto it = input_values.find(id);
        RTLSAT_ASSERT_MSG(it != input_values.end(),
                          "evaluate: missing input value");
        RTLSAT_ASSERT(domain(id).contains(it->second));
        value[id] = it->second;
        break;
      }
      case Op::kConst: value[id] = n.imm; break;
      case Op::kAnd: {
        std::int64_t acc = 1;
        for (NetId o : n.operands) acc &= value[o];
        value[id] = acc;
        break;
      }
      case Op::kOr: {
        std::int64_t acc = 0;
        for (NetId o : n.operands) acc |= value[o];
        value[id] = acc;
        break;
      }
      case Op::kNot: value[id] = 1 - v(0); break;
      case Op::kXor: value[id] = v(0) ^ v(1); break;
      case Op::kMux: value[id] = v(0) ? v(1) : v(2); break;
      case Op::kAdd: value[id] = (v(0) + v(1)) % m; break;
      case Op::kSub: value[id] = ((v(0) - v(1)) % m + m) % m; break;
      // Multiply and shift compute in uint64: the product/shift of a wide
      // operand overflows int64 (UB) long before the reduction, while
      // unsigned wraparound mod 2^64 is exact for a mod-2^w result because
      // 2^w divides 2^64.
      case Op::kMulC:
        value[id] = static_cast<std::int64_t>(
            (static_cast<std::uint64_t>(v(0)) *
             static_cast<std::uint64_t>(n.imm)) &
            (static_cast<std::uint64_t>(m) - 1));
        break;
      case Op::kShlC:
        value[id] = static_cast<std::int64_t>(
            (static_cast<std::uint64_t>(v(0)) << n.imm) &
            (static_cast<std::uint64_t>(m) - 1));
        break;
      case Op::kShrC: value[id] = v(0) >> n.imm; break;
      case Op::kNotW: value[id] = m - 1 - v(0); break;
      case Op::kConcat:
        value[id] = (v(0) << width(n.operands[1])) | v(1);
        break;
      case Op::kExtract:
        value[id] = (v(0) >> n.imm2) & ((std::int64_t{1} << n.width) - 1);
        break;
      case Op::kZext: value[id] = v(0); break;
      case Op::kMin: value[id] = std::min(v(0), v(1)); break;
      case Op::kMax: value[id] = std::max(v(0), v(1)); break;
      case Op::kEq: value[id] = v(0) == v(1); break;
      case Op::kNe: value[id] = v(0) != v(1); break;
      case Op::kLt: value[id] = v(0) < v(1); break;
      case Op::kLe: value[id] = v(0) <= v(1); break;
    }
    RTLSAT_DASSERT(domain(id).contains(value[id]));
  }
  return value;
}

void Circuit::validate() const {
  check_structure(*this, [this](const StructuralDefect& defect) {
    assert_fail(std::string(structure_defect_id(defect.kind)).c_str(),
                __FILE__, __LINE__,
                (name_ + ", net " + net_name(defect.net) + ": " +
                 defect.message)
                    .c_str());
  });
}

std::uint64_t Circuit::cone_hash(NetId goal) const {
  return canonical_cone(*this, goal).hash;
}

Circuit::OpCounts Circuit::op_counts() const {
  OpCounts counts;
  for (const Node& n : nodes_) {
    if (is_boolean_gate(n.op)) {
      ++counts.boolean;
    } else if (is_word_op(n.op) || is_comparator(n.op)) {
      ++counts.arith;
    }
  }
  return counts;
}

std::string Circuit::to_dot() const {
  std::ostringstream os;
  os << "digraph \"" << name_ << "\" {\n  rankdir=LR;\n";
  for (NetId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    os << "  n" << id << " [label=\"" << net_name(id) << "\\n"
       << op_name(n.op);
    if (n.op == Op::kConst) os << ' ' << n.imm;
    os << " w" << n.width << "\"];\n";
    for (NetId o : n.operands) os << "  n" << o << " -> n" << id << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace rtlsat::ir
