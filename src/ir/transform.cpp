#include "ir/transform.h"

#include "ir/analysis.h"

namespace rtlsat::ir {

namespace {

class Rebuilder {
 public:
  Rebuilder(const Circuit& source, bool rewrite)
      : source_(source), rewrite_(rewrite) {}

  TransformResult run(const std::vector<NetId>& roots) {
    TransformResult result;
    result.circuit.set_name(source_.name());
    result.net_map.assign(source_.num_nets(), kNoNet);
    const auto cone = fanin_cone(source_, roots);
    for (const NetId id : cone.members) {
      result.net_map[id] = rebuild(result.circuit, id, result.net_map);
    }
    // Preserve the names of surviving nets.
    for (NetId id = 0; id < source_.num_nets(); ++id) {
      const NetId mapped = result.net_map[id];
      if (mapped == kNoNet) continue;
      const std::string& name = source_.node(id).name;
      if (name.empty()) continue;
      if (result.circuit.node(mapped).name.empty()) {
        result.circuit.set_net_name(mapped, name);
      } else if (result.circuit.find_net(name) == kNoNet) {
        result.circuit.add_name_alias(name, mapped);
      }
    }
    return result;
  }

 private:
  NetId rebuild(Circuit& out, NetId id, std::vector<NetId>& map) {
    const Node& n = source_.node(id);
    auto m = [&](std::size_t i) { return map[n.operands[i]]; };
    switch (n.op) {
      case Op::kInput: return out.add_input(source_.net_name(id), n.width);
      case Op::kConst: return out.add_const(n.imm, n.width);
      case Op::kAnd: {
        std::vector<NetId> ops;
        for (NetId o : n.operands) ops.push_back(map[o]);
        return out.add_and(std::move(ops));
      }
      case Op::kOr: {
        std::vector<NetId> ops;
        for (NetId o : n.operands) ops.push_back(map[o]);
        return out.add_or(std::move(ops));
      }
      case Op::kNot: return out.add_not(m(0));
      case Op::kXor: return out.add_xor(m(0), m(1));
      case Op::kMux: return out.add_mux(m(0), m(1), m(2));
      case Op::kAdd: return out.add_add(m(0), m(1));
      case Op::kSub: return out.add_sub(m(0), m(1));
      case Op::kMulC: return out.add_mulc(m(0), n.imm);
      case Op::kShlC: return out.add_shl(m(0), static_cast<int>(n.imm));
      case Op::kShrC: return rebuild_shr(out, m(0), static_cast<int>(n.imm));
      case Op::kNotW: return out.add_notw(m(0));
      case Op::kConcat: return out.add_concat(m(0), m(1));
      case Op::kExtract:
        return rebuild_extract(out, m(0), static_cast<int>(n.imm),
                               static_cast<int>(n.imm2));
      case Op::kZext: return out.add_zext(m(0), n.width);
      case Op::kMin: return out.add_min_raw(m(0), m(1));
      case Op::kMax: return out.add_max_raw(m(0), m(1));
      case Op::kEq: return out.add_eq_raw(m(0), m(1));
      case Op::kNe: return out.add_not(out.add_eq_raw(m(0), m(1)));
      case Op::kLt: return out.add_lt(m(0), m(1));
      case Op::kLe: return out.add_le(m(0), m(1));
    }
    RTLSAT_UNREACHABLE("unhandled op in rebuild");
  }

  // extract(x, hi, lo) with rewriting against x's (already rebuilt) node.
  NetId rebuild_extract(Circuit& out, NetId x, int hi_bit, int lo_bit) {
    if (rewrite_) {
      const Node& xn = out.node(x);
      if (xn.op == Op::kConcat) {
        const NetId hi_part = xn.operands[0];
        const NetId lo_part = xn.operands[1];
        const int lw = out.width(lo_part);
        if (hi_bit < lw) {  // entirely inside the low part
          return rebuild_extract(out, lo_part, hi_bit, lo_bit);
        }
        if (lo_bit >= lw) {  // entirely inside the high part
          return rebuild_extract(out, hi_part, hi_bit - lw, lo_bit - lw);
        }
      }
      if (xn.op == Op::kZext) {
        const NetId inner = xn.operands[0];
        const int iw = out.width(inner);
        if (hi_bit < iw) return rebuild_extract(out, inner, hi_bit, lo_bit);
        if (lo_bit >= iw)  // selecting only the zero padding
          return out.add_const(0, hi_bit - lo_bit + 1);
      }
    }
    return out.add_extract(x, hi_bit, lo_bit);
  }

  NetId rebuild_shr(Circuit& out, NetId x, int k) {
    if (rewrite_ && k > 0) {
      const Node& xn = out.node(x);
      if (xn.op == Op::kConcat) {
        const NetId hi_part = xn.operands[0];
        const int lw = out.width(xn.operands[1]);
        if (k == lw) {  // shifting away exactly the low part
          return out.add_zext(hi_part, out.width(x));
        }
      }
    }
    return out.add_shr(x, k);
  }

  const Circuit& source_;
  const bool rewrite_;
};

}  // namespace

TransformResult extract_cone(const Circuit& circuit,
                             const std::vector<NetId>& roots) {
  return Rebuilder(circuit, /*rewrite=*/false).run(roots);
}

TransformResult simplify(const Circuit& circuit,
                         const std::vector<NetId>& roots) {
  // Rewrite pass first; then a plain cone pass to drop nodes the rewrites
  // orphaned (e.g. a concat whose only reader collapsed away).
  TransformResult rewritten = Rebuilder(circuit, /*rewrite=*/true).run(roots);
  std::vector<NetId> new_roots;
  for (const NetId r : roots) {
    RTLSAT_ASSERT(rewritten.net_map[r] != kNoNet);
    new_roots.push_back(rewritten.net_map[r]);
  }
  TransformResult swept =
      Rebuilder(rewritten.circuit, /*rewrite=*/false).run(new_roots);
  TransformResult result;
  result.circuit = std::move(swept.circuit);
  result.net_map.assign(circuit.num_nets(), kNoNet);
  for (NetId id = 0; id < circuit.num_nets(); ++id) {
    const NetId mid = rewritten.net_map[id];
    if (mid != kNoNet) result.net_map[id] = swept.net_map[mid];
  }
  return result;
}

}  // namespace rtlsat::ir
