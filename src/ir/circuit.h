// Word-level netlist: nets, operator nodes, and the builder API.
//
// A Circuit is an append-only DAG of nodes; the node index is the id of the
// net the node drives (one driver per net, combinational only — sequential
// designs live in bmc::SeqCircuit and are unrolled into a Circuit).
//
// The builder hash-conses structurally identical nodes and constant-folds
// where trivially possible, which keeps BMC-unrolled instances close to the
// paper's reported operator counts rather than blowing up with duplicates.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "interval/interval.h"
#include "ir/op.h"
#include "util/assert.h"

namespace rtlsat::ir {

using NetId = std::uint32_t;
inline constexpr NetId kNoNet = 0xffffffffu;
inline constexpr int kMaxWidth = 60;

struct Node {
  Op op = Op::kInput;
  int width = 1;                 // output width in bits
  std::vector<NetId> operands;   // driver nets of the inputs
  std::int64_t imm = 0;          // kConst value, kMulC/kShlC/kShrC k, kExtract hi
  std::int64_t imm2 = 0;         // kExtract lo
  std::string name;              // optional; inputs always named
};

class Circuit {
 public:
  Circuit() = default;
  explicit Circuit(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  std::size_t num_nets() const { return nodes_.size(); }
  const Node& node(NetId id) const {
    RTLSAT_DASSERT(id < nodes_.size());
    return nodes_[id];
  }
  int width(NetId id) const { return node(id).width; }
  bool is_bool(NetId id) const { return node(id).width == 1; }
  // Full unsigned domain ⟨0, 2^w−1⟩ of a net.
  Interval domain(NetId id) const { return Interval::full_width(width(id)); }

  const std::vector<NetId>& inputs() const { return inputs_; }

  // ------------------------------------------------------------- builder

  NetId add_input(std::string name, int width);
  NetId add_const(std::int64_t value, int width);

  // Boolean gates; all operands must be 1-bit.
  NetId add_and(std::vector<NetId> ops);
  NetId add_or(std::vector<NetId> ops);
  NetId add_and(NetId a, NetId b) { return add_and(std::vector<NetId>{a, b}); }
  NetId add_or(NetId a, NetId b) { return add_or(std::vector<NetId>{a, b}); }
  NetId add_not(NetId a);
  NetId add_xor(NetId a, NetId b);
  NetId add_xnor(NetId a, NetId b) { return add_not(add_xor(a, b)); }
  NetId add_implies(NetId a, NetId b) { return add_or(add_not(a), b); }

  // Word operators. add/sub/min/max require equal operand widths; mux
  // requires equal then/else widths and a 1-bit select.
  NetId add_mux(NetId sel, NetId then_net, NetId else_net);
  NetId add_add(NetId a, NetId b);
  NetId add_sub(NetId a, NetId b);
  NetId add_mulc(NetId a, std::int64_t k);
  NetId add_shl(NetId a, int k);
  NetId add_shr(NetId a, int k);
  NetId add_notw(NetId a);
  NetId add_concat(NetId hi, NetId lo);
  NetId add_extract(NetId a, int hi_bit, int lo_bit);
  NetId add_bit(NetId a, int bit) { return add_extract(a, bit, bit); }
  NetId add_zext(NetId a, int width);
  NetId add_trunc(NetId a, int width) { return add_extract(a, width - 1, 0); }
  // min/max lower to comparator + mux — the structure the ITC'99 b04
  // data-path has in the paper's Fig. 2, and the form HDPLL's structural
  // justification understands. The *_raw forms emit dedicated kMin/kMax
  // nodes for users of the propagation engine alone; solver-bound circuits
  // should use the lowered forms (the FME end-game rejects raw nodes whose
  // order is still undecided).
  NetId add_min(NetId a, NetId b) { return add_mux(add_lt(a, b), a, b); }
  NetId add_max(NetId a, NetId b) { return add_mux(add_lt(a, b), b, a); }
  NetId add_min_raw(NetId a, NetId b);
  NetId add_max_raw(NetId a, NetId b);
  // Increment modulo 2^w — the idiom for the benchmark counters.
  NetId add_inc(NetId a) { return add_add(a, add_const(1, width(a))); }

  // Predicates (unsigned). Following §2.1, word equality is represented as
  // a pair of inequalities (a ≤ b) ∧ (b ≤ a), so that a false equality
  // resolves into a Boolean choice of strict inequality rather than a
  // non-convex disequality; 1-bit equality is an XNOR. add_eq_raw emits a
  // dedicated kEq node (propagation-engine users and tests only).
  // gt/ge canonicalize by operand swap.
  NetId add_eq(NetId a, NetId b);
  NetId add_eq_raw(NetId a, NetId b);
  NetId add_ne(NetId a, NetId b);
  NetId add_lt(NetId a, NetId b);
  NetId add_le(NetId a, NetId b);
  NetId add_gt(NetId a, NetId b) { return add_lt(b, a); }
  NetId add_ge(NetId a, NetId b) { return add_le(b, a); }
  NetId add_eqc(NetId a, std::int64_t c) {
    return add_eq(a, add_const(c, width(a)));
  }

  // Appends a node verbatim: no hash-consing, no folding, no width or
  // operand validation. For deserializers and for tests that need
  // deliberately malformed netlists to exercise validate()/lint — circuits
  // built this way must be checked before use.
  NetId add_unchecked(Node node);

  // Name an already-built net (for debugging/dumps); inputs keep the name
  // given at creation.
  void set_net_name(NetId id, std::string name);
  // Register an additional lookup name for a net without renaming it —
  // used by frontends where several identifiers alias one hash-consed node.
  void add_name_alias(std::string name, NetId id) {
    RTLSAT_ASSERT(id < nodes_.size());
    names_.emplace(std::move(name), id);
  }
  // Name if set, else "n<id>".
  std::string net_name(NetId id) const;
  // Reverse lookup; kNoNet if no net carries `name`.
  NetId find_net(std::string_view name) const;

  // Simulate the circuit on concrete input values (keyed by input NetId).
  // Used by the oracle tests and the counterexample printer.
  std::vector<std::int64_t> evaluate(
      const std::unordered_map<NetId, std::int64_t>& input_values) const;

  // Structural sanity checks; aborts on the first defect found. Delegates
  // to ir::check_structure (structure_check.h), the shared rule set behind
  // the lint subsystem — lint for a diagnosis, validate() for a guard.
  void validate() const;

  // Counts for the paper tables: word-level operator nodes vs Boolean ones.
  struct OpCounts {
    std::size_t arith = 0;  // word operators + comparators
    std::size_t boolean = 0;
  };
  OpCounts op_counts() const;

  std::string to_dot() const;

  // Canonical digest of `goal`'s fan-in cone: name-independent, dead-node-
  // independent, commutative-operand-normalized — isomorphic property cones
  // hash equal. This is the serve result-cache key (delegates to
  // ir::canonical_cone, see ir/cone.h; use that directly when the full
  // canonical text or the input mapping is needed — the 64-bit digest alone
  // must not be trusted for cache equality).
  std::uint64_t cone_hash(NetId goal) const;

 private:
  NetId push(Node node);
  // Hash-consing lookup; returns kNoNet when no identical node exists.
  NetId find_existing(const Node& node) const;
  void check_bool(NetId id) const {
    RTLSAT_ASSERT_MSG(is_bool(id), "operand must be 1-bit");
  }

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<NetId> inputs_;
  std::unordered_map<std::uint64_t, std::vector<NetId>> structural_hash_;
  std::unordered_map<std::string, NetId> names_;
};

}  // namespace rtlsat::ir
