// Operator vocabulary of the word-level netlist IR (paper §2.1).
//
// Boolean gates operate on 1-bit nets (the control logic). Word operators
// operate on unsigned bit-vectors modelled as integer-valued nets.
// Comparators are the *predicates*: word-valued inputs, 1-bit output — the
// boundary between data-path and control that §3's learning targets.
#pragma once

#include <cstdint>
#include <string_view>

namespace rtlsat::ir {

enum class Op : std::uint8_t {
  // Sources.
  kInput,    // primary input
  kConst,    // literal; value in Node::imm

  // Boolean gates (all nets width 1; kAnd/kOr are n-ary).
  kAnd,
  kOr,
  kNot,
  kXor,

  // Word-level operators.
  kMux,      // ops = {sel(1-bit), then, else}: sel ? then : else
  kAdd,      // wrapping add at the operands' width
  kSub,      // wrapping subtract
  kMulC,     // multiply by constant k (imm); wraps at width
  kShlC,     // shift left by k (imm); drops overflow bits
  kShrC,     // logical shift right by k (imm)
  kNotW,     // bitwise complement: 2^w−1−x
  kConcat,   // ops = {hi, lo}; width = w(hi)+w(lo)
  kExtract,  // bits [imm : imm2] of the operand
  kZext,     // zero-extend to Node::width
  kMin,      // unsigned minimum
  kMax,      // unsigned maximum

  // Predicates (unsigned comparison; 1-bit result). The builder
  // canonicalizes >, ≥ by swapping operands, so only these four exist in
  // built circuits.
  kEq,
  kNe,
  kLt,
  kLe,
};

constexpr bool is_boolean_gate(Op op) {
  return op == Op::kAnd || op == Op::kOr || op == Op::kNot || op == Op::kXor;
}

constexpr bool is_comparator(Op op) {
  return op == Op::kEq || op == Op::kNe || op == Op::kLt || op == Op::kLe;
}

constexpr bool is_word_op(Op op) {
  switch (op) {
    case Op::kMux:
    case Op::kAdd:
    case Op::kSub:
    case Op::kMulC:
    case Op::kShlC:
    case Op::kShrC:
    case Op::kNotW:
    case Op::kConcat:
    case Op::kExtract:
    case Op::kZext:
    case Op::kMin:
    case Op::kMax:
      return true;
    default:
      return false;
  }
}

constexpr bool is_source(Op op) {
  return op == Op::kInput || op == Op::kConst;
}

// Def. 4.1: an operator is *justifiable* when it has a Boolean input that
// offers a choice of data-path relations — in this vocabulary, exactly the
// mux. Boolean gates are justifiable in the classic ATPG sense. Everything
// else is resolved purely by constraint propagation.
constexpr bool is_justifiable_word_op(Op op) { return op == Op::kMux; }

std::string_view op_name(Op op);

}  // namespace rtlsat::ir
