// Canonical property-cone serialization — the structural cache key behind
// rtlsat-serve's result cache (docs/serve.md).
//
// Two solve jobs ask the same question exactly when the transitive fan-in
// cones of their goal nets are isomorphic: same DAG shape, same operator
// vocabulary, same constants — regardless of net names, node numbering,
// commutative operand order, or dead logic outside the cone. canonical_cone
// computes a textual canonical form with those properties quotiented out:
//
//   * dead nodes        — only the goal's cone of influence is serialized;
//   * names/numbering   — nodes are renumbered in a structure-determined
//                         traversal order and names are never emitted;
//   * commutative ops   — operands of and/or/xor/add/eq/ne/min/max are
//                         ordered by a bottom-up ⊕ top-down structural
//                         color, not by builder order.
//
// Equal text ⟹ the cones are isomorphic as labeled DAGs (the text is a
// faithful serialization, so this direction is exact — the 64-bit digest is
// only a bucketing hint, never trusted alone). The converse is approximate:
// isomorphic cones produce equal text unless two *distinct* sibling
// subtrees collide on their structural color, in which case the tie-break
// may order them differently — a false cache miss, never a false hit.
//
// The model-transfer contract: `inputs` lists the cone's primary inputs in
// canonical order. If two circuits produce equal text, assigning value v_i
// to inputs[i] in each circuit yields identical goal values — which is what
// lets the serve cache replay a SAT model recorded on one circuit into any
// isomorphic later query.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/circuit.h"

namespace rtlsat::ir {

struct CanonicalCone {
  // FNV-1a digest of `text` (Circuit::cone_hash returns exactly this).
  std::uint64_t hash = 0;
  // The canonical serialization; compare with == for exact isomorphism.
  std::string text;
  // Cone primary inputs in canonical order: canonical input index i is
  // driven by net inputs[i] of the source circuit.
  std::vector<NetId> inputs;
  // Nodes in the cone (inputs and constants included).
  std::size_t num_nodes = 0;
};

CanonicalCone canonical_cone(const Circuit& circuit, NetId goal);

}  // namespace rtlsat::ir
