#include "ir/cone.h"

#include <algorithm>

#include "ir/analysis.h"

namespace rtlsat::ir {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  // FNV-1a over the value's bytes, one 64-bit gulp at a time is too weak
  // for small integers; splitmix the value first so op/width enums spread
  // over the whole word.
  v += 0x9e3779b97f4a7c15ULL;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
  v ^= v >> 31;
  h ^= v;
  h *= kFnvPrime;
  return h;
}

bool is_commutative(Op op) {
  switch (op) {
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kAdd:
    case Op::kMin:
    case Op::kMax:
    case Op::kEq:
    case Op::kNe:
      return true;
    default:
      return false;
  }
}

std::uint64_t node_signature(const Node& n) {
  std::uint64_t h = kFnvOffset;
  h = mix(h, static_cast<std::uint64_t>(n.op));
  h = mix(h, static_cast<std::uint64_t>(n.width));
  h = mix(h, static_cast<std::uint64_t>(n.imm));
  h = mix(h, static_cast<std::uint64_t>(n.imm2));
  return h;
}

}  // namespace

CanonicalCone canonical_cone(const Circuit& circuit, NetId goal) {
  RTLSAT_ASSERT(goal < circuit.num_nets());
  const std::vector<bool> in_cone = fanin_cone(circuit, goal).mask;
  const std::size_t n = circuit.num_nets();

  // ---- pass 1 (bottom-up): structural color ignoring node identity.
  // Node ids are topologically ordered (the builder is append-only), so a
  // single ascending sweep sees every operand before its reader. Inputs of
  // equal width start indistinguishable; the top-down pass separates them
  // by how the cone *uses* them.
  std::vector<std::uint64_t> down(n, 0);
  for (NetId id = 0; id < n; ++id) {
    if (!in_cone[id]) continue;
    const Node& node = circuit.node(id);
    std::uint64_t h = node_signature(node);
    if (is_commutative(node.op)) {
      std::vector<std::uint64_t> child;
      child.reserve(node.operands.size());
      for (NetId o : node.operands) child.push_back(down[o]);
      std::sort(child.begin(), child.end());
      for (std::uint64_t c : child) h = mix(h, c);
    } else {
      for (NetId o : node.operands) h = mix(h, down[o]);
    }
    down[id] = h;
  }

  // ---- pass 2 (top-down): context color. Walking ids descending visits
  // every reader before its operands (reverse topological order), so each
  // node's context is complete before it is propagated further down. The
  // operand position feeds in only for non-commutative readers, and sibling
  // contributions combine by wrapping addition — order-independent, as
  // required for the color to be a graph invariant.
  std::vector<std::uint64_t> up(n, 0);
  up[goal] = mix(kFnvOffset, 0x60a1u);  // the goal is the distinguished root
  for (NetId id = n; id-- > 0;) {
    if (!in_cone[id]) continue;
    const Node& node = circuit.node(id);
    const bool comm = is_commutative(node.op);
    const std::uint64_t base = mix(mix(up[id], down[id]),
                                   static_cast<std::uint64_t>(node.op));
    for (std::size_t p = 0; p < node.operands.size(); ++p) {
      up[node.operands[p]] += mix(base, comm ? 0 : p + 1);
    }
  }

  std::vector<std::uint64_t> color(n, 0);
  for (NetId id = 0; id < n; ++id) {
    if (in_cone[id]) color[id] = mix(down[id], up[id]);
  }

  // ---- canonical order: iterative post-order DFS from the goal, operands
  // of commutative nodes sorted by color (stable on ties). Every node
  // finishes after its operands, so the serialization below can reference
  // operands by canonical index; the goal always finishes last.
  struct Frame {
    NetId id;
    std::size_t next = 0;
    std::vector<NetId> ops;
  };
  const auto ordered_operands = [&](NetId id) {
    std::vector<NetId> ops = circuit.node(id).operands;
    if (is_commutative(circuit.node(id).op)) {
      std::stable_sort(ops.begin(), ops.end(), [&](NetId a, NetId b) {
        return color[a] < color[b];
      });
    }
    return ops;
  };

  constexpr NetId kUnvisited = kNoNet;
  std::vector<NetId> canon(n, kUnvisited);
  std::vector<bool> entered(n, false);
  std::vector<NetId> order;  // canonical index -> source NetId
  std::vector<Frame> stack;
  stack.push_back({goal, 0, ordered_operands(goal)});
  entered[goal] = true;
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next < f.ops.size()) {
      const NetId child = f.ops[f.next++];
      if (!entered[child]) {
        entered[child] = true;
        stack.push_back({child, 0, ordered_operands(child)});
      }
    } else {
      canon[f.id] = static_cast<NetId>(order.size());
      order.push_back(f.id);
      stack.pop_back();
    }
  }

  // ---- serialization: one line per cone node in canonical order, names
  // omitted, operands by canonical index (commutative ones in color order).
  CanonicalCone out;
  out.num_nodes = order.size();
  std::string& text = out.text;
  text = "cone v1\n";
  for (std::size_t k = 0; k < order.size(); ++k) {
    const NetId id = order[k];
    const Node& node = circuit.node(id);
    text += std::to_string(k);
    text += ' ';
    text += op_name(node.op);
    text += ' ';
    text += std::to_string(node.width);
    if (node.op == Op::kConst || node.op == Op::kMulC ||
        node.op == Op::kShlC || node.op == Op::kShrC ||
        node.op == Op::kExtract) {
      text += ' ';
      text += std::to_string(node.imm);
      if (node.op == Op::kExtract) {
        text += ' ';
        text += std::to_string(node.imm2);
      }
    }
    if (node.op == Op::kInput) {
      out.inputs.push_back(id);
    } else {
      for (const NetId o : ordered_operands(id)) {
        text += ' ';
        text += std::to_string(canon[o]);
      }
    }
    text += '\n';
  }

  std::uint64_t h = kFnvOffset;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  out.hash = h;
  return out;
}

}  // namespace rtlsat::ir
