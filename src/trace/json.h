// Minimal JSON support for the observability layer: an append-only writer
// (used by the tracer sinks, the progress heartbeat, and the bench --json
// emitters) and a tiny recursive-descent parser (used by the tests and the
// bench_json_validate tool to check that what we emit parses back).
//
// Deliberately not a general JSON library: no streaming reads, no unicode
// decoding beyond pass-through, documents are held in memory.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rtlsat::trace {

// Escapes `text` for inclusion inside a JSON string literal (quotes not
// included).
std::string json_escape(std::string_view text);

// Builds one JSON document by appending tokens. The writer inserts commas
// between siblings; callers are responsible for well-nestedness (checked
// with asserts in debug builds).
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  // Object key; must be followed by exactly one value (or container).
  JsonWriter& key(std::string_view name);
  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(int number) { return value(static_cast<std::int64_t>(number)); }
  JsonWriter& value(double number);
  JsonWriter& value(bool boolean);
  JsonWriter& null();
  // Splices `json` in verbatim as one value — the caller guarantees it is a
  // complete JSON document. Used by the serve protocol to embed an
  // already-encoded heartbeat record without reparsing it.
  JsonWriter& raw_value(std::string_view json);

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void comma();
  std::string out_;
  // True when the next token at this nesting depth needs a ',' before it.
  std::vector<bool> need_comma_{false};
  bool after_key_ = false;
};

// Parsed JSON value. Object member order is preserved.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  // When the source token was a plain integer that fits std::int64_t, the
  // exact value is kept here as well (doubles lose precision above 2^53,
  // and interval bounds go up to 2^60 — the proof checker needs the exact
  // integer back).
  std::int64_t integer = 0;
  bool exact_integer = false;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_int() const { return kind == Kind::kNumber && exact_integer; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view name) const;
};

// Parses a complete JSON document (surrounding whitespace allowed; trailing
// garbage is an error). On failure returns false and, when `error` is
// non-null, a short description with a byte offset.
bool json_parse(std::string_view text, JsonValue* out, std::string* error);

}  // namespace rtlsat::trace
