// Structured search-event tracing (the observability tentpole).
//
// The solver stack records compact binary events — decisions, propagation
// conflicts, learned clauses/relations, restarts, backtracks, FME/arith
// checks, phase boundaries — into a ring buffer that is flushed to two
// sinks: a JSONL file (one event object per line, easy to grep and to load
// into pandas) and a Chrome trace_event JSON file that opens directly in
// chrome://tracing or https://ui.perfetto.dev.
//
// Cost model: a disabled tracer is a single predictable branch per hook
// (`if (!enabled_) return;`), so the default build pays nothing measurable
// on the hot paths (bench/micro_stats.cpp guards this). An enabled tracer
// pays one timestamp read plus a ring-buffer store per event, amortising
// file I/O over `ring_capacity` events.
//
// Enabling:
//   - programmatically: construct a Tracer and pass it via HdpllOptions /
//     sat::SolverOptions (or Engine::set_tracer);
//   - environment: RTLSAT_TRACE=<base> makes the process-wide global()
//     tracer write <base>.jsonl and <base>.trace.json. RTLSAT_TRACE_VERBOSE=1
//     additionally records per-narrowing events.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/stats.h"
#include "util/timer.h"

namespace rtlsat::trace {

enum class EventKind : std::uint8_t {
  kDecision = 0,          // a = net, b = value
  kStructuralDecision,    // a = net, b = value (J-frontier justification)
  kPropConflict,          // a = net that went empty, b = reason kind
  kConflict,              // a = decision level before backtracking
  kAnalyze,               // a = resolution steps, b = learned clause length
  kLearnedClause,         // a = clause length, b = backtrack level
  kLearnedRelation,       // a = clause length (predicate learning, §3)
  kLearnedUnit,           // a = net proven constant
  kBacktrack,             // a = from level, b = to level
  kRestart,               // a = restart count
  kArithCheck,            // a = 1 sat / 0 refuted (FME end-game, §2.4)
  kFmeSolve,              // a = constraint count, b = 1 sat / 0 unsat
  kJustifyFrontier,       // a = J-frontier size (verbose only)
  kNarrowing,             // a = net, b = interval width (verbose only)
  kBitblast,              // a = variables, b = clauses
  kUnroll,                // a = nets, b = bound
  kPhaseBegin,            // a = interned phase-name id
  kPhaseEnd,              // a = interned phase-name id
  kProgress,              // a = conflicts, b = decisions
  kMaxKind                // sentinel, not a real event
};

// Stable wire name for a kind ("decision", "phase_begin", ...).
const char* kind_name(EventKind kind);

// One trace event. Timestamps are microseconds since the tracer's epoch
// (its construction). `a`/`b` payloads are kind-specific, see EventKind.
struct Event {
  std::int64_t t_us = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::uint32_t level = 0;
  EventKind kind = EventKind::kDecision;

  friend bool operator==(const Event&, const Event&) = default;
};

// Fixed-width little-endian binary encoding (t_us, a, b: 8 bytes each;
// level: 4; kind: 1) — the in-memory ring is structs, but tests and any
// future binary sink round-trip through this.
constexpr std::size_t kEncodedEventSize = 29;
void encode_event(const Event& event, std::vector<std::uint8_t>& out);
// Decodes one event from `data`; false on truncation or an invalid kind.
bool decode_event(const std::uint8_t* data, std::size_t size, Event& out);

struct TracerOptions {
  std::string jsonl_path;    // empty = no JSONL sink
  std::string chrome_path;   // empty = no Chrome trace_event sink
  // Events buffered before a flush to the file sinks.
  std::size_t ring_capacity = std::size_t{1} << 14;
  // Record per-narrowing engine events and J-frontier sizes (voluminous).
  bool verbose = false;
  // Keep flushed events in memory (drain()) instead of requiring files —
  // used by tests and the overhead micro-bench.
  bool collect_in_memory = false;
};

class Tracer {
 public:
  // A disabled tracer: record() is a branch and nothing else.
  Tracer();
  // Enabled iff any sink (file path or in-memory collection) is configured.
  explicit Tracer(TracerOptions options);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  bool verbose() const { return enabled() && verbose_; }

  void record(EventKind kind, std::uint32_t level, std::int64_t a = 0,
              std::int64_t b = 0) {
    if (!enabled()) return;
    record_slow(kind, level, a, b);
  }

  // Phase names are interned once; ids are stable for the tracer lifetime.
  std::int64_t intern(const std::string& name);
  const std::string& phase_name(std::int64_t id) const;
  void begin_phase(const std::string& name);
  void end_phase(const std::string& name);

  // Drains the ring to the sinks. Called automatically when the ring fills
  // and on close().
  void flush();
  // Flushes and finalizes the sink files (writes the Chrome JSON footer).
  // The tracer is disabled afterwards. Idempotent; also run by ~Tracer.
  void close();
  // Best-effort flush for the crash.h registry (atexit / fatal signal):
  // try_lock, drain the ring, fflush; with `finalize` also write the Chrome
  // footer since no destructor will run. Never blocks, never allocates the
  // lock. A tracer with file sinks registers itself automatically.
  void crash_flush(bool finalize);

  std::int64_t events_recorded() const;
  // collect_in_memory mode: moves out everything recorded so far.
  std::vector<Event> drain();

 private:
  void record_slow(EventKind kind, std::uint32_t level, std::int64_t a,
                   std::int64_t b);
  void flush_locked();
  void append_jsonl(std::string* out, const Event& event) const;
  void append_chrome(std::string* out, const Event& event) const;

  std::atomic<bool> enabled_{false};
  bool verbose_ = false;
  TracerOptions options_;
  Timer epoch_;

  mutable std::mutex mu_;
  std::vector<Event> ring_;
  std::vector<Event> collected_;
  std::int64_t recorded_ = 0;
  std::map<std::string, std::int64_t> intern_ids_;
  std::vector<std::string> intern_names_;
  std::FILE* jsonl_file_ = nullptr;
  std::FILE* chrome_file_ = nullptr;
  bool chrome_first_event_ = true;
  bool chrome_footer_written_ = false;
  bool closed_ = false;
  int crash_id_ = -1;
};

// Process-wide tracer, initialized once from RTLSAT_TRACE (see header
// comment); disabled when the variable is unset. Solver components fall
// back to this when no tracer is passed explicitly.
Tracer& global();

// RAII phase scope: brackets a region with kPhaseBegin/kPhaseEnd events
// and, when `stats` is non-null, accumulates the elapsed time into the
// counter "time.<name>_us" (the phase-profiling convention; see
// docs/observability.md). Either pointer may be null.
class ScopedPhase {
 public:
  ScopedPhase(Tracer* tracer, Stats* stats, std::string name);
  ~ScopedPhase();
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Tracer* tracer_;
  Stats* stats_;
  std::string name_;
  Timer timer_;
};

}  // namespace rtlsat::trace
