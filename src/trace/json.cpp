#include "trace/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/assert.h"

namespace rtlsat::trace {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;  // "key": value — no comma between key and its value
  }
  if (need_comma_.back()) out_ += ',';
  need_comma_.back() = true;
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  RTLSAT_ASSERT(need_comma_.size() > 1 && !after_key_);
  need_comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  RTLSAT_ASSERT(need_comma_.size() > 1 && !after_key_);
  need_comma_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  RTLSAT_ASSERT(!after_key_);
  comma();
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  comma();
  out_ += '"';
  out_ += json_escape(text);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  comma();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  comma();
  if (!std::isfinite(number)) {  // JSON has no NaN/Inf
    out_ += "null";
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", number);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool boolean) {
  comma();
  out_ += boolean ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw_value(std::string_view json) {
  comma();
  out_ += json;
  return *this;
}

const JsonValue* JsonValue::find(std::string_view name) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [key, value] : object) {
    if (key == name) return &value;
  }
  return nullptr;
}

namespace {

// Recursive-descent parser over a string_view with a byte cursor.
class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const char* message) {
    if (error_ != nullptr)
      *error_ = std::string(message) + " at byte " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool parse_string(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"')
      return fail("expected string");
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("dangling escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // Pass BMP codepoints through as UTF-8; we never emit surrogate
          // pairs ourselves.
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xc0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            *out += static_cast<char>(0xe0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            *out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected number");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out->number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("malformed number");
    out->kind = JsonValue::Kind::kNumber;
    // Preserve exact integers: strtoll succeeds on the full token only for
    // pure integer syntax (no '.', 'e', …) and rejects out-of-range values.
    errno = 0;
    char* iend = nullptr;
    const long long exact = std::strtoll(token.c_str(), &iend, 10);
    if (errno == 0 && iend != nullptr && *iend == '\0') {
      out->integer = exact;
      out->exact_integer = true;
    }
    return true;
  }

  bool parse_value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': {
        ++pos_;
        out->kind = JsonValue::Kind::kObject;
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        while (true) {
          skip_ws();
          std::string name;
          if (!parse_string(&name)) return false;
          skip_ws();
          if (pos_ >= text_.size() || text_[pos_] != ':')
            return fail("expected ':'");
          ++pos_;
          skip_ws();
          JsonValue member;
          if (!parse_value(&member, depth + 1)) return false;
          out->object.emplace_back(std::move(name), std::move(member));
          skip_ws();
          if (pos_ >= text_.size()) return fail("unterminated object");
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == '}') {
            ++pos_;
            return true;
          }
          return fail("expected ',' or '}'");
        }
      }
      case '[': {
        ++pos_;
        out->kind = JsonValue::Kind::kArray;
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        while (true) {
          skip_ws();
          JsonValue element;
          if (!parse_value(&element, depth + 1)) return false;
          out->array.push_back(std::move(element));
          skip_ws();
          if (pos_ >= text_.size()) return fail("unterminated array");
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == ']') {
            ++pos_;
            return true;
          }
          return fail("expected ',' or ']'");
        }
      }
      case '"':
        out->kind = JsonValue::Kind::kString;
        return parse_string(&out->string);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return literal("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return literal("false");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return literal("null");
      default:
        return parse_number(out);
    }
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool json_parse(std::string_view text, JsonValue* out, std::string* error) {
  JsonValue result;
  Parser parser(text, error);
  if (!parser.parse(&result)) return false;
  if (out != nullptr) *out = std::move(result);
  return true;
}

}  // namespace rtlsat::trace
