// Best-effort flush of buffered telemetry sinks on abnormal exit.
//
// The Tracer amortises file I/O over a ring of ~16k events, so a run killed
// by Ctrl-C, a timeout SIGTERM, or an assertion abort() used to lose up to a
// ring's worth of tail events (and the Chrome trace was left without its
// closing footer, unparseable). Objects owning buffered sinks register a
// flush callback here; the callbacks run
//   - from an atexit hook (covers std::exit paths that skip local
//     destructors), and
//   - from fatal-signal handlers for SIGINT, SIGTERM and SIGABRT, which
//     flush, restore the default disposition and re-raise.
// SIGSEGV/SIGBUS are deliberately NOT hooked: the sanitizer runtimes own
// those, and flushing from a corrupted process is not worth racing them.
//
// Callbacks must be best-effort re-entrancy-safe: use try_lock, skip work
// if the lock is held, never allocate. `finalize` is true on the signal
// path (no destructors will run afterwards — write footers), false on the
// atexit path (destructors may still finalize the files properly).
#pragma once

namespace rtlsat::trace {

using CrashFlushFn = void (*)(void* ctx, bool finalize);

// Registers a callback; returns an id for unregister_crash_flush. The first
// registration installs the atexit hook and signal handlers (once per
// process). Thread-safe.
int register_crash_flush(CrashFlushFn fn, void* ctx);
void unregister_crash_flush(int id);

// Runs every registered callback (used by the hooks; exposed for tests).
void run_crash_flush(bool finalize);

}  // namespace rtlsat::trace
