// Periodic search-progress reporting, driven from the HDPLL and CDCL main
// loops: a MiniSat-style interval banner on a FILE* stream and/or a JSONL
// heartbeat file, plus kProgress counter events into a Tracer (which render
// as counter tracks in Perfetto).
//
// The solver calls tick() once per conflict with a cheap snapshot of its
// counters; the reporter rate-limits output to `interval_seconds` using an
// injectable clock (tests drive a fake clock to pin the cadence).
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

#include "trace/sink.h"
#include "trace/trace.h"

namespace rtlsat::trace {

// JSONL heartbeat schema version, carried as field "v" on every line
// together with a per-reporter sequence number "seq" (0-based, +1 per
// line) so streaming consumers can detect dropped or reordered records.
// Bump on any incompatible change to the heartbeat record shape.
inline constexpr int kHeartbeatSchemaVersion = 1;

// What the solver loop hands to tick(). All fields are running totals
// except `trail` and `level`, which are instantaneous.
struct ProgressSnapshot {
  std::int64_t conflicts = 0;
  std::int64_t decisions = 0;
  std::int64_t propagations = 0;
  std::int64_t learnt = 0;       // live learned clauses
  std::int64_t restarts = 0;
  std::int64_t trail = 0;        // current assignment count
  std::uint32_t level = 0;       // current decision level
};

struct ProgressOptions {
  bool banner = true;            // human-readable interval table
  std::FILE* stream = nullptr;   // banner destination; null = stderr
  std::string jsonl_path;        // heartbeat sink; empty = none
  double interval_seconds = 1.0;
  // Seconds since an arbitrary epoch; null = internal monotonic clock.
  // Tests substitute a fake clock to verify the cadence.
  std::function<double()> clock;
  Tracer* tracer = nullptr;      // also emit kProgress events; may be null
  // Shared heartbeat sink (portfolio mode): each worker's reporter writes
  // into one JsonlSink, tagging lines with `label` as a "worker" field so
  // the streams stay distinguishable. May be combined with jsonl_path.
  JsonlSink* sink = nullptr;
  std::string label;
};

class ProgressReporter {
 public:
  explicit ProgressReporter(ProgressOptions options = {});
  ~ProgressReporter();
  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  // Rate-limited report; cheap (one clock read and a compare) when the
  // interval has not elapsed.
  void tick(const ProgressSnapshot& snapshot);
  // Unconditional final report (solvers call this once at the end so short
  // runs still produce one line).
  void finish(const ProgressSnapshot& snapshot);

  std::int64_t reports() const { return reports_; }

 private:
  void emit(const ProgressSnapshot& snapshot, double now);

  ProgressOptions options_;
  Timer epoch_;
  double last_report_ = 0;
  std::int64_t reports_ = 0;
  bool header_printed_ = false;
  std::FILE* jsonl_file_ = nullptr;
};

}  // namespace rtlsat::trace
