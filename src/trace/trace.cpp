#include "trace/trace.h"

#include <cstdlib>
#include <cstring>

#include "trace/crash.h"
#include "trace/json.h"
#include "util/assert.h"

namespace rtlsat::trace {

const char* kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kDecision: return "decision";
    case EventKind::kStructuralDecision: return "structural_decision";
    case EventKind::kPropConflict: return "prop_conflict";
    case EventKind::kConflict: return "conflict";
    case EventKind::kAnalyze: return "analyze";
    case EventKind::kLearnedClause: return "learned_clause";
    case EventKind::kLearnedRelation: return "learned_relation";
    case EventKind::kLearnedUnit: return "learned_unit";
    case EventKind::kBacktrack: return "backtrack";
    case EventKind::kRestart: return "restart";
    case EventKind::kArithCheck: return "arith_check";
    case EventKind::kFmeSolve: return "fme_solve";
    case EventKind::kJustifyFrontier: return "justify_frontier";
    case EventKind::kNarrowing: return "narrowing";
    case EventKind::kBitblast: return "bitblast";
    case EventKind::kUnroll: return "unroll";
    case EventKind::kPhaseBegin: return "phase_begin";
    case EventKind::kPhaseEnd: return "phase_end";
    case EventKind::kProgress: return "progress";
    case EventKind::kMaxKind: break;
  }
  return "?";
}

namespace {

void put_le64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_le32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t get_le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint32_t get_le32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

void encode_event(const Event& event, std::vector<std::uint8_t>& out) {
  out.reserve(out.size() + kEncodedEventSize);
  put_le64(out, static_cast<std::uint64_t>(event.t_us));
  put_le64(out, static_cast<std::uint64_t>(event.a));
  put_le64(out, static_cast<std::uint64_t>(event.b));
  put_le32(out, event.level);
  out.push_back(static_cast<std::uint8_t>(event.kind));
}

bool decode_event(const std::uint8_t* data, std::size_t size, Event& out) {
  if (data == nullptr || size < kEncodedEventSize) return false;
  const std::uint8_t kind = data[28];
  if (kind >= static_cast<std::uint8_t>(EventKind::kMaxKind)) return false;
  out.t_us = static_cast<std::int64_t>(get_le64(data));
  out.a = static_cast<std::int64_t>(get_le64(data + 8));
  out.b = static_cast<std::int64_t>(get_le64(data + 16));
  out.level = get_le32(data + 24);
  out.kind = static_cast<EventKind>(kind);
  return true;
}

Tracer::Tracer() = default;

Tracer::Tracer(TracerOptions options) : options_(std::move(options)) {
  verbose_ = options_.verbose;
  if (options_.ring_capacity == 0) options_.ring_capacity = 1;
  bool any_sink = options_.collect_in_memory;
  if (!options_.jsonl_path.empty()) {
    jsonl_file_ = std::fopen(options_.jsonl_path.c_str(), "w");
    any_sink = any_sink || jsonl_file_ != nullptr;
  }
  if (!options_.chrome_path.empty()) {
    chrome_file_ = std::fopen(options_.chrome_path.c_str(), "w");
    if (chrome_file_ != nullptr) {
      std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", chrome_file_);
      any_sink = true;
    }
  }
  if (any_sink) ring_.reserve(options_.ring_capacity);
  enabled_.store(any_sink, std::memory_order_relaxed);
  if (jsonl_file_ != nullptr || chrome_file_ != nullptr) {
    crash_id_ = register_crash_flush(
        [](void* ctx, bool finalize) {
          static_cast<Tracer*>(ctx)->crash_flush(finalize);
        },
        this);
  }
}

Tracer::~Tracer() { close(); }

void Tracer::record_slow(EventKind kind, std::uint32_t level, std::int64_t a,
                         std::int64_t b) {
  Event ev;
  ev.t_us = epoch_.micros();
  ev.a = a;
  ev.b = b;
  ev.level = level;
  ev.kind = kind;
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(ev);
  ++recorded_;
  if (ring_.size() >= options_.ring_capacity) flush_locked();
}

std::int64_t Tracer::intern(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] =
      intern_ids_.try_emplace(name, static_cast<std::int64_t>(intern_names_.size()));
  if (inserted) intern_names_.push_back(name);
  return it->second;
}

const std::string& Tracer::phase_name(std::int64_t id) const {
  static const std::string kUnknown = "?";
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<std::size_t>(id) >= intern_names_.size())
    return kUnknown;
  return intern_names_[static_cast<std::size_t>(id)];
}

void Tracer::begin_phase(const std::string& name) {
  if (!enabled()) return;
  record_slow(EventKind::kPhaseBegin, 0, intern(name), 0);
}

void Tracer::end_phase(const std::string& name) {
  if (!enabled()) return;
  record_slow(EventKind::kPhaseEnd, 0, intern(name), 0);
}

void Tracer::append_jsonl(std::string* out, const Event& event) const {
  JsonWriter w;
  w.begin_object();
  w.key("t_us").value(event.t_us);
  w.key("kind").value(kind_name(event.kind));
  w.key("level").value(static_cast<std::int64_t>(event.level));
  if (event.kind == EventKind::kPhaseBegin ||
      event.kind == EventKind::kPhaseEnd) {
    // mu_ is held by the caller; read the intern table directly.
    const std::size_t id = static_cast<std::size_t>(event.a);
    w.key("name").value(id < intern_names_.size() ? intern_names_[id] : "?");
  }
  w.key("a").value(event.a);
  w.key("b").value(event.b);
  w.end_object();
  *out += w.str();
  *out += '\n';
}

void Tracer::append_chrome(std::string* out, const Event& event) const {
  JsonWriter w;
  w.begin_object();
  switch (event.kind) {
    case EventKind::kPhaseBegin:
    case EventKind::kPhaseEnd: {
      const std::size_t id = static_cast<std::size_t>(event.a);
      w.key("name").value(id < intern_names_.size() ? intern_names_[id] : "?");
      w.key("cat").value("phase");
      w.key("ph").value(event.kind == EventKind::kPhaseBegin ? "B" : "E");
      break;
    }
    case EventKind::kProgress:
      w.key("name").value("progress");
      w.key("cat").value("progress");
      w.key("ph").value("C");
      break;
    default:
      w.key("name").value(kind_name(event.kind));
      w.key("cat").value("solver");
      w.key("ph").value("i");
      w.key("s").value("t");
      break;
  }
  w.key("ts").value(event.t_us);
  w.key("pid").value(std::int64_t{1});
  w.key("tid").value(std::int64_t{1});
  w.key("args").begin_object();
  if (event.kind == EventKind::kProgress) {
    w.key("conflicts").value(event.a);
    w.key("decisions").value(event.b);
  } else {
    w.key("level").value(static_cast<std::int64_t>(event.level));
    w.key("a").value(event.a);
    w.key("b").value(event.b);
  }
  w.end_object();
  w.end_object();
  *out += w.str();
}

void Tracer::flush_locked() {
  if (ring_.empty()) return;
  if (jsonl_file_ != nullptr) {
    std::string block;
    block.reserve(ring_.size() * 64);
    for (const Event& ev : ring_) append_jsonl(&block, ev);
    std::fwrite(block.data(), 1, block.size(), jsonl_file_);
  }
  if (chrome_file_ != nullptr) {
    std::string block;
    block.reserve(ring_.size() * 96);
    for (const Event& ev : ring_) {
      if (!chrome_first_event_) block += ',';
      chrome_first_event_ = false;
      append_chrome(&block, ev);
    }
    std::fwrite(block.data(), 1, block.size(), chrome_file_);
  }
  if (options_.collect_in_memory) {
    collected_.insert(collected_.end(), ring_.begin(), ring_.end());
  }
  ring_.clear();
}

void Tracer::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  flush_locked();
  if (jsonl_file_ != nullptr) std::fflush(jsonl_file_);
  if (chrome_file_ != nullptr) std::fflush(chrome_file_);
}

void Tracer::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;
    closed_ = true;
    flush_locked();
    enabled_.store(false, std::memory_order_relaxed);
    if (jsonl_file_ != nullptr) {
      std::fclose(jsonl_file_);
      jsonl_file_ = nullptr;
    }
    if (chrome_file_ != nullptr) {
      if (!chrome_footer_written_) std::fputs("]}\n", chrome_file_);
      std::fclose(chrome_file_);
      chrome_file_ = nullptr;
    }
  }
  if (crash_id_ >= 0) {
    unregister_crash_flush(crash_id_);
    crash_id_ = -1;
  }
}

void Tracer::crash_flush(bool finalize) {
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock() || closed_) return;
  flush_locked();
  if (jsonl_file_ != nullptr) std::fflush(jsonl_file_);
  if (chrome_file_ != nullptr) {
    if (finalize && !chrome_footer_written_) {
      std::fputs("]}\n", chrome_file_);
      chrome_footer_written_ = true;
    }
    std::fflush(chrome_file_);
  }
}

std::int64_t Tracer::events_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

std::vector<Event> Tracer::drain() {
  std::lock_guard<std::mutex> lock(mu_);
  flush_locked();
  std::vector<Event> out = std::move(collected_);
  collected_.clear();
  return out;
}

namespace {

TracerOptions global_options_from_env() {
  TracerOptions options;  // all-empty options construct a disabled tracer
  const char* base = std::getenv("RTLSAT_TRACE");
  if (base == nullptr || *base == '\0') return options;
  options.jsonl_path = std::string(base) + ".jsonl";
  options.chrome_path = std::string(base) + ".trace.json";
  const char* verbose = std::getenv("RTLSAT_TRACE_VERBOSE");
  options.verbose = verbose != nullptr && *verbose != '\0' &&
                    std::strcmp(verbose, "0") != 0;
  return options;
}

}  // namespace

Tracer& global() {
  // Destroyed at process exit, which flushes and finalizes the sink files.
  static Tracer tracer(global_options_from_env());
  return tracer;
}

ScopedPhase::ScopedPhase(Tracer* tracer, Stats* stats, std::string name)
    : tracer_(tracer), stats_(stats), name_(std::move(name)) {
  if (tracer_ != nullptr) tracer_->begin_phase(name_);
}

ScopedPhase::~ScopedPhase() {
  if (tracer_ != nullptr) tracer_->end_phase(name_);
  if (stats_ != nullptr) stats_->add("time." + name_ + "_us", timer_.micros());
}

}  // namespace rtlsat::trace
