#include "trace/crash.h"

#include <csignal>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace rtlsat::trace {

namespace {

struct Registration {
  int id = 0;
  CrashFlushFn fn = nullptr;
  void* ctx = nullptr;
};

struct Registry {
  std::mutex mu;
  std::vector<Registration> entries;
  int next_id = 1;
};

// Leaked on purpose: the signal/atexit hooks may fire during static
// destruction, after a normal static would already be gone.
Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

void handle_fatal_signal(int sig) {
  run_crash_flush(/*finalize=*/true);
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

void atexit_hook() { run_crash_flush(/*finalize=*/false); }

void install_hooks_once() {
  static std::once_flag once;
  std::call_once(once, [] {
    std::atexit(atexit_hook);
    std::signal(SIGINT, handle_fatal_signal);
    std::signal(SIGTERM, handle_fatal_signal);
    std::signal(SIGABRT, handle_fatal_signal);
  });
}

}  // namespace

int register_crash_flush(CrashFlushFn fn, void* ctx) {
  install_hooks_once();
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const int id = r.next_id++;
  r.entries.push_back({id, fn, ctx});
  return id;
}

void unregister_crash_flush(int id) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto it = r.entries.begin(); it != r.entries.end(); ++it) {
    if (it->id == id) {
      r.entries.erase(it);
      return;
    }
  }
}

void run_crash_flush(bool finalize) {
  Registry& r = registry();
  // try_lock: if the crash interrupted a register/unregister we skip rather
  // than deadlock — this whole path is best-effort.
  std::unique_lock<std::mutex> lock(r.mu, std::try_to_lock);
  if (!lock.owns_lock()) return;
  for (const Registration& reg : r.entries) reg.fn(reg.ctx, finalize);
}

}  // namespace rtlsat::trace
