#include "trace/sink.h"

namespace rtlsat::trace {

JsonlSink::JsonlSink(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "w");
}

JsonlSink::~JsonlSink() { close(); }

void JsonlSink::write_line(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
  ++lines_;
}

std::int64_t JsonlSink::lines_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_;
}

void JsonlSink::close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  std::fflush(file_);
  std::fclose(file_);
  file_ = nullptr;
}

}  // namespace rtlsat::trace
