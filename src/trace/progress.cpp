#include "trace/progress.h"

#include "trace/json.h"

namespace rtlsat::trace {

ProgressReporter::ProgressReporter(ProgressOptions options)
    : options_(std::move(options)) {
  if (options_.stream == nullptr) options_.stream = stderr;
  if (!options_.clock) {
    options_.clock = [this] { return epoch_.seconds(); };
  }
  if (!options_.jsonl_path.empty()) {
    jsonl_file_ = std::fopen(options_.jsonl_path.c_str(), "w");
  }
  last_report_ = options_.clock();
}

ProgressReporter::~ProgressReporter() {
  if (jsonl_file_ != nullptr) std::fclose(jsonl_file_);
}

void ProgressReporter::tick(const ProgressSnapshot& snapshot) {
  const double now = options_.clock();
  if (now - last_report_ < options_.interval_seconds) return;
  last_report_ = now;
  emit(snapshot, now);
}

void ProgressReporter::finish(const ProgressSnapshot& snapshot) {
  emit(snapshot, options_.clock());
}

void ProgressReporter::emit(const ProgressSnapshot& snapshot, double now) {
  ++reports_;
  if (options_.banner) {
    if (!header_printed_) {
      header_printed_ = true;
      std::fprintf(options_.stream,
                   "|   time(s) |  conflicts |  decisions | propagations | "
                   " learnt |    trail | lvl |\n");
    }
    std::fprintf(options_.stream,
                 "| %9.2f | %10lld | %10lld | %12lld | %7lld | %8lld | %3u |\n",
                 now, static_cast<long long>(snapshot.conflicts),
                 static_cast<long long>(snapshot.decisions),
                 static_cast<long long>(snapshot.propagations),
                 static_cast<long long>(snapshot.learnt),
                 static_cast<long long>(snapshot.trail), snapshot.level);
    std::fflush(options_.stream);
  }
  if (jsonl_file_ != nullptr || options_.sink != nullptr) {
    JsonWriter w;
    w.begin_object();
    // Schema version + per-reporter sequence number: a streaming consumer
    // (the serve wire protocol, a tailing dashboard) detects dropped or
    // reordered lines by a gap or regression in `seq`. reports_ was
    // incremented above, so seq starts at 0 and advances by exactly 1 per
    // emitted line.
    w.key("v").value(kHeartbeatSchemaVersion);
    w.key("seq").value(reports_ - 1);
    w.key("t_s").value(now);
    if (!options_.label.empty()) w.key("worker").value(options_.label);
    w.key("conflicts").value(snapshot.conflicts);
    w.key("decisions").value(snapshot.decisions);
    w.key("propagations").value(snapshot.propagations);
    w.key("learnt").value(snapshot.learnt);
    w.key("restarts").value(snapshot.restarts);
    w.key("trail").value(snapshot.trail);
    w.key("level").value(static_cast<std::int64_t>(snapshot.level));
    w.end_object();
    if (jsonl_file_ != nullptr) {
      std::fprintf(jsonl_file_, "%s\n", w.str().c_str());
      std::fflush(jsonl_file_);
    }
    if (options_.sink != nullptr) options_.sink->write_line(w.str());
  }
  if (options_.tracer != nullptr) {
    options_.tracer->record(EventKind::kProgress, snapshot.level,
                            snapshot.conflicts, snapshot.decisions);
  }
}

}  // namespace rtlsat::trace
