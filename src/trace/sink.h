// JsonlSink: a small thread-safe line sink for JSONL telemetry streams.
//
// The metrics Sampler and the per-worker ProgressReporters of a portfolio
// run share one sink, so interleaved writers from different threads never
// tear a line. Lines are flushed to the OS on every write — telemetry is
// low-rate (heartbeats, samples) and a crash should lose at most the line
// being written.
//
// crash.h provides the companion fix for the *buffered* sinks (the
// ring-buffered Tracer): a process-wide registry of flush callbacks run on
// atexit and on fatal signals (SIGINT/SIGTERM/SIGABRT), so a cancelled or
// aborting run keeps the tail of its event stream.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

namespace rtlsat::trace {

class JsonlSink {
 public:
  // A sink with no backing file: write_line only counts lines. Subclasses
  // (the serve daemon's per-connection progress forwarder) override
  // write_line to redirect the stream somewhere that is not a file.
  JsonlSink() = default;
  explicit JsonlSink(const std::string& path);
  virtual ~JsonlSink();
  JsonlSink(const JsonlSink&) = delete;
  JsonlSink& operator=(const JsonlSink&) = delete;

  bool ok() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  // Writes `line` (without a trailing newline; one is appended) atomically
  // with respect to other writers, then flushes. No-op after close().
  virtual void write_line(const std::string& line);

  std::int64_t lines_written() const;

  void close();

 private:
  std::string path_;
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::int64_t lines_ = 0;
};

}  // namespace rtlsat::trace
