#include "serve/protocol.h"

#include "trace/json.h"

namespace rtlsat::serve {

using trace::JsonValue;
using trace::JsonWriter;

namespace {

// Lookup helpers tolerating absent optional members.
bool get_string(const JsonValue& obj, const char* key, std::string* out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_string()) return false;
  *out = v->string;
  return true;
}

double get_number(const JsonValue& obj, const char* key, double fallback) {
  const JsonValue* v = obj.find(key);
  return (v != nullptr && v->is_number()) ? v->number : fallback;
}

std::int64_t get_int(const JsonValue& obj, const char* key,
                     std::int64_t fallback) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_number()) return fallback;
  return v->exact_integer ? v->integer : static_cast<std::int64_t>(v->number);
}

bool get_bool(const JsonValue& obj, const char* key, bool fallback) {
  const JsonValue* v = obj.find(key);
  return (v != nullptr && v->kind == JsonValue::Kind::kBool) ? v->boolean
                                                             : fallback;
}

JsonWriter server_header(const char* type, std::int64_t seq) {
  JsonWriter w;
  w.begin_object();
  w.key("v").value(kProtocolVersion);
  w.key("seq").value(seq);
  w.key("type").value(type);
  return w;
}

bool fail(std::string* error, const char* message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

std::string encode_request(const Request& request) {
  JsonWriter w;
  w.begin_object();
  switch (request.kind) {
    case Request::Kind::kSolve: {
      const SolveRequest& s = request.solve;
      w.key("type").value("solve");
      w.key("rtl").value(s.rtl);
      w.key("goal").value(s.goal);
      w.key("value").value(s.value);
      if (s.budget_seconds > 0) w.key("budget_s").value(s.budget_seconds);
      if (s.jobs > 0) w.key("jobs").value(s.jobs);
      if (s.deterministic) w.key("deterministic").value(true);
      if (!s.use_cache) w.key("cache").value(false);
      if (!s.use_bank) w.key("bank").value(false);
      if (s.progress) w.key("progress").value(true);
      if (s.presolve) w.key("presolve").value(true);
      if (s.is_bmc()) {
        w.key("seq_rtl").value(s.seq_rtl);
        w.key("property").value(s.property);
        w.key("bound").value(s.bound);
        if (s.cumulative) w.key("cumulative").value(true);
      }
      break;
    }
    case Request::Kind::kCancel:
      w.key("type").value("cancel");
      w.key("job").value(static_cast<std::int64_t>(request.job));
      break;
    case Request::Kind::kStats:
      w.key("type").value("stats");
      break;
    case Request::Kind::kPing:
      w.key("type").value("ping");
      break;
    case Request::Kind::kShutdown:
      w.key("type").value("shutdown");
      break;
  }
  w.end_object();
  return w.take();
}

bool parse_request(const std::string& json, Request* out, std::string* error) {
  JsonValue doc;
  if (!trace::json_parse(json, &doc, error)) return false;
  if (!doc.is_object()) return fail(error, "request is not an object");
  std::string type;
  if (!get_string(doc, "type", &type))
    return fail(error, "request missing string \"type\"");

  *out = Request{};
  if (type == "solve") {
    out->kind = Request::Kind::kSolve;
    SolveRequest& s = out->solve;
    get_string(doc, "seq_rtl", &s.seq_rtl);
    if (s.is_bmc()) {
      // BMC mode: the sequential text replaces rtl/goal (both optional and
      // ignored when present).
      if (!get_string(doc, "property", &s.property))
        return fail(error, "bmc solve missing string \"property\"");
      s.bound = static_cast<int>(get_int(doc, "bound", 0));
      if (s.bound < 1)
        return fail(error, "bmc solve missing positive \"bound\"");
      s.cumulative = get_bool(doc, "cumulative", false);
      get_string(doc, "rtl", &s.rtl);
      get_string(doc, "goal", &s.goal);
    } else {
      if (!get_string(doc, "rtl", &s.rtl))
        return fail(error, "solve missing string \"rtl\"");
      if (!get_string(doc, "goal", &s.goal))
        return fail(error, "solve missing string \"goal\"");
    }
    s.value = get_bool(doc, "value", true);
    s.budget_seconds = get_number(doc, "budget_s", 0);
    s.jobs = static_cast<int>(get_int(doc, "jobs", 0));
    s.deterministic = get_bool(doc, "deterministic", false);
    s.use_cache = get_bool(doc, "cache", true);
    s.use_bank = get_bool(doc, "bank", true);
    s.progress = get_bool(doc, "progress", false);
    s.presolve = get_bool(doc, "presolve", false);
    return true;
  }
  if (type == "cancel") {
    out->kind = Request::Kind::kCancel;
    const std::int64_t job = get_int(doc, "job", -1);
    if (job < 0) return fail(error, "cancel missing numeric \"job\"");
    out->job = static_cast<std::uint64_t>(job);
    return true;
  }
  if (type == "stats") { out->kind = Request::Kind::kStats; return true; }
  if (type == "ping") { out->kind = Request::Kind::kPing; return true; }
  if (type == "shutdown") { out->kind = Request::Kind::kShutdown; return true; }
  return fail(error, "unknown request type");
}

std::string encode_queued(std::int64_t seq, std::uint64_t job) {
  JsonWriter w = server_header("queued", seq);
  w.key("job").value(static_cast<std::int64_t>(job));
  w.end_object();
  return w.take();
}

std::string encode_progress(std::int64_t seq, std::uint64_t job,
                            const std::string& heartbeat_json) {
  JsonWriter w = server_header("progress", seq);
  w.key("job").value(static_cast<std::int64_t>(job));
  w.key("hb").raw_value(heartbeat_json);
  w.end_object();
  return w.take();
}

std::string encode_result(std::int64_t seq, std::uint64_t job,
                          const ResultMsg& result) {
  JsonWriter w = server_header("result", seq);
  w.key("job").value(static_cast<std::int64_t>(job));
  w.key("verdict").value(result.verdict);
  w.key("cache_hit").value(result.cache_hit);
  w.key("solve_s").value(result.solve_seconds);
  w.key("service_s").value(result.service_seconds);
  if (!result.winner.empty()) w.key("winner").value(result.winner);
  if (!result.model.empty()) {
    w.key("model").begin_object();
    for (const auto& [name, value] : result.model) w.key(name).value(value);
    w.end_object();
  }
  if (!result.presolve.empty()) {
    w.key("presolve").begin_object();
    for (const auto& [name, value] : result.presolve) w.key(name).value(value);
    w.end_object();
  }
  w.end_object();
  return w.take();
}

std::string encode_error(std::int64_t seq, const std::string& message) {
  JsonWriter w = server_header("error", seq);
  w.key("message").value(message);
  w.end_object();
  return w.take();
}

std::string encode_job_error(std::int64_t seq, std::uint64_t job,
                             const std::string& message) {
  JsonWriter w = server_header("error", seq);
  w.key("job").value(static_cast<std::int64_t>(job));
  w.key("message").value(message);
  w.end_object();
  return w.take();
}

std::string encode_stats(std::int64_t seq, const ServerStats& stats) {
  JsonWriter w = server_header("stats", seq);
  w.key("uptime_s").value(stats.uptime_seconds);
  w.key("connections").value(stats.connections);
  w.key("queue_depth").value(stats.queue_depth);
  w.key("in_flight").value(stats.in_flight);
  w.key("jobs_done").value(stats.jobs_done);
  w.key("cache_hits").value(stats.cache_hits);
  w.key("cache_misses").value(stats.cache_misses);
  w.key("cache_entries").value(stats.cache_entries);
  w.key("bank_pools").value(stats.bank_pools);
  w.key("bmc_sessions").value(stats.bmc_sessions);
  w.key("cache_hit_ratio").value(stats.cache_hit_ratio);
  w.key("jobs_per_s").value(stats.jobs_per_second);
  w.end_object();
  return w.take();
}

std::string encode_pong(std::int64_t seq) {
  JsonWriter w = server_header("pong", seq);
  w.end_object();
  return w.take();
}

std::string encode_bye(std::int64_t seq) {
  JsonWriter w = server_header("bye", seq);
  w.end_object();
  return w.take();
}

bool parse_server_msg(const std::string& json, ServerMsg* out,
                      std::string* error) {
  JsonValue doc;
  if (!trace::json_parse(json, &doc, error)) return false;
  if (!doc.is_object()) return fail(error, "server message is not an object");

  *out = ServerMsg{};
  out->v = static_cast<int>(get_int(doc, "v", 0));
  if (out->v != kProtocolVersion)
    return fail(error, "unsupported protocol version");
  const JsonValue* seq = doc.find("seq");
  if (seq == nullptr || !seq->is_int())
    return fail(error, "server message missing integer \"seq\"");
  out->seq = seq->integer;

  std::string type;
  if (!get_string(doc, "type", &type))
    return fail(error, "server message missing string \"type\"");
  const std::int64_t job = get_int(doc, "job", -1);
  out->has_job = job >= 0;
  if (out->has_job) out->job = static_cast<std::uint64_t>(job);

  if (type == "queued") {
    out->kind = ServerMsg::Kind::kQueued;
    return out->has_job ? true : fail(error, "queued missing \"job\"");
  }
  if (type == "progress") {
    out->kind = ServerMsg::Kind::kProgress;
    const JsonValue* hb = doc.find("hb");
    if (hb == nullptr || !hb->is_object())
      return fail(error, "progress missing object \"hb\"");
    // Keep the raw heartbeat for pass-through consumers (the client CLI
    // re-emits it as a heartbeat JSONL line); re-encode from the parse.
    JsonWriter w;
    w.begin_object();
    for (const auto& [key, value] : hb->object) {
      w.key(key);
      if (value.is_string()) w.value(value.string);
      else if (value.kind == JsonValue::Kind::kBool) w.value(value.boolean);
      else if (value.is_int()) w.value(value.integer);
      else if (value.is_number()) w.value(value.number);
      else w.null();
    }
    w.end_object();
    out->hb = w.take();
    return out->has_job ? true : fail(error, "progress missing \"job\"");
  }
  if (type == "result") {
    out->kind = ServerMsg::Kind::kResult;
    if (!out->has_job) return fail(error, "result missing \"job\"");
    ResultMsg& r = out->result;
    if (!get_string(doc, "verdict", &r.verdict))
      return fail(error, "result missing string \"verdict\"");
    r.cache_hit = get_bool(doc, "cache_hit", false);
    r.solve_seconds = get_number(doc, "solve_s", 0);
    r.service_seconds = get_number(doc, "service_s", 0);
    get_string(doc, "winner", &r.winner);
    if (const JsonValue* model = doc.find("model");
        model != nullptr && model->is_object()) {
      for (const auto& [name, value] : model->object) {
        if (!value.is_int()) return fail(error, "non-integer model value");
        r.model.emplace_back(name, value.integer);
      }
    }
    if (const JsonValue* pre = doc.find("presolve");
        pre != nullptr && pre->is_object()) {
      for (const auto& [name, value] : pre->object) {
        if (!value.is_int()) return fail(error, "non-integer presolve value");
        r.presolve.emplace_back(name, value.integer);
      }
    }
    return true;
  }
  if (type == "error") {
    out->kind = ServerMsg::Kind::kError;
    if (!get_string(doc, "message", &out->message))
      return fail(error, "error missing string \"message\"");
    return true;
  }
  if (type == "stats") {
    out->kind = ServerMsg::Kind::kStats;
    ServerStats& s = out->stats;
    s.uptime_seconds = get_number(doc, "uptime_s", 0);
    s.connections = get_int(doc, "connections", 0);
    s.queue_depth = get_int(doc, "queue_depth", 0);
    s.in_flight = get_int(doc, "in_flight", 0);
    s.jobs_done = get_int(doc, "jobs_done", 0);
    s.cache_hits = get_int(doc, "cache_hits", 0);
    s.cache_misses = get_int(doc, "cache_misses", 0);
    s.cache_entries = get_int(doc, "cache_entries", 0);
    s.bank_pools = get_int(doc, "bank_pools", 0);
    s.bmc_sessions = get_int(doc, "bmc_sessions", 0);
    s.cache_hit_ratio = get_number(doc, "cache_hit_ratio", 0);
    s.jobs_per_second = get_number(doc, "jobs_per_s", 0);
    return true;
  }
  if (type == "pong") { out->kind = ServerMsg::Kind::kPong; return true; }
  if (type == "bye") { out->kind = ServerMsg::Kind::kBye; return true; }
  return fail(error, "unknown server message type");
}

}  // namespace rtlsat::serve
