// rtlsat-serve message schema and codec (docs/serve.md has the grammar).
//
// Both directions speak length-framed JSON (serve/net.h). Client→server
// messages are plain: {"type": "solve"|"cancel"|"stats"|"ping"|"shutdown",
// ...}. Server→client messages additionally carry the same ("v", "seq")
// header the progress heartbeat JSONL schema uses (trace/progress.h):
// "v" is the protocol schema version and "seq" increments by one per frame
// per connection, so a client can detect dropped or reordered frames with
// the same check bench_json_validate applies to heartbeat streams.
//
// Progress frames do not re-encode the solver heartbeat: the heartbeat
// record ProgressReporter emitted is embedded verbatim under "hb" (it has
// its own v/seq pair scoped to the worker stream — the two sequence spaces
// are deliberately independent).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rtlsat::serve {

// Version of the wire schema, stamped as "v" on every server frame.
// Bumped only for incompatible changes; additive fields keep v = 1.
inline constexpr int kProtocolVersion = 1;

// ---- client → server ------------------------------------------------------

struct SolveRequest {
  std::string rtl;        // full .rtl circuit text (parser/rtl_format.h)
  std::string goal;       // net name inside the circuit
  bool value = true;      // prove/find goal == value
  double budget_seconds = 0;  // 0 = server default
  int jobs = 0;               // portfolio width; 0 = server default
  bool deterministic = false;
  bool use_cache = true;  // structural-hash result cache (serve/cache.h)
  bool use_bank = true;   // cross-job clause bank (serve/bank.h)
  bool progress = false;  // stream worker heartbeats to this client
  // Run the interval presolver before the race (portfolio.h's presolve
  // option; combinational solves only — BMC-mode requests ignore it).
  // Additive field, v stays 1.
  bool presolve = false;

  // BMC mode (additive fields, v stays 1): when `seq_rtl` is non-empty the
  // request is a bounded-model-checking query "property violated at
  // (exactly | within, see `cumulative`) `bound` steps" on a *sequential*
  // .rtl circuit, and `rtl`/`goal` are ignored. Successive bounds on the
  // byte-identical (seq_rtl, property, cumulative) triple reuse one warm
  // incremental solver on the server (serve/bank.h's BmcSessionBank) when
  // `use_bank` is set, so a client sweeping k = 1, 2, 3… pays the
  // unrolling and the learned-clause discovery only once.
  std::string seq_rtl;    // sequential circuit text; non-empty ⟹ BMC mode
  std::string property;   // property name inside the seq circuit
  int bound = 0;          // time-frames (≥ 1)
  bool cumulative = false;  // violation in ANY frame ≤ bound

  bool is_bmc() const { return !seq_rtl.empty(); }
};

struct Request {
  enum class Kind { kSolve, kCancel, kStats, kPing, kShutdown };
  Kind kind = Kind::kPing;
  SolveRequest solve;        // kSolve
  std::uint64_t job = 0;     // kCancel
};

std::string encode_request(const Request& request);
bool parse_request(const std::string& json, Request* out, std::string* error);

// ---- server → client ------------------------------------------------------

// STATS snapshot; also the payload behind `rtlsat_client stats`.
struct ServerStats {
  double uptime_seconds = 0;
  std::int64_t connections = 0;     // currently open
  std::int64_t queue_depth = 0;     // jobs waiting
  std::int64_t in_flight = 0;       // jobs being solved
  std::int64_t jobs_done = 0;       // completed (any verdict), incl. cache hits
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t cache_entries = 0;
  std::int64_t bank_pools = 0;      // live cross-job clause pools
  std::int64_t bmc_sessions = 0;    // warm incremental BMC solver sessions
  double cache_hit_ratio = 0;       // hits / (hits + misses), 0 when idle
  double jobs_per_second = 0;       // jobs_done / uptime
};

struct ResultMsg {
  std::string verdict;     // "sat" | "unsat" | "timeout" | "cancelled"
  bool cache_hit = false;
  double solve_seconds = 0;   // the *solver's* time: original solve if cached
  double service_seconds = 0; // this job's wall time inside the server
  std::string winner;         // portfolio worker name, "" when undecided
  // SAT only: value for every primary input, keyed by net name.
  std::vector<std::pair<std::string, std::int64_t>> model;
  // presolve.* counters from the solve (empty unless the request asked for
  // presolve); cached alongside the verdict so a cache hit replays them.
  // Additive field, v stays 1.
  std::vector<std::pair<std::string, std::int64_t>> presolve;
};

struct ServerMsg {
  enum class Kind { kQueued, kProgress, kResult, kError, kStats, kPong, kBye };
  Kind kind = Kind::kPong;
  int v = 0;
  std::int64_t seq = 0;
  std::uint64_t job = 0;     // kQueued/kProgress/kResult, and kError when bound
  bool has_job = false;
  std::string hb;            // kProgress: embedded heartbeat JSON, verbatim
  ResultMsg result;          // kResult
  std::string message;       // kError
  ServerStats stats;         // kStats
};

std::string encode_queued(std::int64_t seq, std::uint64_t job);
std::string encode_progress(std::int64_t seq, std::uint64_t job,
                            const std::string& heartbeat_json);
std::string encode_result(std::int64_t seq, std::uint64_t job,
                          const ResultMsg& result);
// job == 0 with has_job=false ⟹ connection-level error (unbound).
std::string encode_error(std::int64_t seq, const std::string& message);
std::string encode_job_error(std::int64_t seq, std::uint64_t job,
                             const std::string& message);
std::string encode_stats(std::int64_t seq, const ServerStats& stats);
std::string encode_pong(std::int64_t seq);
std::string encode_bye(std::int64_t seq);

bool parse_server_msg(const std::string& json, ServerMsg* out,
                      std::string* error);

}  // namespace rtlsat::serve
