#include "serve/client.h"

#include "serve/net.h"

namespace rtlsat::serve {

namespace {

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

bool Client::connect(const std::string& host, int port, std::string* error) {
  disconnect();
  fd_ = connect_tcp(host, port, error);
  expect_seq_ = 0;
  return fd_ >= 0;
}

void Client::disconnect() {
  close_fd(fd_);
  fd_ = -1;
}

bool Client::send(const Request& request, std::string* error) {
  if (fd_ < 0) return fail(error, "not connected");
  if (!write_frame(fd_, encode_request(request))) {
    disconnect();
    return fail(error, "connection lost while sending");
  }
  return true;
}

bool Client::read_msg(ServerMsg* out, std::string* error) {
  std::string frame;
  std::string frame_error;
  if (!read_frame(fd_, &frame, &frame_error)) {
    disconnect();
    return fail(error, frame_error.empty() ? "server closed the connection"
                                           : frame_error);
  }
  std::string parse_error;
  if (!parse_server_msg(frame, out, &parse_error))
    return fail(error, "bad server frame: " + parse_error);
  if (out->seq != expect_seq_) {
    return fail(error, "sequence gap: expected " +
                           std::to_string(expect_seq_) + ", got " +
                           std::to_string(out->seq));
  }
  ++expect_seq_;
  return true;
}

bool Client::submit(const SolveRequest& request, std::uint64_t* job,
                    std::string* error) {
  Request r;
  r.kind = Request::Kind::kSolve;
  r.solve = request;
  if (!send(r, error)) return false;
  ServerMsg msg;
  if (!read_msg(&msg, error)) return false;
  if (msg.kind == ServerMsg::Kind::kError)
    return fail(error, "server: " + msg.message);
  if (msg.kind != ServerMsg::Kind::kQueued)
    return fail(error, "expected a queued frame");
  *job = msg.job;
  return true;
}

bool Client::wait(std::uint64_t job, ResultMsg* out, std::string* error,
                  const ProgressFn& on_progress) {
  for (;;) {
    ServerMsg msg;
    if (!read_msg(&msg, error)) return false;
    switch (msg.kind) {
      case ServerMsg::Kind::kProgress:
        if (msg.job == job && on_progress) on_progress(msg.hb);
        break;
      case ServerMsg::Kind::kResult:
        if (msg.job == job) {
          *out = std::move(msg.result);
          return true;
        }
        break;
      case ServerMsg::Kind::kError:
        if (!msg.has_job || msg.job == job)
          return fail(error, "server: " + msg.message);
        break;
      default:
        // A stats/pong reply to a request interleaved by the caller; not
        // ours to consume semantics from, but seq already validated it.
        break;
    }
  }
}

bool Client::solve(const SolveRequest& request, ResultMsg* out,
                   std::string* error, const ProgressFn& on_progress) {
  std::uint64_t job = 0;
  if (!submit(request, &job, error)) return false;
  return wait(job, out, error, on_progress);
}

bool Client::cancel(std::uint64_t job, std::string* error) {
  Request r;
  r.kind = Request::Kind::kCancel;
  r.job = job;
  return send(r, error);
}

bool Client::stats(ServerStats* out, std::string* error) {
  Request r;
  r.kind = Request::Kind::kStats;
  if (!send(r, error)) return false;
  for (;;) {
    ServerMsg msg;
    if (!read_msg(&msg, error)) return false;
    if (msg.kind == ServerMsg::Kind::kStats) {
      *out = msg.stats;
      return true;
    }
    if (msg.kind == ServerMsg::Kind::kError)
      return fail(error, "server: " + msg.message);
  }
}

bool Client::ping(std::string* error) {
  Request r;
  r.kind = Request::Kind::kPing;
  if (!send(r, error)) return false;
  for (;;) {
    ServerMsg msg;
    if (!read_msg(&msg, error)) return false;
    if (msg.kind == ServerMsg::Kind::kPong) return true;
    if (msg.kind == ServerMsg::Kind::kError)
      return fail(error, "server: " + msg.message);
  }
}

bool Client::shutdown_server(std::string* error) {
  Request r;
  r.kind = Request::Kind::kShutdown;
  if (!send(r, error)) return false;
  for (;;) {
    ServerMsg msg;
    if (!read_msg(&msg, error)) return false;
    if (msg.kind == ServerMsg::Kind::kBye) return true;
    if (msg.kind == ServerMsg::Kind::kError)
      return fail(error, "server: " + msg.message);
  }
}

}  // namespace rtlsat::serve
