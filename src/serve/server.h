// The rtlsat-serve daemon core: a TCP front-end, a bounded job queue, a
// solve worker pool, and the two cross-job stores — the structural-hash
// result cache (serve/cache.h) and the exact-instance clause bank
// (serve/bank.h).
//
// Threading model (docs/serve.md has the full walk-through):
//
//   accept thread ──▶ one reader thread per connection ──▶ bounded queue
//                                                              │
//   solve workers (options.solve_workers threads) ◀────────────┘
//
// Connection readers parse requests and answer everything cheap inline:
// ping, stats, cancel, cache hits at submit time. Only a cache-missing
// solve crosses the queue to a worker. Workers write results (and streamed
// progress heartbeats) directly to the submitting connection; a
// per-connection write mutex plus the per-connection "seq" counter keep
// frames whole and ordered no matter which thread sends.
//
// Shutdown has two gears. drain() — the SIGTERM path — stops accepting,
// lets queued and running jobs finish, then closes connections;
// shutdown_now() additionally fires every active job's StopSource so
// in-flight portfolios return kCancelled within their poll latency. Both
// are idempotent, callable from any thread, and only flip state — wait()
// does the joining.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/bank.h"
#include "serve/cache.h"
#include "serve/protocol.h"
#include "util/timer.h"

namespace rtlsat::metrics {
class Gauge;
class MetricsRegistry;
}  // namespace rtlsat::metrics

namespace rtlsat::serve {

// The strongest single-solver configuration (+S+P): BMC sessions run one
// persistent solver, so it should be the best one.
inline core::HdpllOptions default_bmc_solver_options() {
  core::HdpllOptions options;
  options.structural_decisions = true;
  options.predicate_learning = true;
  return options;
}

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;                   // 0 = ephemeral; Server::port() has the pick
  int solve_workers = 2;          // concurrent jobs
  std::size_t queue_capacity = 64;
  int solve_jobs = 2;             // default portfolio width per job
  double default_budget_seconds = 10;
  double max_budget_seconds = 120;   // client budgets are clamped to this
  std::size_t cache_capacity = 1024;
  std::size_t bank_capacity = 64;
  // Warm incremental-BMC sessions (serve/bank.h's BmcSessionBank). 0
  // disables reuse: every BMC job gets a throwaway session.
  std::size_t bmc_session_capacity = 16;
  // Solver configuration for BMC sessions. One persistent HDPLL instance
  // per session — the portfolio does not apply, because the solver's
  // carried state is exactly what the session exists to reuse.
  core::HdpllOptions bmc_solver = default_bmc_solver_options();
  // Replay every cache-hit SAT model through Circuit::evaluate before
  // trusting it; a failed replay falls back to a fresh solve. One linear
  // pass per hit — cheap insurance on the canonicalization, on by default.
  bool verify_cache_hits = true;
  // serve.* gauges land here when set (borrowed; must outlive the server).
  metrics::MetricsRegistry* metrics = nullptr;
  double progress_interval_seconds = 0.25;
};

// Implementation types (server.cpp): a connection's write half and one
// queued solve. At namespace scope so helpers like the progress forwarder
// can hold them without friending into Server.
struct Connection;
struct Job;

class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();  // shutdown_now() + wait() if still running
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens, spawns the accept thread and the worker pool. False
  // with *error on bind failure.
  bool start(std::string* error);
  int port() const { return port_; }

  void drain();
  void shutdown_now();
  // Joins everything; returns once the last connection closed. Implies the
  // caller (or a client "shutdown" request) eventually triggers drain().
  void wait();

  ServerStats snapshot() const;

  ResultCache& cache() { return cache_; }
  ExactCache& exact_cache() { return exact_cache_; }
  ClauseBank& bank() { return bank_; }
  BmcSessionBank& bmc_bank() { return bmc_bank_; }

 private:
  void accept_loop();
  void connection_loop(std::shared_ptr<Connection> conn);
  void worker_loop();
  void handle_solve(const std::shared_ptr<Connection>& conn,
                    SolveRequest request);
  void handle_cancel(const std::shared_ptr<Connection>& conn,
                     std::uint64_t job_id);
  void enqueue_job(const std::shared_ptr<Job>& job);
  void run_job(const std::shared_ptr<Job>& job);
  void run_bmc_job(const std::shared_ptr<Job>& job);
  void finish_job(const std::shared_ptr<Job>& job, const ResultMsg& result);
  // Cache-hit fast path: reconstructs the witness for `job`'s circuit from
  // the canonical-order model and (optionally) replays it. False ⟹ treat
  // as a miss.
  bool try_cache_hit(const std::shared_ptr<Job>& job);
  void publish_gauges();

  ServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  Timer uptime_;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_now_{false};

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> conn_threads_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Job>> queue_;
  std::atomic<std::int64_t> queue_depth_{0};  // mirrors queue_.size()

  // Queued or running jobs, for cancel and shutdown_now. Entries are
  // removed in finish_job.
  std::mutex jobs_mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Job>> active_;
  std::atomic<std::uint64_t> next_job_{1};

  // Two cache tiers: exact_cache_ answers byte-identical repeats before the
  // request is even parsed; cache_ answers isomorphic repeats after
  // canonicalization. Stats fold both into cache_hits (an exact hit never
  // reaches the canonical tier, so there is no double counting).
  ResultCache cache_;
  ExactCache exact_cache_;
  ClauseBank bank_;
  BmcSessionBank bmc_bank_;
  std::atomic<std::int64_t> jobs_done_{0};
  std::atomic<std::int64_t> in_flight_{0};
  std::atomic<std::int64_t> open_connections_{0};

  // serve.* instrument handles; null when options_.metrics is null.
  metrics::Gauge* gauge_queue_depth_ = nullptr;
  metrics::Gauge* gauge_in_flight_ = nullptr;
  metrics::Gauge* gauge_connections_ = nullptr;
  metrics::Gauge* gauge_jobs_done_ = nullptr;
  metrics::Gauge* gauge_cache_hits_ = nullptr;
  metrics::Gauge* gauge_cache_misses_ = nullptr;
};

}  // namespace rtlsat::serve
