#include "serve/bank.h"

namespace rtlsat::serve {

BankCheckout ClauseBank::checkout(const std::string& rtl,
                                  const std::string& goal, bool value,
                                  int workers) {
  // goal cannot contain '\n' (it is one .rtl token), so the separator makes
  // the concatenation injective.
  std::string key = goal;
  key += value ? "\n1\n" : "\n0\n";
  key += rtl;

  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    if (capacity_ == 0) {
      // Bank disabled: hand out an unshared pool so callers need no
      // special case (it behaves exactly like the portfolio's local pool).
      return BankCheckout{std::make_shared<portfolio::ClausePool>(), 0};
    }
    lru_.push_front(
        Entry{std::move(key), std::make_shared<portfolio::ClausePool>(), 0});
    index_.emplace(lru_.front().key, lru_.begin());
    if (lru_.size() > capacity_) {
      index_.erase(lru_.back().key);
      lru_.pop_back();  // running checkouts keep the pool alive
    }
    it = index_.find(lru_.front().key);
  } else {
    lru_.splice(lru_.begin(), lru_, it->second);
  }
  Entry& entry = *it->second;
  BankCheckout out{entry.pool, entry.next_worker_id};
  entry.next_worker_id += workers > 0 ? workers : 1;
  return out;
}

std::size_t ClauseBank::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::shared_ptr<BmcSession> BmcSessionBank::checkout(
    const std::string& seq_rtl, const std::string& property,
    bool cumulative) {
  // property cannot contain '\n' (it is one .rtl token), so the separator
  // makes the concatenation injective.
  std::string key = property;
  key += cumulative ? "\nA\n" : "\nK\n";
  key += seq_rtl;

  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    if (capacity_ == 0) return std::make_shared<BmcSession>();
    lru_.push_front(Entry{std::move(key), std::make_shared<BmcSession>()});
    index_.emplace(lru_.front().key, lru_.begin());
    if (lru_.size() > capacity_) {
      index_.erase(lru_.back().key);
      lru_.pop_back();  // running checkouts keep the session alive
    }
    return lru_.front().session;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->session;
}

std::size_t BmcSessionBank::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace rtlsat::serve
