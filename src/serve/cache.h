// Structural-hash result cache: verdicts keyed by the canonical form of
// the property cone (ir/cone.h), so a repeat query — or any *isomorphic*
// query: renamed nets, renumbered ids, permuted commutative operands,
// extra logic outside the cone — returns in microseconds instead of
// re-running the portfolio.
//
// Soundness: the full canonical text is the key, never the 64-bit digest
// alone. Equal canonical text means the cones are literally the same
// circuit up to renaming (ir/cone.h proves the quotient), so a cached
// verdict for (cone, goal_value) transfers exactly. The digest only picks
// the hash bucket; a collision costs a string compare, not a wrong answer.
//
// Model transfer: a SAT verdict's witness is stored by *canonical input
// index* — position in CanonicalCone::inputs, which the canonicalization
// orders identically for isomorphic cones. On a hit the caller maps those
// positions through its own cone's `inputs` vector back to concrete
// NetIds. Inputs outside the cone cannot affect the goal (that is what a
// cone is), so the caller reports 0 for them.
//
// Concurrency: one mutex around a textbook LRU (hash map into an intrusive
// list). Lookups are a string hash + compare — nanoseconds against the
// seconds a solve costs — so a sharded design would be complexity without
// a measurable win; the loadgen p50 numbers in docs/serve.md back this up.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/hdpll.h"
#include "ir/cone.h"
#include "serve/protocol.h"

namespace rtlsat::serve {

// Injective key for a byte-identical request; `goal` is one .rtl token so
// the newline separators cannot be forged. Shared by the exact-text tier
// below and by serve/bank.h's pool keying.
inline std::string exact_request_key(const std::string& rtl,
                                     const std::string& goal, bool value) {
  std::string key = goal;
  key += value ? "\n1\n" : "\n0\n";
  key += rtl;
  return key;
}

// Exact-text front tier (L1): complete result messages keyed by the
// byte-identical (rtl, goal, value) request. A hit skips the parse and the
// canonicalization entirely — this is what makes an *identical* repeat
// query microseconds, while the canonical tier below handles merely
// *isomorphic* repeats. Sound because identical text parses to the
// identical circuit: verdict, witness, and input names all transfer as-is.
class ExactCache {
 public:
  explicit ExactCache(std::size_t capacity) : capacity_(capacity) {}

  std::optional<ResultMsg> lookup(const std::string& key);
  // Only decisive verdicts belong here; the caller filters.
  void insert(const std::string& key, ResultMsg result);

  std::size_t size() const;
  std::int64_t hits() const;

 private:
  struct Entry {
    std::string key;
    ResultMsg result;
  };

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::int64_t hits_ = 0;
};

struct CachedResult {
  core::SolveStatus status = core::SolveStatus::kTimeout;
  // kSat only: witness value per canonical cone input, indexed in
  // CanonicalCone::inputs order.
  std::vector<std::int64_t> model;
  double solve_seconds = 0;   // wall time of the original solve
  std::string winner;         // portfolio worker that produced the verdict
  // presolve.* counters of the original solve (empty when presolve was
  // off); served back verbatim on a hit so the client's counters don't
  // depend on who populated the cache.
  std::vector<std::pair<std::string, std::int64_t>> presolve;
};

class ResultCache {
 public:
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  // Looks up the (cone, value) pair and, on a hit, bumps it to
  // most-recently-used. Undecided statuses are never stored, so a hit is
  // always a decisive verdict.
  std::optional<CachedResult> lookup(const ir::CanonicalCone& cone,
                                     bool value);

  // Stores a decisive verdict; kTimeout/kCancelled are dropped (a budget
  // miss under one load says nothing about the next query's budget).
  // `model` must be in canonical-input order (see file comment); pass empty
  // for kUnsat. Re-inserting an existing key refreshes recency only — the
  // verdicts cannot differ unless a solver is unsound, and the fuzz cache
  // oracle (tests/serve/cache_fuzz_test.cpp) checks exactly that.
  void insert(const ir::CanonicalCone& cone, bool value, CachedResult result);

  std::size_t size() const;
  std::int64_t hits() const;
  std::int64_t misses() const;
  std::int64_t evictions() const;

 private:
  static std::string make_key(const ir::CanonicalCone& cone, bool value) {
    // The value bit cannot collide with text: canonical text starts with
    // its "cone v1" header, so a one-byte prefix keeps keys distinct.
    return (value ? "1" : "0") + cone.text;
  }

  struct Entry {
    std::string key;
    CachedResult result;
  };

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
  std::int64_t evictions_ = 0;
};

}  // namespace rtlsat::serve
