// Minimal POSIX TCP plumbing for rtlsat-serve: bind/listen/accept/connect
// helpers and the length-framed message transport both sides speak.
//
// Framing (docs/serve.md "Wire protocol"): every message is one JSON
// document on one line, prefixed by its byte length in ASCII decimal —
//
//   <len>\n<json>\n
//
// where <len> counts exactly the <json> bytes (neither newline). The
// length prefix lets a reader allocate once and detect truncation; the
// trailing newline keeps a captured stream valid JSONL, so the same
// validators (bench_json_validate jsonl) work on a protocol transcript.
//
// All calls handle EINTR; writers use MSG_NOSIGNAL so a peer hangup is a
// return code, not SIGPIPE. Blocking I/O throughout — the server gives
// every connection its own thread (docs/serve.md "Threading model").
#pragma once

#include <string>

namespace rtlsat::serve {

// Messages above this are a protocol violation (a runaway or hostile
// peer), not a capacity knob; 64 MiB clears any realistic .rtl payload.
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;

// Binds and listens on host:port (port 0 = ephemeral). Returns the
// listening fd and stores the actual port in *port_out; -1 on failure with
// *error set.
int listen_tcp(const std::string& host, int port, int* port_out,
               std::string* error);

// Connects to host:port. Returns the fd, or -1 with *error set.
int connect_tcp(const std::string& host, int port, std::string* error);

// Accepts one connection; -1 on error/shutdown (errno preserved).
int accept_one(int listen_fd);

void close_fd(int fd);

// Writes one framed message. Returns false on any short write / peer
// hangup (the connection is unusable afterwards).
bool write_frame(int fd, const std::string& json);

// Reads one framed message into *json. Returns false on EOF, malformed
// framing, or an over-long frame; *error distinguishes clean EOF (empty
// error) from a protocol violation.
bool read_frame(int fd, std::string* json, std::string* error);

}  // namespace rtlsat::serve
