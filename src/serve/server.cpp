#include "serve/server.h"

#include <sys/socket.h>

#include <algorithm>
#include <utility>

#include "ir/cone.h"
#include "metrics/metrics.h"
#include "parser/rtl_format.h"
#include "portfolio/portfolio.h"
#include "serve/net.h"
#include "trace/sink.h"
#include "util/log.h"
#include "util/stop_token.h"

namespace rtlsat::serve {

using ir::NetId;

// The write half of one client connection. Readers, solve workers, and
// progress forwarders all send through here; the mutex keeps frames whole
// and hands out consecutive "seq" values in send order, so the stream a
// client observes is exactly the stamped order.
struct Connection {
  explicit Connection(int fd_in) : fd(fd_in) {}
  ~Connection() { close_fd(fd); }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  template <typename Build>
  bool send(Build&& build) {
    std::lock_guard<std::mutex> lock(write_mu);
    if (dead) return false;
    if (!write_frame(fd, build(seq))) {
      // The peer hung up; later sends become no-ops rather than EPIPEs.
      dead = true;
      return false;
    }
    ++seq;
    return true;
  }

  const int fd;
  std::mutex write_mu;
  std::int64_t seq = 0;  // guarded by write_mu
  bool dead = false;     // guarded by write_mu
};

// One accepted solve, from queued to result frame.
struct Job {
  std::uint64_t id = 0;
  std::shared_ptr<Connection> conn;
  ir::Circuit circuit;
  NetId goal = ir::kNoNet;
  ir::CanonicalCone cone;  // only populated when request.use_cache
  std::string exact_key;   // ditto; exact-text tier key for this request
  ir::SeqCircuit seq{""};  // BMC only: parsed at submit, seeds the session
  SolveRequest request;
  StopSource stop;        // fired by cancel / shutdown_now
  Timer service_timer;    // started at submit
};

namespace {

// Adapts the portfolio's JSONL progress sink to protocol frames: each
// worker heartbeat line becomes one "progress" frame on the submitting
// connection, heartbeat embedded verbatim.
class ProgressForwarder : public trace::JsonlSink {
 public:
  ProgressForwarder(std::shared_ptr<Connection> conn, std::uint64_t job)
      : conn_(std::move(conn)), job_(job) {}

  void write_line(const std::string& line) override {
    conn_->send(
        [&](std::int64_t seq) { return encode_progress(seq, job_, line); });
  }

 private:
  std::shared_ptr<Connection> conn_;
  std::uint64_t job_;
};

// All primary inputs, cache-model values for cone inputs, 0 elsewhere
// (inputs outside the goal cone cannot affect the goal).
std::unordered_map<NetId, std::int64_t> rebuild_model(
    const Job& job, const std::vector<std::int64_t>& canonical_model) {
  std::unordered_map<NetId, std::int64_t> model;
  for (const NetId input : job.circuit.inputs()) model[input] = 0;
  const std::size_t n =
      std::min(job.cone.inputs.size(), canonical_model.size());
  for (std::size_t i = 0; i < n; ++i)
    model[job.cone.inputs[i]] = canonical_model[i];
  return model;
}

void fill_model_names(const Job& job,
                      const std::unordered_map<NetId, std::int64_t>& model,
                      ResultMsg* msg) {
  for (const NetId input : job.circuit.inputs()) {
    const auto it = model.find(input);
    msg->model.emplace_back(job.circuit.net_name(input),
                            it != model.end() ? it->second : 0);
  }
}

// Exact-cache "goal" token for a BMC request: folds bound and goal shape
// into one '\n'-free token. Injective — the suffix after the last '#' is
// digits plus an optional '+', which no earlier split can mimic.
std::string bmc_goal_token(const SolveRequest& request) {
  std::string token = request.property;
  token += '#';
  token += std::to_string(request.bound);
  if (request.cumulative) token += '+';
  return token;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_capacity),
      exact_cache_(options_.cache_capacity),
      bank_(options_.bank_capacity),
      bmc_bank_(options_.bmc_session_capacity) {}

Server::~Server() {
  if (started_.load()) {
    shutdown_now();
    wait();
  }
}

bool Server::start(std::string* error) {
  listen_fd_ = listen_tcp(options_.host, options_.port, &port_, error);
  if (listen_fd_ < 0) return false;
  if (options_.metrics != nullptr) {
    metrics::MetricsRegistry* m = options_.metrics;
    gauge_queue_depth_ = m->gauge("serve.queue_depth");
    gauge_in_flight_ = m->gauge("serve.in_flight");
    gauge_connections_ = m->gauge("serve.connections");
    gauge_jobs_done_ = m->gauge("serve.jobs_done", {}, /*monotone=*/true);
    gauge_cache_hits_ = m->gauge("serve.cache_hits", {}, /*monotone=*/true);
    gauge_cache_misses_ = m->gauge("serve.cache_misses", {}, /*monotone=*/true);
  }
  uptime_.reset();
  started_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  const int workers = std::max(options_.solve_workers, 1);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  return true;
}

void Server::drain() {
  draining_.store(true);
  // Unblocks the accept loop: accept(2) fails once the listening socket is
  // shut down. The fd itself is closed in wait(), after the thread joined.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  queue_cv_.notify_all();
}

void Server::shutdown_now() {
  stop_now_.store(true);
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    for (auto& [id, job] : active_) job->stop.request_stop();
  }
  drain();
}

void Server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  // Workers are done ⟹ every result frame is out; now cut the readers
  // loose. Clients that already disconnected removed themselves from
  // conns_, their threads just need the join.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& conn : conns_) ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (std::thread& t : conn_threads_) t.join();
  conn_threads_.clear();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.clear();
  }
  close_fd(listen_fd_);
  listen_fd_ = -1;
  started_.store(false);
}

ServerStats Server::snapshot() const {
  ServerStats s;
  s.uptime_seconds = uptime_.seconds();
  s.connections = open_connections_.load();
  s.queue_depth = queue_depth_.load();
  s.in_flight = in_flight_.load();
  s.jobs_done = jobs_done_.load();
  s.cache_hits = cache_.hits() + exact_cache_.hits();
  s.cache_misses = cache_.misses();
  s.cache_entries = static_cast<std::int64_t>(cache_.size());
  s.bank_pools = static_cast<std::int64_t>(bank_.size());
  s.bmc_sessions = static_cast<std::int64_t>(bmc_bank_.size());
  const double lookups = static_cast<double>(s.cache_hits + s.cache_misses);
  s.cache_hit_ratio =
      lookups > 0 ? static_cast<double>(s.cache_hits) / lookups : 0;
  s.jobs_per_second = s.uptime_seconds > 0
                          ? static_cast<double>(s.jobs_done) / s.uptime_seconds
                          : 0;
  return s;
}

void Server::publish_gauges() {
  if (gauge_queue_depth_ == nullptr) return;
  gauge_queue_depth_->set(queue_depth_.load());
  gauge_in_flight_->set(in_flight_.load());
  gauge_connections_->set(open_connections_.load());
  gauge_jobs_done_->set(jobs_done_.load());
  gauge_cache_hits_->set(cache_.hits() + exact_cache_.hits());
  gauge_cache_misses_->set(cache_.misses());
}

void Server::accept_loop() {
  for (;;) {
    const int fd = accept_one(listen_fd_);
    if (fd < 0) return;  // listening socket shut down (drain) or fatal
    if (draining_.load()) {
      close_fd(fd);
      continue;
    }
    auto conn = std::make_shared<Connection>(fd);
    open_connections_.fetch_add(1);
    publish_gauges();
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(conn);
    conn_threads_.emplace_back([this, conn] { connection_loop(conn); });
  }
}

void Server::connection_loop(std::shared_ptr<Connection> conn) {
  for (;;) {
    std::string frame;
    std::string frame_error;
    if (!read_frame(conn->fd, &frame, &frame_error)) {
      if (!frame_error.empty()) {
        conn->send([&](std::int64_t seq) {
          return encode_error(seq, "bad frame: " + frame_error);
        });
      }
      break;
    }
    Request request;
    std::string parse_error;
    if (!parse_request(frame, &request, &parse_error)) {
      conn->send([&](std::int64_t seq) {
        return encode_error(seq, "bad request: " + parse_error);
      });
      continue;
    }
    switch (request.kind) {
      case Request::Kind::kPing:
        conn->send([](std::int64_t seq) { return encode_pong(seq); });
        break;
      case Request::Kind::kStats: {
        const ServerStats stats = snapshot();
        conn->send(
            [&](std::int64_t seq) { return encode_stats(seq, stats); });
        break;
      }
      case Request::Kind::kCancel:
        handle_cancel(conn, request.job);
        break;
      case Request::Kind::kShutdown:
        conn->send([](std::int64_t seq) { return encode_bye(seq); });
        drain();
        break;
      case Request::Kind::kSolve:
        handle_solve(conn, std::move(request.solve));
        break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    conn->dead = true;
  }
  {
    // Drop the registry's reference; jobs still holding the connection keep
    // it (and its fd) alive until their result send fails harmlessly.
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.erase(std::remove(conns_.begin(), conns_.end(), conn),
                 conns_.end());
  }
  open_connections_.fetch_sub(1);
  publish_gauges();
}

void Server::handle_solve(const std::shared_ptr<Connection>& conn,
                          SolveRequest request) {
  if (draining_.load() || stop_now_.load()) {
    conn->send([](std::int64_t seq) {
      return encode_error(seq, "server is draining");
    });
    return;
  }
  // BMC requests have their own job pipeline: no canonical-cone tier (the
  // canonicalization is per-circuit, and the instance is the *growing*
  // unrolling), and the solve runs on a warm shared session rather than a
  // fresh portfolio.
  if (request.is_bmc()) {
    std::string exact_key;
    if (request.use_cache) {
      exact_key = exact_request_key(request.seq_rtl, bmc_goal_token(request),
                                    /*value=*/true);
      if (auto hit = exact_cache_.lookup(exact_key); hit.has_value()) {
        const std::uint64_t job_id = next_job_.fetch_add(1);
        Timer service_timer;
        conn->send(
            [&](std::int64_t seq) { return encode_queued(seq, job_id); });
        hit->service_seconds = service_timer.seconds();
        conn->send([&](std::int64_t seq) {
          return encode_result(seq, job_id, *hit);
        });
        jobs_done_.fetch_add(1);
        publish_gauges();
        return;
      }
    }
    // Parse and validate at submit so malformed requests fail before a job
    // id exists, exactly like the combinational path. A warm session makes
    // this parse redundant — but only the session knows that, under its
    // own lock, and submit must not block on a running solve.
    ir::SeqCircuit seq{""};
    try {
      seq = parser::parse_seq_circuit(request.seq_rtl);
    } catch (const std::exception& e) {
      conn->send([&](std::int64_t seq_no) {
        return encode_error(seq_no, std::string("parse error: ") + e.what());
      });
      return;
    }
    if (seq.property(request.property) == ir::kNoNet) {
      conn->send([&](std::int64_t seq_no) {
        return encode_error(seq_no,
                            "unknown property: " + request.property);
      });
      return;
    }
    auto job = std::make_shared<Job>();
    job->id = next_job_.fetch_add(1);
    job->conn = conn;
    job->seq = std::move(seq);
    job->exact_key = std::move(exact_key);
    job->request = std::move(request);
    {
      std::lock_guard<std::mutex> lock(jobs_mu_);
      active_.emplace(job->id, job);
    }
    conn->send(
        [&](std::int64_t seq_no) { return encode_queued(seq_no, job->id); });
    enqueue_job(job);
    return;
  }

  // Exact-text fast path, checked before the request is even parsed: a
  // byte-identical repeat costs one string hash, not a parse plus a
  // canonicalization, which is what keeps warm-cache latency in the
  // microsecond range (docs/serve.md "Two cache tiers").
  std::string exact_key;
  if (request.use_cache) {
    exact_key = exact_request_key(request.rtl, request.goal, request.value);
    if (auto hit = exact_cache_.lookup(exact_key); hit.has_value()) {
      const std::uint64_t job_id = next_job_.fetch_add(1);
      Timer service_timer;
      conn->send(
          [&](std::int64_t seq) { return encode_queued(seq, job_id); });
      hit->service_seconds = service_timer.seconds();
      conn->send([&](std::int64_t seq) {
        return encode_result(seq, job_id, *hit);
      });
      jobs_done_.fetch_add(1);
      publish_gauges();
      return;
    }
  }
  ir::Circuit circuit;
  try {
    circuit = parser::parse_circuit(request.rtl);
  } catch (const std::exception& e) {
    conn->send([&](std::int64_t seq) {
      return encode_error(seq, std::string("parse error: ") + e.what());
    });
    return;
  }
  const NetId goal = circuit.find_net(request.goal);
  if (goal == ir::kNoNet) {
    conn->send([&](std::int64_t seq) {
      return encode_error(seq, "unknown goal net: " + request.goal);
    });
    return;
  }
  if (!circuit.is_bool(goal)) {
    conn->send([&](std::int64_t seq) {
      return encode_error(seq, "goal net is not 1-bit: " + request.goal);
    });
    return;
  }

  auto job = std::make_shared<Job>();
  job->id = next_job_.fetch_add(1);
  job->conn = conn;
  job->circuit = std::move(circuit);
  job->goal = goal;
  job->request = std::move(request);
  if (job->request.use_cache) {
    job->cone = ir::canonical_cone(job->circuit, goal);
    job->exact_key = std::move(exact_key);
  }
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    active_.emplace(job->id, job);
  }
  conn->send(
      [&](std::int64_t seq) { return encode_queued(seq, job->id); });

  // Submit-time fast path: an identical or isomorphic instance answers
  // from the cache without ever touching the queue.
  if (job->request.use_cache && try_cache_hit(job)) return;

  enqueue_job(job);
}

void Server::enqueue_job(const std::shared_ptr<Job>& job) {
  bool rejected = false;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_.size() >= options_.queue_capacity) {
      rejected = true;
    } else {
      queue_.push_back(job);
      queue_depth_.fetch_add(1);
    }
  }
  if (rejected) {
    job->conn->send([&](std::int64_t seq) {
      return encode_job_error(seq, job->id, "queue full");
    });
    std::lock_guard<std::mutex> lock(jobs_mu_);
    active_.erase(job->id);
    return;
  }
  queue_cv_.notify_one();
  publish_gauges();
}

void Server::handle_cancel(const std::shared_ptr<Connection>& conn,
                           std::uint64_t job_id) {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    const auto it = active_.find(job_id);
    if (it != active_.end()) job = it->second;
  }
  if (job == nullptr) {
    // Benign race: the job may have finished a moment ago. The client
    // treats this as advisory.
    conn->send([&](std::int64_t seq) {
      return encode_job_error(seq, job_id, "job not active");
    });
    return;
  }
  // The "cancelled" result frame is the acknowledgement: a queued job
  // emits it when a worker picks it up, a running one when the portfolio's
  // cancellation poll lands.
  job->stop.request_stop();
}

bool Server::try_cache_hit(const std::shared_ptr<Job>& job) {
  auto hit = cache_.lookup(job->cone, job->request.value);
  if (!hit.has_value()) return false;

  ResultMsg msg;
  msg.cache_hit = true;
  msg.solve_seconds = hit->solve_seconds;
  msg.winner = hit->winner;
  msg.presolve = hit->presolve;
  if (hit->status == core::SolveStatus::kSat) {
    msg.verdict = "sat";
    const auto model = rebuild_model(*job, hit->model);
    if (options_.verify_cache_hits) {
      const auto values = job->circuit.evaluate(model);
      if ((values[job->goal] != 0) != job->request.value) {
        // A canonicalization bug would land here; solve fresh instead of
        // serving a wrong witness, and make it loud.
        RTLSAT_WARN("serve: cache-hit model failed replay for job %llu; "
                 "falling back to a fresh solve",
                 static_cast<unsigned long long>(job->id));
        return false;
      }
    }
    fill_model_names(*job, model, &msg);
  } else {
    msg.verdict = "unsat";
  }
  // Promote to the exact-text tier: the model was rebuilt (and optionally
  // replayed) for exactly this circuit, so the next byte-identical query
  // can skip the parse too.
  exact_cache_.insert(job->exact_key, msg);
  msg.service_seconds = job->service_timer.seconds();
  finish_job(job, msg);
  return true;
}

void Server::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !queue_.empty() || draining_.load() || stop_now_.load();
      });
      if (queue_.empty()) return;  // draining and nothing left
      job = queue_.front();
      queue_.pop_front();
      queue_depth_.fetch_sub(1);
    }
    in_flight_.fetch_add(1);
    publish_gauges();
    run_job(job);
    in_flight_.fetch_sub(1);
    publish_gauges();
  }
}

void Server::run_job(const std::shared_ptr<Job>& job) {
  if (job->stop.stop_requested()) {
    ResultMsg msg;
    msg.verdict = "cancelled";
    msg.service_seconds = job->service_timer.seconds();
    finish_job(job, msg);
    return;
  }
  if (job->request.is_bmc()) {
    run_bmc_job(job);
    return;
  }
  // Dequeue-time recheck: an identical job solved while this one queued.
  if (job->request.use_cache && try_cache_hit(job)) return;

  const SolveRequest& request = job->request;
  portfolio::PortfolioOptions popts;
  popts.jobs = request.jobs > 0 ? std::min(request.jobs, 8)
                                : options_.solve_jobs;
  popts.budget_seconds =
      request.budget_seconds > 0
          ? std::min(request.budget_seconds, options_.max_budget_seconds)
          : options_.default_budget_seconds;
  popts.deterministic = request.deterministic;
  popts.presolve = request.presolve;
  popts.stop = job->stop.token();
  popts.metrics = options_.metrics;
  popts.progress_interval_seconds = options_.progress_interval_seconds;
  std::unique_ptr<ProgressForwarder> forwarder;
  if (request.progress) {
    forwarder = std::make_unique<ProgressForwarder>(job->conn, job->id);
    popts.progress_sink = forwarder.get();
  }
  BankCheckout checkout;
  if (request.use_bank) {
    // Exact-instance key (see serve/bank.h): byte-identical rtl+goal+value
    // only, never the canonical cone.
    checkout = bank_.checkout(request.rtl, request.goal, request.value,
                              popts.jobs);
    popts.pool = checkout.pool.get();
    popts.worker_id_base = checkout.worker_id_base;
  }

  Timer solve_timer;
  portfolio::Portfolio portfolio(job->circuit, job->goal, request.value,
                                 popts);
  const portfolio::PortfolioResult solved = portfolio.solve();

  ResultMsg msg;
  msg.solve_seconds = solve_timer.seconds();
  msg.winner = solved.winner_name;
  if (request.presolve) {
    for (const auto& [name, value] : solved.stats.all()) {
      if (name.rfind("presolve.", 0) == 0) msg.presolve.emplace_back(name, value);
    }
  }
  switch (solved.status) {
    case core::SolveStatus::kSat:
      msg.verdict = "sat";
      fill_model_names(*job, solved.input_model, &msg);
      break;
    case core::SolveStatus::kUnsat:
      msg.verdict = "unsat";
      break;
    default:
      msg.verdict = job->stop.stop_requested() ? "cancelled" : "timeout";
      break;
  }
  for (const std::string& violation : solved.crosscheck_violations)
    RTLSAT_WARN("serve: job %llu crosscheck: %s",
             static_cast<unsigned long long>(job->id), violation.c_str());

  if (request.use_cache && solved.crosscheck_violations.empty() &&
      (solved.status == core::SolveStatus::kSat ||
       solved.status == core::SolveStatus::kUnsat)) {
    CachedResult cached;
    cached.status = solved.status;
    cached.solve_seconds = msg.solve_seconds;
    cached.winner = solved.winner_name;
    cached.presolve = msg.presolve;
    if (solved.status == core::SolveStatus::kSat) {
      cached.model.reserve(job->cone.inputs.size());
      for (const NetId input : job->cone.inputs) {
        const auto it = solved.input_model.find(input);
        cached.model.push_back(it != solved.input_model.end() ? it->second
                                                              : 0);
      }
    }
    cache_.insert(job->cone, request.value, std::move(cached));
    ResultMsg exact = msg;
    exact.cache_hit = true;  // how every future serve of this entry reads
    exact_cache_.insert(job->exact_key, std::move(exact));
  }

  msg.service_seconds = job->service_timer.seconds();
  finish_job(job, msg);
}

void Server::run_bmc_job(const std::shared_ptr<Job>& job) {
  const SolveRequest& request = job->request;
  // Dequeue-time recheck: an identical bound solved while this one queued.
  if (request.use_cache) {
    if (auto hit = exact_cache_.lookup(job->exact_key); hit.has_value()) {
      hit->service_seconds = job->service_timer.seconds();
      finish_job(job, *hit);
      return;
    }
  }
  const double budget =
      request.budget_seconds > 0
          ? std::min(request.budget_seconds, options_.max_budget_seconds)
          : options_.default_budget_seconds;
  // use_bank gates session reuse just like it gates clause-pool reuse: off
  // ⟹ a private throwaway session, still the same solve path.
  std::shared_ptr<BmcSession> session =
      request.use_bank
          ? bmc_bank_.checkout(request.seq_rtl, request.property,
                               request.cumulative)
          : std::make_shared<BmcSession>();

  ResultMsg msg;
  bool decisive = false;
  {
    // The session *is* the shared state; solves on it are serialized.
    // Cancellation still lands mid-solve through the job's stop token.
    std::lock_guard<std::mutex> lock(session->mu);
    if (session->bmc == nullptr) {
      session->seq = std::move(job->seq);
      session->bmc = std::make_unique<bmc::IncrementalBmc>(
          session->seq, request.property, options_.bmc_solver,
          request.cumulative);
    }
    session->bmc->solver().set_budget(budget, job->stop.token());
    Timer solve_timer;
    const core::SolveResult solved = session->bmc->solve_bound(request.bound);
    msg.solve_seconds = solve_timer.seconds();
    ++session->bounds_solved;
    switch (solved.status) {
      case core::SolveStatus::kSat: {
        msg.verdict = "sat";
        const ir::Circuit& circuit = session->bmc->circuit();
        // Replay the witness on the growing circuit before trusting it —
        // the session solver carries clauses from every earlier bound, so
        // this is the cheap independent check that none of them leaked
        // into an unsound model.
        const ir::NetId goal = session->bmc->ensure_bound(request.bound);
        const auto values = circuit.evaluate(solved.input_model);
        if (values[goal] != 1) {
          RTLSAT_WARN("serve: bmc witness failed replay for job %llu",
                      static_cast<unsigned long long>(job->id));
          msg.verdict = "timeout";  // do not serve (or cache) a bad witness
          break;
        }
        decisive = true;
        for (const NetId input : circuit.inputs()) {
          const auto it = solved.input_model.find(input);
          msg.model.emplace_back(
              circuit.net_name(input),
              it != solved.input_model.end() ? it->second : 0);
        }
        break;
      }
      case core::SolveStatus::kUnsat:
        msg.verdict = "unsat";
        decisive = true;
        break;
      default:
        msg.verdict = job->stop.stop_requested() ? "cancelled" : "timeout";
        break;
    }
  }
  if (request.use_cache && decisive) {
    ResultMsg exact = msg;
    exact.cache_hit = true;
    exact_cache_.insert(job->exact_key, std::move(exact));
  }
  msg.service_seconds = job->service_timer.seconds();
  finish_job(job, msg);
}

void Server::finish_job(const std::shared_ptr<Job>& job,
                        const ResultMsg& msg) {
  // Bookkeeping before the result frame: a client that reads its verdict
  // and immediately asks for stats must see this job in jobs_done.
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    active_.erase(job->id);
  }
  jobs_done_.fetch_add(1);
  publish_gauges();
  job->conn->send(
      [&](std::int64_t seq) { return encode_result(seq, job->id, msg); });
}

}  // namespace rtlsat::serve
