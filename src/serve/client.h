// Client side of the rtlsat-serve protocol: one blocking connection, one
// request/response conversation at a time.
//
// The transport is deliberately synchronous — submit() then wait() — with
// progress frames surfaced through a callback while wait() blocks. A
// client wanting to cancel a running job does it from a *second*
// connection (job ids are server-global), which is exactly what
// `rtlsat_client cancel` does; the blocked wait() then returns the
// "cancelled" result frame.
//
// Every received frame's "seq" is checked against the connection's
// expected counter, so a dropped or duplicated frame surfaces as a
// protocol error instead of a silent desync (satellite of the v/seq
// heartbeat-schema change, see trace/progress.h).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "serve/protocol.h"

namespace rtlsat::serve {

class Client {
 public:
  Client() = default;
  ~Client() { disconnect(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connect(const std::string& host, int port, std::string* error);
  void disconnect();
  bool connected() const { return fd_ >= 0; }

  // Called for each progress frame while wait() blocks, with the embedded
  // heartbeat JSON (one JSONL line, no trailing newline).
  using ProgressFn = std::function<void(const std::string& heartbeat)>;

  // Sends a solve request and returns the assigned job id. On a
  // submit-time cache hit the result frame is already in flight; wait()
  // picks it up.
  bool submit(const SolveRequest& request, std::uint64_t* job,
              std::string* error);

  // Blocks until `job`'s result frame arrives. Progress frames for the job
  // are forwarded to `on_progress` when set, dropped otherwise.
  bool wait(std::uint64_t job, ResultMsg* out, std::string* error,
            const ProgressFn& on_progress = nullptr);

  // submit() + wait().
  bool solve(const SolveRequest& request, ResultMsg* out, std::string* error,
             const ProgressFn& on_progress = nullptr);

  // Requests cancellation of a (possibly other connection's) job. The
  // owning connection receives the "cancelled" result; this call only
  // delivers the request.
  bool cancel(std::uint64_t job, std::string* error);

  bool stats(ServerStats* out, std::string* error);
  bool ping(std::string* error);
  // Asks the server to drain (finish queued jobs, then exit); returns once
  // the server acknowledged with "bye".
  bool shutdown_server(std::string* error);

 private:
  bool send(const Request& request, std::string* error);
  // Reads and validates one server frame (version + seq continuity).
  bool read_msg(ServerMsg* out, std::string* error);

  int fd_ = -1;
  std::int64_t expect_seq_ = 0;
};

}  // namespace rtlsat::serve
