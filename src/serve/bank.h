// Cross-job clause bank: keeps a portfolio::ClausePool alive per *exact*
// solve instance so a later job on the same instance starts with the
// earlier jobs' learned clauses (and concurrent jobs on the same instance
// share as they go).
//
// Keying is deliberately stricter than the result cache's: learned clauses
// reference concrete NetIds and HDPLL applies the goal as a level-0
// assumption, so a clause bank entry is only sound for a byte-identical
// (rtl text, goal name, goal value) triple — the parse then assigns the
// same NetIds and the clauses are consequences of the same assumed
// formula. Isomorphic-but-renumbered circuits must NOT share a pool;
// translating clauses through the canonical form is future work tracked
// in ROADMAP item 1 (incremental solving).
//
// Each checkout also reserves a disjoint worker-id range in the pool's
// namespace (PortfolioOptions::worker_id_base): ClausePool::fetch skips a
// worker's own ids, so two concurrent jobs reusing ids 0..N-1 would
// silently refuse each other's clauses.
//
// Capacity is a bounded LRU over *idle* pools; an entry checked out by a
// running job is pinned by shared ownership and simply drops out of the
// bank's index when evicted, the checkout keeps working, and later jobs on
// that key start a fresh pool.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "portfolio/clause_pool.h"

namespace rtlsat::serve {

struct BankCheckout {
  std::shared_ptr<portfolio::ClausePool> pool;
  int worker_id_base = 0;
};

class ClauseBank {
 public:
  explicit ClauseBank(std::size_t capacity) : capacity_(capacity) {}

  // Returns the pool for this exact instance (creating it on first use)
  // plus a worker-id base no other checkout of the same pool received.
  // `workers` is how many ids the caller's portfolio will occupy.
  BankCheckout checkout(const std::string& rtl, const std::string& goal,
                        bool value, int workers);

  std::size_t size() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<portfolio::ClausePool> pool;
    int next_worker_id = 0;
  };

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

}  // namespace rtlsat::serve
