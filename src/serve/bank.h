// Cross-job clause bank: keeps a portfolio::ClausePool alive per *exact*
// solve instance so a later job on the same instance starts with the
// earlier jobs' learned clauses (and concurrent jobs on the same instance
// share as they go).
//
// Keying is deliberately stricter than the result cache's: learned clauses
// reference concrete NetIds and HDPLL applies the goal as a level-0
// assumption, so a clause bank entry is only sound for a byte-identical
// (rtl text, goal name, goal value) triple — the parse then assigns the
// same NetIds and the clauses are consequences of the same assumed
// formula. Isomorphic-but-renumbered circuits must NOT share a pool;
// translating clauses through the canonical form is future work tracked
// in ROADMAP item 1 (incremental solving).
//
// Each checkout also reserves a disjoint worker-id range in the pool's
// namespace (PortfolioOptions::worker_id_base): ClausePool::fetch skips a
// worker's own ids, so two concurrent jobs reusing ids 0..N-1 would
// silently refuse each other's clauses.
//
// Capacity is a bounded LRU over *idle* pools; an entry checked out by a
// running job is pinned by shared ownership and simply drops out of the
// bank's index when evicted, the checkout keeps working, and later jobs on
// that key start a fresh pool.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "bmc/incremental.h"
#include "ir/seq.h"
#include "portfolio/clause_pool.h"

namespace rtlsat::serve {

struct BankCheckout {
  std::shared_ptr<portfolio::ClausePool> pool;
  int worker_id_base = 0;
};

class ClauseBank {
 public:
  explicit ClauseBank(std::size_t capacity) : capacity_(capacity) {}

  // Returns the pool for this exact instance (creating it on first use)
  // plus a worker-id base no other checkout of the same pool received.
  // `workers` is how many ids the caller's portfolio will occupy.
  BankCheckout checkout(const std::string& rtl, const std::string& goal,
                        bool value, int workers);

  std::size_t size() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<portfolio::ClausePool> pool;
    int next_worker_id = 0;
  };

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

// One warm incremental-BMC solver, shared across jobs. The clause bank
// above shares learned *clauses* between fresh solvers; a BMC session goes
// further and shares the whole solver — the growing unrolling, the learned
// hybrid clauses, predicate relations, activities, and phases all persist,
// so a client sweeping bounds k = 1, 2, 3… pays unrolling and clause
// discovery once (bmc/incremental.h).
//
// The session mutex serializes solves: HdpllSolver is single-threaded and
// its state *is* the asset being shared, so concurrent jobs on one session
// queue up rather than fork. `bmc` is constructed lazily by the first job,
// under `mu`, from that job's parsed circuit (`seq` lives here because
// IncrementalBmc borrows its SeqCircuit).
struct BmcSession {
  std::mutex mu;
  ir::SeqCircuit seq{""};                    // guarded by mu until bmc is set
  std::unique_ptr<bmc::IncrementalBmc> bmc;  // guarded by mu
  std::int64_t bounds_solved = 0;            // guarded by mu
};

// Bounded LRU of BmcSessions, keyed — like ClauseBank, and for the same
// NetId-identity reason — by the byte-identical (seq_rtl, property,
// cumulative) triple. Eviction drops the index entry; running jobs keep
// their session alive through shared ownership.
class BmcSessionBank {
 public:
  explicit BmcSessionBank(std::size_t capacity) : capacity_(capacity) {}

  // Returns the session for this exact instance, creating it (empty — the
  // caller constructs the IncrementalBmc under the session mutex) on first
  // use. capacity 0 ⟹ a fresh unshared session per call.
  std::shared_ptr<BmcSession> checkout(const std::string& seq_rtl,
                                       const std::string& property,
                                       bool cumulative);

  std::size_t size() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<BmcSession> session;
  };

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

}  // namespace rtlsat::serve
