#include "serve/cache.h"

namespace rtlsat::serve {

std::optional<ResultMsg> ExactCache::lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->result;
}

void ExactCache::insert(const std::string& key, ResultMsg result) {
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = index_.find(key); it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (capacity_ == 0) return;
  lru_.push_front(Entry{key, std::move(result)});
  index_.emplace(lru_.front().key, lru_.begin());
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

std::size_t ExactCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::int64_t ExactCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::optional<CachedResult> ResultCache::lookup(const ir::CanonicalCone& cone,
                                                bool value) {
  const std::string key = make_key(cone, value);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->result;
}

void ResultCache::insert(const ir::CanonicalCone& cone, bool value,
                         CachedResult result) {
  if (result.status != core::SolveStatus::kSat &&
      result.status != core::SolveStatus::kUnsat) {
    return;
  }
  std::string key = make_key(cone, value);
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = index_.find(key); it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (capacity_ == 0) return;
  lru_.push_front(Entry{std::move(key), std::move(result)});
  index_.emplace(lru_.front().key, lru_.begin());
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::int64_t ResultCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::int64_t ResultCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::int64_t ResultCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

}  // namespace rtlsat::serve
