#include "serve/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace rtlsat::serve {

namespace {

std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

bool resolve(const std::string& host, int port, sockaddr_in* addr,
             std::string* error) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<std::uint16_t>(port));
  // Numeric IPv4 only — the service binds loopback in every deployment the
  // docs describe; name resolution would drag in getaddrinfo's thread and
  // signal caveats for no benefit.
  if (inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    if (error != nullptr) *error = "not a numeric IPv4 address: " + host;
    return false;
  }
  return true;
}

// write(2) with EINTR retry and SIGPIPE suppressed.
bool write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

// Reads exactly `len` bytes; false on EOF or error. *eof distinguishes a
// clean close before the first byte.
bool read_exact(int fd, char* data, std::size_t len, bool* eof) {
  *eof = false;
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) {
      *eof = got == 0;
      return false;
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

int listen_tcp(const std::string& host, int port, int* port_out,
               std::string* error) {
  sockaddr_in addr;
  if (!resolve(host, port, &addr, error)) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = errno_string("socket");
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    if (error != nullptr) *error = errno_string("bind/listen");
    ::close(fd);
    return -1;
  }
  if (port_out != nullptr) {
    sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
      *port_out = ntohs(bound.sin_port);
  }
  return fd;
}

int connect_tcp(const std::string& host, int port, std::string* error) {
  sockaddr_in addr;
  if (!resolve(host, port, &addr, error)) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = errno_string("socket");
    return -1;
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    if (error != nullptr) *error = errno_string("connect");
    ::close(fd);
    return -1;
  }
  // Frames are small and latency-sensitive (progress heartbeats, verdicts);
  // Nagle would batch them behind ACKs.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

int accept_one(int listen_fd) {
  int fd;
  do {
    fd = ::accept(listen_fd, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd >= 0) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

bool write_frame(int fd, const std::string& json) {
  std::string frame = std::to_string(json.size());
  frame += '\n';
  frame += json;
  frame += '\n';
  return write_all(fd, frame.data(), frame.size());
}

bool read_frame(int fd, std::string* json, std::string* error) {
  if (error != nullptr) error->clear();
  // Length line: ASCII digits then '\n', read byte-by-byte — the line is
  // tiny and the payload read below is the bulk transfer.
  std::size_t len = 0;
  std::size_t digits = 0;
  for (;;) {
    char c;
    bool eof;
    if (!read_exact(fd, &c, 1, &eof)) {
      if (!eof && error != nullptr) *error = "read error in frame header";
      return false;
    }
    if (c == '\n') break;
    if (c < '0' || c > '9' || ++digits > 9) {
      if (error != nullptr) *error = "malformed frame length";
      return false;
    }
    len = len * 10 + static_cast<std::size_t>(c - '0');
  }
  if (digits == 0 || len > kMaxFrameBytes) {
    if (error != nullptr) *error = "frame length out of range";
    return false;
  }
  json->resize(len + 1);
  bool eof;
  if (!read_exact(fd, json->data(), len + 1, &eof)) {
    if (error != nullptr) *error = "truncated frame body";
    return false;
  }
  if (json->back() != '\n') {
    if (error != nullptr) *error = "missing frame terminator";
    return false;
  }
  json->pop_back();
  return true;
}

}  // namespace rtlsat::serve
