#include "bmc/sweep.h"

#include <cctype>
#include <utility>

#include "bmc/unroll.h"
#include "proof/word_check.h"
#include "proof/word_writer.h"

namespace rtlsat::bmc {

namespace {

// "<dir>/<name>.cert.jsonl" with the instance name made filesystem-safe
// ("b13_2(4)" → "b13_2_4_").
std::string cert_path(const std::string& dir, const std::string& name) {
  std::string file = name;
  for (char& ch : file) {
    if (!std::isalnum(static_cast<unsigned char>(ch)) && ch != '_' &&
        ch != '-')
      ch = '_';
  }
  return dir + "/" + file + ".cert.jsonl";
}

}  // namespace

SweepResult sweep(const ir::SeqCircuit& seq, const std::string& property,
                  int max_bound, const SweepOptions& options) {
  SweepResult result;
  for (int bound = 1; bound <= max_bound; ++bound) {
    const BmcInstance instance = options.cumulative
                                     ? unroll_any(seq, property, bound)
                                     : unroll(seq, property, bound);
    FrameResult frame;
    frame.bound = bound;
    frame.name = instance.name;

    proof::WordCertWriter cert;
    core::HdpllOptions solver_options = options.solver;
    if (options.certify) solver_options.proof = &cert;
    core::HdpllSolver solver(instance.circuit, solver_options);
    solver.assume_bool(instance.goal, true);
    const core::SolveResult solve = solver.solve();
    frame.status = solve.status;
    frame.seconds = solve.seconds;

    if (options.certify) {
      frame.cert_records = cert.records();
      frame.cert_bytes = cert.bytes();
      const proof::WordCheckResult check = proof::word_check(cert.str());
      if (!check.ok) {
        frame.cert_error = check.error;
      } else if (solve.status == core::SolveStatus::kUnsat &&
                 !check.refuted) {
        frame.cert_error = "UNSAT frame without an established refutation";
      } else {
        frame.certified = true;
      }
      if (!options.cert_dir.empty()) {
        std::string io_error;
        if (!cert.save(cert_path(options.cert_dir, instance.name),
                       &io_error) &&
            frame.cert_error.empty()) {
          frame.cert_error = "certificate not saved: " + io_error;
          frame.certified = false;
        }
      }
    }

    const bool sat = frame.status == core::SolveStatus::kSat;
    result.frames.push_back(std::move(frame));
    if (sat) {
      result.first_sat_bound = bound;
      if (options.stop_at_sat) break;
    }
  }
  return result;
}

}  // namespace rtlsat::bmc
