#include "bmc/sweep.h"

#include <cctype>
#include <memory>
#include <utility>

#include "bmc/incremental.h"
#include "bmc/unroll.h"
#include "presolve/simplify.h"
#include "proof/word_check.h"
#include "proof/word_writer.h"
#include "util/strings.h"
#include "util/timer.h"

namespace rtlsat::bmc {

namespace {

// "<dir>/<name>.cert.jsonl" with the instance name made filesystem-safe.
// Sanitizing alone is lossy — "b13_2(4)" and "b13_2[4]" both collapse to
// "b13_2_4_" and would silently overwrite each other's certificate — so a
// name that needed any replacement gets a hash of the original appended.
std::string cert_path(const std::string& dir, const std::string& name) {
  std::string file = name;
  bool lossy = false;
  for (char& ch : file) {
    if (!std::isalnum(static_cast<unsigned char>(ch)) && ch != '_' &&
        ch != '-') {
      ch = '_';
      lossy = true;
    }
  }
  if (lossy) {
    // FNV-1a over the original name: deterministic, filename-safe.
    std::uint64_t h = 1469598103934665603ull;
    for (const char ch : name) {
      h ^= static_cast<unsigned char>(ch);
      h *= 1099511628211ull;
    }
    file += str_format("-%08x", static_cast<std::uint32_t>(h ^ (h >> 32)));
  }
  return dir + "/" + file + ".cert.jsonl";
}

}  // namespace

std::string cert_path_for_testing(const std::string& dir,
                                  const std::string& name) {
  return cert_path(dir, name);
}

SweepResult sweep(const ir::SeqCircuit& seq, const std::string& property,
                  int max_bound, const SweepOptions& options) {
  SweepResult result;
  // Certification forces fresh-per-frame solving: a certificate must be
  // self-contained, while the incremental solver's later frames derive
  // from clauses learned in earlier ones.
  const bool incremental = options.incremental && !options.certify;
  // Certificates must reference the original frame instance, so presolve
  // is dropped alongside incrementality when certification is on.
  const bool presolve = options.presolve && !options.certify;
  std::unique_ptr<IncrementalBmc> inc;
  if (incremental) {
    inc = std::make_unique<IncrementalBmc>(seq, property, options.solver,
                                           options.cumulative, presolve);
  }
  for (int bound = 1; bound <= max_bound; ++bound) {
    if (incremental) {
      FrameResult frame;
      frame.bound = bound;
      frame.name = inc->name(bound);
      const core::SolveResult solve = inc->solve_bound(bound);
      frame.status = solve.status;
      frame.seconds = solve.seconds;
      const bool sat = frame.status == core::SolveStatus::kSat;
      result.frames.push_back(std::move(frame));
      if (sat) {
        result.first_sat_bound = bound;
        if (options.stop_at_sat) break;
      }
      continue;
    }

    const BmcInstance instance = options.cumulative
                                     ? unroll_any(seq, property, bound)
                                     : unroll(seq, property, bound);
    FrameResult frame;
    frame.bound = bound;
    frame.name = instance.name;

    // Presolve the frame instance; a decided frame skips the solver, an
    // undecided one hands the simplified circuit to it. `pre` must outlive
    // the solver below — it owns the circuit the solver borrows.
    presolve::GoalPresolve pre;
    if (presolve) {
      Timer presolve_timer;
      pre = presolve::presolve_goal(instance.circuit, instance.goal, true);
      pre.stats.add_to(result.stats);
      if (pre.decided) {
        frame.status = pre.sat ? core::SolveStatus::kSat
                               : core::SolveStatus::kUnsat;
        frame.seconds = presolve_timer.seconds();
        result.stats.add("presolve.decided_frames", 1);
        const bool sat = frame.status == core::SolveStatus::kSat;
        result.frames.push_back(std::move(frame));
        if (sat) {
          result.first_sat_bound = bound;
          if (options.stop_at_sat) break;
        }
        continue;
      }
    }
    const bool simplified = presolve && !pre.decided;
    const ir::Circuit& frame_circuit =
        simplified ? pre.circuit : instance.circuit;
    const ir::NetId frame_goal = simplified ? pre.goal : instance.goal;

    proof::WordCertWriter cert;
    core::HdpllOptions solver_options = options.solver;
    if (options.certify) solver_options.proof = &cert;
    core::HdpllSolver solver(frame_circuit, solver_options);
    solver.assume_bool(frame_goal, true);
    const core::SolveResult solve = solver.solve();
    frame.status = solve.status;
    frame.seconds = solve.seconds;

    if (options.certify) {
      frame.cert_records = cert.records();
      frame.cert_bytes = cert.bytes();
      const proof::WordCheckResult check = proof::word_check(cert.str());
      if (!check.ok) {
        frame.cert_error = check.error;
      } else if (solve.status == core::SolveStatus::kUnsat &&
                 !check.refuted) {
        frame.cert_error = "UNSAT frame without an established refutation";
      } else {
        frame.certified = true;
      }
      if (!options.cert_dir.empty()) {
        std::string io_error;
        if (!cert.save(cert_path(options.cert_dir, instance.name),
                       &io_error) &&
            frame.cert_error.empty()) {
          frame.cert_error = "certificate not saved: " + io_error;
          frame.certified = false;
        }
      }
    }

    const bool sat = frame.status == core::SolveStatus::kSat;
    result.frames.push_back(std::move(frame));
    if (sat) {
      result.first_sat_bound = bound;
      if (options.stop_at_sat) break;
    }
  }
  if (inc != nullptr && presolve) {
    result.stats.add("presolve.invariants_assumed", inc->invariants_assumed());
  }
  return result;
}

}  // namespace rtlsat::bmc
