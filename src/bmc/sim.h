// Cycle-accurate simulator for sequential circuits.
//
// Drives a SeqCircuit frame by frame: each step() evaluates the
// combinational core on the current register state plus the given free
// inputs, then latches the next-state nets. Frame numbering matches
// bmc::unroll: the values returned by the t-th step() equal the unrolled
// instance's frame t (state after t transitions).
//
// Used by the examples to replay counterexamples through the sequential
// model and by the tests to cross-validate the unroller.
#pragma once

#include <unordered_map>
#include <vector>

#include "ir/seq.h"

namespace rtlsat::bmc {

class Simulator {
 public:
  explicit Simulator(const ir::SeqCircuit& seq) : seq_(seq) { reset(); }

  void reset() {
    state_.clear();
    for (const ir::Register& r : seq_.registers()) state_[r.q] = r.init;
    time_ = 0;
    values_.clear();
  }

  // Evaluates the current frame with `inputs` (keyed by free-input net id;
  // every free input must be present) and advances the state. Returns the
  // frame's combinational values, indexed by net id.
  const std::vector<std::int64_t>& step(
      const std::unordered_map<ir::NetId, std::int64_t>& inputs) {
    std::unordered_map<ir::NetId, std::int64_t> full = inputs;
    for (const auto& [q, v] : state_) full[q] = v;
    values_ = seq_.comb().evaluate(full);
    for (const ir::Register& r : seq_.registers()) state_[r.q] = values_[r.d];
    ++time_;
    return values_;
  }

  // Value of a combinational net in the most recent frame.
  std::int64_t value(ir::NetId net) const {
    RTLSAT_ASSERT_MSG(!values_.empty(), "step() before value()");
    return values_[net];
  }

  // Current (post-step) register state.
  std::int64_t register_value(ir::NetId q) const { return state_.at(q); }

  // Did the named safety property hold in the most recent frame?
  bool property_holds(std::string_view name) const {
    const ir::NetId net = seq_.property(name);
    RTLSAT_ASSERT(net != ir::kNoNet);
    return value(net) == 1;
  }

  int time() const { return time_; }

 private:
  const ir::SeqCircuit& seq_;
  std::unordered_map<ir::NetId, std::int64_t> state_;
  std::vector<std::int64_t> values_;
  int time_ = 0;
};

}  // namespace rtlsat::bmc
