#include "bmc/incremental.h"

#include "bmc/unroll.h"
#include "presolve/analyze.h"
#include "trace/trace.h"
#include "util/assert.h"
#include "util/strings.h"

namespace rtlsat::bmc {

using ir::NetId;

IncrementalBmc::IncrementalBmc(const ir::SeqCircuit& seq, std::string property,
                               core::HdpllOptions solver_options,
                               bool cumulative, bool presolve)
    : seq_(seq), property_(std::move(property)), cumulative_(cumulative) {
  seq_.validate();
  if (presolve) invariants_ = presolve::reach_invariants(seq_);
  prop_net_ = seq_.property(property_);
  RTLSAT_ASSERT_MSG(prop_net_ != ir::kNoNet, "unknown property");
  circuit_.set_name(
      str_format("%s_%s(inc)", seq_.comb().name().c_str(), property_.c_str()));
  // Frame 0 state: reset values, exactly as unroll_impl seeds them.
  for (const ir::Register& r : seq_.registers())
    state_.push_back({r.q, circuit_.add_const(r.init, seq_.comb().width(r.q))});
  // The solver adopts each later growth step through sync_circuit().
  solver_ = std::make_unique<core::HdpllSolver>(circuit_, solver_options);
}

void IncrementalBmc::build_frame() {
  const int frame = static_cast<int>(frame_map_.size());
  frame_map_.push_back(detail::copy_frame(seq_, circuit_, frame, state_));
  const std::vector<NetId>& map = frame_map_.back();
  state_.clear();
  for (const ir::Register& r : seq_.registers())
    state_.push_back({r.q, map[r.d]});
  violation_.push_back(circuit_.add_not(map[prop_net_]));
}

ir::NetId IncrementalBmc::ensure_bound(int bound) {
  RTLSAT_ASSERT(bound >= 1);
  if (const auto it = goal_.find(bound); it != goal_.end()) return it->second;
  const auto before = circuit_.num_nets();
  // unroll(k) builds frames 0..k−1 plus the final frame k; frame f here is
  // node-for-node that expansion's frame f, so extending to `bound` means
  // having frames 0..bound.
  while (frames_built() < bound) build_frame();
  NetId goal = ir::kNoNet;
  if (!cumulative_) {
    goal = violation_[static_cast<std::size_t>(bound)];
  } else {
    // Replicates unroll_any's goal: intermediate violations are collected
    // pre-transition for frames 1..bound−2, plus the final frame — NOT
    // frame bound−1 (its post-transition property value is the final
    // frame's). The fuzz oracle depends on this exact shape.
    std::vector<NetId> violations;
    for (int f = 1; f + 2 <= bound; ++f)
      violations.push_back(violation_[static_cast<std::size_t>(f)]);
    violations.push_back(violation_[static_cast<std::size_t>(bound)]);
    goal = violations.size() == 1 ? violations[0]
                                  : circuit_.add_or(std::move(violations));
  }
  if (circuit_.num_nets() != before) {
    circuit_.validate();
    trace::global().record(trace::EventKind::kUnroll, 0,
                           static_cast<std::int64_t>(circuit_.num_nets()),
                           bound);
  }
  goal_.emplace(bound, goal);
  return goal;
}

core::SolveResult IncrementalBmc::solve_bound(int bound) {
  const NetId goal = ensure_bound(bound);
  solver_->sync_circuit();
  // Install the reach invariants on any frames built since the last call.
  // A frame-f state net computes the register's value after f transitions
  // from reset, so every assignment yields a reachable state and the
  // invariant bound is a sound persistent assumption. Frame 0 nets are the
  // reset constants and full-domain invariants say nothing — skip both.
  if (!invariants_.empty()) {
    const std::vector<ir::Register>& regs = seq_.registers();
    for (; invariant_frames_done_ < frame_map_.size();
         ++invariant_frames_done_) {
      for (std::size_t i = 0; i < regs.size(); ++i) {
        const NetId q = frame_map_[invariant_frames_done_][regs[i].q];
        if (circuit_.node(q).op == ir::Op::kConst) continue;
        if (invariants_[i].contains(circuit_.domain(q))) continue;
        solver_->assume(q, invariants_[i]);
        ++invariants_assumed_;
      }
    }
  }
  return solver_->solve({{goal, Interval::point(1)}});
}

std::string IncrementalBmc::name(int bound) const {
  return str_format("%s_%s(%d)", seq_.comb().name().c_str(), property_.c_str(),
                    bound);
}

}  // namespace rtlsat::bmc
