// Incremental bounded model checking: one growing unrolling, one
// persistent solver, cross-frame clause reuse.
//
// The one-shot unroller (bmc/unroll.h) rebuilds the whole combinational
// expansion and a fresh solver for every bound, throwing away everything
// the previous bound learned. IncrementalBmc instead keeps a single
// circuit that grows frame-by-frame (the circuit is append-only, so every
// net of the bound-k expansion keeps its identity inside the bound-k+1
// expansion) and a single HdpllSolver layered over it. Each bound is asked
// as a per-call assumption "goal(k) = 1" (core/hdpll.h's retractable
// solve(assumptions) interface), so:
//
//   - learned hybrid clauses, predicate relations, decision activities,
//     saved phases, and level-0 interval facts all carry from bound k to
//     bound k+1 — the deep-frame queries start where the shallow ones
//     left off;
//   - nothing ties the solver to one bound: an UNSAT answer condemns only
//     that bound's goal assumption, and the next frame extends the same
//     search.
//
// Frame f of this growing circuit is node-for-node the frame f that
// unroll(seq, property, k) would emit for any k ≥ f (both call the shared
// detail::copy_frame with identical state chaining), so verdicts are
// interchangeable with the one-shot path — the fuzz oracle
// (tests/fuzz/fuzz_test.cpp) holds the two paths against each other.
//
// Word-certificate logging is the one feature that does not carry over:
// a certificate must be self-contained per frame, while this solver's
// later frames derive from clauses learned in earlier ones. The sweep
// driver therefore falls back to fresh-per-frame solving when
// certification is requested (bmc/sweep.h).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/hdpll.h"
#include "ir/circuit.h"
#include "ir/seq.h"

namespace rtlsat::bmc {

class IncrementalBmc {
 public:
  // `seq` is borrowed and must outlive the unroller. `cumulative` asks
  // each bound as "violation in ANY frame ≤ k" (unroll_any's goal shape)
  // instead of "violation at exactly k". `presolve` computes the
  // sequential reach invariants (presolve/analyze.h) once up front and
  // installs each non-trivial register invariant as a persistent solver
  // assumption on every frame's state net — sound because a frame-f state
  // net evaluates to a reachable state under every input assignment.
  IncrementalBmc(const ir::SeqCircuit& seq, std::string property,
                 core::HdpllOptions solver_options = {},
                 bool cumulative = false, bool presolve = false);

  // Extends the unrolling to `bound` time-frames (no-op when already
  // there) and returns the goal net whose assertion asks "property
  // violated at (exactly | within) bound". Does not touch the solver.
  ir::NetId ensure_bound(int bound);

  // ensure_bound + adopt the growth into the solver + solve under the
  // activation assumption {goal(bound) = 1}. Bounds may be queried in any
  // order and re-queried; learned state persists across calls.
  core::SolveResult solve_bound(int bound);

  // Canonical instance name for one bound, identical to the one-shot
  // unroller's ("<comb>_<property>(<bound>)").
  std::string name(int bound) const;

  // Deepest frame built so far (0 = reset state only).
  int frames_built() const {
    return static_cast<int>(frame_map_.size()) - 1;
  }

  // Frame-f image of a sequential net: frame_map()[f][seq_net], as in
  // BmcInstance::frame_map. The underlying growing circuit — needed to
  // replay a SAT witness independently of the solver.
  const std::vector<std::vector<ir::NetId>>& frame_map() const {
    return frame_map_;
  }
  const ir::Circuit& circuit() const { return circuit_; }

  // The persistent solver, exposed for budgets (set_budget between
  // bounds) and statistics.
  core::HdpllSolver& solver() { return *solver_; }
  const core::HdpllSolver& solver() const { return *solver_; }

  // Reach-invariant assumptions installed so far (presolve mode only).
  std::int64_t invariants_assumed() const { return invariants_assumed_; }

 private:
  void build_frame();  // appends one time-frame to the circuit

  const ir::SeqCircuit& seq_;
  const std::string property_;
  const bool cumulative_;
  ir::NetId prop_net_ = ir::kNoNet;
  ir::Circuit circuit_;
  // (q net → value net) feeding the next frame to be built.
  std::vector<std::pair<ir::NetId, ir::NetId>> state_;
  std::vector<std::vector<ir::NetId>> frame_map_;
  // violation_[f] = ¬P evaluated in frame f.
  std::vector<ir::NetId> violation_;
  // Per-bound goal nets, built once (a cumulative goal is an OR node).
  std::map<int, ir::NetId> goal_;
  std::unique_ptr<core::HdpllSolver> solver_;
  // Presolve mode: per-register reach invariants (empty = off), the next
  // frame whose state nets still need their invariant assumptions, and how
  // many assume() calls were installed.
  std::vector<Interval> invariants_;
  std::size_t invariant_frames_done_ = 0;
  std::int64_t invariants_assumed_ = 0;
};

}  // namespace rtlsat::bmc
