// Certifying bounded-model-checking sweep.
//
// Classic BMC practice sweeps the bound upward until a counterexample
// appears or the budget runs out; every bound that comes back UNSAT is a
// safety claim ("no violation within k steps") that this repo backs with
// a word-level certificate (docs/proofs.md). sweep() runs the bounds in
// order, solves each frame with the configured HDPLL options, and — when
// certification is on — logs each frame's derivation and pipes it through
// the independent checker before reporting the verdict, so an unsound
// UNSAT frame is caught at the frame that produced it.
#pragma once

#include <string>
#include <vector>

#include "core/hdpll.h"
#include "ir/seq.h"
#include "util/stats.h"

namespace rtlsat::bmc {

struct SweepOptions {
  // Per-frame solver configuration (timeout, +S/+P, tracing, ...). The
  // `proof` member is managed by the sweep itself; leave it null.
  core::HdpllOptions solver;
  // Violation in ANY frame ≤ k (unroll_any) instead of exactly at k.
  bool cumulative = false;
  // Log a word certificate per frame and verify it in-process.
  bool certify = false;
  // When non-empty (and certify is set), each frame's certificate is also
  // written to "<dir>/<instance>.cert.jsonl" for offline rtlsat_check runs.
  std::string cert_dir;
  // Stop at the first SAT frame (the counterexample bound) instead of
  // solving every bound up to max_bound.
  bool stop_at_sat = true;
  // Reuse one growing unrolling and one persistent solver across bounds
  // (bmc/incremental.h) so each frame starts from everything the previous
  // frames learned. Verdicts are interchangeable with fresh-per-frame
  // solving (the fuzz oracle enforces this). Ignored — the sweep falls
  // back to fresh-per-frame — when `certify` is set, because certificates
  // must be self-contained per frame.
  bool incremental = true;
  // Run the interval presolver (src/presolve) ahead of the solver. On the
  // fresh-per-frame path each frame's instance goes through
  // presolve::presolve_goal first: a presolve-decided frame skips the
  // solver entirely, an undecided one solves the simplified instance
  // (verdict-equivalent by construction; the presolve fuzz mode enforces
  // it). On the incremental path the sequential reach invariants become
  // persistent solver assumptions on every frame's state nets. Ignored
  // when `certify` is set — certificates must speak about the original
  // frame instance, not a rewrite of it.
  bool presolve = false;
};

struct FrameResult {
  int bound = 0;
  std::string name;  // unrolled instance name, e.g. "b13_2(4)"
  core::SolveStatus status = core::SolveStatus::kTimeout;
  double seconds = 0;
  // Certification outcome (certify runs only): a produced certificate was
  // verified by proof::word_check. `cert_error` non-empty ⟹ rejected,
  // with the checker's step-indexed diagnostic.
  bool certified = false;
  std::string cert_error;
  std::int64_t cert_records = 0;
  std::int64_t cert_bytes = 0;
};

struct SweepResult {
  std::vector<FrameResult> frames;
  // Smallest bound with a counterexample; -1 if none was found.
  int first_sat_bound = -1;
  // presolve.* counters (frames decided without a solver call, rewrite
  // effect sizes, invariant assumptions applied). Empty when the presolve
  // option was off.
  Stats stats;

  // Every decisive frame carries a verified certificate (vacuously true
  // when certification was off and no frame was rejected).
  bool all_certified() const {
    for (const FrameResult& f : frames)
      if (!f.cert_error.empty()) return false;
    return true;
  }
};

// Sweeps bounds 1..max_bound over "property = violated" instances built by
// bmc::unroll / bmc::unroll_any. Deterministic given (seq, options).
SweepResult sweep(const ir::SeqCircuit& seq, const std::string& property,
                  int max_bound, const SweepOptions& options = {});

// Exposes the certificate-file naming for tests ("<dir>/<sanitized>.cert
// .jsonl", hash-suffixed when sanitization was lossy so distinct instance
// names can never share a file).
std::string cert_path_for_testing(const std::string& dir,
                                  const std::string& name);

}  // namespace rtlsat::bmc
