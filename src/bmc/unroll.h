// Bounded model checking unroller.
//
// Expands a sequential circuit for k time-frames into a combinational
// satisfiability instance. Following the shape of the paper's test-cases
// (e.g. b01_1(10) is "property 1 on b01 expanded for 10 time-frames", and
// the same family is reported S at one bound and U at a larger one), the
// goal asserts a violation of the property *in the final frame*: the
// instance is satisfiable iff some input sequence drives the design from
// reset to a state violating P after exactly k steps.
//
// unroll_any() is the cumulative variant (violation in ANY frame ≤ k),
// provided for users who want classic monotone BMC.
#pragma once

#include <string>

#include "ir/circuit.h"
#include "ir/seq.h"

namespace rtlsat::bmc {

struct BmcInstance {
  ir::Circuit circuit;
  ir::NetId goal = ir::kNoNet;  // assert goal = 1 to search for a violation
  int bound = 0;
  std::string name;
  // Frame-f image of a sequential net: frame_map[f][seq_net] (f in [0,k]
  // for register outputs; inputs exist for f in [0,k−1]).
  std::vector<std::vector<ir::NetId>> frame_map;
};

BmcInstance unroll(const ir::SeqCircuit& seq, std::string_view property,
                   int bound);
BmcInstance unroll_any(const ir::SeqCircuit& seq, std::string_view property,
                       int bound);

namespace detail {
// Copies the comb core into `out` for one time-frame. `state` maps each
// register's q net to its value net for this frame; free inputs get fresh
// per-frame inputs named "<name>@<frame>". Returns the map from seq nets
// to unrolled nets. Shared between the one-shot unroller above and the
// frame-by-frame incremental unroller (bmc/incremental.h), which must
// produce identical per-frame logic.
std::vector<ir::NetId> copy_frame(
    const ir::SeqCircuit& seq, ir::Circuit& out, int frame,
    const std::vector<std::pair<ir::NetId, ir::NetId>>& state);
}  // namespace detail

}  // namespace rtlsat::bmc
