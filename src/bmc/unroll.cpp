#include "bmc/unroll.h"

#include "trace/trace.h"
#include "util/assert.h"
#include "util/strings.h"

namespace rtlsat::bmc {

using ir::Circuit;
using ir::NetId;
using ir::Node;
using ir::Op;

namespace detail {

std::vector<NetId> copy_frame(const ir::SeqCircuit& seq, Circuit& out,
                              int frame,
                              const std::vector<std::pair<NetId, NetId>>& state) {
  const Circuit& comb = seq.comb();
  std::vector<NetId> map(comb.num_nets(), ir::kNoNet);
  for (const auto& [q, value] : state) map[q] = value;

  for (NetId id = 0; id < comb.num_nets(); ++id) {
    if (map[id] != ir::kNoNet) continue;  // register output, pre-mapped
    const Node& n = comb.node(id);
    switch (n.op) {
      case Op::kInput:
        map[id] = out.add_input(
            str_format("%s@%d", comb.net_name(id).c_str(), frame), n.width);
        break;
      case Op::kConst:
        map[id] = out.add_const(n.imm, n.width);
        break;
      case Op::kAnd: {
        std::vector<NetId> ops;
        for (NetId o : n.operands) ops.push_back(map[o]);
        map[id] = out.add_and(std::move(ops));
        break;
      }
      case Op::kOr: {
        std::vector<NetId> ops;
        for (NetId o : n.operands) ops.push_back(map[o]);
        map[id] = out.add_or(std::move(ops));
        break;
      }
      case Op::kNot: map[id] = out.add_not(map[n.operands[0]]); break;
      case Op::kXor:
        map[id] = out.add_xor(map[n.operands[0]], map[n.operands[1]]);
        break;
      case Op::kMux:
        map[id] = out.add_mux(map[n.operands[0]], map[n.operands[1]],
                              map[n.operands[2]]);
        break;
      case Op::kAdd:
        map[id] = out.add_add(map[n.operands[0]], map[n.operands[1]]);
        break;
      case Op::kSub:
        map[id] = out.add_sub(map[n.operands[0]], map[n.operands[1]]);
        break;
      case Op::kMulC: map[id] = out.add_mulc(map[n.operands[0]], n.imm); break;
      case Op::kShlC:
        map[id] = out.add_shl(map[n.operands[0]], static_cast<int>(n.imm));
        break;
      case Op::kShrC:
        map[id] = out.add_shr(map[n.operands[0]], static_cast<int>(n.imm));
        break;
      case Op::kNotW: map[id] = out.add_notw(map[n.operands[0]]); break;
      case Op::kConcat:
        map[id] = out.add_concat(map[n.operands[0]], map[n.operands[1]]);
        break;
      case Op::kExtract:
        map[id] = out.add_extract(map[n.operands[0]], static_cast<int>(n.imm),
                                  static_cast<int>(n.imm2));
        break;
      case Op::kZext: map[id] = out.add_zext(map[n.operands[0]], n.width); break;
      case Op::kMin:
        map[id] = out.add_min_raw(map[n.operands[0]], map[n.operands[1]]);
        break;
      case Op::kMax:
        map[id] = out.add_max_raw(map[n.operands[0]], map[n.operands[1]]);
        break;
      case Op::kEq:
        map[id] = out.add_eq_raw(map[n.operands[0]], map[n.operands[1]]);
        break;
      case Op::kNe:
        map[id] = out.add_not(out.add_eq_raw(map[n.operands[0]], map[n.operands[1]]));
        break;
      case Op::kLt:
        map[id] = out.add_lt(map[n.operands[0]], map[n.operands[1]]);
        break;
      case Op::kLe:
        map[id] = out.add_le(map[n.operands[0]], map[n.operands[1]]);
        break;
    }
    RTLSAT_ASSERT(map[id] != ir::kNoNet);
  }
  return map;
}

}  // namespace detail

namespace {

using detail::copy_frame;

BmcInstance unroll_impl(const ir::SeqCircuit& seq, std::string_view property,
                        int bound, bool any_frame) {
  RTLSAT_ASSERT(bound >= 1);
  seq.validate();
  const NetId prop = seq.property(property);
  RTLSAT_ASSERT_MSG(prop != ir::kNoNet, "unknown property");

  BmcInstance instance;
  instance.bound = bound;
  instance.name = str_format("%s_%s(%d)", seq.comb().name().c_str(),
                             std::string(property).c_str(), bound);
  Circuit& out = instance.circuit;
  out.set_name(instance.name);

  // Frame 0 state: reset values.
  std::vector<std::pair<NetId, NetId>> state;
  for (const ir::Register& r : seq.registers())
    state.push_back({r.q, out.add_const(r.init, seq.comb().width(r.q))});

  std::vector<NetId> violations;
  for (int frame = 0; frame < bound; ++frame) {
    const std::vector<NetId> map = copy_frame(seq, out, frame, state);
    instance.frame_map.push_back(map);
    // Next frame's state = this frame's next-state nets.
    state.clear();
    for (const ir::Register& r : seq.registers())
      state.push_back({r.q, map[r.d]});
    if (any_frame && frame + 1 < bound) {
      // The property in the *post-transition* state equals P's value in the
      // next frame's logic; collect intermediate violations by evaluating P
      // of this frame (pre-transition state) for frames ≥ 1.
      if (frame >= 1) violations.push_back(out.add_not(map[prop]));
    }
  }
  // Final frame: evaluate the property over the state after `bound` steps.
  std::vector<NetId> final_map = copy_frame(seq, out, bound, state);
  instance.frame_map.push_back(final_map);
  violations.push_back(out.add_not(final_map[prop]));

  instance.goal =
      violations.size() == 1 ? violations[0] : out.add_or(std::move(violations));
  out.set_net_name(instance.goal, "goal");
  out.validate();
  return instance;
}

}  // namespace

BmcInstance unroll(const ir::SeqCircuit& seq, std::string_view property,
                   int bound) {
  trace::ScopedPhase phase(&trace::global(), nullptr, "unroll");
  BmcInstance instance = unroll_impl(seq, property, bound, /*any_frame=*/false);
  trace::global().record(trace::EventKind::kUnroll, 0,
                         static_cast<std::int64_t>(instance.circuit.num_nets()),
                         bound);
  return instance;
}

BmcInstance unroll_any(const ir::SeqCircuit& seq, std::string_view property,
                       int bound) {
  trace::ScopedPhase phase(&trace::global(), nullptr, "unroll");
  BmcInstance instance = unroll_impl(seq, property, bound, /*any_frame=*/true);
  trace::global().record(trace::EventKind::kUnroll, 0,
                         static_cast<std::int64_t>(instance.circuit.num_nets()),
                         bound);
  return instance;
}

}  // namespace rtlsat::bmc
