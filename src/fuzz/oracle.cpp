#include "fuzz/oracle.h"

#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bitblast/bitblast.h"
#include "bmc/incremental.h"
#include "bmc/unroll.h"
#include "core/hdpll.h"
#include "core/selfcheck.h"
#include "portfolio/portfolio.h"
#include "presolve/analyze.h"
#include "presolve/simplify.h"
#include "proof/drat.h"
#include "proof/drat_check.h"
#include "proof/word_check.h"
#include "proof/word_writer.h"
#include "prop/engine.h"
#include "util/assert.h"

namespace rtlsat::fuzz {

using ir::Circuit;
using ir::NetId;
using Model = std::unordered_map<NetId, std::int64_t>;

namespace {

char status_char(core::SolveStatus s) {
  switch (s) {
    case core::SolveStatus::kSat: return 'S';
    case core::SolveStatus::kUnsat: return 'U';
    default: return 'T';
  }
}

char status_char(sat::Result r) {
  switch (r) {
    case sat::Result::kSat: return 'S';
    case sat::Result::kUnsat: return 'U';
    default: return 'T';
  }
}

std::string model_to_string(const Circuit& circuit, const Model& model) {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (const NetId in : circuit.inputs()) {
    const auto it = model.find(in);
    if (it == model.end()) continue;
    if (!first) os << ' ';
    first = false;
    os << circuit.net_name(in) << '=' << it->second;
  }
  os << '}';
  return os.str();
}

// The three Table-2 HDPLL configurations.
struct HdpllConfig {
  const char* name;
  bool structural;
  bool predicates;
};
constexpr HdpllConfig kHdpllConfigs[] = {
    {"hdpll", false, false},
    {"hdpll+s", true, false},
    {"hdpll+s+p", true, true},
};

core::HdpllOptions make_options(const HdpllConfig& config,
                                const OracleOptions& options) {
  core::HdpllOptions o;
  o.structural_decisions = config.structural;
  o.predicate_learning = config.predicates;
  o.timeout_seconds = options.timeout_seconds;
  o.verify_models = true;
  return o;
}

struct Harness {
  const Circuit& circuit;
  NetId goal;
  const OracleOptions& options;
  OracleReport report;
  // One SAT model per engine that produced one, for cross-replay.
  std::vector<std::pair<std::string, Model>> sat_models;

  void mismatch(std::string text) {
    report.mismatches.push_back(std::move(text));
  }

  void record(const std::string& engine, char verdict, double seconds,
              Model model) {
    report.verdicts.push_back({engine, verdict, seconds});
    if (verdict != 'S') return;
    // Rule 2: every SAT model must actually satisfy the goal.
    const std::vector<std::int64_t> values = circuit.evaluate(model);
    if (values[goal] != 1) {
      mismatch(engine + ": SAT model does not satisfy the goal: " +
               model_to_string(circuit, model));
    }
    sat_models.emplace_back(engine, std::move(model));
  }

  // Rule 4: a decisive verdict reached with proof logging on must come
  // with a certificate the independent checker accepts — and an UNSAT
  // verdict with an established refutation. The checker's error carries
  // the first rejected step ("line N: ..." / "step N: ..."), so an
  // unsound derivation is named, not just outvoted.
  void check_word_cert(const std::string& engine, char verdict,
                       const proof::WordCertWriter& writer) {
    const proof::WordCheckResult check = proof::word_check(writer.str());
    if (!check.ok) {
      mismatch(engine + ": certificate rejected: " + check.error);
      return;
    }
    if (verdict == 'U' && !check.refuted)
      mismatch(engine + ": UNSAT verdict but the certificate establishes " +
               "no refutation");
  }

  void run_hdpll() {
    for (const HdpllConfig& config : kHdpllConfigs) {
      proof::WordCertWriter cert;
      core::HdpllOptions o = make_options(config, options);
      if (options.check_proofs) o.proof = &cert;
      core::HdpllSolver solver(circuit, o);
      solver.assume_bool(goal, true);
      core::SolveResult res = solver.solve();
      const char verdict = status_char(res.status);
      record(config.name, verdict, res.seconds, std::move(res.input_model));
      if (options.check_proofs) check_word_cert(config.name, verdict, cert);
    }
  }

  void run_bitblast() {
    proof::DratWriter drat;
    sat::SolverOptions o;
    o.timeout_seconds = options.timeout_seconds;
    if (options.check_proofs) o.drat = &drat;
    bitblast::CheckResult res = bitblast::check_sat(circuit, goal, true, o);
    const char verdict = status_char(res.result);
    record("bitblast", verdict, 0, std::move(res.input_model));
    if (options.check_proofs && verdict == 'U') {
      const proof::DratCheckResult check =
          proof::drat_check(drat.dimacs(), drat.proof(), drat.binary());
      if (!check.ok)
        mismatch("bitblast: DRAT proof rejected: " + check.error);
    }
  }

  void run_portfolio() {
    if (!options.run_portfolio) return;
    portfolio::PortfolioOptions o;
    o.jobs = options.portfolio_jobs;
    o.deterministic = true;  // keep the whole oracle reproducible
    o.crosscheck = true;
    o.budget_seconds = options.timeout_seconds * o.jobs;
    portfolio::Portfolio race(circuit, goal, true, o);
    portfolio::PortfolioResult res = race.solve();
    record("portfolio", status_char(res.status), res.seconds,
           std::move(res.input_model));
    // The portfolio's internal crosscheck is part of the oracle matrix:
    // surface its violations as mismatches.
    for (const std::string& v : res.crosscheck_violations)
      mismatch("portfolio crosscheck: " + v);
  }

  void run_brute() {
    int total_bits = 0;
    for (const NetId in : circuit.inputs()) total_bits += circuit.width(in);
    if (total_bits > options.brute_force_max_bits) return;
    report.brute_ran = true;

    const std::vector<NetId>& ins = circuit.inputs();
    Model model;
    std::vector<std::int64_t> cursor(ins.size(), 0);
    bool any_sat = false;
    Model witness;
    for (;;) {
      for (std::size_t i = 0; i < ins.size(); ++i) model[ins[i]] = cursor[i];
      const std::vector<std::int64_t> values = circuit.evaluate(model);
      if (values[goal] == 1) {
        ++report.brute_sat_count;
        if (!any_sat) {
          any_sat = true;
          witness = model;
        }
      }
      // Odometer increment over the input domains.
      std::size_t i = 0;
      for (; i < ins.size(); ++i) {
        const std::int64_t top =
            (std::int64_t{1} << circuit.width(ins[i])) - 1;
        if (cursor[i] < top) {
          ++cursor[i];
          break;
        }
        cursor[i] = 0;
      }
      if (i == ins.size()) break;
    }
    record("brute", any_sat ? 'S' : 'U', 0, std::move(witness));
  }

  // Rule 1: decisive verdicts must agree.
  void check_consensus() {
    for (const EngineVerdict& v : report.verdicts) {
      if (v.verdict != 'S' && v.verdict != 'U') continue;
      if (report.consensus == '?') {
        report.consensus = v.verdict;
      } else if (report.consensus != v.verdict) {
        std::ostringstream os;
        os << "verdict disagreement: " << v.engine << " says " << v.verdict
           << " but an earlier engine said " << report.consensus
           << " (" << report.summary() << ")";
        mismatch(os.str());
        return;
      }
    }
  }

  // Rule 3: replay every SAT model through level-0 interval propagation
  // with "goal = 1" assumed — the selfcheck soundness audit must admit the
  // model in every net's propagated interval. This is the probe that
  // catches interval narrowing bugs which happened not to flip this
  // instance's verdict: a rule that narrows too far excludes a real model
  // here long before it produces a wrong UNSAT somewhere else.
  void replay_models() {
    if (!options.selfcheck_replay) return;
    prop::Engine engine(circuit);
    const bool consistent =
        engine.narrow(goal, Interval::point(1), prop::ReasonKind::kAssumption) &&
        engine.propagate();
    if (!consistent) {
      // Level-0 propagation refuted the instance outright; that is only
      // sound if no engine holds a model.
      for (const auto& [name, model] : sat_models) {
        mismatch("level-0 propagation refutes the instance but " + name +
                 " has model " + model_to_string(circuit, model));
      }
      return;
    }
    for (const auto& [name, model] : sat_models) {
      for (const std::string& v :
           core::selfcheck::check_interval_soundness(engine, model)) {
        mismatch("level-0 intervals reject " + name + "'s model " +
                 model_to_string(circuit, model) + ": " + v);
      }
    }
  }
};

}  // namespace

std::string OracleReport::summary() const {
  std::ostringstream os;
  for (const EngineVerdict& v : verdicts)
    os << v.engine << ':' << v.verdict << ' ';
  os << "consensus=" << consensus;
  if (brute_ran) os << " brute_sat=" << brute_sat_count;
  return os.str();
}

OracleReport run_oracle(const ir::Circuit& circuit, ir::NetId goal,
                        const OracleOptions& options) {
  RTLSAT_ASSERT(circuit.is_bool(goal));
  Harness h{circuit, goal, options, {}, {}};
  h.run_hdpll();
  h.run_bitblast();
  h.run_portfolio();
  h.run_brute();
  h.check_consensus();
  h.replay_models();
  return h.report;
}

std::vector<std::string> compare_bmc_paths(const ir::SeqCircuit& seq,
                                           const std::string& property,
                                           int max_bound,
                                           const OracleOptions& options) {
  std::vector<std::string> mismatches;
  for (const bool cumulative : {false, true}) {
    core::HdpllOptions solver_options;
    solver_options.structural_decisions = true;
    solver_options.predicate_learning = true;
    solver_options.timeout_seconds = options.timeout_seconds;
    bmc::IncrementalBmc inc(seq, property, solver_options, cumulative);
    // Third path: the same growing solver with presolve's reach invariants
    // installed as persistent assumptions. An unsound invariant (one that
    // excludes a reachable state) flips a SAT bound to UNSAT here.
    bmc::IncrementalBmc inc_pre(seq, property, solver_options, cumulative,
                                /*presolve=*/true);
    for (int bound = 1; bound <= max_bound; ++bound) {
      const core::SolveResult warm = inc.solve_bound(bound);
      const core::SolveResult warm_pre = inc_pre.solve_bound(bound);

      const bmc::BmcInstance fresh =
          cumulative ? bmc::unroll_any(seq, property, bound)
                     : bmc::unroll(seq, property, bound);
      core::HdpllSolver cold(fresh.circuit, solver_options);
      cold.assume_bool(fresh.goal, true);
      const core::SolveResult fresh_result = cold.solve();

      const char w = status_char(warm.status);
      const char wp = status_char(warm_pre.status);
      const char f = status_char(fresh_result.status);
      if (f != 'T' && wp != 'T' && wp != f) {
        std::ostringstream os;
        os << inc_pre.name(bound) << (cumulative ? " (cumulative)" : "")
           << ": incremental+presolve=" << wp << " fresh=" << f;
        mismatches.push_back(os.str());
      } else if (wp == 'S') {
        const auto values = inc_pre.circuit().evaluate(warm_pre.input_model);
        if (values[inc_pre.ensure_bound(bound)] != 1) {
          std::ostringstream os;
          os << inc_pre.name(bound) << (cumulative ? " (cumulative)" : "")
             << ": incremental+presolve witness failed replay "
             << model_to_string(inc_pre.circuit(), warm_pre.input_model);
          mismatches.push_back(os.str());
        }
      }
      if (w == 'T' || f == 'T') continue;  // abstain, as in run_oracle
      if (w != f) {
        std::ostringstream os;
        os << inc.name(bound) << (cumulative ? " (cumulative)" : "")
           << ": incremental=" << w << " fresh=" << f;
        mismatches.push_back(os.str());
        continue;
      }
      if (warm.status == core::SolveStatus::kSat) {
        // The witness must replay by simulation on the growing circuit —
        // independent of the solver that produced it, so a clause leaked
        // across frames shows up here even when both verdicts say SAT.
        const auto values = inc.circuit().evaluate(warm.input_model);
        if (values[inc.ensure_bound(bound)] != 1) {
          std::ostringstream os;
          os << inc.name(bound) << (cumulative ? " (cumulative)" : "")
             << ": incremental witness failed replay "
             << model_to_string(inc.circuit(), warm.input_model);
          mismatches.push_back(os.str());
        }
      }
    }
  }
  return mismatches;
}

std::vector<std::string> compare_presolve(const ir::Circuit& circuit,
                                          ir::NetId goal,
                                          const OracleOptions& options) {
  RTLSAT_ASSERT(circuit.is_bool(goal));
  std::vector<std::string> mismatches;
  core::HdpllOptions solver_options;
  solver_options.structural_decisions = true;
  solver_options.predicate_learning = true;
  solver_options.timeout_seconds = options.timeout_seconds;
  solver_options.verify_models = true;

  // Unconditioned facts must admit every model any path produces — the
  // audit that catches a too-narrow transfer function before it ever
  // flips a verdict.
  const presolve::FactTable facts = presolve::analyze(circuit);
  const auto audit_model = [&](const std::string& who, const Model& model) {
    const std::vector<std::int64_t> values = circuit.evaluate(model);
    if (values[goal] != 1) {
      mismatches.push_back(who + ": SAT model does not satisfy the goal: " +
                           model_to_string(circuit, model));
    }
    for (NetId id = 0; id < circuit.num_nets(); ++id) {
      if (!facts.range[id].contains(values[id])) {
        std::ostringstream os;
        os << who << ": net " << id << " (" << circuit.net_name(id)
           << ") value " << values[id] << " escapes unconditioned fact "
           << facts.range[id].to_string() << " under model "
           << model_to_string(circuit, model);
        mismatches.push_back(os.str());
      }
      if (facts.parity[id] != presolve::Parity::kUnknown &&
          facts.parity[id] != presolve::parity_of(values[id])) {
        std::ostringstream os;
        os << who << ": net " << id << " (" << circuit.net_name(id)
           << ") value " << values[id] << " contradicts its parity fact";
        mismatches.push_back(os.str());
      }
    }
  };

  // Reference: direct solve of the original instance.
  core::HdpllSolver direct(circuit, solver_options);
  direct.assume_bool(goal, true);
  const core::SolveResult ref = direct.solve();
  const char ref_verdict = status_char(ref.status);
  if (ref_verdict == 'S') audit_model("direct", ref.input_model);

  presolve::GoalPresolve pre = presolve::presolve_goal(circuit, goal, true);
  if (pre.decided) {
    const char verdict = pre.sat ? 'S' : 'U';
    if (ref_verdict != 'T' && ref_verdict != verdict) {
      mismatches.push_back(std::string("presolve decided ") + verdict +
                           " but direct solve says " + ref_verdict);
    }
    if (pre.sat) {
      audit_model("presolve-decided",
                  Model(pre.model.begin(), pre.model.end()));
    }
    return mismatches;
  }

  // Undecided: solve the simplified instance with the same configuration.
  core::HdpllSolver simplified(pre.circuit, solver_options);
  simplified.assume_bool(pre.goal, true);
  const core::SolveResult simp = simplified.solve();
  const char simp_verdict = status_char(simp.status);
  if (ref_verdict != 'T' && simp_verdict != 'T' &&
      ref_verdict != simp_verdict) {
    mismatches.push_back(std::string("simplified instance says ") +
                         simp_verdict + " but direct solve says " +
                         ref_verdict);
  }
  if (simp_verdict == 'S') {
    // Witness transfer by input name; an input the rewrite erased is
    // unconstrained in the original, so 0 completes the model.
    Model simp_model = simp.input_model;
    for (const NetId in : pre.circuit.inputs()) {
      if (simp_model.find(in) == simp_model.end()) simp_model[in] = 0;
    }
    Model orig_model;
    for (const NetId in : circuit.inputs()) {
      const NetId mapped = pre.circuit.find_net(circuit.net_name(in));
      const auto it = mapped == ir::kNoNet ? simp_model.end()
                                           : simp_model.find(mapped);
      orig_model[in] = it == simp_model.end() ? 0 : it->second;
    }
    audit_model("presolve-transfer", orig_model);
    // Net-by-net witness-transfer audit: every surviving net must compute
    // the same value on both sides of the net map.
    const std::vector<std::int64_t> v_orig = circuit.evaluate(orig_model);
    const std::vector<std::int64_t> v_simp = pre.circuit.evaluate(simp_model);
    for (NetId id = 0; id < circuit.num_nets(); ++id) {
      if (pre.net_map[id] == ir::kNoNet) continue;
      if (v_orig[id] != v_simp[pre.net_map[id]]) {
        std::ostringstream os;
        os << "net map diverges at net " << id << " ("
           << circuit.net_name(id) << "): original computes " << v_orig[id]
           << " but its image computes " << v_simp[pre.net_map[id]];
        mismatches.push_back(os.str());
      }
    }
  }
  return mismatches;
}

}  // namespace rtlsat::fuzz
