// Differential oracle harness: run one fuzz instance through every engine
// in the repo and cross-check the verdicts.
//
// The engine matrix mirrors the paper's Table 2 plus this repo's additions:
//   hdpll        — word-level solver, defaults
//   hdpll+s      — structural decisions (§4)
//   hdpll+s+p    — structural decisions + predicate learning (§3)
//   bitblast     — Tseitin CNF + CDCL, the structure-blind baseline
//   portfolio    — deterministic sequential portfolio with its own
//                  crosscheck layer on
//   brute        — exhaustive input enumeration, joined only when the total
//                  input bit count is small enough
//
// Agreement rules: every decisive ('S'/'U') verdict must match; every SAT
// model must evaluate the goal to 1 under circuit simulation; and each SAT
// model is replayed through a fresh HDPLL solver per configuration via
// crosscheck_model, which runs the selfcheck interval-soundness audit — the
// check that catches interval bugs that happen not to flip a verdict.
// Timeouts ('T') abstain. Any rule violation becomes a `mismatches` entry;
// ok() is the one-line pass/fail the fuzzer loop keys off.
#pragma once

#include <string>
#include <vector>

#include "ir/circuit.h"
#include "ir/seq.h"

namespace rtlsat::fuzz {

struct OracleOptions {
  double timeout_seconds = 10;  // per engine
  // Brute force joins when Σ input widths ≤ this many bits (2^n evals).
  int brute_force_max_bits = 18;
  bool run_portfolio = true;
  int portfolio_jobs = 4;
  // Replay SAT models through per-config HDPLL crosscheck_model (the
  // selfcheck interval-soundness audit). Costs one propagation pass per
  // (model, config); finds bugs that never flip a verdict.
  bool selfcheck_replay = true;
  // Run every HDPLL configuration with word-certificate logging and the
  // bitblast engine with DRAT logging, and pipe each certificate through
  // the independent checkers (src/proof). A rejected certificate becomes a
  // mismatch naming the first rejected proof step — so an unsound UNSAT is
  // localized to the derivation that faked it, not just flagged by a
  // disagreeing peer. In-memory only; fuzz instances are tiny.
  bool check_proofs = true;
};

struct EngineVerdict {
  std::string engine;
  char verdict = '?';  // 'S', 'U', 'T' (timeout/cancelled), '?' (skipped)
  double seconds = 0;
};

struct OracleReport {
  std::vector<EngineVerdict> verdicts;
  // The agreed decisive verdict: 'S', 'U', or '?' if every engine timed out.
  char consensus = '?';
  // Human-readable rule violations; empty ⟺ the instance passed.
  std::vector<std::string> mismatches;
  bool brute_ran = false;
  std::int64_t brute_sat_count = 0;  // satisfying assignments found by brute

  bool ok() const { return mismatches.empty(); }
  // "hdpll:S hdpll+s:S ... consensus=S" — one line for logs.
  std::string summary() const;
};

// Runs the full matrix on "goal = 1" over `circuit`. The goal must be a
// 1-bit net. Deterministic given (circuit, options).
OracleReport run_oracle(const ir::Circuit& circuit, ir::NetId goal,
                        const OracleOptions& options = {});

// Differential check of the incremental BMC path (bmc/incremental.h: one
// growing circuit, one persistent solver, per-bound assumptions) against
// fresh-per-frame unroll+solve, over every bound ≤ max_bound and both
// goal shapes (exactly-k and cumulative). Rules mirror run_oracle's:
// decisive verdicts must match at every bound, each incremental SAT
// witness must replay (goal = 1) on the growing circuit by simulation,
// and timeouts abstain. Returns the rule violations; empty ⟺ the two
// paths agree.
std::vector<std::string> compare_bmc_paths(const ir::SeqCircuit& seq,
                                           const std::string& property,
                                           int max_bound,
                                           const OracleOptions& options = {});

// Differential check of the presolve path (presolve/simplify.h) against a
// direct HDPLL+S+P solve of the original instance. Rules:
//   * a presolve-decided verdict must match the direct one (timeouts
//     abstain), and a decided-SAT model must satisfy the goal by
//     simulation;
//   * an undecided presolve hands the simplified circuit to the same
//     solver configuration: verdicts must match, and a SAT model must
//     transfer back through the input names — satisfying the original goal
//     AND agreeing net-by-net with the original evaluation through the
//     net map (the witness-transfer audit);
//   * every model seen (direct or transferred) must lie inside every
//     unconditioned analyzer fact — range and parity — so a narrowing bug
//     is caught even when it never flips a verdict.
// Returns the rule violations; empty ⟺ presolve is sound on the instance.
std::vector<std::string> compare_presolve(const ir::Circuit& circuit,
                                          ir::NetId goal,
                                          const OracleOptions& options = {});

}  // namespace rtlsat::fuzz
