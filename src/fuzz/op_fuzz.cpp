#include "fuzz/op_fuzz.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "fme/fme.h"
#include "fme/linear.h"
#include "interval/interval.h"
#include "interval/interval_ops.h"
#include "util/assert.h"

namespace rtlsat::fuzz {

using iops::Pair;
using V = Interval::Value;
using W = __int128;

namespace {

// Stop appending (but keep counting checks) once this many violations have
// been collected — one broken rule fails millions of contracts.
constexpr std::size_t kMaxViolations = 64;

struct Ctx {
  std::vector<std::string> violations;
  std::int64_t checks = 0;

  // `detail` is a callable so the description string is only materialized
  // on failure — the exhaustive loops run hundreds of millions of checks.
  template <typename F>
  void require(bool ok, const char* rule, F&& detail) {
    ++checks;
    if (ok || violations.size() >= kMaxViolations) return;
    violations.push_back(std::string(rule) + ": " + detail());
  }
};

std::string describe(const Interval& a) { return a.to_string(); }

template <typename... Rest>
std::string describe(const Interval& a, const Rest&... rest) {
  return a.to_string() + " " + describe(rest...);
}

// "result must contain v" with the saturation-rail reading: a rail endpoint
// means unbounded on that side, so any true value beyond it is admitted.
bool contains_sat(const Interval& r, W v) {
  if (r.is_empty()) return false;
  const bool lo_ok = r.lo() == kSatMin || static_cast<W>(r.lo()) <= v;
  const bool hi_ok = r.hi() == kSatMax || v <= static_cast<W>(r.hi());
  return lo_ok && hi_ok;
}

// Every nonempty sub-interval of [lo, hi].
std::vector<Interval> intervals_in(V lo, V hi) {
  std::vector<Interval> out;
  for (V a = lo; a <= hi; ++a)
    for (V b = a; b <= hi; ++b) out.emplace_back(a, b);
  return out;
}

V mod_floor(V a, V m) {
  V r = a % m;
  if (r < 0) r += m;
  return r;
}

// ------------------------------------------------ exhaustive small widths

// Forward unary and parameterized rules: one concrete operand at a time.
void exhaustive_unary(int width, Ctx& ctx) {
  const V n = V{1} << width;
  const V top = n - 1;
  // Signed universe exercises the negative branches of mod/neg/mul.
  const std::vector<Interval> signed_ivals = intervals_in(-n, top);
  const std::vector<Interval> unsigned_ivals = intervals_in(0, top);

  for (const Interval& x : signed_ivals) {
    const auto dx = [&] { return describe(x); };
    const Interval neg = iops::fwd_neg(x);
    const Interval bneg = iops::back_neg(x);
    for (V v = x.lo(); v <= x.hi(); ++v) {
      ctx.require(neg.contains(-v), "fwd_neg", dx);
      ctx.require(bneg.contains(-v), "back_neg", dx);
    }
    for (V k = -3; k <= 3; ++k) {
      const auto dk = [&] { return describe(x) + " k=" + std::to_string(k); };
      const Interval prod = iops::fwd_mul_const(x, k);
      for (V v = x.lo(); v <= x.hi(); ++v)
        ctx.require(prod.contains(k * v), "fwd_mul_const", dk);
      if (k != 0) {
        const Interval pre = iops::back_mul_const(x, k);
        for (V v = -n; v <= top; ++v)
          if (x.contains(k * v))
            ctx.require(pre.contains(v), "back_mul_const", dk);
      }
    }
    for (V m = 1; m <= n; ++m) {
      const auto dm = [&] { return describe(x) + " m=" + std::to_string(m); };
      const Interval mod = iops::fwd_mod(x, m);
      for (V v = x.lo(); v <= x.hi(); ++v)
        ctx.require(mod.contains(mod_floor(v, m)), "fwd_mod", dm);
    }
  }

  for (const Interval& x : unsigned_ivals) {
    const auto dx = [&] { return describe(x); };
    const Interval not_f = iops::fwd_not(x, width);
    const Interval not_b = iops::back_not(x, width);
    for (V v = x.lo(); v <= x.hi(); ++v)
      ctx.require(not_f.contains(top - v), "fwd_not", dx);
    for (V v = 0; v <= top; ++v)
      if (x.contains(top - v)) ctx.require(not_b.contains(v), "back_not", dx);

    for (int k = 0; k <= width; ++k) {
      const auto dk = [&] { return describe(x) + " k=" + std::to_string(k); };
      const Interval shr = iops::fwd_lshr(x, k);
      const Interval shr_b = iops::back_lshr(x, k);
      for (V v = x.lo(); v <= x.hi(); ++v)
        ctx.require(shr.contains(v >> k), "fwd_lshr", dk);
      for (V v = 0; v <= top; ++v)
        if (x.contains(v >> k)) ctx.require(shr_b.contains(v), "back_lshr", dk);
    }
    for (int k = 0; k < width; ++k) {
      const auto dk = [&] { return describe(x) + " k=" + std::to_string(k); };
      const Interval shl = iops::fwd_shl(x, k, width);
      for (V v = x.lo(); v <= x.hi(); ++v)
        ctx.require(shl.contains((v << k) & top), "fwd_shl", dk);
    }
    // Extract fields and their inversion.
    for (int lo_bit = 0; lo_bit < width; ++lo_bit) {
      for (int hi_bit = lo_bit; hi_bit < width; ++hi_bit) {
        const auto dbits = [&] {
          return describe(x) + " bits " + std::to_string(hi_bit) + ":" +
                 std::to_string(lo_bit);
        };
        const V span = V{1} << (hi_bit - lo_bit + 1);
        const Interval field = iops::fwd_extract(x, hi_bit, lo_bit);
        for (V v = x.lo(); v <= x.hi(); ++v)
          ctx.require(field.contains((v >> lo_bit) % span), "fwd_extract",
                      dbits);
        for (const Interval& z : intervals_in(0, span - 1)) {
          const Interval narrowed = iops::back_extract(z, x, hi_bit, lo_bit);
          for (V v = x.lo(); v <= x.hi(); ++v)
            if (z.contains((v >> lo_bit) % span))
              ctx.require(narrowed.contains(v), "back_extract", [&] {
                return describe(z, x) + "bits " + std::to_string(hi_bit) +
                       ":" + std::to_string(lo_bit);
              });
        }
      }
    }
  }
}

// Forward + narrow rules over every interval pair of the width.
void exhaustive_pairs(int width, Ctx& ctx) {
  const V n = V{1} << width;
  const V top = n - 1;
  const std::vector<Interval> ivals = intervals_in(0, top);

  for (const Interval& x : ivals) {
    for (const Interval& y : ivals) {
      const auto d = [&] { return describe(x, y); };
      const Interval add = iops::fwd_add(x, y);
      const Interval sub = iops::fwd_sub(x, y);
      const Interval mn = iops::fwd_min(x, y);
      const Interval mx = iops::fwd_max(x, y);
      const Interval addw = iops::fwd_add_wrap(x, y, width);
      const Interval subw = iops::fwd_sub_wrap(x, y, width);
      const Interval eq = iops::fwd_eq(x, y);
      const Interval lt = iops::fwd_lt(x, y);
      const Interval le = iops::fwd_le(x, y);
      const Pair nlt = iops::narrow_lt(x, y);
      const Pair nle = iops::narrow_le(x, y);
      const Pair neq = iops::narrow_eq(x, y);
      const Pair nne = iops::narrow_ne(x, y);
      for (V a = x.lo(); a <= x.hi(); ++a) {
        for (V b = y.lo(); b <= y.hi(); ++b) {
          ctx.require(add.contains(a + b), "fwd_add", d);
          ctx.require(sub.contains(a - b), "fwd_sub", d);
          ctx.require(mn.contains(std::min(a, b)), "fwd_min", d);
          ctx.require(mx.contains(std::max(a, b)), "fwd_max", d);
          ctx.require(addw.contains((a + b) & top), "fwd_add_wrap", d);
          ctx.require(subw.contains(mod_floor(a - b, n)), "fwd_sub_wrap", d);
          ctx.require(eq.contains(a == b ? 1 : 0), "fwd_eq", d);
          ctx.require(lt.contains(a < b ? 1 : 0), "fwd_lt", d);
          ctx.require(le.contains(a <= b ? 1 : 0), "fwd_le", d);
          if (a < b)
            ctx.require(nlt.x.contains(a) && nlt.y.contains(b), "narrow_lt", d);
          if (a <= b)
            ctx.require(nle.x.contains(a) && nle.y.contains(b), "narrow_le", d);
          if (a == b)
            ctx.require(neq.x.contains(a) && neq.y.contains(b), "narrow_eq", d);
          if (a != b)
            ctx.require(nne.x.contains(a) && nne.y.contains(b), "narrow_ne", d);
        }
      }
    }
  }
}

// Backward rules with a (Z, other-operand) shape: the narrowed operand runs
// over the width universe.
void exhaustive_back_pairs(int width, Ctx& ctx) {
  const V n = V{1} << width;
  const V top = n - 1;
  const std::vector<Interval> ivals = intervals_in(0, top);
  const Interval full(0, top);

  for (const Interval& z : ivals) {
    for (const Interval& other : ivals) {
      const auto d = [&] { return describe(z, other); };
      const Interval bax = iops::back_add_x(z, other);
      const Interval bsx = iops::back_sub_x(z, other);
      const Interval bsy = iops::back_sub_y(z, other);
      // The 3-interval wrap/min/max rules run with x_cur = full width here;
      // exhaustive_back_triples covers proper sub-interval x_cur at the
      // widths where that is affordable.
      const Interval bawx = iops::back_add_wrap_x(z, other, full, width);
      const Interval bswx = iops::back_sub_wrap_x(z, other, full, width);
      const Interval bswy = iops::back_sub_wrap_y(z, other, full, width);
      const Interval bmin = iops::back_min_x(z, other, full);
      const Interval bmax = iops::back_max_x(z, other, full);
      for (V v = 0; v <= top; ++v) {
        for (V o = other.lo(); o <= other.hi(); ++o) {
          if (z.contains(v + o)) ctx.require(bax.contains(v), "back_add_x", d);
          if (z.contains(v - o)) ctx.require(bsx.contains(v), "back_sub_x", d);
          // back_sub_y: z = x − y narrows y; here v plays y, o plays x.
          if (z.contains(o - v)) ctx.require(bsy.contains(v), "back_sub_y", d);
          if (z.contains((v + o) & top))
            ctx.require(bawx.contains(v), "back_add_wrap_x", d);
          if (z.contains(mod_floor(v - o, n)))
            ctx.require(bswx.contains(v), "back_sub_wrap_x", d);
          if (z.contains(mod_floor(o - v, n)))
            ctx.require(bswy.contains(v), "back_sub_wrap_y", d);
          if (z.contains(std::min(v, o)))
            ctx.require(bmin.contains(v), "back_min_x", d);
          if (z.contains(std::max(v, o)))
            ctx.require(bmax.contains(v), "back_max_x", d);
        }
      }
    }
  }
}

// Full 3-interval enumeration of the x_cur-carrying backward rules.
// O(intervals³ · n²): affordable only at the smallest widths.
void exhaustive_back_triples(int width, Ctx& ctx) {
  const V n = V{1} << width;
  const V top = n - 1;
  const std::vector<Interval> ivals = intervals_in(0, top);

  for (const Interval& z : ivals) {
    for (const Interval& other : ivals) {
      for (const Interval& cur : ivals) {
        const auto d = [&] { return describe(z, other, cur); };
        const Interval bawx = iops::back_add_wrap_x(z, other, cur, width);
        const Interval bswx = iops::back_sub_wrap_x(z, other, cur, width);
        const Interval bswy = iops::back_sub_wrap_y(z, other, cur, width);
        const Interval bmin = iops::back_min_x(z, other, cur);
        const Interval bmax = iops::back_max_x(z, other, cur);
        for (V v = cur.lo(); v <= cur.hi(); ++v) {
          for (V o = other.lo(); o <= other.hi(); ++o) {
            if (z.contains((v + o) & top))
              ctx.require(bawx.contains(v), "back_add_wrap_x/cur", d);
            if (z.contains(mod_floor(v - o, n)))
              ctx.require(bswx.contains(v), "back_sub_wrap_x/cur", d);
            if (z.contains(mod_floor(o - v, n)))
              ctx.require(bswy.contains(v), "back_sub_wrap_y/cur", d);
            if (z.contains(std::min(v, o)))
              ctx.require(bmin.contains(v), "back_min_x/cur", d);
            if (z.contains(std::max(v, o)))
              ctx.require(bmax.contains(v), "back_max_x/cur", d);
          }
        }
      }
    }
  }
}

// Concat across every split of `width` into hi/lo parts.
void exhaustive_concat(int width, Ctx& ctx) {
  for (int low_width = 1; low_width < width; ++low_width) {
    const int hi_width = width - low_width;
    const V lo_n = V{1} << low_width;
    const V hi_n = V{1} << hi_width;
    const std::vector<Interval> hi_ivals = intervals_in(0, hi_n - 1);
    const std::vector<Interval> lo_ivals = intervals_in(0, lo_n - 1);
    const std::vector<Interval> z_ivals = intervals_in(0, (V{1} << width) - 1);

    for (const Interval& h : hi_ivals) {
      for (const Interval& l : lo_ivals) {
        const auto d = [&] {
          return describe(h, l) + "lw=" + std::to_string(low_width);
        };
        const Interval cat = iops::fwd_concat(h, l, low_width);
        for (V a = h.lo(); a <= h.hi(); ++a)
          for (V b = l.lo(); b <= l.hi(); ++b)
            ctx.require(cat.contains(a * lo_n + b), "fwd_concat", d);
      }
    }
    for (const Interval& z : z_ivals) {
      const auto dz = [&] {
        return describe(z) + " lw=" + std::to_string(low_width);
      };
      const Interval bh = iops::back_concat_hi(z, low_width);
      for (V a = 0; a < hi_n; ++a)
        for (V b = 0; b < lo_n; ++b)
          if (z.contains(a * lo_n + b))
            ctx.require(bh.contains(a), "back_concat_hi", dz);
      for (const Interval& h : hi_ivals) {
        const Interval bl =
            iops::back_concat_lo(z, h, Interval(0, lo_n - 1), low_width);
        for (V a = h.lo(); a <= h.hi(); ++a)
          for (V b = 0; b < lo_n; ++b)
            if (z.contains(a * lo_n + b))
              ctx.require(bl.contains(b), "back_concat_lo", [&] {
                return describe(z, h) + "lw=" + std::to_string(low_width);
              });
      }
    }
  }
}

// --------------------------------------------------------- randomized int64

V rand_endpoint(Rng& rng) {
  switch (rng.below(8)) {
    case 0: return 0;
    case 1: return rng.range(-8, 8);
    case 2: return (V{1} << rng.below(61)) + rng.range(-2, 2);
    case 3: return -(V{1} << rng.below(61)) + rng.range(-2, 2);
    case 4: return kSatMax - static_cast<V>(rng.below(3));
    case 5: return kSatMin + static_cast<V>(rng.below(3));
    case 6: return static_cast<V>(rng.next() >> 2) * (rng.flip() ? 1 : -1);
    default: return rng.range(0, V{1} << 20);
  }
}

Interval rand_interval(Rng& rng) {
  V a = rand_endpoint(rng);
  V b = rng.chance(1, 4) ? a : rand_endpoint(rng);
  if (a > b) std::swap(a, b);
  return Interval(a, b);
}

// A concrete member of a (possibly astronomically wide) interval.
V sample(Rng& rng, const Interval& x) {
  switch (rng.below(4)) {
    case 0: return x.lo();
    case 1: return x.hi();
    default: {
      // Span in uint64 wraps correctly even for ⟨kSatMin, kSatMax⟩.
      const std::uint64_t span =
          static_cast<std::uint64_t>(x.hi()) - static_cast<std::uint64_t>(x.lo());
      if (span == 0 || span == ~std::uint64_t{0}) return rng.flip() ? x.lo() : x.hi();
      return static_cast<V>(static_cast<std::uint64_t>(x.lo()) +
                            rng.next() % (span + 1));
    }
  }
}

// Widen an interval around a point so it still contains it.
Interval around(Rng& rng, V v) {
  const V lo = rng.chance(1, 3) ? v : sat_sub(v, rng.range(0, 1 << 16));
  const V hi = rng.chance(1, 3) ? v : sat_add(v, rng.range(0, 1 << 16));
  return Interval(lo, hi);
}

}  // namespace

std::vector<std::string> exhaustive_interval_check(int width,
                                                   std::int64_t* checks) {
  RTLSAT_ASSERT(width >= 1 && width <= 6);
  Ctx ctx;
  exhaustive_unary(width, ctx);
  exhaustive_pairs(width, ctx);
  exhaustive_back_pairs(width, ctx);
  if (width <= 3) exhaustive_back_triples(width, ctx);
  exhaustive_concat(width, ctx);
  if (checks != nullptr) *checks = ctx.checks;
  return std::move(ctx.violations);
}

std::vector<std::string> fuzz_interval_ops(Rng& rng, int iterations) {
  Ctx ctx;
  for (int i = 0; i < iterations; ++i) {
    const Interval x = rand_interval(rng);
    const Interval y = rand_interval(rng);
    const V a = sample(rng, x);
    const V b = sample(rng, y);
    const W wa = a, wb = b;
    const auto dxy = [&] {
      return describe(x, y) + std::to_string(a) + "," + std::to_string(b);
    };
    const auto dx = [&] { return describe(x) + " x=" + std::to_string(a); };

    ctx.require(contains_sat(iops::fwd_add(x, y), wa + wb), "fwd_add", dxy);
    ctx.require(contains_sat(iops::fwd_sub(x, y), wa - wb), "fwd_sub", dxy);
    ctx.require(contains_sat(iops::fwd_neg(x), -wa), "fwd_neg", dx);
    ctx.require(contains_sat(iops::fwd_min(x, y), std::min(wa, wb)),
                "fwd_min", dxy);
    ctx.require(contains_sat(iops::fwd_max(x, y), std::max(wa, wb)),
                "fwd_max", dxy);
    {
      const V k = rng.range(-6, 6);
      ctx.require(contains_sat(iops::fwd_mul_const(x, k), wa * k),
                  "fwd_mul_const",
                  [&] { return dx() + " k=" + std::to_string(k); });
    }
    {
      const V m = rng.flip() ? (V{1} << (1 + rng.below(60)))
                             : rng.range(1, V{1} << 50);
      W r = wa % m;
      if (r < 0) r += m;
      ctx.require(contains_sat(iops::fwd_mod(x, m), r), "fwd_mod",
                  [&] { return dx() + " m=" + std::to_string(m); });
    }
    {
      // Width-scale shl/extract/concat with in-width operands.
      const int w = 1 + static_cast<int>(rng.below(60));
      const V top = (V{1} << w) - 1;
      const Interval xw = x.intersect(Interval(0, top));
      if (!xw.is_empty()) {
        const V v = sample(rng, xw);
        const int k = static_cast<int>(rng.below(static_cast<std::uint64_t>(w)));
        const auto dw = [&] {
          return describe(xw) + " k=" + std::to_string(k) + " w=" +
                 std::to_string(w) + " x=" + std::to_string(v);
        };
        ctx.require(contains_sat(iops::fwd_shl(xw, k, w),
                                 static_cast<V>((static_cast<W>(v) << k) &
                                                static_cast<W>(top))),
                    "fwd_shl", dw);
        const int lo_bit =
            static_cast<int>(rng.below(static_cast<std::uint64_t>(w)));
        const int hi_bit =
            lo_bit +
            static_cast<int>(rng.below(static_cast<std::uint64_t>(w - lo_bit)));
        const V span = V{1} << (hi_bit - lo_bit + 1);
        const V field_v = (v >> lo_bit) % span;
        const auto dex = [&] {
          return describe(xw) + " " + std::to_string(hi_bit) + ":" +
                 std::to_string(lo_bit) + " x=" + std::to_string(v);
        };
        ctx.require(contains_sat(iops::fwd_extract(xw, hi_bit, lo_bit), field_v),
                    "fwd_extract", dex);
        const Interval z =
            around(rng, field_v).intersect(Interval(0, span - 1));
        if (z.contains(field_v)) {
          const Interval nx = iops::back_extract(z, xw, hi_bit, lo_bit);
          ctx.require(nx.contains(v), "back_extract",
                      [&] { return describe(z) + " " + dex(); });
        }
      }
      if (w >= 2) {
        const int lw =
            1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(w - 1)));
        const Interval hi_p = x.intersect(Interval(0, (V{1} << (w - lw)) - 1));
        const Interval lo_p = y.intersect(Interval(0, (V{1} << lw) - 1));
        if (!hi_p.is_empty() && !lo_p.is_empty()) {
          const V hv = sample(rng, hi_p);
          const V lv = sample(rng, lo_p);
          ctx.require(contains_sat(iops::fwd_concat(hi_p, lo_p, lw),
                                   (static_cast<W>(hv) << lw) + lv),
                      "fwd_concat", [&] { return describe(hi_p, lo_p); });
        }
      }
    }
    // Backward rules seeded from a concrete (x, y, z) triple. The premise
    // "op(x, y) ∈ Z" must use the *exact* result: when the true value
    // overflows int64 the saturating layer is allowed to lose it (rails are
    // surrogates, not values — the solver never feeds it out-of-range
    // operands; widths cap at 60 bits). So overflowing samples are skipped.
    {
      if (static_cast<W>(sat_add(a, b)) == wa + wb) {
        const Interval z_add = around(rng, sat_add(a, b));
        ctx.require(contains_sat(iops::back_add_x(z_add, y), wa),
                    "back_add_x", [&] { return describe(z_add, y) + dxy(); });
      }
      if (static_cast<W>(sat_sub(a, b)) == wa - wb) {
        const Interval z_sub = around(rng, sat_sub(a, b));
        ctx.require(contains_sat(iops::back_sub_x(z_sub, y), wa),
                    "back_sub_x", [&] { return describe(z_sub, y) + dxy(); });
        ctx.require(contains_sat(iops::back_sub_y(z_sub, x), wb),
                    "back_sub_y", [&] { return describe(z_sub, x) + dxy(); });
      }
    }
    // Comparator narrowings on the sampled concrete pair.
    {
      const Pair nlt = iops::narrow_lt(x, y);
      const Pair nle = iops::narrow_le(x, y);
      const Pair neq = iops::narrow_eq(x, y);
      const Pair nne = iops::narrow_ne(x, y);
      if (a < b)
        ctx.require(nlt.x.contains(a) && nlt.y.contains(b), "narrow_lt", dxy);
      if (a <= b)
        ctx.require(nle.x.contains(a) && nle.y.contains(b), "narrow_le", dxy);
      if (a == b)
        ctx.require(neq.x.contains(a) && neq.y.contains(b), "narrow_eq", dxy);
      if (a != b)
        ctx.require(nne.x.contains(a) && nne.y.contains(b), "narrow_ne", dxy);
    }
  }
  return std::move(ctx.violations);
}

std::vector<std::string> fuzz_fme(Rng& rng, int iterations) {
  Ctx ctx;
  for (int i = 0; i < iterations; ++i) {
    fme::System system;
    const int nv = 1 + static_cast<int>(rng.below(4));
    std::vector<std::int64_t> anchor;  // a random in-box point
    for (int v = 0; v < nv; ++v) {
      const std::int64_t lo = rng.range(-4, 4);
      const std::int64_t hi = lo + rng.range(0, 8);
      system.add_var(Interval(lo, hi));
      anchor.push_back(rng.range(lo, hi));
    }
    const int nc = 1 + static_cast<int>(rng.below(6));
    for (int c = 0; c < nc; ++c) {
      std::vector<fme::Term> terms;
      std::int64_t at_anchor = 0;
      for (int v = 0; v < nv; ++v) {
        if (nv > 1 && rng.chance(1, 3)) continue;
        const std::int64_t coeff =
            rng.flip() ? rng.range(1, 3) : rng.range(-3, -1);
        terms.push_back({static_cast<fme::Var>(v), coeff});
        at_anchor += coeff * anchor[static_cast<std::size_t>(v)];
      }
      if (terms.empty()) continue;
      // Half the constraints are satisfiable-by-construction (bound set
      // from the anchor point), half arbitrary — that mix yields a healthy
      // SAT/UNSAT balance instead of near-certain UNSAT.
      const std::int64_t bound =
          rng.flip() ? at_anchor + rng.range(0, 4) : rng.range(-10, 10);
      if (rng.chance(1, 5)) {
        system.add_eq(std::move(terms), bound);
      } else {
        system.add_le(std::move(terms), bound);
      }
    }

    // Ground truth: enumerate the variable box.
    bool truth_sat = false;
    {
      std::vector<std::int64_t> point;
      for (int v = 0; v < nv; ++v)
        point.push_back(system.bounds(static_cast<fme::Var>(v)).lo());
      for (;;) {
        bool all = true;
        for (const fme::LinearConstraint& c : system.constraints())
          all = all && fme::satisfied(c, point);
        if (all) {
          truth_sat = true;
          break;
        }
        int v = 0;
        for (; v < nv; ++v) {
          if (point[static_cast<std::size_t>(v)] <
              system.bounds(static_cast<fme::Var>(v)).hi()) {
            ++point[static_cast<std::size_t>(v)];
            break;
          }
          point[static_cast<std::size_t>(v)] =
              system.bounds(static_cast<fme::Var>(v)).lo();
        }
        if (v == nv) break;
      }
    }

    fme::Solver solver;
    std::vector<std::int64_t> model;
    const fme::Result verdict = solver.solve(system, &model);
    if (verdict == fme::Result::kUnknown) continue;  // only possible on stop
    const bool fme_sat = verdict == fme::Result::kSat;
    ctx.require(fme_sat == truth_sat, "fme_verdict", [&] {
      return std::string(fme_sat ? "SAT" : "UNSAT") + " vs enumerated " +
             (truth_sat ? "SAT" : "UNSAT") + " on\n" + system.to_string();
    });
    if (fme_sat && truth_sat) {
      bool ok = model.size() == static_cast<std::size_t>(nv);
      for (int v = 0; ok && v < nv; ++v)
        ok = system.bounds(static_cast<fme::Var>(v))
                 .contains(model[static_cast<std::size_t>(v)]);
      for (const fme::LinearConstraint& c : system.constraints())
        ok = ok && fme::satisfied(c, model);
      ctx.require(ok, "fme_model",
                  [&] { return "model violates system\n" + system.to_string(); });
    }
  }
  return std::move(ctx.violations);
}

}  // namespace rtlsat::fuzz
