// Greedy delta-reduction of fuzz instances, plus the .rtl repro exchange
// format (docs/fuzzing.md).
//
// Given a circuit+goal that is "interesting" (the caller's predicate —
// typically "the oracle matrix still disagrees on it"), the reducer
// repeatedly tries structure-shrinking rewrites (replace a node by one of
// its operands, or by a constant) and keeps any variant that is strictly
// smaller and still interesting, until a fixpoint. Every accepted variant
// is round-tripped through the .rtl parser first, so the final repro file
// is guaranteed to reproduce when loaded back — and the parser/writer pair
// gets fuzzed for free.
#pragma once

#include <functional>
#include <string>

#include "ir/circuit.h"

namespace rtlsat::fuzz {

// Must be pure in (circuit, goal): the reducer calls it on many variants
// and assumes a stable answer. True ⟺ the variant still reproduces.
using Interesting =
    std::function<bool(const ir::Circuit& circuit, ir::NetId goal)>;

struct ReduceOptions {
  // Full scans over the candidate list; each accepted rewrite restarts the
  // scan, so this bounds worst-case work, not result quality.
  int max_rounds = 64;
  // Round-trip every candidate through write_repro/load_repro before
  // testing it. Costs a parse per candidate; guarantees the emitted .rtl
  // file reproduces byte-for-byte behaviour.
  bool round_trip = true;
};

struct ReduceResult {
  ir::Circuit circuit;
  ir::NetId goal = ir::kNoNet;
  std::size_t initial_nodes = 0;  // goal-cone size before reduction
  std::size_t final_nodes = 0;
  int rounds = 0;
  int attempts = 0;  // candidate variants tried
  int accepted = 0;  // rewrites kept
};

// Shrinks (circuit, goal) while `interesting` stays true. The input must
// itself be interesting (asserted). Dead logic outside the goal cone is
// dropped when the predicate survives that — but some predicates (the
// oracle's interval audit among them) observe dead nets, so compaction is
// re-tested and reduction falls back to a dead-preserving mode if it fails.
ReduceResult reduce(const ir::Circuit& circuit, ir::NetId goal,
                    const Interesting& interesting,
                    const ReduceOptions& options = {});

// Repro serialization: the goal net is renamed "goal" and the circuit
// written in .rtl form, so a repro file is an ordinary parseable circuit
// whose entry point is discoverable by name. The goal must not be a
// constant (a constant goal is not a repro of anything).
std::string write_repro(const ir::Circuit& circuit, ir::NetId goal);
// Inverse: parse and look up the "goal" net. Throws parser::ParseError on
// malformed text; asserts a "goal" net exists.
ir::Circuit load_repro(const std::string& text, ir::NetId* goal);
ir::Circuit load_repro_file(const std::string& path, ir::NetId* goal);

}  // namespace rtlsat::fuzz
