// Seeded random word-level circuit & property generator — the workload
// source of the differential fuzzing subsystem (docs/fuzzing.md).
//
// The paper's two engines (word-level HDPLL search and the bit-blasted
// Boolean translation) must agree on every instance, which makes them a
// free differential oracle for each other; this generator manufactures the
// instances. The operator mix is deliberately mux- and predicate-heavy —
// muxes are what §4's structural decisions justify and comparators are
// what §3's predicate learning targets — and widths are drawn from two
// regimes: small widths where a brute-force evaluator can join the oracle
// matrix, and near-kMaxWidth "wide stress" instances with maximal shifts
// and huge multiply constants, the regime where the interval layer's
// saturating arithmetic has historically hidden soundness bugs.
#pragma once

#include <string>

#include "ir/circuit.h"
#include "ir/seq.h"
#include "util/rng.h"

namespace rtlsat::fuzz {

struct GeneratorOptions {
  // Base word width of an instance is uniform in [min_width, max_width],
  // except for wide-stress draws (below).
  int min_width = 2;
  int max_width = 12;
  // Operator-node budget per instance.
  int min_steps = 6;
  int max_steps = 36;
  int max_word_inputs = 4;
  // Number of Boolean terms conjoined into the goal.
  int goal_terms = 3;
  // Percent chance an instance is drawn at width kMaxWidth−4..kMaxWidth
  // with shifts of w−1 bits, multiply constants up to ~2^62 and comparator
  // chains that pin operands to short ranges — the saturation regime.
  unsigned wide_stress_percent = 15;
  // Percent chance an instance is a sequential design unrolled for a
  // random bound in [1, max_bound] (BMC shape). 0 disables.
  unsigned sequential_percent = 0;
  int max_registers = 3;
  int max_bound = 5;
};

struct FuzzInstance {
  ir::Circuit circuit;
  ir::NetId goal = ir::kNoNet;  // 1-bit; the oracle asserts goal = 1
  std::string description;      // shape summary for logs and repro headers
  int base_width = 0;
  bool from_sequential = false;
};

// Draws one instance. Deterministic in (rng state, options); never returns
// a constant goal (re-rolls internally, widening the net mix if the goal
// keeps folding away).
FuzzInstance generate(Rng& rng, const GeneratorOptions& options = {});

// The sequential path, exposed for tests: a random registered design with
// one safety property (named "p0"). generate() unrolls this for a random
// bound when a sequential draw is made.
ir::SeqCircuit generate_seq(Rng& rng, const GeneratorOptions& options);

}  // namespace rtlsat::fuzz
