#include "fuzz/generator.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "bmc/unroll.h"

namespace rtlsat::fuzz {

using ir::Circuit;
using ir::NetId;

namespace {

// Working state for one combinational draw: pools of word nets (mixed
// widths) and Boolean nets, plus the width regime knobs.
struct Draw {
  Circuit* c = nullptr;
  Rng* rng = nullptr;
  std::vector<NetId> words;
  std::vector<NetId> bools;
  int base_width = 0;
  bool wide = false;  // wide-stress regime

  NetId word() { return words[rng->below(words.size())]; }
  NetId boolean() { return bools[rng->below(bools.size())]; }

  // A random word partner of exactly `w` bits: an existing net of that
  // width if one exists, else an existing net zext'd/truncated to fit.
  NetId word_of_width(int w) {
    std::vector<NetId> fit;
    for (NetId id : words)
      if (c->width(id) == w) fit.push_back(id);
    if (!fit.empty() && !rng->chance(1, 8))
      return fit[rng->below(fit.size())];
    const NetId any = word();
    if (c->width(any) < w) return c->add_zext(any, w);
    if (c->width(any) > w) return c->add_trunc(any, w);
    return any;
  }

  std::int64_t rand_const(int w) {
    const std::int64_t top = (std::int64_t{1} << w) - 1;
    // Mix uniform draws with boundary values — boundary constants are what
    // exercise wrap/saturation fast paths.
    switch (rng->below(4)) {
      case 0: return 0;
      case 1: return top;
      case 2: return rng->range(0, std::min<std::int64_t>(top, 24));
      default: return rng->range(0, top);
    }
  }
};

void add_word_input(Draw& d, int index, int width) {
  d.words.push_back(d.c->add_input("w" + std::to_string(index), width));
}

// One random operator step appended to the pools.
void step(Draw& d) {
  Circuit& c = *d.c;
  Rng& rng = *d.rng;
  const NetId a = d.word();
  const int w = c.width(a);
  // Weighted op pick; muxes and predicates dominate by design.
  switch (rng.below(16)) {
    case 0:
    case 1:
      d.words.push_back(c.add_add(a, d.word_of_width(w)));
      break;
    case 2:
      d.words.push_back(c.add_sub(a, d.word_of_width(w)));
      break;
    case 3:
    case 4:
    case 5:
      d.words.push_back(c.add_mux(d.boolean(), a, d.word_of_width(w)));
      break;
    case 6: {  // predicate vs net
      const NetId b = d.word_of_width(w);
      switch (rng.below(4)) {
        case 0: d.bools.push_back(c.add_lt(a, b)); break;
        case 1: d.bools.push_back(c.add_le(a, b)); break;
        case 2: d.bools.push_back(c.add_eq(a, b)); break;
        default: d.bools.push_back(c.add_ne(a, b)); break;
      }
      break;
    }
    case 7: {  // predicate vs constant — pins domains to short ranges
      const NetId k = c.add_const(d.rand_const(w), w);
      switch (rng.below(4)) {
        case 0: d.bools.push_back(c.add_lt(a, k)); break;
        case 1: d.bools.push_back(c.add_ge(a, k)); break;
        case 2: d.bools.push_back(c.add_eq(a, k)); break;
        default: d.bools.push_back(c.add_le(a, k)); break;
      }
      break;
    }
    case 8: {  // shift; wide regime prefers near-width shifts
      if (w < 2) break;
      const int k = d.wide && rng.chance(3, 4)
                        ? w - 1 - static_cast<int>(rng.below(2))
                        : static_cast<int>(rng.below(static_cast<std::uint64_t>(w)));
      d.words.push_back(rng.flip() ? c.add_shl(a, k) : c.add_shr(a, k));
      break;
    }
    case 9: {  // multiply by constant; wide regime uses huge factors
      const std::int64_t k =
          d.wide && rng.chance(3, 4)
              ? (std::int64_t{1} << (40 + rng.below(22))) + rng.range(0, 9)
              : rng.range(2, 9);
      d.words.push_back(c.add_mulc(a, k));
      break;
    }
    case 10:
      d.words.push_back(c.add_notw(a));
      break;
    case 11: {  // extract a random field
      if (w < 2) break;
      const int lo = static_cast<int>(rng.below(static_cast<std::uint64_t>(w)));
      const int hi =
          lo + static_cast<int>(rng.below(static_cast<std::uint64_t>(w - lo)));
      d.words.push_back(c.add_extract(a, hi, lo));
      break;
    }
    case 12: {  // concat when the result still fits
      const NetId b = d.word();
      if (w + c.width(b) <= ir::kMaxWidth)
        d.words.push_back(c.add_concat(a, b));
      break;
    }
    case 13:
      d.words.push_back(rng.flip() ? c.add_min(a, d.word_of_width(w))
                                   : c.add_max(a, d.word_of_width(w)));
      break;
    case 14:  // Boolean control logic
      switch (rng.below(4)) {
        case 0: d.bools.push_back(c.add_and(d.boolean(), d.boolean())); break;
        case 1: d.bools.push_back(c.add_or(d.boolean(), d.boolean())); break;
        case 2: d.bools.push_back(c.add_not(d.boolean())); break;
        default: d.bools.push_back(c.add_xor(d.boolean(), d.boolean())); break;
      }
      break;
    case 15:
      d.words.push_back(
          c.add_zext(a, std::min(ir::kMaxWidth,
                                 w + 1 + static_cast<int>(rng.below(3)))));
      break;
  }
}

// Conjunction goal over random (possibly negated) Boolean nets. May fold to
// a constant; the caller re-rolls in that case.
NetId make_goal(Draw& d, int terms) {
  std::vector<NetId> conj;
  for (int i = 0; i < terms; ++i) {
    const NetId b = d.boolean();
    conj.push_back(d.rng->flip() ? b : d.c->add_not(b));
  }
  return d.c->add_and(std::move(conj));
}

Draw draw_comb(Circuit& c, Rng& rng, const GeneratorOptions& options,
               bool wide, int base_width, int steps) {
  Draw d;
  d.c = &c;
  d.rng = &rng;
  d.base_width = base_width;
  d.wide = wide;
  const int num_words =
      2 + static_cast<int>(rng.below(
              static_cast<std::uint64_t>(std::max(1, options.max_word_inputs - 1))));
  for (int i = 0; i < num_words; ++i) {
    // Mostly the base width; occasionally a different width for zext /
    // concat / extract cross-width traffic.
    const int w = rng.chance(3, 4)
                      ? base_width
                      : 1 + static_cast<int>(rng.below(
                                static_cast<std::uint64_t>(base_width)));
    add_word_input(d, i, w);
  }
  for (int i = 0; i < 2; ++i)
    d.bools.push_back(c.add_input("c" + std::to_string(i), 1));
  d.words.push_back(c.add_const(d.rand_const(base_width), base_width));
  for (int s = 0; s < steps; ++s) step(d);
  return d;
}

}  // namespace

ir::SeqCircuit generate_seq(Rng& rng, const GeneratorOptions& options) {
  // Sequential designs stay narrow: the BMC unroll multiplies the node
  // count by the bound, and the oracle matrix runs every engine on the
  // result.
  const int base_width =
      std::clamp(options.min_width + static_cast<int>(rng.below(7)), 1, 8);
  ir::SeqCircuit seq("fuzz_seq");
  Circuit& c = seq.comb();

  Draw d;
  d.c = &c;
  d.rng = &rng;
  d.base_width = base_width;
  d.wide = false;

  const int num_regs =
      1 + static_cast<int>(rng.below(
              static_cast<std::uint64_t>(std::max(1, options.max_registers))));
  std::vector<NetId> regs;
  for (int i = 0; i < num_regs; ++i) {
    const std::int64_t init =
        rng.range(0, (std::int64_t{1} << base_width) - 1);
    const NetId q =
        seq.add_register("r" + std::to_string(i), base_width, init);
    regs.push_back(q);
    d.words.push_back(q);
  }
  add_word_input(d, 0, base_width);
  d.bools.push_back(c.add_input("c0", 1));
  d.words.push_back(c.add_const(d.rand_const(base_width), base_width));

  const int steps = options.min_steps +
                    static_cast<int>(rng.below(static_cast<std::uint64_t>(
                        std::max(1, options.max_steps / 2 - options.min_steps + 1))));
  for (int s = 0; s < steps; ++s) step(d);

  for (const NetId q : regs) {
    NetId next = d.word();
    const int qw = c.width(q);
    if (c.width(next) < qw) next = c.add_zext(next, qw);
    if (c.width(next) > qw) next = c.add_trunc(next, qw);
    // Counter idiom with some probability — the shape of the ITC'99
    // benches, and a source of deep UNSAT instances.
    if (rng.chance(1, 3)) next = c.add_inc(next);
    seq.bind_next(q, next);
  }
  const NetId p = rng.flip() ? d.boolean() : c.add_not(d.boolean());
  seq.add_property("p0", p);
  return seq;
}

FuzzInstance generate(Rng& rng, const GeneratorOptions& options) {
  for (int attempt = 0;; ++attempt) {
    const bool sequential = rng.chance(options.sequential_percent, 100);
    if (sequential) {
      const ir::SeqCircuit seq = generate_seq(rng, options);
      const int bound =
          1 + static_cast<int>(rng.below(
                  static_cast<std::uint64_t>(std::max(1, options.max_bound))));
      bmc::BmcInstance unrolled = bmc::unroll(seq, "p0", bound);
      if (unrolled.circuit.node(unrolled.goal).op == ir::Op::kConst) continue;
      FuzzInstance inst;
      inst.circuit = std::move(unrolled.circuit);
      inst.goal = unrolled.goal;
      inst.base_width = 0;
      inst.from_sequential = true;
      std::ostringstream os;
      os << "seq bound=" << bound << " nets=" << inst.circuit.num_nets();
      inst.description = os.str();
      return inst;
    }

    const bool wide = rng.chance(options.wide_stress_percent, 100);
    const int base_width =
        wide ? ir::kMaxWidth - static_cast<int>(rng.below(5))
             : options.min_width +
                   static_cast<int>(rng.below(static_cast<std::uint64_t>(
                       options.max_width - options.min_width + 1)));
    // Re-rolls get progressively more operator steps so a folding-prone
    // draw eventually yields a live goal.
    const int steps =
        options.min_steps +
        static_cast<int>(rng.below(static_cast<std::uint64_t>(
            options.max_steps - options.min_steps + 1))) +
        2 * std::min(attempt, 10);

    Circuit c("fuzz");
    Draw d = draw_comb(c, rng, options, wide, base_width, steps);
    const NetId goal = make_goal(d, options.goal_terms);
    if (c.node(goal).op == ir::Op::kConst) continue;

    FuzzInstance inst;
    inst.circuit = std::move(c);
    inst.goal = goal;
    inst.base_width = base_width;
    std::ostringstream os;
    os << (wide ? "wide" : "comb") << " w=" << base_width
       << " nets=" << inst.circuit.num_nets();
    inst.description = os.str();
    return inst;
  }
}

}  // namespace rtlsat::fuzz
