// Property-based fuzzers for the interval-arithmetic rules and the FME
// feasibility solver — the oracle matrix's two leaf theories, checked
// against brute-force ground truth rather than against each other.
//
// Soundness contracts checked (interval layer, interval_ops.h):
//   forward:  fwd_op(X, Y) ⊇ { op(x, y) : x ∈ X, y ∈ Y }   (image)
//   backward: back_op(Z, Y) ⊇ { x : op(x, y) ∈ Z, y ∈ Y }  (preimage)
//   narrow:   narrow_rel(X, Y) keeps every (x, y) with x rel y
// Exhaustive at small widths (every interval pair of a width enumerated),
// randomized with rail-endpoint intervals at int64 scale where exhaustion
// is impossible. FME verdicts are checked against a naive enumerator over
// the variable boxes, and FME models against the constraint system.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace rtlsat::fuzz {

// Enumerates every sub-interval pair of ⟨0, 2^width − 1⟩ and checks every
// fwd_*/back_*/narrow_* rule's containment contract against brute-force
// image/preimage computation. Returns violation descriptions (empty =
// sound). `checks`, when non-null, receives the number of individual
// (rule, interval-tuple) contracts tested — the unit tests assert it to
// guard against the suite silently going vacuous. Practical for width ≤ 5;
// cost grows as O(16^width) for the 3-interval backward rules.
std::vector<std::string> exhaustive_interval_check(int width,
                                                   std::int64_t* checks = nullptr);

// Randomized interval-rule probing at widths and magnitudes exhaustion
// cannot reach: random (incl. rail-touching) intervals, containment checked
// against sampled concrete operands with __int128 ground truth for the
// wrapping ops. Returns violations.
std::vector<std::string> fuzz_interval_ops(Rng& rng, int iterations);

// Random small FME systems (≤ 4 vars, ≤ 6 constraints, coefficients in
// [−3, 3]) decided both by fme::Solver and by enumerating the variable
// boxes; verdicts must match and SAT models must satisfy every constraint.
// Returns violations.
std::vector<std::string> fuzz_fme(Rng& rng, int iterations);

}  // namespace rtlsat::fuzz
