#include "fuzz/reduce.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "ir/analysis.h"
#include "parser/rtl_format.h"
#include "util/assert.h"

namespace rtlsat::fuzz {

using ir::Circuit;
using ir::NetId;
using ir::Node;
using ir::Op;

namespace {

// One shrinking rewrite: when the rebuild walk reaches `target`, it emits
// `replacement` instead — either another net of the old circuit (operand
// hoisting) or a fresh constant.
struct Rewrite {
  NetId target = ir::kNoNet;
  NetId redirect = ir::kNoNet;  // old-circuit net to use instead, or
  std::int64_t const_value = 0;  // … a constant of the target's width
  bool to_const = false;
};

// Rebuilds `old` into a fresh circuit through the checked builder API,
// applying at most one rewrite. The builder's hash-consing and constant
// folding do the actual shrinking: a rewrite that makes logic dead or
// foldable pays off here. By default only the goal cone survives; with
// `keep_dead` every net is re-emitted, because some interestingness
// predicates (the oracle's interval-soundness audit) observe nets outside
// the goal cone. Returns the new goal net.
NetId rebuild(const Circuit& old, NetId old_goal, const Rewrite* rewrite,
              Circuit& fresh, bool keep_dead = false) {
  std::unordered_map<NetId, NetId> map;
  // Explicit DFS; BMC-unrolled instances are deep enough to distrust the
  // call stack.
  struct Frame {
    NetId id;
    std::size_t next_operand = 0;
  };
  std::vector<Frame> stack;

  auto resolve = [&](NetId id) {
    // Apply the rewrite at lookup time so every use of the target is
    // redirected, including the goal itself.
    while (rewrite != nullptr && !rewrite->to_const && id == rewrite->target)
      id = rewrite->redirect;
    return id;
  };

  auto emit = [&](NetId id) {
    const Node& n = old.node(id);
    if (rewrite != nullptr && rewrite->to_const && id == rewrite->target) {
      map[id] = fresh.add_const(rewrite->const_value, n.width);
      return;
    }
    auto op = [&](std::size_t i) { return map.at(resolve(n.operands[i])); };
    NetId out = ir::kNoNet;
    switch (n.op) {
      case Op::kInput:
        out = fresh.add_input(old.net_name(id), n.width);
        break;
      case Op::kConst:
        out = fresh.add_const(n.imm, n.width);
        break;
      case Op::kAnd:
      case Op::kOr: {
        std::vector<NetId> ops;
        ops.reserve(n.operands.size());
        for (std::size_t i = 0; i < n.operands.size(); ++i)
          ops.push_back(op(i));
        out = n.op == Op::kAnd ? fresh.add_and(std::move(ops))
                               : fresh.add_or(std::move(ops));
        break;
      }
      case Op::kNot: out = fresh.add_not(op(0)); break;
      case Op::kXor: out = fresh.add_xor(op(0), op(1)); break;
      case Op::kMux: out = fresh.add_mux(op(0), op(1), op(2)); break;
      case Op::kAdd: out = fresh.add_add(op(0), op(1)); break;
      case Op::kSub: out = fresh.add_sub(op(0), op(1)); break;
      case Op::kMulC: out = fresh.add_mulc(op(0), n.imm); break;
      case Op::kShlC: out = fresh.add_shl(op(0), static_cast<int>(n.imm)); break;
      case Op::kShrC: out = fresh.add_shr(op(0), static_cast<int>(n.imm)); break;
      case Op::kNotW: out = fresh.add_notw(op(0)); break;
      case Op::kConcat: out = fresh.add_concat(op(0), op(1)); break;
      case Op::kExtract:
        out = fresh.add_extract(op(0), static_cast<int>(n.imm),
                                static_cast<int>(n.imm2));
        break;
      case Op::kZext: out = fresh.add_zext(op(0), n.width); break;
      case Op::kMin: out = fresh.add_min_raw(op(0), op(1)); break;
      case Op::kMax: out = fresh.add_max_raw(op(0), op(1)); break;
      case Op::kEq: out = fresh.add_eq_raw(op(0), op(1)); break;
      case Op::kNe: out = fresh.add_ne(op(0), op(1)); break;
      case Op::kLt: out = fresh.add_lt(op(0), op(1)); break;
      case Op::kLe: out = fresh.add_le(op(0), op(1)); break;
    }
    map[id] = out;
  };

  const NetId root = resolve(old_goal);
  stack.push_back({root});
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (map.count(f.id) != 0) {
      stack.pop_back();
      continue;
    }
    const Node& n = old.node(f.id);
    const bool leaf_rewrite =
        rewrite != nullptr && rewrite->to_const && f.id == rewrite->target;
    if (!leaf_rewrite && f.next_operand < n.operands.size()) {
      const NetId child = resolve(n.operands[f.next_operand++]);
      if (map.count(child) == 0) stack.push_back({child});
      continue;
    }
    emit(f.id);
    stack.pop_back();
  }
  if (keep_dead) {
    // Net ids are topological (operands precede users), so an id-order
    // sweep finds every operand already mapped. A redirected rewrite
    // target is never emitted — resolve() routes its uses elsewhere.
    for (NetId id = 0; id < old.num_nets(); ++id) {
      if (map.count(id) != 0) continue;
      if (rewrite != nullptr && !rewrite->to_const && id == rewrite->target)
        continue;
      emit(id);
    }
  }
  return map.at(root);
}

// Candidate rewrites for one net, cheapest-win first: constants beat
// operand hoists because they kill the whole operand cone.
void push_candidates(const Circuit& c, NetId id, std::vector<Rewrite>& out) {
  const Node& n = c.node(id);
  if (n.op == Op::kInput || n.op == Op::kConst) {
    if (n.op == Op::kInput) {
      Rewrite r;
      r.target = id;
      r.to_const = true;
      r.const_value = 0;
      out.push_back(r);
    }
    return;
  }
  const std::int64_t top = (std::int64_t{1} << n.width) - 1;
  for (const std::int64_t v : {std::int64_t{0}, std::int64_t{1}, top}) {
    if (v > top) continue;
    Rewrite r;
    r.target = id;
    r.to_const = true;
    r.const_value = v;
    out.push_back(r);
    if (v == 1 && top == 1) break;  // width 1: {0,1} only
  }
  for (const NetId operand : n.operands) {
    if (c.width(operand) != n.width) continue;
    Rewrite r;
    r.target = id;
    r.redirect = operand;
    out.push_back(r);
  }
}

// Nets to try rewrites on, highest id first (outputs before leaves) so the
// big cuts are tried before the small ones. In dead-preserving mode every
// net is a candidate, not just the goal cone.
std::vector<NetId> reduction_order(const Circuit& c, NetId goal,
                                   bool keep_dead) {
  if (keep_dead) {
    std::vector<NetId> all;
    for (NetId id = static_cast<NetId>(c.num_nets()); id-- > 0;)
      all.push_back(id);
    return all;
  }
  std::vector<NetId> cone = ir::fanin_cone(c, goal).members;
  std::reverse(cone.begin(), cone.end());
  return cone;
}

}  // namespace

ReduceResult reduce(const ir::Circuit& circuit, ir::NetId goal,
                    const Interesting& interesting,
                    const ReduceOptions& options) {
  RTLSAT_ASSERT_MSG(interesting(circuit, goal),
                    "reduce: the input instance is not interesting");
  ReduceResult result;
  result.initial_nodes = circuit.num_nets();
  // Round 0: cone extraction — rebuild with no rewrite drops dead logic and
  // re-folds. Goal-preserving but NOT always interestingness-preserving:
  // the oracle's interval audit can flag a net outside the goal cone, and
  // compacting such an instance loses the failure. Re-test, and fall back
  // to a dead-preserving rebuild (then to the untouched original) so the
  // greedy loop always starts from a still-failing instance.
  bool keep_dead = false;
  {
    Circuit compact("repro");
    const NetId g = rebuild(circuit, goal, nullptr, compact);
    if (interesting(compact, g)) {
      result.circuit = std::move(compact);
      result.goal = g;
    } else {
      keep_dead = true;
      Circuit full("repro");
      const NetId fg = rebuild(circuit, goal, nullptr, full, /*keep_dead=*/true);
      if (interesting(full, fg)) {
        result.circuit = std::move(full);
        result.goal = fg;
      } else {
        result.circuit = circuit;  // even re-folding perturbs the failure
        result.goal = goal;
      }
    }
  }

  bool changed = true;
  while (changed && result.rounds < options.max_rounds) {
    changed = false;
    ++result.rounds;
    std::vector<Rewrite> candidates;
    for (const NetId id : reduction_order(result.circuit, result.goal, keep_dead))
      push_candidates(result.circuit, id, candidates);
    for (const Rewrite& rewrite : candidates) {
      ++result.attempts;
      Circuit variant("repro");
      NetId vgoal;
      try {
        vgoal = rebuild(result.circuit, result.goal, &rewrite, variant,
                        keep_dead);
      } catch (const std::exception&) {
        continue;  // rewrite produced an ill-formed circuit; skip
      }
      // A folded-away goal is not a repro of anything.
      if (variant.node(vgoal).op == Op::kConst) continue;
      if (options.round_trip) {
        try {
          Circuit parsed = load_repro(write_repro(variant, vgoal), &vgoal);
          variant = std::move(parsed);
        } catch (const std::exception&) {
          continue;
        }
      }
      if (variant.num_nets() >= result.circuit.num_nets()) continue;
      if (!interesting(variant, vgoal)) continue;
      result.circuit = std::move(variant);
      result.goal = vgoal;
      ++result.accepted;
      changed = true;
      break;  // candidate list is stale; rescan the smaller circuit
    }
  }
  result.final_nodes = result.circuit.num_nets();
  return result;
}

std::string write_repro(const ir::Circuit& circuit, ir::NetId goal) {
  RTLSAT_ASSERT_MSG(circuit.node(goal).op != Op::kConst,
                    "write_repro: constant goal");
  Circuit copy = circuit;
  copy.set_name("repro");
  copy.set_net_name(goal, "goal");
  return parser::write_circuit(copy);
}

ir::Circuit load_repro(const std::string& text, ir::NetId* goal) {
  Circuit circuit = parser::parse_circuit(text);
  const NetId g = circuit.find_net("goal");
  RTLSAT_ASSERT_MSG(g != ir::kNoNet, "repro has no net named 'goal'");
  RTLSAT_ASSERT_MSG(circuit.is_bool(g), "repro goal is not 1-bit");
  if (goal != nullptr) *goal = g;
  return circuit;
}

ir::Circuit load_repro_file(const std::string& path, ir::NetId* goal) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return load_repro(buffer.str(), goal);
}

}  // namespace rtlsat::fuzz
