#include "prop/rules.h"

#include "interval/interval_ops.h"

namespace rtlsat::prop {

using ir::NetId;
using ir::Node;
using ir::Op;
namespace io = iops;

namespace {

constexpr Interval kTrue = Interval(1, 1);
constexpr Interval kFalse = Interval(0, 0);

// Emit helper: intersects with the current domain and records only real
// shrinkage (or emptiness, which the engine treats as a conflict).
class Emitter {
 public:
  Emitter(const std::vector<Interval>& domain, std::vector<Narrowing>& out)
      : domain_(domain), out_(out) {}

  void narrow(NetId net, const Interval& to) {
    const Interval next = domain_[net].intersect(to);
    if (next != domain_[net]) out_.push_back({net, next});
  }

  const Interval& dom(NetId net) const { return domain_[net]; }

 private:
  const std::vector<Interval>& domain_;
  std::vector<Narrowing>& out_;
};

// Three-valued view of a Boolean net.
enum class Tri { kFalse, kTrue, kUnknown };

Tri tri(const Interval& iv) {
  if (iv == kTrue) return Tri::kTrue;
  if (iv == kFalse) return Tri::kFalse;
  return Tri::kUnknown;
}

void rule_and(const ir::Circuit& c, NetId id, Emitter& em) {
  const Node& n = c.node(id);
  const Tri out = tri(em.dom(id));
  int unknown = 0;
  NetId last_unknown = ir::kNoNet;
  bool any_false = false;
  for (NetId o : n.operands) {
    switch (tri(em.dom(o))) {
      case Tri::kFalse: any_false = true; break;
      case Tri::kUnknown: ++unknown; last_unknown = o; break;
      case Tri::kTrue: break;
    }
  }
  if (any_false) {
    em.narrow(id, kFalse);
    return;
  }
  if (unknown == 0) {
    em.narrow(id, kTrue);  // all operands true
    return;
  }
  if (out == Tri::kTrue) {
    for (NetId o : n.operands) em.narrow(o, kTrue);
  } else if (out == Tri::kFalse && unknown == 1) {
    em.narrow(last_unknown, kFalse);  // the only free operand must be 0
  }
}

void rule_or(const ir::Circuit& c, NetId id, Emitter& em) {
  const Node& n = c.node(id);
  const Tri out = tri(em.dom(id));
  int unknown = 0;
  NetId last_unknown = ir::kNoNet;
  bool any_true = false;
  for (NetId o : n.operands) {
    switch (tri(em.dom(o))) {
      case Tri::kTrue: any_true = true; break;
      case Tri::kUnknown: ++unknown; last_unknown = o; break;
      case Tri::kFalse: break;
    }
  }
  if (any_true) {
    em.narrow(id, kTrue);
    return;
  }
  if (unknown == 0) {
    em.narrow(id, kFalse);
    return;
  }
  if (out == Tri::kFalse) {
    for (NetId o : n.operands) em.narrow(o, kFalse);
  } else if (out == Tri::kTrue && unknown == 1) {
    em.narrow(last_unknown, kTrue);
  }
}

void rule_not(const ir::Circuit& c, NetId id, Emitter& em) {
  const NetId a = c.node(id).operands[0];
  em.narrow(id, io::fwd_not(em.dom(a), 1));
  em.narrow(a, io::back_not(em.dom(id), 1));
}

void rule_xor(const ir::Circuit& c, NetId id, Emitter& em) {
  const Node& n = c.node(id);
  const Tri a = tri(em.dom(n.operands[0]));
  const Tri b = tri(em.dom(n.operands[1]));
  const Tri z = tri(em.dom(id));
  auto as_iv = [](bool v) { return v ? kTrue : kFalse; };
  auto known = [](Tri t) { return t != Tri::kUnknown; };
  auto val = [](Tri t) { return t == Tri::kTrue; };
  if (known(a) && known(b)) em.narrow(id, as_iv(val(a) != val(b)));
  if (known(z) && known(a)) em.narrow(n.operands[1], as_iv(val(z) != val(a)));
  if (known(z) && known(b)) em.narrow(n.operands[0], as_iv(val(z) != val(b)));
}

void rule_mux(const ir::Circuit& c, NetId id, Emitter& em) {
  const Node& n = c.node(id);
  const NetId sel = n.operands[0];
  const NetId t = n.operands[1];
  const NetId e = n.operands[2];
  switch (tri(em.dom(sel))) {
    case Tri::kTrue:
      em.narrow(id, em.dom(t));
      em.narrow(t, em.dom(id));
      return;
    case Tri::kFalse:
      em.narrow(id, em.dom(e));
      em.narrow(e, em.dom(id));
      return;
    case Tri::kUnknown:
      break;
  }
  // Select undecided: the output can only come from one of the branches.
  em.narrow(id, em.dom(t).hull(em.dom(e)));
  // Branch incompatible with the required output ⟹ select is forced
  // (this is exactly the §4.2 example: w4∩w2 = ∅ implies the other branch).
  const bool t_possible = em.dom(t).intersects(em.dom(id));
  const bool e_possible = em.dom(e).intersects(em.dom(id));
  if (!t_possible && !e_possible) {
    em.narrow(id, Interval::empty());
  } else if (!t_possible) {
    em.narrow(sel, kFalse);
  } else if (!e_possible) {
    em.narrow(sel, kTrue);
  }
}

void rule_add(const ir::Circuit& c, NetId id, Emitter& em) {
  const Node& n = c.node(id);
  const NetId a = n.operands[0];
  const NetId b = n.operands[1];
  const int w = n.width;
  em.narrow(id, io::fwd_add_wrap(em.dom(a), em.dom(b), w));
  em.narrow(a, io::back_add_wrap_x(em.dom(id), em.dom(b), em.dom(a), w));
  em.narrow(b, io::back_add_wrap_x(em.dom(id), em.dom(a), em.dom(b), w));
}

void rule_sub(const ir::Circuit& c, NetId id, Emitter& em) {
  const Node& n = c.node(id);
  const NetId a = n.operands[0];
  const NetId b = n.operands[1];
  const int w = n.width;
  em.narrow(id, io::fwd_sub_wrap(em.dom(a), em.dom(b), w));
  em.narrow(a, io::back_sub_wrap_x(em.dom(id), em.dom(b), em.dom(a), w));
  em.narrow(b, io::back_sub_wrap_y(em.dom(id), em.dom(a), em.dom(b), w));
}

void rule_mulc(const ir::Circuit& c, NetId id, Emitter& em) {
  const Node& n = c.node(id);
  const NetId a = n.operands[0];
  const Interval::Value m = Interval::Value{1} << n.width;
  const Interval product = io::fwd_mul_const(em.dom(a), n.imm);
  em.narrow(id, io::fwd_mod(product, m));
  // Backward only when the product provably does not wrap.
  if (product.hi() < m) em.narrow(a, io::back_mul_const(em.dom(id), n.imm));
}

void rule_shl(const ir::Circuit& c, NetId id, Emitter& em) {
  const Node& n = c.node(id);
  const NetId a = n.operands[0];
  const int k = static_cast<int>(n.imm);
  em.narrow(id, io::fwd_shl(em.dom(a), k, n.width));
  const Interval product =
      io::fwd_mul_const(em.dom(a), Interval::Value{1} << k);
  if (product.hi() < (Interval::Value{1} << n.width))
    em.narrow(a, io::back_mul_const(em.dom(id), Interval::Value{1} << k));
}

void rule_shr(const ir::Circuit& c, NetId id, Emitter& em) {
  const Node& n = c.node(id);
  const NetId a = n.operands[0];
  const int k = static_cast<int>(n.imm);
  em.narrow(id, io::fwd_lshr(em.dom(a), k));
  em.narrow(a, io::back_lshr(em.dom(id), k));
}

void rule_notw(const ir::Circuit& c, NetId id, Emitter& em) {
  const Node& n = c.node(id);
  const NetId a = n.operands[0];
  em.narrow(id, io::fwd_not(em.dom(a), n.width));
  em.narrow(a, io::back_not(em.dom(id), n.width));
}

void rule_concat(const ir::Circuit& c, NetId id, Emitter& em) {
  const Node& n = c.node(id);
  const NetId hi = n.operands[0];
  const NetId lo = n.operands[1];
  const int lw = c.width(lo);
  em.narrow(id, io::fwd_concat(em.dom(hi), em.dom(lo), lw));
  em.narrow(hi, io::back_concat_hi(em.dom(id), lw));
  em.narrow(lo, io::back_concat_lo(em.dom(id), em.dom(hi), em.dom(lo), lw));
}

void rule_extract(const ir::Circuit& c, NetId id, Emitter& em) {
  const Node& n = c.node(id);
  const NetId a = n.operands[0];
  const int hi_bit = static_cast<int>(n.imm);
  const int lo_bit = static_cast<int>(n.imm2);
  em.narrow(id, io::fwd_extract(em.dom(a), hi_bit, lo_bit));
  em.narrow(a, io::back_extract(em.dom(id), em.dom(a), hi_bit, lo_bit));
}

void rule_zext(const ir::Circuit& c, NetId id, Emitter& em) {
  const NetId a = c.node(id).operands[0];
  em.narrow(id, em.dom(a));
  em.narrow(a, em.dom(id));
}

void rule_min(const ir::Circuit& c, NetId id, Emitter& em) {
  const Node& n = c.node(id);
  const NetId a = n.operands[0];
  const NetId b = n.operands[1];
  em.narrow(id, io::fwd_min(em.dom(a), em.dom(b)));
  em.narrow(a, io::back_min_x(em.dom(id), em.dom(b), em.dom(a)));
  em.narrow(b, io::back_min_x(em.dom(id), em.dom(a), em.dom(b)));
}

void rule_max(const ir::Circuit& c, NetId id, Emitter& em) {
  const Node& n = c.node(id);
  const NetId a = n.operands[0];
  const NetId b = n.operands[1];
  em.narrow(id, io::fwd_max(em.dom(a), em.dom(b)));
  em.narrow(a, io::back_max_x(em.dom(id), em.dom(b), em.dom(a)));
  em.narrow(b, io::back_max_x(em.dom(id), em.dom(a), em.dom(b)));
}

void rule_cmp(const ir::Circuit& c, NetId id, Emitter& em) {
  const Node& n = c.node(id);
  const NetId x = n.operands[0];
  const NetId y = n.operands[1];
  const Interval dx = em.dom(x);
  const Interval dy = em.dom(y);

  // Forward: decide the predicate from the operand intervals when possible.
  switch (n.op) {
    case Op::kEq: em.narrow(id, io::fwd_eq(dx, dy)); break;
    case Op::kNe: em.narrow(id, io::fwd_not(io::fwd_eq(dx, dy), 1)); break;
    case Op::kLt: em.narrow(id, io::fwd_lt(dx, dy)); break;
    case Op::kLe: em.narrow(id, io::fwd_le(dx, dy)); break;
    default: RTLSAT_UNREACHABLE("not a comparator");
  }

  // Backward: a decided predicate narrows both operands (Eq. (3) family).
  const Tri out = tri(em.dom(id));
  if (out == Tri::kUnknown) return;
  const bool v = out == Tri::kTrue;
  io::Pair p;
  switch (n.op) {
    case Op::kEq: p = v ? io::narrow_eq(dx, dy) : io::narrow_ne(dx, dy); break;
    case Op::kNe: p = v ? io::narrow_ne(dx, dy) : io::narrow_eq(dx, dy); break;
    case Op::kLt:
      if (v) {
        p = io::narrow_lt(dx, dy);
      } else {  // ¬(x<y) ⟺ y ≤ x
        auto q = io::narrow_le(dy, dx);
        p = {q.y, q.x};
      }
      break;
    case Op::kLe:
      if (v) {
        p = io::narrow_le(dx, dy);
      } else {  // ¬(x≤y) ⟺ y < x
        auto q = io::narrow_lt(dy, dx);
        p = {q.y, q.x};
      }
      break;
    default: RTLSAT_UNREACHABLE("not a comparator");
  }
  em.narrow(x, p.x);
  em.narrow(y, p.y);
}

}  // namespace

void node_rules(const ir::Circuit& circuit, NetId id,
                const std::vector<Interval>& domain,
                std::vector<Narrowing>& out) {
  Emitter em(domain, out);
  switch (circuit.node(id).op) {
    case Op::kInput: return;
    case Op::kConst: return;  // pinned at initialization
    case Op::kAnd: return rule_and(circuit, id, em);
    case Op::kOr: return rule_or(circuit, id, em);
    case Op::kNot: return rule_not(circuit, id, em);
    case Op::kXor: return rule_xor(circuit, id, em);
    case Op::kMux: return rule_mux(circuit, id, em);
    case Op::kAdd: return rule_add(circuit, id, em);
    case Op::kSub: return rule_sub(circuit, id, em);
    case Op::kMulC: return rule_mulc(circuit, id, em);
    case Op::kShlC: return rule_shl(circuit, id, em);
    case Op::kShrC: return rule_shr(circuit, id, em);
    case Op::kNotW: return rule_notw(circuit, id, em);
    case Op::kConcat: return rule_concat(circuit, id, em);
    case Op::kExtract: return rule_extract(circuit, id, em);
    case Op::kZext: return rule_zext(circuit, id, em);
    case Op::kMin: return rule_min(circuit, id, em);
    case Op::kMax: return rule_max(circuit, id, em);
    case Op::kEq:
    case Op::kNe:
    case Op::kLt:
    case Op::kLe: return rule_cmp(circuit, id, em);
  }
}

}  // namespace rtlsat::prop
