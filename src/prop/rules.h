// Per-operator hybrid constraint propagation rules (paper §2.2, §4.2).
//
// For one circuit node, node_rules() reads the current intervals of the
// node's output and operand nets and emits every narrowing the operator's
// semantics implies — forward onto the output and backward onto the
// operands. Rules are sound over-approximations; running them to fixpoint
// over all nodes yields bounds consistency. They never *widen*: each
// emitted interval is already intersected with the net's current one.
//
// Emitting an empty interval signals that the constraint is violated under
// the current domains (a conflict).
#pragma once

#include <vector>

#include "interval/interval.h"
#include "ir/circuit.h"

namespace rtlsat::prop {

struct Narrowing {
  ir::NetId net = ir::kNoNet;
  Interval interval;  // new (smaller or equal) interval for `net`
};

// Appends the narrowings implied by node `id` to `out`. `domain` is indexed
// by net id and must cover the whole circuit.
void node_rules(const ir::Circuit& circuit, ir::NetId id,
                const std::vector<Interval>& domain,
                std::vector<Narrowing>& out);

}  // namespace rtlsat::prop
