#include "prop/engine.h"

#include "ir/analysis.h"
#include "trace/trace.h"
#include "util/log.h"

namespace rtlsat::prop {

using ir::NetId;

Engine::Engine(const ir::Circuit& circuit)
    : circuit_(circuit),
      fanout_(ir::fanouts(circuit)),
      latest_(circuit.num_nets(), -1),
      in_queue_(circuit.num_nets(), false),
      tracer_(&trace::global()) {
  domain_.reserve(circuit.num_nets());
  for (NetId id = 0; id < circuit.num_nets(); ++id) {
    const ir::Node& n = circuit.node(id);
    // Constants are pinned from the start; everything else gets its full
    // width domain. Initial domains are universal facts and need no events.
    domain_.push_back(n.op == ir::Op::kConst ? Interval::point(n.imm)
                                             : circuit.domain(id));
  }
  // Seed the queue with every node so the first propagate() establishes
  // bounds consistency over the untouched circuit — constant-fed nodes
  // (a concat of a pinned high part, a comparator against a constant)
  // must tighten before the first decision, or the structural strategy
  // justifies operators that were never really free.
  for (NetId id = 0; id < circuit.num_nets(); ++id) enqueue_node(id);
}

void Engine::sync_circuit() {
  RTLSAT_ASSERT_MSG(level_ == 0, "sync_circuit: engine must be at root level");
  const NetId old_nets = static_cast<NetId>(domain_.size());
  if (old_nets == circuit_.num_nets()) return;
  fanout_ = ir::fanouts(circuit_);
  domain_.reserve(circuit_.num_nets());
  latest_.resize(circuit_.num_nets(), -1);
  in_queue_.resize(circuit_.num_nets(), false);
  for (NetId id = old_nets; id < circuit_.num_nets(); ++id) {
    const ir::Node& n = circuit_.node(id);
    domain_.push_back(n.op == ir::Op::kConst ? Interval::point(n.imm)
                                             : circuit_.domain(id));
    // New nodes read old (possibly already-narrowed) nets; queue them so
    // the next propagate() tightens the appended logic. Old nodes need no
    // re-examination: their operand domains did not change.
    enqueue_node(id);
  }
}

void Engine::enqueue_all_nodes() {
  for (NetId id = 0; id < static_cast<NetId>(domain_.size()); ++id)
    enqueue_node(id);
}

bool Engine::narrow(NetId net, const Interval& to, ReasonKind kind,
                    std::uint32_t reason_id,
                    std::vector<std::int32_t> antecedents) {
  RTLSAT_ASSERT(!conflict_.valid);
  const Interval next = domain_[net].intersect(to);
  if (next == domain_[net]) return true;
  if (next.is_empty()) {
    conflict_.valid = true;
    conflict_.kind = kind;
    conflict_.reason_id = reason_id;
    conflict_.net = net;
    conflict_.antecedents = std::move(antecedents);
    if (latest_[net] >= 0) conflict_.antecedents.push_back(latest_[net]);
    tracer_->record(trace::EventKind::kPropConflict, level_, net,
                    static_cast<std::int64_t>(kind));
    return false;
  }
  record_event(net, next, kind, reason_id, std::move(antecedents));
  return true;
}

void Engine::record_event(NetId net, const Interval& next, ReasonKind kind,
                          std::uint32_t reason_id,
                          std::vector<std::int32_t> antecedents) {
  Event ev;
  ev.net = net;
  ev.prev = domain_[net];
  ev.cur = next;
  ev.level = level_;
  ev.kind = kind;
  ev.reason_id = reason_id;
  ev.prev_on_net = latest_[net];
  ev.antecedents = std::move(antecedents);
  latest_[net] = static_cast<std::int32_t>(trail_.size());
  domain_[net] = next;
  if (!circuit_.is_bool(net)) ++num_datapath_narrowings_;
  if (tracer_->verbose()) {
    tracer_->record(trace::EventKind::kNarrowing, level_, net,
                    static_cast<std::int64_t>(next.count()));
  }
  trail_.push_back(std::move(ev));
  antecedent_bytes_ += static_cast<std::int64_t>(
      trail_.back().antecedents.capacity() * sizeof(std::int32_t));
  enqueue_neighbourhood(net);
}

void Engine::enqueue_node(NetId node) {
  if (!in_queue_[node]) {
    in_queue_[node] = true;
    queue_.push_back(node);
  }
}

void Engine::enqueue_neighbourhood(NetId net) {
  enqueue_node(net);  // the driver node re-examines its own inputs
  for (NetId reader : fanout_[net]) enqueue_node(reader);
}

std::vector<std::int32_t> Engine::incident_events(NetId node,
                                                  NetId skip) const {
  std::vector<std::int32_t> events;
  auto add = [&](NetId n) {
    if (n == skip) return;
    const std::int32_t e = latest_[n];
    if (e >= 0) events.push_back(e);
  };
  add(node);
  for (NetId o : circuit_.node(node).operands) add(o);
  return events;
}

bool Engine::propagate() {
  RTLSAT_ASSERT(!conflict_.valid);
  while (!queue_.empty()) {
    // Early out on cancellation/deadline: sound because the queue keeps its
    // pending work (see set_stop's contract in the header).
    if (stop_ != nullptr && --stop_countdown_ <= 0) {
      stop_countdown_ = kStopCheckInterval;
      if (stop_->stop_requested()) return true;
    }
    const NetId node = queue_.back();
    queue_.pop_back();
    in_queue_[node] = false;
    ++num_propagations_;

    scratch_.clear();
    node_rules(circuit_, node, domain_, scratch_);
    for (const Narrowing& nw : scratch_) {
      if (nw.interval.is_empty()) {
        conflict_.valid = true;
        conflict_.kind = ReasonKind::kNode;
        conflict_.reason_id = node;
        conflict_.net = nw.net;
        conflict_.antecedents = incident_events(node, ir::kNoNet);
        tracer_->record(trace::EventKind::kPropConflict, level_, nw.net,
                        static_cast<std::int64_t>(ReasonKind::kNode));
        // Drain the queue flags so a later propagate() starts clean.
        for (NetId q : queue_) in_queue_[q] = false;
        queue_.clear();
        return false;
      }
      // The rule result was computed against the domains as they were when
      // node_rules ran; an earlier narrowing in this same batch may already
      // have tightened the net further, so re-intersect.
      const Interval next = domain_[nw.net].intersect(nw.interval);
      if (next == domain_[nw.net]) continue;
      record_event(nw.net, next, ReasonKind::kNode, node,
                   incident_events(node, nw.net));
    }
  }
  return true;
}

void Engine::rollback_to(std::size_t mark) {
  RTLSAT_ASSERT(mark <= trail_.size());
  low_water_ = std::min(low_water_, mark);
  while (trail_.size() > mark) {
    const Event& ev = trail_.back();
    domain_[ev.net] = ev.prev;
    latest_[ev.net] = ev.prev_on_net;
    antecedent_bytes_ -= static_cast<std::int64_t>(
        ev.antecedents.capacity() * sizeof(std::int32_t));
    trail_.pop_back();
  }
  for (NetId q : queue_) in_queue_[q] = false;
  queue_.clear();
  conflict_ = Conflict{};
}

void Engine::backtrack_to_level(std::uint32_t level) {
  std::size_t keep = trail_.size();
  while (keep > 0 && trail_[keep - 1].level > level) --keep;
  rollback_to(keep);
  level_ = level;
}

std::vector<std::int32_t> Engine::all_antecedents(
    std::int32_t event_index) const {
  RTLSAT_ASSERT(event_index >= 0 &&
                static_cast<std::size_t>(event_index) < trail_.size());
  const Event& ev = trail_[event_index];
  std::vector<std::int32_t> result = ev.antecedents;
  if (ev.prev_on_net >= 0) result.push_back(ev.prev_on_net);
  return result;
}

bool Engine::all_booleans_assigned() const {
  for (NetId id = 0; id < circuit_.num_nets(); ++id) {
    if (circuit_.is_bool(id) && !domain_[id].is_point()) return false;
  }
  return true;
}

}  // namespace rtlsat::prop
