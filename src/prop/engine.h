// Event-driven hybrid constraint propagation engine with an implication
// trail (paper §2.2 and the Ddeduce()/implication-graph machinery of §2.4).
//
// The engine owns one interval per net and runs the per-operator rules of
// prop/rules.h to a bounds-consistency fixpoint. Every narrowing is logged
// as a trail Event carrying its *reason* (which node or clause implied it)
// and its *antecedents* (indices of the trail events whose intervals fed
// the rule). The trail is exactly the hybrid implication graph IG(N,E):
// nodes are events, edges run from antecedent to consequence.
//
// Narrowings are monotonic (intervals only shrink) so the fixpoint
// terminates on the finite circuit domains, and the trail supports
// chronological undo for backtracking and for the probe/rollback cycle of
// §3's recursive learning.
#pragma once

#include <cstdint>
#include <vector>

#include "interval/interval.h"
#include "ir/circuit.h"
#include "prop/rules.h"
#include "util/stop_token.h"

namespace rtlsat::trace {
class Tracer;
}  // namespace rtlsat::trace

namespace rtlsat::prop {

enum class ReasonKind : std::uint8_t {
  kAssumption,  // external fact, e.g. the proposition under test (level 0)
  kDecision,    // a Decide() assignment
  kNode,        // implied by a circuit operator (reason_id = node net)
  kClause,      // implied by a hybrid clause (reason_id = clause index)
};

// One narrowing on the trail. prev_on_net chains the events of a single
// net; `antecedents` lists the latest events of the other nets that entered
// the implying rule (−1-free; initial full domains need no antecedent).
struct Event {
  ir::NetId net = ir::kNoNet;
  Interval prev;
  Interval cur;
  std::uint32_t level = 0;
  ReasonKind kind = ReasonKind::kAssumption;
  std::uint32_t reason_id = 0;
  std::int32_t prev_on_net = -1;
  std::vector<std::int32_t> antecedents;

  // A Boolean assignment event: a 1-bit net narrowed to a point.
  bool is_bool_assignment() const { return cur.is_point() && prev.count() == 2; }
};

// What contradicted what when propagation hit an empty interval.
struct Conflict {
  bool valid = false;
  ReasonKind kind = ReasonKind::kNode;
  std::uint32_t reason_id = 0;
  ir::NetId net = ir::kNoNet;               // the net that went empty
  std::vector<std::int32_t> antecedents;    // events jointly responsible
};

class Engine {
 public:
  explicit Engine(const ir::Circuit& circuit);

  const ir::Circuit& circuit() const { return circuit_; }

  const Interval& interval(ir::NetId net) const { return domain_[net]; }
  // −1 unassigned, else 0/1. Net must be 1-bit.
  int bool_value(ir::NetId net) const {
    const Interval& d = domain_[net];
    if (!d.is_point()) return -1;
    return static_cast<int>(d.lo());
  }

  std::uint32_t level() const { return level_; }
  void push_level() { ++level_; }

  // Adopts nets appended to the circuit since construction (the circuit is
  // append-only, so existing ids keep their meaning): extends the domain /
  // event bookkeeping, recomputes fanouts (old nets may have gained
  // readers), and queues the new nodes so the next propagate() makes the
  // grown circuit bounds consistent. Level 0 only — the level-0 trail
  // survives untouched, which is exactly what incremental BMC reuses.
  void sync_circuit();

  // Re-queues every node for examination. Needed when a previous
  // propagation round was abandoned mid-flight (a stop token fired and the
  // queue was later cleared by a rollback): the domains are sound but the
  // fixpoint was never reached, so seed the queue as the constructor does.
  void enqueue_all_nodes();

  // Externally narrow a net (assumption, decision, or clause implication).
  // Returns false and records a conflict when the result is empty. A
  // narrowing that does not change the interval is a silent no-op.
  bool narrow(ir::NetId net, const Interval& to, ReasonKind kind,
              std::uint32_t reason_id = 0,
              std::vector<std::int32_t> antecedents = {});

  // Runs node rules to fixpoint. Returns false on conflict.
  bool propagate();

  bool in_conflict() const { return conflict_.valid; }
  const Conflict& conflict() const { return conflict_; }
  void clear_conflict() { conflict_ = Conflict{}; }
  // Records an externally detected conflict (e.g. an all-false hybrid
  // clause, which has no single net to narrow).
  void fail(Conflict conflict) {
    RTLSAT_ASSERT(!conflict_.valid);
    conflict_ = std::move(conflict);
    conflict_.valid = true;
  }

  const std::vector<Event>& trail() const { return trail_; }
  // Latest event on a net; −1 when the net still has its initial domain.
  std::int32_t latest_event(ir::NetId net) const { return latest_[net]; }

  std::size_t mark() const { return trail_.size(); }
  // Undoes all events at trail index ≥ mark and clears any conflict.
  void rollback_to(std::size_t mark);
  // Lowest trail size reached since the previous call (single consumer:
  // the clause database uses it to rewind its trail cursor past events
  // undone by backtracking — a plain clamp to the current size is not
  // enough, because new events may already have replaced the undone ones).
  std::size_t consume_trail_low_water() {
    const std::size_t low = std::min(low_water_, trail_.size());
    low_water_ = trail_.size();
    return low;
  }
  // Undoes all events with level > `level` (events are level-monotone along
  // the trail) and makes `level` current.
  void backtrack_to_level(std::uint32_t level);

  // Antecedent events of `event_index`: its recorded antecedents plus the
  // chain predecessor on the same net.
  std::vector<std::int32_t> all_antecedents(std::int32_t event_index) const;

  // True when every 1-bit net inside `mask` (or everywhere if empty) is
  // assigned. Word nets may still be non-point — that is the FME solver's
  // part of the search (§2.4).
  bool all_booleans_assigned() const;

  std::int64_t num_propagations() const { return num_propagations_; }
  std::int64_t num_datapath_narrowings() const {
    return num_datapath_narrowings_;
  }

  // Instrumented heap accounting for the metrics sampler (O(1) reads; see
  // src/metrics/memory.h). The implication graph is the trail plus the
  // per-event antecedent arrays, tracked incrementally as events are
  // recorded and rolled back; the interval store is the domain vector.
  std::int64_t implication_graph_bytes() const {
    return static_cast<std::int64_t>(trail_.capacity() * sizeof(Event)) +
           antecedent_bytes_;
  }
  std::int64_t interval_store_bytes() const {
    return static_cast<std::int64_t>(domain_.capacity() * sizeof(Interval));
  }

  // Observability: conflicts are recorded as kPropConflict events and, when
  // the tracer is verbose, every narrowing as a kNarrowing event. Defaults
  // to trace::global() (disabled unless RTLSAT_TRACE is set); the owning
  // solver overrides it with its own tracer. Never null.
  void set_tracer(trace::Tracer* tracer) {
    RTLSAT_ASSERT(tracer != nullptr);
    tracer_ = tracer;
  }
  trace::Tracer* tracer() const { return tracer_; }

  // Cooperative cancellation: when set, propagate() polls the token every
  // few thousand queue pops and, if it fired, returns true EARLY — no
  // conflict, but also no fixpoint (the queue keeps its pending work, so a
  // later propagate() resumes correctly). Callers that install a token must
  // therefore re-check it after every propagation round before trusting
  // bounds consistency; HdpllSolver does exactly that. Null = never stop.
  void set_stop(const StopToken* stop) { stop_ = stop; }

 private:
  void record_event(ir::NetId net, const Interval& next, ReasonKind kind,
                    std::uint32_t reason_id,
                    std::vector<std::int32_t> antecedents);
  void enqueue_neighbourhood(ir::NetId net);
  void enqueue_node(ir::NetId node);
  // Latest events of all nets incident to `node` (operands + output),
  // optionally skipping `skip`.
  std::vector<std::int32_t> incident_events(ir::NetId node,
                                            ir::NetId skip) const;

  const ir::Circuit& circuit_;
  std::vector<Interval> domain_;
  std::vector<std::vector<ir::NetId>> fanout_;
  std::vector<Event> trail_;
  std::vector<std::int32_t> latest_;
  std::vector<ir::NetId> queue_;
  std::vector<bool> in_queue_;
  Conflict conflict_;
  trace::Tracer* tracer_;
  const StopToken* stop_ = nullptr;
  std::int32_t stop_countdown_ = kStopCheckInterval;
  static constexpr std::int32_t kStopCheckInterval = 4096;
  std::size_t low_water_ = 0;
  std::uint32_t level_ = 0;
  std::int64_t antecedent_bytes_ = 0;
  std::int64_t num_propagations_ = 0;
  std::int64_t num_datapath_narrowings_ = 0;
  std::vector<Narrowing> scratch_;
};

}  // namespace rtlsat::prop
