// Structured findings derived from a fact table — the diagnostics face of
// the analyzer. rtlsat_analyze prints them (text/JSON) and the analyzer-
// backed lint rules (src/lint) re-emit them as warnings.
#pragma once

#include <string>
#include <vector>

#include "interval/interval.h"
#include "ir/circuit.h"
#include "presolve/facts.h"

namespace rtlsat::presolve {

struct Finding {
  enum class Kind {
    kConstantNet,         // non-source net with a proven point value
    kConstantComparator,  // comparator with a proven verdict
    kDeadMuxArm,          // mux arm that can never be selected
    kOversizedNet,        // net wider than its proven value range needs
  };
  Kind kind = Kind::kConstantNet;
  ir::NetId net = ir::kNoNet;
  Interval range;       // the fact backing the finding
  std::string message;  // human-readable, net names resolved
};

const char* kind_name(Finding::Kind kind);

// Requires unconditioned facts (diagnostics must hold for every input).
// Sorted by net id; one finding per (kind, net).
std::vector<Finding> findings(const ir::Circuit& circuit,
                              const FactTable& facts);

}  // namespace rtlsat::presolve
