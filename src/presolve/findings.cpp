#include "presolve/findings.h"

#include <bit>

#include "ir/op.h"
#include "util/assert.h"

namespace rtlsat::presolve {

namespace {

using ir::NetId;
using ir::Node;
using ir::Op;

int bits_for(Interval::Value v) {
  if (v <= 0) return 1;
  return static_cast<int>(std::bit_width(static_cast<std::uint64_t>(v)));
}

}  // namespace

const char* kind_name(Finding::Kind kind) {
  switch (kind) {
    case Finding::Kind::kConstantNet: return "constant-net";
    case Finding::Kind::kConstantComparator: return "constant-comparator";
    case Finding::Kind::kDeadMuxArm: return "dead-mux-arm";
    case Finding::Kind::kOversizedNet: return "oversized-net";
  }
  return "?";
}

std::vector<Finding> findings(const ir::Circuit& circuit,
                              const FactTable& facts) {
  RTLSAT_ASSERT_MSG(!facts.conditioned,
                    "findings need unconditioned facts");
  RTLSAT_ASSERT(facts.range.size() == circuit.num_nets());
  std::vector<Finding> out;
  const auto emit = [&](Finding::Kind kind, NetId net, std::string message) {
    Finding f;
    f.kind = kind;
    f.net = net;
    f.range = facts.range[net];
    f.message = std::move(message);
    out.push_back(std::move(f));
  };
  for (NetId id = 0; id < circuit.num_nets(); ++id) {
    const Node& n = circuit.node(id);
    if (ir::is_source(n.op)) continue;
    const Interval& r = facts.range[id];
    if (r.is_empty()) continue;
    if (r.is_point()) {
      if (ir::is_comparator(n.op)) {
        emit(Finding::Kind::kConstantComparator, id,
             "comparator " + circuit.net_name(id) + " is provably " +
                 (r.lo() == 1 ? "true" : "false"));
      } else {
        emit(Finding::Kind::kConstantNet, id,
             "net " + circuit.net_name(id) + " is provably constant " +
                 std::to_string(r.lo()));
      }
      continue;  // the width finding would be redundant for a constant
    }
    if (n.op == Op::kMux) {
      const Interval& sel = facts.range[n.operands[0]];
      if (sel.is_point()) {
        emit(Finding::Kind::kDeadMuxArm, id,
             "mux " + circuit.net_name(id) + " never selects its " +
                 (sel.lo() == 1 ? "else" : "then") + " arm (select is " +
                 std::to_string(sel.lo()) + ")");
      }
    }
    const int need = bits_for(r.hi());
    if (need < n.width) {
      emit(Finding::Kind::kOversizedNet, id,
           "net " + circuit.net_name(id) + " is " + std::to_string(n.width) +
               " bits wide but provably fits " + std::to_string(need) +
               " (range " + r.to_string() + ")");
    }
  }
  return out;
}

}  // namespace rtlsat::presolve
