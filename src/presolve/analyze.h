// Interval abstract interpretation over a netlist (the presolve analyzer).
//
// The analyzer runs the solver's own transfer functions (interval/
// interval_ops.h) as a static dataflow pass: one forward sweep in net-id
// order (the builder is append-only, so ascending ids are a topological
// order) reaches the forward fixpoint of the combinational DAG in a single
// pass; a parity sweep refines interval endpoints; and, when assumptions
// are given, a worklist loop interleaves forward re-evaluation with
// backward (inverse) narrowing until a fixpoint.
//
// Termination is by construction, not by luck:
//  * every refinement strictly shrinks an interval (the rules are
//    monotonic), and
//  * each net carries a narrowing budget (~2·width + 8); once spent,
//    further refinements of that net are ignored — keeping a larger
//    interval is always a sound over-approximation.
// So the worklist drains after at most Σ budgets refinements, independent
// of the int64-sized value lattice. docs/presolve.md works the argument
// through.
//
// Sequential circuits: reach_invariants computes a per-register interval
// invariant over-approximating every reachable state, by iterating the
// image of the comb core from the reset values with widening — a register
// bound that grows `widen_after` times on the same side jumps to the
// domain rail, so each register widens each side at most once and the
// iteration provably terminates.
#pragma once

#include <utility>
#include <vector>

#include "ir/circuit.h"
#include "ir/seq.h"
#include "presolve/facts.h"

namespace rtlsat::presolve {

struct AnalyzeOptions {
  // Per-net restrictions the facts become consequences of. Empty ⟹ the
  // result is unconditioned (valid for all inputs, usable by the
  // simplifier); non-empty ⟹ FactTable::conditioned is set.
  std::vector<std::pair<ir::NetId, Interval>> assumptions;
  // Run backward (inverse) narrowing in the worklist loop. Only meaningful
  // with assumptions: without them the forward ranges are already the
  // per-net value images. reach_invariants turns this off — it only needs
  // the forward image of the next-state nets.
  bool backward = true;
  // Per-net refinement budget; 0 = default (2·width + 8).
  int narrow_budget = 0;
};

FactTable analyze(const ir::Circuit& circuit,
                  const AnalyzeOptions& options = {});

struct ReachOptions {
  // Consecutive growths of one interval side before that side is widened
  // to its domain rail.
  int widen_after = 3;
};

// Per-register interval invariants (indexed like seq.registers()): each
// contains every value its register can hold in any reachable state.
// Sound to assume on the state nets of an unrolled circuit — every frame's
// state is reachable, so constraining it to a superset of the reachable
// values preserves the model set exactly (docs/presolve.md).
std::vector<Interval> reach_invariants(const ir::SeqCircuit& seq,
                                       const ReachOptions& options = {});

}  // namespace rtlsat::presolve
