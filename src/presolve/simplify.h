// Equivalence-preserving netlist simplification driven by analyzer facts.
//
// simplify() rebuilds the fan-in cone of the requested roots through the
// checked builder (hash-consing and constant folding cascade the wins,
// exactly like ir/transform's peephole pass), applying four fact-driven
// rewrites:
//
//  * constant substitution — a non-source net whose unconditioned range is
//    a point becomes a literal;
//  * dead-arm mux collapsing — a mux whose select is provably constant
//    forwards the live arm;
//  * comparator strength reduction — a comparator with a proven verdict
//    becomes that constant;
//  * width narrowing — an add/sub/mulc whose operands and exact (unwrapped)
//    result provably fit k < w bits is re-expressed as trunc → op at
//    width k → zext, shaving w − k carry-chain bits.
//
// Because only UNCONDITIONED facts are used (facts.h), every surviving net
// computes the same value as its source net under every input assignment:
// the returned net map transfers witnesses in both directions, which the
// fuzz presolve mode checks net by net (fuzz/oracle.h).
//
// presolve_goal() is the solver-facing driver: analyze, maybe decide the
// instance outright (a goal with a proven point range, or a conditioned
// conflict under "goal = value"), otherwise hand back the simplified
// instance plus the net map.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ir/circuit.h"
#include "presolve/facts.h"
#include "util/stats.h"

namespace rtlsat::presolve {

struct PresolveStats {
  std::int64_t nets_constant = 0;       // non-source nets turned literal
  std::int64_t mux_arms_removed = 0;    // muxes collapsed to one arm
  std::int64_t comparators_reduced = 0; // comparators with a proven verdict
  std::int64_t width_bits_shaved = 0;   // bits removed by width narrowing
  std::int64_t nets_removed = 0;        // cone nets gone after the rebuild

  // Exports as presolve.* counters (bench JSON rows, serve, portfolio).
  void add_to(Stats& stats) const;
};

struct SimplifyResult {
  ir::Circuit circuit;
  // Old net → new net computing the same value under the same inputs;
  // kNoNet for nets outside the roots' cone or dropped by the rebuild.
  std::vector<ir::NetId> net_map;
  // Images of the requested roots, in order (always mapped).
  std::vector<ir::NetId> roots;
  PresolveStats stats;
};

// Requires unconditioned facts for `circuit` (asserts on conditioned ones —
// using goal-implied facts to rewrite would break witness transfer).
SimplifyResult simplify(const ir::Circuit& circuit,
                        const std::vector<ir::NetId>& roots,
                        const FactTable& facts);

struct GoalPresolve {
  // Decided without solving: `sat` answers "goal = value". For SAT the
  // model covers every primary input (any assignment satisfies a goal whose
  // unconditioned range is the asked-for point; all-zeros is reported).
  bool decided = false;
  bool sat = false;
  std::unordered_map<ir::NetId, std::int64_t> model;

  // Undecided: the simplified instance to solve instead.
  ir::Circuit circuit;
  ir::NetId goal = ir::kNoNet;
  std::vector<ir::NetId> net_map;

  PresolveStats stats;
};

// Full presolve pipeline for one "goal = value" instance: unconditioned
// analysis (may decide), fact-driven simplification, then a conditioned
// backward pass under the goal assumption (a conflict decides UNSAT).
GoalPresolve presolve_goal(const ir::Circuit& circuit, ir::NetId goal,
                           bool value);

}  // namespace rtlsat::presolve
