// Per-net fact table produced by the presolve analyzer (analyze.h).
//
// A fact is an over-approximation of the values a net can take: a value
// interval (the same ⟨lo,hi⟩ lattice the solver's domains use, §2.1) plus a
// parity element from {unknown, even, odd}. Facts come in two strengths,
// recorded in `conditioned`:
//
//  * unconditioned — valid for EVERY input assignment. These may drive
//    equivalence-preserving rewrites (simplify.h): substituting a net the
//    facts prove constant never changes any net's value under any input.
//  * conditioned — consequences of the assumptions the analyzer was given
//    (e.g. "goal = 1"). Valid only for inputs satisfying the assumptions,
//    so they may seed solver assumptions or detect unsatisfiability
//    (`conflict`), but must never feed the simplifier.
#pragma once

#include <cstdint>
#include <vector>

#include "interval/interval.h"
#include "ir/circuit.h"

namespace rtlsat::presolve {

// Parity of a net's value, a three-element lattice ordered
// kUnknown ⊒ {kEven, kOdd}. Wrapping at any width ≥ 1 preserves parity
// (2^w is even), which is what makes the parity transfer functions exact
// through the IR's modular arithmetic.
enum class Parity : std::uint8_t { kUnknown, kEven, kOdd };

inline Parity parity_of(std::int64_t v) {
  return (v & 1) != 0 ? Parity::kOdd : Parity::kEven;
}
inline Parity flip(Parity p) {
  if (p == Parity::kEven) return Parity::kOdd;
  if (p == Parity::kOdd) return Parity::kEven;
  return Parity::kUnknown;
}

struct FactTable {
  // Indexed by NetId; always sized to the analyzed circuit's num_nets().
  std::vector<Interval> range;
  std::vector<Parity> parity;

  // True ⟹ the facts hold only for inputs satisfying the analyzer's
  // assumptions (see file comment). The simplifier rejects such tables.
  bool conditioned = false;
  // True ⟹ some net's range became empty: the assumptions are
  // unsatisfiable (meaningless when !conditioned — an unconditioned
  // conflict would mean the circuit has no behavior at all).
  bool conflict = false;

  bool is_const(ir::NetId id) const { return range[id].is_point(); }
  std::int64_t const_value(ir::NetId id) const { return range[id].lo(); }
};

}  // namespace rtlsat::presolve
