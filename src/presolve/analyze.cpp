#include "presolve/analyze.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "interval/interval_ops.h"
#include "ir/analysis.h"
#include "util/assert.h"

namespace rtlsat::presolve {

namespace {

using ir::Circuit;
using ir::NetId;
using ir::Node;
using ir::Op;

class Analyzer {
 public:
  Analyzer(const Circuit& circuit, const AnalyzeOptions& options)
      : c_(circuit), opts_(options) {}

  FactTable run() {
    const NetId n = static_cast<NetId>(c_.num_nets());
    facts_.range.resize(n);
    facts_.parity.assign(n, Parity::kUnknown);
    facts_.conditioned = !opts_.assumptions.empty();
    budget_.resize(n);
    queued_.assign(n, false);
    for (NetId id = 0; id < n; ++id) {
      budget_[id] = opts_.narrow_budget > 0 ? opts_.narrow_budget
                                            : 2 * c_.width(id) + 8;
    }
    readers_ = ir::fanouts(c_);

    // Initial forward sweep: ascending ids visit operands before readers
    // (the builder is append-only), so one pass is the DAG's fixpoint.
    for (NetId id = 0; id < n; ++id) facts_.range[id] = forward(id);
    // Parity sweep; endpoint refinements enqueue the nets they tighten.
    for (NetId id = 0; id < n; ++id) {
      facts_.parity[id] = parity_forward(id);
      refine_by_parity(id);
    }
    for (const auto& [net, iv] : opts_.assumptions) {
      RTLSAT_ASSERT(net < n);
      refine(net, iv);
    }

    while (!worklist_.empty() && !facts_.conflict) {
      const NetId id = worklist_.back();
      worklist_.pop_back();
      queued_[id] = false;
      for (const NetId r : readers_[id]) {
        refine(r, forward(r));
        if (facts_.conflict) break;
        if (backward_on()) backward(r);
        if (facts_.conflict) break;
      }
      if (facts_.conflict) break;
      if (backward_on()) backward(id);
    }
    return std::move(facts_);
  }

 private:
  bool backward_on() const { return facts_.conditioned && opts_.backward; }

  // Intersects net `id`'s range with `v`. An empty result flags a conflict
  // (conditioned mode); in unconditioned mode it would mean a transfer-
  // function bug, so the sound wider interval is kept instead. A net whose
  // narrowing budget is spent also keeps its wider interval — that is what
  // bounds the worklist (see header).
  void refine(NetId id, const Interval& v) {
    const Interval nv = facts_.range[id].intersect(v);
    if (nv == facts_.range[id]) return;
    if (nv.is_empty()) {
      if (!facts_.conditioned) return;
      facts_.range[id] = nv;
      facts_.conflict = true;
      return;
    }
    if (budget_[id] <= 0) return;
    --budget_[id];
    facts_.range[id] = nv;
    if (!queued_[id]) {
      queued_[id] = true;
      worklist_.push_back(id);
    }
  }

  Interval forward(NetId id) {
    const Node& n = c_.node(id);
    for (const NetId o : n.operands) {
      if (facts_.range[o].is_empty()) return Interval::empty();
    }
    auto X = [&](std::size_t i) -> const Interval& {
      return facts_.range[n.operands[i]];
    };
    const int w = n.width;
    Interval out;
    switch (n.op) {
      case Op::kInput:
        out = c_.domain(id);
        break;
      case Op::kConst:
        out = Interval::point(n.imm);
        break;
      case Op::kAnd: {  // n-ary AND of booleans is the componentwise min
        Interval::Value lo = 1, hi = 1;
        for (const NetId o : n.operands) {
          lo = std::min(lo, facts_.range[o].lo());
          hi = std::min(hi, facts_.range[o].hi());
        }
        out = Interval(lo, hi);
        break;
      }
      case Op::kOr: {  // … and OR is the componentwise max
        Interval::Value lo = 0, hi = 0;
        for (const NetId o : n.operands) {
          lo = std::max(lo, facts_.range[o].lo());
          hi = std::max(hi, facts_.range[o].hi());
        }
        out = Interval(lo, hi);
        break;
      }
      case Op::kNot:
        out = Interval(1 - X(0).hi(), 1 - X(0).lo());
        break;
      case Op::kXor:
        out = (X(0).is_point() && X(1).is_point())
                  ? Interval::point(X(0).lo() ^ X(1).lo())
                  : Interval::booleans();
        break;
      case Op::kMux:
        if (X(0) == Interval::point(1)) out = X(1);
        else if (X(0) == Interval::point(0)) out = X(2);
        else out = X(1).hull(X(2));
        break;
      case Op::kAdd:
        out = iops::fwd_add_wrap(X(0), X(1), w);
        break;
      case Op::kSub:
        out = iops::fwd_sub_wrap(X(0), X(1), w);
        break;
      case Op::kMulC:
        out = iops::fwd_mod(iops::fwd_mul_const(X(0), n.imm),
                            Interval::Value{1} << w);
        break;
      case Op::kShlC:
        out = iops::fwd_shl(X(0), static_cast<int>(n.imm), w);
        break;
      case Op::kShrC:
        out = iops::fwd_lshr(X(0), static_cast<int>(n.imm));
        break;
      case Op::kNotW:
        out = iops::fwd_not(X(0), w);
        break;
      case Op::kConcat:
        out = iops::fwd_concat(X(0), X(1), c_.width(n.operands[1]));
        break;
      case Op::kExtract:
        out = iops::fwd_extract(X(0), static_cast<int>(n.imm),
                                static_cast<int>(n.imm2));
        break;
      case Op::kZext:
        out = X(0);
        break;
      case Op::kMin:
        out = iops::fwd_min(X(0), X(1));
        break;
      case Op::kMax:
        out = iops::fwd_max(X(0), X(1));
        break;
      case Op::kEq:
        out = iops::fwd_eq(X(0), X(1));
        break;
      case Op::kNe: {
        const Interval e = iops::fwd_eq(X(0), X(1));
        out = Interval(1 - e.hi(), 1 - e.lo());
        break;
      }
      case Op::kLt:
        out = iops::fwd_lt(X(0), X(1));
        break;
      case Op::kLe:
        out = iops::fwd_le(X(0), X(1));
        break;
    }
    return out.intersect(c_.domain(id));
  }

  Parity parity_forward(NetId id) {
    if (facts_.range[id].is_point()) return parity_of(facts_.range[id].lo());
    const Node& n = c_.node(id);
    auto P = [&](std::size_t i) { return facts_.parity[n.operands[i]]; };
    switch (n.op) {
      case Op::kAdd:
      case Op::kSub: {
        // Wrapping at width ≥ 1 preserves the sum's parity (2^w is even).
        const Parity a = P(0), b = P(1);
        if (a == Parity::kUnknown || b == Parity::kUnknown)
          return Parity::kUnknown;
        return a == b ? Parity::kEven : Parity::kOdd;
      }
      case Op::kMulC:
        return (n.imm & 1) == 0 ? Parity::kEven : P(0);
      case Op::kShlC:
        return n.imm >= 1 ? Parity::kEven : P(0);
      case Op::kShrC:
        return n.imm == 0 ? P(0) : Parity::kUnknown;
      case Op::kNotW:
        return flip(P(0));  // 2^w − 1 − x: an odd constant minus x
      case Op::kConcat:
        return P(1);  // bit 0 comes from the low part
      case Op::kExtract:
        return n.imm2 == 0 ? P(0) : Parity::kUnknown;
      case Op::kZext:
        return P(0);
      case Op::kMux: {
        const Interval& sel = facts_.range[n.operands[0]];
        if (sel == Interval::point(1)) return P(1);
        if (sel == Interval::point(0)) return P(2);
        return P(1) == P(2) ? P(1) : Parity::kUnknown;
      }
      case Op::kMin:
      case Op::kMax:
        return P(0) == P(1) ? P(0) : Parity::kUnknown;
      default:
        return Parity::kUnknown;
    }
  }

  void refine_by_parity(NetId id) {
    const Parity p = facts_.parity[id];
    if (p == Parity::kUnknown) return;
    const Interval r = facts_.range[id];
    if (r.is_empty() || r.is_point()) return;
    Interval::Value lo = r.lo(), hi = r.hi();
    if (parity_of(lo) != p) ++lo;
    if (parity_of(hi) != p) --hi;
    if (lo > hi) return;  // sound facts never contradict; keep the range
    refine(id, Interval(lo, hi));
  }

  // Narrows the operands of node `id` from its (already refined) range.
  // Conflicts need no special casing here: any contradiction surfaces as
  // an empty intersection in refine() or in a forward re-evaluation.
  void backward(NetId id) {
    const Node& n = c_.node(id);
    if (n.operands.empty()) return;
    const Interval z = facts_.range[id];
    if (z.is_empty()) return;
    auto X = [&](std::size_t i) -> const Interval& {
      return facts_.range[n.operands[i]];
    };
    auto R = [&](std::size_t i, const Interval& v) {
      refine(n.operands[i], v);
    };
    const int w = n.width;
    switch (n.op) {
      case Op::kInput:
      case Op::kConst:
        return;
      case Op::kAnd:
        if (z == Interval::point(1)) {
          for (const NetId o : n.operands) refine(o, Interval::point(1));
        } else if (z == Interval::point(0)) {
          // All operands but one forced true ⟹ the free one is false.
          std::size_t free = n.operands.size();
          for (std::size_t i = 0; i < n.operands.size(); ++i) {
            if (X(i).lo() == 1) continue;
            if (free != n.operands.size()) return;  // two free: no narrowing
            free = i;
          }
          if (free != n.operands.size()) R(free, Interval::point(0));
        }
        return;
      case Op::kOr:
        if (z == Interval::point(0)) {
          for (const NetId o : n.operands) refine(o, Interval::point(0));
        } else if (z == Interval::point(1)) {
          std::size_t free = n.operands.size();
          for (std::size_t i = 0; i < n.operands.size(); ++i) {
            if (X(i).hi() == 0) continue;
            if (free != n.operands.size()) return;
            free = i;
          }
          if (free != n.operands.size()) R(free, Interval::point(1));
        }
        return;
      case Op::kNot:
        R(0, Interval(1 - z.hi(), 1 - z.lo()));
        return;
      case Op::kXor:
        if (z.is_point()) {
          if (X(0).is_point()) R(1, Interval::point(z.lo() ^ X(0).lo()));
          else if (X(1).is_point()) R(0, Interval::point(z.lo() ^ X(1).lo()));
        }
        return;
      case Op::kMux:
        if (X(0) == Interval::point(1)) {
          R(1, z);
        } else if (X(0) == Interval::point(0)) {
          R(2, z);
        } else {
          // An arm whose range misses z entirely cannot be the selected
          // one — the select's polarity is implied.
          if (!z.intersects(X(1))) R(0, Interval::point(0));
          if (!z.intersects(X(2))) R(0, Interval::point(1));
        }
        return;
      case Op::kAdd:
        R(0, iops::back_add_wrap_x(z, X(1), X(0), w));
        R(1, iops::back_add_wrap_x(z, X(0), X(1), w));
        return;
      case Op::kSub:
        R(0, iops::back_sub_wrap_x(z, X(1), X(0), w));
        R(1, iops::back_sub_wrap_y(z, X(0), X(1), w));
        return;
      case Op::kMulC: {
        if (n.imm == 0) return;
        // back_mul_const inverts the exact product; sound only when the
        // wrap provably cannot fire (k·x stays inside the width).
        const Interval prod = iops::fwd_mul_const(X(0), n.imm);
        if (!prod.is_empty() && !endpoint_saturated(prod.lo()) &&
            !endpoint_saturated(prod.hi()) && c_.domain(id).contains(prod)) {
          R(0, iops::back_mul_const(z, n.imm));
        }
        return;
      }
      case Op::kShlC: {
        const int k = static_cast<int>(n.imm);
        if (k == 0) {
          R(0, z);
          return;
        }
        // No-wrap condition: x < 2^(w−k), so z = x·2^k exactly.
        const Interval::Value max_x =
            w > k ? (Interval::Value{1} << (w - k)) - 1 : 0;
        if (X(0).hi() <= max_x) R(0, iops::fwd_lshr(z, k));
        return;
      }
      case Op::kShrC:
        R(0, iops::back_lshr(z, static_cast<int>(n.imm)));
        return;
      case Op::kNotW:
        R(0, iops::back_not(z, w));
        return;
      case Op::kConcat: {
        const int lw = c_.width(n.operands[1]);
        R(0, iops::back_concat_hi(z, lw));
        R(1, iops::back_concat_lo(z, X(0), X(1), lw));
        return;
      }
      case Op::kExtract:
        R(0, iops::back_extract(z, X(0), static_cast<int>(n.imm),
                                static_cast<int>(n.imm2)));
        return;
      case Op::kZext:
        R(0, z);
        return;
      case Op::kMin:
        R(0, iops::back_min_x(z, X(1), X(0)));
        R(1, iops::back_min_x(z, X(0), X(1)));
        return;
      case Op::kMax:
        R(0, iops::back_max_x(z, X(1), X(0)));
        R(1, iops::back_max_x(z, X(0), X(1)));
        return;
      case Op::kEq:
      case Op::kNe:
      case Op::kLt:
      case Op::kLe: {
        if (!z.is_point()) return;
        const bool t = z.lo() == 1;
        iops::Pair p;
        bool swapped = false;  // p narrows (operand 1, operand 0) instead
        if (n.op == Op::kEq) {
          p = t ? iops::narrow_eq(X(0), X(1)) : iops::narrow_ne(X(0), X(1));
        } else if (n.op == Op::kNe) {
          p = t ? iops::narrow_ne(X(0), X(1)) : iops::narrow_eq(X(0), X(1));
        } else if (n.op == Op::kLt) {
          if (t) {
            p = iops::narrow_lt(X(0), X(1));
          } else {  // ¬(x < y) ⟺ y ≤ x
            p = iops::narrow_le(X(1), X(0));
            swapped = true;
          }
        } else {
          if (t) {
            p = iops::narrow_le(X(0), X(1));
          } else {  // ¬(x ≤ y) ⟺ y < x
            p = iops::narrow_lt(X(1), X(0));
            swapped = true;
          }
        }
        R(swapped ? 1 : 0, p.x);
        R(swapped ? 0 : 1, p.y);
        return;
      }
    }
  }

  const Circuit& c_;
  const AnalyzeOptions& opts_;
  FactTable facts_;
  std::vector<int> budget_;
  std::vector<bool> queued_;
  std::vector<NetId> worklist_;
  std::vector<std::vector<NetId>> readers_;
};

}  // namespace

FactTable analyze(const ir::Circuit& circuit, const AnalyzeOptions& options) {
  return Analyzer(circuit, options).run();
}

std::vector<Interval> reach_invariants(const ir::SeqCircuit& seq,
                                       const ReachOptions& options) {
  const ir::Circuit& c = seq.comb();
  const auto& regs = seq.registers();
  std::vector<Interval> state(regs.size());
  std::vector<int> grew_lo(regs.size(), 0), grew_hi(regs.size(), 0);
  for (std::size_t i = 0; i < regs.size(); ++i) {
    state[i] = Interval::point(regs[i].init).intersect(c.domain(regs[i].q));
    if (state[i].is_empty()) state[i] = c.domain(regs[i].q);
  }
  const int widen_after = std::max(1, options.widen_after);
  // Terminates without an iteration cap: every `changed` round strictly
  // grows at least one register side, and each side grows at most
  // `widen_after` times before it is widened to its domain rail (where it
  // can grow no further) — at most 2·R·widen_after rounds.
  for (bool changed = true; changed;) {
    changed = false;
    AnalyzeOptions ao;
    ao.backward = false;
    for (std::size_t i = 0; i < regs.size(); ++i) {
      ao.assumptions.emplace_back(regs[i].q, state[i]);
    }
    const FactTable f = analyze(c, ao);
    for (std::size_t i = 0; i < regs.size(); ++i) {
      const Interval domain = c.domain(regs[i].q);
      if (regs[i].d == ir::kNoNet) {  // unbound next-state: no information
        if (state[i] != domain) {
          state[i] = domain;
          changed = true;
        }
        continue;
      }
      Interval next = state[i].hull(f.range[regs[i].d].intersect(domain));
      if (next == state[i]) continue;
      if (next.lo() < state[i].lo() && ++grew_lo[i] >= widen_after) {
        next = Interval(domain.lo(), next.hi());
      }
      if (next.hi() > state[i].hi() && ++grew_hi[i] >= widen_after) {
        next = Interval(next.lo(), domain.hi());
      }
      state[i] = next;
      changed = true;
    }
  }
  // Narrowing phase: the widened `state` is a post-fixpoint (its image is
  // contained in it), so re-applying init ∪ image can only shrink it while
  // every reachable state stays covered — this claws back the precision a
  // rail jump overshot (e.g. a counter saturating below its domain top).
  for (int round = 0; round < 4; ++round) {
    AnalyzeOptions ao;
    ao.backward = false;
    for (std::size_t i = 0; i < regs.size(); ++i) {
      ao.assumptions.emplace_back(regs[i].q, state[i]);
    }
    const FactTable f = analyze(c, ao);
    bool shrunk = false;
    for (std::size_t i = 0; i < regs.size(); ++i) {
      if (regs[i].d == ir::kNoNet) continue;
      const Interval domain = c.domain(regs[i].q);
      const Interval next = Interval::point(regs[i].init)
                                .intersect(domain)
                                .hull(f.range[regs[i].d].intersect(domain))
                                .intersect(state[i]);
      if (next.is_empty() || next == state[i]) continue;
      state[i] = next;
      shrunk = true;
    }
    if (!shrunk) break;
  }
  return state;
}

}  // namespace rtlsat::presolve
