#include "presolve/simplify.h"

#include <bit>
#include <utility>
#include <vector>

#include "ir/analysis.h"
#include "ir/op.h"
#include "ir/transform.h"
#include "presolve/analyze.h"
#include "util/assert.h"

namespace rtlsat::presolve {

namespace {

using ir::Circuit;
using ir::kNoNet;
using ir::NetId;
using ir::Node;
using ir::Op;

// Smallest width holding the non-negative value v (≥ 1 so a net exists).
int bits_for(Interval::Value v) {
  if (v <= 0) return 1;
  return static_cast<int>(std::bit_width(static_cast<std::uint64_t>(v)));
}

class FactRebuilder {
 public:
  FactRebuilder(const Circuit& source, const FactTable& facts,
                PresolveStats& stats)
      : source_(source), facts_(facts), stats_(stats) {}

  ir::TransformResult run(const std::vector<NetId>& roots) {
    ir::TransformResult result;
    result.circuit.set_name(source_.name());
    result.net_map.assign(source_.num_nets(), kNoNet);
    const auto cone = ir::fanin_cone(source_, roots);
    for (const NetId id : cone.members) {
      result.net_map[id] = emit(result.circuit, id, result.net_map);
    }
    // Preserve the names of surviving nets (same policy as ir/transform).
    for (NetId id = 0; id < source_.num_nets(); ++id) {
      const NetId mapped = result.net_map[id];
      if (mapped == kNoNet) continue;
      const std::string& name = source_.node(id).name;
      if (name.empty()) continue;
      if (result.circuit.node(mapped).name.empty()) {
        result.circuit.set_net_name(mapped, name);
      } else if (result.circuit.find_net(name) == kNoNet) {
        result.circuit.add_name_alias(name, mapped);
      }
    }
    return result;
  }

 private:
  NetId emit(Circuit& out, NetId id, std::vector<NetId>& map) {
    const Node& n = source_.node(id);
    // Constant substitution. Never for inputs (their range is never a
    // point) nor for literals (no win to count).
    if (n.op != Op::kInput && n.op != Op::kConst && facts_.is_const(id)) {
      if (ir::is_comparator(n.op)) ++stats_.comparators_reduced;
      else ++stats_.nets_constant;
      return out.add_const(facts_.const_value(id), n.width);
    }
    auto m = [&](std::size_t i) { return map[n.operands[i]]; };
    auto range = [&](std::size_t i) -> const Interval& {
      return facts_.range[n.operands[i]];
    };
    switch (n.op) {
      case Op::kInput: return out.add_input(source_.net_name(id), n.width);
      case Op::kConst: return out.add_const(n.imm, n.width);
      case Op::kAnd: {
        std::vector<NetId> ops;
        for (NetId o : n.operands) ops.push_back(map[o]);
        return out.add_and(std::move(ops));
      }
      case Op::kOr: {
        std::vector<NetId> ops;
        for (NetId o : n.operands) ops.push_back(map[o]);
        return out.add_or(std::move(ops));
      }
      case Op::kNot: return out.add_not(m(0));
      case Op::kXor: return out.add_xor(m(0), m(1));
      case Op::kMux: {
        const Interval& sel = range(0);
        if (sel.is_point()) {  // dead-arm collapse: forward the live arm
          ++stats_.mux_arms_removed;
          return sel.lo() == 1 ? m(1) : m(2);
        }
        return out.add_mux(m(0), m(1), m(2));
      }
      case Op::kAdd: {
        // Width narrowing: operands and the exact sum provably fit k < w
        // bits, so the wrap cannot fire and the carry chain shortens to k.
        const int k = bits_for(range(0).hi() + range(1).hi());
        if (k < n.width) {
          stats_.width_bits_shaved += n.width - k;
          return out.add_zext(
              out.add_add(out.add_trunc(m(0), k), out.add_trunc(m(1), k)),
              n.width);
        }
        return out.add_add(m(0), m(1));
      }
      case Op::kSub: {
        // Exact (borrow-free) iff x ≥ y always; then the result fits x's
        // proven bits.
        if (range(0).lo() >= range(1).hi()) {
          const int k = bits_for(range(0).hi());
          if (k < n.width) {
            stats_.width_bits_shaved += n.width - k;
            return out.add_zext(
                out.add_sub(out.add_trunc(m(0), k), out.add_trunc(m(1), k)),
                n.width);
          }
        }
        return out.add_sub(m(0), m(1));
      }
      case Op::kMulC: {
        if (n.imm >= 1) {
          const Interval::Value prod = sat_mul(range(0).hi(), n.imm);
          if (!endpoint_saturated(prod)) {
            const int k = bits_for(prod);
            if (k < n.width) {
              stats_.width_bits_shaved += n.width - k;
              return out.add_zext(out.add_mulc(out.add_trunc(m(0), k), n.imm),
                                  n.width);
            }
          }
        }
        return out.add_mulc(m(0), n.imm);
      }
      case Op::kShlC: return out.add_shl(m(0), static_cast<int>(n.imm));
      case Op::kShrC: return out.add_shr(m(0), static_cast<int>(n.imm));
      case Op::kNotW: return out.add_notw(m(0));
      case Op::kConcat: return out.add_concat(m(0), m(1));
      case Op::kExtract:
        return out.add_extract(m(0), static_cast<int>(n.imm),
                               static_cast<int>(n.imm2));
      case Op::kZext: return out.add_zext(m(0), n.width);
      case Op::kMin: return out.add_min_raw(m(0), m(1));
      case Op::kMax: return out.add_max_raw(m(0), m(1));
      case Op::kEq: return out.add_eq_raw(m(0), m(1));
      case Op::kNe: return out.add_not(out.add_eq_raw(m(0), m(1)));
      case Op::kLt: return out.add_lt(m(0), m(1));
      case Op::kLe: return out.add_le(m(0), m(1));
    }
    RTLSAT_UNREACHABLE("unhandled op in presolve emit");
  }

  const Circuit& source_;
  const FactTable& facts_;
  PresolveStats& stats_;
};

}  // namespace

void PresolveStats::add_to(Stats& stats) const {
  stats.add("presolve.nets_constant", nets_constant);
  stats.add("presolve.mux_arms_removed", mux_arms_removed);
  stats.add("presolve.comparators_reduced", comparators_reduced);
  stats.add("presolve.width_bits_shaved", width_bits_shaved);
  stats.add("presolve.nets_removed", nets_removed);
}

SimplifyResult simplify(const ir::Circuit& circuit,
                        const std::vector<ir::NetId>& roots,
                        const FactTable& facts) {
  RTLSAT_ASSERT_MSG(!facts.conditioned,
                    "presolve::simplify needs unconditioned facts");
  RTLSAT_ASSERT(facts.range.size() == circuit.num_nets());
  SimplifyResult result;
  // Fact-driven rewrite pass, then a plain cone pass to drop the nodes the
  // rewrites orphaned (e.g. a comparator whose only reader collapsed).
  ir::TransformResult rewritten =
      FactRebuilder(circuit, facts, result.stats).run(roots);
  std::vector<ir::NetId> new_roots;
  for (const ir::NetId r : roots) {
    RTLSAT_ASSERT(rewritten.net_map[r] != kNoNet);
    new_roots.push_back(rewritten.net_map[r]);
  }
  ir::TransformResult swept = ir::extract_cone(rewritten.circuit, new_roots);
  result.circuit = std::move(swept.circuit);
  result.net_map.assign(circuit.num_nets(), kNoNet);
  for (ir::NetId id = 0; id < circuit.num_nets(); ++id) {
    const ir::NetId mid = rewritten.net_map[id];
    if (mid != kNoNet) result.net_map[id] = swept.net_map[mid];
  }
  for (const ir::NetId r : roots) {
    RTLSAT_ASSERT(result.net_map[r] != kNoNet);
    result.roots.push_back(result.net_map[r]);
  }
  const std::size_t before = ir::fanin_cone(circuit, roots).members.size();
  const std::size_t after = result.circuit.num_nets();
  result.stats.nets_removed =
      before > after ? static_cast<std::int64_t>(before - after) : 0;
  return result;
}

GoalPresolve presolve_goal(const ir::Circuit& circuit, ir::NetId goal,
                           bool value) {
  RTLSAT_ASSERT(goal < circuit.num_nets());
  RTLSAT_ASSERT(circuit.is_bool(goal));
  GoalPresolve out;
  const auto decide = [&](bool sat) {
    out.decided = true;
    out.sat = sat;
    if (sat) {
      // A goal whose unconditioned range is the asked-for point holds
      // under EVERY assignment; report all-zeros.
      for (const ir::NetId in : circuit.inputs()) out.model[in] = 0;
    }
  };
  const Interval want = Interval::point(value ? 1 : 0);

  const FactTable facts = analyze(circuit);
  if (facts.range[goal].is_point()) {
    decide(facts.range[goal] == want);
    return out;
  }

  SimplifyResult s = simplify(circuit, {goal}, facts);
  out.stats = s.stats;
  const ir::NetId g = s.roots[0];
  if (s.circuit.node(g).op == ir::Op::kConst) {
    decide(s.circuit.node(g).imm == (value ? 1 : 0));
    return out;
  }

  // Conditioned backward pass under "goal = value": a conflict proves no
  // assignment reaches the asked-for verdict.
  AnalyzeOptions ao;
  ao.assumptions.emplace_back(g, want);
  const FactTable cond = analyze(s.circuit, ao);
  if (cond.conflict) {
    decide(false);
    return out;
  }

  out.circuit = std::move(s.circuit);
  out.goal = g;
  out.net_map = std::move(s.net_map);
  return out;
}

}  // namespace rtlsat::presolve
