// A complete CDCL Boolean SAT solver.
//
// This is the engine behind the bit-blasting baseline — the "Boolean SAT
// solver on the RTL's Boolean translation" that the paper's introduction
// identifies as the popular-but-poorly-scaling approach — and the oracle
// the property tests cross-check HDPLL against. Standard modern feature
// set: two-watched-literal propagation, first-UIP conflict learning with
// recursive clause minimization, EVSIDS variable activities with phase
// saving, Luby restarts, and activity-driven learnt-clause deletion.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/assert.h"
#include "util/stats.h"
#include "util/stop_token.h"
#include "util/timer.h"

namespace rtlsat::trace {
class Tracer;
class ProgressReporter;
}  // namespace rtlsat::trace

namespace rtlsat::proof {
class DratWriter;
}  // namespace rtlsat::proof

namespace rtlsat::metrics {
struct SolverGauges;
}  // namespace rtlsat::metrics

namespace rtlsat::sat {

using Var = std::uint32_t;

// Literal: variable with polarity, encoded as 2·var + (negated ? 1 : 0).
class Lit {
 public:
  Lit() = default;
  Lit(Var var, bool positive) : code_(2 * var + (positive ? 0 : 1)) {}

  static Lit from_code(std::uint32_t code) {
    Lit l;
    l.code_ = code;
    return l;
  }

  Var var() const { return code_ >> 1; }
  bool positive() const { return (code_ & 1) == 0; }
  Lit operator~() const { return from_code(code_ ^ 1); }
  std::uint32_t code() const { return code_; }

  friend bool operator==(Lit a, Lit b) { return a.code_ == b.code_; }
  friend bool operator!=(Lit a, Lit b) { return a.code_ != b.code_; }

 private:
  std::uint32_t code_ = 0;
};

enum class Value : std::uint8_t { kFalse = 0, kTrue = 1, kUnassigned = 2 };

// kTimeout: the solver's own deadline expired; kCancelled: an external
// StopToken fired (portfolio loser). Neither carries a verdict.
enum class Result { kSat, kUnsat, kTimeout, kCancelled };

struct SolverOptions {
  double var_decay = 0.95;
  double clause_decay = 0.999;
  int restart_base = 100;       // Luby unit, in conflicts
  double learnt_grow = 1.1;     // learnt-DB cap growth per reduction
  double timeout_seconds = 0;   // 0 = none
  // Cooperative cancellation: merged with timeout_seconds into one token
  // when solve() starts and polled on decision boundaries (the flag every
  // iteration, the clock alongside it — both cheap when unarmed).
  // Default-constructed = never fires.
  StopToken stop;
  // Audit trail/watch/clause-DB invariants (check_invariants) every
  // `self_check_interval` conflicts and at every SAT answer; any violation
  // aborts. Defaults on in -DRTLSAT_SELFCHECK=ON builds.
  bool self_check = kSelfCheckBuild;
  int self_check_interval = 256;

  // Observability (src/trace): conflict/learned-clause/restart events and
  // per-conflict progress ticks, mirroring HdpllOptions. Null tracer ⟹
  // trace::global() (disabled unless RTLSAT_TRACE is set); null progress ⟹
  // no reporting. Borrowed pointers; must outlive the solver.
  trace::Tracer* tracer = nullptr;
  trace::ProgressReporter* progress = nullptr;

  // DRAT proof logging (src/proof). Null ⟹ off; the solver tests the
  // pointer once per cold event (clause added, clause learned, DB reduced,
  // refutation concluded) — nothing on the propagation hot path changes.
  // Borrowed; must outlive the solver.
  proof::DratWriter* drat = nullptr;

  // Live telemetry (src/metrics), mirroring HdpllOptions::gauges: counter,
  // memory and LBD publication into registry handles at conflict
  // boundaries. Null (the default) costs one predicted branch per conflict.
  // Borrowed; must outlive the solver.
  metrics::SolverGauges* gauges = nullptr;
};

class Solver {
 public:
  explicit Solver(SolverOptions options = {});

  Var new_var();
  std::size_t num_vars() const { return activity_.size(); }

  // Adds a clause (empty ⟹ immediate UNSAT; duplicates/tautologies are
  // simplified). Callable before the first solve() and between solve()
  // calls — every solve() returns with the trail restored to root level,
  // so the clause lands on a clean level-0 state.
  void add_clause(std::vector<Lit> lits);

  Result solve();
  // Incremental interface: solve under the given assumptions. Assumptions
  // are per-call pseudo-decisions (one trail level each, strictly below
  // all real decisions); learned clauses, variable activities, and saved
  // phases persist across calls. An UNSAT verdict under assumptions does
  // NOT make the instance permanently UNSAT — only a root-level conflict
  // does — and the failed-assumption core is available afterwards via
  // failed_assumptions().
  Result solve(const std::vector<Lit>& assumptions);

  // After a kUnsat return from solve(assumptions): a subset of the passed
  // assumptions whose conjunction is already refuted by the clause
  // database (an assumption core, not guaranteed minimal). Empty when the
  // instance is UNSAT outright (ok() is false).
  const std::vector<Lit>& failed_assumptions() const { return failed_; }

  // False once a root-level conflict proved the clause database itself
  // UNSAT; assumption-UNSAT answers leave it true.
  bool ok() const { return ok_; }

  // Re-arm the budget between solve() calls: the next call derives its
  // effective token from these (0 seconds = no deadline, default token =
  // never cancelled). This is what lets one solver serve a sequence of
  // differently-budgeted incremental queries.
  void set_budget(double timeout_seconds, StopToken stop = {}) {
    options_.timeout_seconds = timeout_seconds;
    options_.stop = stop;
  }

  // Model access after kSat (reads the snapshot taken at the SAT answer,
  // which survives the trail's restoration to root level).
  bool model_value(Var v) const;

  // Invariant audit (the Boolean half of the solver self-check layer; the
  // hybrid half lives in core/selfcheck.h). Verifies trail/assignment
  // agreement, reason-clause shape, two-watched-literal integrity, and —
  // at a propagation fixpoint — that no clause is all-false or unit
  // without its implication enqueued. Returns human-readable violations;
  // empty means every invariant holds. Callable at any fixpoint between
  // solve() steps or from tests.
  std::vector<std::string> check_invariants() const;

  const Stats& stats() const { return stats_; }

  // Instrumented heap bytes: clause vector + literal arrays (maintained by
  // add_clause/learnt push/reduce_db) — watch lists excluded, same
  // convention as core::ClauseDb::memory_bytes(). Defined below the class
  // (needs the private Clause type complete).
  std::int64_t memory_bytes() const;

 private:
  struct Clause {
    std::vector<Lit> lits;
    double activity = 0;
    bool learnt = false;
    bool deleted = false;
  };
  using ClauseRef = std::uint32_t;
  static constexpr ClauseRef kNoReason = 0xffffffffu;

  Value value(Lit l) const {
    const Value v = assigns_[l.var()];
    if (v == Value::kUnassigned) return v;
    return (v == Value::kTrue) == l.positive() ? Value::kTrue : Value::kFalse;
  }

  Result solve_impl(const std::vector<Lit>& assumptions);
  // Computes failed_ from a falsified assumption `a`: walks the trail
  // backwards from the assumption levels, expanding reason clauses, and
  // collects the assumption pseudo-decisions that imply ~a.
  void analyze_final(Lit a);
  void enqueue(Lit l, ClauseRef reason);
  ClauseRef propagate();  // kNoReason when no conflict
  void analyze(ClauseRef conflict, std::vector<Lit>& learnt, int& bt_level);
  bool lit_redundant(Lit l, std::uint32_t levels_mask);
  void backtrack(int level);
  Lit pick_branch();
  void bump_var(Var v);
  void bump_clause(ClauseRef c);
  void decay_activities();
  void reduce_db();
  void attach(ClauseRef c);
  static std::int64_t luby(std::int64_t i);
  // Live-telemetry publication (no-ops when options_.gauges is null); the
  // LBD of a learned clause is read off level_ before the backtrack and
  // recorded only into the registry histogram (not stats_), keeping bench
  // output byte-identical with and without sampling.
  void publish_metrics();
  void record_lbd(const std::vector<Lit>& learnt);

  SolverOptions options_;
  std::vector<Clause> clauses_;
  std::vector<std::vector<ClauseRef>> watches_;  // indexed by lit code
  std::vector<Value> assigns_;
  std::vector<bool> phase_;
  std::vector<int> level_;
  std::vector<ClauseRef> reason_;
  std::vector<Lit> trail_;
  std::vector<std::size_t> trail_lim_;
  std::size_t qhead_ = 0;
  std::vector<double> activity_;
  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  // Binary heap over variable activities.
  std::vector<Var> heap_;
  std::vector<int> heap_pos_;
  void heap_insert(Var v);
  void heap_sift_up(int i);
  void heap_sift_down(int i);
  Var heap_pop();
  bool heap_less(Var a, Var b) const { return activity_[a] > activity_[b]; }

  std::vector<bool> seen_;
  // Model snapshot taken at each kSat answer, before the trail is restored
  // to root level; model_value reads this, never the live assignment.
  std::vector<Value> model_;
  // Failed-assumption core of the most recent assumption-UNSAT answer.
  std::vector<Lit> failed_;
  bool ok_ = true;
  std::size_t learnt_count_ = 0;
  std::size_t max_learnts_ = 0;
  Stats stats_;
  proof::DratWriter* drat_ = nullptr;  // alias of options_.drat
  // Hot-path counters and histograms, resolved once against stats_ (which
  // must be declared above them — initialization order). sat.propagations
  // is the hottest counter in the whole solver: one increment per trail
  // literal processed.
  std::int64_t& n_propagations_;
  std::int64_t& n_conflicts_;
  std::int64_t& n_decisions_;
  std::int64_t& n_restarts_;
  Histogram& h_learned_len_;
  Histogram& h_backjump_;
  trace::Tracer* tracer_;              // never null after construction
  trace::ProgressReporter* progress_;  // may be null
  metrics::SolverGauges* gauges_;      // may be null
  std::int64_t lits_heap_bytes_ = 0;
  std::vector<int> lbd_scratch_;
};

inline std::int64_t Solver::memory_bytes() const {
  return static_cast<std::int64_t>(clauses_.capacity() * sizeof(Clause)) +
         lits_heap_bytes_;
}

}  // namespace rtlsat::sat
