#include "sat/solver.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "metrics/solver_gauges.h"
#include "proof/drat.h"
#include "trace/progress.h"
#include "trace/trace.h"
#include "util/assert.h"
#include "util/strings.h"

namespace rtlsat::sat {

namespace {

// DRAT speaks signed DIMACS: variable v becomes v+1, negation a sign.
std::vector<int> to_dimacs(const std::vector<Lit>& lits) {
  std::vector<int> out;
  out.reserve(lits.size());
  for (const Lit l : lits) {
    const int var = static_cast<int>(l.var()) + 1;
    out.push_back(l.positive() ? var : -var);
  }
  return out;
}

}  // namespace

Solver::Solver(SolverOptions options)
    : options_(options),
      n_propagations_(stats_.counter("sat.propagations")),
      n_conflicts_(stats_.counter("sat.conflicts")),
      n_decisions_(stats_.counter("sat.decisions")),
      n_restarts_(stats_.counter("sat.restarts")),
      h_learned_len_(stats_.histogram("sat.learned_clause_len")),
      h_backjump_(stats_.histogram("sat.backjump_distance")),
      tracer_(options.tracer != nullptr ? options.tracer : &trace::global()),
      progress_(options.progress),
      gauges_(options.gauges) {
  drat_ = options.drat;
}

Var Solver::new_var() {
  const Var v = static_cast<Var>(activity_.size());
  activity_.push_back(0.0);
  assigns_.push_back(Value::kUnassigned);
  phase_.push_back(false);
  level_.push_back(0);
  reason_.push_back(kNoReason);
  watches_.emplace_back();
  watches_.emplace_back();
  seen_.push_back(false);
  heap_pos_.push_back(-1);
  heap_insert(v);
  return v;
}

void Solver::add_clause(std::vector<Lit> lits) {
  if (!ok_) return;
  // Log the clause as handed in, before simplification — the checker's
  // unit propagation re-derives anything the simplifier concluded.
  if (drat_ != nullptr) drat_->original(to_dimacs(lits));
  // Simplify: drop duplicate literals and false-at-root literals; detect
  // tautologies and root-satisfied clauses.
  std::sort(lits.begin(), lits.end(),
            [](Lit a, Lit b) { return a.code() < b.code(); });
  std::vector<Lit> kept;
  for (std::size_t i = 0; i < lits.size(); ++i) {
    if (i + 1 < lits.size() && lits[i + 1] == ~lits[i]) return;  // tautology
    if (i > 0 && lits[i] == lits[i - 1]) continue;
    if (value(lits[i]) == Value::kTrue && level_[lits[i].var()] == 0) return;
    if (value(lits[i]) == Value::kFalse && level_[lits[i].var()] == 0)
      continue;
    kept.push_back(lits[i]);
  }
  if (kept.empty()) {
    ok_ = false;
    if (drat_ != nullptr) drat_->empty_clause();
    return;
  }
  if (kept.size() == 1) {
    if (value(kept[0]) == Value::kFalse) {
      ok_ = false;
      if (drat_ != nullptr) drat_->empty_clause();
      return;
    }
    if (value(kept[0]) == Value::kUnassigned) {
      enqueue(kept[0], kNoReason);
      if (propagate() != kNoReason) {
        ok_ = false;
        if (drat_ != nullptr) drat_->empty_clause();
      }
    }
    return;
  }
  Clause c;
  c.lits = std::move(kept);
  clauses_.push_back(std::move(c));
  lits_heap_bytes_ += static_cast<std::int64_t>(
      clauses_.back().lits.capacity() * sizeof(Lit));
  attach(static_cast<ClauseRef>(clauses_.size() - 1));
}

void Solver::attach(ClauseRef cr) {
  const Clause& c = clauses_[cr];
  watches_[(~c.lits[0]).code()].push_back(cr);
  watches_[(~c.lits[1]).code()].push_back(cr);
}

void Solver::enqueue(Lit l, ClauseRef reason) {
  RTLSAT_DASSERT(value(l) == Value::kUnassigned);
  assigns_[l.var()] = l.positive() ? Value::kTrue : Value::kFalse;
  phase_[l.var()] = l.positive();
  level_[l.var()] = static_cast<int>(trail_lim_.size());
  reason_[l.var()] = reason;
  trail_.push_back(l);
}

Solver::ClauseRef Solver::propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++n_propagations_;
    auto& watch_list = watches_[p.code()];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < watch_list.size(); ++i) {
      const ClauseRef cr = watch_list[i];
      Clause& c = clauses_[cr];
      if (c.deleted) continue;  // lazily dropped from the watch list
      // Ensure the falsified watch is lits[1].
      const Lit false_lit = ~p;
      if (c.lits[0] == false_lit) std::swap(c.lits[0], c.lits[1]);
      RTLSAT_DASSERT(c.lits[1] == false_lit);
      if (value(c.lits[0]) == Value::kTrue) {
        watch_list[keep++] = cr;  // clause satisfied; keep watching
        continue;
      }
      // Look for a new literal to watch.
      bool moved = false;
      for (std::size_t k = 2; k < c.lits.size(); ++k) {
        if (value(c.lits[k]) != Value::kFalse) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[(~c.lits[1]).code()].push_back(cr);
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflicting.
      watch_list[keep++] = cr;
      if (value(c.lits[0]) == Value::kFalse) {
        // Conflict: keep the remaining watches, reset queue.
        for (std::size_t j = i + 1; j < watch_list.size(); ++j)
          watch_list[keep++] = watch_list[j];
        watch_list.resize(keep);
        qhead_ = trail_.size();
        return cr;
      }
      enqueue(c.lits[0], cr);
    }
    watch_list.resize(keep);
  }
  return kNoReason;
}

void Solver::analyze(ClauseRef conflict, std::vector<Lit>& learnt,
                     int& bt_level) {
  learnt.clear();
  learnt.push_back(Lit());  // slot for the asserting literal
  int counter = 0;
  Lit p;
  bool p_valid = false;
  std::size_t index = trail_.size();
  ClauseRef reason = conflict;
  const int current = static_cast<int>(trail_lim_.size());

  do {
    RTLSAT_ASSERT(reason != kNoReason);
    Clause& c = clauses_[reason];
    // A reduced-away clause must never resurface as an antecedent; if it
    // does, the DB-reduction deletion hook lied to the proof log.
    RTLSAT_DASSERT(!c.deleted);
    if (c.learnt) bump_clause(reason);
    // lits[0] of a reason clause is the literal it implied (= p), which is
    // already resolved away; the conflict clause scans from 0.
    for (std::size_t k = p_valid ? 1 : 0; k < c.lits.size(); ++k) {
      const Lit q = c.lits[k];
      const Var v = q.var();
      if (seen_[v] || level_[v] == 0) continue;
      seen_[v] = true;
      bump_var(v);
      if (level_[v] >= current) {
        ++counter;
      } else {
        learnt.push_back(q);
      }
    }
    // Walk the trail back to the next marked literal.
    while (!seen_[trail_[index - 1].var()]) --index;
    p = trail_[--index];
    p_valid = true;
    seen_[p.var()] = false;
    reason = reason_[p.var()];
    --counter;
  } while (counter > 0);
  learnt[0] = ~p;

  // Recursive clause minimization: drop literals implied by the rest.
  // Every literal marked during collection must be unmarked at the end —
  // including the ones minimization drops — or stale marks corrupt the
  // next conflict's trail walk.
  const std::vector<Lit> collected = learnt;
  std::uint32_t levels_mask = 0;
  for (std::size_t i = 1; i < learnt.size(); ++i)
    levels_mask |= 1u << (level_[learnt[i].var()] & 31);
  std::size_t kept = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    if (reason_[learnt[i].var()] == kNoReason ||
        !lit_redundant(learnt[i], levels_mask)) {
      learnt[kept++] = learnt[i];
    }
  }
  learnt.resize(kept);

  // Backtrack level: the second-highest level in the clause.
  bt_level = 0;
  std::size_t max_i = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    if (level_[learnt[i].var()] > level_[learnt[max_i].var()]) max_i = i;
  }
  if (learnt.size() > 1) {
    std::swap(learnt[1], learnt[max_i]);
    bt_level = level_[learnt[1].var()];
  }
  for (const Lit l : collected) seen_[l.var()] = false;
}

bool Solver::lit_redundant(Lit l, std::uint32_t levels_mask) {
  // DFS through reasons; a literal is redundant if every path terminates in
  // marked (seen_) literals or level-0 facts.
  std::vector<Lit> stack{l};
  std::vector<Var> cleared;
  bool redundant = true;
  while (!stack.empty() && redundant) {
    const Lit p = stack.back();
    stack.pop_back();
    const ClauseRef r = reason_[p.var()];
    if (r == kNoReason) {
      redundant = false;
      break;
    }
    const Clause& c = clauses_[r];
    for (const Lit q : c.lits) {
      const Var v = q.var();
      if (v == p.var() || seen_[v] || level_[v] == 0) continue;
      if (reason_[v] == kNoReason ||
          ((1u << (level_[v] & 31)) & levels_mask) == 0) {
        redundant = false;
        break;
      }
      seen_[v] = true;
      cleared.push_back(v);
      stack.push_back(q);
    }
  }
  for (Var v : cleared) seen_[v] = false;
  return redundant;
}

void Solver::backtrack(int target) {
  if (static_cast<int>(trail_lim_.size()) <= target) return;
  const std::size_t bound = trail_lim_[target];
  for (std::size_t i = trail_.size(); i > bound; --i) {
    const Var v = trail_[i - 1].var();
    assigns_[v] = Value::kUnassigned;
    reason_[v] = kNoReason;
    if (heap_pos_[v] < 0) heap_insert(v);
  }
  trail_.resize(bound);
  trail_lim_.resize(target);
  qhead_ = bound;
}

Lit Solver::pick_branch() {
  while (!heap_.empty()) {
    const Var v = heap_pop();
    if (assigns_[v] == Value::kUnassigned) return Lit(v, phase_[v]);
  }
  return Lit(0, true);  // callers check for completeness first
}

void Solver::bump_var(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_pos_[v] >= 0) heap_sift_up(heap_pos_[v]);
}

void Solver::bump_clause(ClauseRef cr) {
  Clause& c = clauses_[cr];
  c.activity += clause_inc_;
  if (c.activity > 1e20) {
    for (Clause& cl : clauses_) {
      if (cl.learnt) cl.activity *= 1e-20;
    }
    clause_inc_ *= 1e-20;
  }
}

void Solver::decay_activities() {
  var_inc_ /= options_.var_decay;
  clause_inc_ /= options_.clause_decay;
}

void Solver::reduce_db() {
  // Keep binaries and locked clauses; drop the least active half of the rest.
  std::vector<ClauseRef> learnts;
  for (ClauseRef i = 0; i < clauses_.size(); ++i) {
    const Clause& c = clauses_[i];
    if (c.learnt && !c.deleted && c.lits.size() > 2) learnts.push_back(i);
  }
  std::sort(learnts.begin(), learnts.end(), [this](ClauseRef a, ClauseRef b) {
    return clauses_[a].activity < clauses_[b].activity;
  });
  std::vector<bool> locked(clauses_.size(), false);
  for (const Lit l : trail_) {
    if (reason_[l.var()] != kNoReason) locked[reason_[l.var()]] = true;
  }
  std::size_t removed = 0;
  for (std::size_t i = 0; i < learnts.size() / 2; ++i) {
    if (locked[learnts[i]]) continue;
    // The 'd' line must capture the literals before they are freed.
    if (drat_ != nullptr) drat_->deleted(to_dimacs(clauses_[learnts[i]].lits));
    lits_heap_bytes_ -= static_cast<std::int64_t>(
        clauses_[learnts[i]].lits.capacity() * sizeof(Lit));
    clauses_[learnts[i]].deleted = true;
    clauses_[learnts[i]].lits.clear();
    clauses_[learnts[i]].lits.shrink_to_fit();
    ++removed;
    --learnt_count_;
  }
  stats_.add("sat.clauses_deleted", static_cast<std::int64_t>(removed));
}

std::vector<std::string> Solver::check_invariants() const {
  std::vector<std::string> violations;
  const auto bad = [&](std::string message) {
    violations.push_back(std::move(message));
  };

  // Trail ↔ assignment agreement: every trail literal is true, every
  // assigned variable is on the trail exactly once, levels match the
  // decision-limit structure.
  std::vector<int> seen_at(num_vars(), -1);
  for (std::size_t i = 0; i < trail_.size(); ++i) {
    const Lit l = trail_[i];
    if (l.var() >= num_vars()) {
      bad(str_format("trail entry %zu names variable %u past the solver", i,
                     l.var()));
      continue;
    }
    if (value(l) != Value::kTrue)
      bad(str_format("trail literal at %zu is not true", i));
    if (seen_at[l.var()] >= 0) {
      bad(str_format("variable %u appears on the trail at both %d and %zu",
                     l.var(), seen_at[l.var()], i));
    }
    seen_at[l.var()] = static_cast<int>(i);
    int expected_level = 0;
    while (expected_level < static_cast<int>(trail_lim_.size()) &&
           trail_lim_[static_cast<std::size_t>(expected_level)] <= i) {
      ++expected_level;
    }
    if (level_[l.var()] != expected_level) {
      bad(str_format("variable %u at trail %zu has level %d, trail limits "
                     "say %d",
                     l.var(), i, level_[l.var()], expected_level));
    }
  }
  std::size_t assigned = 0;
  for (Var v = 0; v < num_vars(); ++v) {
    if (assigns_[v] == Value::kUnassigned) continue;
    ++assigned;
    if (seen_at[v] < 0 )
      bad(str_format("variable %u is assigned but not on the trail", v));
    const ClauseRef r = reason_[v];
    if (r == kNoReason) continue;
    if (r >= clauses_.size()) {
      bad(str_format("variable %u has reason clause %u past the database", v,
                     r));
      continue;
    }
    const Clause& c = clauses_[r];
    if (c.deleted) {
      bad(str_format("variable %u's reason clause %u was deleted", v, r));
      continue;
    }
    if (c.lits.empty() || c.lits[0].var() != v) {
      bad(str_format("reason clause %u of variable %u does not imply it "
                     "through lits[0]",
                     r, v));
      continue;
    }
    if (value(c.lits[0]) != Value::kTrue)
      bad(str_format("reason clause %u's implied literal is not true", r));
    for (std::size_t k = 1; k < c.lits.size(); ++k) {
      if (value(c.lits[k]) != Value::kFalse) {
        bad(str_format("reason clause %u of variable %u has a non-false "
                       "side literal",
                       r, v));
        break;
      }
    }
  }
  if (assigned != trail_.size()) {
    bad(str_format("%zu variables assigned but %zu literals on the trail",
                   assigned, trail_.size()));
  }

  // Two-watched-literal integrity: each live clause of ≥ 2 literals is on
  // the watch lists of its first two literals' complements (stale entries
  // from deleted clauses and moved watches are expected and harmless).
  const auto watched_by = [&](ClauseRef cr, Lit l) {
    for (const ClauseRef entry : watches_[(~l).code()]) {
      if (entry == cr) return true;
    }
    return false;
  };
  // Once the database is known contradictory (ok_ cleared by a level-0
  // conflict) an all-false clause is the expected state, not a missed
  // conflict.
  const bool at_fixpoint = ok_ && qhead_ == trail_.size();
  for (ClauseRef cr = 0; cr < clauses_.size(); ++cr) {
    const Clause& c = clauses_[cr];
    if (c.deleted) continue;
    if (c.lits.size() < 2) {
      bad(str_format("live clause %u has %zu literals; unit and empty "
                     "clauses must not be stored",
                     cr, c.lits.size()));
      continue;
    }
    for (int w = 0; w < 2; ++w) {
      if (!watched_by(cr, c.lits[w])) {
        bad(str_format("clause %u is not on the watch list of its watched "
                       "literal %d",
                       cr, w));
      }
    }
    if (!at_fixpoint) continue;
    std::size_t false_count = 0;
    bool any_true = false;
    std::size_t unknown = c.lits.size();
    for (std::size_t k = 0; k < c.lits.size(); ++k) {
      switch (value(c.lits[k])) {
        case Value::kTrue: any_true = true; break;
        case Value::kFalse: ++false_count; break;
        case Value::kUnassigned: unknown = k; break;
      }
    }
    if (!any_true && false_count == c.lits.size()) {
      bad(str_format("clause %u is all-false at a propagation fixpoint — a "
                     "conflict was missed",
                     cr));
    } else if (!any_true && false_count + 1 == c.lits.size()) {
      bad(str_format("clause %u is unit on unassigned variable %u at a "
                     "propagation fixpoint — an implication was missed",
                     cr, c.lits[unknown].var()));
    }
  }
  return violations;
}

namespace {

void enforce(const std::vector<std::string>& violations, const char* where) {
  if (violations.empty()) return;
  std::fprintf(stderr, "rtlsat: self-check failed at %s (%zu violation%s):\n",
               where, violations.size(), violations.size() == 1 ? "" : "s");
  for (const std::string& v : violations)
    std::fprintf(stderr, "  - %s\n", v.c_str());
  std::abort();
}

}  // namespace

std::int64_t Solver::luby(std::int64_t i) {
  // Luby sequence 1 1 2 1 1 2 4 ...
  std::int64_t k = 1;
  while ((std::int64_t{1} << k) - 1 < i + 1) ++k;
  while ((std::int64_t{1} << (k - 1)) - 1 != i) {
    i -= (std::int64_t{1} << (k - 1)) - 1;
    k = 1;
    while ((std::int64_t{1} << k) - 1 < i + 1) ++k;
  }
  return std::int64_t{1} << (k - 1);
}

Result Solver::solve() { return solve({}); }

Result Solver::solve(const std::vector<Lit>& assumptions) {
  const Result result = solve_impl(assumptions);
  if (progress_ != nullptr) {
    trace::ProgressSnapshot s;
    s.conflicts = n_conflicts_;
    s.decisions = n_decisions_;
    s.propagations = n_propagations_;
    s.learnt = static_cast<std::int64_t>(learnt_count_);
    s.restarts = n_restarts_;
    s.trail = static_cast<std::int64_t>(trail_.size());
    s.level = static_cast<std::uint32_t>(trail_lim_.size());
    progress_->finish(s);
  }
  publish_metrics();
  if (gauges_ != nullptr) gauges_->set_phase(metrics::SolverPhase::kIdle);
  tracer_->flush();
  return result;
}

void Solver::publish_metrics() {
  if (gauges_ == nullptr) return;
  gauges_->decisions->set(n_decisions_);
  gauges_->conflicts->set(n_conflicts_);
  gauges_->propagations->set(n_propagations_);
  gauges_->restarts->set(n_restarts_);
  gauges_->learnt_clauses->set(static_cast<std::int64_t>(learnt_count_));
  gauges_->trail->set(static_cast<std::int64_t>(trail_.size()));
  gauges_->level->set(static_cast<std::int64_t>(trail_lim_.size()));
  gauges_->clause_db_bytes->set(memory_bytes());
  // The trail with its reason/level side arrays is this solver's analogue
  // of the hybrid implication graph; there is no interval store.
  gauges_->implication_graph_bytes->set(static_cast<std::int64_t>(
      trail_.capacity() * sizeof(Lit) + reason_.capacity() * sizeof(ClauseRef) +
      level_.capacity() * sizeof(int)));
}

void Solver::record_lbd(const std::vector<Lit>& learnt) {
  if (gauges_ == nullptr || gauges_->lbd == nullptr) return;
  lbd_scratch_.clear();
  for (const Lit l : learnt) lbd_scratch_.push_back(level_[l.var()]);
  std::sort(lbd_scratch_.begin(), lbd_scratch_.end());
  const auto distinct = std::unique(lbd_scratch_.begin(), lbd_scratch_.end()) -
                        lbd_scratch_.begin();
  gauges_->lbd->observe(static_cast<std::int64_t>(distinct));
}

Result Solver::solve_impl(const std::vector<Lit>& assumptions) {
  failed_.clear();
  if (!ok_) return Result::kUnsat;
  // Defensive: every exit below restores root level, but start clean even
  // if a previous call was interrupted mid-abort.
  backtrack(0);
  if (gauges_ != nullptr) gauges_->set_phase(metrics::SolverPhase::kSearch);
  Timer timer;
  const StopToken stop = options_.stop.with_deadline(options_.timeout_seconds);
  max_learnts_ = std::max<std::size_t>(clauses_.size() / 3, 1000);
  std::int64_t restart_count = 0;
  std::int64_t conflicts_until_restart =
      options_.restart_base * luby(restart_count);
  std::int64_t conflict_budget = conflicts_until_restart;
  std::int64_t conflicts_until_check = options_.self_check_interval;
  std::vector<Lit> learnt;

  while (true) {
    // Polled at the top so conflict-streak iterations (which `continue`
    // past the decision code) still observe a fired token promptly.
    if (stop.stop_requested()) {
      backtrack(0);
      return stop.cancelled() ? Result::kCancelled : Result::kTimeout;
    }
    const ClauseRef conflict = propagate();
    if (conflict != kNoReason) {
      ++n_conflicts_;
      const auto level = static_cast<std::uint32_t>(trail_lim_.size());
      tracer_->record(trace::EventKind::kConflict, level);
      if (progress_ != nullptr) {
        trace::ProgressSnapshot s;
        s.conflicts = n_conflicts_;
        s.decisions = n_decisions_;
        s.propagations = n_propagations_;
        s.learnt = static_cast<std::int64_t>(learnt_count_);
        s.restarts = n_restarts_;
        s.trail = static_cast<std::int64_t>(trail_.size());
        s.level = level;
        progress_->tick(s);
      }
      if (trail_lim_.empty()) {
        // Conflict with no decisions or assumptions on the trail: the
        // instance is unconditionally UNSAT (assumptions get their own
        // trail_lim_ entries, so they cannot be implicated here).
        ok_ = false;
        if (drat_ != nullptr) drat_->empty_clause();
        return Result::kUnsat;
      }
      int bt_level = 0;
      analyze(conflict, learnt, bt_level);
      // Post-minimization form, so a later DB-reduction 'd' line matches.
      if (drat_ != nullptr) drat_->learned(to_dimacs(learnt));
      h_learned_len_.add(static_cast<std::int64_t>(learnt.size()));
      h_backjump_.add(static_cast<std::int64_t>(level) - bt_level);
      record_lbd(learnt);
      publish_metrics();
      tracer_->record(trace::EventKind::kLearnedClause, level,
                      static_cast<std::int64_t>(learnt.size()), bt_level);
      tracer_->record(trace::EventKind::kBacktrack, level, level, bt_level);
      backtrack(bt_level);
      if (learnt.size() == 1) {
        enqueue(learnt[0], kNoReason);
      } else {
        Clause c;
        c.lits = learnt;
        c.learnt = true;
        c.activity = clause_inc_;
        clauses_.push_back(std::move(c));
        lits_heap_bytes_ += static_cast<std::int64_t>(
            clauses_.back().lits.capacity() * sizeof(Lit));
        attach(static_cast<ClauseRef>(clauses_.size() - 1));
        ++learnt_count_;
        enqueue(learnt[0], static_cast<ClauseRef>(clauses_.size() - 1));
      }
      decay_activities();
      if (options_.self_check && --conflicts_until_check <= 0) {
        conflicts_until_check = options_.self_check_interval;
        stats_.add("sat.self_checks", 1);
        enforce(check_invariants(), "sat conflict loop");
      }
      if (--conflict_budget <= 0) {
        // Restart.
        ++n_restarts_;
        tracer_->record(trace::EventKind::kRestart,
                        static_cast<std::uint32_t>(trail_lim_.size()),
                        restart_count + 1);
        backtrack(0);
        ++restart_count;
        conflict_budget = options_.restart_base * luby(restart_count);
      }
      if (learnt_count_ > max_learnts_) {
        reduce_db();
        max_learnts_ = static_cast<std::size_t>(
            static_cast<double>(max_learnts_) * options_.learnt_grow);
      }
      continue;
    }

    // Apply assumptions, then decide. Level i (1-based) is permanently
    // assumption i's level — an already-true assumption still gets a dummy
    // level — so real decisions sit strictly above every assumption and a
    // backjump can never strand the correspondence. This is what lets
    // analyze_final read assumption pseudo-decisions off the trail by
    // their kNoReason marker alone.
    Lit branch;
    bool branch_is_assumption = false;
    while (trail_lim_.size() < assumptions.size()) {
      const Lit a = assumptions[trail_lim_.size()];
      if (value(a) == Value::kTrue) {
        trail_lim_.push_back(trail_.size());  // dummy level
      } else if (value(a) == Value::kFalse) {
        // Refuted under the *assumptions*, not outright: compute the core,
        // restore root level, and leave ok_ alone.
        analyze_final(a);
        backtrack(0);
        return Result::kUnsat;
      } else {
        branch = a;
        branch_is_assumption = true;
        break;
      }
    }

    if (!branch_is_assumption) {
      if (trail_.size() == num_vars()) {
        if (options_.self_check) {
          stats_.add("sat.self_checks", 1);
          enforce(check_invariants(), "sat model");
        }
        // Snapshot the model before restoring root level so the answer
        // stays readable while the solver is reusable.
        model_.assign(assigns_.begin(), assigns_.end());
        backtrack(0);
        return Result::kSat;
      }
      ++n_decisions_;
      branch = pick_branch();
      if (tracer_->verbose()) {
        // Decisions are far more frequent than conflicts —
        // event-per-decision is only worth it when someone asked for the
        // firehose.
        tracer_->record(trace::EventKind::kDecision,
                        static_cast<std::uint32_t>(trail_lim_.size() + 1),
                        branch.var(), branch.positive() ? 1 : 0);
      }
    }
    trail_lim_.push_back(trail_.size());
    enqueue(branch, kNoReason);
  }
}

void Solver::analyze_final(Lit a) {
  failed_.clear();
  failed_.push_back(a);
  if (trail_lim_.empty()) return;  // ~a is a root fact: {a} is the core
  seen_[a.var()] = true;
  for (std::size_t i = trail_.size(); i > trail_lim_[0]; --i) {
    const Var x = trail_[i - 1].var();
    if (!seen_[x]) continue;
    const ClauseRef r = reason_[x];
    if (r == kNoReason) {
      // Pseudo-decision: when an assumption is found false the check loop
      // has not placed any real decision yet, so every kNoReason trail
      // entry above root is an assumption — including ~a itself when the
      // caller passed a contradictory pair.
      failed_.push_back(trail_[i - 1]);
    } else {
      for (const Lit q : clauses_[r].lits) {
        if (level_[q.var()] > 0) seen_[q.var()] = true;
      }
    }
    seen_[x] = false;
  }
  seen_[a.var()] = false;
}

bool Solver::model_value(Var v) const {
  RTLSAT_ASSERT(v < model_.size());
  RTLSAT_ASSERT(model_[v] != Value::kUnassigned);
  return model_[v] == Value::kTrue;
}

// ---------------------------------------------------------------- heap

void Solver::heap_insert(Var v) {
  heap_pos_[v] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  heap_sift_up(heap_pos_[v]);
}

void Solver::heap_sift_up(int i) {
  const Var v = heap_[i];
  while (i > 0) {
    const int parent = (i - 1) / 2;
    if (!heap_less(v, heap_[parent])) break;
    heap_[i] = heap_[parent];
    heap_pos_[heap_[i]] = i;
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[v] = i;
}

void Solver::heap_sift_down(int i) {
  const Var v = heap_[i];
  const int n = static_cast<int>(heap_.size());
  while (true) {
    int child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && heap_less(heap_[child + 1], heap_[child])) ++child;
    if (!heap_less(heap_[child], v)) break;
    heap_[i] = heap_[child];
    heap_pos_[heap_[i]] = i;
    i = child;
  }
  heap_[i] = v;
  heap_pos_[v] = i;
}

Var Solver::heap_pop() {
  const Var top = heap_[0];
  heap_pos_[top] = -1;
  if (heap_.size() > 1) {
    heap_[0] = heap_.back();
    heap_pos_[heap_[0]] = 0;
    heap_.pop_back();
    heap_sift_down(0);
  } else {
    heap_.pop_back();
  }
  return top;
}

}  // namespace rtlsat::sat
