// Linear integer constraints over bounded variables — the input language of
// the Fourier–Motzkin end-game solver (paper §2.4: "the solution box P is
// checked for a point solution using an integer-linear solver that performs
// Fourier-Motzkin elimination").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "interval/interval.h"

namespace rtlsat::fme {

using Var = std::uint32_t;
using Coeff = std::int64_t;
// Constraint bounds live in 128 bits: extraction at width ≤ 60 emits
// coefficients up to 2^60, so substituting a point variable (or combining
// two constraints during elimination) produces bounds past int64 — doing
// that arithmetic in Coeff silently wrapped and once flipped a satisfiable
// shl-by-59 instance to UNSAT (tests/regress/shl-saturation.rtl).
using Bound = __int128;

struct Term {
  Var var = 0;
  Coeff coeff = 0;
};

// Σ terms ≤ bound. Terms are kept sorted by var with nonzero coefficients
// and at most one term per var (normalize() enforces this).
struct LinearConstraint {
  std::vector<Term> terms;
  Bound bound = 0;

  void normalize();
  bool is_ground() const { return terms.empty(); }
  // For a ground constraint: satisfied iff 0 ≤ bound.
  bool ground_holds() const { return bound >= 0; }
  Coeff coeff_of(Var v) const;
  std::string to_string() const;
};

// Evaluate Σ terms under an assignment; true when the constraint holds.
bool satisfied(const LinearConstraint& c,
               const std::vector<std::int64_t>& assignment);

// A conjunction of linear constraints over variables with interval bounds.
class System {
 public:
  Var add_var(Interval bounds);
  std::size_t num_vars() const { return bounds_.size(); }
  const Interval& bounds(Var v) const { return bounds_[v]; }
  void restrict_bounds(Var v, const Interval& b) {
    bounds_[v] = bounds_[v].intersect(b);
  }

  // Σ a_i·x_i ≤ c.
  void add_le(std::vector<Term> terms, Coeff c);
  // Σ a_i·x_i = c (expands to two inequalities at solve time).
  void add_eq(std::vector<Term> terms, Coeff c);
  // Convenience forms used by the arithmetic extraction.
  void add_le_1(Var x, Coeff a, Coeff c) { add_le({{x, a}}, c); }
  void add_eq_2(Var x, Coeff a, Var y, Coeff b, Coeff c) {
    add_eq({{x, a}, {y, b}}, c);
  }

  const std::vector<LinearConstraint>& constraints() const {
    return constraints_;
  }

  std::string to_string() const;

 private:
  std::vector<Interval> bounds_;
  std::vector<LinearConstraint> constraints_;
};

}  // namespace rtlsat::fme
