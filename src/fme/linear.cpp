#include "fme/linear.h"

#include <algorithm>
#include <sstream>

#include "util/assert.h"

namespace rtlsat::fme {

void LinearConstraint::normalize() {
  std::sort(terms.begin(), terms.end(),
            [](const Term& a, const Term& b) { return a.var < b.var; });
  std::vector<Term> merged;
  for (const Term& t : terms) {
    if (!merged.empty() && merged.back().var == t.var) {
      merged.back().coeff += t.coeff;
    } else {
      merged.push_back(t);
    }
  }
  merged.erase(std::remove_if(merged.begin(), merged.end(),
                              [](const Term& t) { return t.coeff == 0; }),
               merged.end());
  terms = std::move(merged);
}

Coeff LinearConstraint::coeff_of(Var v) const {
  for (const Term& t : terms) {
    if (t.var == v) return t.coeff;
  }
  return 0;
}

namespace {

// Streams have no __int128 inserter; print via chunks of 10^18.
std::string bound_to_string(Bound v) {
  if (v == 0) return "0";
  const bool negative = v < 0;
  unsigned __int128 magnitude =
      negative ? -static_cast<unsigned __int128>(v)
               : static_cast<unsigned __int128>(v);
  std::string digits;
  while (magnitude != 0) {
    digits.push_back(static_cast<char>('0' + static_cast<int>(magnitude % 10)));
    magnitude /= 10;
  }
  if (negative) digits.push_back('-');
  return {digits.rbegin(), digits.rend()};
}

}  // namespace

std::string LinearConstraint::to_string() const {
  std::ostringstream os;
  if (terms.empty()) os << '0';
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) os << " + ";
    os << terms[i].coeff << "*x" << terms[i].var;
  }
  os << " <= " << bound_to_string(bound);
  return os.str();
}

bool satisfied(const LinearConstraint& c,
               const std::vector<std::int64_t>& assignment) {
  __int128 sum = 0;
  for (const Term& t : c.terms) {
    RTLSAT_ASSERT(t.var < assignment.size());
    sum += static_cast<__int128>(t.coeff) * assignment[t.var];
  }
  return sum <= c.bound;
}

Var System::add_var(Interval bounds) {
  RTLSAT_ASSERT(!bounds.is_empty());
  bounds_.push_back(bounds);
  return static_cast<Var>(bounds_.size() - 1);
}

void System::add_le(std::vector<Term> terms, Coeff c) {
  LinearConstraint lc{std::move(terms), c};
  lc.normalize();
  constraints_.push_back(std::move(lc));
}

void System::add_eq(std::vector<Term> terms, Coeff c) {
  add_le(terms, c);
  for (Term& t : terms) t.coeff = -t.coeff;
  add_le(std::move(terms), -c);
}

std::string System::to_string() const {
  std::ostringstream os;
  for (Var v = 0; v < bounds_.size(); ++v)
    os << 'x' << v << " in " << bounds_[v].to_string() << '\n';
  for (const auto& c : constraints_) os << c.to_string() << '\n';
  return os.str();
}

}  // namespace rtlsat::fme
