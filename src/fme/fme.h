// Integer feasibility of a conjunction of linear constraints over bounded
// variables, by Fourier–Motzkin elimination with the Omega-test dark
// shadow and an exact splintering fallback.
//
// This plays the role the Omega library played in HDPLL (paper §2.4): after
// constraint propagation reaches bounds consistency with all Boolean
// variables assigned, the remaining solution box plus the (now linear)
// data-path constraints are handed here to certify a point solution or
// flag a conflict.
//
// Decision logic per connected component:
//   1. presolve: single-variable constraints fold into the bounds; simple
//      bound tightening; empty bound ⟹ UNSAT.
//   2. real-shadow FME: infeasible ⟹ UNSAT (the real relaxation is a
//      superset of the integer solutions). If every elimination pair had a
//      unit coefficient the shadow is exact ⟹ SAT with model.
//   3. dark-shadow FME: feasible ⟹ SAT (dark shadow is a subset of the
//      integer-solvable region); model by back-substitution.
//   4. otherwise splinter: branch on a variable's interval and recurse —
//      exact and terminating because all domains are finite.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fme/linear.h"
#include "util/stats.h"
#include "util/stop_token.h"

namespace rtlsat::trace {
class Tracer;
}  // namespace rtlsat::trace

namespace rtlsat::fme {

// kUnknown is only ever returned when a stop token fired mid-solve: the
// system was neither certified SAT nor refuted. Callers must treat it as
// "abandon this check", never as a verdict.
enum class Result { kSat, kUnsat, kUnknown };

struct SolveOptions {
  // Abort FME and splinter when the working set outgrows this (guards the
  // quadratic pair blowup).
  std::size_t max_constraints = 20000;
  // Enumerate interval values during splintering when the domain is at most
  // this big; otherwise bisect.
  std::uint64_t enumerate_limit = 16;
  // Hard cap on splinter recursion (conservative; depth is bounded by the
  // domain bit-widths anyway).
  int max_splinter_depth = 256;
  // Observability: each solve() call is recorded as a kFmeSolve event.
  // Null ⟹ trace::global() (a no-op unless RTLSAT_TRACE is set).
  trace::Tracer* tracer = nullptr;
  // Cooperative cancellation / deadline, polled at every splinter-recursion
  // entry so FME-heavy end-games respect the solver timeout and portfolio
  // cancellation. Null = never stop. Borrowed; must outlive the solver.
  const StopToken* stop = nullptr;
};

class Solver {
 public:
  explicit Solver(SolveOptions options = {}) : options_(options) {}

  // Decides the system; on kSat and model != nullptr, *model receives one
  // integer solution (size = system.num_vars(), in-bounds, verified).
  Result solve(const System& system, std::vector<std::int64_t>* model);

  const Stats& stats() const { return stats_; }

 private:
  SolveOptions options_;
  Stats stats_;
};

}  // namespace rtlsat::fme
