// Certificate-producing Fourier–Motzkin refutation.
//
// When proof logging is on and the arithmetic endgame reports UNSAT, the
// solver re-runs elimination through this module to extract a checkable
// refutation: a flat list of proof steps over the constraint system, each
// either a nonnegative combination (Farkas), an integer-division
// strengthening (Chvátal–Gomory rounding), or a case split on an integer
// variable. The steps reference axioms — base constraints and variable
// bounds — plus earlier steps, so an independent checker can replay the
// derivation with exact __int128 arithmetic and confirm the contradiction
// without trusting the eliminator.
//
// This runs only off the hot path (after fme::Solver has already answered
// UNSAT), so it favours small, checkable numbers over speed: every
// combination is gcd-normalized with a division step.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "fme/linear.h"

namespace rtlsat::fme {

// Reference into a Farkas proof's axiom/step space.
struct ProofRef {
  enum class Kind : std::uint8_t {
    kConstraint,  // system.constraints()[index]
    kUpper,       // x_index ≤ hi(index)
    kLower,       // −x_index ≤ −lo(index)
    kStep,        // result of an earlier proof step / split hypothesis
  };
  Kind kind = Kind::kConstraint;
  std::uint32_t index = 0;
};

// One step of a refutation. Steps are listed flat, in derivation order.
// kComb and kDiv derive a new constraint and get the next sequential step
// id. kSplit opens a case split on an integer variable: the left branch
// (var ≤ at) starts immediately and its hypothesis constraint takes the
// next step id; kCase closes the left branch (which must have reached a
// contradiction), discards its derivations, and opens the right branch
// (var ≥ at+1) whose hypothesis again takes the next id; kQed closes the
// right branch and discharges the split — both cases contradicted means
// the enclosing scope is contradicted (x ≤ m ∨ x ≥ m+1 is exhaustive over
// the integers).
struct CertStep {
  enum class Kind : std::uint8_t { kComb, kDiv, kSplit, kCase, kQed };
  Kind kind = Kind::kComb;
  // kComb: Σ coeff·ref with every coeff > 0; result is a new constraint.
  std::vector<std::pair<ProofRef, __int128>> combo;
  // kDiv: divide `div_of` by `divisor` (> 0, must divide every
  // coefficient exactly), rounding the bound down — sound for integers.
  ProofRef div_of;
  __int128 divisor = 1;
  // kSplit: variable and split point (left: var ≤ at, right: var ≥ at+1).
  Var split_var = 0;
  __int128 split_at = 0;
};

struct Certificate {
  bool ok = false;      // a complete refutation was produced
  std::string failure;  // when !ok: why certification was abandoned
  std::vector<CertStep> steps;
};

struct CertifyOptions {
  std::size_t max_steps = 200000;
  int max_split_depth = 96;
  // Domains with at most this many values are split by bisection anyway;
  // kept for parity with fme::SolveOptions tuning.
  std::int64_t max_constraints = 50000;
};

// Produces a refutation certificate for `system` (constraints +
// variable bounds), or Certificate{.ok = false} with a reason when the
// derivation blows past the caps — or when the system turns out to be
// integer-feasible, which callers should treat as a soundness alarm.
Certificate certify_unsat(const System& system, CertifyOptions options = {});

}  // namespace rtlsat::fme
