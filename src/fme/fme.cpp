#include "fme/fme.h"

#include <algorithm>
#include <limits>
#include <map>

#include "trace/trace.h"
#include "util/assert.h"
#include "util/log.h"

namespace rtlsat::fme {

namespace {

using I128 = __int128;
constexpr Coeff kCoeffMax = std::numeric_limits<Coeff>::max();
constexpr Coeff kCoeffMin = std::numeric_limits<Coeff>::min();

bool fits64(I128 v) {
  return v >= static_cast<I128>(kCoeffMin) && v <= static_cast<I128>(kCoeffMax);
}

// Ceiling on combined-constraint bounds (see combine()): large enough for
// any single extraction step at kMaxWidth (≤ ~2^123), small enough that
// later 128-bit bound arithmetic cannot overflow.
constexpr I128 kBoundCap = I128{1} << 100;

I128 div_floor(I128 a, I128 b) {
  RTLSAT_ASSERT(b > 0);
  I128 q = a / b;
  if (a % b != 0 && a < 0) --q;
  return q;
}
I128 div_ceil(I128 a, I128 b) {
  RTLSAT_ASSERT(b > 0);
  I128 q = a / b;
  if (a % b != 0 && a > 0) ++q;
  return q;
}

// Tightening a variable to "v ≤ q" / "v ≥ q" where q came out of a 128-bit
// division: a quotient past int64 can never bind an int64-bounded domain
// from that side, and one past the opposite rail empties it.
Interval clamp_at_most(const Interval& b, I128 q) {
  if (q >= static_cast<I128>(kCoeffMax)) return b;
  if (q < static_cast<I128>(kCoeffMin)) return Interval::empty();
  return b.at_most(static_cast<Coeff>(q));
}
Interval clamp_at_least(const Interval& b, I128 q) {
  if (q <= static_cast<I128>(kCoeffMin)) return b;
  if (q > static_cast<I128>(kCoeffMax)) return Interval::empty();
  return b.at_least(static_cast<Coeff>(q));
}

// A self-contained subproblem: interval bounds plus constraints, with
// variable ids from the original System.
struct Problem {
  std::vector<Interval> bounds;
  std::vector<LinearConstraint> constraints;
};

// One variable elimination record, kept for back-substitution: the
// constraints that mentioned the variable, as they stood when eliminated.
struct Elimination {
  Var var = 0;
  std::vector<LinearConstraint> uppers;  // positive coefficient on var
  std::vector<LinearConstraint> lowers;  // negative coefficient on var
};

enum class ShadowResult { kFeasible, kInfeasible, kBlowup };

class Eliminator {
 public:
  Eliminator(const Problem& problem, bool dark, const SolveOptions& options)
      : problem_(problem), dark_(dark), options_(options) {}

  ShadowResult run() {
    // Bounds become ordinary constraints so elimination sees them.
    work_ = problem_.constraints;
    std::vector<bool> used(problem_.bounds.size(), false);
    for (const auto& c : work_) {
      for (const Term& t : c.terms) used[t.var] = true;
    }
    for (Var v = 0; v < problem_.bounds.size(); ++v) {
      if (!used[v]) continue;  // unconstrained: any in-bounds value works
      const Interval& b = problem_.bounds[v];
      work_.push_back({{{v, 1}}, b.hi()});
      work_.push_back({{{v, -1}}, -b.lo()});
      remaining_.push_back(v);
    }
    if (!drop_ground()) return ShadowResult::kInfeasible;

    while (!remaining_.empty()) {
      const Var v = pick_variable();
      if (!eliminate(v)) return ShadowResult::kInfeasible;
      if (work_.size() > options_.max_constraints)
        return ShadowResult::kBlowup;
    }
    return ShadowResult::kFeasible;
  }

  bool all_exact() const { return all_exact_; }

  // Assigns the eliminated variables in reverse order; unassigned entries in
  // `model` must be pre-set for variables outside this component.
  bool extract_model(std::vector<std::int64_t>& model) const {
    std::vector<bool> assigned(problem_.bounds.size(), false);
    for (auto it = steps_.rbegin(); it != steps_.rend(); ++it) {
      I128 lo = problem_.bounds[it->var].lo();
      I128 hi = problem_.bounds[it->var].hi();
      for (const auto& c : it->uppers) {  // a·v + rest ≤ bound, a > 0
        const Coeff a = c.coeff_of(it->var);
        I128 rest = 0;
        for (const Term& t : c.terms) {
          if (t.var != it->var) rest += static_cast<I128>(t.coeff) * model[t.var];
        }
        hi = std::min(hi, div_floor(c.bound - rest, a));
      }
      for (const auto& c : it->lowers) {  // −b·v + rest ≤ bound, b > 0
        const Coeff b = -c.coeff_of(it->var);
        I128 rest = 0;
        for (const Term& t : c.terms) {
          if (t.var != it->var) rest += static_cast<I128>(t.coeff) * model[t.var];
        }
        lo = std::max(lo, div_ceil(rest - c.bound, b));
      }
      if (lo > hi) return false;  // real shadow was hollow here
      model[it->var] = static_cast<Coeff>(lo);  // in [bounds.lo, hi] ⊆ int64
      assigned[it->var] = true;
    }
    return true;
  }

 private:
  // Removes ground constraints; false if a violated one was found.
  bool drop_ground() {
    for (auto& c : work_) {
      if (c.is_ground() && !c.ground_holds()) return false;
    }
    std::erase_if(work_, [](const LinearConstraint& c) { return c.is_ground(); });
    return true;
  }

  Var pick_variable() const {
    Var best = remaining_.front();
    std::uint64_t best_cost = std::numeric_limits<std::uint64_t>::max();
    for (Var v : remaining_) {
      std::uint64_t pos = 0, neg = 0;
      for (const auto& c : work_) {
        const Coeff a = c.coeff_of(v);
        if (a > 0) ++pos;
        if (a < 0) ++neg;
      }
      const std::uint64_t cost = pos * neg;
      if (cost < best_cost) {
        best_cost = cost;
        best = v;
      }
    }
    return best;
  }

  bool eliminate(Var v) {
    Elimination step;
    step.var = v;
    std::vector<LinearConstraint> rest;
    for (auto& c : work_) {
      const Coeff a = c.coeff_of(v);
      if (a > 0) {
        step.uppers.push_back(std::move(c));
      } else if (a < 0) {
        step.lowers.push_back(std::move(c));
      } else {
        rest.push_back(std::move(c));
      }
    }
    work_ = std::move(rest);

    for (const auto& up : step.uppers) {
      const Coeff a = up.coeff_of(v);
      for (const auto& low : step.lowers) {
        const Coeff b = -low.coeff_of(v);
        if (a != 1 && b != 1) all_exact_ = false;
        LinearConstraint combined;
        if (!combine(up, low, v, a, b, combined)) return false;  // overflow → treat as infeasible at this level? no:
        combined.normalize();
        if (combined.is_ground()) {
          if (!combined.ground_holds()) return false;
        } else {
          work_.push_back(std::move(combined));
        }
      }
    }
    std::erase(remaining_, v);
    steps_.push_back(std::move(step));
    return true;
  }

  // combined = b·up + a·low with the v terms cancelling; dark shadow
  // subtracts (a−1)(b−1) from the slack. Returns false on coefficient
  // overflow, which the caller maps to a blowup/splinter.
  bool combine(const LinearConstraint& up, const LinearConstraint& low, Var v,
               Coeff a, Coeff b, LinearConstraint& combined) {
    std::map<Var, I128> sum;
    for (const Term& t : up.terms) {
      if (t.var != v) sum[t.var] += static_cast<I128>(b) * t.coeff;
    }
    for (const Term& t : low.terms) {
      if (t.var != v) sum[t.var] += static_cast<I128>(a) * t.coeff;
    }
    // The bound products can overflow even 128 bits once bounds have grown
    // through earlier combinations; any overflow routes to the splinter
    // path. kBoundCap leaves headroom for the point substitutions and
    // presolve arithmetic downstream, which are unchecked.
    I128 bu = 0, al = 0, bound = 0;
    if (__builtin_mul_overflow(static_cast<I128>(b), up.bound, &bu) ||
        __builtin_mul_overflow(static_cast<I128>(a), low.bound, &al) ||
        __builtin_add_overflow(bu, al, &bound)) {
      overflow_ = true;
      return false;
    }
    if (dark_) bound -= static_cast<I128>(a - 1) * (b - 1);
    if (bound < -kBoundCap || bound > kBoundCap) {
      overflow_ = true;
      return false;
    }
    for (const auto& [var, coeff] : sum) {
      if (!fits64(coeff)) {
        overflow_ = true;
        return false;
      }
      if (coeff != 0) combined.terms.push_back({var, static_cast<Coeff>(coeff)});
    }
    combined.bound = bound;
    return true;
  }

 public:
  bool overflowed() const { return overflow_; }

 private:
  const Problem& problem_;
  const bool dark_;
  const SolveOptions& options_;
  std::vector<LinearConstraint> work_;
  std::vector<Var> remaining_;
  std::vector<Elimination> steps_;
  bool all_exact_ = true;
  bool overflow_ = false;
};

// ------------------------------------------------------------- presolve

// Folds single-variable constraints into the bounds and does one-round
// bound tightening for multi-variable constraints. Returns false on an
// empty domain.
bool presolve(Problem& problem) {
  bool changed = true;
  int rounds = 0;
  while (changed && rounds++ < 16) {
    changed = false;
    std::vector<LinearConstraint> kept;
    for (auto& c : problem.constraints) {
      if (c.is_ground()) {
        if (!c.ground_holds()) return false;
        continue;
      }
      if (c.terms.size() == 1) {
        const Term t = c.terms[0];
        Interval& b = problem.bounds[t.var];
        const Interval before = b;
        if (t.coeff > 0) {
          b = clamp_at_most(b, div_floor(c.bound, t.coeff));
        } else {
          b = clamp_at_least(b, div_ceil(-c.bound, -t.coeff));
        }
        if (b.is_empty()) return false;
        if (b != before) changed = true;
        continue;  // folded into bounds
      }
      // Tighten each variable against the extremes of the others.
      for (const Term& t : c.terms) {
        I128 rest_min = 0;
        for (const Term& u : c.terms) {
          if (u.var == t.var) continue;
          const Interval& ub = problem.bounds[u.var];
          rest_min += static_cast<I128>(u.coeff) *
                      (u.coeff > 0 ? ub.lo() : ub.hi());
        }
        const I128 room = c.bound - rest_min;
        Interval& b = problem.bounds[t.var];
        const Interval before = b;
        if (t.coeff > 0) {
          b = clamp_at_most(b, div_floor(room, t.coeff));
        } else {
          b = clamp_at_least(b, div_ceil(-room, -t.coeff));
        }
        if (b.is_empty()) return false;
        if (b != before) changed = true;
      }
      kept.push_back(std::move(c));
    }
    problem.constraints = std::move(kept);
  }
  return true;
}

// Substitutes point-valued variables into the constraints. The products
// here routinely exceed int64 (coefficient 2^60 × point value 2^59), which
// is why the bound is 128-bit.
void substitute_points(Problem& problem) {
  for (auto& c : problem.constraints) {
    std::vector<Term> kept;
    for (const Term& t : c.terms) {
      const Interval& b = problem.bounds[t.var];
      if (b.is_point()) {
        c.bound -= static_cast<I128>(t.coeff) * b.lo();
      } else {
        kept.push_back(t);
      }
    }
    c.terms = std::move(kept);
  }
}

// Union-find for the connected-component decomposition.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) x = parent_[x] = parent_[parent_[x]];
    return x;
  }
  void merge(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

class Driver {
 public:
  Driver(const SolveOptions& options, Stats& stats)
      : options_(options), stats_(stats) {}

  Result solve(Problem problem, std::vector<std::int64_t>& model, int depth) {
    stats_.add("fme.calls", 1);
    if (options_.stop != nullptr && options_.stop->stop_requested()) {
      stats_.add("fme.stopped", 1);
      return Result::kUnknown;
    }
    if (depth > options_.max_splinter_depth) {
      // Should be unreachable (domains are finite); fail safe on the sound
      // side for UNSAT claims by exhaustively enumerating would be
      // exponential — treat as internal error instead.
      RTLSAT_UNREACHABLE("fme splinter depth exceeded");
    }
    if (!presolve(problem)) return Result::kUnsat;
    substitute_points(problem);
    std::erase_if(problem.constraints,
                  [](const LinearConstraint& c) { return c.is_ground() && c.ground_holds(); });
    for (const auto& c : problem.constraints) {
      if (c.is_ground() && !c.ground_holds()) return Result::kUnsat;
    }

    // Default every variable to its lower bound; constraints below refine.
    for (Var v = 0; v < problem.bounds.size(); ++v) model[v] = problem.bounds[v].lo();
    if (problem.constraints.empty()) return Result::kSat;

    // Connected components share no variables, so they solve independently.
    UnionFind uf(problem.bounds.size());
    for (const auto& c : problem.constraints) {
      for (std::size_t i = 1; i < c.terms.size(); ++i)
        uf.merge(c.terms[0].var, c.terms[i].var);
    }
    std::map<std::size_t, Problem> components;
    for (const auto& c : problem.constraints) {
      auto& comp = components[uf.find(c.terms[0].var)];
      if (comp.bounds.empty()) comp.bounds = problem.bounds;
      comp.constraints.push_back(c);
    }
    for (auto& [root, comp] : components) {
      // Solve on a scratch copy and merge back only this component's
      // variables: splinter recursion re-defaults every entry of the model
      // it is handed, which must not clobber earlier components.
      std::vector<std::int64_t> comp_model = model;
      const Result comp_result = solve_component(comp, comp_model, depth);
      if (comp_result != Result::kSat) return comp_result;
      for (const auto& c : comp.constraints) {
        for (const Term& t : c.terms) model[t.var] = comp_model[t.var];
      }
    }
    return Result::kSat;
  }

 private:
  Result solve_component(const Problem& problem,
                         std::vector<std::int64_t>& model, int depth) {
    // Real shadow first: its infeasibility is an exact UNSAT answer.
    Eliminator real(problem, /*dark=*/false, options_);
    const ShadowResult real_result = real.run();
    stats_.add("fme.real_runs", 1);
    if (real_result == ShadowResult::kInfeasible && !real.overflowed())
      return Result::kUnsat;
    if (real_result == ShadowResult::kFeasible && real.all_exact()) {
      if (real.extract_model(model) && verify(problem, model))
        return Result::kSat;
    }
    if (real_result == ShadowResult::kFeasible || real.overflowed() ||
        real_result == ShadowResult::kBlowup) {
      // Try the dark shadow: feasibility here is an exact SAT answer.
      Eliminator dark(problem, /*dark=*/true, options_);
      const ShadowResult dark_result = dark.run();
      stats_.add("fme.dark_runs", 1);
      if (dark_result == ShadowResult::kFeasible &&
          dark.extract_model(model) && verify(problem, model)) {
        return Result::kSat;
      }
    }
    // Undecided: splinter on some variable.
    return splinter(problem, model, depth);
  }

  Result splinter(const Problem& problem, std::vector<std::int64_t>& model,
                  int depth) {
    stats_.add("fme.splinters", 1);
    // Branch on the narrowest non-point variable that appears in a
    // constraint (a point variable would have been substituted).
    Var best = 0;
    std::uint64_t best_count = 0;
    bool found = false;
    for (const auto& c : problem.constraints) {
      for (const Term& t : c.terms) {
        const std::uint64_t n = problem.bounds[t.var].count();
        if (n >= 2 && (!found || n < best_count)) {
          best = t.var;
          best_count = n;
          found = true;
        }
      }
    }
    if (!found) {
      // All variables pinned: direct check.
      for (Var v = 0; v < problem.bounds.size(); ++v)
        model[v] = problem.bounds[v].lo();
      for (const auto& c : problem.constraints) {
        if (!satisfied(c, model)) return Result::kUnsat;
      }
      return Result::kSat;
    }

    const Interval b = problem.bounds[best];
    // A kUnknown from any branch (stop token fired) must surface — claiming
    // UNSAT after an abandoned branch would be unsound.
    if (b.count() <= options_.enumerate_limit) {
      for (Coeff v = b.lo(); v <= b.hi(); ++v) {
        Problem sub = problem;
        sub.bounds[best] = Interval::point(v);
        const Result r = solve(std::move(sub), model, depth + 1);
        if (r != Result::kUnsat) return r;
      }
      return Result::kUnsat;
    }
    const Coeff mid = b.lo() + static_cast<Coeff>(b.count() / 2) - 1;
    Problem left = problem;
    left.bounds[best] = Interval(b.lo(), mid);
    const Result r = solve(std::move(left), model, depth + 1);
    if (r != Result::kUnsat) return r;
    Problem right = problem;
    right.bounds[best] = Interval(mid + 1, b.hi());
    return solve(std::move(right), model, depth + 1);
  }

  // Checks the model against this problem's constraints and the bounds of
  // the variables they mention (other variables belong to sibling
  // components and are validated there).
  static bool verify(const Problem& problem,
                     const std::vector<std::int64_t>& model) {
    for (const auto& c : problem.constraints) {
      for (const Term& t : c.terms) {
        if (!problem.bounds[t.var].contains(model[t.var])) return false;
      }
      if (!satisfied(c, model)) return false;
    }
    return true;
  }

  const SolveOptions& options_;
  Stats& stats_;
};

}  // namespace

Result Solver::solve(const System& system, std::vector<std::int64_t>* model) {
  Problem problem;
  problem.bounds.reserve(system.num_vars());
  for (Var v = 0; v < system.num_vars(); ++v) {
    const Interval& b = system.bounds(v);
    if (b.is_empty()) return Result::kUnsat;
    problem.bounds.push_back(b);
  }
  problem.constraints = system.constraints();
  for (auto& c : problem.constraints) c.normalize();

  std::vector<std::int64_t> scratch(system.num_vars(), 0);
  Driver driver(options_, stats_);
  const std::size_t num_constraints = problem.constraints.size();
  const Result result = driver.solve(std::move(problem), scratch, 0);
  if (result == Result::kSat && model != nullptr) *model = std::move(scratch);
  trace::Tracer* tracer =
      options_.tracer != nullptr ? options_.tracer : &trace::global();
  tracer->record(trace::EventKind::kFmeSolve, 0,
                 static_cast<std::int64_t>(num_constraints),
                 result == Result::kSat     ? 1
                 : result == Result::kUnsat ? 0
                                            : -1);  // -1 = stopped mid-solve
  return result;
}

}  // namespace rtlsat::fme
