#include "fme/certify.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>

namespace rtlsat::fme {

namespace {

using I128 = __int128;

I128 abs128(I128 v) { return v < 0 ? -v : v; }

I128 gcd128(I128 a, I128 b) {
  a = abs128(a);
  b = abs128(b);
  while (b != 0) {
    const I128 r = a % b;
    a = b;
    b = r;
  }
  return a;
}

// Floor division for b > 0 (C++ '/' truncates toward zero).
I128 floor_div(I128 a, I128 b) {
  I128 q = a / b;
  if (a % b != 0 && a < 0) --q;
  return q;
}

// A constraint as the certifier tracks it: Σ coeff·var ≤ bound in exact
// 128-bit arithmetic, plus the proof reference that justifies it.
struct WorkCon {
  std::vector<std::pair<Var, I128>> terms;  // sorted by var, coeffs ≠ 0
  I128 bound = 0;
  ProofRef ref;
};

class Certifier {
 public:
  Certifier(const System& system, const CertifyOptions& options)
      : system_(system), options_(options) {}

  Certificate run() {
    std::vector<WorkCon> work;
    std::vector<std::pair<I128, I128>> bounds;      // value bounds per var
    std::vector<std::pair<ProofRef, ProofRef>> brefs;  // (lower, upper) refs
    const std::size_t n = system_.num_vars();
    bounds.reserve(n);
    brefs.reserve(n);
    for (Var v = 0; v < n; ++v) {
      const Interval& b = system_.bounds(v);
      bounds.emplace_back(b.lo(), b.hi());
      brefs.emplace_back(ProofRef{ProofRef::Kind::kLower, v},
                         ProofRef{ProofRef::Kind::kUpper, v});
    }
    // Empty variable domain: lo > hi refutes immediately via the two
    // bound axioms.
    for (Var v = 0; v < n; ++v) {
      if (bounds[v].first > bounds[v].second) {
        WorkCon upper{{{v, I128{1}}}, bounds[v].second, brefs[v].second};
        WorkCon lower{{{v, I128{-1}}}, -bounds[v].first, brefs[v].first};
        WorkCon out;
        if (!emit_comb_owned({{brefs[v].second, 1}, {brefs[v].first, 1}},
                             {upper, lower}, &out))
          return take();
        cert_.ok = true;
        return take();
      }
    }
    const auto& cons = system_.constraints();
    for (std::uint32_t i = 0; i < cons.size(); ++i) {
      WorkCon w;
      w.ref = ProofRef{ProofRef::Kind::kConstraint, i};
      w.bound = cons[i].bound;
      for (const Term& t : cons[i].terms)
        w.terms.emplace_back(t.var, static_cast<I128>(t.coeff));
      std::sort(w.terms.begin(), w.terms.end());
      if (w.terms.empty()) {
        if (w.bound < 0) {
          // Ground-violated base constraint: restate it as a step so the
          // checker sees an explicit empty negative derivation.
          WorkCon out;
          if (!emit_comb_owned({{w.ref, 1}}, {w}, &out)) return take();
          cert_.ok = true;
          return take();
        }
        continue;
      }
      work.push_back(std::move(w));
    }
    if (refute(std::move(work), bounds, brefs, 0)) cert_.ok = true;
    return take();
  }

 private:
  Certificate take() {
    if (!cert_.ok && cert_.failure.empty())
      cert_.failure = "refutation search failed";
    return std::move(cert_);
  }

  bool fail(const std::string& why) {
    if (cert_.failure.empty()) cert_.failure = why;
    return false;
  }

  // Step ids: kComb/kDiv derive their result, kSplit derives the left-case
  // hypothesis, kCase the right-case hypothesis — all four take the next
  // sequential id. kQed derives nothing. The checker counts identically.
  std::uint32_t push_step(CertStep step) {
    cert_.steps.push_back(std::move(step));
    return next_id_++;
  }

  // Emits Σ coeff·ref as a kComb step (optionally gcd-normalized with a
  // follow-up kDiv), resolving the refs through `resolved` — the caller
  // passes the actual term/bound content of each ref since the certifier
  // tracks content alongside refs in WorkCon form. Returns false on
  // arithmetic overflow (certification failure). `out` receives the final
  // derived constraint with its ref.
  //
  // The two-vector overload below is a convenience for bound-vs-bound
  // combinations where no WorkCon exists yet.
  // Pure combination arithmetic: Σ lambda·source, no step emitted. Lets
  // the elimination loop inspect a candidate row (box-redundancy and
  // dominance tests below) before spending a proof step on it.
  bool compute_comb(const std::vector<std::pair<ProofRef, I128>>& combo,
                    const std::vector<const WorkCon*>& sources,
                    std::vector<std::pair<Var, I128>>* terms, I128* bound_out) {
    std::map<Var, I128> sum;
    I128 bound = 0;
    for (std::size_t i = 0; i < combo.size(); ++i) {
      const I128 lambda = combo[i].second;
      const WorkCon& src = *sources[i];
      for (const auto& [var, coeff] : src.terms) {
        I128 prod = 0;
        if (__builtin_mul_overflow(lambda, coeff, &prod))
          return fail("coefficient overflow in combination");
        I128& slot = sum[var];
        if (__builtin_add_overflow(slot, prod, &slot))
          return fail("coefficient overflow in combination");
      }
      I128 prod = 0;
      if (__builtin_mul_overflow(lambda, src.bound, &prod))
        return fail("bound overflow in combination");
      if (__builtin_add_overflow(bound, prod, &bound))
        return fail("bound overflow in combination");
    }
    terms->clear();
    for (const auto& [var, coeff] : sum)
      if (coeff != 0) terms->emplace_back(var, coeff);
    *bound_out = bound;
    return true;
  }

  bool emit_comb(const std::vector<std::pair<ProofRef, I128>>& combo,
                 const std::vector<const WorkCon*>& sources, WorkCon* out) {
    if (cert_.steps.size() >= options_.max_steps)
      return fail("step budget exhausted");
    std::vector<std::pair<Var, I128>> terms;
    I128 bound = 0;
    if (!compute_comb(combo, sources, &terms, &bound)) return false;
    CertStep step;
    step.kind = CertStep::Kind::kComb;
    step.combo = combo;
    const std::uint32_t id = push_step(std::move(step));
    out->terms = std::move(terms);
    out->bound = bound;
    out->ref = ProofRef{ProofRef::Kind::kStep, id};
    // Chvátal–Gomory rounding: divide by the coefficient gcd and floor
    // the bound — strictly stronger over the integers and keeps numbers
    // small across elimination rounds.
    if (!out->terms.empty()) {
      I128 g = 0;
      for (const auto& [var, coeff] : out->terms) g = gcd128(g, coeff);
      if (g > 1) {
        if (cert_.steps.size() >= options_.max_steps)
          return fail("step budget exhausted");
        CertStep div;
        div.kind = CertStep::Kind::kDiv;
        div.div_of = out->ref;
        div.divisor = g;
        const std::uint32_t did = push_step(std::move(div));
        for (auto& [var, coeff] : out->terms) coeff /= g;
        out->bound = floor_div(out->bound, g);
        out->ref = ProofRef{ProofRef::Kind::kStep, did};
      }
    }
    return true;
  }

  // Convenience overload for combinations over axioms that have no
  // WorkCon in the current working set: the caller supplies the content
  // of each referenced constraint by value.
  bool emit_comb_owned(const std::vector<std::pair<ProofRef, I128>>& combo,
                       std::vector<WorkCon> owned, WorkCon* out) {
    std::vector<const WorkCon*> sources;
    sources.reserve(owned.size());
    for (const WorkCon& w : owned) sources.push_back(&w);
    return emit_comb(combo, sources, out);
  }

  // Extreme of Σ coeff·var over the bounds box (max when `maximize`, min
  // otherwise). False on overflow, in which case the caller must not use
  // the test — the row simply goes through the full elimination instead.
  static bool box_extreme(const std::vector<std::pair<Var, I128>>& terms,
                          const std::vector<std::pair<I128, I128>>& bounds,
                          bool maximize, I128* out) {
    I128 acc = 0;
    for (const auto& [var, coeff] : terms) {
      const I128 pick =
          (coeff > 0) == maximize ? bounds[var].second : bounds[var].first;
      I128 prod = 0;
      if (__builtin_mul_overflow(coeff, pick, &prod)) return false;
      if (__builtin_add_overflow(acc, prod, &acc)) return false;
    }
    *out = acc;
    return true;
  }

  // The row's minimum over the bounds box exceeds its bound: cancel every
  // term against the matching bound axiom. The result is an empty negative
  // combination, i.e. an explicit contradiction closing the current scope.
  // This mirrors the bound propagation that usually detects the conflict
  // in the solver, and is what keeps certificates short when the full
  // elimination would blow up.
  bool close_by_bounds(const WorkCon& row,
                       const std::vector<std::pair<I128, I128>>& bounds,
                       const std::vector<std::pair<ProofRef, ProofRef>>& brefs) {
    std::vector<std::pair<ProofRef, I128>> combo{{row.ref, I128{1}}};
    std::vector<WorkCon> owned;
    owned.push_back(row);
    for (const auto& [var, coeff] : row.terms) {
      WorkCon axiom;
      if (coeff > 0) {
        axiom.terms = {{var, I128{-1}}};
        axiom.bound = -bounds[var].first;
        axiom.ref = brefs[var].first;
        combo.emplace_back(axiom.ref, coeff);
      } else {
        axiom.terms = {{var, I128{1}}};
        axiom.bound = bounds[var].second;
        axiom.ref = brefs[var].second;
        combo.emplace_back(axiom.ref, -coeff);
      }
      owned.push_back(std::move(axiom));
    }
    WorkCon out;
    if (!emit_comb_owned(combo, std::move(owned), &out)) return false;
    if (!out.terms.empty() || out.bound >= 0)
      return fail("bound-axiom closure did not cancel");
    return true;
  }

  // CG-normalized (gcd-reduced, floor-rounded) view of a row, used as the
  // dominance key so syntactically different derivations of the same
  // inequality collide.
  static std::pair<std::vector<std::pair<Var, I128>>, I128> norm_row(
      std::vector<std::pair<Var, I128>> terms, I128 bound) {
    I128 g = 0;
    for (const auto& [var, coeff] : terms) g = gcd128(g, coeff);
    if (g > 1) {
      for (auto& [var, coeff] : terms) coeff /= g;
      bound = floor_div(bound, g);
    }
    return {std::move(terms), bound};
  }

  // Refutes the scope described by `work` (non-ground constraints) under
  // per-variable bounds `bounds` justified by `brefs`. Emits steps; true
  // iff a contradiction step closed the scope.
  bool refute(std::vector<WorkCon> work,
              std::vector<std::pair<I128, I128>> bounds,
              std::vector<std::pair<ProofRef, ProofRef>> brefs, int depth) {
    if (depth > options_.max_split_depth) return fail("split depth exceeded");

    // Bound tightening to fixpoint — the proof-emitting mirror of the
    // solver's presolve, and the main defense against FME blowup: each
    // improved bound is a Farkas combination of a row with the other
    // variables' bound axioms (CG-rounded by the variable's coefficient),
    // and the derived single-variable row replaces that side's axiom ref.
    // A row infeasible over the box closes the scope in one combination —
    // the common case inside split branches, where the hypothesis bound
    // kills a base constraint outright.
    bool changed = true;
    for (int round = 0; changed && round < 64; ++round) {
      changed = false;
      std::vector<WorkCon> kept;
      for (WorkCon& c : work) {
        I128 lo = 0;
        const bool have_lo =
            box_extreme(c.terms, bounds, /*maximize=*/false, &lo);
        if (have_lo && lo > c.bound) return close_by_bounds(c, bounds, brefs);
        I128 hi = 0;
        if (box_extreme(c.terms, bounds, /*maximize=*/true, &hi) &&
            hi <= c.bound)
          continue;  // implied by the box: drop without a step
        for (const auto& [t, ct] : c.terms) {
          // room = bound − min of the other terms over the (current) box.
          std::vector<std::pair<Var, I128>> rest;
          for (const auto& term : c.terms)
            if (term.first != t) rest.push_back(term);
          I128 rest_min = 0;
          if (!box_extreme(rest, bounds, /*maximize=*/false, &rest_min))
            continue;
          I128 room = 0;
          if (__builtin_sub_overflow(c.bound, rest_min, &room)) continue;
          const I128 nb =
              ct > 0 ? floor_div(room, ct) : -floor_div(room, -ct);
          // Only spend a step on a strict improvement.
          if (ct > 0 ? nb >= bounds[t].second : nb <= bounds[t].first)
            continue;
          std::vector<std::pair<ProofRef, I128>> combo{{c.ref, I128{1}}};
          std::vector<WorkCon> owned;
          owned.push_back(c);
          for (const auto& [u, cu] : c.terms) {
            if (u == t) continue;
            WorkCon axiom;
            if (cu > 0) {
              axiom.terms = {{u, I128{-1}}};
              axiom.bound = -bounds[u].first;
              axiom.ref = brefs[u].first;
            } else {
              axiom.terms = {{u, I128{1}}};
              axiom.bound = bounds[u].second;
              axiom.ref = brefs[u].second;
            }
            combo.emplace_back(axiom.ref, cu > 0 ? cu : -cu);
            owned.push_back(std::move(axiom));
          }
          // The derived row is single-variable (±1 after CG rounding); its
          // bound, not our preview, becomes the new axiom so the WorkCon
          // view can never drift from what the emitted step proves.
          WorkCon derived;
          if (!emit_comb_owned(combo, std::move(owned), &derived))
            return false;
          if (ct > 0) {
            bounds[t].second = derived.bound;
            brefs[t].second = derived.ref;
          } else {
            bounds[t].first = -derived.bound;
            brefs[t].first = derived.ref;
          }
          if (bounds[t].first > bounds[t].second)
            return close_by_bounds(derived, bounds, brefs);
          changed = true;
        }
        kept.push_back(std::move(c));
      }
      work = std::move(kept);
    }
    const std::vector<WorkCon> original = work;  // for split restarts

    // Collect the variables still mentioned.
    auto active_vars = [&work] {
      std::vector<Var> vars;
      for (const WorkCon& c : work)
        for (const auto& [var, coeff] : c.terms) vars.push_back(var);
      std::sort(vars.begin(), vars.end());
      vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
      return vars;
    };

    for (std::vector<Var> vars = active_vars(); !vars.empty();
         vars = active_vars()) {
      if (work.size() >
          static_cast<std::size_t>(options_.max_constraints))
        return fail("constraint budget exhausted");
      // Cheapest variable first: fewest pos×neg combinations.
      Var best = vars.front();
      std::size_t best_score = SIZE_MAX;
      for (const Var v : vars) {
        std::size_t pos = 1, neg = 1;  // the two bound axioms
        for (const WorkCon& c : work) {
          for (const auto& [var, coeff] : c.terms) {
            if (var != v) continue;
            (coeff > 0 ? pos : neg) += 1;
          }
        }
        const std::size_t score = pos * neg;
        if (score < best_score) {
          best_score = score;
          best = v;
        }
      }
      const Var v = best;

      WorkCon upper;  // x_v ≤ hi
      upper.terms = {{v, I128{1}}};
      upper.bound = bounds[v].second;
      upper.ref = brefs[v].second;
      WorkCon lower;  // −x_v ≤ −lo
      lower.terms = {{v, I128{-1}}};
      lower.bound = -bounds[v].first;
      lower.ref = brefs[v].first;

      std::vector<const WorkCon*> pos{&upper};
      std::vector<const WorkCon*> neg{&lower};
      std::vector<WorkCon> next;
      for (const WorkCon& c : work) {
        I128 coeff = 0;
        for (const auto& [var, cf] : c.terms)
          if (var == v) coeff = cf;
        if (coeff > 0)
          pos.push_back(&c);
        else if (coeff < 0)
          neg.push_back(&c);
        else
          next.push_back(c);
      }
      // Strongest bound seen per normalized term vector among the rows
      // surviving into the next round — weaker duplicates are skipped
      // without spending a proof step. Only rows still in `next` may
      // dominate: a row consumed by this elimination must not suppress a
      // rederivation of the same inequality.
      std::map<std::vector<std::pair<Var, I128>>, I128> strongest;
      for (const WorkCon& c : next) {
        auto [key, nb] = norm_row(c.terms, c.bound);
        const auto it = strongest.find(key);
        if (it == strongest.end() || nb < it->second)
          strongest[std::move(key)] = nb;
      }
      for (const WorkCon* p : pos) {
        for (const WorkCon* q : neg) {
          if (p == &upper && q == &lower) continue;  // hi−lo ≥ 0 here
          I128 a = 0, b = 0;  // a = p's coeff on v (>0), b = −q's (>0)
          for (const auto& [var, cf] : p->terms)
            if (var == v) a = cf;
          for (const auto& [var, cf] : q->terms)
            if (var == v) b = -cf;
          const I128 g = gcd128(a, b);
          const std::vector<std::pair<ProofRef, I128>> combo{
              {p->ref, b / g}, {q->ref, a / g}};
          // Inspect the candidate before emitting: rows implied by the
          // bounds box and rows dominated by an already-kept bound carry
          // no refutation power and only feed the FME blowup.
          std::vector<std::pair<Var, I128>> cterms;
          I128 cbound = 0;
          if (!compute_comb(combo, {p, q}, &cterms, &cbound)) return false;
          if (cterms.empty()) {
            if (cbound >= 0) continue;  // trivially satisfied: no step
            WorkCon derived;
            if (!emit_comb(combo, {p, q}, &derived)) return false;
            return true;  // contradiction: scope closed
          }
          auto [key, nbound] = norm_row(cterms, cbound);
          I128 lo = 0, hi = 0;
          const bool have_lo = box_extreme(key, bounds, false, &lo);
          const bool have_hi = box_extreme(key, bounds, true, &hi);
          if (have_hi && hi <= nbound) continue;  // box-implied: redundant
          const auto it = strongest.find(key);
          if (it != strongest.end() && it->second <= nbound) continue;
          WorkCon derived;
          if (!emit_comb(combo, {p, q}, &derived)) return false;
          if (have_lo && lo > nbound)
            return close_by_bounds(derived, bounds, brefs);
          strongest[std::move(key)] = nbound;
          next.push_back(std::move(derived));
        }
      }
      work = std::move(next);
    }

    // Real shadow is feasible at this scope: branch on an integer
    // variable with the narrowest non-point domain.
    Var split_var = 0;
    I128 split_span = -1;
    std::vector<Var> cand;
    for (const WorkCon& c : original)
      for (const auto& [var, coeff] : c.terms) cand.push_back(var);
    std::sort(cand.begin(), cand.end());
    cand.erase(std::unique(cand.begin(), cand.end()), cand.end());
    for (const Var v : cand) {
      const I128 span = bounds[v].second - bounds[v].first;
      if (span >= 1 && (split_span < 0 || span < split_span)) {
        split_span = span;
        split_var = v;
      }
    }
    if (split_span < 0) {
      // Every variable pinned and no contradiction: the point satisfies
      // all constraints, so the system is integer-feasible. The caller
      // believed it UNSAT — surface this loudly.
      return fail("system is integer-feasible (soundness alarm)");
    }
    const I128 at =
        bounds[split_var].first + (bounds[split_var].second -
                                   bounds[split_var].first) / 2;

    if (cert_.steps.size() + 2 >= options_.max_steps)
      return fail("step budget exhausted");
    CertStep split;
    split.kind = CertStep::Kind::kSplit;
    split.split_var = split_var;
    split.split_at = at;
    const std::uint32_t left_hyp = push_step(std::move(split));
    {
      auto b2 = bounds;
      auto r2 = brefs;
      b2[split_var].second = at;
      r2[split_var].second = ProofRef{ProofRef::Kind::kStep, left_hyp};
      if (!refute(original, std::move(b2), std::move(r2), depth + 1))
        return false;
    }
    CertStep case_step;
    case_step.kind = CertStep::Kind::kCase;
    const std::uint32_t right_hyp = push_step(std::move(case_step));
    {
      auto b2 = bounds;
      auto r2 = brefs;
      b2[split_var].first = at + 1;
      r2[split_var].first = ProofRef{ProofRef::Kind::kStep, right_hyp};
      if (!refute(original, std::move(b2), std::move(r2), depth + 1))
        return false;
    }
    CertStep qed;
    qed.kind = CertStep::Kind::kQed;
    cert_.steps.push_back(std::move(qed));  // derives nothing: no id
    return true;
  }

  const System& system_;
  const CertifyOptions& options_;
  Certificate cert_;
  std::uint32_t next_id_ = 0;
};

}  // namespace

Certificate certify_unsat(const System& system, CertifyOptions options) {
  return Certifier(system, options).run();
}

}  // namespace rtlsat::fme
