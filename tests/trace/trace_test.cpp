#include "trace/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/hdpll.h"
#include "trace/json.h"
#include "trace/progress.h"

namespace rtlsat::trace {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---------------------------------------------------------------------------
// Binary event encoding

TEST(Event, EncodeDecodeRoundTrip) {
  const Event original{.t_us = 123456789,
                       .a = -42,
                       .b = std::int64_t{1} << 40,
                       .level = 17,
                       .kind = EventKind::kLearnedRelation};
  std::vector<std::uint8_t> bytes;
  encode_event(original, bytes);
  ASSERT_EQ(bytes.size(), kEncodedEventSize);

  Event decoded;
  ASSERT_TRUE(decode_event(bytes.data(), bytes.size(), decoded));
  EXPECT_EQ(decoded, original);
}

TEST(Event, DecodeRejectsTruncation) {
  const Event original{.t_us = 1, .a = 2, .b = 3, .level = 4,
                       .kind = EventKind::kRestart};
  std::vector<std::uint8_t> bytes;
  encode_event(original, bytes);
  Event decoded;
  for (std::size_t size = 0; size < bytes.size(); ++size)
    EXPECT_FALSE(decode_event(bytes.data(), size, decoded)) << size;
}

TEST(Event, DecodeRejectsInvalidKind) {
  Event original{.kind = EventKind::kDecision};
  std::vector<std::uint8_t> bytes;
  encode_event(original, bytes);
  bytes.back() = static_cast<std::uint8_t>(EventKind::kMaxKind);
  Event decoded;
  EXPECT_FALSE(decode_event(bytes.data(), bytes.size(), decoded));
  bytes.back() = 0xff;
  EXPECT_FALSE(decode_event(bytes.data(), bytes.size(), decoded));
}

TEST(Event, KindNamesAreStableAndDistinct) {
  std::vector<std::string> names;
  for (int k = 0; k < static_cast<int>(EventKind::kMaxKind); ++k)
    names.push_back(kind_name(static_cast<EventKind>(k)));
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_FALSE(names[i].empty());
    for (std::size_t j = i + 1; j < names.size(); ++j)
      EXPECT_NE(names[i], names[j]);
  }
  EXPECT_EQ(std::string(kind_name(EventKind::kDecision)), "decision");
  EXPECT_EQ(std::string(kind_name(EventKind::kPhaseBegin)), "phase_begin");
}

// ---------------------------------------------------------------------------
// Tracer

TEST(Tracer, DefaultConstructedIsDisabled) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  EXPECT_FALSE(tracer.verbose());
  tracer.record(EventKind::kConflict, 3, 1, 2);
  EXPECT_EQ(tracer.events_recorded(), 0);
  EXPECT_TRUE(tracer.drain().empty());
}

TEST(Tracer, InMemoryCollection) {
  TracerOptions options;
  options.collect_in_memory = true;
  Tracer tracer(options);
  ASSERT_TRUE(tracer.enabled());
  tracer.record(EventKind::kDecision, 1, 10, 1);
  tracer.record(EventKind::kConflict, 2, 5);
  EXPECT_EQ(tracer.events_recorded(), 2);

  const std::vector<Event> events = tracer.drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kDecision);
  EXPECT_EQ(events[0].a, 10);
  EXPECT_EQ(events[0].level, 1u);
  EXPECT_EQ(events[1].kind, EventKind::kConflict);
  EXPECT_LE(events[0].t_us, events[1].t_us);
  EXPECT_TRUE(tracer.drain().empty());  // drain moves everything out
}

TEST(Tracer, SmallRingFlushesWithoutLosingEvents) {
  TracerOptions options;
  options.collect_in_memory = true;
  options.ring_capacity = 4;
  Tracer tracer(options);
  for (int i = 0; i < 100; ++i)
    tracer.record(EventKind::kNarrowing, 0, i);
  EXPECT_EQ(tracer.events_recorded(), 100);
  const std::vector<Event> events = tracer.drain();
  ASSERT_EQ(events.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(events[i].a, i);  // order kept
}

TEST(Tracer, InternIdsAreStable) {
  TracerOptions options;
  options.collect_in_memory = true;
  Tracer tracer(options);
  const std::int64_t search = tracer.intern("search");
  const std::int64_t parse = tracer.intern("parse");
  EXPECT_NE(search, parse);
  EXPECT_EQ(tracer.intern("search"), search);
  EXPECT_EQ(tracer.phase_name(search), "search");
  EXPECT_EQ(tracer.phase_name(parse), "parse");
}

TEST(Tracer, ScopedPhaseEmitsBalancedEventsAndAccumulatesTime) {
  TracerOptions options;
  options.collect_in_memory = true;
  Tracer tracer(options);
  Stats stats;
  {
    ScopedPhase phase(&tracer, &stats, "search");
  }
  const std::vector<Event> events = tracer.drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kPhaseBegin);
  EXPECT_EQ(events[1].kind, EventKind::kPhaseEnd);
  EXPECT_EQ(events[0].a, events[1].a);  // same interned name id
  EXPECT_EQ(tracer.phase_name(events[0].a), "search");
  // The phase-profiling convention: time lands in "time.<name>_us".
  EXPECT_EQ(stats.all().count("time.search_us"), 1u);
  EXPECT_GE(stats.get("time.search_us"), 0);
}

TEST(Tracer, ScopedPhaseToleratesNullPointers) {
  ScopedPhase both_null(nullptr, nullptr, "x");
  Stats stats;
  ScopedPhase no_tracer(nullptr, &stats, "y");
  Tracer disabled;
  ScopedPhase disabled_tracer(&disabled, nullptr, "z");
}

TEST(Tracer, JsonlSinkParsesBackLineByLine) {
  const std::string path = temp_path("rtlsat_trace_test.jsonl");
  {
    TracerOptions options;
    options.jsonl_path = path;
    Tracer tracer(options);
    tracer.record(EventKind::kDecision, 1, 7, 1);
    tracer.record(EventKind::kLearnedClause, 2, 5, 1);
    tracer.begin_phase("search");
    tracer.end_phase("search");
    tracer.close();
  }
  std::istringstream lines(read_file(path));
  std::string line;
  std::vector<JsonValue> parsed;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(json_parse(line, &doc, &error)) << error;
    ASSERT_TRUE(doc.is_object());
    ASSERT_NE(doc.find("t_us"), nullptr);
    ASSERT_NE(doc.find("kind"), nullptr);
    parsed.push_back(doc);
  }
  ASSERT_EQ(parsed.size(), 4u);
  EXPECT_EQ(parsed[0].find("kind")->string, "decision");
  EXPECT_EQ(parsed[0].find("a")->number, 7);
  EXPECT_EQ(parsed[1].find("kind")->string, "learned_clause");
  EXPECT_EQ(parsed[2].find("kind")->string, "phase_begin");
  // Phase events carry the phase name, not just the interned id.
  ASSERT_NE(parsed[2].find("name"), nullptr);
  EXPECT_EQ(parsed[2].find("name")->string, "search");
  std::filesystem::remove(path);
}

TEST(Tracer, ChromeSinkIsValidTraceEventJson) {
  const std::string path = temp_path("rtlsat_trace_test.trace.json");
  {
    TracerOptions options;
    options.chrome_path = path;
    Tracer tracer(options);
    tracer.begin_phase("search");
    tracer.record(EventKind::kConflict, 4, 3);
    tracer.end_phase("search");
    tracer.close();
  }
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse(read_file(path), &doc, &error)) << error;
  ASSERT_TRUE(doc.is_object());
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 3u);
  // Phase brackets become duration begin/end events; everything else is an
  // instant or counter event. All carry ph/ts/name.
  std::vector<std::string> phases;
  for (const JsonValue& ev : events->array) {
    ASSERT_TRUE(ev.is_object());
    ASSERT_NE(ev.find("ph"), nullptr);
    ASSERT_NE(ev.find("ts"), nullptr);
    ASSERT_NE(ev.find("name"), nullptr);
    phases.push_back(ev.find("ph")->string);
  }
  EXPECT_EQ(phases.front(), "B");
  EXPECT_EQ(phases.back(), "E");
  std::filesystem::remove(path);
}

TEST(Tracer, CloseIsIdempotentAndDisables) {
  TracerOptions options;
  options.collect_in_memory = true;
  Tracer tracer(options);
  tracer.record(EventKind::kRestart, 0, 1);
  tracer.close();
  EXPECT_FALSE(tracer.enabled());
  tracer.record(EventKind::kRestart, 0, 2);  // dropped: closed
  tracer.close();                            // idempotent
  EXPECT_EQ(tracer.events_recorded(), 1);
}

// ---------------------------------------------------------------------------
// JSON writer / parser

TEST(Json, WriterEscapesAndNests) {
  JsonWriter w;
  w.begin_object();
  w.key("s").value("a\"b\\c\n\t");
  w.key("n").value(std::int64_t{-7});
  w.key("d").value(1.5);
  w.key("t").value(true);
  w.key("z").null();
  w.key("arr").begin_array().value(1).value(2).end_array();
  w.end_object();
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse(w.str(), &doc, &error)) << error << "\n" << w.str();
  EXPECT_EQ(doc.find("s")->string, "a\"b\\c\n\t");
  EXPECT_EQ(doc.find("n")->number, -7);
  EXPECT_EQ(doc.find("d")->number, 1.5);
  EXPECT_TRUE(doc.find("t")->boolean);
  EXPECT_EQ(doc.find("z")->kind, JsonValue::Kind::kNull);
  ASSERT_EQ(doc.find("arr")->array.size(), 2u);
  EXPECT_EQ(doc.find("arr")->array[1].number, 2);
}

TEST(Json, ParserAcceptsScalarsAndRejectsGarbage) {
  JsonValue doc;
  std::string error;
  EXPECT_TRUE(json_parse("  42.5e1 ", &doc, &error));
  EXPECT_EQ(doc.number, 425);
  EXPECT_TRUE(json_parse("\"a\\u0041b\"", &doc, &error));
  EXPECT_TRUE(json_parse("[1, [2, {\"k\": null}]]", &doc, &error));
  EXPECT_FALSE(json_parse("", &doc, &error));
  EXPECT_FALSE(json_parse("{", &doc, &error));
  EXPECT_FALSE(json_parse("[1,]", &doc, &error));
  EXPECT_FALSE(json_parse("{\"a\":1} trailing", &doc, &error));
  EXPECT_FALSE(json_parse("nul", &doc, &error));
}

// ---------------------------------------------------------------------------
// Progress reporter (fake clock pins the cadence)

TEST(Progress, RateLimitsToInterval) {
  double now = 0.0;
  ProgressOptions options;
  options.banner = false;
  options.interval_seconds = 1.0;
  options.clock = [&now] { return now; };
  ProgressReporter reporter(options);

  ProgressSnapshot snapshot;
  for (int conflict = 0; conflict < 1000; ++conflict) {
    snapshot.conflicts = conflict;
    now = 0.01 * conflict;  // 1000 ticks spread over 10 fake seconds
    reporter.tick(snapshot);
  }
  // One report per elapsed interval, not one per tick.
  EXPECT_GE(reporter.reports(), 8);
  EXPECT_LE(reporter.reports(), 11);
}

TEST(Progress, FinishAlwaysReports) {
  double now = 0.0;
  ProgressOptions options;
  options.banner = false;
  options.interval_seconds = 1e9;  // tick() never fires on its own
  options.clock = [&now] { return now; };
  ProgressReporter reporter(options);
  ProgressSnapshot snapshot;
  snapshot.conflicts = 5;
  reporter.tick(snapshot);
  EXPECT_EQ(reporter.reports(), 0);
  reporter.finish(snapshot);
  EXPECT_EQ(reporter.reports(), 1);
}

TEST(Progress, JsonlHeartbeatCarriesCounters) {
  const std::string path = temp_path("rtlsat_progress_test.jsonl");
  double now = 0.0;
  {
    ProgressOptions options;
    options.banner = false;
    options.jsonl_path = path;
    options.interval_seconds = 1.0;
    options.clock = [&now] { return now; };
    ProgressReporter reporter(options);
    ProgressSnapshot snapshot;
    snapshot.conflicts = 3;
    snapshot.decisions = 9;
    snapshot.propagations = 27;
    now = 2.0;
    reporter.tick(snapshot);
    reporter.finish(snapshot);
  }
  std::istringstream lines(read_file(path));
  std::string line;
  int heartbeats = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(json_parse(line, &doc, &error)) << error;
    EXPECT_EQ(doc.find("conflicts")->number, 3);
    EXPECT_EQ(doc.find("decisions")->number, 9);
    EXPECT_EQ(doc.find("propagations")->number, 27);
    ++heartbeats;
  }
  EXPECT_EQ(heartbeats, 2);
  std::filesystem::remove(path);
}

TEST(Progress, HeartbeatsCarrySchemaVersionAndSequence) {
  // Every heartbeat line carries v = kHeartbeatSchemaVersion and a
  // 0-based seq that advances by exactly 1 per line, tagged with the
  // worker label when one is set — the contract the serve protocol and
  // bench_json_validate's jsonl mode both rely on.
  struct CollectSink : JsonlSink {
    std::vector<std::string> lines;
    void write_line(const std::string& line) override {
      lines.push_back(line);
    }
  } sink;
  double now = 0.0;
  ProgressOptions options;
  options.banner = false;
  options.interval_seconds = 1.0;
  options.clock = [&now] { return now; };
  options.sink = &sink;
  options.label = "w3";
  ProgressReporter reporter(options);
  ProgressSnapshot snapshot;
  for (int i = 1; i <= 3; ++i) {
    snapshot.conflicts = i;
    now = static_cast<double>(i) * 1.5;
    reporter.tick(snapshot);
  }
  reporter.finish(snapshot);
  ASSERT_EQ(sink.lines.size(), 4u);
  for (std::size_t i = 0; i < sink.lines.size(); ++i) {
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(json_parse(sink.lines[i], &doc, &error)) << error;
    ASSERT_NE(doc.find("v"), nullptr);
    EXPECT_EQ(doc.find("v")->number, kHeartbeatSchemaVersion);
    ASSERT_NE(doc.find("seq"), nullptr);
    EXPECT_EQ(doc.find("seq")->number, static_cast<double>(i));
    ASSERT_NE(doc.find("worker"), nullptr);
    EXPECT_EQ(doc.find("worker")->string, "w3");
  }
}

TEST(Progress, BannerPrintsHeaderOnceAndRows) {
  std::FILE* stream = std::tmpfile();
  ASSERT_NE(stream, nullptr);
  double now = 0.0;
  ProgressOptions options;
  options.stream = stream;
  options.interval_seconds = 1.0;
  options.clock = [&now] { return now; };
  ProgressReporter reporter(options);
  ProgressSnapshot snapshot;
  for (int i = 1; i <= 3; ++i) {
    snapshot.conflicts = i * 100;
    now = static_cast<double>(i) * 1.5;
    reporter.tick(snapshot);
  }
  std::fflush(stream);
  std::rewind(stream);
  std::string text;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof buffer, stream)) > 0)
    text.append(buffer, n);
  std::fclose(stream);
  EXPECT_NE(text.find("conflicts"), std::string::npos);  // header
  EXPECT_NE(text.find("300"), std::string::npos);        // last row
  // The header appears once even though three rows were printed.
  EXPECT_EQ(text.find("conflicts"), text.rfind("conflicts"));
}

TEST(Progress, EmitsCounterEventsIntoTracer) {
  TracerOptions topts;
  topts.collect_in_memory = true;
  Tracer tracer(topts);
  ProgressOptions options;
  options.banner = false;
  options.interval_seconds = 0.0;
  options.tracer = &tracer;
  ProgressReporter reporter(options);
  ProgressSnapshot snapshot;
  snapshot.conflicts = 12;
  snapshot.decisions = 34;
  reporter.finish(snapshot);
  const std::vector<Event> events = tracer.drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, EventKind::kProgress);
  EXPECT_EQ(events[0].a, 12);
  EXPECT_EQ(events[0].b, 34);
}

// ---------------------------------------------------------------------------
// Zero-drift regression: tracing must observe the search, not perturb it.

core::SolveResult solve_quickstartish(trace::Tracer* tracer, Stats* stats,
                                      bool predicate_learning = true) {
  ir::Circuit c("t");
  const ir::NetId acc = c.add_input("acc", 8);
  const ir::NetId in = c.add_input("in", 8);
  const ir::NetId cap = c.add_const(200, 8);
  const ir::NetId saturated = c.add_min(c.add_add(acc, in), cap);
  const ir::NetId goal =
      c.add_and(c.add_eq(saturated, cap),
                c.add_lt(acc, c.add_const(100, 8)));
  core::HdpllOptions options;
  options.structural_decisions = true;
  options.predicate_learning = predicate_learning;
  options.tracer = tracer;
  core::HdpllSolver solver(c, options);
  solver.assume_bool(goal, true);
  const core::SolveResult result = solver.solve();
  *stats = solver.stats();
  return result;
}

// Strips the wall-clock-dependent "time.*" phase counters, which legitimately
// differ run to run.
std::map<std::string, std::int64_t> search_counters(const Stats& stats) {
  std::map<std::string, std::int64_t> out;
  for (const auto& [name, value] : stats.all())
    if (name.rfind("time.", 0) != 0) out[name] = value;
  return out;
}

TEST(ZeroDrift, EnabledTracerDoesNotChangeTheSearch) {
  Stats default_stats;
  const core::SolveResult with_default =
      solve_quickstartish(nullptr, &default_stats);

  Tracer disabled;
  Stats disabled_stats;
  const core::SolveResult with_disabled =
      solve_quickstartish(&disabled, &disabled_stats);
  EXPECT_EQ(disabled.events_recorded(), 0);

  TracerOptions topts;
  topts.collect_in_memory = true;
  topts.verbose = true;
  Tracer enabled(topts);
  Stats enabled_stats;
  const core::SolveResult with_enabled =
      solve_quickstartish(&enabled, &enabled_stats);
  EXPECT_GT(enabled.events_recorded(), 0);

  EXPECT_EQ(with_default.status, with_disabled.status);
  EXPECT_EQ(with_default.status, with_enabled.status);
  // Identical decision/conflict/propagation trajectories: the tracer is a
  // pure observer.
  EXPECT_EQ(search_counters(default_stats), search_counters(disabled_stats));
  EXPECT_EQ(search_counters(default_stats), search_counters(enabled_stats));
}

TEST(ZeroDrift, ProgressReporterDoesNotChangeTheSearch) {
  Stats baseline_stats;
  const core::SolveResult baseline =
      solve_quickstartish(nullptr, &baseline_stats);

  ir::Circuit c("t");
  const ir::NetId acc = c.add_input("acc", 8);
  const ir::NetId in = c.add_input("in", 8);
  const ir::NetId cap = c.add_const(200, 8);
  const ir::NetId saturated = c.add_min(c.add_add(acc, in), cap);
  const ir::NetId goal =
      c.add_and(c.add_eq(saturated, cap),
                c.add_lt(acc, c.add_const(100, 8)));
  core::HdpllOptions options;
  options.structural_decisions = true;
  options.predicate_learning = true;
  ProgressOptions popts;
  popts.banner = false;
  ProgressReporter progress(popts);
  options.progress = &progress;
  core::HdpllSolver solver(c, options);
  solver.assume_bool(goal, true);
  const core::SolveResult result = solver.solve();

  EXPECT_EQ(result.status, baseline.status);
  EXPECT_GE(progress.reports(), 1);  // the final finish() report
  EXPECT_EQ(search_counters(baseline_stats), search_counters(solver.stats()));
}

// The cached-handle satellite: the solver exports its per-search totals both
// through the counters and the histograms the hooks feed.
TEST(SolverStats, HistogramsAndCountersArePopulated) {
  // Without predicate learning the saturation circuit forces at least one
  // decision and one conflict before the SAT witness (learned predicates —
  // and FME level-0 refutations — can otherwise end the search without
  // either counter moving).
  Stats stats;
  ASSERT_EQ(
      solve_quickstartish(nullptr, &stats, /*predicate_learning=*/false).status,
      core::SolveStatus::kSat);
  EXPECT_GT(stats.get("hdpll.decisions"), 0);
  EXPECT_GT(stats.get("hdpll.conflicts"), 0);
  if (stats.get("hdpll.learned_clauses") > 0) {
    const Histogram* lengths = stats.find_histogram("hdpll.learned_clause_len");
    ASSERT_NE(lengths, nullptr);
    EXPECT_EQ(lengths->count(), stats.get("hdpll.learned_clauses"));
    EXPECT_EQ(lengths->sum(), stats.get("hdpll.learned_literals"));
  }
}

}  // namespace
}  // namespace rtlsat::trace
