#include "core/hdpll.h"

#include <gtest/gtest.h>

namespace rtlsat::core {
namespace {

using ir::Circuit;
using ir::NetId;

// All four solver configurations exercised by the paper's tables.
std::vector<HdpllOptions> all_configs() {
  HdpllOptions base;
  HdpllOptions s = base;
  s.structural_decisions = true;
  HdpllOptions sp = s;
  sp.predicate_learning = true;
  HdpllOptions chrono = base;
  chrono.conflict_learning = false;
  return {base, s, sp, chrono};
}

class AllConfigs : public ::testing::TestWithParam<int> {
 protected:
  HdpllOptions options() const { return all_configs()[GetParam()]; }
};

TEST_P(AllConfigs, SimpleSatWitness) {
  // a + b == 100 ∧ a < 20.
  Circuit c("t");
  const NetId a = c.add_input("a", 8);
  const NetId b = c.add_input("b", 8);
  const NetId goal = c.add_and(c.add_eq(c.add_add(a, b), c.add_const(100, 8)),
                               c.add_lt(a, c.add_const(20, 8)));
  HdpllSolver solver(c, options());
  solver.assume_bool(goal, true);
  const SolveResult result = solver.solve();
  ASSERT_EQ(result.status, SolveStatus::kSat);
  const auto values = c.evaluate(result.input_model);
  EXPECT_EQ(values[goal], 1);  // verified independently of the solver
}

TEST_P(AllConfigs, SimpleUnsat) {
  // x < y ∧ y < x.
  Circuit c("t");
  const NetId x = c.add_input("x", 8);
  const NetId y = c.add_input("y", 8);
  const NetId goal = c.add_and(c.add_lt(x, y), c.add_lt(y, x));
  HdpllSolver solver(c, options());
  solver.assume_bool(goal, true);
  EXPECT_EQ(solver.solve().status, SolveStatus::kUnsat);
}

TEST_P(AllConfigs, MuxChainSat) {
  Circuit c("t");
  const NetId s1 = c.add_input("s1", 1);
  const NetId s2 = c.add_input("s2", 1);
  const NetId w = c.add_input("w", 8);
  const NetId m1 = c.add_mux(s1, c.add_const(10, 8), w);
  const NetId m2 = c.add_mux(s2, m1, c.add_const(20, 8));
  const NetId goal = c.add_eq(m2, c.add_const(33, 8));
  HdpllSolver solver(c, options());
  solver.assume_bool(goal, true);
  const SolveResult result = solver.solve();
  ASSERT_EQ(result.status, SolveStatus::kSat);
  EXPECT_EQ(c.evaluate(result.input_model)[goal], 1);
}

TEST_P(AllConfigs, ArithmeticDisequalityUnsat) {
  // (x + 1) == x is unsatisfiable at any width.
  Circuit c("t");
  const NetId x = c.add_input("x", 6);
  const NetId goal = c.add_eq(c.add_inc(x), x);
  HdpllSolver solver(c, options());
  solver.assume_bool(goal, true);
  EXPECT_EQ(solver.solve().status, SolveStatus::kUnsat);
}

TEST_P(AllConfigs, WrapAroundWitnessFound) {
  // x + 200 == 100 needs the adder wrap: x = 156.
  Circuit c("t");
  const NetId x = c.add_input("x", 8);
  const NetId sum = c.add_add(x, c.add_const(200, 8));
  const NetId goal = c.add_eq(sum, c.add_const(100, 8));
  HdpllSolver solver(c, options());
  solver.assume_bool(goal, true);
  const SolveResult result = solver.solve();
  ASSERT_EQ(result.status, SolveStatus::kSat);
  EXPECT_EQ(result.input_model.at(x), 156);
}

TEST_P(AllConfigs, XorParityChainBothWays) {
  // Parity of 6 free bits must equal 1 — SAT; adding the complement
  // equality makes it UNSAT.
  Circuit c("t");
  std::vector<NetId> bits;
  for (int i = 0; i < 6; ++i)
    bits.push_back(c.add_input("p" + std::to_string(i), 1));
  NetId parity = bits[0];
  for (std::size_t i = 1; i < bits.size(); ++i)
    parity = c.add_xor(parity, bits[i]);
  {
    HdpllSolver solver(c, options());
    solver.assume_bool(parity, true);
    EXPECT_EQ(solver.solve().status, SolveStatus::kSat);
  }
  {
    HdpllSolver solver(c, options());
    solver.assume_bool(parity, true);
    solver.assume_bool(bits[0], false);
    solver.assume_bool(bits[1], false);
    solver.assume_bool(bits[2], false);
    solver.assume_bool(bits[3], false);
    solver.assume_bool(bits[4], false);
    solver.assume_bool(bits[5], false);
    EXPECT_EQ(solver.solve().status, SolveStatus::kUnsat);
  }
}

TEST_P(AllConfigs, AssumeIntervalRestrictsModel) {
  Circuit c("t");
  const NetId x = c.add_input("x", 8);
  const NetId y = c.add_input("y", 8);
  const NetId goal = c.add_lt(x, y);
  HdpllSolver solver(c, options());
  solver.assume_bool(goal, true);
  solver.assume(y, Interval(0, 9));
  const SolveResult result = solver.solve();
  ASSERT_EQ(result.status, SolveStatus::kSat);
  EXPECT_LT(result.input_model.at(x), result.input_model.at(y));
  EXPECT_LE(result.input_model.at(y), 9);
}

std::string config_case_name(const ::testing::TestParamInfo<int>& info) {
  switch (info.param) {
    case 0: return "base";
    case 1: return "structural";
    case 2: return "structural_pred";
    default: return "chrono";
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, AllConfigs, ::testing::Values(0, 1, 2, 3),
                         config_case_name);

TEST(Hdpll, ContradictoryAssumptionsUnsatAtLevelZero) {
  Circuit c("t");
  const NetId x = c.add_input("x", 8);
  HdpllSolver solver(c);
  solver.assume(x, Interval(0, 10));
  solver.assume(x, Interval(20, 30));
  EXPECT_EQ(solver.solve().status, SolveStatus::kUnsat);
}

TEST(Hdpll, TimeoutReported) {
  // A hard instance with a tiny timeout must come back kTimeout quickly.
  Circuit c("t");
  std::vector<NetId> xs;
  for (int i = 0; i < 6; ++i) xs.push_back(c.add_input("x" + std::to_string(i), 10));
  // Σ pairwise-different via chained comparisons — needs real search.
  std::vector<NetId> constraints;
  for (std::size_t i = 0; i < xs.size(); ++i)
    for (std::size_t j = i + 1; j < xs.size(); ++j)
      constraints.push_back(c.add_ne(
          c.add_mulc(xs[i], 3), c.add_add(c.add_mulc(xs[j], 3), c.add_const(1, 10))));
  const NetId goal = c.add_and(constraints);
  HdpllOptions options;
  options.timeout_seconds = 0.01;
  HdpllSolver solver(c, options);
  solver.assume_bool(goal, true);
  const SolveResult result = solver.solve();
  EXPECT_TRUE(result.status == SolveStatus::kTimeout ||
              result.status == SolveStatus::kSat);  // small chance it's quick
}

TEST(Hdpll, StatsCountersAdvance) {
  Circuit c("t");
  const NetId x = c.add_input("x", 8);
  const NetId y = c.add_input("y", 8);
  const NetId s1 = c.add_input("s1", 1);
  const NetId m = c.add_mux(s1, x, y);
  const NetId goal = c.add_eq(m, c.add_const(77, 8));
  HdpllSolver solver(c);
  solver.assume_bool(goal, true);
  ASSERT_EQ(solver.solve().status, SolveStatus::kSat);
  EXPECT_GT(solver.stats().get("hdpll.decisions") +
                solver.stats().get("hdpll.arith_checks"),
            0);
}

TEST(Hdpll, LearnsClausesOnUnsatInstances) {
  Circuit c("t");
  const NetId x = c.add_input("x", 8);
  const NetId y = c.add_input("y", 8);
  const NetId z = c.add_input("z", 8);
  const NetId goal = c.add_and(
      {c.add_lt(x, y), c.add_lt(y, z), c.add_lt(z, x)});
  HdpllSolver solver(c);
  solver.assume_bool(goal, true);
  EXPECT_EQ(solver.solve().status, SolveStatus::kUnsat);
}

TEST(Hdpll, PredicateLearningReportSurfaces) {
  Circuit c("t");
  const NetId a = c.add_input("a", 1);
  const NetId b = c.add_input("b", 1);
  const NetId w1 = c.add_input("w1", 8);
  const NetId w2 = c.add_input("w2", 8);
  const NetId g = c.add_or(c.add_and(a, b), c.add_and(a, c.add_not(b)));
  const NetId m = c.add_mux(g, w1, w2);
  const NetId goal = c.add_lt(m, c.add_const(10, 8));
  HdpllOptions options;
  options.predicate_learning = true;
  HdpllSolver solver(c, options);
  solver.assume_bool(goal, true);
  const SolveResult result = solver.solve();
  ASSERT_EQ(result.status, SolveStatus::kSat);
  EXPECT_GT(result.learning.probes, 0);
}

TEST(Hdpll, RandomDecisionAblationStillSound) {
  Circuit c("t");
  const NetId x = c.add_input("x", 8);
  const NetId y = c.add_input("y", 8);
  const NetId goal = c.add_and(c.add_le(x, y), c.add_le(y, x));  // x == y
  HdpllOptions options;
  options.random_decisions = true;
  options.random_seed = 12345;
  HdpllSolver solver(c, options);
  solver.assume_bool(goal, true);
  solver.assume(x, Interval(42, 42));
  const SolveResult result = solver.solve();
  ASSERT_EQ(result.status, SolveStatus::kSat);
  EXPECT_EQ(result.input_model.at(y), 42);
}

}  // namespace
}  // namespace rtlsat::core
