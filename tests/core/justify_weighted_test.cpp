// §4.4 value choice: with static-learning weights available, the justifier
// (and the +S+P decision loop) must prefer the branch value satisfying the
// most learned relations.
#include <gtest/gtest.h>

#include "core/hdpll.h"
#include "core/justify.h"

namespace rtlsat::core {
namespace {

using ir::Circuit;
using ir::NetId;

struct Fixture {
  Circuit c{"t"};
  NetId sel = c.add_input("sel", 1);
  NetId t = c.add_input("t", 8);
  NetId e = c.add_input("e", 8);
  NetId m = c.add_mux(sel, t, e);
  // Spare Boolean nets for learned relations — created up front because
  // the circuit must be frozen before engines/clause DBs are built.
  NetId x0 = c.add_input("x0", 1);
  NetId x1 = c.add_input("x1", 1);
  NetId x2 = c.add_input("x2", 1);
};

TEST(JustifyWeighted, FreeMuxChoiceFollowsRelationWeights) {
  Fixture f;
  prop::Engine engine(f.c);
  // Constrain the output so the mux is unjustified with both branches live.
  ASSERT_TRUE(engine.narrow(f.t, Interval(0, 10), prop::ReasonKind::kAssumption));
  ASSERT_TRUE(engine.narrow(f.e, Interval(5, 14), prop::ReasonKind::kAssumption));
  ASSERT_TRUE(engine.narrow(f.m, Interval(6, 8), prop::ReasonKind::kAssumption));
  ASSERT_TRUE(engine.propagate());

  // Without weights: default leans to the then-branch.
  Justifier justifier(f.c);
  const auto unweighted = justifier.pick(engine, nullptr);
  ASSERT_TRUE(unweighted.has_value());
  EXPECT_EQ(unweighted->net, f.sel);
  EXPECT_TRUE(unweighted->value);

  // Learned relations favouring sel = 0 flip the choice.
  ClauseDb db(f.c);
  for (const NetId x : {f.x0, f.x1, f.x2}) {
    db.add({{HybridLit::boolean(f.sel, false), HybridLit::boolean(x, true)},
            true,
            HybridClause::Origin::kPredicateLearning});
  }
  const auto weighted = justifier.pick(engine, &db);
  ASSERT_TRUE(weighted.has_value());
  EXPECT_EQ(weighted->net, f.sel);
  EXPECT_FALSE(weighted->value);
}

TEST(JustifyWeighted, DeadBranchOverridesWeights) {
  // A dead branch is never selected regardless of the learned weights.
  Fixture f;
  prop::Engine engine(f.c);
  ASSERT_TRUE(engine.narrow(f.t, Interval(0, 4), prop::ReasonKind::kAssumption));
  ASSERT_TRUE(engine.narrow(f.e, Interval(3, 14), prop::ReasonKind::kAssumption));
  // Output over both branches so neither is forced, but then-branch dies
  // after a later narrowing of the output.
  ASSERT_TRUE(engine.narrow(f.m, Interval(3, 10), prop::ReasonKind::kAssumption));
  ASSERT_TRUE(engine.propagate());
  ClauseDb db(f.c);
  db.add({{HybridLit::boolean(f.sel, true), HybridLit::boolean(f.x0, true)},
          true,
          HybridClause::Origin::kPredicateLearning});
  Justifier justifier(f.c);
  const auto decision = justifier.pick(engine, &db);
  // Both branches intersect ⟨3,10⟩ here, so weights choose sel = 1; then
  // narrow the output to kill the then-branch and re-pick.
  ASSERT_TRUE(decision.has_value());
  ASSERT_TRUE(engine.narrow(f.m, Interval(5, 10), prop::ReasonKind::kAssumption));
  ASSERT_TRUE(engine.propagate());
  // t ∈ ⟨0,4⟩ no longer intersects ⟨5,10⟩ — propagation forces sel = 0
  // (dead-branch rule), leaving nothing to decide.
  EXPECT_EQ(engine.bool_value(f.sel), 0);
}

TEST(JustifyWeighted, EndToEndPhasePick) {
  // In the solver, +S+P phase choice on a free predicate follows weights.
  Circuit c("t");
  const NetId w1 = c.add_input("w1", 8);
  const NetId w2 = c.add_input("w2", 8);
  const NetId sel = c.add_input("sel", 1);
  const NetId m = c.add_mux(sel, w1, w2);
  const NetId goal = c.add_le(m, c.add_const(200, 8));
  HdpllOptions options;
  options.structural_decisions = true;
  options.predicate_learning = true;
  HdpllSolver solver(c, options);
  solver.assume_bool(goal, true);
  const SolveResult result = solver.solve();
  ASSERT_EQ(result.status, SolveStatus::kSat);
  EXPECT_EQ(c.evaluate(result.input_model)[goal], 1);
}

}  // namespace
}  // namespace rtlsat::core
