// Tests for the Ddeduce() composition: circuit propagation and clause
// propagation must reach a *mutual* fixpoint — clause implications feed
// node rules and vice versa, possibly for several rounds.
#include <gtest/gtest.h>

#include "core/deduce.h"

namespace rtlsat::core {
namespace {

using ir::Circuit;
using ir::NetId;

TEST(Deduce, ClauseThenCircuitThenClause) {
  // clause1: (¬a ∨ b). Circuit: c = b ∧ d. clause2: (¬c ∨ {w ∈ ⟨0,3⟩}).
  // Asserting a and d must chain through both layers: a → b → c → w.
  Circuit c("t");
  const NetId a = c.add_input("a", 1);
  const NetId b = c.add_input("b", 1);
  const NetId d = c.add_input("d", 1);
  const NetId g = c.add_and(b, d);
  const NetId w = c.add_input("w", 8);
  prop::Engine engine(c);
  ClauseDb db(c);
  std::size_t cursor = 0;
  db.add({{HybridLit::boolean(a, false), HybridLit::boolean(b, true)},
          true, HybridClause::Origin::kConflict});
  db.add({{HybridLit::boolean(g, false),
           HybridLit::word_in(w, Interval(0, 3))},
          true, HybridClause::Origin::kPredicateLearning});
  ASSERT_TRUE(engine.narrow(a, Interval::point(1), prop::ReasonKind::kAssumption));
  ASSERT_TRUE(engine.narrow(d, Interval::point(1), prop::ReasonKind::kAssumption));
  ASSERT_TRUE(deduce(engine, db, &cursor));
  EXPECT_EQ(engine.bool_value(b), 1);
  EXPECT_EQ(engine.bool_value(g), 1);
  EXPECT_EQ(engine.interval(w), Interval(0, 3));
}

TEST(Deduce, CircuitFeedsClauseConflict) {
  // Circuit forces b; clause (¬b) then conflicts.
  Circuit c("t");
  const NetId a = c.add_input("a", 1);
  const NetId b = c.add_not(a);
  prop::Engine engine(c);
  ClauseDb db(c);
  std::size_t cursor = 0;
  db.add({{HybridLit::boolean(b, false)}, true,
          HybridClause::Origin::kConflict});
  ASSERT_TRUE(engine.narrow(a, Interval::point(0), prop::ReasonKind::kAssumption));
  EXPECT_FALSE(deduce(engine, db, &cursor));
  EXPECT_TRUE(engine.in_conflict());
}

TEST(Deduce, WordClauseTriggersComparatorBackward) {
  // clause: ({w ∈ ⟨10,20⟩}); comparator b = (w ≤ 15). The interval unit
  // must flow into the comparator's backward rule once b is asserted.
  Circuit c("t");
  const NetId w = c.add_input("w", 8);
  const NetId b = c.add_le(w, c.add_const(15, 8));
  prop::Engine engine(c);
  ClauseDb db(c);
  std::size_t cursor = 0;
  db.add({{HybridLit::word_in(w, Interval(10, 20))}, true,
          HybridClause::Origin::kPredicateLearning});
  ASSERT_TRUE(engine.narrow(b, Interval::point(1), prop::ReasonKind::kAssumption));
  ASSERT_TRUE(deduce(engine, db, &cursor));
  EXPECT_EQ(engine.interval(w), Interval(10, 15));
}

TEST(Deduce, RepeatedCallsAreIdempotent) {
  Circuit c("t");
  const NetId a = c.add_input("a", 1);
  const NetId b = c.add_input("b", 1);
  c.add_and(a, b);
  prop::Engine engine(c);
  ClauseDb db(c);
  std::size_t cursor = 0;
  ASSERT_TRUE(engine.narrow(a, Interval::point(1), prop::ReasonKind::kAssumption));
  ASSERT_TRUE(deduce(engine, db, &cursor));
  const std::size_t events = engine.trail().size();
  ASSERT_TRUE(deduce(engine, db, &cursor));
  EXPECT_EQ(engine.trail().size(), events);
}

}  // namespace
}  // namespace rtlsat::core
