// Tests for the solver-invariant verifier (core/selfcheck.h and
// sat::Solver::check_invariants): the checkers accept healthy solver
// states — including full HDPLL searches with the in-loop hooks armed —
// and detect states that violate the documented contracts.
#include <gtest/gtest.h>

#include "bmc/unroll.h"
#include "core/hdpll.h"
#include "core/selfcheck.h"
#include "itc99/itc99.h"
#include "sat/solver.h"

namespace rtlsat::core {
namespace {

using ir::Circuit;
using ir::NetId;

// ------------------------------------------------------------- direct use

TEST(SelfCheckTest, HealthyEngineHasNoViolations) {
  Circuit c("healthy");
  const NetId a = c.add_input("a", 4);
  const NetId b = c.add_input("b", 4);
  const NetId sum = c.add_add(a, b);
  prop::Engine engine(c);
  ASSERT_TRUE(engine.narrow(sum, Interval::point(3),
                            prop::ReasonKind::kAssumption));
  ASSERT_TRUE(engine.propagate());
  engine.push_level();
  ASSERT_TRUE(
      engine.narrow(a, Interval::point(2), prop::ReasonKind::kDecision));
  ASSERT_TRUE(engine.propagate());
  EXPECT_TRUE(selfcheck::check_engine(engine).empty());
}

TEST(SelfCheckTest, AssertingClauseAccepted) {
  Circuit c("clauses");
  c.add_input("a", 1);
  const NetId b = c.add_input("b", 1);
  prop::Engine engine(c);
  HybridClause clause;
  clause.lits.push_back(HybridLit::boolean(b, true));
  // b unassigned: the clause asserts it.
  EXPECT_TRUE(selfcheck::check_asserting_clause(clause, engine).empty());
}

TEST(SelfCheckTest, SatisfiedLearnedClauseRejected) {
  Circuit c("clauses");
  const NetId a = c.add_input("a", 1);
  prop::Engine engine(c);
  engine.push_level();
  ASSERT_TRUE(
      engine.narrow(a, Interval::point(1), prop::ReasonKind::kDecision));
  HybridClause satisfied;
  satisfied.lits.push_back(HybridLit::boolean(a, true));
  EXPECT_FALSE(selfcheck::check_asserting_clause(satisfied, engine).empty());
  HybridClause still_false;
  still_false.lits.push_back(HybridLit::boolean(a, false));
  EXPECT_FALSE(selfcheck::check_asserting_clause(still_false, engine).empty());
}

TEST(SelfCheckTest, IntervalSoundnessAcceptsConsistentWitness) {
  Circuit c("witness");
  const NetId a = c.add_input("a", 4);
  c.add_add(a, c.add_const(1, 4));
  prop::Engine engine(c);
  ASSERT_TRUE(engine.narrow(a, Interval(5, 7),
                            prop::ReasonKind::kAssumption));
  ASSERT_TRUE(engine.propagate());
  EXPECT_TRUE(selfcheck::check_interval_soundness(engine, {{a, 6}}).empty());
}

TEST(SelfCheckTest, IntervalSoundnessRejectsExcludedWitness) {
  Circuit c("witness");
  const NetId a = c.add_input("a", 4);
  prop::Engine engine(c);
  ASSERT_TRUE(engine.narrow(a, Interval(5, 7),
                            prop::ReasonKind::kAssumption));
  const auto violations = selfcheck::check_interval_soundness(engine, {{a, 3}});
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("excludes"), std::string::npos);
}

TEST(SelfCheckTest, HealthyClauseDbHasNoViolations) {
  Circuit c("db");
  const NetId a = c.add_input("a", 1);
  const NetId b = c.add_input("b", 1);
  c.add_or(a, b);
  prop::Engine engine(c);
  ClauseDb db(c);
  HybridClause clause;
  clause.lits.push_back(HybridLit::boolean(a, true));
  clause.lits.push_back(HybridLit::boolean(b, true));
  db.add(clause);
  std::size_t cursor = 0;
  ASSERT_TRUE(db.propagate(engine, &cursor));
  EXPECT_TRUE(selfcheck::check_clause_db(db, engine).empty());
}

// ------------------------------------------------ in-loop hooks, HDPLL

// Runs a full BMC solve with the verifier armed on every conflict; any
// invariant violation aborts the process, so completing is the assertion.
SolveStatus solve_with_selfcheck(const std::string& model, int bound,
                                 bool structural, bool predicates) {
  const ir::SeqCircuit seq = itc99::build(model);
  const bmc::BmcInstance instance =
      bmc::unroll(seq, seq.properties().front().name, bound);
  HdpllOptions options;
  options.structural_decisions = structural;
  options.predicate_learning = predicates;
  options.self_check = true;
  options.self_check_interval = 1;
  HdpllSolver solver(instance.circuit, options);
  solver.assume_bool(instance.goal, true);
  const SolveResult result = solver.solve();
  EXPECT_NE(result.status, SolveStatus::kTimeout);
  return result.status;
}

TEST(SelfCheckTest, HdpllSolvesCleanlyUnderSelfCheck) {
  for (const int bound : {2, 6}) {
    const SolveStatus base = solve_with_selfcheck("b01", bound, false, false);
    const SolveStatus s = solve_with_selfcheck("b01", bound, true, false);
    const SolveStatus sp = solve_with_selfcheck("b01", bound, true, true);
    EXPECT_EQ(base, s);
    EXPECT_EQ(base, sp);
  }
}

TEST(SelfCheckTest, HdpllDatapathModelUnderSelfCheck) {
  solve_with_selfcheck("b04", 3, true, true);
}

// ------------------------------------------------ in-loop hooks, SAT

TEST(SatSelfCheckTest, HealthySolverPassesCheckInvariants) {
  sat::Solver solver;
  const sat::Var a = solver.new_var();
  const sat::Var b = solver.new_var();
  solver.add_clause({sat::Lit(a, true), sat::Lit(b, true)});
  solver.add_clause({sat::Lit(a, false), sat::Lit(b, true)});
  EXPECT_TRUE(solver.check_invariants().empty());
  EXPECT_EQ(solver.solve(), sat::Result::kSat);
  EXPECT_TRUE(solver.check_invariants().empty());
  EXPECT_TRUE(solver.model_value(b));
}

TEST(SatSelfCheckTest, SearchWithSelfCheckEveryConflict) {
  sat::SolverOptions options;
  options.self_check = true;
  options.self_check_interval = 1;
  sat::Solver solver(options);
  // Pigeonhole PHP(5 pigeons, 4 holes): UNSAT only after genuine search
  // with conflict learning, so the every-conflict hook really runs.
  constexpr int kPigeons = 5, kHoles = 4;
  sat::Var p[kPigeons][kHoles];
  for (auto& row : p)
    for (auto& v : row) v = solver.new_var();
  for (const auto& row : p) {
    std::vector<sat::Lit> somewhere;
    for (const sat::Var v : row) somewhere.emplace_back(v, true);
    solver.add_clause(somewhere);
  }
  for (int j = 0; j < kHoles; ++j) {
    for (int i = 0; i < kPigeons; ++i) {
      for (int k = i + 1; k < kPigeons; ++k) {
        solver.add_clause({sat::Lit(p[i][j], false),
                           sat::Lit(p[k][j], false)});
      }
    }
  }
  EXPECT_EQ(solver.solve(), sat::Result::kUnsat);
  EXPECT_GT(solver.stats().get("sat.self_checks"), 0);
  EXPECT_TRUE(solver.check_invariants().empty());
}

TEST(SatSelfCheckTest, SatisfiableSearchWithSelfCheck) {
  sat::SolverOptions options;
  options.self_check = true;
  options.self_check_interval = 1;
  sat::Solver solver(options);
  // PHP(4, 4) is satisfiable but shares the conflict-rich structure.
  constexpr int kN = 4;
  sat::Var p[kN][kN];
  for (auto& row : p)
    for (auto& v : row) v = solver.new_var();
  for (const auto& row : p) {
    std::vector<sat::Lit> somewhere;
    for (const sat::Var v : row) somewhere.emplace_back(v, true);
    solver.add_clause(somewhere);
  }
  for (int j = 0; j < kN; ++j) {
    for (int i = 0; i < kN; ++i) {
      for (int k = i + 1; k < kN; ++k) {
        solver.add_clause({sat::Lit(p[i][j], false),
                           sat::Lit(p[k][j], false)});
      }
    }
  }
  ASSERT_EQ(solver.solve(), sat::Result::kSat);
  for (int j = 0; j < kN; ++j) {
    int pigeons_in_hole = 0;
    for (int i = 0; i < kN; ++i) pigeons_in_hole += solver.model_value(p[i][j]);
    EXPECT_LE(pigeons_in_hole, 1);
  }
}

}  // namespace
}  // namespace rtlsat::core
