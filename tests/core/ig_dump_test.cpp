#include "core/ig_dump.h"

#include <gtest/gtest.h>

namespace rtlsat::core {
namespace {

TEST(IgDump, RendersEventsAndEdges) {
  ir::Circuit c("t");
  const ir::NetId a = c.add_input("a", 1);
  const ir::NetId b = c.add_input("b", 1);
  const ir::NetId g = c.add_and(a, b);
  c.set_net_name(g, "g");
  prop::Engine engine(c);
  ASSERT_TRUE(engine.narrow(g, Interval::point(1),
                            prop::ReasonKind::kAssumption));
  ASSERT_TRUE(engine.propagate());
  const std::string dot = implication_graph_dot(engine);
  EXPECT_NE(dot.find("digraph IG"), std::string::npos);
  EXPECT_NE(dot.find("g = <1>"), std::string::npos);
  EXPECT_NE(dot.find("a = <1>"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(IgDump, RendersConflictNode) {
  ir::Circuit c("t");
  const ir::NetId a = c.add_input("a", 1);
  const ir::NetId na = c.add_not(a);
  c.set_net_name(na, "na");
  prop::Engine engine(c);
  ASSERT_TRUE(engine.narrow(a, Interval::point(1),
                            prop::ReasonKind::kAssumption));
  ASSERT_TRUE(engine.narrow(na, Interval::point(1),
                            prop::ReasonKind::kAssumption));
  ASSERT_FALSE(engine.propagate());
  const std::string dot = implication_graph_dot(engine);
  EXPECT_NE(dot.find("conflict"), std::string::npos);
  EXPECT_NE(dot.find("salmon"), std::string::npos);
}

}  // namespace
}  // namespace rtlsat::core
